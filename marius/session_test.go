package marius_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/policy"
	"repro/marius"
)

func TestNodeClassificationMemAndDisk(t *testing.T) {
	for _, name := range []string{"mem", "disk"} {
		g := gen.SBM(*smallNC(1))
		opts := []marius.Option{
			marius.WithModel(marius.GraphSage), marius.WithFanouts(8, 8),
			marius.WithDim(16), marius.WithBatchSize(256), marius.WithSeed(1),
		}
		if name == "disk" {
			opts = append(opts, marius.WithDisk(t.TempDir(), marius.Partitions(8), marius.Capacity(4)))
		}
		sess, err := marius.New(marius.NodeClassification(), g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), marius.Epochs(5)); err != nil {
			t.Fatal(err)
		}
		acc, err := sess.Evaluate(marius.TestSplit)
		if err != nil {
			t.Fatal(err)
		}
		if acc.Task != marius.TaskNC || acc.Metric != "accuracy" || acc.Split != marius.TestSplit {
			t.Fatalf("malformed eval result %+v", acc)
		}
		if acc.Value < 0.4 {
			t.Fatalf("%s: test accuracy %.3f (chance 0.25)", name, acc.Value)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLinkPredictionModels(t *testing.T) {
	for _, model := range []marius.ModelKind{marius.GraphSage, marius.DistMultOnly, marius.GAT, marius.GCN} {
		g := gen.KG(smallKG(2))
		sess, err := marius.New(marius.LinkPrediction(), g,
			marius.WithModel(model), marius.WithFanouts(8), marius.WithDim(16),
			marius.WithBatchSize(512), marius.WithNegatives(64), marius.WithSeed(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.TrainEpoch(context.Background())
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		if st.Examples != len(g.Edges) {
			t.Fatalf("model %d consumed %d/%d edges", model, st.Examples, len(g.Edges))
		}
		ev, err := sess.Evaluate(marius.ValidSplit)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Metric != "MRR" || ev.Split != marius.ValidSplit {
			t.Fatalf("malformed eval result %+v", ev)
		}
		sess.Close()
	}
}

func TestDiskPoliciesAndSetPolicy(t *testing.T) {
	for _, pk := range []marius.PolicyKind{marius.COMET, marius.BETA} {
		g := gen.KG(smallKG(3))
		sess, err := marius.New(marius.LinkPrediction(), g,
			marius.WithModel(marius.DistMultOnly), marius.WithPolicy(pk),
			marius.WithDim(16), marius.WithBatchSize(512), marius.WithNegatives(64),
			marius.WithDisk(t.TempDir(), marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)),
			marius.WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.IO.BytesRead == 0 {
			t.Fatal("no disk IO recorded")
		}
		// Swapping the policy mid-run must keep training.
		sess.SetPolicy(policy.Beta{P: 8, C: 4})
		if _, err := sess.TrainEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		sess.Close()
	}
}

func TestAutotuneWhenUnspecified(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 2000, NumRelations: 8, NumEdges: 16000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 4,
	})
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.DistMultOnly),
		marius.WithDim(16), marius.WithBatchSize(512), marius.WithNegatives(64),
		marius.WithDisk(t.TempDir()),
		marius.WithAutotune(80<<10, 4<<10),
		marius.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Visits < 2 {
		t.Fatal("auto-tuned disk training should need multiple partition sets")
	}
}

func TestRunLoopCallbacksAndEarlyStopping(t *testing.T) {
	g := gen.KG(smallKG(5))
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.DistMultOnly), marius.WithDim(8),
		marius.WithBatchSize(512), marius.WithNegatives(32), marius.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	calls := 0
	res, err := sess.Run(context.Background(),
		marius.Epochs(10),
		// minDelta of 10 can never be met: the metric "plateaus"
		// immediately and patience=1 stops the run after epoch 2.
		marius.EarlyStopping(1, 10),
		marius.OnEpoch(func(p marius.Progress) error {
			calls++
			if p.Valid == nil {
				t.Fatal("early stopping must evaluate every epoch")
			}
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != marius.EarlyStopped {
		t.Fatalf("stopped = %q, want early-stopped", res.Stopped)
	}
	if len(res.Epochs) != 2 || calls != 2 {
		t.Fatalf("ran %d epochs with %d callbacks, want 2/2", len(res.Epochs), calls)
	}
	if res.Best == nil || len(res.Valid) != 2 {
		t.Fatalf("validation history missing: best=%v n=%d", res.Best, len(res.Valid))
	}
}

func TestRunLoopErrStop(t *testing.T) {
	g := gen.KG(smallKG(6))
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.DistMultOnly), marius.WithDim(8),
		marius.WithBatchSize(512), marius.WithNegatives(32), marius.WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(context.Background(),
		marius.Epochs(10),
		marius.OnEpoch(func(p marius.Progress) error {
			if p.Epoch >= 2 {
				return marius.ErrStop
			}
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != marius.StoppedByCallback || len(res.Epochs) != 2 {
		t.Fatalf("stopped=%q after %d epochs, want callback/2", res.Stopped, len(res.Epochs))
	}
}

func TestCancellationBeforeAndMidEpoch(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 20_000, NumClasses: 8, AvgDegree: 12, FeatureDim: 32,
		Homophily: 0.8, FeatNoise: 2.0, TrainFrac: 0.3, ValidFrac: 0.05, TestFrac: 0.05,
		Seed: 7,
	})
	sess, err := marius.New(marius.NodeClassification(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(15, 10, 5),
		marius.WithDim(32), marius.WithBatchSize(256), marius.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Already-canceled context: no work happens.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.Run(canceled, marius.Epochs(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stopped != marius.Canceled || len(res.Epochs) != 0 {
		t.Fatalf("stopped=%q epochs=%d, want canceled/0", res.Stopped, len(res.Epochs))
	}

	// Mid-epoch: calibrate with one full epoch, then cancel a fraction of
	// the way into the next one and expect it to abort with ctx.Err().
	start := time.Now()
	if _, err := sess.TrainEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	delay := full / 10
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), delay)
	defer cancel2()
	start = time.Now()
	_, err = sess.TrainEpoch(ctx)
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-epoch err = %v, want context.DeadlineExceeded", err)
	}
	if aborted > full {
		t.Fatalf("canceled epoch took %v, full epoch %v: cancellation did not shorten it", aborted, full)
	}
}
