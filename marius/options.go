package marius

import (
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/decoder"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/train"
)

// StorageMode selects where base representations live.
type StorageMode int

const (
	// InMemory keeps the whole graph in CPU memory (M-GNN_Mem).
	InMemory StorageMode = iota
	// OnDisk pages partitions through a buffer (M-GNN_Disk).
	OnDisk
)

// ModelKind selects the encoder architecture.
type ModelKind int

const (
	// GraphSage is the mean-aggregation GraphSage GNN (paper default).
	GraphSage ModelKind = iota
	// GAT is the graph attention network.
	GAT
	// GCN is a shared-weight graph convolution.
	GCN
	// DistMultOnly trains decoder-only knowledge-graph embeddings with no
	// GNN encoder (the model class supported by Marius).
	DistMultOnly
)

// kindName maps a ModelKind to the stable name checkpoints record in
// their ModelMeta, so a forward-only loader can rebuild the encoder
// without the options API.
func (m ModelKind) kindName() string {
	switch m {
	case GAT:
		return ckpt.KindGAT
	case GCN:
		return ckpt.KindGCN
	case DistMultOnly:
		return ckpt.KindDistMult
	default:
		return ckpt.KindSage
	}
}

// DecoderKind selects the link-prediction scoring function. All three
// decoders train, evaluate and serve through the same interface and the
// same fused scoring kernel; they differ only in how a (source, relation)
// pair folds into a query vector.
type DecoderKind int

const (
	// DistMult scores <e_s ∘ w_r, e_d> (the paper's decoder; default).
	DistMult DecoderKind = iota
	// ComplEx scores Re(<e_s, w_r, conj(e_d)>) over split-half complex
	// embeddings (first dim/2 real, last dim/2 imaginary); it requires an
	// even dimension and, unlike DistMult, is not symmetric in s and d.
	ComplEx
	// TransE scores -||e_s + w_r - e_d||² (translational distance).
	TransE
)

// kindName maps a DecoderKind to the stable name checkpoints and serving
// snapshots record.
func (d DecoderKind) kindName() string {
	switch d {
	case ComplEx:
		return decoder.KindComplEx
	case TransE:
		return decoder.KindTransE
	default:
		return decoder.KindDistMult
	}
}

// String implements fmt.Stringer.
func (d DecoderKind) String() string { return d.kindName() }

// PolicyKind selects the disk replacement policy for link prediction.
type PolicyKind int

const (
	// COMET is MariusGNN's two-level randomized policy (paper §5.1).
	COMET PolicyKind = iota
	// BETA is the greedy Marius policy reimplemented for comparison.
	BETA
)

// Paper defaults (§7.3 and the training setup of §7.1), the single source
// of truth shared by the options API and the cmd/mariusgnn flag defaults.
const (
	DefaultDim        = 32
	DefaultBatchSize  = 1024
	DefaultNegatives  = 500 // LP negatives per batch, as in §7.3
	DefaultLR         = float32(0.01)
	DefaultEmbLR      = float32(0.1)
	DefaultCPUBytes   = int64(1 << 30)
	DefaultBlockBytes = int64(512 << 10)
	DefaultWorkers    = 4
	DefaultNCLayers   = 3 // node classification (Papers100M setting)
	DefaultLPLayers   = 1 // link prediction
)

// DefaultLayers returns the paper-default GNN depth for a task name
// ("nc" or "lp").
func DefaultLayers(task string) int {
	if task == TaskNC {
		return DefaultNCLayers
	}
	return DefaultLPLayers
}

// DefaultFanouts returns the paper-default per-layer fanouts for a task,
// ordered away from the targets: 30/20/10 for NC (padded with 10 beyond
// three layers), 20 per layer for LP.
func DefaultFanouts(task string, layers int) []int {
	if task == TaskNC {
		all := []int{30, 20, 10}
		f := append([]int(nil), all[:min(layers, 3)]...)
		for len(f) < layers {
			f = append(f, 10)
		}
		return f
	}
	f := make([]int, layers)
	for i := range f {
		f[i] = 20
	}
	return f
}

// Typed option/validation errors, matchable with errors.Is through the
// *OptionError wrapper New returns.
var (
	// ErrMissingDir is returned when disk storage is requested without a
	// directory.
	ErrMissingDir = errors.New("disk storage requires a directory")
	// ErrBadValue is returned for non-positive sizes, depths and rates.
	ErrBadValue = errors.New("value out of range")
	// ErrBadBuffer is returned for partition/buffer-capacity combinations
	// the storage layer cannot honor (e.g. capacity exceeding partitions).
	ErrBadBuffer = errors.New("invalid partition/buffer configuration")
	// ErrTaskGraph is returned when the graph lacks the inputs the task
	// needs (e.g. node classification without features or labels).
	ErrTaskGraph = errors.New("graph does not satisfy task requirements")
	// ErrTaskMismatch is returned when a checkpoint is restored into a
	// session running a different task or model shape.
	ErrTaskMismatch = errors.New("checkpoint does not match session")
	// ErrCheckpointMismatch is returned when a checkpoint's recorded
	// model shape or dataset provenance contradicts what it is loaded
	// against (wrong dim, layers, node count, ...); the message names
	// the offending field. It is the same sentinel the inference loader
	// (marius.LoadForInference / internal/serve) wraps, so callers can
	// match both paths with one errors.Is.
	ErrCheckpointMismatch = ckpt.ErrMismatch
	// ErrDatasetMismatch is returned by FromDataset when options
	// contradict the prepared dataset's baked-in layout (e.g. a
	// different partition count).
	ErrDatasetMismatch = errors.New("options do not match prepared dataset")
)

// OptionError reports which option (or validation step) rejected the
// configuration. It unwraps to one of the sentinel errors above.
type OptionError struct {
	Option string
	Err    error
}

func (e *OptionError) Error() string { return fmt.Sprintf("marius: %s: %v", e.Option, e.Err) }

// Unwrap implements errors.Unwrap.
func (e *OptionError) Unwrap() error { return e.Err }

func optErr(option string, err error, format string, args ...any) *OptionError {
	return &OptionError{Option: option, Err: fmt.Errorf("%w: "+format, append([]any{err}, args...)...)}
}

// Options is the fully-resolved session configuration produced by applying
// functional options over the paper defaults. Task implementations read it
// in Prepare; most callers never touch it directly.
type Options struct {
	Storage StorageMode
	Model   ModelKind
	Policy  PolicyKind
	// PolicyImpl, when non-nil, overrides Policy with an exact policy
	// instance (used by the policy-comparison experiments).
	PolicyImpl policy.Policy

	// Dir is the directory for disk-based storage.
	Dir string

	// Decoder selects the link-prediction scoring function (WithDecoder);
	// decoderSet records whether it was chosen explicitly, so resolve can
	// reject the option on tasks that have no decoder.
	Decoder    DecoderKind
	decoderSet bool
	// Relations, when non-zero, fixes the relation-table height
	// (WithRelations). 0 resolves to the graph's relation count (at
	// least 1).
	Relations int

	Dim     int
	Layers  int   // 0 resolves to the task default
	Fanouts []int // empty resolves to the task default

	BatchSize int
	Negatives int

	LR    float32
	EmbLR float32

	// Partitions (p), BufferCapacity (c), LogicalPartitions (l); 0 lets
	// the §6 auto-tuner pick them from CPUBytes/BlockBytes.
	Partitions        int
	BufferCapacity    int
	LogicalPartitions int
	CPUBytes          int64
	BlockBytes        int64

	Throttle *storage.Throttle

	Mode train.Mode
	// Workers is the batch-construction worker count and kernel fan-out;
	// PipelineDepth is how many partition visits the prefetcher loads
	// ahead of the trainer (0 = serial epoch loop).
	Workers       int
	PipelineDepth int
	Seed          int64

	// Metrics and Tracer attach observability (see WithMetrics and
	// WithTrace). Either may be nil; instrumentation never changes the
	// training trajectory.
	Metrics *Metrics
	Tracer  *Tracer

	// FS, when non-nil, routes the session's file IO (dataset reads, the
	// disk-mode node/edge stores, checkpoints and run journals) through an
	// injectable filesystem (see WithFaults). nil means the real
	// filesystem with zero overhead.
	FS fault.FS

	// dataset, when non-nil, is the opened preprocessed dataset the
	// session trains from (set by FromDataset): tasks then skip the
	// relabeling step — the ingest already applied it — and build their
	// source over the dataset's files.
	dataset *storage.Dataset
}

func defaultOptions() Options {
	return Options{
		Dim:        DefaultDim,
		BatchSize:  DefaultBatchSize,
		Negatives:  DefaultNegatives,
		LR:         DefaultLR,
		EmbLR:      DefaultEmbLR,
		CPUBytes:   DefaultCPUBytes,
		BlockBytes: DefaultBlockBytes,
		Workers:    DefaultWorkers,
	}
}

// resolve fills task-dependent defaults and cross-validates the combined
// configuration; it runs after every option has been applied.
func (o *Options) resolve(task string) error {
	if o.Layers == 0 {
		o.Layers = DefaultLayers(task)
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = DefaultFanouts(task, o.Layers)
	}
	if len(o.Fanouts) != o.Layers {
		return optErr("WithFanouts", ErrBadValue, "%d fanouts for %d layers", len(o.Fanouts), o.Layers)
	}
	if task == TaskNC {
		if o.decoderSet {
			return optErr("WithDecoder", ErrBadValue, "node classification has no decoder")
		}
		if o.Relations > 0 {
			return optErr("WithRelations", ErrBadValue, "node classification has no relation table")
		}
	}
	if o.Decoder == ComplEx && o.Dim%2 != 0 {
		return optErr("WithDecoder", ErrBadValue, "complex decoder needs an even dimension, got %d", o.Dim)
	}
	if o.Storage == OnDisk && o.Dir == "" {
		return &OptionError{Option: "WithDisk", Err: ErrMissingDir}
	}
	if o.Partitions < 0 || o.BufferCapacity < 0 || o.LogicalPartitions < 0 {
		return optErr("WithDisk", ErrBadValue, "negative partition counts")
	}
	if o.Partitions > 0 && o.BufferCapacity > o.Partitions {
		return optErr("WithDisk", ErrBadBuffer, "buffer capacity %d exceeds %d partitions",
			o.BufferCapacity, o.Partitions)
	}
	if o.Storage == OnDisk && o.Partitions > 0 && o.BufferCapacity > 0 && o.BufferCapacity < 2 {
		return optErr("WithDisk", ErrBadBuffer, "disk buffer must hold at least 2 partitions")
	}
	if o.LogicalPartitions > 0 && o.Partitions > 0 && o.Partitions%o.LogicalPartitions != 0 {
		return optErr("WithDisk", ErrBadBuffer, "logical partitions %d must divide physical %d",
			o.LogicalPartitions, o.Partitions)
	}
	return nil
}

// Option configures a Session at construction; every option validates its
// arguments eagerly and New surfaces the first failure as an *OptionError.
type Option func(*Options) error

// WithModel selects the encoder architecture.
func WithModel(m ModelKind) Option {
	return func(o *Options) error {
		if m < GraphSage || m > DistMultOnly {
			return optErr("WithModel", ErrBadValue, "unknown model kind %d", m)
		}
		o.Model = m
		return nil
	}
}

// WithDecoder selects the link-prediction scoring function (DistMult,
// ComplEx or TransE). Only valid for LinkPrediction sessions; ComplEx
// additionally requires an even dimension. The decoder kind is recorded
// in checkpoints, so restoring or serving under a different kind fails
// with an error naming the "decoder" field instead of silently scoring
// with the wrong function.
func WithDecoder(d DecoderKind) Option {
	return func(o *Options) error {
		if d < DistMult || d > TransE {
			return optErr("WithDecoder", ErrBadValue, "unknown decoder kind %d", d)
		}
		o.Decoder = d
		o.decoderSet = true
		return nil
	}
}

// WithRelations fixes the relation-table height to n. The default is the
// graph's relation count (at least 1); setting it larger reserves rows
// for relation types absent from the training split. It must not be
// smaller than the graph's relation count, and for prepared datasets it
// must equal the manifest's (the ingest already sized the table).
func WithRelations(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return optErr("WithRelations", ErrBadValue, "relations %d", n)
		}
		o.Relations = n
		return nil
	}
}

// WithDim sets the hidden/embedding dimensionality.
func WithDim(d int) Option {
	return func(o *Options) error {
		if d <= 0 {
			return optErr("WithDim", ErrBadValue, "dim %d", d)
		}
		o.Dim = d
		return nil
	}
}

// WithLayers sets the GNN depth.
func WithLayers(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return optErr("WithLayers", ErrBadValue, "layers %d", n)
		}
		o.Layers = n
		return nil
	}
}

// WithFanouts sets the per-layer neighbor fanouts, ordered away from the
// targets. It implies WithLayers(len(fanouts)) unless layers were set
// explicitly (in which case the lengths must agree).
func WithFanouts(fanouts ...int) Option {
	return func(o *Options) error {
		if len(fanouts) == 0 {
			return optErr("WithFanouts", ErrBadValue, "no fanouts")
		}
		for _, f := range fanouts {
			if f <= 0 {
				return optErr("WithFanouts", ErrBadValue, "fanout %d", f)
			}
		}
		o.Fanouts = append([]int(nil), fanouts...)
		if o.Layers == 0 {
			o.Layers = len(fanouts)
		}
		return nil
	}
}

// WithBatchSize sets the mini-batch size.
func WithBatchSize(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return optErr("WithBatchSize", ErrBadValue, "batch size %d", n)
		}
		o.BatchSize = n
		return nil
	}
}

// WithNegatives sets the number of shared negatives per link-prediction
// batch.
func WithNegatives(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return optErr("WithNegatives", ErrBadValue, "negatives %d", n)
		}
		o.Negatives = n
		return nil
	}
}

// WithLearningRates sets the dense-parameter Adam LR and the embedding
// sparse-AdaGrad LR.
func WithLearningRates(lr, embLR float32) Option {
	return func(o *Options) error {
		if lr <= 0 || embLR <= 0 {
			return optErr("WithLearningRates", ErrBadValue, "lr %g embLR %g", lr, embLR)
		}
		o.LR, o.EmbLR = lr, embLR
		return nil
	}
}

// WithWorkers sets the compute-parallelism knob: n batch-construction
// workers feed the compute stage, and the tensor kernels of the
// forward/backward pass may fan out to n goroutines. Kernels are bitwise
// deterministic at every worker count (parallelism never reorders
// floating-point sums), batches always compute in plan order with
// per-batch derived seeds, and base representations are gathered at
// compute time — so training is bit-reproducible at every worker count
// and pipeline depth (a resumed checkpoint continues the exact
// trajectory). Workers only change wall-clock overlap.
func WithWorkers(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return optErr("WithWorkers", ErrBadValue, "workers %d", n)
		}
		o.Workers = n
		return nil
	}
}

// WithPipeline enables pipelined out-of-core execution: the epoch runs
// as three overlapped stages (partition prefetch, mini-batch
// construction, compute), with the prefetcher walking the policy plan up
// to depth visits ahead of the trainer and staging partition IO and edge
// buckets off the critical path. depth 0 (the default) keeps the serial
// epoch loop.
//
// Pipelining never changes the training trajectory: batches compute in
// exact plan order with per-batch derived RNG seeds, and base
// representations are gathered at compute time, so a pipelined epoch
// produces the same losses (and, combined with the bitwise-deterministic
// kernels, the same checkpoints) as the serial path at every depth and
// worker count. Per-epoch pipeline behavior is reported in
// EpochStats.Pipeline.
func WithPipeline(depth int) Option {
	return func(o *Options) error {
		if depth < 0 {
			return optErr("WithPipeline", ErrBadValue, "pipeline depth %d", depth)
		}
		o.PipelineDepth = depth
		return nil
	}
}

// WithSeed seeds all randomness (partitioning, plans, sampling, init).
func WithSeed(s int64) Option {
	return func(o *Options) error {
		o.Seed = s
		return nil
	}
}

// WithFaults routes the session's file IO — dataset reads, the disk-mode
// node and edge stores, checkpoints and run journals — through fsys,
// typically a fault.Injector, so robustness tests can subject a real
// training run to seeded transient errors, short IO, ENOSPC and
// hard crashes. A nil fsys restores the default (the real filesystem,
// with no wrapping and no overhead).
func WithFaults(fsys fault.FS) Option {
	return func(o *Options) error {
		o.FS = fsys
		return nil
	}
}

// WithBaseline selects the DGL/PyG-like baseline execution (per-layer
// re-sampling, per-edge aggregation, synchronous stages) for comparisons.
func WithBaseline() Option {
	return func(o *Options) error {
		o.Mode = train.ModeBaseline
		return nil
	}
}

// WithPartitions sets the number of physical partitions for in-memory
// training (disk training configures partitions through WithDisk).
func WithPartitions(p int) Option {
	return func(o *Options) error {
		if p <= 0 {
			return optErr("WithPartitions", ErrBadValue, "partitions %d", p)
		}
		o.Partitions = p
		return nil
	}
}

// WithPolicy selects the disk replacement policy kind.
func WithPolicy(k PolicyKind) Option {
	return func(o *Options) error {
		if k != COMET && k != BETA {
			return optErr("WithPolicy", ErrBadValue, "unknown policy kind %d", k)
		}
		o.Policy = k
		return nil
	}
}

// WithPolicyImpl installs an exact policy instance, bypassing the
// kind-based construction (policy-comparison experiments).
func WithPolicyImpl(p policy.Policy) Option {
	return func(o *Options) error {
		if p == nil {
			return optErr("WithPolicyImpl", ErrBadValue, "nil policy")
		}
		o.PolicyImpl = p
		return nil
	}
}

// WithAutotune sets the CPU-memory and disk-block budgets the §6
// auto-tuner uses to pick p, c and l when they are not set explicitly.
func WithAutotune(cpuBytes, blockBytes int64) Option {
	return func(o *Options) error {
		if cpuBytes <= 0 || blockBytes <= 0 {
			return optErr("WithAutotune", ErrBadValue, "cpuBytes %d blockBytes %d", cpuBytes, blockBytes)
		}
		o.CPUBytes, o.BlockBytes = cpuBytes, blockBytes
		return nil
	}
}

// DiskOption refines WithDisk.
type DiskOption func(*Options) error

// WithDisk stores base representations on disk under dir, paging them
// through a partition buffer (M-GNN_Disk). Partition counts left unset are
// chosen by the §6 auto-tuner.
func WithDisk(dir string, opts ...DiskOption) Option {
	return func(o *Options) error {
		if dir == "" {
			return &OptionError{Option: "WithDisk", Err: ErrMissingDir}
		}
		o.Storage = OnDisk
		o.Dir = dir
		for _, opt := range opts {
			if err := opt(o); err != nil {
				return err
			}
		}
		return nil
	}
}

// Partitions sets the physical partition count p.
func Partitions(p int) DiskOption {
	return func(o *Options) error {
		if p <= 0 {
			return optErr("Partitions", ErrBadValue, "partitions %d", p)
		}
		o.Partitions = p
		return nil
	}
}

// Capacity sets the partition-buffer capacity c.
func Capacity(c int) DiskOption {
	return func(o *Options) error {
		if c <= 0 {
			return optErr("Capacity", ErrBadValue, "capacity %d", c)
		}
		o.BufferCapacity = c
		return nil
	}
}

// LogicalPartitions sets the logical partition count l used by COMET.
func LogicalPartitions(l int) DiskOption {
	return func(o *Options) error {
		if l <= 0 {
			return optErr("LogicalPartitions", ErrBadValue, "logical partitions %d", l)
		}
		o.LogicalPartitions = l
		return nil
	}
}

// Throttled simulates a bandwidth-limited disk.
func Throttled(t *storage.Throttle) DiskOption {
	return func(o *Options) error {
		o.Throttle = t
		return nil
	}
}

// numRels resolves the relation-table height for a graph: WithRelations
// if set, else the graph's relation count, never below 1.
func (o *Options) numRels(g *graph.Graph) int {
	if o.Relations > 0 {
		return o.Relations
	}
	return max(g.NumRels, 1)
}

// EvalSpec is the resolved evaluation configuration produced by applying
// EvalOptions; task implementations read it in Evaluate.
type EvalSpec struct {
	// Ranking selects the ranking protocol: every held-out edge (s, r, d)
	// is ranked twice against all entities — d among candidate tails of
	// (s, r, ?), s among candidate heads of (?, r, d) — reporting MRR and
	// Hits@k. Without it, link prediction evaluates with the sampled
	// protocol (MRR against shared negatives) and node classification
	// with accuracy.
	Ranking bool
	// Filtered removes known true triples (training, validation and test
	// edges) from the candidate sets, the standard "filtered" protocol.
	Filtered bool
	// Ks lists the Hits@k cutoffs (default 1, 10).
	Ks []int
}

// EvalOption configures a single Session.Evaluate call.
type EvalOption func(*EvalSpec) error

// RankingEval selects the ranking protocol (raw candidate sets),
// reporting MRR and Hits@k at the given cutoffs (default 1, 10). Only
// link-prediction sessions support it. Results are bitwise independent
// of worker count, batch size and candidate-chunk width, and match a
// brute-force per-candidate reference exactly.
func RankingEval(ks ...int) EvalOption {
	return func(e *EvalSpec) error {
		for _, k := range ks {
			if k <= 0 {
				return optErr("RankingEval", ErrBadValue, "hits cutoff %d", k)
			}
		}
		e.Ranking = true
		if len(ks) > 0 {
			e.Ks = append([]int(nil), ks...)
		}
		return nil
	}
}

// FilteredEval selects the filtered ranking protocol: RankingEval with
// known true triples (training edges plus both held-out splits) removed
// from every candidate set, per the standard KG evaluation methodology
// (and the paper's §7 MRR reporting).
func FilteredEval() EvalOption {
	return func(e *EvalSpec) error {
		e.Ranking = true
		e.Filtered = true
		return nil
	}
}
