package marius

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/autotune"
	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/train"
)

func encoderDims(in, hidden, out, layers int) []int {
	dims := []int{in}
	for i := 0; i < layers-1; i++ {
		dims = append(dims, hidden)
	}
	return append(dims, out)
}

func buildEncoder(kind ModelKind, ps *nn.ParamSet, dims []int, rng *rand.Rand) (*gnn.Encoder, error) {
	switch kind {
	case GraphSage:
		return gnn.BuildSage(ps, dims, gnn.Mean, rng), nil
	case GAT:
		return gnn.BuildGAT(ps, dims, rng), nil
	case GCN:
		return gnn.BuildGCN(ps, dims, rng), nil
	default:
		return nil, optErr("WithModel", ErrBadValue, "model kind %d has no encoder", kind)
	}
}

// NodeClassification returns the node-classification Task: GNN training
// over fixed node features with the §5.2 training-node caching policy for
// disk storage. The graph must carry Features, Labels and TrainNodes.
func NodeClassification() Task { return &ncTask{} }

type ncTask struct {
	g    *graph.Graph
	opts *Options

	tr  *train.NCTrainer
	src *train.Source
	ps  *nn.ParamSet
	enc *gnn.Encoder

	fullAdj *graph.Adjacency // lazily built for evaluation
}

func (t *ncTask) Name() string { return TaskNC }

func (t *ncTask) Prepare(g *graph.Graph, o *Options) error {
	if t.tr != nil {
		return optErr("New", ErrBadValue, "task already prepared; tasks are single-use")
	}
	if o.dataset != nil {
		return t.prepareDataset(g, o, o.dataset)
	}
	if g.Features == nil || g.Labels == nil || len(g.TrainNodes) == 0 {
		return &OptionError{Option: "NodeClassification",
			Err: fmt.Errorf("%w: node classification needs features, labels and training nodes", ErrTaskGraph)}
	}
	rng := rand.New(rand.NewSource(o.Seed))

	p, c := o.Partitions, o.BufferCapacity
	if o.Storage == InMemory {
		if p == 0 {
			p = 4
		}
		c = p
	} else if p == 0 || c == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: g.NumNodes, NumEdges: len(g.Edges), Dim: g.FeatureDim(),
			CPUBytes: o.CPUBytes, BlockBytes: o.BlockBytes,
		})
		if err != nil {
			return err
		}
		if p == 0 {
			p = tuned.P
		}
		if c == 0 {
			c = tuned.C
		}
	}

	pt, trainParts := train.PrepareNC(g, p, o.Seed)
	var src *train.Source
	var err error
	if o.Storage == OnDisk {
		src, err = train.NewDiskSource(g, pt, g.FeatureDim(), train.DiskSourceConfig{
			Dir: o.Dir, Capacity: c, InitTable: g.Features, Throttle: o.Throttle, FS: o.FS,
		})
		if err != nil {
			return err
		}
	} else {
		src = train.NewMemorySource(g, pt, g.Features)
	}
	return t.assemble(g, o, src, g.FeatureDim(), p, c, trainParts, rng)
}

// assemble is the shared tail of both preparation paths: it builds the
// encoder, selects the replacement policy, and constructs the trainer
// over an already-built source. Keeping it single-sourced is part of the
// byte-identity contract between in-memory and dataset sessions.
func (t *ncTask) assemble(g *graph.Graph, o *Options, src *train.Source, featDim, p, c, trainParts int, rng *rand.Rand) error {
	ps := nn.NewParamSet()
	dims := encoderDims(featDim, o.Dim, g.NumClasses, o.Layers)
	enc, err := buildEncoder(o.Model, ps, dims, rng)
	if err != nil {
		src.Close()
		return err
	}
	var pol policy.Policy
	if o.PolicyImpl != nil {
		pol = o.PolicyImpl
	} else if o.Storage == OnDisk {
		pol = policy.NodeCache{P: p, C: c, TrainParts: trainParts}
	} else {
		pol = policy.InMemory{P: p}
	}
	ncfg := train.NCConfig{
		Encoder: enc, Params: ps,
		Fanouts: o.Fanouts, Dirs: graph.Both,
		BatchSize: o.BatchSize, Opt: nn.NewAdam(o.LR), ClipNorm: 5,
		Workers: o.Workers, PipelineDepth: o.PipelineDepth, Mode: o.Mode, Seed: o.Seed,
		Obs: o.observe(src),
	}
	t.g, t.opts, t.src, t.ps, t.enc = g, o, src, ps, enc
	t.tr = train.NewNC(ncfg, src, pol, g.Labels, g.TrainNodes)
	return nil
}

// prepareDataset builds the trainer over a preprocessed dataset: no
// relabeling (the ingest step already applied it) and no edge
// materialization — buckets are served straight off the dataset files.
// g carries the dataset's metadata (labels, splits), loaded by
// FromDataset.
func (t *ncTask) prepareDataset(g *graph.Graph, o *Options, ds *storage.Dataset) error {
	man := ds.Man
	if man.Features == nil || g.Labels == nil || len(g.TrainNodes) == 0 {
		return &OptionError{Option: "FromDataset",
			Err: fmt.Errorf("%w: node classification needs features, labels and train nodes in the dataset", ErrTaskGraph)}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	pt := ds.Partitioning()
	p, c := man.Partitions, o.BufferCapacity
	if o.Storage == OnDisk && c == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: man.NumNodes, NumEdges: int(man.NumEdges), Dim: man.FeatureDim,
			// Quantized tables swap fewer bytes per partition, which the
			// §6 cost model sees through NO.
			NodeElemBytes: man.FeatureElemBytes(),
			CPUBytes:      o.CPUBytes, BlockBytes: o.BlockBytes,
		})
		if err != nil {
			return err
		}
		// p is baked into the dataset layout; clamp the tuned capacity
		// to it.
		c = min(max(tuned.C, 2), p)
	}
	src, err := train.NewDatasetSource(ds, train.DatasetSourceConfig{
		InMemory: o.Storage == InMemory, Capacity: c, Throttle: o.Throttle, FS: o.FS,
	})
	if err != nil {
		return err
	}
	// Same formula as train.PrepareNC (which also relabels, already done
	// at ingest time): training nodes occupy the leading partitions.
	trainParts := (len(g.TrainNodes) + pt.PartSize - 1) / pt.PartSize
	if trainParts == 0 {
		trainParts = 1
	}
	return t.assemble(g, o, src, man.FeatureDim, p, c, trainParts, rng)
}

func (t *ncTask) TrainEpoch(ctx context.Context) (train.EpochStats, error) {
	return t.tr.TrainEpoch(ctx)
}

func (t *ncTask) adj() (*graph.Adjacency, error) {
	return evalAdj(&t.fullAdj, t.g, t.opts, t.src)
}

// evalAdj lazily builds (and caches in *cached) the full-graph
// evaluation adjacency. Dataset-backed sessions keep no in-memory edge
// list, so the first evaluation reads the buckets back from the edge
// store (bucket order — the same flattened order the training index
// exposes).
func evalAdj(cached **graph.Adjacency, g *graph.Graph, o *Options, src *train.Source) (*graph.Adjacency, error) {
	if *cached == nil {
		edges := g.Edges
		if len(edges) == 0 && o.dataset != nil {
			var err error
			if edges, err = src.ReadAllEdges(); err != nil {
				return nil, err
			}
		}
		*cached = graph.BuildAdjacency(g.NumNodes, edges)
	}
	return *cached, nil
}

// Evaluate computes accuracy over the full graph; with disk storage the
// feature table is first read back into memory (evaluation nodes may live
// in partitions that are not resident). Ranking specs are rejected:
// node classification has no entity-ranking protocol.
func (t *ncTask) Evaluate(split Split, spec *EvalSpec) (EvalResult, error) {
	if spec != nil && spec.Ranking {
		return EvalResult{}, optErr("RankingEval", ErrBadValue,
			"ranking evaluation applies to link prediction, not node classification")
	}
	nodes, seed := t.g.ValidNodes, t.opts.Seed+1
	if split == TestSplit {
		nodes, seed = t.g.TestNodes, t.opts.Seed+2
	}
	res := EvalResult{Task: TaskNC, Metric: "accuracy", Split: split}
	if len(nodes) == 0 {
		// Nothing to score: skip the full-table read and adjacency build
		// (expensive for dataset-backed sessions).
		return res, nil
	}
	src := t.src
	if t.src.Disk != nil {
		table, err := t.src.Disk.ReadAll()
		if err != nil {
			return res, err
		}
		src = &train.Source{
			Part: t.src.Part, NumNodes: t.src.NumNodes, NumRels: t.src.NumRels,
			Nodes: storage.NewMemoryNodeStore(table), Edges: t.src.Edges,
		}
	}
	adj, err := t.adj()
	if err != nil {
		return res, err
	}
	acc, err := train.EvaluateNC(&t.tr.Cfg, src, adj, t.g.Labels, nodes, seed)
	if err != nil {
		return res, err
	}
	res.Value = acc
	return res, nil
}

func (t *ncTask) Epoch() int                { return t.tr.Epoch() }
func (t *ncTask) SetEpoch(e int)            { t.tr.SetEpoch(e) }
func (t *ncTask) Params() *nn.ParamSet      { return t.ps }
func (t *ncTask) Source() *train.Source     { return t.src }
func (t *ncTask) LearnableTable() bool      { return false }
func (t *ncTask) SetPolicy(p policy.Policy) { t.tr.Pol = p }

// LinkPrediction returns the link-prediction Task: learnable node
// embeddings (optionally GNN-encoded) scored by a DistMult, ComplEx or
// TransE decoder (WithDecoder), with COMET/BETA replacement policies for
// disk storage.
func LinkPrediction() Task { return &lpTask{} }

type lpTask struct {
	g    *graph.Graph
	opts *Options

	tr  *train.LPTrainer
	src *train.Source
	ps  *nn.ParamSet
	enc *gnn.Encoder
	dec decoder.Decoder

	fullAdj *graph.Adjacency
}

func (t *lpTask) Name() string { return TaskLP }

func (t *lpTask) Prepare(g *graph.Graph, o *Options) error {
	if t.tr != nil {
		return optErr("New", ErrBadValue, "task already prepared; tasks are single-use")
	}
	if o.dataset != nil {
		return t.prepareDataset(g, o, o.dataset)
	}
	rng := rand.New(rand.NewSource(o.Seed))

	p, c, l := o.Partitions, o.BufferCapacity, o.LogicalPartitions
	if l == 0 && o.PolicyImpl != nil && p > 0 {
		l = p // unused under an explicit policy; skip the auto-tuner
	}
	if o.Storage == InMemory {
		if p == 0 {
			p = 4
		}
		c, l = p, p
	} else if p == 0 || c == 0 || l == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: g.NumNodes, NumEdges: len(g.Edges), Dim: o.Dim,
			CPUBytes: o.CPUBytes, BlockBytes: o.BlockBytes,
		})
		if err != nil {
			return err
		}
		if p == 0 {
			p = tuned.P
		}
		if c == 0 {
			c = tuned.C
		}
		if l == 0 {
			l = tuned.L
		}
	}

	pt := train.PrepareLP(g, p, o.Seed)
	emb := train.RandomEmbeddings(g.NumNodes, o.Dim, o.Seed)
	var src *train.Source
	var err error
	if o.Storage == OnDisk {
		src, err = train.NewDiskSource(g, pt, o.Dim, train.DiskSourceConfig{
			Dir: o.Dir, Capacity: c, Learnable: true, InitTable: emb, Throttle: o.Throttle, FS: o.FS,
		})
		if err != nil {
			return err
		}
	} else {
		src = train.NewMemorySource(g, pt, emb)
	}
	return t.assemble(g, o, src, p, c, l, rng)
}

// assemble is the shared tail of both preparation paths: it builds the
// encoder/decoder, selects and validates the replacement policy, and
// constructs the trainer over an already-built source. Keeping it
// single-sourced is part of the byte-identity contract between
// in-memory and dataset sessions.
func (t *lpTask) assemble(g *graph.Graph, o *Options, src *train.Source, p, c, l int, rng *rand.Rand) error {
	ps := nn.NewParamSet()
	var enc *gnn.Encoder
	var err error
	if o.Model != DistMultOnly {
		dims := encoderDims(o.Dim, o.Dim, o.Dim, o.Layers)
		enc, err = buildEncoder(o.Model, ps, dims, rng)
		if err != nil {
			src.Close()
			return err
		}
	}
	numRels := o.numRels(g)
	if numRels < max(g.NumRels, 1) {
		src.Close()
		return optErr("WithRelations", ErrBadValue,
			"graph has %d relation types, relation table sized %d", g.NumRels, numRels)
	}
	dec, err := decoder.New(o.Decoder.kindName(), ps, numRels, o.Dim, rng)
	if err != nil {
		src.Close()
		return optErr("WithDecoder", ErrBadValue, "%v", err)
	}

	var pol policy.Policy
	if o.PolicyImpl != nil {
		pol = o.PolicyImpl
	} else if o.Storage == OnDisk {
		if o.Policy == BETA {
			pol = policy.Beta{P: p, C: c}
		} else {
			comet := policy.Comet{P: p, L: l, C: c}
			if err := comet.Validate(); err != nil {
				src.Close()
				return &OptionError{Option: "WithDisk", Err: fmt.Errorf("%w: %v", ErrBadBuffer, err)}
			}
			pol = comet
		}
	} else {
		pol = policy.InMemory{P: p}
	}

	lcfg := train.LPConfig{
		Encoder: enc, Params: ps, Decoder: dec,
		Fanouts: o.Fanouts, Dirs: graph.Both,
		BatchSize: o.BatchSize, Negatives: o.Negatives,
		DenseOpt: nn.NewAdam(o.LR), EmbOpt: nn.NewSparseAdaGrad(o.EmbLR), ClipNorm: 5,
		Workers: o.Workers, PipelineDepth: o.PipelineDepth, Mode: o.Mode, Seed: o.Seed,
		Obs: o.observe(src),
	}
	t.g, t.opts, t.src, t.ps, t.enc, t.dec = g, o, src, ps, enc, dec
	t.tr = train.NewLP(lcfg, src, pol)
	return nil
}

// prepareDataset builds the trainer over a preprocessed dataset. The
// learnable embedding table is initialized fresh (same seeded init as
// the in-memory path); only the edge buckets and held-out splits come
// from the dataset, which stays read-only — disk storage creates the
// embedding files under the WithDisk directory.
func (t *lpTask) prepareDataset(g *graph.Graph, o *Options, ds *storage.Dataset) error {
	man := ds.Man
	if o.Relations > 0 && o.Relations != max(man.NumRels, 1) {
		return optErr("WithRelations", ErrDatasetMismatch,
			"dataset has %d relation types, WithRelations(%d)", man.NumRels, o.Relations)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	p, c, l := man.Partitions, o.BufferCapacity, o.LogicalPartitions
	if l == 0 && o.PolicyImpl != nil {
		l = p // unused under an explicit policy; skip the auto-tuner
	}
	if o.Storage == InMemory {
		c, l = p, p
	} else if c == 0 || l == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: man.NumNodes, NumEdges: int(man.NumEdges), Dim: o.Dim,
			CPUBytes: o.CPUBytes, BlockBytes: o.BlockBytes,
		})
		if err != nil {
			return err
		}
		// p is baked into the dataset layout: clamp the tuned capacity
		// to it, and fall back to l = p when the tuned grouping does not
		// divide it.
		if c == 0 {
			c = min(max(tuned.C, 2), p)
		}
		if l == 0 {
			if l = tuned.L; l > p || p%l != 0 {
				l = p
			}
		}
	}
	emb := train.RandomEmbeddings(man.NumNodes, o.Dim, o.Seed)
	src, err := train.NewDatasetSource(ds, train.DatasetSourceConfig{
		InMemory: o.Storage == InMemory, Capacity: c,
		Learnable: true, WorkDir: o.Dir, InitTable: emb, Throttle: o.Throttle, FS: o.FS,
	})
	if err != nil {
		return err
	}
	return t.assemble(g, o, src, p, c, l, rng)
}

func (t *lpTask) TrainEpoch(ctx context.Context) (train.EpochStats, error) {
	return t.tr.TrainEpoch(ctx)
}

func (t *lpTask) adj() (*graph.Adjacency, error) {
	return evalAdj(&t.fullAdj, t.g, t.opts, t.src)
}

// Evaluate computes sampled-negative MRR (or full ranking for small
// graphs, as the paper does on FB15k-237) by default; a spec with
// Ranking set runs the both-sides (optionally filtered) ranking protocol
// instead, reporting MRR and Hits@k.
func (t *lpTask) Evaluate(split Split, spec *EvalSpec) (EvalResult, error) {
	edges := t.g.ValidEdges
	if split == TestSplit {
		edges = t.g.TestEdges
	}
	res := EvalResult{Task: TaskLP, Metric: "MRR", Split: split, Protocol: ProtocolSampled}
	if spec != nil && spec.Ranking {
		res.Protocol, res.Filtered = ProtocolRanking, spec.Filtered
	}
	if len(edges) == 0 {
		// Nothing to score: skip the full-table read and adjacency build
		// (expensive for dataset-backed sessions).
		return res, nil
	}
	emb, err := t.embeddings()
	if err != nil {
		return res, err
	}
	adj, err := t.adj()
	if err != nil {
		return res, err
	}

	if res.Protocol == ProtocolRanking {
		table := emb
		if t.enc != nil {
			// GNN models rank in encoder-output space: precompute the full
			// encoded entity table (chunked, per-chunk seeded — identical
			// at every worker count and bit-identical to the serving
			// snapshot's table for the same state and seed).
			table, err = encode.FullTable(encode.Config{
				Encoder: t.enc, Params: t.ps,
				Fanouts: t.opts.Fanouts, Dirs: graph.Both, Workers: t.opts.Workers,
			}, adj, encode.TensorStore{T: emb}, t.g.NumNodes, t.opts.Dim, t.opts.Seed+4)
			if err != nil {
				return res, err
			}
		}
		var filter *eval.Filter
		if spec.Filtered {
			filter = eval.NewFilter(adj, t.g.ValidEdges, t.g.TestEdges)
		}
		r := eval.Ranking(eval.RankingConfig{
			Dec: t.dec, Rel: t.dec.RelParam().Value, Table: table,
			Ks: spec.Ks, Filter: filter,
			BatchSize: t.opts.BatchSize, Workers: t.opts.Workers,
		}, edges)
		res.Value, res.MRR, res.Hits = r.MRR, r.MRR, r.Hits
		return res, nil
	}

	negatives := 1000
	if t.g.NumNodes <= 20000 {
		negatives = 0 // rank against all entities
	}
	stats, err := train.EvaluateLP(train.LPEvalConfig{
		Encoder: t.enc, Params: t.ps, Decoder: t.dec,
		Fanouts: t.opts.Fanouts, Dirs: graph.Both,
		Negatives: negatives, BatchSize: t.opts.BatchSize,
		Workers: t.opts.Workers, Seed: t.opts.Seed + 3,
	}, emb, adj, edges)
	if err != nil {
		return res, err
	}
	res.Value, res.MRR, res.Loss, res.Hits = stats.MRR, stats.MRR, stats.Loss, stats.Hits
	return res, nil
}

// embeddings returns the full base-representation table, erroring (rather
// than panicking) when the node store exposes no in-memory table.
func (t *lpTask) embeddings() (*tensor.Tensor, error) {
	if t.src.Disk != nil {
		return t.src.Disk.ReadAll()
	}
	mem, ok := t.src.Nodes.(*storage.MemoryNodeStore)
	if !ok {
		return nil, fmt.Errorf("marius: node store %T exposes no in-memory table", t.src.Nodes)
	}
	return mem.Table(), nil
}

func (t *lpTask) Epoch() int                { return t.tr.Epoch() }
func (t *lpTask) SetEpoch(e int)            { t.tr.SetEpoch(e) }
func (t *lpTask) Params() *nn.ParamSet      { return t.ps }
func (t *lpTask) Source() *train.Source     { return t.src }
func (t *lpTask) LearnableTable() bool      { return true }
func (t *lpTask) SetPolicy(p policy.Policy) { t.tr.Pol = p }
