// Package marius is the public MariusGNN API: a task-polymorphic Session
// over the storage layer (partitioned node representations, edge buckets,
// partition buffer), the processing layer (DENSE sampling, pipelined
// mini-batch training) and the replacement policies (COMET, BETA,
// NodeCache).
//
// A Session is built from a Task (node classification or link prediction),
// a graph, and functional options; training runs through a context-aware
// run loop with epoch callbacks, early stopping and checkpointing:
//
//	g := gen.SBM(gen.DefaultSBM(100_000, 1))
//	sess, err := marius.New(marius.NodeClassification(), g,
//		marius.WithModel(marius.GraphSage),
//		marius.WithFanouts(15, 10, 5),
//		marius.WithSeed(1),
//	)
//	if err != nil { ... }
//	defer sess.Close()
//
//	res, err := sess.Run(ctx,
//		marius.Epochs(10),
//		marius.EarlyStopping(3, 0.001),
//		marius.OnEpoch(func(p marius.Progress) error {
//			fmt.Println(p.Stats)
//			return nil
//		}),
//	)
//	test, err := sess.Evaluate(marius.TestSplit)
//	fmt.Printf("%s %s = %.4f\n", test.Split, test.Metric, test.Value)
//
// Disk-based out-of-core training, policies and the §6 auto-tuner are
// selected the same way:
//
//	sess, err := marius.New(marius.LinkPrediction(), g,
//		marius.WithDisk(dir, marius.Partitions(16), marius.Capacity(4)),
//		marius.WithPolicy(marius.COMET),
//		marius.WithAutotune(1<<30, 512<<10),
//	)
//
// Out-of-core training can be pipelined with WithPipeline(depth): a
// prefetcher walks the partition-visit plan up to depth visits ahead of
// the trainer, staging node partitions and edge buckets off the critical
// path while worker goroutines construct batches, so the compute stage
// never stalls on the disk. Pipelining is trajectory-preserving: batches
// compute in exact plan order with per-batch derived seeds, so a
// pipelined run produces the same losses and checkpoints as the serial
// (depth 0) default.
//
// Long runs survive restarts through Save/Restore (or the CheckpointTo run
// option): a checkpoint captures the dense parameters with optimizer
// moments, the learnable node representation table with its sparse-AdaGrad
// accumulators, the RNG seed and the epoch counter. A restored session
// evaluates identically to the saved one, and continued training
// reproduces the exact trajectory at every worker count and pipeline
// depth (kernels are bitwise deterministic and batch order is fixed by
// the plan).
//
// # Fault tolerance
//
// The storage layer absorbs transient IO errors (EINTR/EAGAIN-class
// errnos and injected faults) with a bounded-backoff retry loop and
// loops short reads and writes to completion, so POSIX partial IO never
// corrupts a partition or a checkpoint; retries are counted, never
// silent (storage_io_retries_total). Failed asynchronous evict
// write-backs are retained in memory, surface as errors on the training
// path, and are re-issued by Flush once the disk recovers — a full disk
// fails the epoch loudly instead of silently dropping updates.
//
// Crashes are survived through the run journal: a checkpointed Run
// (CheckpointTo) durably records each finished epoch before writing its
// checkpoint, and every artifact lands via atomic rename. After a kill,
// Resume rebuilds the session from the journal, restores the newest
// checkpoint, and retrains only the missing epochs; because training is
// bit-reproducible, the combined run's losses and final checkpoint are
// byte-identical to a run that was never interrupted. A crash that
// predates all durable state reports ErrNoJournal and the caller starts
// fresh.
//
// Every recovery path is driven by the deterministic fault injector in
// internal/fault (WithFaults): seeded transient errors, short IO, torn
// writes, ENOSPC, and kill -9 crash points, exercised end to end by the
// cmd/benchfault chaos harness.
package marius

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/train"
)

// Task name constants.
const (
	TaskNC = "nc"
	TaskLP = "lp"
)

// Split identifies an evaluation split.
type Split int

const (
	// ValidSplit is the validation split.
	ValidSplit Split = iota
	// TestSplit is the held-out test split.
	TestSplit
)

// String implements fmt.Stringer.
func (s Split) String() string {
	if s == TestSplit {
		return "test"
	}
	return "valid"
}

// Evaluation protocol names recorded in EvalResult.Protocol.
const (
	// ProtocolSampled is the default link-prediction protocol: MRR against
	// shared sampled negatives (full ranking on small graphs).
	ProtocolSampled = "sampled"
	// ProtocolRanking is the both-sides ranking protocol selected by
	// RankingEval/FilteredEval: every held-out edge ranked against all
	// entities on the tail and head side, reporting MRR and Hits@k.
	ProtocolRanking = "ranking"
)

// EvalResult is a structured evaluation outcome: which task produced it,
// which metric it is, on which split, under which protocol, and its
// value. Value always carries the headline metric (accuracy for node
// classification, MRR for link prediction), so run-loop consumers (early
// stopping, Best tracking) work identically under every protocol; the
// richer link-prediction fields ride alongside.
type EvalResult struct {
	Task   string // "nc" or "lp"
	Metric string // "accuracy" or "MRR"
	Split  Split
	Value  float64

	// Protocol names the evaluation protocol ("sampled" or "ranking";
	// empty for node classification). Filtered reports whether known true
	// triples were removed from the ranking candidate sets.
	Protocol string
	Filtered bool

	// Loss is the mean evaluation loss (sampled link prediction only; 0
	// elsewhere). MRR mirrors Value for link prediction. Hits maps k to
	// Hits@k (nil for node classification).
	Loss float64
	MRR  float64
	Hits map[int]float64
}

func (r EvalResult) String() string {
	s := fmt.Sprintf("%s %s %s=%.4f", r.Task, r.Split, r.Metric, r.Value)
	if r.Protocol != "" {
		p := r.Protocol
		if r.Filtered {
			p = "filtered " + p
		}
		s += fmt.Sprintf(" (%s)", p)
	}
	for _, k := range sortedKs(r.Hits) {
		s += fmt.Sprintf(" hits@%d=%.4f", k, r.Hits[k])
	}
	return s
}

func sortedKs(hits map[int]float64) []int {
	ks := make([]int, 0, len(hits))
	for k := range hits {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Task is one trainable workload over a graph. NodeClassification and
// LinkPrediction return the built-in implementations; a Session drives
// whichever it is given, with no task-specific branching.
type Task interface {
	// Name returns the short task name ("nc", "lp").
	Name() string
	// Prepare validates g against the task's requirements, relabels it for
	// partitioned training, and builds the trainer. Called once by New.
	Prepare(g *graph.Graph, o *Options) error
	// TrainEpoch runs one training epoch, honoring ctx cancellation
	// between visits and mini batches.
	TrainEpoch(ctx context.Context) (train.EpochStats, error)
	// Evaluate computes the task metric on a split under the given
	// evaluation spec (nil means the task default protocol). Tasks reject
	// specs they cannot honor — e.g. ranking on node classification —
	// with an *OptionError.
	Evaluate(split Split, spec *EvalSpec) (EvalResult, error)
	// Epoch returns the number of completed epochs; SetEpoch overrides it
	// when restoring a checkpoint.
	Epoch() int
	SetEpoch(int)
	// Params returns the dense trainable parameters.
	Params() *nn.ParamSet
	// Source returns the storage-layer handles.
	Source() *train.Source
	// LearnableTable reports whether the node representation table is
	// trained (link prediction) and therefore belongs in checkpoints;
	// fixed feature tables (node classification) are reproducible from
	// the graph and are only shape-validated on restore.
	LearnableTable() bool
	// SetPolicy overrides the replacement policy (policy experiments).
	SetPolicy(policy.Policy)
}

// Session is a configured training task over a graph: the unit the run
// loop, evaluation and checkpointing operate on.
type Session struct {
	graph *graph.Graph
	task  Task
	opts  Options
}

// New builds a Session running task over g with the given options applied
// on top of the paper defaults. Options are validated eagerly: the first
// invalid option or invalid combination is returned as an *OptionError
// wrapping one of the Err... sentinels. The graph is relabeled in place
// for partitioned training (deterministically, given the same seed).
func New(task Task, g *graph.Graph, opts ...Option) (*Session, error) {
	if task == nil {
		return nil, optErr("New", ErrBadValue, "nil task")
	}
	if g == nil {
		return nil, optErr("New", ErrBadValue, "nil graph")
	}
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.resolve(task.Name()); err != nil {
		return nil, err
	}
	if err := task.Prepare(g, &o); err != nil {
		return nil, err
	}
	return &Session{graph: g, task: task, opts: o}, nil
}

// Graph returns the (relabeled) graph the session trains on.
func (s *Session) Graph() *graph.Graph { return s.graph }

// Task returns the session's task.
func (s *Session) Task() Task { return s.task }

// Options returns the resolved configuration.
func (s *Session) Options() Options { return s.opts }

// Params returns the dense trainable parameters.
func (s *Session) Params() *nn.ParamSet { return s.task.Params() }

// TrainEpoch runs one training epoch. Most callers should prefer Run.
func (s *Session) TrainEpoch(ctx context.Context) (train.EpochStats, error) {
	return s.task.TrainEpoch(ctx)
}

// Evaluate computes the task metric on a split. With no options, the
// task default runs: accuracy for node classification, sampled-negative
// MRR for link prediction. RankingEval and FilteredEval switch
// link-prediction sessions to the (optionally filtered) both-sides
// ranking protocol, filling MRR and Hits@k in the result.
func (s *Session) Evaluate(split Split, opts ...EvalOption) (EvalResult, error) {
	var spec *EvalSpec
	if len(opts) > 0 {
		spec = &EvalSpec{}
		for _, opt := range opts {
			if err := opt(spec); err != nil {
				return EvalResult{}, err
			}
		}
	}
	return s.task.Evaluate(split, spec)
}

// SetPolicy overrides the replacement policy (used by policy-comparison
// experiments to swap COMET/BETA on an otherwise identical session).
func (s *Session) SetPolicy(pol policy.Policy) { s.task.SetPolicy(pol) }

// Close releases the session's storage.
func (s *Session) Close() error { return s.task.Source().Close() }
