package marius_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/marius"
)

// The observability determinism contract: a fully instrumented run
// (metrics registry + trace file) writes a byte-identical checkpoint
// to an uninstrumented run of the same configuration, and reports the
// same losses. Instrumentation observes the trajectory; it must never
// be part of it.
func TestCheckpointByteIdenticalWithObservability(t *testing.T) {
	dir := t.TempDir()
	run := func(name string, opts ...marius.Option) (string, []float64) {
		g := gen.KG(gen.KGConfig{
			NumEntities: 900, NumRelations: 6, NumEdges: 9000,
			ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 41,
		})
		all := append([]marius.Option{
			marius.WithModel(marius.GraphSage), marius.WithFanouts(6),
			marius.WithDim(16), marius.WithBatchSize(512), marius.WithNegatives(64),
			marius.WithDisk(t.TempDir(), marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)),
			marius.WithWorkers(2), marius.WithPipeline(2), marius.WithSeed(41),
		}, opts...)
		sess, err := marius.New(marius.LinkPrediction(), g, all...)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Run(context.Background(), marius.Epochs(2))
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for _, st := range res.Epochs {
			losses = append(losses, st.Loss)
		}
		path := filepath.Join(dir, name+".ckpt")
		if err := sess.Save(path); err != nil {
			t.Fatal(err)
		}
		return path, losses
	}

	plainPath, plainLoss := run("plain")

	reg := marius.NewMetrics()
	tracePath := filepath.Join(dir, "trace.jsonl")
	tr, err := marius.NewTracer(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	obsPath, obsLoss := run("observed", marius.WithMetrics(reg), marius.WithTrace(tr))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	for e := range plainLoss {
		if plainLoss[e] != obsLoss[e] {
			t.Fatalf("epoch %d loss diverged under instrumentation: %v vs %v", e+1, plainLoss[e], obsLoss[e])
		}
	}
	a, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty checkpoint")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints differ under instrumentation (%d vs %d bytes)", len(a), len(b))
	}

	// The registry covers training, pipeline, and storage families with
	// non-trivial values.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"train_epochs_total 2",
		"pipeline_visits_loaded_total",
		"pipeline_batches_total",
		`storage_bytes_read_total{store="node"}`,
		`storage_prefetch_hit_rate{store="node"}`,
		"storage_fragcache_hits_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	// The trace file is chrome://tracing-loadable JSON and its spans
	// cover at least the three pipeline stages.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Ph   string `json:"ph"`
		Cat  string `json:"cat"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	stages := map[string]bool{}
	for _, e := range events {
		if e.Ph == "X" {
			stages[e.Cat+"/"+e.Name] = true
		}
	}
	for _, want := range []string{"pipeline/prefetch", "pipeline/batch_build", "pipeline/compute"} {
		if !stages[want] {
			t.Errorf("trace missing %s spans (have %v)", want, stages)
		}
	}
	// Dirty partitions were evicted during the rotation, so the evict
	// write-back row should be present too.
	if !stages["storage/evict_writeback"] {
		t.Errorf("trace missing storage/evict_writeback spans (have %v)", stages)
	}
}
