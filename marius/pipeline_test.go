package marius_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/marius"
)

// Tests for the pipelined out-of-core executor behind WithPipeline: the
// equivalence contract (a pipelined epoch computes the exact trajectory
// of the serial one) and race coverage for the prefetcher/builder/compute
// handoffs (`go test -race` runs these in the dedicated CI job).

// lpDiskSession builds an on-disk LP session with the given pipeline
// depth and workers over an identically generated graph.
func lpDiskSession(t *testing.T, dir string, depth, workers int) *marius.Session {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 900, NumRelations: 6, NumEdges: 9000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 41,
	})
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(6),
		marius.WithDim(16), marius.WithBatchSize(512), marius.WithNegatives(64),
		marius.WithDisk(dir, marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)),
		marius.WithWorkers(workers), marius.WithPipeline(depth), marius.WithSeed(41),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// The headline equivalence property: a pipelined multi-worker run writes
// a byte-identical checkpoint to the serial single-worker run — same
// visit sequence, same batch order, same per-batch RNG, same kernels —
// and reports identical per-epoch losses along the way.
func TestPipelinedCheckpointMatchesSerialByteForByte(t *testing.T) {
	dir := t.TempDir()
	run := func(name string, depth, workers int) (string, []float64, int) {
		sess := lpDiskSession(t, t.TempDir(), depth, workers)
		defer sess.Close()
		var losses []float64
		visits := 0
		res, err := sess.Run(context.Background(), marius.Epochs(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range res.Epochs {
			losses = append(losses, st.Loss)
			visits += st.Visits
		}
		path := filepath.Join(dir, name+".ckpt")
		if err := sess.Save(path); err != nil {
			t.Fatal(err)
		}
		return path, losses, visits
	}

	serialPath, serialLoss, serialVisits := run("serial", 0, 1)
	pipePath, pipeLoss, pipeVisits := run("pipelined", 2, 3)

	if serialVisits != pipeVisits {
		t.Fatalf("visit sequence diverged: serial %d visits, pipelined %d", serialVisits, pipeVisits)
	}
	for e := range serialLoss {
		if serialLoss[e] != pipeLoss[e] {
			t.Fatalf("epoch %d loss diverged: serial %v, pipelined %v", e+1, serialLoss[e], pipeLoss[e])
		}
	}
	a, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pipePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty checkpoint")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints differ (%d vs %d bytes): pipelined training no longer reproduces the serial trajectory", len(a), len(b))
	}
}

// Pipeline stats surface through EpochStats: a pipelined disk epoch must
// report its depth, prefetched visits, and partition prefetch hits.
func TestPipelineStatsReported(t *testing.T) {
	sess := lpDiskSession(t, t.TempDir(), 2, 2)
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pipeline.Depth != 2 || st.Pipeline.Workers != 2 {
		t.Fatalf("pipeline config not reported: %+v", st.Pipeline)
	}
	if st.Pipeline.VisitsLoaded != st.Visits {
		t.Fatalf("prefetcher loaded %d of %d visits", st.Pipeline.VisitsLoaded, st.Visits)
	}
	if st.IO.PrefetchHits == 0 {
		t.Fatalf("pipelined epoch recorded no partition prefetch hits: %+v", st.IO)
	}
	// Serial epochs report depth 0 and leave the executor's wait counters
	// at zero (the inline path never blocks on a stage).
	serial := lpDiskSession(t, t.TempDir(), 0, 1)
	defer serial.Close()
	st0, err := serial.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st0.Pipeline.Depth != 0 || st0.Pipeline.LoadWait != 0 || st0.Pipeline.BatchWait != 0 {
		t.Fatalf("serial epoch reported pipeline activity: %+v", st0.Pipeline)
	}
}

// Race coverage: full NC and LP epochs on disk with WithPipeline(2) and
// WithWorkers(4) exercise every cross-goroutine handoff — prefetcher to
// compute, build workers to compute, async partition staging, and the
// staging-pool recycling.
func TestParallelNCEpochWithPipeline2Workers4(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 800, NumClasses: 4, AvgDegree: 8, FeatureDim: 8,
		Homophily: 0.8, FeatNoise: 2.0, TrainFrac: 0.5, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: 43,
	})
	sess, err := marius.New(marius.NodeClassification(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(6, 6),
		marius.WithDim(12), marius.WithBatchSize(64),
		marius.WithDisk(t.TempDir(), marius.Partitions(8), marius.Capacity(2)),
		marius.WithWorkers(4), marius.WithPipeline(2), marius.WithSeed(43),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 || st.Examples == 0 {
		t.Fatalf("pipelined NC epoch trained nothing: %+v", st)
	}
	if st.Visits < 2 {
		t.Fatalf("want a multi-visit rotation to exercise the prefetcher, got %d visits", st.Visits)
	}
	if _, err := sess.Evaluate(marius.ValidSplit); err != nil {
		t.Fatal(err)
	}
}

func TestParallelLPEpochWithPipeline2Workers4(t *testing.T) {
	sess := lpDiskSession(t, t.TempDir(), 2, 4)
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 || st.Examples == 0 {
		t.Fatalf("pipelined LP epoch trained nothing: %+v", st)
	}
	if _, err := sess.Evaluate(marius.ValidSplit); err != nil {
		t.Fatal(err)
	}
}

// Cancellation mid-epoch must abort a pipelined run promptly and leave
// the session retryable from the same epoch.
func TestPipelinedEpochCancellation(t *testing.T) {
	sess := lpDiskSession(t, t.TempDir(), 2, 2)
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.TrainEpoch(ctx); err == nil {
		t.Fatal("canceled pipelined epoch returned nil error")
	}
	// The failed epoch did not advance the counter; a clean retry works.
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch counter advanced on canceled epoch: %d", st.Epoch)
	}
}
