package marius

import (
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/train"
)

// Metrics is a process-wide metrics registry: lock-free counters,
// gauges, and histograms with hand-rolled Prometheus text exposition
// (WritePrometheus / Handler). Share one registry between a session
// and any HTTP listener; see cmd/mariusgnn's -metrics-addr flag.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer records pipeline and storage stage spans in Chrome Trace
// Event Format (load the file in chrome://tracing or Perfetto).
type Tracer = obs.Tracer

// NewTracer creates (truncating) a trace file at path. Close it after
// the session finishes to flush and terminate the JSON array.
func NewTracer(path string) (*Tracer, error) { return obs.CreateTrace(path) }

// WithMetrics registers the session's training, pipeline, and storage
// metrics on m. Instrumentation is lock-free and read-only with
// respect to training state: trajectories and checkpoints are
// byte-identical with metrics on or off.
func WithMetrics(m *Metrics) Option {
	return func(o *Options) error {
		if m == nil {
			return optErr("WithMetrics", ErrBadValue, "nil registry")
		}
		o.Metrics = m
		return nil
	}
}

// WithTrace emits per-stage spans (partition prefetch, batch build,
// compute, evict write-back) to t during training. Same determinism
// guarantee as WithMetrics.
func WithTrace(t *Tracer) Option {
	return func(o *Options) error {
		if t == nil {
			return optErr("WithTrace", ErrBadValue, "nil tracer")
		}
		o.Tracer = t
		return nil
	}
}

// observe wires the configured observability into a task's source and
// returns the trainer hooks (nil when neither metrics nor tracing was
// requested).
func (o *Options) observe(src *train.Source) *train.Obs {
	if o.Metrics == nil && o.Tracer == nil {
		return nil
	}
	ob := train.NewObs(o.Metrics, o.Tracer)
	if src != nil {
		if src.Disk != nil {
			storage.RegisterStats(o.Metrics, "node", src.Disk.Stats())
			src.Disk.SetTracer(o.Tracer)
		}
		if src.Edges != nil {
			storage.RegisterStats(o.Metrics, "edge", src.Edges.Stats())
			src.FragCache().Register(o.Metrics)
		}
	}
	return ob
}
