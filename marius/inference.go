package marius

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"repro/internal/serve"
)

// ServeConfig tunes the inference server; the zero value is usable
// (micro-batches of up to 32 requests, 2ms batching window).
type ServeConfig struct {
	// MaxBatch caps the micro-batch size; concurrent requests aggregate
	// into one forward pass up to this many.
	MaxBatch int
	// MaxWait bounds how long a request waits for co-batched requests
	// after arriving at an idle server.
	MaxWait time.Duration
	// QueueCap bounds the request queue; a request arriving at a full
	// queue is shed with HTTP 503 + Retry-After instead of queueing
	// without bound.
	QueueCap int
	// Workers is the kernel fan-out. Results are bitwise identical at
	// every worker count.
	Workers int
	// Seed mixes into request-derived sampling seeds.
	Seed int64
	// InMemory loads node-classification features fully into memory
	// instead of serving them from the partition-buffered disk store
	// (quantized datasets stay compressed in memory).
	InMemory bool
	// QuantizeTable ("fp16" or "int8") stores the precomputed
	// link-prediction encoding table quantized, trading exact float32
	// scores for a half- or quarter-size resident table. Results remain
	// bit-identical across worker counts and batchings.
	QuantizeTable string
	// Tracer, when non-nil, records serving-stage spans (queue wait,
	// sample, encode, decode) in Chrome Trace Event Format; see
	// NewTracer. Purely observational.
	Tracer *Tracer
	// RequestTimeout, when positive, bounds each request's total time in
	// the server (queue wait plus its micro-batch); expiry returns
	// context.DeadlineExceeded (HTTP 504). Zero imposes no deadline.
	RequestTimeout time.Duration
	// Hooks optionally attaches chaos-testing instrumentation (see
	// ServeHooks); nil costs nothing.
	Hooks *ServeHooks
}

// ServeHooks are chaos-testing instrumentation points for the inference
// server (e.g. a BeforeBatch hook that panics to exercise the server's
// fault containment).
type ServeHooks = serve.Hooks

// InferenceServer serves forward-only predictions from a checkpoint over
// a prepared dataset: Predict (node classification), TopK (link
// prediction tails), Reload (hot checkpoint swap), Statz, Handler (the
// HTTP surface) and Close.
type InferenceServer = serve.Server

// InferenceSnapshot is one loaded checkpoint inside an InferenceServer.
type InferenceSnapshot = serve.Snapshot

// PredictRequest asks an InferenceServer for node classifications.
type PredictRequest = serve.PredictRequest

// PredictResponse carries per-node argmax classes and logits.
type PredictResponse = serve.PredictResponse

// TopKRequest asks an InferenceServer for the best tails of (src, rel, ?).
type TopKRequest = serve.TopKRequest

// TopKResponse lists tail entities in descending score order.
type TopKResponse = serve.TopKResponse

// ErrServerClosed is returned by inference calls after the server closed.
var ErrServerClosed = serve.ErrClosed

// ErrBadRequest marks invalid inference requests (wrong task,
// out-of-range node or relation IDs, empty batches).
var ErrBadRequest = serve.ErrBadRequest

// LoadForInference opens the prepared dataset at dataDir read-only,
// loads the checkpoint, validates the two against each other — a
// mismatch (wrong dimension, layer count, node count, task, ...) returns
// an error matching ErrCheckpointMismatch that names the offending field
// — and starts a forward-only inference server. Close it when done.
func LoadForInference(dataDir, checkpoint string, cfg ServeConfig) (*InferenceServer, error) {
	sctx, err := serve.Open(dataDir, serve.Config(cfg))
	if err != nil {
		return nil, err
	}
	snap, err := serve.Load(sctx, checkpoint, serve.Config(cfg))
	if err != nil {
		sctx.Close()
		return nil, err
	}
	return serve.New(sctx, snap, serve.Config(cfg)), nil
}

// Serve runs an inference server over HTTP on addr until ctx is done:
// POST /v1/predict and /v1/topk for inference, POST /reload for hot
// checkpoint swaps, GET /healthz and /statz for monitoring. See
// cmd/mariusserve for the CLI wrapper (flags, SIGHUP-triggered reload,
// graceful shutdown).
func Serve(ctx context.Context, addr, dataDir, checkpoint string, cfg ServeConfig) error {
	srv, err := LoadForInference(dataDir, checkpoint, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	hs := &http.Server{
		Addr:        addr,
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		return ctx.Err()
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
