package marius_test

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/marius"
)

// Race coverage for the multi-worker pipeline and the parallel kernels: a
// full NC and LP epoch with WithWorkers(4) on a small synthetic graph.
// Four workers spawn real goroutines in both the sampling pipeline and the
// tensor kernels regardless of GOMAXPROCS, so `go test -race` (a dedicated
// CI job) exercises every cross-goroutine handoff: job queue, prepared
// channel, kernel fan-out, and representation write-back.

func TestParallelNCEpochWithWorkers4(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 600, NumClasses: 4, AvgDegree: 8, FeatureDim: 8,
		Homophily: 0.8, FeatNoise: 2.0, TrainFrac: 0.3, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: 31,
	})
	sess, err := marius.New(marius.NodeClassification(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(6, 6),
		marius.WithDim(12), marius.WithBatchSize(64),
		marius.WithWorkers(4), marius.WithSeed(31),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 || st.Examples == 0 {
		t.Fatalf("parallel NC epoch trained nothing: %+v", st)
	}
	if _, err := sess.Evaluate(marius.ValidSplit); err != nil {
		t.Fatal(err)
	}
}

func TestParallelLPEpochWithWorkers4(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 400, NumRelations: 6, NumEdges: 5000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 32,
	})
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(6),
		marius.WithDim(12), marius.WithBatchSize(256), marius.WithNegatives(32),
		marius.WithWorkers(4), marius.WithSeed(32),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 || st.Examples == 0 {
		t.Fatalf("parallel LP epoch trained nothing: %+v", st)
	}
	if _, err := sess.Evaluate(marius.ValidSplit); err != nil {
		t.Fatal(err)
	}
}
