package marius

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/decoder"
	"repro/internal/tensor"
)

// modelMeta records the session's model shape in a checkpoint, so a
// forward-only loader (marius.LoadForInference, cmd/mariusserve) can
// rebuild the network and validate its target dataset at load time
// instead of panicking deep in the forward pass.
func (s *Session) modelMeta() ckpt.ModelMeta {
	layers := s.opts.Layers
	if s.opts.Model == DistMultOnly {
		layers = 0
	}
	meta := ckpt.ModelMeta{
		Kind:       s.opts.Model.kindName(),
		Dim:        s.opts.Dim,
		Layers:     layers,
		Fanouts:    append([]int(nil), s.opts.Fanouts...),
		NumRels:    s.opts.numRels(s.graph),
		NumClasses: s.graph.NumClasses,
		FeatureDim: s.task.Source().Nodes.Dim(),
	}
	if s.task.Name() == TaskLP {
		meta.Decoder = s.opts.Decoder.kindName()
	}
	return meta
}

// Save writes the session's full training state — dense parameters with
// optimizer moments, the learnable node representation table with its
// sparse-AdaGrad accumulators, the RNG seed and the epoch counter — plus
// the model-shape metadata and (for dataset sessions) the dataset UUID to
// path, atomically (write-to-temp + rename).
func (s *Session) Save(path string) error {
	src := s.task.Source()
	cp := &ckpt.File{
		Version: ckpt.Version,
		Task:    s.task.Name(),
		Epoch:   s.task.Epoch(),
		Seed:    s.opts.Seed,
		Params:  s.task.Params().State(),

		TableRows: src.Nodes.NumNodes(), TableCols: src.Nodes.Dim(),
		Model: s.modelMeta(),
	}
	if s.opts.dataset != nil {
		cp.DatasetUUID = s.opts.dataset.Man.UUID
	}
	if s.task.LearnableTable() {
		table, state, err := src.Nodes.Snapshot()
		if err != nil {
			return err
		}
		cp.Table, cp.OptState = table.Data, state
	}
	return ckpt.WriteFS(s.opts.FS, path, cp)
}

// restoreMismatch builds a Restore validation error that matches both
// ErrCheckpointMismatch (naming the offending field, the load-time
// contract shared with the inference loader) and the pre-existing
// ErrTaskMismatch sentinel.
func restoreMismatch(field, format string, args ...any) error {
	return fmt.Errorf("%w: %w", ErrTaskMismatch, ckpt.Mismatch(field, format, args...))
}

// Restore loads a checkpoint saved by Save into this session, which must
// run the same task with the same model shape and seed over an identically
// generated graph (construction is deterministic given the seed, so
// rebuilding with the same generator and options reproduces the same
// layout). Shape disagreements are rejected up front with an error
// matching ErrCheckpointMismatch that names the offending field (task,
// dim, layers, nodes, ...) rather than surfacing as a kernel shape panic
// mid-forward. Training continues from the checkpointed epoch; with
// WithWorkers(1) it follows the exact trajectory the saved run would have
// taken, while the default multi-worker pipeline is nondeterministic by
// design.
func (s *Session) Restore(path string) error {
	cp, err := ckpt.Read(path)
	if err != nil {
		return fmt.Errorf("marius: %w", err)
	}
	if cp.Version != ckpt.Version {
		return restoreMismatch("version", "checkpoint version %d, want %d", cp.Version, ckpt.Version)
	}
	if cp.Task != s.task.Name() {
		return restoreMismatch("task", "checkpoint task %q, session task %q", cp.Task, s.task.Name())
	}
	if cp.Seed != s.opts.Seed {
		return restoreMismatch("seed", "checkpoint seed %d, session seed %d", cp.Seed, s.opts.Seed)
	}
	// Model-shape metadata (absent from pre-metadata checkpoints, whose
	// shapes are still caught by the table and parameter checks below).
	if cp.Model.Kind != "" {
		meta := s.modelMeta()
		if cp.Model.Kind != meta.Kind {
			return restoreMismatch("model", "checkpoint model %q, session model %q", cp.Model.Kind, meta.Kind)
		}
		if cp.Model.Dim != meta.Dim {
			return restoreMismatch("dim", "checkpoint dim %d, session dim %d", cp.Model.Dim, meta.Dim)
		}
		if cp.Model.Layers != meta.Layers {
			return restoreMismatch("layers", "checkpoint layers %d, session layers %d", cp.Model.Layers, meta.Layers)
		}
		if cp.Model.NumClasses != meta.NumClasses {
			return restoreMismatch("classes", "checkpoint classes %d, session classes %d", cp.Model.NumClasses, meta.NumClasses)
		}
		if cp.Model.NumRels != meta.NumRels {
			return restoreMismatch("relations", "checkpoint relations %d, session relations %d", cp.Model.NumRels, meta.NumRels)
		}
		// Pre-multi-decoder checkpoints carry no decoder name; DistMult
		// was the only kind they could have been trained with.
		ckDec := cp.Model.Decoder
		if ckDec == "" && s.task.Name() == TaskLP {
			ckDec = decoder.KindDistMult
		}
		if ckDec != meta.Decoder {
			return restoreMismatch("decoder", "checkpoint decoder %q, session decoder %q", ckDec, meta.Decoder)
		}
	}
	src := s.task.Source()
	if cp.TableRows != src.Nodes.NumNodes() || cp.TableCols != src.Nodes.Dim() {
		return restoreMismatch("nodes", "checkpoint table %dx%d, session store %dx%d",
			cp.TableRows, cp.TableCols, src.Nodes.NumNodes(), src.Nodes.Dim())
	}
	if s.task.LearnableTable() && cp.Table == nil {
		return restoreMismatch("table", "checkpoint carries no representation table")
	}
	if err := s.task.Params().LoadState(cp.Params); err != nil {
		return restoreMismatch("params", "%v", err)
	}
	if cp.Table != nil {
		table := tensor.New(cp.TableRows, cp.TableCols)
		copy(table.Data, cp.Table)
		if err := src.Nodes.Restore(table, cp.OptState); err != nil {
			return err
		}
	}
	s.task.SetEpoch(cp.Epoch)
	return nil
}
