package marius

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpoint is the serialized session state: everything needed to resume
// training (or serve the trained model) on a freshly built session over an
// identically generated graph and identical options.
type checkpoint struct {
	Version int
	Task    string
	Epoch   int
	Seed    int64

	Params []nn.ParamState

	// TableRows/TableCols always record the store shape for validation;
	// Table/OptState carry the data only for learnable representations
	// (fixed feature tables are reproducible from the graph).
	TableRows, TableCols int
	Table                []float32
	OptState             []float32
}

// Save writes the session's full training state — dense parameters with
// optimizer moments, the learnable node representation table with its
// sparse-AdaGrad accumulators, the RNG seed and the epoch counter — to
// path, atomically (write-to-temp + rename).
func (s *Session) Save(path string) error {
	src := s.task.Source()
	cp := checkpoint{
		Version: checkpointVersion,
		Task:    s.task.Name(),
		Epoch:   s.task.Epoch(),
		Seed:    s.opts.Seed,
		Params:  s.task.Params().State(),

		TableRows: src.Nodes.NumNodes(), TableCols: src.Nodes.Dim(),
	}
	if s.task.LearnableTable() {
		table, state, err := src.Nodes.Snapshot()
		if err != nil {
			return err
		}
		cp.Table, cp.OptState = table.Data, state
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(&cp); err != nil {
		tmp.Close()
		return fmt.Errorf("marius: encode checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Restore loads a checkpoint saved by Save into this session, which must
// run the same task with the same model shape and seed over an identically
// generated graph (construction is deterministic given the seed, so
// rebuilding with the same generator and options reproduces the same
// layout). Training continues from the checkpointed epoch; with
// WithWorkers(1) it follows the exact trajectory the saved run would have
// taken, while the default multi-worker pipeline is nondeterministic by
// design.
func (s *Session) Restore(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var cp checkpoint
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return fmt.Errorf("marius: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("%w: checkpoint version %d, want %d", ErrTaskMismatch, cp.Version, checkpointVersion)
	}
	if cp.Task != s.task.Name() {
		return fmt.Errorf("%w: checkpoint task %q, session task %q", ErrTaskMismatch, cp.Task, s.task.Name())
	}
	if cp.Seed != s.opts.Seed {
		return fmt.Errorf("%w: checkpoint seed %d, session seed %d", ErrTaskMismatch, cp.Seed, s.opts.Seed)
	}
	src := s.task.Source()
	if cp.TableRows != src.Nodes.NumNodes() || cp.TableCols != src.Nodes.Dim() {
		return fmt.Errorf("%w: checkpoint table %dx%d, session store %dx%d", ErrTaskMismatch,
			cp.TableRows, cp.TableCols, src.Nodes.NumNodes(), src.Nodes.Dim())
	}
	if s.task.LearnableTable() && cp.Table == nil {
		return fmt.Errorf("%w: checkpoint carries no representation table", ErrTaskMismatch)
	}
	if err := s.task.Params().LoadState(cp.Params); err != nil {
		return fmt.Errorf("%w: %v", ErrTaskMismatch, err)
	}
	if cp.Table != nil {
		table := tensor.New(cp.TableRows, cp.TableCols)
		copy(table.Data, cp.Table)
		if err := src.Nodes.Restore(table, cp.OptState); err != nil {
			return err
		}
	}
	s.task.SetEpoch(cp.Epoch)
	return nil
}
