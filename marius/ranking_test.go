// Multi-relation API tests: decoder/relation option validation, the
// ranking-eval API, brute-force conformance of the session-level
// filtered MRR/Hits@k, bit-reproducibility across worker counts and
// ingest paths, and decoder checkpoint compatibility.
package marius_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/decoder"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/marius"
)

func TestDecoderAndRelationOptionErrors(t *testing.T) {
	nc := gen.SBM(*smallNC(1))
	lp := gen.KG(smallKG(2)) // 8 relation types
	cases := []struct {
		name   string
		task   marius.Task
		g      *graph.Graph
		opts   []marius.Option
		option string
	}{
		{"decoder on nc", marius.NodeClassification(), nc,
			[]marius.Option{marius.WithDecoder(marius.ComplEx)}, "WithDecoder"},
		{"relations on nc", marius.NodeClassification(), nc,
			[]marius.Option{marius.WithRelations(4)}, "WithRelations"},
		{"complex odd dim", marius.LinkPrediction(), lp,
			[]marius.Option{marius.WithDecoder(marius.ComplEx), marius.WithDim(9)}, "WithDecoder"},
		{"unknown decoder", marius.LinkPrediction(), lp,
			[]marius.Option{marius.WithDecoder(marius.DecoderKind(99))}, "WithDecoder"},
		{"relation table too small", marius.LinkPrediction(), lp,
			[]marius.Option{marius.WithRelations(4)}, "WithRelations"},
		{"non-positive relations", marius.LinkPrediction(), lp,
			[]marius.Option{marius.WithRelations(0)}, "WithRelations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := marius.New(tc.task, tc.g, tc.opts...)
			if !errors.Is(err, marius.ErrBadValue) {
				t.Fatalf("err = %v, want ErrBadValue", err)
			}
			var oe *marius.OptionError
			if !errors.As(err, &oe) || oe.Option != tc.option {
				t.Fatalf("err %v blames %T, want *OptionError on %q", err, err, tc.option)
			}
		})
	}
}

func TestRankingEvalOptionErrors(t *testing.T) {
	lp, err := marius.New(marius.LinkPrediction(), gen.KG(smallKG(3)),
		marius.WithModel(marius.DistMultOnly), marius.WithDim(8), marius.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if _, err := lp.Evaluate(marius.ValidSplit, marius.RankingEval(0)); !errors.Is(err, marius.ErrBadValue) {
		t.Fatalf("RankingEval(0): err = %v, want ErrBadValue", err)
	}

	nc, err := marius.New(marius.NodeClassification(), gen.SBM(*smallNC(4)),
		marius.WithDim(8), marius.WithFanouts(4, 4, 4), marius.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_, err = nc.Evaluate(marius.ValidSplit, marius.RankingEval())
	if !errors.Is(err, marius.ErrBadValue) {
		t.Fatalf("ranking eval on nc: err = %v, want ErrBadValue", err)
	}
	var oe *marius.OptionError
	if !errors.As(err, &oe) || oe.Option != "RankingEval" {
		t.Fatalf("err %v does not blame RankingEval", err)
	}
}

// decoderKinds pairs each public decoder option with its kind string.
var decoderKinds = []struct {
	kind string
	opt  marius.DecoderKind
}{
	{decoder.KindDistMult, marius.DistMult},
	{decoder.KindComplEx, marius.ComplEx},
	{decoder.KindTransE, marius.TransE},
}

// TestSessionRankingMatchesBruteForce is the end-to-end conformance test
// for the filtered-ranking protocol: for every decoder kind, the
// MRR/Hits@k the session API reports must equal — exactly, not
// approximately — a brute-force reference that rescoring every candidate
// for every held-out edge from the checkpointed model state, applying
// the documented rank rule (strictly-greater plus lower-ID ties,
// known true triples removed).
func TestSessionRankingMatchesBruteForce(t *testing.T) {
	const seed, dim = int64(31), 8
	kcfg := smallKG(seed)
	for _, tc := range decoderKinds {
		t.Run(tc.kind, func(t *testing.T) {
			sess, err := marius.New(marius.LinkPrediction(), gen.KG(kcfg),
				marius.WithModel(marius.DistMultOnly), marius.WithDecoder(tc.opt),
				marius.WithDim(dim), marius.WithNegatives(16), marius.WithBatchSize(256),
				marius.WithWorkers(2), marius.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			if _, err := sess.TrainEpoch(context.Background()); err != nil {
				t.Fatal(err)
			}
			res, err := sess.Evaluate(marius.ValidSplit, marius.RankingEval(1, 3, 10), marius.FilteredEval())
			if err != nil {
				t.Fatal(err)
			}
			if res.Protocol != marius.ProtocolRanking || !res.Filtered {
				t.Fatalf("protocol %q filtered %v, want ranking/filtered", res.Protocol, res.Filtered)
			}
			if res.Value != res.MRR {
				t.Fatalf("headline Value %v != MRR %v", res.Value, res.MRR)
			}

			// Rebuild the model state from the checkpoint.
			path := filepath.Join(t.TempDir(), "ckpt")
			if err := sess.Save(path); err != nil {
				t.Fatal(err)
			}
			cp, err := ckpt.Read(path)
			if err != nil {
				t.Fatal(err)
			}
			tbl := tensor.New(cp.TableRows, cp.TableCols)
			copy(tbl.Data, cp.Table)
			ps := nn.NewParamSet()
			dec, err := decoder.New(tc.kind, ps, cp.Model.NumRels, dim, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			if err := ps.LoadState(cp.Params); err != nil {
				t.Fatal(err)
			}
			rel := dec.RelParam().Value

			// Reproduce the session's seeded relabeling on a freshly
			// generated identical graph, then index every known true triple
			// across all three splits.
			g := gen.KG(kcfg)
			partition.Apply(g, partition.RandomOrder(g.NumNodes, seed))
			type pair = int64
			key := func(a, r int32) pair { return int64(a)<<32 | int64(uint32(r)) }
			tails := map[pair]map[int32]bool{}
			heads := map[pair]map[int32]bool{}
			for _, split := range [][]graph.Edge{g.Edges, g.ValidEdges, g.TestEdges} {
				for _, e := range split {
					tk, hk := key(e.Src, e.Rel), key(e.Dst, e.Rel)
					if tails[tk] == nil {
						tails[tk] = map[int32]bool{}
					}
					if heads[hk] == nil {
						heads[hk] = map[int32]bool{}
					}
					tails[tk][e.Dst] = true
					heads[hk][e.Src] = true
				}
			}

			var tn []float32
			if dec.Norms() {
				tn = decoder.TableNorms(tbl)
			}
			q := make([]float32, dim)
			rankOf := func(target int32, known map[int32]bool) int64 {
				var qn float32
				if dec.Norms() {
					qn = decoder.SqNorm(q)
				}
				var cn float32
				if dec.Norms() {
					cn = tn[target]
				}
				ts := decoder.ScoreOne(dec, q, tbl.Row(int(target)), qn, cn)
				rank := int64(1)
				for c := 0; c < tbl.Rows; c++ {
					cand := int32(c)
					if cand == target || known[cand] {
						continue
					}
					if dec.Norms() {
						cn = tn[c]
					}
					sc := decoder.ScoreOne(dec, q, tbl.Row(c), qn, cn)
					if sc > ts || (sc == ts && cand < target) {
						rank++
					}
				}
				return rank
			}

			ks := []int{1, 3, 10}
			var sumRR float64
			hits := map[int]int64{}
			ranked := 0
			for _, e := range g.ValidEdges {
				relRow := rel.Row(int(e.Rel))
				dec.TailQueryInto(q, tbl.Row(int(e.Src)), relRow)
				tr := rankOf(e.Dst, tails[key(e.Src, e.Rel)])
				dec.HeadQueryInto(q, tbl.Row(int(e.Dst)), relRow)
				hr := rankOf(e.Src, heads[key(e.Dst, e.Rel)])
				for _, r := range []int64{tr, hr} {
					sumRR += 1 / float64(r)
					for _, k := range ks {
						if r <= int64(k) {
							hits[k]++
						}
					}
					ranked++
				}
			}
			wantMRR := sumRR / float64(ranked)
			if res.MRR != wantMRR {
				t.Fatalf("session MRR %v, brute force %v", res.MRR, wantMRR)
			}
			for _, k := range ks {
				want := float64(hits[k]) / float64(ranked)
				if res.Hits[k] != want {
					t.Fatalf("hits@%d: session %v, brute force %v", k, res.Hits[k], want)
				}
			}
		})
	}
}

// TestRankingBitReproducible: the filtered MRR/Hits must be bitwise
// identical across kernel worker counts and across the in-memory-graph
// and prepared-dataset ingest paths at the same seed.
func TestRankingBitReproducible(t *testing.T) {
	const seed = int64(41)
	kcfg := smallKG(seed)
	opts := func(workers int) []marius.Option {
		return []marius.Option{
			marius.WithModel(marius.DistMultOnly), marius.WithDecoder(marius.ComplEx),
			marius.WithDim(8), marius.WithNegatives(32), marius.WithBatchSize(512),
			marius.WithWorkers(workers), marius.WithSeed(seed),
		}
	}
	evalRanking := func(t *testing.T, sess *marius.Session) marius.EvalResult {
		t.Helper()
		if _, err := sess.TrainEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Evaluate(marius.ValidSplit, marius.RankingEval(), marius.FilteredEval())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref, err := marius.New(marius.LinkPrediction(), gen.KG(kcfg), opts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := evalRanking(t, ref)

	wide, err := marius.New(marius.LinkPrediction(), gen.KG(kcfg), opts(4)...)
	if err != nil {
		t.Fatal(err)
	}
	defer wide.Close()
	got := evalRanking(t, wide)
	if got.MRR != want.MRR || got.Hits[1] != want.Hits[1] || got.Hits[10] != want.Hits[10] {
		t.Fatalf("workers=4 ranking diverged: MRR %v vs %v, hits %v vs %v",
			got.MRR, want.MRR, got.Hits, want.Hits)
	}

	exp, err := dataset.Export(gen.KG(kcfg), t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(dir, "lp", seed, 4)); err != nil {
		t.Fatal(err)
	}
	ds, err := marius.FromDataset(dir, opts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	fromDS := evalRanking(t, ds)
	if fromDS.MRR != want.MRR || fromDS.Hits[1] != want.Hits[1] || fromDS.Hits[10] != want.Hits[10] {
		t.Fatalf("dataset-session ranking diverged: MRR %v vs %v, hits %v vs %v",
			fromDS.MRR, want.MRR, fromDS.Hits, want.Hits)
	}
}

// TestRestoreDecoderMismatch: restoring a checkpoint trained with one
// decoder into a session built with another must fail typed, naming the
// decoder field.
func TestRestoreDecoderMismatch(t *testing.T) {
	const seed = int64(51)
	kcfg := smallKG(seed)
	build := func(kind marius.DecoderKind) *marius.Session {
		t.Helper()
		sess, err := marius.New(marius.LinkPrediction(), gen.KG(kcfg),
			marius.WithModel(marius.DistMultOnly), marius.WithDecoder(kind),
			marius.WithDim(8), marius.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	path := filepath.Join(t.TempDir(), "complex.ckpt")
	orig := build(marius.ComplEx)
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	orig.Close()

	other := build(marius.TransE)
	defer other.Close()
	err := other.Restore(path)
	if !errors.Is(err, marius.ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
	if !strings.Contains(err.Error(), "decoder") {
		t.Fatalf("error %q does not name the decoder field", err)
	}
}
