package marius

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/storage"
)

// FromDataset builds a Session over a preprocessed on-disk dataset
// directory (produced by cmd/mariusprep, or internal/dataset.Ingest): the
// counterpart of New for data too large to materialize as a graph.Graph.
// The task, seed and partition count come from the dataset manifest;
// options apply on top of them exactly as with New, so
//
//	sess, err := marius.FromDataset(dir, marius.WithPipeline(2))
//
// trains the prepared data with the configuration it was prepped for.
// Edge buckets are served straight off the dataset's bucket-sorted file
// (the fragment cache warms from disk on demand — no ingest-time
// re-sort), and node representations come from the dataset's feature
// shard (node classification; paged through a partition buffer under
// WithDisk, loaded into memory otherwise) or a freshly seeded learnable
// table (link prediction; its files are created under the WithDisk
// directory — the dataset itself is never written).
//
// Because ingestion already applied the same seeded partition
// relabeling New applies to an in-memory graph, a dataset session at the
// manifest seed trains byte-identically — same per-epoch losses, same
// checkpoints — to a New session over the equivalent graph with the same
// options. Overriding WithSeed trains with fresh randomness but keeps
// the prepped (manifest-seed) node layout. Overriding the partition
// count is rejected with ErrDatasetMismatch: p is baked into the bucket
// layout; re-run mariusprep prep to change it.
//
// Training is fully out-of-core, but Evaluate is not: like the
// in-memory path, it materializes the full edge list and adjacency (and
// for link prediction the full representation table) on first use. For
// datasets whose edge list exceeds RAM, train without per-epoch
// evaluation and evaluate sampled splits on a larger machine. The
// byte-identity contract covers training (losses, checkpoints), not
// fanout-sampled evaluation: the dataset session's evaluation adjacency
// is built from bucket-major edge order while a New session uses its
// original edge-list order, so sampled neighbor draws — and therefore
// sampled accuracy/MRR — can differ slightly between the two at the
// same trained state.
func FromDataset(dir string, opts ...Option) (*Session, error) {
	// The dataset files themselves must open through any injected
	// filesystem, so probe the options for WithFaults before OpenDataset
	// runs (the full application below still validates everything).
	probe := defaultOptions()
	for _, opt := range opts {
		if err := opt(&probe); err != nil {
			return nil, err
		}
	}
	ds, err := storage.OpenDatasetFS(probe.FS, dir)
	if err != nil {
		return nil, err
	}
	man := ds.Man
	var task Task
	switch man.Task {
	case TaskNC:
		task = NodeClassification()
	case TaskLP:
		task = LinkPrediction()
	default:
		return nil, optErr("FromDataset", ErrDatasetMismatch, "manifest task %q is not trainable", man.Task)
	}
	o := defaultOptions()
	o.Seed = man.Seed
	o.Partitions = man.Partitions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.Partitions != man.Partitions {
		return nil, optErr("FromDataset", ErrDatasetMismatch,
			"dataset prepared with %d partitions, options request %d", man.Partitions, o.Partitions)
	}
	if o.BufferCapacity > man.Partitions {
		return nil, optErr("FromDataset", ErrBadBuffer,
			"buffer capacity %d exceeds the dataset's %d partitions", o.BufferCapacity, man.Partitions)
	}
	if err := o.resolve(task.Name()); err != nil {
		return nil, err
	}
	o.dataset = ds

	// The session graph carries only the dataset's node-level metadata
	// and held-out splits; the training edge list stays on disk.
	g := &graph.Graph{NumNodes: man.NumNodes, NumRels: man.NumRels, NumClasses: man.NumClasses}
	if g.Labels, err = ds.ReadLabels(); err != nil {
		return nil, err
	}
	if g.TrainNodes, g.ValidNodes, g.TestNodes, err = ds.ReadSplits(); err != nil {
		return nil, err
	}
	if g.ValidEdges, g.TestEdges, err = ds.ReadHeldOut(); err != nil {
		return nil, err
	}
	if err := task.Prepare(g, &o); err != nil {
		return nil, fmt.Errorf("marius: dataset %s: %w", dir, err)
	}
	return &Session{graph: g, task: task, opts: o}, nil
}
