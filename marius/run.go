package marius

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/train"
)

// ErrStop, returned from an OnEpoch callback, stops the run cleanly: Run
// returns the result accumulated so far with StopReason StoppedByCallback
// and a nil error.
var ErrStop = errors.New("marius: stop run")

// Progress is delivered to OnEpoch callbacks after every epoch.
type Progress struct {
	// Epoch is the trainer's epoch counter (it keeps counting across a
	// checkpoint resume).
	Epoch int
	// Stats is the epoch's training statistics.
	Stats train.EpochStats
	// Valid is the validation result, when validation ran this epoch
	// (EvalEvery or EarlyStopping); nil otherwise.
	Valid *EvalResult
}

// StopReason records why Run returned.
type StopReason string

const (
	// Completed: all requested epochs ran.
	Completed StopReason = "completed"
	// EarlyStopped: the validation metric plateaued for `patience` epochs.
	EarlyStopped StopReason = "early-stopped"
	// Canceled: the context was canceled or its deadline passed.
	Canceled StopReason = "canceled"
	// StoppedByCallback: an OnEpoch callback returned ErrStop.
	StoppedByCallback StopReason = "callback"
	// Failed: an epoch or evaluation returned an error.
	Failed StopReason = "failed"
)

// RunResult summarizes a Run.
type RunResult struct {
	// Epochs holds one entry per completed epoch, in order.
	Epochs []train.EpochStats
	// Valid holds the validation results of epochs where validation ran.
	Valid []EvalResult
	// Best is the best validation result seen, when validation ran.
	Best *EvalResult
	// Stopped records why the run ended.
	Stopped StopReason
}

type runConfig struct {
	epochs    int
	evalEvery int
	onEpoch   []func(Progress) error
	early     *earlyStopConfig
	ckptPath  string
	ckptEvery int
	// journal/journalPath carry a pre-loaded run journal into Run when
	// Resume continues a crashed run; fresh checkpointed dataset runs
	// create their own.
	journal     *ckpt.Journal
	journalPath string
	evalOpts    []EvalOption
}

type earlyStopConfig struct {
	patience int
	minDelta float64
}

// RunOption configures one Run.
type RunOption func(*runConfig) error

// Epochs sets how many epochs to train (default 1).
func Epochs(n int) RunOption {
	return func(rc *runConfig) error {
		if n <= 0 {
			return optErr("Epochs", ErrBadValue, "epochs %d", n)
		}
		rc.epochs = n
		return nil
	}
}

// OnEpoch registers a callback invoked after every epoch (multiple
// callbacks run in registration order). Returning ErrStop ends the run
// cleanly; any other non-nil error aborts it.
func OnEpoch(fn func(Progress) error) RunOption {
	return func(rc *runConfig) error {
		if fn == nil {
			return optErr("OnEpoch", ErrBadValue, "nil callback")
		}
		rc.onEpoch = append(rc.onEpoch, fn)
		return nil
	}
}

// EvalEvery evaluates the validation split every n epochs, delivering the
// result through Progress.Valid and RunResult.Valid.
func EvalEvery(n int) RunOption {
	return func(rc *runConfig) error {
		if n <= 0 {
			return optErr("EvalEvery", ErrBadValue, "eval interval %d", n)
		}
		rc.evalEvery = n
		return nil
	}
}

// EvalWith sets the EvalOptions applied to every in-run validation pass
// (EvalEvery / EarlyStopping), e.g. RankingEval and FilteredEval for
// MRR/Hits@k instead of the sampled default. The options are validated
// eagerly against an empty spec so a bad cutoff fails the Run call
// rather than the first evaluation epochs later.
func EvalWith(opts ...EvalOption) RunOption {
	return func(rc *runConfig) error {
		var probe EvalSpec
		for _, opt := range opts {
			if err := opt(&probe); err != nil {
				return err
			}
		}
		rc.evalOpts = append(rc.evalOpts, opts...)
		return nil
	}
}

// EarlyStopping stops the run once the validation metric has not improved
// by at least minDelta for patience consecutive evaluations. It implies
// EvalEvery(1) unless a sparser interval was set explicitly.
func EarlyStopping(patience int, minDelta float64) RunOption {
	return func(rc *runConfig) error {
		if patience <= 0 || minDelta < 0 {
			return optErr("EarlyStopping", ErrBadValue, "patience %d minDelta %g", patience, minDelta)
		}
		rc.early = &earlyStopConfig{patience: patience, minDelta: minDelta}
		return nil
	}
}

// CheckpointTo saves a checkpoint to path every `every` epochs and when
// the run ends cleanly (completion, early stopping, or ErrStop), so long
// disk-mode runs survive restarts (resume with Session.Restore). A
// canceled or failed run leaves the last interval checkpoint in place
// rather than recording a partially-trained epoch.
func CheckpointTo(path string, every int) RunOption {
	return func(rc *runConfig) error {
		if path == "" {
			return optErr("CheckpointTo", ErrBadValue, "empty path")
		}
		if every <= 0 {
			return optErr("CheckpointTo", ErrBadValue, "interval %d", every)
		}
		rc.ckptPath = path
		rc.ckptEvery = every
		return nil
	}
}

// Run drives the training loop: train an epoch, optionally evaluate,
// checkpoint, invoke callbacks, and check for cancellation and early
// stopping — the Session analogue of the per-epoch loops every caller
// used to hand-roll. A canceled context returns ctx.Err() with the
// progress made so far in RunResult.
func (s *Session) Run(ctx context.Context, opts ...RunOption) (*RunResult, error) {
	rc := runConfig{epochs: 1}
	for _, opt := range opts {
		if err := opt(&rc); err != nil {
			return nil, err
		}
	}
	evalEvery := rc.evalEvery
	if rc.early != nil && evalEvery == 0 {
		evalEvery = 1
	}

	res := &RunResult{Stopped: Completed}

	// Checkpointed dataset runs keep a durable run journal next to the
	// checkpoint: target epoch count, the options needed to rebuild the
	// session, and one record per completed epoch. Written atomically
	// before the first epoch and after every completed one, it is what
	// lets Resume finish a killed run with losses and a final checkpoint
	// byte-identical to an uninterrupted one. In-memory (New) sessions
	// have no dataset directory to rebuild from and are not journaled.
	jn, jpath := rc.journal, rc.journalPath
	if jn == nil && rc.ckptPath != "" && s.opts.dataset != nil {
		j, err := s.newJournal(&rc)
		if err != nil {
			res.Stopped = Failed
			return res, err
		}
		jn, jpath = j, ckpt.JournalPath(rc.ckptPath)
	}
	writeJournal := func() error {
		if jn == nil {
			return nil
		}
		if err := ckpt.WriteJournal(s.opts.FS, jpath, jn); err != nil {
			res.Stopped = Failed
			return fmt.Errorf("marius: run journal: %w", err)
		}
		return nil
	}
	if err := writeJournal(); err != nil {
		return res, err
	}

	savedAt := -1
	saveCkpt := func(e int) error {
		if rc.ckptPath == "" || savedAt == e || e < 0 {
			return nil
		}
		if err := s.Save(rc.ckptPath); err != nil {
			res.Stopped = Failed
			return fmt.Errorf("marius: checkpoint: %w", err)
		}
		savedAt = e
		return nil
	}

	esBest := math.Inf(-1) // early-stopping reference: best metric so far
	bad := 0
	for e := 0; e < rc.epochs; e++ {
		if err := ctx.Err(); err != nil {
			res.Stopped = Canceled
			return res, err
		}
		st, err := s.task.TrainEpoch(ctx)
		if err != nil {
			res.Stopped = Failed
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				res.Stopped = Canceled
			}
			return res, err
		}
		res.Epochs = append(res.Epochs, st)
		if jn != nil {
			// Journal the epoch before any interval checkpoint: the
			// invariant Resume relies on is that the journal never lags
			// the checkpoint, so the checkpoint's own epoch counter stays
			// authoritative and every checkpointed epoch has its loss on
			// record.
			jn.Done = append(jn.Done, ckpt.EpochRecord{Epoch: st.Epoch, Loss: st.Loss, Metric: st.Metric})
			if err := writeJournal(); err != nil {
				return res, err
			}
		}

		var valid *EvalResult
		if evalEvery > 0 && (e+1)%evalEvery == 0 {
			ev, err := s.Evaluate(ValidSplit, rc.evalOpts...)
			if err != nil {
				res.Stopped = Failed
				return res, err
			}
			valid = &ev
			res.Valid = append(res.Valid, ev)
			if res.Best == nil || ev.Value > res.Best.Value {
				best := ev
				res.Best = &best
			}
		}

		// Interval cadence keys off the trainer's absolute epoch counter
		// (st.Epoch == e+1 for a fresh run), so a resumed run checkpoints
		// at the same absolute epochs the uninterrupted run would have.
		if rc.ckptEvery > 0 && st.Epoch%rc.ckptEvery == 0 {
			if err := saveCkpt(e); err != nil {
				return res, err
			}
		}

		p := Progress{Epoch: st.Epoch, Stats: st, Valid: valid}
		for _, fn := range rc.onEpoch {
			if err := fn(p); err != nil {
				if errors.Is(err, ErrStop) {
					res.Stopped = StoppedByCallback
					return res, saveCkpt(e)
				}
				res.Stopped = Failed
				return res, err
			}
		}

		if rc.early != nil && valid != nil {
			// Improvement means beating the best metric so far by minDelta
			// (both task metrics — accuracy and MRR — are higher-better).
			if valid.Value > esBest+rc.early.minDelta {
				esBest = valid.Value
				bad = 0
			} else {
				bad++
				if bad >= rc.early.patience {
					res.Stopped = EarlyStopped
					return res, saveCkpt(e)
				}
			}
		}
	}
	return res, saveCkpt(rc.epochs - 1)
}
