package marius_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/marius"
)

// prepNC ingests a small exported SBM graph for node classification.
func prepNC(t *testing.T, seed int64, parts int) string {
	t.Helper()
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 400, NumClasses: 4, AvgDegree: 5, FeatureDim: 8,
		Homophily: 0.8, FeatNoise: 1, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: 13,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "nc", seed, parts)); err != nil {
		t.Fatal(err)
	}
	return out
}

// crashVariant is one cell of the crash-resume differential matrix.
type crashVariant struct {
	name    string
	prep    func(t *testing.T, seed int64, parts int) string
	opts    func(workDir string) []marius.Option
	epochs  int
	ckEvery int
}

func crashVariants() []crashVariant {
	base := func(dim int, disk []marius.DiskOption, extra ...marius.Option) func(string) []marius.Option {
		return func(workDir string) []marius.Option {
			return append([]marius.Option{
				marius.WithDisk(workDir, disk...),
				marius.WithDim(dim),
				marius.WithFanouts(4, 4),
				marius.WithBatchSize(64),
			}, extra...)
		}
	}
	ncDisk := []marius.DiskOption{marius.Capacity(2)}
	// COMET needs the buffer to hold at least 2 logical partitions; with
	// p=4 and c=2 that means l=p.
	lpDisk := []marius.DiskOption{marius.Capacity(2), marius.LogicalPartitions(4)}
	return []crashVariant{
		{name: "nc-serial", prep: prepNC, opts: base(8, ncDisk), epochs: 3, ckEvery: 1},
		{name: "nc-pipelined", prep: prepNC, opts: base(8, ncDisk, marius.WithPipeline(2)), epochs: 3, ckEvery: 1},
		{name: "lp-serial", prep: prepLP, opts: base(8, lpDisk, marius.WithNegatives(16)), epochs: 3, ckEvery: 1},
		{name: "lp-pipelined", prep: prepLP, opts: base(8, lpDisk, marius.WithNegatives(16), marius.WithPipeline(2)), epochs: 3, ckEvery: 1},
	}
}

// runToCompletion trains a full checkpointed run through fsys (nil for
// the real filesystem), returning the result and the final checkpoint
// bytes.
func runToCompletion(t *testing.T, dataDir, workDir, ckptDir string, v crashVariant, fsys fault.FS) (*marius.RunResult, []byte) {
	t.Helper()
	opts := v.opts(workDir)
	if fsys != nil {
		opts = append(opts, marius.WithFaults(fsys))
	}
	sess, err := marius.FromDataset(dataDir, opts...)
	if err != nil {
		t.Fatalf("FromDataset: %v", err)
	}
	defer sess.Close()
	ckptPath := filepath.Join(ckptDir, "run.ckpt")
	res, err := sess.Run(context.Background(),
		marius.Epochs(v.epochs), marius.CheckpointTo(ckptPath, v.ckEvery))
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	raw, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("read final checkpoint: %v", err)
	}
	return res, raw
}

// sameLosses compares two loss trajectories bit-exactly.
func sameLosses(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d epochs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("%s: epoch %d loss %v != %v (not bit-identical)", label, i+1, got[i], want[i])
		}
	}
}

func losses(res *marius.RunResult) []float64 {
	out := make([]float64, 0, len(res.Epochs))
	for _, st := range res.Epochs {
		out = append(out, st.Loss)
	}
	return out
}

// TestCrashResumeDifferential is the crash-safety gate: kill a
// checkpointed dataset training run at a randomized write count
// (simulating kill -9: the Nth write is torn and every later IO fails),
// then Resume it and require the combined run to produce per-epoch
// losses and a final checkpoint byte-identical to a run that was never
// interrupted — across serial and pipelined execution, for both tasks.
func TestCrashResumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("crash differential trains many small runs")
	}
	for _, v := range crashVariants() {
		t.Run(v.name, func(t *testing.T) {
			dataDir := v.prep(t, 11, 4)

			// Reference run, through a zero-rate injector: identical to a
			// plain run (passthrough) but counts writes, bounding the kill
			// points.
			counter := fault.NewInjector(fault.OS, fault.Config{Seed: 1})
			wantRes, wantCkpt := runToCompletion(t, dataDir, t.TempDir(), t.TempDir(), v, counter)
			wantLosses := losses(wantRes)
			totalWrites := counter.Writes()
			if totalWrites == 0 {
				t.Fatal("reference run performed no writes; crash points are meaningless")
			}

			rng := rand.New(rand.NewSource(7))
			kills := []int64{1 + rng.Int63n(totalWrites), 1 + rng.Int63n(totalWrites)}
			for _, kill := range kills {
				workDir, ckptDir := t.TempDir(), t.TempDir()
				inj := fault.NewInjector(fault.OS, fault.Config{Seed: 2, CrashAfterWrites: kill})

				// The "process" that gets killed.
				crashed := func() error {
					sess, err := marius.FromDataset(dataDir,
						append(v.opts(workDir), marius.WithFaults(inj))...)
					if err != nil {
						return err
					}
					defer sess.Close()
					_, err = sess.Run(context.Background(),
						marius.Epochs(v.epochs),
						marius.CheckpointTo(filepath.Join(ckptDir, "run.ckpt"), v.ckEvery))
					return err
				}()
				if crashed == nil {
					t.Fatalf("kill after %d/%d writes: run finished without surfacing the crash", kill, totalWrites)
				}
				if !inj.Crashed() {
					t.Fatalf("kill after %d writes: injector never crashed (run failed with %v)", kill, crashed)
				}

				// Restart: Resume finishes the run; if the crash predates
				// all durable state there is no journal and a fresh process
				// simply reruns from scratch.
				sess, res, err := marius.Resume(context.Background(), ckptDir)
				if errors.Is(err, marius.ErrNoJournal) {
					t.Logf("kill at write %d/%d: before first journal write, rerunning fresh", kill, totalWrites)
					res, _ = runToCompletion(t, dataDir, workDir, ckptDir, v, nil)
				} else if err != nil {
					t.Fatalf("kill after %d writes: Resume: %v", kill, err)
				} else {
					t.Logf("kill at write %d/%d: resumed from journal (%d retrained epochs)",
						kill, totalWrites, len(res.Epochs))
					defer sess.Close()
				}

				label := v.name + "/resume"
				sameLosses(t, label, losses(res), wantLosses)
				gotCkpt, err := os.ReadFile(filepath.Join(ckptDir, "run.ckpt"))
				if err != nil {
					t.Fatalf("%s: final checkpoint missing after resume: %v", label, err)
				}
				if !bytes.Equal(gotCkpt, wantCkpt) {
					t.Errorf("%s (kill at write %d): final checkpoint differs from the uninterrupted run's", label, kill)
				}
			}
		})
	}
}

// TestResumeNoJournal pins the fresh-start contract: a directory with no
// journal (crash before any durable write) reports ErrNoJournal.
func TestResumeNoJournal(t *testing.T) {
	if _, _, err := marius.Resume(context.Background(), t.TempDir()); !errors.Is(err, marius.ErrNoJournal) {
		t.Fatalf("Resume on empty dir: %v, want ErrNoJournal", err)
	}
}

// TestJournaledRunResumesAfterCompletion pins the idempotence of Resume
// on a run that already finished: nothing retrains, and the journaled
// losses come back bit-identical.
func TestJournaledRunResumesAfterCompletion(t *testing.T) {
	dataDir := prepLP(t, 3, 4)
	v := crashVariants()[2] // lp-serial
	ckptDir := t.TempDir()
	wantRes, wantCkpt := runToCompletion(t, dataDir, t.TempDir(), ckptDir, v, nil)

	sess, res, err := marius.Resume(context.Background(), ckptDir)
	if err != nil {
		t.Fatalf("Resume after completion: %v", err)
	}
	defer sess.Close()
	if res.Stopped != marius.Completed {
		t.Fatalf("Stopped = %v, want Completed", res.Stopped)
	}
	sameLosses(t, "completed-resume", losses(res), losses(wantRes))
	raw, err := os.ReadFile(filepath.Join(ckptDir, "run.ckpt"))
	if err != nil || !bytes.Equal(raw, wantCkpt) {
		t.Fatalf("checkpoint disturbed by no-op resume (err=%v)", err)
	}
}
