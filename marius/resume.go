package marius

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/train"
)

// ErrNoJournal is returned by Resume when dir holds no run journal:
// either no checkpointed run ever started there, or the process died
// before the journal's first atomic write landed — in which case no
// training state exists either, and the caller simply starts the run
// fresh.
var ErrNoJournal = ckpt.ErrNoJournal

// journalOpts is the serializable subset of Options a run journal
// records, enough for Resume to rebuild the session identically.
// Non-serializable attachments (PolicyImpl, Throttle, Metrics, Tracer,
// WithFaults) are not recorded; Resume's extra options reattach them.
type journalOpts struct {
	Storage StorageMode `json:"storage"`
	Model   ModelKind   `json:"model"`
	Policy  PolicyKind  `json:"policy"`
	Dir     string      `json:"dir,omitempty"`

	Dim     int   `json:"dim"`
	Layers  int   `json:"layers"`
	Fanouts []int `json:"fanouts"`

	BatchSize int `json:"batch_size"`
	Negatives int `json:"negatives"`

	LR    float32 `json:"lr"`
	EmbLR float32 `json:"emb_lr"`

	Partitions        int   `json:"partitions"`
	BufferCapacity    int   `json:"buffer_capacity,omitempty"`
	LogicalPartitions int   `json:"logical_partitions,omitempty"`
	CPUBytes          int64 `json:"cpu_bytes"`
	BlockBytes        int64 `json:"block_bytes"`

	Mode          train.Mode `json:"mode,omitempty"`
	Workers       int        `json:"workers"`
	PipelineDepth int        `json:"pipeline_depth,omitempty"`
	Seed          int64      `json:"seed"`
}

// withRestored replays a journal's recorded options onto a fresh
// Options, so the resumed session is configured identically to the
// crashed one (same storage mode, model shape, batch schedule, seed).
func withRestored(jo journalOpts) Option {
	return func(o *Options) error {
		o.Storage, o.Model, o.Policy, o.Dir = jo.Storage, jo.Model, jo.Policy, jo.Dir
		o.Dim, o.Layers = jo.Dim, jo.Layers
		o.Fanouts = append([]int(nil), jo.Fanouts...)
		o.BatchSize, o.Negatives = jo.BatchSize, jo.Negatives
		o.LR, o.EmbLR = jo.LR, jo.EmbLR
		o.Partitions, o.BufferCapacity, o.LogicalPartitions = jo.Partitions, jo.BufferCapacity, jo.LogicalPartitions
		o.CPUBytes, o.BlockBytes = jo.CPUBytes, jo.BlockBytes
		o.Mode, o.Workers, o.PipelineDepth, o.Seed = jo.Mode, jo.Workers, jo.PipelineDepth, jo.Seed
		return nil
	}
}

// withJournal hands Resume's pre-loaded (and truncated) journal to Run,
// which continues appending to it instead of starting a fresh one.
func withJournal(path string, j *ckpt.Journal) RunOption {
	return func(rc *runConfig) error {
		rc.journal, rc.journalPath = j, path
		return nil
	}
}

// newJournal builds the durable run journal for a fresh checkpointed
// dataset run: run identity (task, seed, dataset directory), the epoch
// target and checkpoint location, and the serializable options Resume
// needs to rebuild the session.
func (s *Session) newJournal(rc *runConfig) (*ckpt.Journal, error) {
	o := &s.opts
	jo := journalOpts{
		Storage: o.Storage, Model: o.Model, Policy: o.Policy, Dir: o.Dir,
		Dim: o.Dim, Layers: o.Layers, Fanouts: o.Fanouts,
		BatchSize: o.BatchSize, Negatives: o.Negatives,
		LR: o.LR, EmbLR: o.EmbLR,
		Partitions: o.Partitions, BufferCapacity: o.BufferCapacity, LogicalPartitions: o.LogicalPartitions,
		CPUBytes: o.CPUBytes, BlockBytes: o.BlockBytes,
		Mode: o.Mode, Workers: o.Workers, PipelineDepth: o.PipelineDepth, Seed: o.Seed,
	}
	raw, err := json.Marshal(jo)
	if err != nil {
		return nil, fmt.Errorf("marius: run journal: %w", err)
	}
	// A relative dataset path would dangle if the resuming process starts
	// from another working directory.
	dataDir, err := filepath.Abs(o.dataset.Dir)
	if err != nil {
		dataDir = o.dataset.Dir
	}
	return &ckpt.Journal{
		Version:   ckpt.JournalVersion,
		Task:      s.task.Name(),
		Seed:      o.Seed,
		DataDir:   dataDir,
		Epochs:    rc.epochs,
		Ckpt:      filepath.Base(rc.ckptPath),
		CkptEvery: rc.ckptEvery,
		Opts:      raw,
	}, nil
}

// Resume continues a checkpointed dataset run that was killed mid-way:
// it locates the run journal in dir (the CheckpointTo directory), sweeps
// stale atomic-write temp files, rebuilds the session from the journal's
// recorded dataset directory and options, restores the newest checkpoint
// if one landed, and trains the remaining epochs — journaling and
// checkpointing exactly as the original run did.
//
// Because training is bit-reproducible (per-epoch derived RNG, plan-order
// batches, deterministic kernels) and every IO artifact is written
// atomically, the combined run is byte-identical to an uninterrupted one:
// the returned RunResult carries the full loss trajectory (journaled
// epochs re-synthesized into EpochStats with their recorded loss and
// train metric; other per-epoch fields such as timings are zero), and the
// final checkpoint bytes match the never-killed run's.
//
// A directory without a journal returns ErrNoJournal — the crash (if
// any) predates all durable state, so the caller just starts the run
// fresh. Non-serializable options (WithPolicyImpl, Throttled, metrics,
// tracing, WithFaults) are not journaled; pass them again through extra
// to reattach them.
//
// The caller owns the returned Session (Close it when done); it is
// returned even when the continued run errors, alongside the progress
// made so far.
func Resume(ctx context.Context, dir string, extra ...Option) (*Session, *RunResult, error) {
	jpath, j, err := ckpt.FindJournal(dir)
	if err != nil {
		return nil, nil, err
	}
	if _, err := ckpt.SweepTemps(dir); err != nil {
		return nil, nil, fmt.Errorf("marius: sweep %s: %w", dir, err)
	}
	if len(j.Opts) == 0 {
		return nil, nil, fmt.Errorf("marius: journal %s records no session options", jpath)
	}
	var jo journalOpts
	if err := json.Unmarshal(j.Opts, &jo); err != nil {
		return nil, nil, fmt.Errorf("marius: journal %s: malformed options: %w", jpath, err)
	}
	sess, err := FromDataset(j.DataDir, append([]Option{withRestored(jo)}, extra...)...)
	if err != nil {
		return nil, nil, err
	}

	ckptPath := filepath.Join(dir, j.Ckpt)
	completed := 0
	switch _, err := os.Stat(ckptPath); {
	case err == nil:
		if err := sess.Restore(ckptPath); err != nil {
			sess.Close()
			return nil, nil, err
		}
		completed = sess.task.Epoch()
	case !os.IsNotExist(err):
		sess.Close()
		return nil, nil, err
	}
	if completed > len(j.Done) {
		// Cannot happen under the write protocol (each epoch journals
		// before it checkpoints); refuse rather than invent loss records.
		sess.Close()
		return nil, nil, fmt.Errorf("marius: checkpoint %s is at epoch %d but journal records only %d; state is inconsistent",
			ckptPath, completed, len(j.Done))
	}
	// The journal may run ahead of the checkpoint (crash between a journal
	// write and its checkpoint): truncate to the restored state — the
	// dropped epochs retrain bit-identically.
	j.Done = j.Done[:completed]

	prefix := make([]train.EpochStats, 0, completed)
	for _, r := range j.Done {
		prefix = append(prefix, train.EpochStats{Epoch: r.Epoch, Loss: r.Loss, Metric: r.Metric})
	}

	if remaining := j.Epochs - completed; remaining > 0 {
		res, err := sess.Run(ctx,
			Epochs(remaining),
			CheckpointTo(ckptPath, max(j.CkptEvery, 1)),
			withJournal(jpath, j))
		if res != nil {
			res.Epochs = append(prefix, res.Epochs...)
		}
		return sess, res, err
	}
	// The run had already finished; nothing to retrain.
	return sess, &RunResult{Epochs: prefix, Stopped: Completed}, nil
}
