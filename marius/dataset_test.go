package marius_test

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/storage"
	"repro/marius"
)

// prepLP ingests a small exported knowledge graph and returns the
// prepared directory.
func prepLP(t *testing.T, seed int64, parts int) string {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 400, NumRelations: 6, NumEdges: 2500, ZipfS: 1.2,
		ValidFrac: 0.03, TestFrac: 0.05, Seed: 21,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "lp", seed, parts)); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFromDatasetManifestDefaults(t *testing.T) {
	dir := prepLP(t, 17, 4)
	sess, err := marius.FromDataset(dir, marius.WithDim(8), marius.WithNegatives(16))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.Task().Name(); got != marius.TaskLP {
		t.Fatalf("task from manifest = %q, want lp", got)
	}
	o := sess.Options()
	if o.Seed != 17 {
		t.Fatalf("seed defaulted to %d, want the manifest seed 17", o.Seed)
	}
	if o.Partitions != 4 {
		t.Fatalf("partitions defaulted to %d, want the manifest value 4", o.Partitions)
	}
	if g := sess.Graph(); g.NumNodes != 400 || len(g.ValidEdges) == 0 || len(g.TestEdges) == 0 {
		t.Fatalf("session graph metadata not loaded: %d nodes, %d/%d held-out edges",
			g.NumNodes, len(g.ValidEdges), len(g.TestEdges))
	}
	// The dataset session trains and evaluates without an in-memory edge
	// list.
	if _, err := sess.TrainEpoch(t.Context()); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := sess.Evaluate(marius.ValidSplit); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
}

func TestFromDatasetOptionValidation(t *testing.T) {
	dir := prepLP(t, 1, 4)

	if _, err := marius.FromDataset(dir, marius.WithPartitions(8)); !errors.Is(err, marius.ErrDatasetMismatch) {
		t.Fatalf("partition override: got %v, want ErrDatasetMismatch", err)
	}
	if _, err := marius.FromDataset(dir,
		marius.WithDisk(t.TempDir(), marius.Capacity(16))); !errors.Is(err, marius.ErrBadBuffer) {
		t.Fatalf("capacity beyond dataset partitions: got %v, want ErrBadBuffer", err)
	}
	if _, err := marius.FromDataset(t.TempDir()); !errors.Is(err, storage.ErrNoDataset) {
		t.Fatalf("empty directory: got %v, want ErrNoDataset", err)
	}
}

// TestFromDatasetNCDisk trains node classification from a prepared
// directory with disk storage: the feature shard is paged straight off
// the dataset files, which must stay read-only (verify passes after
// training).
func TestFromDatasetNCDisk(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 400, NumClasses: 4, AvgDegree: 5, FeatureDim: 8,
		Homophily: 0.8, FeatNoise: 1, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: 13,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(dir, "nc", 5, 4)); err != nil {
		t.Fatal(err)
	}
	sess, err := marius.FromDataset(dir,
		marius.WithDisk(t.TempDir(), marius.Capacity(2)),
		marius.WithDim(8), marius.WithFanouts(4, 4), marius.WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.TrainEpoch(t.Context()); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := sess.Evaluate(marius.TestSplit); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Verify(); err != nil {
		t.Fatalf("dataset mutated by disk training: %v", err)
	}
}
