package marius_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/marius"
)

// Determinism regression for the PR 1 contract, now guarding the parallel
// kernel rebuild: with WithWorkers(1), two independently constructed
// sessions with the same seed must produce byte-identical checkpoints, and
// a session restored from one of them must continue to the exact same
// evaluation value as an uninterrupted run. The tensor kernels promise
// bitwise-identical results at every worker count (parallelism never
// reorders floating-point sums), so any drift here means a kernel, the
// arena, or the tape recycling broke the deterministic path.

func trainAndSave(t *testing.T, epochs int, path string) *marius.Session {
	t.Helper()
	sess := lpSession(t, false, "")
	if _, err := sess.Run(context.Background(), marius.Epochs(epochs)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Save(path); err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSeededSingleWorkerCheckpointsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.ckpt")
	p2 := filepath.Join(dir, "b.ckpt")
	s1 := trainAndSave(t, 2, p1)
	defer s1.Close()
	s2 := trainAndSave(t, 2, p2)
	defer s2.Close()

	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("empty checkpoint")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("checkpoints differ (%d vs %d bytes): single-worker training is no longer bit-reproducible", len(b1), len(b2))
	}
}

func TestRestoredSessionContinuesToSameEval(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "resume.ckpt")

	// Uninterrupted reference: 3 epochs straight.
	ref := lpSession(t, false, "")
	defer ref.Close()
	if _, err := ref.Run(context.Background(), marius.Epochs(3)); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Evaluate(marius.ValidSplit)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: 2 epochs, save, restore into a fresh session, 1 more.
	saved := trainAndSave(t, 2, ckpt)
	saved.Close()
	resumed := lpSession(t, false, "")
	defer resumed.Close()
	if err := resumed.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(context.Background(), marius.Epochs(1)); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Evaluate(marius.ValidSplit)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("resumed eval %v != uninterrupted eval %v: restore no longer continues the exact trajectory", got.Value, want.Value)
	}
}
