package marius_test

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/marius"
)

func smallNC(seed int64) *gen.SBMConfig {
	cfg := gen.SBMConfig{
		NumNodes: 1200, NumClasses: 4, AvgDegree: 10, FeatureDim: 12,
		Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: seed,
	}
	return &cfg
}

func smallKG(seed int64) gen.KGConfig {
	return gen.KGConfig{
		NumEntities: 600, NumRelations: 8, NumEdges: 8000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: seed,
	}
}

func TestOptionsValidateEagerly(t *testing.T) {
	g := gen.SBM(*smallNC(1))
	cases := []struct {
		name     string
		task     marius.Task
		opts     []marius.Option
		sentinel error
		option   string
	}{
		{"zero dim", marius.NodeClassification(),
			[]marius.Option{marius.WithDim(0)}, marius.ErrBadValue, "WithDim"},
		{"negative layers", marius.NodeClassification(),
			[]marius.Option{marius.WithLayers(-1)}, marius.ErrBadValue, "WithLayers"},
		{"zero fanout", marius.NodeClassification(),
			[]marius.Option{marius.WithFanouts(10, 0)}, marius.ErrBadValue, "WithFanouts"},
		{"fanouts/layers mismatch", marius.NodeClassification(),
			[]marius.Option{marius.WithLayers(3), marius.WithFanouts(10, 10)}, marius.ErrBadValue, "WithFanouts"},
		{"disk without dir", marius.LinkPrediction(),
			[]marius.Option{marius.WithDisk("")}, marius.ErrMissingDir, "WithDisk"},
		{"capacity over partitions", marius.LinkPrediction(),
			[]marius.Option{marius.WithDisk(t.TempDir(), marius.Partitions(4), marius.Capacity(8))},
			marius.ErrBadBuffer, "WithDisk"},
		{"bad learning rate", marius.LinkPrediction(),
			[]marius.Option{marius.WithLearningRates(0, 0.1)}, marius.ErrBadValue, "WithLearningRates"},
		{"bad autotune budget", marius.LinkPrediction(),
			[]marius.Option{marius.WithAutotune(0, 0)}, marius.ErrBadValue, "WithAutotune"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := marius.New(tc.task, g, tc.opts...)
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, tc.sentinel)
			}
			var oe *marius.OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T is not an *OptionError", err)
			}
			if oe.Option != tc.option {
				t.Fatalf("blamed option %q, want %q", oe.Option, tc.option)
			}
		})
	}
}

func TestCometComboRejected(t *testing.T) {
	g := gen.KG(smallKG(2))
	// l=4 does not divide p=6: COMET cannot be built.
	_, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.DistMultOnly), marius.WithDim(8),
		marius.WithDisk(t.TempDir(), marius.Partitions(6), marius.Capacity(3), marius.LogicalPartitions(4)),
	)
	if !errors.Is(err, marius.ErrBadBuffer) {
		t.Fatalf("err = %v, want ErrBadBuffer", err)
	}
}

func TestNCRequiresLabeledGraph(t *testing.T) {
	g := gen.KG(smallKG(3)) // knowledge graph: no features/labels
	_, err := marius.New(marius.NodeClassification(), g)
	if !errors.Is(err, marius.ErrTaskGraph) {
		t.Fatalf("err = %v, want ErrTaskGraph", err)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	g := gen.KG(smallKG(4))
	sess, err := marius.New(marius.LinkPrediction(), g, marius.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	o := sess.Options()
	if o.Negatives != 500 {
		t.Fatalf("default negatives %d, want 500 (§7.3)", o.Negatives)
	}
	if o.Dim != 32 || o.BatchSize != 1024 || o.Layers != 1 {
		t.Fatalf("LP defaults dim=%d batch=%d layers=%d", o.Dim, o.BatchSize, o.Layers)
	}
	if len(o.Fanouts) != 1 || o.Fanouts[0] != 20 {
		t.Fatalf("LP default fanouts %v", o.Fanouts)
	}

	g2 := gen.SBM(*smallNC(5))
	sess2, err := marius.New(marius.NodeClassification(), g2, marius.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	o2 := sess2.Options()
	if o2.Layers != 3 || len(o2.Fanouts) != 3 || o2.Fanouts[0] != 30 {
		t.Fatalf("NC defaults layers=%d fanouts=%v", o2.Layers, o2.Fanouts)
	}
}

func TestTasksAreSingleUse(t *testing.T) {
	g := gen.KG(smallKG(6))
	task := marius.LinkPrediction()
	sess, err := marius.New(task, g, marius.WithModel(marius.DistMultOnly), marius.WithDim(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := marius.New(task, g); err == nil {
		t.Fatal("reusing a prepared task must fail")
	}
}
