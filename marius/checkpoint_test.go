package marius_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/marius"
)

// lpSession builds an LP session over a freshly generated (identical)
// graph; workers=1 keeps the batch order deterministic so resumed runs
// reproduce the original trajectory exactly.
func lpSession(t *testing.T, disk bool, dir string) *marius.Session {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 800, NumRelations: 8, NumEdges: 10000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 11,
	})
	opts := []marius.Option{
		marius.WithModel(marius.GraphSage), marius.WithFanouts(8),
		marius.WithDim(16), marius.WithBatchSize(512), marius.WithNegatives(64),
		marius.WithWorkers(1), marius.WithSeed(11),
	}
	if disk {
		opts = append(opts, marius.WithDisk(dir, marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)))
	}
	sess, err := marius.New(marius.LinkPrediction(), g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func ncSession(t *testing.T) *marius.Session {
	t.Helper()
	g := gen.SBM(*smallNC(21))
	sess, err := marius.New(marius.NodeClassification(), g,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(8, 8),
		marius.WithDim(16), marius.WithBatchSize(256),
		marius.WithWorkers(1), marius.WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// The headline checkpoint property: save after training, restore into a
// freshly built session over an identically generated graph, and the
// evaluation metrics are bit-identical.
func TestCheckpointRoundTripIdenticalMetrics(t *testing.T) {
	for _, disk := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "lp.ckpt")

		orig := lpSession(t, disk, t.TempDir())
		if _, err := orig.Run(context.Background(), marius.Epochs(2)); err != nil {
			t.Fatal(err)
		}
		if err := orig.Save(path); err != nil {
			t.Fatal(err)
		}
		want, err := orig.Evaluate(marius.ValidSplit)
		if err != nil {
			t.Fatal(err)
		}
		orig.Close()

		restored := lpSession(t, disk, t.TempDir())
		defer restored.Close()
		if err := restored.Restore(path); err != nil {
			t.Fatal(err)
		}
		if restored.Task().Epoch() != 2 {
			t.Fatalf("restored epoch %d, want 2", restored.Task().Epoch())
		}
		got, err := restored.Evaluate(marius.ValidSplit)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value {
			t.Fatalf("disk=%v: restored MRR %.6f != saved MRR %.6f", disk, got.Value, want.Value)
		}
	}
}

// Resuming training from a checkpoint must continue the exact trajectory:
// 2 epochs + save + restore + 2 epochs == 4 straight epochs.
func TestCheckpointResumeContinuesTrajectory(t *testing.T) {
	straight := lpSession(t, false, "")
	if _, err := straight.Run(context.Background(), marius.Epochs(4)); err != nil {
		t.Fatal(err)
	}
	want, err := straight.Evaluate(marius.ValidSplit)
	if err != nil {
		t.Fatal(err)
	}
	straight.Close()

	path := filepath.Join(t.TempDir(), "resume.ckpt")
	first := lpSession(t, false, "")
	if _, err := first.Run(context.Background(), marius.Epochs(2), marius.CheckpointTo(path, 2)); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second := lpSession(t, false, "")
	defer second.Close()
	if err := second.Restore(path); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Run(context.Background(), marius.Epochs(2)); err != nil {
		t.Fatal(err)
	}
	got, err := second.Evaluate(marius.ValidSplit)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("resumed MRR %.6f != straight-through MRR %.6f", got.Value, want.Value)
	}
}

func TestCheckpointNCRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nc.ckpt")
	orig := ncSession(t)
	if _, err := orig.Run(context.Background(), marius.Epochs(3)); err != nil {
		t.Fatal(err)
	}
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	want, err := orig.Evaluate(marius.TestSplit)
	if err != nil {
		t.Fatal(err)
	}
	orig.Close()

	restored := ncSession(t)
	defer restored.Close()
	if err := restored.Restore(path); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Evaluate(marius.TestSplit)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("restored accuracy %.6f != saved accuracy %.6f", got.Value, want.Value)
	}
}

func TestCheckpointTaskMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lp.ckpt")
	lp := lpSession(t, false, "")
	if err := lp.Save(path); err != nil {
		t.Fatal(err)
	}
	lp.Close()

	nc := ncSession(t)
	defer nc.Close()
	if err := nc.Restore(path); !errors.Is(err, marius.ErrTaskMismatch) {
		t.Fatalf("err = %v, want ErrTaskMismatch", err)
	}
}

// TestRestoreMismatchNamesField: shape disagreements between checkpoint
// and session are rejected at Restore with a typed error naming the
// offending field, instead of panicking in a kernel mid-forward. The
// same error matches both the task-mismatch sentinel (compatibility)
// and ErrCheckpointMismatch (the contract shared with the inference
// loader).
func TestRestoreMismatchNamesField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nc.ckpt")
	orig := ncSession(t)
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	orig.Close()

	other, err := marius.New(marius.NodeClassification(), gen.SBM(*smallNC(21)),
		marius.WithModel(marius.GraphSage), marius.WithFanouts(8, 8),
		marius.WithDim(32), marius.WithBatchSize(256), // dim 32: checkpoint was dim 16
		marius.WithWorkers(1), marius.WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	err = other.Restore(path)
	if !errors.Is(err, marius.ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
	if !strings.Contains(err.Error(), "dim") {
		t.Fatalf("error %q does not name the offending field", err)
	}
}
