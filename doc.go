// Package repro is a from-scratch Go reproduction of "MariusGNN:
// Resource-Efficient Out-of-Core Training of Graph Neural Networks"
// (Waleffe, Mohoney, Rekatsinas, Venkataraman — EuroSys 2023).
//
// The public API is the marius package: a task-polymorphic Session built
// from functional options, with a context-aware run loop, structured
// evaluation results and checkpoint save/resume. Quickstart:
//
//	g := gen.SBM(gen.DefaultSBM(20_000, 42))
//	sess, err := marius.New(marius.NodeClassification(), g,
//		marius.WithModel(marius.GraphSage),
//		marius.WithFanouts(15, 10, 5),
//		marius.WithDim(64),
//		marius.WithSeed(42),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	defer sess.Close()
//	res, err := sess.Run(ctx,
//		marius.Epochs(10),
//		marius.EarlyStopping(3, 0.001),
//		marius.CheckpointTo("run.ckpt", 1),
//		marius.OnEpoch(func(p marius.Progress) error { fmt.Println(p.Stats); return nil }),
//	)
//	test, err := sess.Evaluate(marius.TestSplit)
//
// Disk-based out-of-core training (the paper's headline configuration)
// swaps one option: marius.WithDisk(dir, marius.Partitions(16),
// marius.Capacity(4)), with the §6 auto-tuner filling anything left
// unset. The deprecated internal/core shim maps the old flat-Config
// surface onto marius.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; `go run ./cmd/benchtables` prints them
// at full scale in the paper's layout, and CHANGES.md records the old
// internal/core → marius migration map.
package repro
