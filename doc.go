// Package repro is a from-scratch Go reproduction of "MariusGNN:
// Resource-Efficient Out-of-Core Training of Graph Neural Networks"
// (Waleffe, Mohoney, Rekatsinas, Venkataraman — EuroSys 2023).
//
// The high-level API lives in internal/core; see README.md for a tour,
// DESIGN.md for the system inventory and substitutions, and EXPERIMENTS.md
// for paper-vs-measured results. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation section.
package repro
