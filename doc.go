// Package repro is a from-scratch Go reproduction of "MariusGNN:
// Resource-Efficient Out-of-Core Training of Graph Neural Networks"
// (Waleffe, Mohoney, Rekatsinas, Venkataraman — EuroSys 2023).
//
// The public API is the marius package: a task-polymorphic Session built
// from functional options, with a context-aware run loop, structured
// evaluation results and checkpoint save/resume. Quickstart:
//
//	g := gen.SBM(gen.DefaultSBM(20_000, 42))
//	sess, err := marius.New(marius.NodeClassification(), g,
//		marius.WithModel(marius.GraphSage),
//		marius.WithFanouts(15, 10, 5),
//		marius.WithDim(64),
//		marius.WithSeed(42),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	defer sess.Close()
//	res, err := sess.Run(ctx,
//		marius.Epochs(10),
//		marius.EarlyStopping(3, 0.001),
//		marius.CheckpointTo("run.ckpt", 1),
//		marius.OnEpoch(func(p marius.Progress) error { fmt.Println(p.Stats); return nil }),
//	)
//	test, err := sess.Evaluate(marius.TestSplit)
//
// Disk-based out-of-core training (the paper's headline configuration)
// swaps one option: marius.WithDisk(dir, marius.Partitions(16),
// marius.Capacity(4)), with the §6 auto-tuner filling anything left
// unset.
//
// # Kernel parallelism
//
// The compute substrate (internal/tensor) plays the role of the paper's
// dense GPU kernels: blocked, multi-goroutine matmuls, fused
// gather+segment reductions (Algorithm 3 with the gathered intermediate
// never materialized), and a fused gather+matmul for embedding lookups
// (DistMult negative scoring). marius.WithWorkers(n) is a single knob for
// both pipeline stages: n sampling workers feed the compute stage, and
// every kernel in the forward/backward pass may fan out to n goroutines.
// Kernel parallelism only ever partitions output rows or segments — no
// floating-point reduction is ever split — so kernel results are bitwise
// identical at every worker count. cmd/benchkernels measures the kernels
// against retained naive references and writes BENCH_kernels.json (the
// checked-in baseline); `make bench-kernels` re-runs it with hard floors.
//
// # The arena
//
// Each trainer's compute stage owns a tensor.Arena: every activation and
// gradient of a mini batch is carved from recycled slabs and released in
// one Arena.Reset at batch end, so steady-state training performs zero
// per-batch heap allocations on the kernel path. Ownership is strict:
// arena-backed tensors (everything an arena-backed Tape produces) die at
// Reset — optimizer updates, metrics, and representation write-back all
// happen before the trainer resets; anything kept longer must be cloned.
// The arena belongs to exactly one goroutine (the compute stage); sampling
// workers heap-allocate their own batch buffers.
//
// # Determinism contract
//
// Kernels never reorder floating-point sums: parallel tiling, k-blocking,
// unrolling, fusion, and the arena all preserve each output element's
// exact accumulation order (enforced by exact-equality conformance tests
// against the naive references). The only nondeterminism in training is
// pipeline batch ordering with WithWorkers(n>1); with WithWorkers(1) the
// stages alternate synchronously and training is bit-reproducible — two
// equally-seeded runs write byte-identical checkpoints, and a restored
// session continues the exact trajectory.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; `go run ./cmd/benchtables` prints them
// at full scale in the paper's layout, and CHANGES.md records the old
// internal/core → marius migration map (the shim itself was removed in
// PR 2).
package repro
