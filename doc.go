// Package repro is a from-scratch Go reproduction of "MariusGNN:
// Resource-Efficient Out-of-Core Training of Graph Neural Networks"
// (Waleffe, Mohoney, Rekatsinas, Venkataraman — EuroSys 2023).
//
// The public API is the marius package: a task-polymorphic Session built
// from functional options, with a context-aware run loop, structured
// evaluation results and checkpoint save/resume. Quickstart:
//
//	g := gen.SBM(gen.DefaultSBM(20_000, 42))
//	sess, err := marius.New(marius.NodeClassification(), g,
//		marius.WithModel(marius.GraphSage),
//		marius.WithFanouts(15, 10, 5),
//		marius.WithDim(64),
//		marius.WithSeed(42),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	defer sess.Close()
//	res, err := sess.Run(ctx,
//		marius.Epochs(10),
//		marius.EarlyStopping(3, 0.001),
//		marius.CheckpointTo("run.ckpt", 1),
//		marius.OnEpoch(func(p marius.Progress) error { fmt.Println(p.Stats); return nil }),
//	)
//	test, err := sess.Evaluate(marius.TestSplit)
//
// Disk-based out-of-core training (the paper's headline configuration)
// swaps one option: marius.WithDisk(dir, marius.Partitions(16),
// marius.Capacity(4)), with the §6 auto-tuner filling anything left
// unset.
//
// # Kernel parallelism
//
// The compute substrate (internal/tensor) plays the role of the paper's
// dense GPU kernels: blocked, multi-goroutine matmuls, fused
// gather+segment reductions (Algorithm 3 with the gathered intermediate
// never materialized), and a fused gather+matmul for embedding lookups
// (DistMult negative scoring). marius.WithWorkers(n) is a single knob for
// both pipeline stages: n sampling workers feed the compute stage, and
// every kernel in the forward/backward pass may fan out to n goroutines.
// Kernel parallelism only ever partitions output rows or segments — no
// floating-point reduction is ever split — so kernel results are bitwise
// identical at every worker count. cmd/benchkernels measures the kernels
// against retained naive references and writes BENCH_kernels.json (the
// checked-in baseline); `make bench-kernels` re-runs it with hard floors.
//
// # The arena
//
// Each trainer's compute stage owns a tensor.Arena: every activation and
// gradient of a mini batch is carved from recycled slabs and released in
// one Arena.Reset at batch end, so steady-state training performs zero
// per-batch heap allocations on the kernel path. Ownership is strict:
// arena-backed tensors (everything an arena-backed Tape produces) die at
// Reset — optimizer updates, metrics, and representation write-back all
// happen before the trainer resets; anything kept longer must be cloned.
// The arena belongs to exactly one goroutine (the compute stage); sampling
// workers heap-allocate their own batch buffers.
//
// # The adjacency index and sampling
//
// Neighborhood sampling (paper §4.1) runs over a bucket-segmented CSR
// index built incrementally instead of from scratch per visit. Each edge
// bucket (i, j) is counting-sorted once into an immutable CSR fragment
// (graph.BucketFrag, out view over partition i's nodes, in view over
// partition j's) and cached by the storage layer (storage.FragCache,
// LRU-bounded, hit/miss counters). A visit's index is a graph.Segmented
// view composing the resident c² fragment pointers; Segmented.Swap
// derives the next visit's view by reconciling partition sets, fetching
// only the admitted rows' and columns' fragments — a one-partition
// BETA/COMET swap touches O(c) buckets instead of rebuilding O(c²), and
// views are immutable so pipelined in-flight visits keep sampling from
// theirs. The ordering contract makes the index swap invisible to
// training: a node's neighbor list is its per-bucket segments
// concatenated in ascending resident-partition order, exactly the order
// graph.BuildAdjacency produces over the flattened buckets (counting
// sort is stable), so samplers draw identical sequences from either
// index for the same RNG state — enforced by differential tests over
// randomized swap sequences, which keeps trajectories and checkpoints
// byte-identical.
//
// The sampling hot path is allocation-free at steady state: Floyd
// subset sampling uses a caller-owned generation-stamped scratch
// (graph.SampleScratch) instead of a per-call map, and sampler.Sampler
// owns per-hop frontier/neighbor workspaces plus a free list of recycled
// DENSE results (Sampler.Recycle) so batch construction — including the
// trainers' label gather, endpoint/negative dedup (stamp-based, not
// map-based) and prepared-batch structs — performs zero allocations once
// warm (enforced by testing.AllocsPerRun tests). cmd/benchsampler
// measures the incremental refresh against the from-scratch rebuild and
// writes BENCH_sampler.json (the checked-in baseline; >=2x per-visit
// refresh and 0 allocs/batch enforced by `make bench-sampler`).
//
// # The pipeline
//
// internal/pipeline is the pipelined epoch executor (paper Fig. 2, steps
// A-D): every epoch runs as three bounded-queue produce/consume stages.
// The prefetcher — one goroutine walking the policy plan through a
// lookahead iterator (policy.Lookahead), up to WithPipeline(depth) visits
// ahead of the trainer — issues async node-partition loads into a small
// pool of reusable staging buffers (storage.DiskNodeStore.Prefetch),
// reads the visit's training-example buckets, refreshes the incremental
// adjacency view (building at most the swapped partitions' fragments
// ahead of the trainer), and derives its batch seeds. The batch-construction stage — WithWorkers(n) goroutines —
// runs DENSE multi-hop and negative sampling on loaded visits, at most
// workers+depth batches in flight. The compute stage — the trainer's
// goroutine — admits each visit (the partition-buffer swap, consuming
// staged data; dirty evictions are written back by a background goroutine,
// double-buffering both sides of the admit/evict schedule) and consumes
// batches through the arena/tape trainer. EpochStats.Pipeline reports the
// depth, prefetched visits, and stall times; EpochStats.IO counts
// partition prefetch hits and misses. cmd/benchpipeline measures the
// executor against the serial loop under a calibrated disk throttle and
// writes BENCH_pipeline.json (the checked-in baseline, >=1.5x epoch
// speedup enforced by `make bench-pipeline`).
//
// # Datasets on disk
//
// Real (or externally generated) graphs enter through cmd/mariusprep,
// the streaming preprocessing CLI over internal/dataset (paper §4–5:
// raw edge lists are partitioned into on-disk edge buckets before
// out-of-core training). `mariusprep prep` converts raw inputs —
// TSV/CSV or packed-binary edge lists, optional node/feature/label and
// split files — into a self-describing dataset directory:
//
//	manifest.json           versioned metadata + per-bucket edge counts
//	                        and CRC32 checksums + (size, CRC32) for every
//	                        payload file
//	edges.bin               train edges bucket-sorted by (src partition,
//	                        dst partition); 12-byte little-endian
//	                        (src, rel, dst) triples, bucket (i,j) at the
//	                        offset implied by the manifest counts —
//	                        byte-compatible with storage.DiskEdgeStore
//	features.bin            float32 rows in node-ID order (NC) —
//	                        byte-compatible with DiskNodeStore's table
//	labels.bin              int32 class per node (NC)
//	{train,valid,test}_nodes.bin   int32 split lists, order preserved
//	{valid,test}_edges.bin  held-out edge triples, order preserved (LP)
//	dict.tsv                raw source ID of each final node ID
//
// Ingestion is memory-bounded and never materializes the edge list:
// edges stream through an external counting/bucket sort (buffer up to
// the -mem cap, stable-sort each full buffer by bucket, spill it as a
// run, then merge runs run-major so every bucket keeps global input
// order), while the node dictionary and relabeling stay O(nodes). The
// ingest step applies the same seeded partition relabeling marius.New
// applies to an in-memory graph (partition.RandomOrder for LP,
// TrainFirstOrder for NC), so node IDs — and therefore bucket bytes —
// come out exactly as the in-memory path would lay them out.
//
// storage.OpenDataset(dir) opens a prepared directory (validating the
// manifest and every payload file's exact size, so truncation is a
// typed *storage.CorruptError at open instead of an io.ErrUnexpectedEOF
// mid-epoch); marius.FromDataset(dir, opts...) builds a Session on top,
// serving edge buckets straight off the preprocessed file — the
// fragment cache warms from disk on demand, nothing is re-sorted — and
// cmd/mariusgnn -data trains from it. `mariusprep validate` runs the
// full integrity pass (per-bucket and per-file checksums plus semantic
// checks); `mariusprep inspect` summarizes the manifest. Layout changes
// bump storage.DatasetVersion, and readers reject other versions with
// ErrDatasetVersion — there is no in-place migration; re-run prep.
//
// The contract is exactness, not approximation: ingest(export(graph))
// trains byte-identically — same per-epoch losses, same checkpoints —
// to training the original in-memory graph at the same seed, serial and
// pipelined (enforced by the internal/dataset round-trip tests and by
// cmd/benchingest, whose `make bench-ingest` gate also requires the
// external sort to spill >= 2 runs while staying under its memory cap;
// BENCH_ingest.json is the checked-in baseline).
//
// # Quantized storage
//
// `mariusprep prep -quantize=fp16|int8` stores the node-classification
// feature table compressed on disk: fp16 packs each float32 into an IEEE
// 754 half (round-to-nearest-even; 2 bytes/element), int8 stores each
// row affine-quantized to a byte (scale = (max-min)/255, zero = min;
// 1 byte/element) with an 8-byte-per-row (scale, zero) float32 sidecar
// in features.scale.bin. Both cut the dominant out-of-core cost — the
// bytes a partition swap moves — by 2x or 4x, which the §6 cost model
// sees through autotune.Input.NodeElemBytes. Quantized manifests are
// version 2 (plain datasets stay version 1, readable by older builds);
// the payload and sidecar carry CRCs like every other shard, and the
// dataset UUID folds in the encoding, so fp16/int8/float32 preparations
// of the same graph are distinct datasets.
//
// The determinism contract survives compression because rounding happens
// exactly once, at ingest: readers dequantize the same stored bytes on
// every load — storage.DiskNodeStore pages compressed bytes and expands
// them into the float32 partition buffer; Dataset.ReadFeatures expands
// the whole table; serving scores straight off the compressed form with
// fused dequantizing kernels (tensor.GatherDequant and
// tensor.GatherMatMulTBDequant, exact-equality-tested against their
// naive references at every worker count). Training and serving from a
// quantized dataset are therefore bit-reproducible across runs, worker
// counts, and pipeline depths, exactly like float32 — the accuracy cost
// is a one-time storage rounding of the inputs (fp16: ~3 decimal digits;
// int8: 1/255 of each row's range), not run-to-run noise. Link
// prediction's learnable embedding table stays float32 (it is written,
// not just read); serving can separately quantize its precomputed
// encoding table with `mariusserve -quantize-table`.
//
// # Determinism contract
//
// Kernels never reorder floating-point sums: parallel tiling, k-blocking,
// unrolling, fusion, and the arena all preserve each output element's
// exact accumulation order (enforced by exact-equality conformance tests
// against the naive references). The pipeline preserves the trajectory on
// top of that: batches compute in exact plan order; each visit and batch
// draws from its own pre-derived seed (so construction can run early, on
// any worker, without touching a shared RNG stream); and base
// representations are gathered at compute time, never at build time (so
// batch k+1 always sees batch k's embedding write-back — no staleness).
// Training is therefore bit-reproducible at every WithWorkers and
// WithPipeline setting — two equally-seeded runs write byte-identical
// checkpoints, a pipelined run's checkpoint is byte-identical to the
// serial run's, and a restored session continues the exact trajectory.
// Concurrency only changes wall-clock overlap.
//
// # Serving
//
// internal/serve is the forward-only counterpart to training: it opens a
// prepared dataset read-only (building the full adjacency index once, at
// startup), loads a checkpoint into an immutable Snapshot (model
// metadata is validated field by field — task, model kind, dimensions,
// node and class counts — with mismatches reported as typed
// marius.ErrCheckpointMismatch naming the offending field), and serves
// node-classification predictions and link-prediction top-k over
// HTTP/JSON through cmd/mariusserve. Requests are micro-batched
// server-side: a single dispatcher collects calls from a bounded queue
// until -max-batch or -max-wait, merges their DENSE samples into one
// deltas structure, and runs one fused forward per batch — LP top-k
// scores all candidates with a single GatherMatMulTB against an
// encoding table precomputed at snapshot load. Because kernels are
// bitwise deterministic (see above) and every request carries its own
// sampling seed (explicit, or derived from request content), a
// micro-batched response is byte-identical to the same request served
// alone — and to the training-side evaluation forward at the same seed
// (enforced by differential tests and by cmd/benchserve, whose `make
// bench-serve` gate also enforces QPS floors; BENCH_serve.json is the
// checked-in baseline). Checkpoints hot-reload without a restart
// (SIGHUP or POST /reload): the new snapshot is atomically swapped in
// while in-flight batches finish on the old one, and every batch pins
// exactly one snapshot so responses never mix epochs. Checkpoints also
// record the dataset UUID they were trained on; serving a checkpoint
// against a different prepared directory logs a provenance warning
// (surfaced in /statz). marius.LoadForInference and marius.Serve expose
// the same machinery as a library.
//
// # Multi-relation link prediction
//
// Edge relation types are first-class end to end. Storage carries them
// natively — every edge triple is 12 bytes of (src, rel, dst) — and
// mariusprep ingests a relation column from TSV/CSV or packed-binary
// input through the same memory-capped external sort. A prepared dataset
// with more than one relation type declares manifest version 3
// (storage.DatasetVersionRelations); single-relation and plain datasets
// keep their lower versions, so existing dataset UUIDs are stable and a
// relation-blind older reader rejects a multi-relation directory with a
// typed ErrDatasetVersion instead of silently collapsing its relations.
//
// Scoring generalizes behind the internal/decoder.Decoder interface:
// DistMult, ComplEx and TransE all fold an edge query into one vector
// whose candidate scores come from the same fused GatherMatMulTB kernel
// (TransE's negative squared distance via a norm completion), so every
// decoder inherits the kernels' bitwise determinism — scalar reference
// scorers (decoder.RefScore) reproduce the fused path bit for bit.
// Sessions select one with marius.WithDecoder(marius.DistMult |
// marius.ComplEx | marius.TransE); marius.WithRelations overrides the
// relation-count a generated graph declares. Checkpoints record the
// decoder kind and relation count, and restoring or serving a checkpoint
// with a different decoder is a typed marius.ErrCheckpointMismatch
// naming the field.
//
// Evaluation implements the standard filtered-ranking protocol (the
// paper's §7 MRR reporting): every held-out edge (s, r, d) is ranked
// twice — d against all candidate tails of (s, r, ?), s against all
// candidate heads of (?, r, d) — with known true triples (training plus
// both held-out splits) removed from the candidate set, ties broken by
// ascending entity ID. sess.Evaluate(split, marius.RankingEval(1, 10),
// marius.FilteredEval()) returns a marius.EvalResult carrying MRR and
// Hits@k; the evaluator streams candidate chunks through the fused
// kernel and aggregates per-query ranks in a canonical order, so results
// are bitwise independent of worker count, batch size and chunk width,
// and match a brute-force per-candidate reference exactly (enforced by
// tests and by cmd/bencheval, whose `make bench-eval` gate also enforces
// throughput floors; BENCH_eval.json is the checked-in baseline).
// cmd/mariusgnn prints MRR and Hits@1/10 per eval epoch with -ranking
// (-filtered for the filtered protocol, -decoder to pick the scorer).
//
// Serving scores per (head, relation): POST /v1/topk takes a "relation"
// field plus an optional "filter": true that removes the head's known
// true tails from the response. PR6-era single-relation clients keep
// working — the legacy "rel" field is still accepted (it must agree with
// "relation" when both are present), and omitting both defaults to
// relation 0 only on single-relation datasets. Serving errors map to
// HTTP statuses by type: serve.ErrBadRequest (malformed JSON, unknown
// relation, out-of-range node) is 400, checkpoint mismatches at reload
// are 409, overload shedding is 503 with Retry-After, and per-request
// deadline expiry is 504; /statz reports the serving decoder kind.
//
// # Observability
//
// internal/obs is a stdlib-only observability kernel shared by training
// and serving: a registry of lock-free metrics (atomic counters and
// gauges, fixed-bucket histograms whose Observe is a binary search plus
// one atomic add — no locks, no allocations on the hot path) with
// hand-rolled Prometheus text exposition, and a span tracer that writes
// Chrome Trace Event Format (load the file in chrome://tracing or
// Perfetto). Training wires it through marius.WithMetrics and
// marius.WithTrace (cmd/mariusgnn: -metrics-addr and -trace): the
// pipeline records per-stage spans (partition prefetch, batch build,
// compute, evict write-back) and stall/throughput metrics, and the
// storage layer bridges its atomic IO counters — bytes moved, swaps,
// prefetch hit rate, fragment-cache hits — into registry gauges read
// lazily at scrape time. Serving is instrumented unconditionally: the
// per-request stats behind /statz are the same lock-free histograms,
// GET /metrics serves the Prometheus view, /healthz degrades to 503
// with a JSON reason (failed reload, sustained queue saturation), and
// both CLIs expose net/http/pprof. Instrumentation is observational by
// contract: it reads clocks and bumps atomics but never touches RNG
// streams, batch order, or parameter state, so trajectories and
// checkpoints are byte-identical with it on or off (enforced by a
// differential test) and its hot-path cost is gated under 2% by `make
// bench-pipeline` and `make bench-serve`.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; `go run ./cmd/benchtables` prints them
// at full scale in the paper's layout, and CHANGES.md records the old
// internal/core → marius migration map (the shim itself was removed in
// PR 2).
package repro
