// Extreme-scale out-of-core training (paper §7.3): the paper trains
// GraphSage + DistMult representations for the full Common Crawl 2012
// hyperlink graph (3.5B nodes, 128B edges) on one machine with 60 GB of
// RAM and an SSD, at 194k edges/sec and $564/epoch.
//
// This example reproduces the pipeline ~1000x scaled down: a Zipf-skewed
// edge stream is bucket-sorted to disk without ever materializing the
// graph, node embeddings live on disk and page through a small partition
// buffer, and one COMET epoch of decoder-only DistMult training runs
// fully out of core. The measured edges/sec extrapolates to a $/epoch
// figure on the paper's P3.2xLarge pricing.
//
// Run with: go run ./examples/hyperlink
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/costmodel"
	"repro/internal/decoder"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/train"
)

func main() {
	const (
		numNodes = 1_000_000
		numEdges = 4_000_000
		dim      = 16
		p        = 16 // physical partitions
		c        = 4  // buffer capacity: 1/4 of embeddings in memory
		l        = 8  // logical partitions
	)
	dir, err := os.MkdirTemp("", "mariusgnn-hyperlink-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pt := partition.New(numNodes, p)

	// Phase 1: stream the hyperlink-like graph to bucket-sorted disk
	// storage. Nothing graph-sized is ever held in memory.
	fmt.Printf("streaming %d edges over %d nodes to disk...\n", numEdges, numNodes)
	t0 := time.Now()
	writer, err := storage.NewStreamingEdgeWriter(dir, pt)
	if err != nil {
		log.Fatal(err)
	}
	stream := gen.NewEdgeStream(gen.StreamConfig{
		NumNodes: numNodes, NumEdges: numEdges, ZipfS: 1.3, Seed: 1,
	})
	for chunk := stream.Next(); chunk != nil; chunk = stream.Next() {
		if err := writer.Append(chunk); err != nil {
			log.Fatal(err)
		}
	}
	edgeStore, err := writer.Finalize(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing done in %.1fs\n", time.Since(t0).Seconds())

	// Phase 2: disk-backed learnable embeddings.
	rng := rand.New(rand.NewSource(2))
	nodes, err := storage.CreateDiskNodeStore(storage.DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
		Init: func(id int32, row []float32) {
			for j := range row {
				row[j] = (rng.Float32()*2 - 1) * 0.1
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	src := &train.Source{
		Part: pt, NumNodes: numNodes, NumRels: 1,
		Nodes: nodes, Disk: nodes, Edges: edgeStore,
	}
	defer src.Close()

	// Phase 3: one COMET epoch of decoder-only training, as in §7.3.
	ps := nn.NewParamSet()
	dec := decoder.NewDistMult(ps, 1, dim, rng)
	tr := train.NewLP(train.LPConfig{
		Params: ps, Decoder: dec,
		BatchSize: 4096, Negatives: 128,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1),
		Workers: 4, Seed: 3,
	}, src, policy.Comet{P: p, L: l, C: c})

	stats, err := tr.TrainEpoch(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	edgesPerSec := float64(stats.Examples) / stats.Duration.Seconds()
	inst := costmodel.ByName("P3.2xLarge")
	fullEpoch := time.Duration(float64(128e9) / edgesPerSec * float64(time.Second))
	fmt.Printf("epoch: %.1fs, %d edges, %.0f edges/sec, %d partition sets, IO %.1f MB\n",
		stats.Duration.Seconds(), stats.Examples, edgesPerSec, stats.Visits,
		float64(stats.IO.BytesRead+stats.IO.BytesWritten)/1e6)
	fmt.Printf("train MRR %.4f (128 shared negatives)\n", stats.Metric)
	fmt.Printf("extrapolated to the paper's 128B-edge hyperlink graph at this rate: %.0fh/epoch ≈ $%.0f/epoch on %s\n",
		fullEpoch.Hours(), costmodel.CostPerEpoch(inst, fullEpoch), inst.Name)
	fmt.Println("(the paper reports 194k edges/sec and $564/epoch on a V100 GPU)")
}
