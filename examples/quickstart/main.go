// Quickstart: train a three-layer GraphSage node classifier in memory on a
// synthetic citation-style graph, the M-GNN_Mem configuration of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	// A Papers100M-shaped graph scaled to laptop size: 20k nodes with
	// label-correlated features and homophilous edges.
	g := gen.SBM(gen.DefaultSBM(20_000, 42))
	fmt.Printf("graph: %d nodes, %d edges, %d classes, %d training nodes\n",
		g.NumNodes, len(g.Edges), g.NumClasses, len(g.TrainNodes))

	sys, err := core.NewNodeClassification(g, core.Config{
		Storage:   core.InMemory,
		Model:     core.GraphSage,
		Layers:    3,
		Fanouts:   []int{15, 10, 5},
		Dim:       64,
		BatchSize: 512,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for epoch := 1; epoch <= 5; epoch++ {
		stats, err := sys.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %.2fs  loss %.4f  train-acc %.3f  (sampled %d nodes, %d edges)\n",
			epoch, stats.Duration.Seconds(), stats.Loss, stats.Metric,
			stats.NodesSampled, stats.EdgesSampled)
	}

	valid, err := sys.EvaluateValid()
	if err != nil {
		log.Fatal(err)
	}
	test, err := sys.EvaluateTest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation accuracy %.3f, test accuracy %.3f\n", valid, test)
}
