// Quickstart: train a three-layer GraphSage node classifier in memory on a
// synthetic citation-style graph (the M-GNN_Mem configuration of the
// paper), through the marius Session API: functional options, a
// context-aware run loop with per-epoch callbacks, and structured
// evaluation results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/marius"
)

func main() {
	// A Papers100M-shaped graph scaled to laptop size: 20k nodes with
	// label-correlated features and homophilous edges.
	g := gen.SBM(gen.DefaultSBM(20_000, 42))
	fmt.Printf("graph: %d nodes, %d edges, %d classes, %d training nodes\n",
		g.NumNodes, len(g.Edges), g.NumClasses, len(g.TrainNodes))

	sess, err := marius.New(marius.NodeClassification(), g,
		marius.WithModel(marius.GraphSage),
		marius.WithFanouts(15, 10, 5),
		marius.WithDim(64),
		marius.WithBatchSize(512),
		marius.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	_, err = sess.Run(context.Background(),
		marius.Epochs(5),
		marius.OnEpoch(func(p marius.Progress) error {
			st := p.Stats
			fmt.Printf("epoch %d: %.2fs  loss %.4f  train-acc %.3f  (sampled %d nodes, %d edges)\n",
				p.Epoch, st.Duration.Seconds(), st.Loss, st.Metric,
				st.NodesSampled, st.EdgesSampled)
			return nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	valid, err := sess.Evaluate(marius.ValidSplit)
	if err != nil {
		log.Fatal(err)
	}
	test, err := sess.Evaluate(marius.TestSplit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation accuracy %.3f, test accuracy %.3f\n", valid.Value, test.Value)
}
