// Link prediction with disk-based training: trains a GraphSage + DistMult
// model on an FB15k-237-like knowledge graph with the graph paged between
// disk and a small partition buffer, comparing the COMET policy against
// the greedy BETA policy from Marius (paper §7.5, Table 8).
//
// Run with: go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
)

func run(policyKind core.PolicyKind, name string) {
	// A fresh identical graph per policy (generators are seeded).
	g := gen.KG(gen.FB15k237Scale(0.25, 7))
	dir, err := os.MkdirTemp("", "mariusgnn-lp-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.NewLinkPrediction(g, core.Config{
		Storage:           core.OnDisk,
		Dir:               dir,
		Model:             core.GraphSage,
		Policy:            policyKind,
		Layers:            1,
		Fanouts:           []int{10},
		Dim:               32,
		BatchSize:         1024,
		Negatives:         256,
		Partitions:        8,
		BufferCapacity:    4,
		LogicalPartitions: 4,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("--- %s: %d entities, %d relations, %d training edges ---\n",
		name, g.NumNodes, g.NumRels, len(g.Edges))
	for epoch := 1; epoch <= 3; epoch++ {
		stats, err := sys.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %.2fs  loss %.4f  train-MRR %.4f  |S|=%d  IO %.1f MB\n",
			epoch, stats.Duration.Seconds(), stats.Loss, stats.Metric, stats.Visits,
			float64(stats.IO.BytesRead+stats.IO.BytesWritten)/1e6)
	}
	mrr, err := sys.EvaluateValid()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s validation MRR (all-entity ranking): %.4f\n\n", name, mrr)
}

func main() {
	run(core.COMET, "COMET")
	run(core.BETA, "BETA")
}
