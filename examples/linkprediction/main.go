// Link prediction with disk-based training: trains a GraphSage + DistMult
// model on an FB15k-237-like knowledge graph with the graph paged between
// disk and a small partition buffer, comparing the COMET policy against
// the greedy BETA policy from Marius (paper §7.5, Table 8).
//
// Run with: go run ./examples/linkprediction
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/marius"
)

func run(policyKind marius.PolicyKind, name string) {
	// A fresh identical graph per policy (generators are seeded).
	g := gen.KG(gen.FB15k237Scale(0.25, 7))
	dir, err := os.MkdirTemp("", "mariusgnn-lp-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.GraphSage),
		marius.WithPolicy(policyKind),
		marius.WithFanouts(10),
		marius.WithDim(32),
		marius.WithBatchSize(1024),
		marius.WithNegatives(256),
		marius.WithDisk(dir,
			marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)),
		marius.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	fmt.Printf("--- %s: %d entities, %d relations, %d training edges ---\n",
		name, g.NumNodes, g.NumRels, len(g.Edges))
	_, err = sess.Run(context.Background(),
		marius.Epochs(3),
		marius.OnEpoch(func(p marius.Progress) error {
			st := p.Stats
			fmt.Printf("epoch %d: %.2fs  loss %.4f  train-MRR %.4f  |S|=%d  IO %.1f MB\n",
				p.Epoch, st.Duration.Seconds(), st.Loss, st.Metric, st.Visits,
				float64(st.IO.BytesRead+st.IO.BytesWritten)/1e6)
			return nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	mrr, err := sess.Evaluate(marius.ValidSplit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s validation MRR (all-entity ranking): %.4f\n\n", name, mrr.Value)
}

func main() {
	run(marius.COMET, "COMET")
	run(marius.BETA, "BETA")
}
