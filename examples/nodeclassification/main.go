// Disk-based node classification with the §5.2 training-node caching
// policy: the labeled nodes (a few percent of the graph) are pinned in the
// partition buffer; the remaining partitions rotate from disk between
// epochs. A machine whose memory cannot hold the feature table can still
// train (the M-GNN_Disk rows of paper Table 3).
//
// Run with: go run ./examples/nodeclassification
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	cfg := gen.DefaultSBM(50_000, 9)
	cfg.TrainFrac = 0.02 // 2% labeled, in the 1-10% range of large OGB graphs
	g := gen.SBM(cfg)

	dir, err := os.MkdirTemp("", "mariusgnn-nc-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.NewNodeClassification(g, core.Config{
		Storage:        core.OnDisk,
		Dir:            dir,
		Model:          core.GraphSage,
		Layers:         3,
		Fanouts:        []int{15, 10, 5},
		Dim:            64,
		BatchSize:      512,
		Partitions:     16,
		BufferCapacity: 4, // only a quarter of the graph in memory at once
		Seed:           9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("graph: %d nodes (%d labeled for training), %d edges; buffer holds 4/16 partitions\n",
		g.NumNodes, len(g.TrainNodes), len(g.Edges))
	for epoch := 1; epoch <= 5; epoch++ {
		stats, err := sys.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %.2fs  loss %.4f  train-acc %.3f  IO %.1f MB (%d swaps)\n",
			epoch, stats.Duration.Seconds(), stats.Loss, stats.Metric,
			float64(stats.IO.BytesRead+stats.IO.BytesWritten)/1e6, stats.IO.Swaps)
	}
	test, err := sys.EvaluateTest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy %.3f\n", test)
}
