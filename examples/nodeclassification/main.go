// Disk-based node classification with the §5.2 training-node caching
// policy: the labeled nodes (a few percent of the graph) are pinned in the
// partition buffer; the remaining partitions rotate from disk between
// epochs. A machine whose memory cannot hold the feature table can still
// train (the M-GNN_Disk rows of paper Table 3).
//
// The run uses the Session run loop with per-epoch validation and early
// stopping, checkpoints after every epoch to a stable path, and finishes
// by restoring the checkpoint into a brand-new session (over an
// identically generated graph) to show the trained model surviving a
// restart.
//
// Run with: go run ./examples/nodeclassification
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/marius"
)

// graph regenerates the dataset; the generators are seeded, so every call
// yields an identical graph (which is what checkpoint restore requires).
func graph() *gen.SBMConfig {
	cfg := gen.DefaultSBM(50_000, 9)
	cfg.TrainFrac = 0.02 // 2% labeled, in the 1-10% range of large OGB graphs
	return &cfg
}

// session builds the disk-backed NC session under dir.
func session(dir string) (*marius.Session, error) {
	return marius.New(marius.NodeClassification(), gen.SBM(*graph()),
		marius.WithModel(marius.GraphSage),
		marius.WithFanouts(15, 10, 5),
		marius.WithDim(64),
		marius.WithBatchSize(512),
		// Only a quarter of the graph in memory at once.
		marius.WithDisk(dir, marius.Partitions(16), marius.Capacity(4)),
		marius.WithSeed(9),
	)
}

func main() {
	// The checkpoint lives outside the per-session storage dirs below, so
	// it survives each session's Close (both sessions in this process
	// share it; a real deployment would use a stable path).
	ckptDir, err := os.MkdirTemp("", "mariusgnn-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckpt := filepath.Join(ckptDir, "nc.ckpt")

	dir, err := os.MkdirTemp("", "mariusgnn-nc-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := session(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	g := sess.Graph()
	fmt.Printf("graph: %d nodes (%d labeled for training), %d edges; buffer holds 4/16 partitions\n",
		g.NumNodes, len(g.TrainNodes), len(g.Edges))
	res, err := sess.Run(context.Background(),
		marius.Epochs(8),
		marius.EarlyStopping(2, 0.001),
		marius.CheckpointTo(ckpt, 1),
		marius.OnEpoch(func(p marius.Progress) error {
			st := p.Stats
			fmt.Printf("epoch %d: %.2fs  loss %.4f  train-acc %.3f  IO %.1f MB (%d swaps)",
				p.Epoch, st.Duration.Seconds(), st.Loss, st.Metric,
				float64(st.IO.BytesRead+st.IO.BytesWritten)/1e6, st.IO.Swaps)
			if p.Valid != nil {
				fmt.Printf("  valid-acc %.3f", p.Valid.Value)
			}
			fmt.Println()
			return nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %s after %d epochs\n", res.Stopped, len(res.Epochs))
	test, err := sess.Evaluate(marius.TestSplit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy %.3f\n", test.Value)

	// Simulate a restart: a fresh session restores the checkpoint and
	// reproduces the trained model's accuracy exactly.
	dir2, err := os.MkdirTemp("", "mariusgnn-nc-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir2)
	restored, err := session(dir2)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Restore(ckpt); err != nil {
		log.Fatal(err)
	}
	test2, err := restored.Evaluate(marius.TestSplit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored session (epoch %d) test accuracy %.3f\n",
		restored.Task().Epoch(), test2.Value)
}
