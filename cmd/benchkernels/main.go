// Command benchkernels measures the tensor hot-path kernels against the
// retained naive references and emits BENCH_kernels.json, the repo's
// kernel performance baseline. Every future PR can diff its numbers
// against the checked-in file.
//
//	go run ./cmd/benchkernels                  # full shapes
//	go run ./cmd/benchkernels -short -check    # CI: small shapes, enforce floors
//
// -check exits non-zero when the 4-worker blocked matmul fails to reach
// 2x naive throughput or the arena training step allocates, so kernel
// regressions fail loudly rather than drifting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/tensor"
)

// Result is one measured kernel configuration.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	MFlops      float64 `json:"mflops,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the schema of BENCH_kernels.json.
type Report struct {
	Schema     int            `json:"schema"`
	Go         string         `json:"go"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Short      bool           `json:"short"`
	Shapes     map[string]any `json:"shapes"`
	Results    []Result       `json:"results"`
	Summary    map[string]any `json:"summary"`
}

func bench(name string, flops float64, fn func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	res := Result{Name: name, NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
	if flops > 0 && r.NsPerOp() > 0 {
		res.MFlops = flops / float64(r.NsPerOp()) * 1e3
	}
	fmt.Printf("%-32s %12d ns/op %10.0f MFLOP/s %6d allocs/op\n", name, res.NsPerOp, res.MFlops, res.AllocsPerOp)
	return res
}

func randn(rng *rand.Rand, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	t.RandNormal(rng, 1)
	return t
}

// benchBest re-measures a benchmark `rounds` times and keeps the fastest
// ns/op (and the worst allocs/op). The CI check compares ratios of these
// numbers; best-of-N strips scheduler noise on shared runners so the
// ratio floors gate the kernels, not the machine.
func benchBest(name string, flops float64, rounds int, fn func(b *testing.B)) Result {
	best := bench(name, flops, fn)
	for r := 1; r < rounds; r++ {
		next := bench(name, flops, fn)
		if next.NsPerOp < best.NsPerOp {
			best.NsPerOp, best.MFlops = next.NsPerOp, next.MFlops
		}
		if next.AllocsPerOp > best.AllocsPerOp {
			best.AllocsPerOp = next.AllocsPerOp
		}
	}
	return best
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	short := flag.Bool("short", false, "small shapes for CI")
	check := flag.Bool("check", false, "enforce acceptance floors (>=2x matmul, 0 allocs)")
	flag.Parse()

	// Shapes: the matmul triple models a GNN layer (batch x dim @ dim x
	// dim); the gather/segment shapes model a fanout-8 neighborhood; the
	// negative-scoring shapes model a 500-negative DistMult batch.
	n, k, m := 512, 128, 256
	gRows, gDim, gFan, gSegs := 2000, 64, 8, 1500
	sB, sDim, sNeg, sTable := 256, 64, 500, 4000
	if *short {
		n, k, m = 192, 96, 128
		gRows, gSegs = 800, 600
		sB, sNeg, sTable = 128, 250, 1500
	}

	rng := rand.New(rand.NewSource(42))
	a := randn(rng, n, k)
	b := randn(rng, k, m)
	matmulFlops := 2 * float64(n) * float64(k) * float64(m)

	h0 := randn(rng, gRows, gDim)
	idx := make([]int32, gSegs*gFan)
	for i := range idx {
		idx[i] = int32(rng.Intn(gRows))
	}
	offsets := make([]int32, gSegs)
	for s := 1; s < gSegs; s++ {
		offsets[s] = offsets[s-1] + int32(gFan)
	}

	qry := randn(rng, sB, sDim)
	table := randn(rng, sTable, sDim)
	negIdx := make([]int32, sNeg)
	for i := range negIdx {
		negIdx[i] = int32(rng.Intn(sTable))
	}
	negFlops := 2 * float64(sB) * float64(sDim) * float64(sNeg)

	serial := tensor.NewCompute(1, nil)
	w4 := tensor.NewCompute(4, nil)

	var results []Result
	add := func(r Result) { results = append(results, r) }

	// The naive kernel is the seed-era baseline: textbook triple loop,
	// single goroutine, strided access. The three matmul configurations
	// feed the -check ratio floors, so they run best-of-3.
	naive := benchBest("matmul_naive", matmulFlops, 3, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.RefMatMul(a, b)
		}
	})
	add(naive)
	mm1 := benchBest("matmul_blocked_w1", matmulFlops, 3, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			serial.MatMul(a, b)
		}
	})
	add(mm1)
	mm4 := benchBest("matmul_blocked_w4", matmulFlops, 3, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			w4.MatMul(a, b)
		}
	})
	add(mm4)

	gsUnfused := bench("gather_segment_unfused", 0, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			w4.SegmentSum(w4.Gather(h0, idx), offsets)
		}
	})
	add(gsUnfused)
	gsFused := bench("gather_segment_fused", 0, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			w4.GatherSegmentSum(h0, idx, offsets)
		}
	})
	add(gsFused)

	negUnfused := bench("negscore_unfused", negFlops, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			w4.MatMulTransposeB(qry, w4.Gather(table, negIdx))
		}
	})
	add(negUnfused)
	negFused := bench("negscore_fused_gathermatmul", negFlops, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			w4.GatherMatMulTB(qry, table, negIdx)
		}
	})
	add(negFused)

	// Quantized scoring: the serving/storage dequant path. Unfused
	// materializes the full float32 table from the compressed form and
	// then runs the fused float32 kernel — what a reader without the
	// dequantizing kernels would have to do per snapshot or per partition
	// load; fused dequantizes only the rows each dot product touches.
	// These feed a -check ratio floor, so best-of-3.
	var deqSpeedup = map[string]float64{}
	for _, kind := range []tensor.QuantKind{tensor.QuantF16, tensor.QuantI8} {
		qt := tensor.Quantize(table, kind)
		unfused := benchBest("negscore_dequant_unfused_"+kind.String(), negFlops, 3, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				w4.GatherMatMulTB(qry, qt.Dequant(), negIdx)
			}
		})
		add(unfused)
		fused := benchBest("negscore_dequant_fused_"+kind.String(), negFlops, 3, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				w4.GatherMatMulTBDequant(qry, qt, negIdx)
			}
		})
		add(fused)
		deqSpeedup[kind.String()] = float64(unfused.NsPerOp) / float64(fused.NsPerOp)
	}

	// Arena steady state: tensor.BenchTrainStep is the same sequence the
	// zero-allocation contract test asserts on — the two gates measure one
	// body by construction.
	arena := tensor.NewArena()
	ca := tensor.NewCompute(1, arena)
	w1t := randn(rng, gDim, gDim)
	w2t := randn(rng, gDim, gDim)
	dh0 := tensor.New(gRows, gDim)
	tensor.BenchTrainStep(ca, h0, w1t, w2t, dh0, idx, offsets) // warm up slabs
	arena.Reset()
	arenaStep := bench("arena_train_step_w1", 0, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.BenchTrainStep(ca, h0, w1t, w2t, dh0, idx, offsets)
			arena.Reset()
		}
	})
	add(arenaStep)
	heapStep := bench("heap_train_step_w1", 0, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.BenchTrainStep(serial, h0, w1t, w2t, dh0, idx, offsets)
		}
	})
	add(heapStep)

	speedupNaive := float64(naive.NsPerOp) / float64(mm4.NsPerOp)
	speedupSerial := float64(mm1.NsPerOp) / float64(mm4.NsPerOp)
	rep := Report{
		Schema:     1,
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Short:      *short,
		Shapes: map[string]any{
			"matmul":            []int{n, k, m},
			"gather_segment":    map[string]int{"rows": gRows, "dim": gDim, "fanout": gFan, "segments": gSegs},
			"negative_scoring":  map[string]int{"batch": sB, "dim": sDim, "negatives": sNeg, "table": sTable},
			"arena_train_layer": gDim,
		},
		Results: results,
		Summary: map[string]any{
			"matmul_speedup_workers4_vs_naive":  round2(speedupNaive),
			"matmul_speedup_workers4_vs_serial": round2(speedupSerial),
			"fused_gather_segment_speedup":      round2(float64(gsUnfused.NsPerOp) / float64(gsFused.NsPerOp)),
			"fused_negscore_speedup":            round2(float64(negUnfused.NsPerOp) / float64(negFused.NsPerOp)),
			"fused_dequant_speedup_fp16":        round2(deqSpeedup["fp16"]),
			"fused_dequant_speedup_int8":        round2(deqSpeedup["int8"]),
			"arena_allocs_per_batch":            arenaStep.AllocsPerOp,
			"heap_allocs_per_batch":             heapStep.AllocsPerOp,
			"arena_train_step_speedup":          round2(float64(heapStep.NsPerOp) / float64(arenaStep.NsPerOp)),
		},
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s: matmul w4 %.2fx naive, arena %d allocs/batch\n", *out, speedupNaive, arenaStep.AllocsPerOp)

	if *check {
		failed := false
		if speedupNaive < 2 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: matmul 4-worker speedup %.2fx < 2x naive\n", speedupNaive)
			failed = true
		}
		// On a single-CPU machine workers4-vs-serial is pure dispatch
		// overhead (~1.0x), so the naive floor above carries the check; with
		// real cores available a silently-disabled fan-out (e.g. a serialFor
		// regression) must not pass, so demand a genuine parallel speedup.
		if runtime.GOMAXPROCS(0) >= 2 && speedupSerial < 1.15 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: matmul 4-worker speedup %.2fx vs serial on %d CPUs — kernel fan-out is not parallelizing\n",
				speedupSerial, runtime.GOMAXPROCS(0))
			failed = true
		}
		// Conservative floor: dequantizing only the gathered rows must
		// clearly beat re-materializing the whole float32 table per op.
		for kind, sp := range deqSpeedup {
			if sp < 1.2 {
				fmt.Fprintf(os.Stderr, "CHECK FAILED: fused %s dequant scoring %.2fx vs materialize-then-score, want >= 1.2x\n", kind, sp)
				failed = true
			}
		}
		if arenaStep.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: arena training step allocates %d/op, want 0\n", arenaStep.AllocsPerOp)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("checks passed: >=2x matmul throughput, 0 allocs/batch")
	}
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
