// Command benchsampler measures the incremental bucket-segmented
// adjacency index against the from-scratch rebuild and the DENSE
// sampling hot path's allocation behavior, emitting BENCH_sampler.json,
// the repo's sampling performance baseline.
//
//	go run ./cmd/benchsampler                  # full size
//	go run ./cmd/benchsampler -short -check    # CI: small size, enforce floors
//
// The visit-setup benchmark walks identical BETA epoch plans twice: the
// from-scratch path re-reads all c² resident edge buckets and rebuilds
// the full CSR per visit (the trainer's pre-PR-4 behavior), while the
// incremental path swaps a Segmented view over the fragment cache,
// touching only the admitted partitions' rows and columns. -check exits
// non-zero when the incremental path is below 2x per visit at buffer
// capacity >= 4, or when steady-state DENSE sampling (with recycling)
// allocates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/train"
)

// Report is the schema of BENCH_sampler.json.
type Report struct {
	Schema     int     `json:"schema"`
	Go         string  `json:"go"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Config     Config  `json:"config"`
	Setup      Setup   `json:"visit_setup"`
	Sampling   Samp    `json:"sampling"`
	Summary    Summary `json:"summary"`
}

// Config records the benchmark workload.
type Config struct {
	Entities   int   `json:"entities"`
	Edges      int   `json:"edges"`
	Partitions int   `json:"partitions"`
	Capacity   int   `json:"capacity"`
	Fanouts    []int `json:"fanouts"`
	BatchSize  int   `json:"batch_size"`
	Epochs     int   `json:"epochs"`
}

// Setup reports the per-visit adjacency refresh cost of both paths over
// identical epoch plans.
type Setup struct {
	Visits          int     `json:"visits"`
	ScratchMSTotal  float64 `json:"from_scratch_ms_total"`
	ScratchUSVisit  float64 `json:"from_scratch_us_per_visit"`
	IncrMSTotal     float64 `json:"incremental_ms_total"`
	IncrUSVisit     float64 `json:"incremental_us_per_visit"`
	FragCacheHits   int64   `json:"frag_cache_hits"`
	FragCacheMisses int64   `json:"frag_cache_misses"`
}

// Samp reports the DENSE sampling hot path over both index backings.
type Samp struct {
	FlatUSBatch      float64 `json:"flat_us_per_batch"`
	SegmentedUSBatch float64 `json:"segmented_us_per_batch"`
	AllocsFlat       float64 `json:"allocs_per_sample_flat"`
	AllocsSegmented  float64 `json:"allocs_per_sample_segmented"`
}

// Summary is what -check gates on.
type Summary struct {
	SetupSpeedup   float64 `json:"visit_setup_speedup_incremental_vs_scratch"`
	AllocsPerBatch float64 `json:"allocs_per_batch_steady_state"`
}

func main() {
	out := flag.String("o", "BENCH_sampler.json", "output JSON path")
	short := flag.Bool("short", false, "small dataset for CI")
	check := flag.Bool("check", false, "enforce acceptance floors (>=2x visit-setup speedup, 0 allocs/batch)")
	epochs := flag.Int("epochs", 4, "measured epochs (identical plans for both paths)")
	flag.Parse()

	cfg := Config{
		Entities: 40000, Edges: 800000,
		Partitions: 16, Capacity: 4,
		Fanouts: []int{10, 10}, BatchSize: 1024,
		Epochs: *epochs,
	}
	if *short {
		cfg.Entities, cfg.Edges = 10000, 200000
	}

	g := gen.KG(gen.KGConfig{
		NumEntities: cfg.Entities, NumRelations: 8, NumEdges: cfg.Edges,
		ZipfS: 1.2, ValidFrac: 0.01, TestFrac: 0.01, Seed: 7,
	})
	pt := train.PrepareLP(g, cfg.Partitions, 7)
	store := storage.NewMemoryEdgeStore(pt, g.Edges)

	// Identical plans for both paths: regenerate from the same seeds.
	plans := func() []*policy.Plan {
		pol := policy.Beta{P: cfg.Partitions, C: cfg.Capacity}
		ps := make([]*policy.Plan, cfg.Epochs)
		for e := range ps {
			ps[e] = pol.NewEpochPlan(rand.New(rand.NewSource(100 + int64(e))))
		}
		return ps
	}

	// From-scratch path: per visit, flatten the c² resident buckets and
	// counting-sort the full in-memory edge set (pre-PR-4 behavior).
	visits := 0
	var buf []graph.Edge
	var adjSink *graph.Adjacency
	t0 := time.Now()
	for _, plan := range plans() {
		for _, v := range plan.Visits {
			buf = buf[:0]
			var err error
			for _, i := range v.Mem {
				for _, j := range v.Mem {
					buf, err = store.ReadBucket(i, j, buf)
					must(err)
				}
			}
			adjSink = graph.BuildAdjacency(g.NumNodes, buf)
			visits++
		}
	}
	scratchTotal := time.Since(t0)
	fmt.Printf("from-scratch: %d visits in %.1f ms (%.0f us/visit)\n",
		visits, ms(scratchTotal), us(scratchTotal)/float64(visits))

	// Incremental path: one fragment cache across epochs (fragments are
	// immutable), Swap per visit. A warm-up epoch fills the cache — the
	// steady state the trainer reaches after its first epoch.
	fc := storage.NewFragCache(store, pt, cfg.Partitions*cfg.Partitions)
	seg := graph.NewSegmented(fc)
	for _, v := range plans()[0].Visits {
		var err error
		seg, err = seg.Swap(v.Mem)
		must(err)
	}
	h0, m0 := fc.Stats()
	t1 := time.Now()
	for _, plan := range plans() {
		for _, v := range plan.Visits {
			var err error
			seg, err = seg.Swap(v.Mem)
			must(err)
		}
	}
	incrTotal := time.Since(t1)
	hits, misses := fc.Stats()
	hits, misses = hits-h0, misses-m0
	fmt.Printf("incremental:  %d visits in %.1f ms (%.0f us/visit), frag cache %d hit / %d miss\n",
		visits, ms(incrTotal), us(incrTotal)/float64(visits), hits, misses)
	if adjSink.NumEdges() != seg.NumEdges() {
		fmt.Fprintf(os.Stderr, "index mismatch: from-scratch %d edges, incremental %d\n",
			adjSink.NumEdges(), seg.NumEdges())
		os.Exit(1)
	}

	// Sampling hot path: identical targets over both index backings, with
	// recycling (the trainers' steady state). Targets are drawn from the
	// resident partitions of the last visit.
	targets := residentTargets(seg, pt, cfg.BatchSize)
	flatAdj := graph.BuildAdjacency(g.NumNodes, buf) // last visit's edge set
	sampFlat := benchSample(flatAdj, cfg.Fanouts, targets)
	sampSeg := benchSample(seg, cfg.Fanouts, targets)
	fmt.Printf("sampling:     flat %.0f us/batch (%.1f allocs), segmented %.0f us/batch (%.1f allocs)\n",
		sampFlat.us, sampFlat.allocs, sampSeg.us, sampSeg.allocs)

	speedup := float64(scratchTotal) / float64(incrTotal)
	allocs := sampFlat.allocs
	if sampSeg.allocs > allocs {
		allocs = sampSeg.allocs
	}
	rep := Report{
		Schema:     1,
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Short:      *short,
		Config:     cfg,
		Setup: Setup{
			Visits:          visits,
			ScratchMSTotal:  round3(ms(scratchTotal)),
			ScratchUSVisit:  round3(us(scratchTotal) / float64(visits)),
			IncrMSTotal:     round3(ms(incrTotal)),
			IncrUSVisit:     round3(us(incrTotal) / float64(visits)),
			FragCacheHits:   hits,
			FragCacheMisses: misses,
		},
		Sampling: Samp{
			FlatUSBatch:      round3(sampFlat.us),
			SegmentedUSBatch: round3(sampSeg.us),
			AllocsFlat:       sampFlat.allocs,
			AllocsSegmented:  sampSeg.allocs,
		},
		Summary: Summary{
			SetupSpeedup:   round3(speedup),
			AllocsPerBatch: allocs,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	must(err)
	data = append(data, '\n')
	must(os.WriteFile(*out, data, 0o644))
	fmt.Printf("\nwrote %s: %.1fx visit-setup speedup, %.1f allocs/batch\n", *out, speedup, allocs)

	if *check {
		failed := false
		if speedup < 2 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: incremental visit setup %.2fx < 2x from-scratch at capacity %d\n",
				speedup, cfg.Capacity)
			failed = true
		}
		if allocs != 0 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: steady-state sampling allocates %.1f/batch, want 0\n", allocs)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("checks passed: >=2x visit-setup speedup, 0 allocs/batch")
	}
}

// residentTargets picks batch-many unique node IDs from seg's resident
// partitions (the trainers only ever sample resident targets).
func residentTargets(seg *graph.Segmented, pt interface{ Range(int) (int32, int32) }, batch int) []int32 {
	rng := rand.New(rand.NewSource(9))
	seen := map[int32]bool{}
	var targets []int32
	mem := seg.Mem()
	for len(targets) < batch {
		lo, hi := pt.Range(mem[rng.Intn(len(mem))])
		if hi == lo {
			continue
		}
		v := lo + int32(rng.Intn(int(hi-lo)))
		if !seen[v] {
			seen[v] = true
			targets = append(targets, v)
		}
	}
	return targets
}

type sampleStat struct {
	us     float64
	allocs float64
}

// benchSample measures steady-state DENSE sampling (with recycling) over
// the given index.
func benchSample(idx graph.Index, fanouts []int, targets []int32) sampleStat {
	smp := sampler.New(idx, fanouts, graph.Both, 0)
	for i := 0; i < 3; i++ { // warm workspaces and the recycle pool
		smp.Reseed(int64(i))
		smp.Recycle(smp.Sample(targets))
	}
	allocs := testing.AllocsPerRun(50, func() {
		smp.Reseed(11)
		smp.Recycle(smp.Sample(targets))
	})
	const iters = 30
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		smp.Reseed(int64(i))
		smp.Recycle(smp.Sample(targets))
	}
	return sampleStat{us: us(time.Since(t0)) / iters, allocs: allocs}
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
func us(d time.Duration) float64 { return float64(d) / 1e3 }

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func round3(x float64) float64 { return float64(int(x*1000+0.5)) / 1000 }
