// Command mariusgnn trains a GNN on a generated benchmark graph with any
// combination of task, model, storage mode and replacement policy, through
// the marius Session API. Flag defaults are the paper defaults exported by
// the marius package. Ctrl-C cancels the run cleanly mid-epoch; -checkpoint
// saves resumable state every epoch and -resume restarts from it. A run
// killed outright (crash, OOM, kill -9) is continued by -resume-dir, which
// replays the run journal written alongside the checkpoint and finishes
// with losses and a final checkpoint byte-identical to an uninterrupted
// run.
//
// Examples:
//
//	mariusgnn -task nc -nodes 50000 -storage mem -epochs 5
//	mariusgnn -task lp -dataset fb15k237 -storage disk -policy comet -epochs 5
//	mariusgnn -task lp -model distmult -storage disk -policy beta
//	mariusgnn -task lp -model distmult -decoder complex -ranking -filtered
//	mariusgnn -task lp -epochs 20 -checkpoint run.ckpt   # later: -resume run.ckpt
//	mariusgnn -data data/fb -checkpoint ckpts/run.ckpt   # killed? -resume-dir ckpts
//	mariusgnn -data data/fb -storage disk -pipeline 2    # mariusprep-prepared directory
//	mariusgnn -storage disk -pipeline 2 -metrics-addr :9090 -trace run.trace
//	  # then: curl -s localhost:9090/metrics ; load run.trace in chrome://tracing
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/marius"
)

func main() {
	var (
		task      = flag.String("task", "nc", "nc (node classification) or lp (link prediction)")
		dataset   = flag.String("dataset", "", "nc: sbm; lp: fb15k237, freebase, wiki (default per task)")
		data      = flag.String("data", "", "train from a mariusprep-prepared dataset directory (task, seed and partitions come from its manifest)")
		nodes     = flag.Int("nodes", 20000, "graph size for generated datasets")
		model     = flag.String("model", "graphsage", "graphsage, gat, gcn, distmult")
		decoderF  = flag.String("decoder", "", "lp scoring decoder: distmult, complex, transe (default distmult)")
		ranking   = flag.Bool("ranking", false, "evaluate lp with the ranking protocol, printing MRR and Hits@1/10 per eval epoch")
		filtered  = flag.Bool("filtered", false, "filtered ranking: drop known true triples from candidate sets (implies -ranking)")
		storageF  = flag.String("storage", "mem", "mem or disk")
		policyF   = flag.String("policy", "comet", "comet or beta (disk link prediction)")
		layers    = flag.Int("layers", 0, "GNN layers (0 = task default)")
		dim       = flag.Int("dim", marius.DefaultDim, "hidden/embedding dimensionality")
		batch     = flag.Int("batch", marius.DefaultBatchSize, "mini-batch size")
		negs      = flag.Int("negatives", marius.DefaultNegatives, "negatives per batch (lp)")
		epochs    = flag.Int("epochs", 5, "training epochs")
		parts     = flag.Int("partitions", 0, "physical partitions (0 = auto-tune)")
		capacity  = flag.Int("capacity", 0, "buffer capacity (0 = auto-tune)")
		logical   = flag.Int("logical", 0, "logical partitions (0 = auto-tune)")
		baseline  = flag.Bool("baseline", false, "use DGL/PyG-style baseline execution")
		pipeline  = flag.Int("pipeline", 0, "visits prefetched ahead of the trainer (0 = serial epoch loop)")
		workers   = flag.Int("workers", marius.DefaultWorkers, "batch-construction workers / kernel fan-out")
		mbps      = flag.Float64("disk-mbps", 0, "simulated disk bandwidth in MB/s (0 = unlimited)")
		noEval    = flag.Bool("no-eval", false, "skip final valid/test evaluation (it materializes the full graph — use for larger-than-RAM -data runs)")
		patience  = flag.Int("patience", 0, "early-stopping patience in epochs (0 = off)")
		ckpt      = flag.String("checkpoint", "", "save a resumable checkpoint here every epoch")
		resume    = flag.String("resume", "", "restore training state from this checkpoint before running")
		resumeDir = flag.String("resume-dir", "", "continue a killed checkpointed run from the journal in this directory (where -checkpoint wrote); the journal records the full session configuration, so other flags are ignored")
		serveHint = flag.Bool("serve-export", false, "print the mariusserve invocation for the saved checkpoint after the run")
		metrics   = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text) and /debug/pprof/ on this address during the run")
		traceF    = flag.String("trace", "", "write pipeline/storage stage spans to this file in Chrome Trace Event Format")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *resumeDir != "" {
		resumeFromJournal(*resumeDir, *noEval)
		return
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	seedSet := explicit["seed"]
	if *data != "" {
		// A prepared dataset fixes the task and the graph; silently
		// dropping these flags would train something other than what the
		// user asked for.
		for _, name := range []string{"task", "dataset", "nodes"} {
			if explicit[name] {
				log.Fatalf("-%s conflicts with -data: the prepared dataset's manifest decides it", name)
			}
		}
	}

	opts := []marius.Option{
		marius.WithDim(*dim), marius.WithBatchSize(*batch),
		marius.WithNegatives(*negs),
	}
	// Observability is purely additive: checkpoints and losses are
	// byte-identical with or without it.
	if *metrics != "" {
		reg := marius.NewMetrics()
		opts = append(opts, marius.WithMetrics(reg))
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if *traceF != "" {
		tr, err := marius.NewTracer(*traceF)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		opts = append(opts, marius.WithTrace(tr))
	}
	// A prepared dataset carries its prep seed; only override it when
	// the flag was given explicitly.
	if *data == "" || seedSet {
		opts = append(opts, marius.WithSeed(*seed))
	}
	if *layers > 0 {
		opts = append(opts, marius.WithLayers(*layers))
	}
	switch *model {
	case "graphsage":
		opts = append(opts, marius.WithModel(marius.GraphSage))
	case "gat":
		opts = append(opts, marius.WithModel(marius.GAT))
	case "gcn":
		opts = append(opts, marius.WithModel(marius.GCN))
	case "distmult":
		opts = append(opts, marius.WithModel(marius.DistMultOnly))
	default:
		log.Fatalf("unknown model %q", *model)
	}
	// WithDecoder is a typed error on node classification, so only an
	// explicit flag reaches the session.
	switch *decoderF {
	case "":
	case "distmult":
		opts = append(opts, marius.WithDecoder(marius.DistMult))
	case "complex":
		opts = append(opts, marius.WithDecoder(marius.ComplEx))
	case "transe":
		opts = append(opts, marius.WithDecoder(marius.TransE))
	default:
		log.Fatalf("unknown decoder %q", *decoderF)
	}
	var evalOpts []marius.EvalOption
	if *ranking || *filtered {
		evalOpts = append(evalOpts, marius.RankingEval(1, 10))
		if *filtered {
			evalOpts = append(evalOpts, marius.FilteredEval())
		}
	}
	if *storageF == "disk" {
		dir, err := os.MkdirTemp("", "mariusgnn-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		var disk []marius.DiskOption
		if *parts > 0 {
			disk = append(disk, marius.Partitions(*parts))
		}
		if *capacity > 0 {
			disk = append(disk, marius.Capacity(*capacity))
		}
		if *logical > 0 {
			disk = append(disk, marius.LogicalPartitions(*logical))
		}
		if *mbps > 0 {
			disk = append(disk, marius.Throttled(storage.NewThrottle(*mbps*1e6)))
		}
		opts = append(opts, marius.WithDisk(dir, disk...))
	}
	switch *policyF {
	case "comet":
		// COMET is the marius default.
	case "beta":
		opts = append(opts, marius.WithPolicy(marius.BETA))
	default:
		log.Fatalf("unknown policy %q", *policyF)
	}
	if *baseline {
		opts = append(opts, marius.WithBaseline())
	}
	opts = append(opts, marius.WithWorkers(*workers))
	if *pipeline > 0 {
		opts = append(opts, marius.WithPipeline(*pipeline))
	}

	var sess *marius.Session
	var err error
	if *data != "" {
		sess, err = marius.FromDataset(*data, opts...)
		if err != nil {
			log.Fatal(err)
		}
		o := sess.Options()
		fmt.Printf("dataset %s: task %s, %d nodes, %d partitions, seed %d\n",
			*data, sess.Task().Name(), sess.Graph().NumNodes, o.Partitions, o.Seed)
	} else {
		var g *graph.Graph
		var mtask marius.Task
		switch *task {
		case "nc":
			g = gen.SBM(gen.DefaultSBM(*nodes, *seed))
			fmt.Printf("SBM graph: %d nodes, %d edges, %d classes, %d train nodes\n",
				g.NumNodes, len(g.Edges), g.NumClasses, len(g.TrainNodes))
			mtask = marius.NodeClassification()
		case "lp":
			switch *dataset {
			case "", "fb15k237":
				g = gen.KG(gen.FB15k237Scale(float64(*nodes)/14541.0, *seed))
			case "freebase":
				g = gen.KG(gen.FreebaseScale(86_000_000 / *nodes, *seed))
			case "wiki":
				g = gen.KG(gen.WikiScale(91_000_000 / *nodes, *seed))
			default:
				log.Fatalf("unknown lp dataset %q", *dataset)
			}
			fmt.Printf("KG: %d entities, %d relations, %d train edges\n",
				g.NumNodes, g.NumRels, len(g.Edges))
			mtask = marius.LinkPrediction()
		default:
			log.Fatalf("unknown task %q", *task)
		}
		sess, err = marius.New(mtask, g, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer sess.Close()
	if *resume != "" {
		if err := sess.Restore(*resume); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at epoch %d\n", *resume, sess.Task().Epoch())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runOpts := []marius.RunOption{
		marius.Epochs(*epochs),
		marius.OnEpoch(func(p marius.Progress) error {
			st := p.Stats
			line := fmt.Sprintf("epoch %d: %.2fs loss=%.4f train-metric=%.4f visits=%d sample=%.2fs compute=%.2fs io=%.1fMB",
				p.Epoch, st.Duration.Seconds(), st.Loss, st.Metric, st.Visits,
				st.Sample.Seconds(), st.Compute.Seconds(),
				float64(st.IO.BytesRead+st.IO.BytesWritten)/1e6)
			if h, m := st.IO.PrefetchHits, st.IO.PrefetchMisses; h+m > 0 {
				line += fmt.Sprintf(" read=%.1fMB prefetch-hit=%.0f%%",
					float64(st.IO.BytesRead)/1e6, 100*float64(h)/float64(h+m))
			}
			if st.Pipeline.Depth > 0 {
				line += fmt.Sprintf(" load-wait=%.2fs batch-wait=%.2fs",
					st.Pipeline.LoadWait.Seconds(), st.Pipeline.BatchWait.Seconds())
			}
			fmt.Println(line)
			if p.Valid != nil {
				fmt.Printf("  %v\n", *p.Valid)
			}
			return nil
		}),
	}
	if *patience > 0 {
		runOpts = append(runOpts, marius.EarlyStopping(*patience, 1e-4))
	}
	if len(evalOpts) > 0 {
		runOpts = append(runOpts, marius.EvalEvery(1), marius.EvalWith(evalOpts...))
	}
	if *ckpt != "" {
		runOpts = append(runOpts, marius.CheckpointTo(*ckpt, 1))
	}
	res, err := sess.Run(ctx, runOpts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Printf("run canceled after %d epochs\n", len(res.Epochs))
			return
		}
		log.Fatal(err)
	}
	if res.Stopped != marius.Completed {
		fmt.Printf("run stopped: %s\n", res.Stopped)
	}
	if *serveHint && *ckpt != "" {
		// Checkpoints embed the prepared dataset's UUID, so mariusserve
		// can verify this exact pairing at load time.
		if *data != "" {
			fmt.Printf("serve it: mariusserve -data %s -checkpoint %s\n", *data, *ckpt)
		} else {
			fmt.Printf("serve it: prepare the same graph with mariusprep, then mariusserve -data <dir> -checkpoint %s\n", *ckpt)
		}
	}

	if *noEval {
		return
	}
	valid, err := sess.Evaluate(marius.ValidSplit, evalOpts...)
	if err != nil {
		log.Fatal(err)
	}
	test, err := sess.Evaluate(marius.TestSplit, evalOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if len(evalOpts) > 0 {
		fmt.Printf("validation %v\ntest %v\n", valid, test)
	} else {
		fmt.Printf("validation %s %.4f, test %s %.4f\n", valid.Metric, valid.Value, test.Metric, test.Value)
	}
}

// resumeFromJournal continues a crashed checkpointed run: the journal in
// dir records the dataset, session options, epoch target and checkpoint
// location, so the combined run finishes with losses and a final
// checkpoint byte-identical to one that was never interrupted.
func resumeFromJournal(dir string, noEval bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sess, res, err := marius.Resume(ctx, dir)
	if errors.Is(err, marius.ErrNoJournal) {
		log.Fatalf("%s holds no run journal: the crash (if any) predates all durable state — start the run fresh", dir)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && res != nil {
			fmt.Printf("resume canceled after %d epochs\n", len(res.Epochs))
			return
		}
		log.Fatal(err)
	}
	defer sess.Close()
	for _, st := range res.Epochs {
		fmt.Printf("epoch %d: loss=%.4f train-metric=%.4f\n", st.Epoch, st.Loss, st.Metric)
	}
	fmt.Printf("resumed run complete: %d epochs total\n", len(res.Epochs))
	if noEval {
		return
	}
	valid, err := sess.Evaluate(marius.ValidSplit)
	if err != nil {
		log.Fatal(err)
	}
	test, err := sess.Evaluate(marius.TestSplit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation %s %.4f, test %s %.4f\n", valid.Metric, valid.Value, test.Metric, test.Value)
}
