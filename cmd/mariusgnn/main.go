// Command mariusgnn trains a GNN on a generated benchmark graph with any
// combination of task, model, storage mode and replacement policy.
//
// Examples:
//
//	mariusgnn -task nc -nodes 50000 -storage mem -epochs 5
//	mariusgnn -task lp -dataset fb15k237 -storage disk -policy comet -epochs 5
//	mariusgnn -task lp -model distmult -storage disk -policy beta
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/train"
)

func main() {
	var (
		task     = flag.String("task", "nc", "nc (node classification) or lp (link prediction)")
		dataset  = flag.String("dataset", "", "nc: sbm; lp: fb15k237, freebase, wiki (default per task)")
		nodes    = flag.Int("nodes", 20000, "graph size for generated datasets")
		model    = flag.String("model", "graphsage", "graphsage, gat, gcn, distmult")
		storageF = flag.String("storage", "mem", "mem or disk")
		policyF  = flag.String("policy", "comet", "comet or beta (disk link prediction)")
		layers   = flag.Int("layers", 0, "GNN layers (0 = task default)")
		dim      = flag.Int("dim", 32, "hidden/embedding dimensionality")
		batch    = flag.Int("batch", 1024, "mini-batch size")
		negs     = flag.Int("negatives", 256, "negatives per batch (lp)")
		epochs   = flag.Int("epochs", 5, "training epochs")
		parts    = flag.Int("partitions", 0, "physical partitions (0 = auto-tune)")
		capacity = flag.Int("capacity", 0, "buffer capacity (0 = auto-tune)")
		logical  = flag.Int("logical", 0, "logical partitions (0 = auto-tune)")
		baseline = flag.Bool("baseline", false, "use DGL/PyG-style baseline execution")
		mbps     = flag.Float64("disk-mbps", 0, "simulated disk bandwidth in MB/s (0 = unlimited)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := core.Config{
		Dim: *dim, Layers: *layers, BatchSize: *batch, Negatives: *negs,
		Partitions: *parts, BufferCapacity: *capacity, LogicalPartitions: *logical,
		Seed: *seed,
	}
	switch *model {
	case "graphsage":
		cfg.Model = core.GraphSage
	case "gat":
		cfg.Model = core.GAT
	case "gcn":
		cfg.Model = core.GCN
	case "distmult":
		cfg.Model = core.DistMultOnly
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if *storageF == "disk" {
		cfg.Storage = core.OnDisk
		dir, err := os.MkdirTemp("", "mariusgnn-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	if *policyF == "beta" {
		cfg.Policy = core.BETA
	}
	if *baseline {
		cfg.Mode = train.ModeBaseline
	}
	if *mbps > 0 {
		cfg.Throttle = storage.NewThrottle(*mbps * 1e6)
	}

	var g *graph.Graph
	var sys *core.System
	var err error
	switch *task {
	case "nc":
		g = gen.SBM(gen.DefaultSBM(*nodes, *seed))
		fmt.Printf("SBM graph: %d nodes, %d edges, %d classes, %d train nodes\n",
			g.NumNodes, len(g.Edges), g.NumClasses, len(g.TrainNodes))
		sys, err = core.NewNodeClassification(g, cfg)
	case "lp":
		switch *dataset {
		case "", "fb15k237":
			g = gen.KG(gen.FB15k237Scale(float64(*nodes)/14541.0, *seed))
		case "freebase":
			g = gen.KG(gen.FreebaseScale(86_000_000 / *nodes, *seed))
		case "wiki":
			g = gen.KG(gen.WikiScale(91_000_000 / *nodes, *seed))
		default:
			log.Fatalf("unknown lp dataset %q", *dataset)
		}
		fmt.Printf("KG: %d entities, %d relations, %d train edges\n",
			g.NumNodes, g.NumRels, len(g.Edges))
		sys, err = core.NewLinkPrediction(g, cfg)
	default:
		log.Fatalf("unknown task %q", *task)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for e := 1; e <= *epochs; e++ {
		st, err := sys.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %.2fs loss=%.4f train-metric=%.4f visits=%d sample=%.2fs compute=%.2fs io=%.1fMB\n",
			e, st.Duration.Seconds(), st.Loss, st.Metric, st.Visits,
			st.Sample.Seconds(), st.Compute.Seconds(),
			float64(st.IO.BytesRead+st.IO.BytesWritten)/1e6)
	}
	valid, err := sys.EvaluateValid()
	if err != nil {
		log.Fatal(err)
	}
	test, err := sys.EvaluateTest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation metric %.4f, test metric %.4f\n", valid, test)
}
