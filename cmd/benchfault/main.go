// Command benchfault is the chaos harness: it drives the fault-injection
// layer (internal/fault) through the full pipeline — ingest, out-of-core
// training, crash/resume, and serving — under seeded fault schedules and
// emits BENCH_fault.json, the repo's robustness baseline.
//
//	go run ./cmd/benchfault                   # full size
//	go run ./cmd/benchfault -short -check     # CI: small size, enforce gates
//
// Five phases, each a differential against the no-fault behavior:
//
//  1. Ingest crash: a prep killed mid-write (torn Nth write, everything
//     after fails) must leave no manifest, be refused by OpenDataset,
//     fail typed (ErrPartialOutput) on re-ingest, and — with Force —
//     sweep and re-ingest to a byte-identical dataset.
//  2. Transient weather: training through an injector that randomly
//     fails and truncates IO must absorb every blip in the bounded
//     retry loops and produce losses and a final checkpoint
//     byte-identical to the clean run.
//  3. Crash/resume: a checkpointed run killed at a randomized write
//     count, then Resumed, must match the uninterrupted run's loss
//     trajectory and final checkpoint bit for bit.
//  4. Serve overload: a burst against a stalled, tiny-queue server must
//     shed quickly (ErrOverloaded / HTTP 503 + Retry-After), expire
//     admitted requests at their deadline, degrade /healthz while
//     shedding persists, and recover to healthy once the stall clears.
//  5. Serve panic: a panic injected into the dispatch path must be
//     contained (HTTP 500, counter bumped), with the very next request
//     served normally by the same process.
//
// -check enforces all of the above as hard gates and exits nonzero on
// the first violation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/marius"
)

// Report is the schema of BENCH_fault.json.
type Report struct {
	Schema     int           `json:"schema"`
	Go         string        `json:"go"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Short      bool          `json:"short"`
	Config     Config        `json:"config"`
	Ingest     IngestPhase   `json:"ingest_crash"`
	Weather    WeatherPhase  `json:"transient_weather"`
	Crash      CrashPhase    `json:"crash_resume"`
	Overload   OverloadPhase `json:"serve_overload"`
	Panic      PanicPhase    `json:"serve_panic"`
}

// Config records the chaos workload: link prediction over a disk-mode
// session, because learnable embeddings put evict write-back, prefetch,
// checkpoint, and journal IO all on the faulted path.
type Config struct {
	Entities int   `json:"entities"`
	Edges    int   `json:"edges"`
	Dim      int   `json:"dim"`
	Parts    int   `json:"partitions"`
	Epochs   int   `json:"epochs"`
	Burst    int   `json:"burst"`
	Seed     int64 `json:"seed"`
}

// IngestPhase: prep killed mid-write, then recovered with -force.
type IngestPhase struct {
	CrashSurfaced       bool `json:"crash_surfaced"`
	ManifestAbsent      bool `json:"manifest_absent"`
	OpenRejected        bool `json:"open_rejected"`
	RefusedWithoutForce bool `json:"refused_without_force"`
	ForceMatchesClean   bool `json:"force_matches_clean"`
	OrphansAfter        int  `json:"orphans_after"`
}

// WeatherPhase: training through random transient/short IO faults.
type WeatherPhase struct {
	Transients  int64 `json:"transients_injected"`
	Shorts      int64 `json:"shorts_injected"`
	Retries     int64 `json:"retries_absorbed"`
	Gaveup      int64 `json:"retries_gaveup"`
	LossesMatch bool  `json:"losses_match_clean"`
	CkptMatches bool  `json:"checkpoint_matches_clean"`
}

// CrashPhase: kill -9 at a randomized write, resume, compare.
type CrashPhase struct {
	KillAtWrite int64 `json:"kill_at_write"`
	TotalWrites int64 `json:"total_writes"`
	Resumed     bool  `json:"resumed_from_journal"`
	LossesMatch bool  `json:"losses_match_clean"`
	CkptMatches bool  `json:"checkpoint_matches_clean"`
}

// OverloadPhase: burst against a stalled server with a one-slot queue.
type OverloadPhase struct {
	Shed            uint64  `json:"shed"`
	DeadlineExpired uint64  `json:"deadline_expired"`
	ShedMS          float64 `json:"shed_p_max_ms"`
	HTTPStatus      int     `json:"http_status"`
	RetryAfter      bool    `json:"retry_after_header"`
	DegradedWhile   bool    `json:"healthz_degraded_while_shedding"`
	Recovered       bool    `json:"recovered_after_stall"`
}

// PanicPhase: injected dispatcher panic contained by recovery.
type PanicPhase struct {
	FirstStatus     int    `json:"poisoned_status"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	RecoveredStatus int    `json:"next_request_status"`
}

func main() {
	out := flag.String("o", "BENCH_fault.json", "output JSON path")
	short := flag.Bool("short", false, "small graphs for CI")
	check := flag.Bool("check", false, "enforce gates (recovery differentials, shed/deadline/panic behavior)")
	flag.Parse()

	cfg := Config{Entities: 600, Edges: 6000, Dim: 8, Parts: 4, Epochs: 3, Burst: 64, Seed: 11}
	if *short {
		cfg.Entities, cfg.Edges, cfg.Epochs, cfg.Burst = 400, 3000, 2, 32
	}
	rep := Report{Schema: 1, Go: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), Short: *short, Config: cfg}

	work, err := os.MkdirTemp("", "benchfault-")
	must(err)
	defer os.RemoveAll(work)

	// One raw export feeds every ingest in the run, so ingest outputs are
	// comparable byte for byte.
	g := gen.KG(gen.KGConfig{
		NumEntities: cfg.Entities, NumRelations: 4, NumEdges: cfg.Edges,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 13,
	})
	exp, err := dataset.Export(g, filepath.Join(work, "raw"), "tsv")
	must(err)
	mkIngest := func(out string) dataset.Config { return exp.Config(out, "lp", cfg.Seed, cfg.Parts) }

	cleanData := filepath.Join(work, "data")
	_, err = dataset.Ingest(mkIngest(cleanData))
	must(err)

	fmt.Println("phase 1/5: ingest crash + forced re-ingest")
	rep.Ingest = ingestPhase(work, mkIngest, cleanData)

	// Reference run through a zero-rate injector: identical to a plain run
	// (pure passthrough) but counts writes, bounding the crash points and
	// anchoring both differentials.
	ref := refRun(work, cleanData, cfg)

	fmt.Println("phase 2/5: training under transient IO weather")
	rep.Weather = weatherPhase(work, cleanData, cfg, ref)

	fmt.Println("phase 3/5: crash mid-run, resume, differential")
	rep.Crash = crashPhase(work, cleanData, cfg, ref)

	fmt.Println("phase 4/5: serve overload shedding + deadlines")
	rep.Overload = overloadPhase(cleanData, ref.ckptPath, cfg)

	fmt.Println("phase 5/5: serve panic containment")
	rep.Panic = panicPhase(cleanData, ref.ckptPath, cfg)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile(*out, append(buf, '\n'), 0o644))

	fmt.Printf("ingest:   crash surfaced %v, refused w/o force %v, force matches clean %v\n",
		rep.Ingest.CrashSurfaced, rep.Ingest.RefusedWithoutForce, rep.Ingest.ForceMatchesClean)
	fmt.Printf("weather:  %d transients + %d shorts injected, %d retries absorbed, losses match %v\n",
		rep.Weather.Transients, rep.Weather.Shorts, rep.Weather.Retries, rep.Weather.LossesMatch)
	fmt.Printf("crash:    killed at write %d/%d, resumed %v, ckpt matches %v\n",
		rep.Crash.KillAtWrite, rep.Crash.TotalWrites, rep.Crash.Resumed, rep.Crash.CkptMatches)
	fmt.Printf("overload: %d shed (worst %.2fms), %d deadline-expired, http %d retry-after %v, degraded %v, recovered %v\n",
		rep.Overload.Shed, rep.Overload.ShedMS, rep.Overload.DeadlineExpired,
		rep.Overload.HTTPStatus, rep.Overload.RetryAfter, rep.Overload.DegradedWhile, rep.Overload.Recovered)
	fmt.Printf("panic:    poisoned request -> %d, %d recovered, next request -> %d\n",
		rep.Panic.FirstStatus, rep.Panic.PanicsRecovered, rep.Panic.RecoveredStatus)

	if *check {
		enforce(&rep)
	}
}

func enforce(rep *Report) {
	in := rep.Ingest
	if !in.CrashSurfaced || !in.ManifestAbsent || !in.OpenRejected {
		fail("crashed ingest did not surface cleanly (surfaced %v, manifest absent %v, open rejected %v)",
			in.CrashSurfaced, in.ManifestAbsent, in.OpenRejected)
	}
	if !in.RefusedWithoutForce {
		fail("re-ingest over partial output was not refused with ErrPartialOutput")
	}
	if !in.ForceMatchesClean {
		fail("forced re-ingest does not match the clean ingest byte for byte")
	}
	if in.OrphansAfter != 0 {
		fail("%d orphaned temp files survive the forced re-ingest", in.OrphansAfter)
	}
	w := rep.Weather
	if w.Transients+w.Shorts == 0 {
		fail("weather run injected no faults; the phase measured nothing")
	}
	if w.Retries == 0 {
		fail("weather run absorbed no retries despite %d injected transients", w.Transients)
	}
	if !w.LossesMatch || !w.CkptMatches {
		fail("training under IO weather diverged from the clean run (losses match %v, ckpt match %v)",
			w.LossesMatch, w.CkptMatches)
	}
	c := rep.Crash
	if !c.LossesMatch || !c.CkptMatches {
		fail("crash at write %d/%d + resume diverged from the uninterrupted run (losses match %v, ckpt match %v)",
			c.KillAtWrite, c.TotalWrites, c.LossesMatch, c.CkptMatches)
	}
	o := rep.Overload
	if o.Shed == 0 {
		fail("overloaded server shed nothing")
	}
	if o.ShedMS > 1000 {
		fail("slowest shed took %.1fms; shedding must not queue behind the stall", o.ShedMS)
	}
	if o.HTTPStatus != http.StatusServiceUnavailable || !o.RetryAfter {
		fail("overloaded HTTP response was %d (retry-after %v), want 503 with Retry-After", o.HTTPStatus, o.RetryAfter)
	}
	if o.DeadlineExpired == 0 {
		fail("no admitted request expired at its deadline under the stall")
	}
	if !o.DegradedWhile {
		fail("/healthz did not degrade under sustained shedding")
	}
	if !o.Recovered {
		fail("server did not recover to healthy after the stall cleared")
	}
	p := rep.Panic
	if p.FirstStatus != http.StatusInternalServerError {
		fail("poisoned request returned %d, want 500", p.FirstStatus)
	}
	if p.PanicsRecovered != 1 {
		fail("panics_recovered = %d, want exactly 1", p.PanicsRecovered)
	}
	if p.RecoveredStatus != http.StatusOK {
		fail("request after the contained panic returned %d, want 200", p.RecoveredStatus)
	}
	fmt.Println("check: all fault gates passed")
}

// ingestPhase crashes a prep mid-write and walks the recovery path:
// typed refusal without Force, byte-identical re-ingest with it.
func ingestPhase(work string, mkIngest func(string) dataset.Config, cleanDir string) IngestPhase {
	var ph IngestPhase
	crashDir := filepath.Join(work, "data-crashed")
	must(os.MkdirAll(crashDir, 0o755))

	crashed := mkIngest(crashDir)
	crashed.FS = fault.NewInjector(nil, fault.Config{Seed: 17, CrashAfterWrites: 3})
	_, err := dataset.Ingest(crashed)
	ph.CrashSurfaced = errors.Is(err, fault.ErrCrashed)
	_, err = os.Stat(filepath.Join(crashDir, storage.ManifestName))
	ph.ManifestAbsent = os.IsNotExist(err)
	_, err = storage.OpenDataset(crashDir)
	ph.OpenRejected = err != nil

	retry := mkIngest(crashDir)
	_, err = dataset.Ingest(retry)
	ph.RefusedWithoutForce = errors.Is(err, dataset.ErrPartialOutput)

	retry.Force = true
	if _, err := dataset.Ingest(retry); err == nil {
		if _, err := dataset.Validate(crashDir); err == nil {
			ph.ForceMatchesClean = true
			for _, name := range []string{storage.ManifestName, "edges.bin", "valid_edges.bin", "test_edges.bin", "dict.tsv"} {
				a, errA := os.ReadFile(filepath.Join(cleanDir, name))
				if os.IsNotExist(errA) {
					continue // not part of this task's payload
				}
				b, errB := os.ReadFile(filepath.Join(crashDir, name))
				if errA != nil || errB != nil || !bytes.Equal(a, b) {
					ph.ForceMatchesClean = false
				}
			}
		}
	}
	orphans, _ := dataset.OrphanedTemps(crashDir)
	ph.OrphansAfter = len(orphans)
	return ph
}

// trainOpts is the disk-mode training configuration every phase shares:
// out-of-core (partition buffer smaller than p) so evict write-back and
// prefetch IO are on the faulted path.
func trainOpts(workDir string, cfg Config) []marius.Option {
	// COMET needs the buffer to hold at least 2 logical partitions; with
	// p=4 and c=2 that means l=p.
	return []marius.Option{
		marius.WithDisk(workDir, marius.Capacity(2), marius.LogicalPartitions(cfg.Parts)),
		marius.WithModel(marius.DistMultOnly),
		marius.WithDim(cfg.Dim),
		marius.WithBatchSize(64),
		marius.WithNegatives(16),
	}
}

// refResult anchors the differentials: the clean run's loss trajectory,
// final checkpoint bytes, and total write count (the crash-point bound).
type refResult struct {
	losses      []float64
	ckptBytes   []byte
	ckptPath    string
	totalWrites int64
}

func refRun(work, dataDir string, cfg Config) refResult {
	counter := fault.NewInjector(fault.OS, fault.Config{Seed: 1})
	ckptDir := filepath.Join(work, "ref-ckpt")
	must(os.MkdirAll(ckptDir, 0o755))
	res := runCkpt(dataDir, filepath.Join(work, "ref-work"), ckptDir, cfg, counter, nil)
	ref := refResult{
		losses:      losses(res),
		ckptPath:    filepath.Join(ckptDir, "run.ckpt"),
		totalWrites: counter.Writes(),
	}
	raw, err := os.ReadFile(ref.ckptPath)
	must(err)
	ref.ckptBytes = raw
	if ref.totalWrites == 0 {
		fail("reference run performed no writes; crash points are meaningless")
	}
	return ref
}

// runCkpt trains a full checkpointed run through fsys, reporting storage
// retry counters through stats if non-nil.
func runCkpt(dataDir, workDir, ckptDir string, cfg Config, fsys fault.FS, stats *storage.StatsSnapshot) *marius.RunResult {
	must(os.MkdirAll(workDir, 0o755))
	opts := trainOpts(workDir, cfg)
	if fsys != nil {
		opts = append(opts, marius.WithFaults(fsys))
	}
	sess, err := marius.FromDataset(dataDir, opts...)
	must(err)
	defer sess.Close()
	res, err := sess.Run(context.Background(),
		marius.Epochs(cfg.Epochs), marius.CheckpointTo(filepath.Join(ckptDir, "run.ckpt"), 1))
	if stats != nil {
		*stats = ioStats(sess)
	}
	must(err)
	return res
}

// ioStats sums the session's node- and edge-store counters.
func ioStats(sess *marius.Session) storage.StatsSnapshot {
	src := sess.Task().Source()
	var s storage.StatsSnapshot
	if src.Disk != nil {
		s = src.Disk.Stats().Snapshot()
	}
	if src.Edges != nil {
		e := src.Edges.Stats().Snapshot()
		s.Retries += e.Retries
		s.Gaveup += e.Gaveup
	}
	return s
}

func losses(res *marius.RunResult) []float64 {
	out := make([]float64, 0, len(res.Epochs))
	for _, st := range res.Epochs {
		out = append(out, st.Loss)
	}
	return out
}

func sameLosses(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return false
		}
	}
	return true
}

// weatherPhase trains through random transient failures and short IO;
// the retry loops must absorb every blip without changing a single bit
// of the training trajectory.
func weatherPhase(work, dataDir string, cfg Config, ref refResult) WeatherPhase {
	inj := fault.NewInjector(nil, fault.Config{
		Seed: 5, Transient: 0.08, Short: 0.04,
		Latency: 100 * time.Microsecond, LatencyRate: 0.002,
	})
	ckptDir := filepath.Join(work, "weather-ckpt")
	must(os.MkdirAll(ckptDir, 0o755))
	var st storage.StatsSnapshot
	res := runCkpt(dataDir, filepath.Join(work, "weather-work"), ckptDir, cfg, inj, &st)

	var ph WeatherPhase
	ph.Transients, ph.Shorts, _ = inj.Injected()
	ph.Retries, ph.Gaveup = st.Retries, st.Gaveup
	ph.LossesMatch = sameLosses(losses(res), ref.losses)
	raw, err := os.ReadFile(filepath.Join(ckptDir, "run.ckpt"))
	must(err)
	ph.CkptMatches = bytes.Equal(raw, ref.ckptBytes)
	return ph
}

// crashPhase kills a checkpointed run at a randomized write count
// (kill -9 semantics: the Nth write is torn, every later op fails),
// resumes it, and requires the combined run to be indistinguishable
// from one that never died.
func crashPhase(work, dataDir string, cfg Config, ref refResult) CrashPhase {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ph CrashPhase
	ph.TotalWrites = ref.totalWrites
	ph.KillAtWrite = 1 + rng.Int63n(ref.totalWrites)

	ckptDir := filepath.Join(work, "crash-ckpt")
	workDir := filepath.Join(work, "crash-work")
	must(os.MkdirAll(ckptDir, 0o755))
	must(os.MkdirAll(workDir, 0o755))
	inj := fault.NewInjector(nil, fault.Config{Seed: 2, CrashAfterWrites: ph.KillAtWrite})

	// The "process" that gets killed.
	err := func() error {
		opts := append(trainOpts(workDir, cfg), marius.WithFaults(inj))
		sess, err := marius.FromDataset(dataDir, opts...)
		if err != nil {
			return err
		}
		defer sess.Close()
		_, err = sess.Run(context.Background(),
			marius.Epochs(cfg.Epochs), marius.CheckpointTo(filepath.Join(ckptDir, "run.ckpt"), 1))
		return err
	}()
	if err == nil || !inj.Crashed() {
		fail("kill after %d/%d writes: run did not crash (err %v)", ph.KillAtWrite, ph.TotalWrites, err)
	}

	// Restart. If the crash predates all durable state there is no
	// journal, and a fresh process reruns from scratch.
	var res *marius.RunResult
	sess, res, err := marius.Resume(context.Background(), ckptDir)
	switch {
	case errors.Is(err, marius.ErrNoJournal):
		res = runCkpt(dataDir, workDir, ckptDir, cfg, nil, nil)
	case err != nil:
		fail("resume after kill at write %d: %v", ph.KillAtWrite, err)
	default:
		ph.Resumed = true
		defer sess.Close()
	}

	ph.LossesMatch = sameLosses(losses(res), ref.losses)
	raw, err := os.ReadFile(filepath.Join(ckptDir, "run.ckpt"))
	must(err)
	ph.CkptMatches = bytes.Equal(raw, ref.ckptBytes)
	return ph
}

// overloadPhase stalls the dispatcher behind a gate, fills the one-slot
// queue, and bursts: every excess request must shed fast (503 +
// Retry-After over HTTP), admitted requests must expire at their
// deadline, /healthz must degrade while the shedding is sustained, and
// the server must come back healthy once the stall clears.
func overloadPhase(dataDir, ckptPath string, cfg Config) OverloadPhase {
	gate := make(chan struct{})
	var once sync.Once
	unstall := func() { once.Do(func() { close(gate) }) }
	defer unstall()

	scfg := serve.Config{
		MaxBatch: 1, MaxWait: time.Millisecond, QueueCap: 1, Workers: 1,
		Seed: cfg.Seed, InMemory: true, RequestTimeout: 100 * time.Millisecond,
		Hooks: &serve.Hooks{BeforeBatch: func(int) { <-gate }},
	}
	srv := openServer(dataDir, ckptPath, scfg)
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	rel := int32(0)
	req := &serve.TopKRequest{Src: 0, Rel: &rel, K: 5, Seed: 1}
	var ph OverloadPhase

	// Two in-flight requests: one stalled in the dispatcher, one queued.
	// Both are admitted, so both must expire at their deadline.
	var inflight sync.WaitGroup
	var expired atomic.Uint64
	for i := 0; i < 2; i++ {
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			if _, err := srv.TopK(context.Background(), req); errors.Is(err, context.DeadlineExceeded) {
				expired.Add(1)
			}
		}()
	}
	waitFull(srv)

	// The burst: with batch and queue both occupied, every call sheds —
	// and sheds fast, not after queuing behind the stall.
	for i := 0; i < cfg.Burst; i++ {
		t0 := time.Now()
		_, err := srv.TopK(context.Background(), req)
		if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms > ph.ShedMS {
			ph.ShedMS = ms
		}
		if !errors.Is(err, serve.ErrOverloaded) {
			fail("burst request %d: got %v, want ErrOverloaded", i, err)
		}
	}
	ok, reason := srv.Health()
	ph.DegradedWhile = !ok && strings.Contains(reason, "shed")

	resp, err := http.Post(hs.URL+"/v1/topk", "application/json",
		strings.NewReader(`{"src":0,"rel":0,"k":5}`))
	must(err)
	resp.Body.Close()
	ph.HTTPStatus = resp.StatusCode
	ph.RetryAfter = resp.Header.Get("Retry-After") != ""

	inflight.Wait()
	st := srv.Statz()
	ph.Shed = st.Shed
	ph.DeadlineExpired = st.DeadlineExpired
	if expired.Load() != 2 {
		fail("admitted requests under stall: %d expired, want 2", expired.Load())
	}

	// Stall clears; the same process serves again and reports healthy.
	unstall()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := srv.TopK(context.Background(), req); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ok, _ := srv.Health(); ok {
		ph.Recovered = true
	}
	return ph
}

// waitFull polls until the queue slot is occupied, so the burst below
// races with nothing.
func waitFull(srv *serve.Server) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Statz().QueueDepth >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	fail("queue never filled behind the stalled dispatcher")
}

// panicPhase poisons exactly one dispatch with a panic; the server must
// contain it (500, counter bumped) and serve the next request normally.
func panicPhase(dataDir, ckptPath string, cfg Config) PanicPhase {
	var poison atomic.Bool
	scfg := serve.Config{
		MaxBatch: 8, MaxWait: time.Millisecond, Workers: 2, Seed: cfg.Seed, InMemory: true,
		Hooks: &serve.Hooks{BeforeBatch: func(int) {
			if poison.CompareAndSwap(true, false) {
				panic("benchfault: injected dispatcher panic")
			}
		}},
	}
	srv := openServer(dataDir, ckptPath, scfg)
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func() int {
		resp, err := http.Post(hs.URL+"/v1/topk", "application/json",
			strings.NewReader(`{"src":0,"rel":0,"k":5}`))
		must(err)
		resp.Body.Close()
		return resp.StatusCode
	}

	var ph PanicPhase
	poison.Store(true)
	ph.FirstStatus = post()
	ph.PanicsRecovered = srv.Statz().PanicsRecovered
	ph.RecoveredStatus = post()
	return ph
}

func openServer(dir, ckpt string, cfg serve.Config) *serve.Server {
	sctx, err := serve.Open(dir, cfg)
	must(err)
	snap, err := serve.Load(sctx, ckpt, cfg)
	must(err)
	return serve.New(sctx, snap, cfg)
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfault: %v\n", err)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchfault: CHECK FAILED: "+format+"\n", args...)
	os.Exit(1)
}
