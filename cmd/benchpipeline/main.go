// Command benchpipeline measures the pipelined out-of-core epoch
// executor against the serial epoch loop on a throttled on-disk dataset
// and emits BENCH_pipeline.json, the repo's pipeline performance
// baseline.
//
//	go run ./cmd/benchpipeline                  # full size
//	go run ./cmd/benchpipeline -short -check    # CI: small size, enforce floors
//
// The disk bandwidth is auto-calibrated: an unthrottled run measures the
// epoch's pure compute time and per-epoch IO volume, then the throttle
// is set so one epoch's IO takes about as long as its compute — the
// balanced regime where overlap matters most (paper §7: EBS-like
// bandwidth against GPU-saturating compute). Training runs the COMET
// policy (the paper's LP default), whose deferred bucket assignment
// spreads edge IO across visits; every configuration runs one unmeasured
// warm-up epoch so steady-state epochs are compared (the fragment cache
// makes first epochs cheaper for everyone but cold for no one). -check
// exits non-zero when the pipelined run fails to reach 1.5x the serial
// epoch time, when its losses diverge from the serial trajectory (the
// equivalence contract), or when the prefetcher never hit.
//
// An instrumentation probe repeats the pipelined configuration
// unthrottled, with and without full observability attached (metrics
// registry + Chrome-trace span file), in ABBA order: -check fails when
// the deterministic hot-path overhead bound (per-primitive cost times
// the epoch's actual operation counts) exceeds 2% of the fastest plain
// epoch, or when instrumentation perturbs the loss trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/marius"
)

// Report is the schema of BENCH_pipeline.json.
type Report struct {
	Schema     int     `json:"schema"`
	Go         string  `json:"go"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Config     Config  `json:"config"`
	Calib      Calib   `json:"calibration"`
	Serial     RunStat `json:"serial"`
	NoPrefetch RunStat `json:"no_prefetch"`
	Pipelined  RunStat `json:"pipelined"`
	// ProbePlain/ProbeInstrumented are the overhead probe: the pipelined
	// configuration rerun unthrottled (compute-bound, so epoch times
	// aren't dominated by throttle-pacing jitter), without and with a
	// metrics registry + span tracer attached. Each side is the
	// best-timed of two interleaved runs.
	ProbePlain        RunStat      `json:"probe_plain"`
	ProbeInstrumented RunStat      `json:"probe_instrumented"`
	Summary           Summary      `json:"summary"`
	Quant             QuantSection `json:"quantized_nc"`
}

// QuantSection compares out-of-core node-classification training from a
// float32-prepared dataset against the same graph prepared with
// -quantize=fp16, under one shared throttle calibrated on the float32
// run: compressed feature partitions move half the bytes per swap, so
// the serial epoch's IO share must drop measurably.
type QuantSection struct {
	Nodes        int      `json:"nodes"`
	FeatureDim   int      `json:"feature_dim"`
	Partitions   int      `json:"partitions"`
	Capacity     int      `json:"capacity"`
	Epochs       int      `json:"epochs"`
	ThrottleMBps float64  `json:"throttle_mbps"`
	Float32      QuantRun `json:"float32"`
	FP16         QuantRun `json:"fp16"`
	// NodeIORatio is fp16 node-partition bytes over float32's — the
	// direct measure of the storage win (edge traffic is identical).
	NodeIORatio float64 `json:"node_io_ratio_fp16_vs_float32"`
}

// QuantRun is one prepared-dataset variant's serial throttled run.
type QuantRun struct {
	EpochSec   []float64 `json:"epoch_sec"`
	TotalSec   float64   `json:"total_sec"`
	Loss       []float64 `json:"loss"`
	ComputeSec float64   `json:"unthrottled_epoch_sec"`
	NodeIOMB   float64   `json:"node_io_mb_per_epoch"`
	TotalIOMB  float64   `json:"total_io_mb_per_epoch"`
	// IOShare is the fraction of a throttled serial epoch spent moving
	// bytes: throttle-paced IO time over IO + compute. The IO time is
	// derived from the exact byte counters and the throttle rate (the
	// pacing is deterministic), so the share doesn't inherit wall-clock
	// jitter from the sub-second CI epochs.
	IOShare float64 `json:"io_share"`
}

// Config records the benchmark workload.
type Config struct {
	Entities   int `json:"entities"`
	Edges      int `json:"edges"`
	Dim        int `json:"dim"`
	Partitions int `json:"partitions"`
	Capacity   int `json:"capacity"`
	BatchSize  int `json:"batch_size"`
	Negatives  int `json:"negatives"`
	Epochs     int `json:"epochs"`
	Depth      int `json:"pipeline_depth"`
	Workers    int `json:"workers"`
}

// Calib records the auto-calibrated throttle.
type Calib struct {
	UnthrottledEpochSec float64 `json:"unthrottled_epoch_sec"`
	BytesPerEpoch       int64   `json:"bytes_per_epoch"`
	ThrottleMBps        float64 `json:"throttle_mbps"`
}

// RunStat records one configuration's measured epochs.
type RunStat struct {
	EpochSec       []float64 `json:"epoch_sec"`
	TotalSec       float64   `json:"total_sec"`
	Loss           []float64 `json:"loss"`
	Visits         int       `json:"visits"`
	Batches        int       `json:"batches"`
	IOReadMB       float64   `json:"io_read_mb"`
	IOWriteMB      float64   `json:"io_write_mb"`
	PrefetchHits   int64     `json:"prefetch_hits"`
	PrefetchMisses int64     `json:"prefetch_misses"`
	LoadWaitSec    float64   `json:"load_wait_sec"`
	BatchWaitSec   float64   `json:"batch_wait_sec"`
}

// Summary is what -check gates on.
type Summary struct {
	Speedup float64 `json:"epoch_speedup_pipelined_vs_serial"`
	// PrefetchSpeedup isolates the prefetcher: pipelined vs the same
	// worker count at depth 0, so kernel/build fan-out alone (which also
	// speeds the depth-0 run on multi-core machines) cannot satisfy the
	// gate with a broken prefetcher.
	PrefetchSpeedup float64 `json:"epoch_speedup_pipelined_vs_no_prefetch"`
	LossesMatch     bool    `json:"losses_match_serial"`
	PrefetchHit     float64 `json:"prefetch_hit_rate"`
	ComputeSec      float64 `json:"serial_compute_sec"`
	SerialIOShare   float64 `json:"serial_io_share"`
	// InstrOverhead is the instrumented probe's fastest epoch over the
	// plain probe's fastest epoch, minus one. Informational only: on a
	// shared machine, run-to-run epoch drift (±10% observed) swamps the
	// real instrumentation cost, so -check does not gate on it.
	InstrOverhead float64 `json:"instrumentation_overhead_wallclock"`
	// InstrHotPath is the gated overhead bound: per-operation costs of
	// the instrumentation primitives (histogram observe, counter inc,
	// gauge set, span write, clock read) measured in a tight loop, times
	// the probe run's actual per-epoch hot-path operation counts, over
	// the fastest plain epoch. Deterministic where wall-clock diffing is
	// not; -check enforces <= 2%.
	InstrHotPath float64 `json:"instrumentation_hot_path_overhead"`
	// InstrLossesMatch asserts observability never perturbs training:
	// the instrumented trajectory equals the plain one.
	InstrLossesMatch bool `json:"losses_match_instrumented"`
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output JSON path")
	short := flag.Bool("short", false, "small dataset for CI")
	check := flag.Bool("check", false, "enforce acceptance floors (>=1.5x epoch speedup, loss equivalence)")
	depth := flag.Int("depth", 4, "pipeline depth for the pipelined run")
	workers := flag.Int("workers", 4, "workers for the pipelined run")
	epochs := flag.Int("epochs", 2, "measured epochs per configuration")
	balance := flag.Float64("balance", 0.9, "target IO-time/compute-time ratio for the throttle")
	flag.Parse()

	// IO-heavy shape: each epoch's throttled volume is the training-example
	// bucket reads plus node-partition staging and write-back. (Adjacency
	// construction no longer re-reads resident buckets — the fragment
	// cache serves it — so every configuration runs one unmeasured warm-up
	// epoch and the benchmark compares steady-state epochs.)
	cfg := Config{
		Entities: 12000, Edges: 400000, Dim: 16,
		Partitions: 8, Capacity: 4,
		BatchSize: 1024, Negatives: 250,
		Epochs: *epochs, Depth: *depth, Workers: *workers,
	}
	if *short {
		cfg.Entities, cfg.Edges = 2500, 200000
	}

	// Calibration: unthrottled serial run — its epoch time is the pure
	// compute cost, its IO counters the per-epoch volume.
	fmt.Printf("calibrating (unthrottled serial epoch)...\n")
	calibStat, err := runConfig(cfg, nil, 0, 1, 1, false)
	must(err)
	bytesPerEpoch := int64((calibStat.IOReadMB + calibStat.IOWriteMB) * 1e6)
	computeSec := calibStat.EpochSec[0]
	// One epoch's IO takes balance × its compute time: at 1.0 the
	// prefetcher has zero slack and any jitter stalls the trainer, so a
	// slightly faster disk gives the pipeline headroom while keeping the
	// serial loop IO-bound enough to measure the overlap.
	mbps := float64(bytesPerEpoch) / 1e6 / (computeSec * *balance)
	calib := Calib{
		UnthrottledEpochSec: round3(computeSec),
		BytesPerEpoch:       bytesPerEpoch,
		ThrottleMBps:        round3(mbps),
	}
	fmt.Printf("  compute %.2fs/epoch, %.1f MB/epoch -> throttle %.1f MB/s\n",
		computeSec, float64(bytesPerEpoch)/1e6, mbps)

	fmt.Printf("serial (depth=0, workers=1, throttled)...\n")
	serial, err := runConfig(cfg, storage.NewThrottle(mbps*1e6), 0, 1, cfg.Epochs, false)
	must(err)
	fmt.Printf("  epochs %v  total %.2fs\n", serial.EpochSec, serial.TotalSec)

	fmt.Printf("no-prefetch (depth=0, workers=%d, throttled)...\n", cfg.Workers)
	noPrefetch, err := runConfig(cfg, storage.NewThrottle(mbps*1e6), 0, cfg.Workers, cfg.Epochs, false)
	must(err)
	fmt.Printf("  epochs %v  total %.2fs\n", noPrefetch.EpochSec, noPrefetch.TotalSec)

	fmt.Printf("pipelined (depth=%d, workers=%d, throttled)...\n", cfg.Depth, cfg.Workers)
	pipelined, err := runConfig(cfg, storage.NewThrottle(mbps*1e6), cfg.Depth, cfg.Workers, cfg.Epochs, false)
	must(err)
	fmt.Printf("  epochs %v  total %.2fs  load-wait %.2fs  prefetch %d/%d hit\n",
		pipelined.EpochSec, pipelined.TotalSec, pipelined.LoadWaitSec,
		pipelined.PrefetchHits, pipelined.PrefetchHits+pipelined.PrefetchMisses)

	fmt.Printf("instrumentation probe (depth=%d, workers=%d, unthrottled, plain vs metrics+trace)...\n",
		cfg.Depth, cfg.Workers)
	var probePlain, probeInstr RunStat
	// ABBA order: machine drift across the four runs (thermal, noisy
	// neighbors) hits both sides symmetrically instead of always taxing
	// whichever side runs second.
	for _, instr := range []bool{false, true, true, false} {
		st, err := runConfig(cfg, nil, cfg.Depth, cfg.Workers, cfg.Epochs, instr)
		must(err)
		dst := &probePlain
		if instr {
			dst = &probeInstr
		}
		if len(dst.EpochSec) == 0 || minOf(st.EpochSec) < minOf(dst.EpochSec) {
			*dst = st
		}
	}
	instrOverhead := minOf(probeInstr.EpochSec)/minOf(probePlain.EpochSec) - 1
	instrLossesMatch := len(probeInstr.Loss) == len(probePlain.Loss)
	for i := range probePlain.Loss {
		if !instrLossesMatch || probePlain.Loss[i] != probeInstr.Loss[i] {
			instrLossesMatch = false
			break
		}
	}
	instrHotPath := microOverhead(probeInstr.Batches/cfg.Epochs, probeInstr.Visits/cfg.Epochs,
		minOf(probePlain.EpochSec))
	fmt.Printf("  plain %v  instrumented %v  wall-clock %+.1f%%  hot-path bound %.3f%%  losses match = %v\n",
		probePlain.EpochSec, probeInstr.EpochSec, 100*instrOverhead, 100*instrHotPath, instrLossesMatch)

	lossesMatch := len(serial.Loss) == len(pipelined.Loss)
	for i := range serial.Loss {
		if !lossesMatch || serial.Loss[i] != pipelined.Loss[i] {
			lossesMatch = false
			break
		}
	}
	speedup := serial.TotalSec / pipelined.TotalSec
	prefetchSpeedup := noPrefetch.TotalSec / pipelined.TotalSec
	hitRate := 0.0
	if tot := pipelined.PrefetchHits + pipelined.PrefetchMisses; tot > 0 {
		hitRate = float64(pipelined.PrefetchHits) / float64(tot)
	}
	ioShare := 0.0
	if serial.TotalSec > 0 {
		ioShare = (serial.TotalSec - float64(cfg.Epochs)*computeSec) / serial.TotalSec
	}

	quant, err := quantSection(*short, *epochs, *balance)
	must(err)

	rep := Report{
		Schema:            1,
		Go:                runtime.Version(),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Short:             *short,
		Config:            cfg,
		Calib:             calib,
		Serial:            serial,
		NoPrefetch:        noPrefetch,
		Pipelined:         pipelined,
		ProbePlain:        probePlain,
		ProbeInstrumented: probeInstr,
		Summary: Summary{
			Speedup:          round3(speedup),
			PrefetchSpeedup:  round3(prefetchSpeedup),
			LossesMatch:      lossesMatch,
			PrefetchHit:      round3(hitRate),
			ComputeSec:       round3(computeSec),
			SerialIOShare:    round3(ioShare),
			InstrOverhead:    round3(instrOverhead),
			InstrHotPath:     instrHotPath,
			InstrLossesMatch: instrLossesMatch,
		},
		Quant: quant,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	must(err)
	data = append(data, '\n')
	must(os.WriteFile(*out, data, 0o644))
	fmt.Printf("\nwrote %s: %.2fx epoch speedup (%.2fx vs no-prefetch), losses match = %v\n",
		*out, speedup, prefetchSpeedup, lossesMatch)

	if *check {
		failed := false
		if speedup < 1.5 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: pipelined epoch speedup %.2fx < 1.5x serial\n", speedup)
			failed = true
		}
		if prefetchSpeedup < 1.2 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: pipelined epoch speedup %.2fx < 1.2x over depth-0 at the same worker count — the prefetcher is not overlapping IO\n", prefetchSpeedup)
			failed = true
		}
		if !lossesMatch {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: pipelined losses %v diverge from serial %v — equivalence contract broken\n",
				pipelined.Loss, serial.Loss)
			failed = true
		}
		if pipelined.PrefetchHits == 0 {
			fmt.Fprintln(os.Stderr, "CHECK FAILED: prefetcher never hit")
			failed = true
		}
		if instrHotPath > 0.02 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: instrumentation hot-path overhead %.2f%% exceeds the 2%% ceiling\n", 100*instrHotPath)
			failed = true
		}
		if !instrLossesMatch {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: instrumented losses %v diverge from plain pipelined %v — observability perturbed training\n",
				probeInstr.Loss, probePlain.Loss)
			failed = true
		}
		// fp16 halves the feature bytes; with edge traffic on top the
		// node-partition volume must land well under float32's, and the
		// epoch's unhidden-IO share must drop measurably with it.
		if quant.NodeIORatio >= 0.7 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: fp16 node-partition IO is %.2fx float32's, want < 0.7x\n", quant.NodeIORatio)
			failed = true
		}
		if quant.FP16.IOShare > quant.Float32.IOShare-0.03 {
			fmt.Fprintf(os.Stderr, "CHECK FAILED: fp16 serial IO share %.2f not measurably below float32's %.2f\n",
				quant.FP16.IOShare, quant.Float32.IOShare)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("checks passed: >=1.5x epoch speedup, identical loss trajectory")
	}
}

// quantSection prepares the same SBM graph twice — float32 and fp16 —
// and measures throttled serial out-of-core epochs from each. The
// throttle is calibrated on the float32 variant and shared, so the only
// difference between the runs is how many bytes each partition swap
// moves.
func quantSection(short bool, epochs int, balance float64) (QuantSection, error) {
	qs := QuantSection{Nodes: 12000, FeatureDim: 128, Partitions: 8, Capacity: 4, Epochs: epochs}
	if short {
		qs.Nodes = 3000
	}
	g := gen.SBM(gen.SBMConfig{
		NumNodes: qs.Nodes, NumClasses: 10, AvgDegree: 12, FeatureDim: qs.FeatureDim,
		Homophily: 0.8, FeatNoise: 1.0,
		TrainFrac: 0.5, ValidFrac: 0.05, TestFrac: 0.05, Seed: 7,
	})
	expDir, err := os.MkdirTemp("", "benchquant-export")
	if err != nil {
		return qs, err
	}
	defer os.RemoveAll(expDir)
	exp, err := dataset.Export(g, expDir, "bin")
	if err != nil {
		return qs, err
	}
	dirs := map[string]string{}
	for _, mode := range []string{"", "fp16"} {
		dir, err := os.MkdirTemp("", "benchquant-data")
		if err != nil {
			return qs, err
		}
		defer os.RemoveAll(dir)
		icfg := exp.Config(dir, "nc", 7, qs.Partitions)
		icfg.Quantize = mode
		if _, err := dataset.Ingest(icfg); err != nil {
			return qs, fmt.Errorf("quant section ingest(%q): %v", mode, err)
		}
		dirs[mode] = dir
	}

	// Calibration: unthrottled serial epochs per variant give each its
	// pure compute time; the float32 volume sets the shared throttle.
	fmt.Printf("quantized-nc: calibrating (unthrottled serial, float32 + fp16)...\n")
	calibF32, err := runNC(dirs[""], qs.Capacity, nil, 1)
	if err != nil {
		return qs, err
	}
	calibF16, err := runNC(dirs["fp16"], qs.Capacity, nil, 1)
	if err != nil {
		return qs, err
	}
	mbps := calibF32.TotalIOMB / (calibF32.EpochSec[0] * balance)
	qs.ThrottleMBps = round3(mbps)
	fmt.Printf("  float32 compute %.2fs/epoch, %.1f MB/epoch -> throttle %.1f MB/s\n",
		calibF32.EpochSec[0], calibF32.TotalIOMB, mbps)

	for _, v := range []struct {
		mode  string
		calib QuantRun
		dst   *QuantRun
	}{
		{"", calibF32, &qs.Float32},
		{"fp16", calibF16, &qs.FP16},
	} {
		name := v.mode
		if name == "" {
			name = "float32"
		}
		fmt.Printf("quantized-nc: %s (serial, throttled)...\n", name)
		run, err := runNC(dirs[v.mode], qs.Capacity, storage.NewThrottle(mbps*1e6), epochs)
		if err != nil {
			return qs, err
		}
		run.ComputeSec = v.calib.EpochSec[0]
		if ioSec := run.TotalIOMB / mbps; ioSec > 0 {
			run.IOShare = round3(ioSec / (ioSec + run.ComputeSec))
		}
		// The throttle only delays reads; the trajectory must not move.
		for i := range v.calib.Loss {
			if i < len(run.Loss) && run.Loss[i] != v.calib.Loss[i] {
				return qs, fmt.Errorf("quant section: %s throttled losses %v diverge from unthrottled %v",
					name, run.Loss, v.calib.Loss)
			}
		}
		*v.dst = run
		fmt.Printf("  epochs %v  node IO %.1f MB/epoch  io share %.2f\n",
			run.EpochSec, run.NodeIOMB, run.IOShare)
	}
	if qs.Float32.NodeIOMB > 0 {
		qs.NodeIORatio = round3(qs.FP16.NodeIOMB / qs.Float32.NodeIOMB)
	}
	return qs, nil
}

// runNC trains serial out-of-core node classification from a prepared
// dataset directory, reporting per-epoch losses and the node-partition
// IO volume (the bytes the feature pager moved, compressed or not).
func runNC(dataDir string, capacity int, th *storage.Throttle, epochs int) (QuantRun, error) {
	var st QuantRun
	scratch, err := os.MkdirTemp("", "benchquant-scratch")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(scratch)
	diskOpts := []marius.DiskOption{marius.Capacity(capacity)}
	if th != nil {
		diskOpts = append(diskOpts, marius.Throttled(th))
	}
	sess, err := marius.FromDataset(dataDir,
		marius.WithSeed(7), marius.WithDim(32), marius.WithFanouts(8, 8),
		marius.WithBatchSize(512), marius.WithWorkers(1),
		marius.WithDisk(scratch, diskOpts...),
	)
	if err != nil {
		return st, err
	}
	defer sess.Close()

	// Warm-up epoch (unmeasured), as in the LP section: steady state only.
	if _, err := sess.TrainEpoch(context.Background()); err != nil {
		return st, err
	}

	src := sess.Task().Source()
	nodeStart := src.Disk.Stats().Snapshot()
	edgeStart := src.Edges.Stats().Snapshot()
	start := time.Now()
	res, err := sess.Run(context.Background(), marius.Epochs(epochs))
	if err != nil {
		return st, err
	}
	st.TotalSec = round3(time.Since(start).Seconds())
	for _, e := range res.Epochs {
		st.EpochSec = append(st.EpochSec, round3(e.Duration.Seconds()))
		st.Loss = append(st.Loss, e.Loss)
	}
	nodeIO := src.Disk.Stats().Snapshot().Sub(nodeStart)
	edgeIO := src.Edges.Stats().Snapshot().Sub(edgeStart)
	nodeB := nodeIO.BytesRead + nodeIO.BytesWritten
	st.NodeIOMB = round3(float64(nodeB) / 1e6 / float64(epochs))
	st.TotalIOMB = round3(float64(nodeB+edgeIO.BytesRead+edgeIO.BytesWritten) / 1e6 / float64(epochs))
	return st, nil
}

// runConfig trains cfg.Epochs on a fresh on-disk session (identical seed
// and synthetic graph every call) and reports its measurements. With
// instr set, a metrics registry and a Chrome-trace tracer (written into
// the run's temp dir) ride along — the overhead-probe configuration.
func runConfig(cfg Config, th *storage.Throttle, depth, workers, epochs int, instr bool) (RunStat, error) {
	var st RunStat
	g := gen.KG(gen.KGConfig{
		NumEntities: cfg.Entities, NumRelations: 8, NumEdges: cfg.Edges,
		ZipfS: 1.2, ValidFrac: 0.01, TestFrac: 0.01, Seed: 7,
	})
	dir, err := os.MkdirTemp("", "benchpipeline")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)

	diskOpts := []marius.DiskOption{
		marius.Partitions(cfg.Partitions), marius.Capacity(cfg.Capacity),
		marius.LogicalPartitions(cfg.Partitions),
	}
	if th != nil {
		diskOpts = append(diskOpts, marius.Throttled(th))
	}
	opts := []marius.Option{
		marius.WithModel(marius.DistMultOnly), marius.WithPolicy(marius.COMET),
		marius.WithDim(cfg.Dim), marius.WithBatchSize(cfg.BatchSize),
		marius.WithNegatives(cfg.Negatives),
		marius.WithDisk(dir, diskOpts...),
		marius.WithWorkers(workers), marius.WithPipeline(depth),
		marius.WithSeed(7),
	}
	if instr {
		tr, err := marius.NewTracer(filepath.Join(dir, "bench.trace"))
		if err != nil {
			return st, err
		}
		defer tr.Close()
		opts = append(opts, marius.WithMetrics(marius.NewMetrics()), marius.WithTrace(tr))
	}
	sess, err := marius.New(marius.LinkPrediction(), g, opts...)
	if err != nil {
		return st, err
	}
	defer sess.Close()

	// Warm-up epoch (unmeasured): fills the fragment cache and staging
	// pools so the measured epochs are the steady state every config
	// reaches after its first epoch.
	if _, err := sess.TrainEpoch(context.Background()); err != nil {
		return st, err
	}

	edgeStart := sess.Task().Source().Edges.Stats().Snapshot()
	start := time.Now()
	res, err := sess.Run(context.Background(), marius.Epochs(epochs))
	if err != nil {
		return st, err
	}
	st.TotalSec = round3(time.Since(start).Seconds())
	edgeIO := sess.Task().Source().Edges.Stats().Snapshot().Sub(edgeStart)

	var readB, writeB int64
	for _, e := range res.Epochs {
		st.EpochSec = append(st.EpochSec, round3(e.Duration.Seconds()))
		st.Loss = append(st.Loss, e.Loss)
		st.Visits += e.Visits
		st.Batches += e.Batches
		readB += e.IO.BytesRead
		writeB += e.IO.BytesWritten
		st.PrefetchHits += e.IO.PrefetchHits
		st.PrefetchMisses += e.IO.PrefetchMisses
		st.LoadWaitSec += e.Pipeline.LoadWait.Seconds()
		st.BatchWaitSec += e.Pipeline.BatchWait.Seconds()
	}
	readB += edgeIO.BytesRead
	st.IOReadMB = round3(float64(readB) / 1e6 / float64(epochs))
	st.IOWriteMB = round3(float64(writeB) / 1e6 / float64(epochs))
	st.LoadWaitSec = round3(st.LoadWaitSec)
	st.BatchWaitSec = round3(st.BatchWaitSec)
	return st, nil
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func round3(x float64) float64 { return float64(int(x*1000+0.5)) / 1000 }

// microOverhead bounds the per-epoch instrumentation cost
// deterministically: each hot-path primitive (histogram observe, counter
// inc, gauge set, span write, clock read) is timed over a tight loop,
// multiplied by the operation counts an instrumented epoch actually
// performs (per batch: build + compute spans, stage/stall observes, a
// queue-depth set, a counter; per visit: prefetch + evict spans, a load
// observe, a counter), and divided by the fastest plain epoch. This is
// what a wall-clock diff of two multi-second epochs tries and fails to
// measure on a machine with run-to-run drift.
func microOverhead(batchesPerEpoch, visitsPerEpoch int, epochSec float64) float64 {
	if epochSec <= 0 {
		return 0
	}
	reg := obs.NewRegistry()
	h := reg.Histogram("probe_seconds", "", obs.ExpBuckets(0.0001, 2, 20))
	c := reg.Counter("probe_total", "")
	g := reg.Gauge("probe_depth", "")
	tr := obs.NewTracer(io.Discard)
	const n = 200_000
	perOp := func(f func()) float64 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		return time.Since(t0).Seconds() / n
	}
	clock := perOp(func() { _ = time.Now() })
	observe := perOp(func() { h.Observe(0.0017) })
	inc := perOp(func() { c.Inc() })
	set := perOp(func() { g.Set(3) })
	start := time.Now()
	span := perOp(func() { tr.Span("probe", "span", 0, start, time.Millisecond) })
	perBatch := 2*span + 4*observe + set + inc + 6*clock
	perVisit := 2*span + observe + inc + 6*clock
	return (float64(batchesPerEpoch)*perBatch + float64(visitsPerEpoch)*perVisit) / epochSec
}

// minOf returns the smallest element (0 for an empty slice).
func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
