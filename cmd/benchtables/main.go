// Command benchtables regenerates every table and figure of the MariusGNN
// evaluation (paper §7) on the scaled synthetic workloads and prints them
// in the paper's layout. Select experiments with -run (comma-separated:
// table1,table3,table4,table5,table6,table7,table8,fig6,fig7,fig8,extreme
// or "all") and shrink/grow workloads with -scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment list or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	epochs := flag.Int("epochs", 3, "training epochs per configuration")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sc := experiments.Scale(*scale)

	if all || want["table1"] {
		fmt.Println("=== Table 1: graph memory overheads (paper-published sizes) ===")
		fmt.Printf("%-16s %12s %14s %6s %9s %9s %9s\n", "Graph", "Nodes", "Edges", "Dim", "Edges GB", "Feat GB", "Total GB")
		for _, r := range experiments.Table1() {
			fmt.Printf("%-16s %12d %14d %6d %9.0f %9.0f %9.0f\n",
				r.Name, r.Nodes, r.Edges, r.FeatDim, r.EdgeGB, r.FeatGB, r.TotalGB)
		}
		fmt.Println()
	}

	if all || want["table3"] {
		fmt.Println("=== Table 3: node classification end-to-end (GraphSage) ===")
		rows, err := experiments.Table3(sc, *epochs)
		check(err)
		printEndToEnd(rows, "Accuracy")
	}

	if all || want["table4"] {
		fmt.Println("=== Table 4: link prediction end-to-end (GraphSage) ===")
		rows, err := experiments.Table4(sc, *epochs)
		check(err)
		printEndToEnd(rows, "MRR")
	}

	if all || want["table5"] {
		fmt.Println("=== Table 5: GraphSage vs GAT link prediction (FB-like) ===")
		rows, err := experiments.Table5(sc, *epochs)
		check(err)
		printEndToEnd(rows, "MRR")
	}

	if all || want["table6"] {
		fmt.Println("=== Table 6: DENSE vs per-layer re-sampling (per mini batch) ===")
		rows, err := experiments.Table6(sc, 5, 256, 5)
		check(err)
		fmt.Printf("%-7s | %12s %12s | %12s %12s | %16s %16s\n",
			"Layers", "M-GNN smp", "Base smp", "M-GNN cmp", "Base cmp", "M-GNN nodes/edges", "Base nodes/edges")
		for _, r := range rows {
			fmt.Printf("%-7d | %12v %12v | %12v %12v | %8d/%-8d %8d/%-8d\n",
				r.Layers, r.DenseSample.Round(10e3), r.BaselineSample.Round(10e3),
				r.DenseCompute.Round(10e3), r.BaselineCompute.Round(10e3),
				r.DenseNodes, r.DenseEdges, r.BaselineNodes, r.BaselineEdges)
		}
		fmt.Println()
	}

	if all || want["table7"] {
		fmt.Println("=== Table 7: DENSE vs NextDoor-style independent k-hop sampling ===")
		rows, err := experiments.Table7(200_000, 14, 5, 256, 1_000_000)
		check(err)
		fmt.Printf("%-7s | %12s %12s | %14s %14s\n", "Layers", "M-GNN", "KHop-sim", "M-GNN entries", "KHop entries")
		for _, r := range rows {
			khop := fmt.Sprintf("%v", r.KHopTime.Round(10e3))
			entries := fmt.Sprintf("%d", r.KHopEntries)
			if r.KHopOOM {
				khop, entries = "OOM", "OOM"
			}
			fmt.Printf("%-7d | %12v %12s | %14d %14s\n",
				r.Layers, r.DenseTime.Round(10e3), khop, r.DenseEntries, entries)
		}
		fmt.Println()
	}

	if all || want["fig6"] {
		fmt.Println("=== Figure 6a: model MRR vs Edge Permutation Bias ===")
		points, err := experiments.Figure6a(sc, *epochs)
		check(err)
		fmt.Printf("%-7s %4s %4s %8s %8s\n", "Policy", "p", "l", "Bias", "MRR")
		for _, pt := range points {
			fmt.Printf("%-7s %4d %4d %8.4f %8.4f\n", pt.Policy, pt.P, pt.L, pt.Bias, pt.MRR)
		}
		fmt.Println("\n=== Figure 6b: effect of logical partitions (p=32, c=8) ===")
		effs, err := experiments.Figure6b(sc)
		check(err)
		fmt.Printf("%4s %4s %8s %12s %12s\n", "p", "l", "Bias", "#Subgraphs", "TotalLoads")
		for _, e := range effs {
			fmt.Printf("%4d %4d %8.4f %12d %12d\n", e.P, e.L, e.Bias, e.NumSubgraphs, e.TotalLoads)
		}
		fmt.Println("\n=== Figure 6c: effect of physical partitions (c=p/4) ===")
		effs, err = experiments.Figure6c(sc)
		check(err)
		fmt.Printf("%4s %4s %8s\n", "p", "l", "Bias")
		for _, e := range effs {
			fmt.Printf("%4d %4d %8.4f\n", e.P, e.L, e.Bias)
		}
		fmt.Println()
	}

	if all || want["fig7"] {
		fmt.Println("=== Figure 7: time-to-accuracy (node classification) ===")
		points, err := experiments.Figure7(sc, *epochs)
		check(err)
		fmt.Printf("%-14s %6s %10s %10s\n", "System", "Epoch", "Elapsed", "Accuracy")
		for _, pt := range points {
			fmt.Printf("%-14s %6d %9.2fs %10.4f\n", pt.System, pt.Epoch, pt.Elapsed.Seconds(), pt.Metric)
		}
		fmt.Println()
	}

	if all || want["fig8"] {
		fmt.Println("=== Figure 8: COMET auto-tuning vs grid search ===")
		points, err := experiments.Figure8(sc, *epochs)
		check(err)
		fmt.Printf("%4s %4s %4s %10s %8s %s\n", "p", "c", "l", "Epoch", "MRR", "")
		for _, pt := range points {
			mark := ""
			if pt.AutoTuned {
				mark = "  <-- auto-tuned"
			}
			fmt.Printf("%4d %4d %4d %9.2fs %8.4f%s\n", pt.P, pt.C, pt.L, pt.Epoch.Seconds(), pt.MRR, mark)
		}
		fmt.Println()
	}

	if all || want["table8"] {
		fmt.Println("=== Table 8: COMET vs BETA disk-based link prediction ===")
		rows, err := experiments.Table8(sc, *epochs)
		check(err)
		fmt.Printf("%-5s %-5s | %8s | %8s %8s | %10s %10s\n",
			"Model", "Graph", "Mem MRR", "COMET", "BETA", "COMET ep", "BETA ep")
		for _, r := range rows {
			fmt.Printf("%-5s %-5s | %8.4f | %8.4f %8.4f | %9.2fs %9.2fs\n",
				r.Model, r.Dataset, r.MemMRR, r.CometMRR, r.BetaMRR,
				r.CometEpoch.Seconds(), r.BetaEpoch.Seconds())
		}
		fmt.Println()
	}

	if all || want["extreme"] {
		fmt.Println("=== §7.3: extreme-scale out-of-core training (scaled) ===")
		res, err := experiments.ExtremeScale(1_000_000, 4_000_000, 16)
		check(err)
		fmt.Printf("nodes=%d edges=%d preprocess=%.1fs epoch=%.1fs\n",
			res.Nodes, res.Edges, res.Preprocess.Seconds(), res.Epoch.Seconds())
		fmt.Printf("throughput %.0f edges/sec, train MRR %.4f, IO %.1f MB\n",
			res.EdgesPerSec, res.TrainMRR, float64(res.IOBytes)/1e6)
		fmt.Printf("extrapolated to 128B edges: %.0f h/epoch ≈ $%.0f/epoch (paper: 194k edges/sec, $564/epoch)\n\n",
			res.ExtrapolatedH, res.ExtrapolatedC)
	}
}

func printEndToEnd(rows []experiments.EndToEndRow, metric string) {
	fmt.Printf("%-14s %-8s %-5s %10s %10s %-12s %12s\n",
		"System", "Dataset", "Model", "Epoch", metric, "Instance", "$/epoch")
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-5s %9.2fs %10.4f %-12s %12.4f\n",
			r.System, r.Dataset, r.Model, r.Epoch.Seconds(), r.Metric, r.Instance, r.Cost)
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
