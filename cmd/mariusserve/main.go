// Command mariusserve serves forward-only inference from a training
// checkpoint over a mariusprep-prepared dataset: node-classification
// predictions (POST /v1/predict) or link-prediction top-k tail queries
// (POST /v1/topk), with server-side micro-batching. SIGHUP or POST
// /reload hot-swaps the checkpoint without dropping in-flight requests;
// GET /healthz and /statz expose liveness and queue/batch/latency
// metrics, GET /metrics serves Prometheus text, and /debug/pprof/
// exposes the standard Go profiles.
//
// Examples:
//
//	mariusserve -data data/fb -checkpoint run.ckpt
//	curl -s localhost:8080/v1/topk -d '{"src":12,"rel":3,"k":10}'
//	curl -s localhost:8080/metrics | grep serve_latency
//	kill -HUP $(pidof mariusserve)   # re-read run.ckpt after more training
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/marius"
)

func main() {
	var (
		data     = flag.String("data", "", "mariusprep-prepared dataset directory (required)")
		ckpt     = flag.String("checkpoint", "", "checkpoint to serve (required); SIGHUP re-reads it")
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		maxBatch = flag.Int("max-batch", 32, "micro-batch size cap")
		maxWait  = flag.Duration("max-wait", 2*time.Millisecond, "max wait for co-batched requests")
		queue    = flag.Int("queue", 0, "request queue capacity (0 = 4*max-batch); requests beyond it are shed with 503 + Retry-After")
		reqTO    = flag.Duration("request-timeout", 0, "per-request deadline covering queue wait plus micro-batch (0 = none); expiry returns 504")
		drain    = flag.Duration("drain", 5*time.Second, "max time to drain in-flight requests on SIGTERM/SIGINT before exiting")
		workers  = flag.Int("workers", 4, "kernel fan-out (results identical at any value)")
		mem      = flag.Bool("mem", false, "load node features fully into memory")
		qtable   = flag.String("quantize-table", "", "store the LP encoding table quantized (fp16 or int8) to shrink serving memory")
		traceF   = flag.String("trace", "", "write serving-stage spans (queue wait, sample, encode, decode) to this file in Chrome Trace Event Format")
		seed     = flag.Int64("seed", 1, "server seed mixed into request-derived sampling seeds")
	)
	flag.Parse()
	if *data == "" || *ckpt == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := marius.ServeConfig{
		MaxBatch: *maxBatch, MaxWait: *maxWait, QueueCap: *queue,
		Workers: *workers, Seed: *seed, InMemory: *mem, QuantizeTable: *qtable,
		RequestTimeout: *reqTO,
	}
	if *traceF != "" {
		tr, err := marius.NewTracer(*traceF)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		cfg.Tracer = tr
	}
	srv, err := marius.LoadForInference(*data, *ckpt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	snap := srv.Snapshot()
	if snap.Warning != "" {
		log.Printf("WARNING: %s", snap.Warning)
	}
	log.Printf("serving %s (epoch %d) over %s on %s", *ckpt, snap.File.Epoch, *data, *addr)

	// SIGHUP re-reads the checkpoint path in place: point a trainer's
	// -checkpoint at the same file and HUP the server after each epoch to
	// serve continuously-improving models.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			snap, err := srv.Reload(*ckpt)
			if err != nil {
				log.Printf("reload failed, keeping old snapshot: %v", err)
				continue
			}
			if snap.Warning != "" {
				log.Printf("WARNING: %s", snap.Warning)
			}
			log.Printf("reloaded %s (epoch %d)", *ckpt, snap.File.Epoch)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The server's own handler covers /v1/*, /reload, /healthz, /statz,
	// and /metrics; pprof rides along on the same listener.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting connections, let in-flight
		// requests finish (bounded by -drain), then close the inference
		// server (the deferred Close) and exit 0. A second signal during
		// the drain kills the process via Go's default handling, since
		// NotifyContext unregisters after the first.
		log.Printf("signal received; draining for up to %s", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			log.Printf("drain deadline exceeded, closing: %v", err)
			hs.Close()
		}
		log.Printf("drained")
	case err := <-done:
		log.Fatal(err)
	}
}
