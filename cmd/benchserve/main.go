// Command benchserve measures the online inference subsystem end to end
// and emits BENCH_serve.json, the repo's serving baseline: two small
// datasets (node classification and link prediction) are prepared and
// briefly trained, their checkpoints are served by internal/serve, and
// closed-loop clients at concurrency 1/16/64 measure sustained QPS and
// p50/p99 latency for NC predict and LP top-k — so micro-batching's
// throughput gain under concurrency is visible next to its single-stream
// latency cost.
//
//	go run ./cmd/benchserve                   # full size
//	go run ./cmd/benchserve -short -check     # CI: small size, enforce gates
//
// -check enforces the serving contract: served NC logits must be
// byte-identical to the training-side evaluation forward for the same
// checkpoint and seed, served LP top-k must be byte-identical to the
// full-ranking ScoreAll kernel, concurrency must not change any result,
// and sustained QPS must clear conservative floors.
//
// Observability gates ride along: the NC server's /metrics output must
// lint as Prometheus text exposition and contain the serve, storage,
// and snapshot families, and a server with span tracing enabled must
// sustain at least 98% of the untraced QPS at concurrency 16.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/marius"
)

// Report is the schema of BENCH_serve.json.
type Report struct {
	Schema     int      `json:"schema"`
	Go         string   `json:"go"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Short      bool     `json:"short"`
	Config     Config   `json:"config"`
	NCPredict  []Loadpt `json:"nc_predict"`
	LPTopK     []Loadpt `json:"lp_topk"`
	Summary    Summary  `json:"summary"`
}

// Config records the benchmark workload.
type Config struct {
	NCNodes    int   `json:"nc_nodes"`
	LPEntities int   `json:"lp_entities"`
	LPEdges    int   `json:"lp_edges"`
	Dim        int   `json:"dim"`
	MaxBatch   int   `json:"max_batch"`
	MaxWaitUS  int64 `json:"max_wait_us"`
	Workers    int   `json:"workers"`
	Requests   int   `json:"requests_per_point"`
	Seed       int64 `json:"seed"`
}

// Loadpt is one (endpoint, concurrency) measurement.
type Loadpt struct {
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// Summary is what -check gates on.
type Summary struct {
	NCMatchesEval     bool    `json:"nc_matches_eval"`
	LPMatchesScoreAll bool    `json:"lp_matches_scoreall"`
	ConcurrencyStable bool    `json:"concurrency_preserves_results"`
	NCPeakQPS         float64 `json:"nc_peak_qps"`
	LPPeakQPS         float64 `json:"lp_peak_qps"`
	// MetricsLint is true when the NC server's /metrics output parses as
	// Prometheus text exposition and carries the serve, storage, and
	// snapshot metric families.
	MetricsLint bool `json:"metrics_prometheus_lint"`
	// TraceQPSRatio is traced-server QPS over plain-server QPS at
	// concurrency 16, measured back to back — the serving-side
	// instrumentation overhead probe (floor 0.98 under -check).
	TraceQPSRatio float64 `json:"trace_qps_ratio"`
	// LPDecoder is the decoder kind the LP server reports at /statz; -check
	// requires it to match the checkpoint's decoder.
	LPDecoder string `json:"lp_decoder"`
}

var concurrencies = []int{1, 16, 64}

// Conservative QPS floors for -check: an order of magnitude under what a
// cold CI runner sustains on the -short workload, so regressions that
// serialize the server or break batching fail loudly while machine noise
// does not.
const (
	ncFloorQPS = 200
	lpFloorQPS = 200
)

func main() {
	out := flag.String("o", "BENCH_serve.json", "output JSON path")
	short := flag.Bool("short", false, "small graphs for CI")
	check := flag.Bool("check", false, "enforce gates (differential equality, concurrency stability, QPS floors)")
	flag.Parse()

	cfg := Config{
		NCNodes: 5000, LPEntities: 3000, LPEdges: 30000, Dim: 16,
		MaxBatch: 32, MaxWaitUS: 2000, Workers: 4, Requests: 3000, Seed: 7,
	}
	if *short {
		cfg.NCNodes, cfg.LPEntities, cfg.LPEdges = 1000, 800, 8000
		cfg.Requests = 800
	}
	rep := Report{Schema: 1, Go: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), Short: *short, Config: cfg}
	rep.Summary.ConcurrencyStable = true

	work, err := os.MkdirTemp("", "benchserve-")
	must(err)
	defer os.RemoveAll(work)

	scfg := serve.Config{
		MaxBatch: cfg.MaxBatch, MaxWait: time.Duration(cfg.MaxWaitUS) * time.Microsecond,
		Workers: cfg.Workers, Seed: cfg.Seed,
	}

	// --- Node classification ---
	ncDir := prepNC(work, cfg)
	ncCkpt := trainNC(work, ncDir, cfg)
	ncSrv := openServer(ncDir, ncCkpt, scfg)
	ncReqs := make([]*serve.PredictRequest, 256)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range ncReqs {
		nodes := make([]int32, 1+rng.Intn(8))
		for j := range nodes {
			nodes[j] = int32(rng.Intn(cfg.NCNodes))
		}
		ncReqs[i] = &serve.PredictRequest{Nodes: nodes, Seed: int64(i + 1)}
	}
	ncExpected := make([]*serve.PredictResponse, len(ncReqs))
	for i, r := range ncReqs {
		ncExpected[i], err = ncSrv.Predict(context.Background(), r)
		must(err)
	}
	// Differential gate: served logits vs the training-side evaluation
	// forward (internal/encode, the code path of train/eval.go), bitwise,
	// on a sample of the request pool.
	rep.Summary.NCMatchesEval = ncMatchesEval(ncDir, ncCkpt, ncReqs[:16], ncExpected[:16])
	for _, conc := range concurrencies {
		pt := drive(conc, cfg.Requests, func(i int) error {
			idx := i % len(ncReqs)
			got, err := ncSrv.Predict(context.Background(), ncReqs[idx])
			if err != nil {
				return err
			}
			if !eqPredict(got, ncExpected[idx]) {
				rep.Summary.ConcurrencyStable = false
			}
			return nil
		})
		rep.NCPredict = append(rep.NCPredict, pt)
		if pt.QPS > rep.Summary.NCPeakQPS {
			rep.Summary.NCPeakQPS = pt.QPS
		}
	}
	rep.Summary.MetricsLint = lintPrometheus(ncSrv.Metrics())

	// Tracing-overhead probe: c=16 points against the warm plain server
	// and a second server writing spans for every batch. The traced
	// server gets an unmeasured warm-up (the plain one is warm from the
	// sweep), then the two sides are measured interleaved, best of two
	// each, so machine drift and one-off stalls don't read as overhead.
	tracePath := filepath.Join(work, "serve.trace")
	tr, err := obs.CreateTrace(tracePath)
	must(err)
	tcfg := scfg
	tcfg.Tracer = tr
	tracedSrv := openServer(ncDir, ncCkpt, tcfg)
	drivePlain := func() Loadpt {
		return drive(16, cfg.Requests, func(i int) error {
			_, err := ncSrv.Predict(context.Background(), ncReqs[i%len(ncReqs)])
			return err
		})
	}
	driveTraced := func() Loadpt {
		return drive(16, cfg.Requests, func(i int) error {
			_, err := tracedSrv.Predict(context.Background(), ncReqs[i%len(ncReqs)])
			return err
		})
	}
	driveTraced() // warm-up, unmeasured
	var plainQPS, tracedQPS float64
	for round := 0; round < 2; round++ {
		if q := drivePlain().QPS; q > plainQPS {
			plainQPS = q
		}
		if q := driveTraced().QPS; q > tracedQPS {
			tracedQPS = q
		}
	}
	tracedSrv.Close()
	must(tr.Close())
	rep.Summary.TraceQPSRatio = tracedQPS / plainQPS
	// The trace must load as Chrome Trace Event JSON and actually carry
	// serving-stage spans; otherwise the probe measured nothing.
	var spans []struct {
		Cat  string `json:"cat"`
		Name string `json:"name"`
	}
	traceBuf, err := os.ReadFile(tracePath)
	must(err)
	must(json.Unmarshal(traceBuf, &spans))
	sampleSpans := 0
	for _, sp := range spans {
		if sp.Cat == "serve" && sp.Name == "sample" {
			sampleSpans++
		}
	}
	if sampleSpans == 0 {
		fmt.Fprintln(os.Stderr, "benchserve: traced server produced no serve/sample spans")
		rep.Summary.TraceQPSRatio = 0
	}
	ncSrv.Close()

	// --- Link prediction ---
	lpDir := prepLP(work, cfg)
	lpCkpt := trainLP(work, lpDir, cfg)
	lpSrv := openServer(lpDir, lpCkpt, scfg)
	snap := lpSrv.Snapshot()
	rep.Summary.LPDecoder = lpSrv.Statz().Decoder
	lpReqs := make([]*serve.TopKRequest, 256)
	for i := range lpReqs {
		rel := int32(rng.Intn(4))
		lpReqs[i] = &serve.TopKRequest{
			Src: int32(rng.Intn(cfg.LPEntities)), Relation: &rel,
			K: 10, Seed: int64(i + 1),
		}
	}
	// Differential gate: served top-k vs the training-side full-ranking
	// kernel, bitwise.
	rep.Summary.LPMatchesScoreAll = true
	lpExpected := make([]*serve.TopKResponse, len(lpReqs))
	for i, r := range lpReqs {
		got, err := lpSrv.TopK(context.Background(), r)
		must(err)
		lpExpected[i] = got
		scores := decoder.ScoreAll(snap.Decoder, snap.Table.Row(int(r.Src)), snap.RelTable.Row(int(*r.Relation)), snap.Table)
		ids := decoder.TopK(scores, r.K)
		for j := range ids {
			if got.Nodes[j] != ids[j] || got.Scores[j] != scores[ids[j]] {
				rep.Summary.LPMatchesScoreAll = false
			}
		}
	}
	for _, conc := range concurrencies {
		pt := drive(conc, cfg.Requests, func(i int) error {
			idx := i % len(lpReqs)
			got, err := lpSrv.TopK(context.Background(), lpReqs[idx])
			if err != nil {
				return err
			}
			if !eqTopK(got, lpExpected[idx]) {
				rep.Summary.ConcurrencyStable = false
			}
			return nil
		})
		rep.LPTopK = append(rep.LPTopK, pt)
		if pt.QPS > rep.Summary.LPPeakQPS {
			rep.Summary.LPPeakQPS = pt.QPS
		}
	}
	lpSrv.Close()

	buf, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile(*out, append(buf, '\n'), 0o644))
	for i, conc := range concurrencies {
		fmt.Printf("nc predict  c=%-3d %8.0f qps  p50 %6.2fms  p99 %6.2fms\n",
			conc, rep.NCPredict[i].QPS, rep.NCPredict[i].P50MS, rep.NCPredict[i].P99MS)
	}
	for i, conc := range concurrencies {
		fmt.Printf("lp topk     c=%-3d %8.0f qps  p50 %6.2fms  p99 %6.2fms\n",
			conc, rep.LPTopK[i].QPS, rep.LPTopK[i].P50MS, rep.LPTopK[i].P99MS)
	}

	if *check {
		s := rep.Summary
		if !s.NCMatchesEval {
			fail("served logits diverge from the evaluation forward pass")
		}
		if !s.LPMatchesScoreAll {
			fail("served top-k diverges from the full-ranking ScoreAll kernel")
		}
		if !s.ConcurrencyStable {
			fail("concurrent responses diverge from single-request responses")
		}
		if s.NCPeakQPS < ncFloorQPS {
			fail("nc predict peak %.0f qps under the %d floor", s.NCPeakQPS, ncFloorQPS)
		}
		if s.LPPeakQPS < lpFloorQPS {
			fail("lp topk peak %.0f qps under the %d floor", s.LPPeakQPS, lpFloorQPS)
		}
		if !s.MetricsLint {
			fail("metrics exposition failed the Prometheus text lint")
		}
		if s.TraceQPSRatio < 0.98 {
			fail("traced server sustained %.3fx the plain QPS, under the 0.98 floor", s.TraceQPSRatio)
		}
		if s.LPDecoder != decoder.KindDistMult {
			fail("lp /statz reports decoder %q, checkpoint trained %q", s.LPDecoder, decoder.KindDistMult)
		}
		fmt.Println("check: all serving gates passed")
	}
}

// drive runs total requests over conc closed-loop workers and summarizes
// throughput and latency.
func drive(conc, total int, do func(i int) error) Loadpt {
	lat := make([]float64, total)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= total {
			return -1
		}
		n := int(next)
		next++
		return n
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				t0 := time.Now()
				must(do(i))
				lat[i] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	sort.Float64s(lat)
	return Loadpt{
		Concurrency: conc,
		QPS:         float64(total) / wall,
		P50MS:       lat[total/2],
		P99MS:       lat[total*99/100],
	}
}

func prepNC(work string, cfg Config) string {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: cfg.NCNodes, NumClasses: 8, AvgDegree: 8, FeatureDim: cfg.Dim,
		Homophily: 0.8, FeatNoise: 1, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: cfg.Seed,
	})
	exp, err := dataset.Export(g, filepath.Join(work, "nc-raw"), "tsv")
	must(err)
	dir := filepath.Join(work, "nc")
	_, err = dataset.Ingest(exp.Config(dir, "nc", cfg.Seed, 2))
	must(err)
	return dir
}

func prepLP(work string, cfg Config) string {
	g := gen.KG(gen.KGConfig{
		NumEntities: cfg.LPEntities, NumRelations: 4, NumEdges: cfg.LPEdges,
		ZipfS: 1.2, ValidFrac: 0.02, TestFrac: 0.02, Seed: cfg.Seed,
	})
	exp, err := dataset.Export(g, filepath.Join(work, "lp-raw"), "tsv")
	must(err)
	dir := filepath.Join(work, "lp")
	_, err = dataset.Ingest(exp.Config(dir, "lp", cfg.Seed, 2))
	must(err)
	return dir
}

func trainNC(work, dir string, cfg Config) string {
	sess, err := marius.FromDataset(dir,
		marius.WithModel(marius.GraphSage), marius.WithFanouts(10, 10),
		marius.WithDim(cfg.Dim), marius.WithBatchSize(512), marius.WithWorkers(1))
	must(err)
	_, err = sess.TrainEpoch(context.Background())
	must(err)
	path := filepath.Join(work, "nc.ckpt")
	must(sess.Save(path))
	must(sess.Close())
	return path
}

func trainLP(work, dir string, cfg Config) string {
	sess, err := marius.FromDataset(dir,
		marius.WithModel(marius.DistMultOnly), marius.WithDim(cfg.Dim),
		marius.WithBatchSize(1024), marius.WithNegatives(64), marius.WithWorkers(1))
	must(err)
	_, err = sess.TrainEpoch(context.Background())
	must(err)
	path := filepath.Join(work, "lp.ckpt")
	must(sess.Save(path))
	must(sess.Close())
	return path
}

// ncMatchesEval rebuilds the model the way training holds it and runs
// the evaluation-substrate forward (internal/encode) for each request's
// deduplicated targets at the request seed, comparing logits bitwise
// with the served responses.
func ncMatchesEval(dir, ckptPath string, reqs []*serve.PredictRequest, served []*serve.PredictResponse) bool {
	cp, err := ckpt.Read(ckptPath)
	must(err)
	ps := nn.NewParamSet()
	rng := rand.New(rand.NewSource(cp.Seed))
	dims := []int{cp.Model.FeatureDim}
	for i := 0; i < cp.Model.Layers-1; i++ {
		dims = append(dims, cp.Model.Dim)
	}
	dims = append(dims, cp.Model.NumClasses)
	enc := gnn.BuildSage(ps, dims, gnn.Mean, rng)
	must(ps.LoadState(cp.Params))
	sctx, err := serve.Open(dir, serve.Config{InMemory: true})
	must(err)
	defer sctx.Close()
	for qi, req := range reqs {
		fwd := encode.New(encode.Config{
			Encoder: enc, Params: ps, Fanouts: cp.Model.Fanouts, Dirs: graph.Both, Workers: 1,
		}, sctx.Adj, req.Seed)
		var uniq []int32
		rows := map[int32]int{}
		for _, id := range req.Nodes {
			if _, ok := rows[id]; !ok {
				rows[id] = len(uniq)
				uniq = append(uniq, id)
			}
		}
		out, err := fwd.Encode(sctx.Features, uniq)
		must(err)
		for i, id := range req.Nodes {
			want := out.Value.Row(rows[id])
			got := served[qi].Logits[i]
			for j := range want {
				if got[j] != want[j] {
					return false
				}
			}
		}
	}
	return true
}

// lintPrometheus renders the registry and checks the exposition line by
// line — HELP/TYPE comments, `name{labels} value` series with parseable
// values — and requires the families the serving stack must export.
func lintPrometheus(reg *obs.Registry) bool {
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	series := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? `)
	ok := true
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := series.FindString(line)
		if m == "" {
			fmt.Fprintf(os.Stderr, "benchserve: metrics lint: malformed series line %q\n", line)
			ok = false
			continue
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(line[len(m):]), 64); err != nil {
			fmt.Fprintf(os.Stderr, "benchserve: metrics lint: unparseable value in %q\n", line)
			ok = false
		}
	}
	for _, fam := range []string{
		"serve_requests_total", "serve_batches_total", "serve_latency_milliseconds",
		"serve_queue_depth", "serve_snapshot_epoch", "serve_snapshot_loaded_timestamp_seconds",
		"storage_bytes_read_total",
	} {
		if !strings.Contains(out, fam) {
			fmt.Fprintf(os.Stderr, "benchserve: metrics lint: missing family %s\n", fam)
			ok = false
		}
	}
	return ok
}

func openServer(dir, ckpt string, cfg serve.Config) *serve.Server {
	sctx, err := serve.Open(dir, cfg)
	must(err)
	snap, err := serve.Load(sctx, ckpt, cfg)
	must(err)
	return serve.New(sctx, snap, cfg)
}

func eqPredict(a, b *serve.PredictResponse) bool {
	if len(a.Logits) != len(b.Logits) {
		return false
	}
	for i := range a.Logits {
		if a.Classes[i] != b.Classes[i] || len(a.Logits[i]) != len(b.Logits[i]) {
			return false
		}
		for j := range a.Logits[i] {
			if a.Logits[i][j] != b.Logits[i][j] {
				return false
			}
		}
	}
	return true
}

func eqTopK(a, b *serve.TopKResponse) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.Scores[i] != b.Scores[i] {
			return false
		}
	}
	return true
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchserve: %v\n", err)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchserve: CHECK FAILED: "+format+"\n", args...)
	os.Exit(1)
}
