// Command bencheval measures the link-prediction evaluation subsystem and
// emits BENCH_eval.json, the repo's ranking-evaluation baseline: for each
// decoder (DistMult, ComplEx, TransE) it times the streamed filtered-ranking
// protocol (internal/eval) over a generated knowledge graph — queries ranked
// per second against the full entity set — and the fused candidate-scoring
// kernel on its own (candidate scores per second through ScoreAll).
//
//	go run ./cmd/bencheval                   # full size
//	go run ./cmd/bencheval -short -check     # CI: small size, enforce gates
//
// -check enforces the evaluation contract: MRR and Hits@k must be bitwise
// identical across worker counts, batch sizes and candidate-chunk widths;
// the fused scoring path must reproduce the scalar RefScore reference bit
// for bit for every decoder; filtered MRR must be at least the raw MRR
// (filtering only removes competitors); and throughput must clear
// conservative floors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/decoder"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Report is the schema of BENCH_eval.json.
type Report struct {
	Schema     int       `json:"schema"`
	Go         string    `json:"go"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Short      bool      `json:"short"`
	Config     Config    `json:"config"`
	Ranking    []RankPt  `json:"ranking"`
	Scoring    []ScorePt `json:"scoring"`
	Summary    Summary   `json:"summary"`
}

// Config records the benchmark workload.
type Config struct {
	Entities  int   `json:"entities"`
	Relations int   `json:"relations"`
	Edges     int   `json:"edges"`
	Dim       int   `json:"dim"`
	Seed      int64 `json:"seed"`
}

// RankPt is one (decoder, workers, protocol) ranking measurement: QPS is
// ranked queries per second, each query scoring every entity (two queries
// per held-out edge).
type RankPt struct {
	Decoder  string  `json:"decoder"`
	Workers  int     `json:"workers"`
	Filtered bool    `json:"filtered"`
	Queries  int     `json:"queries"`
	QPS      float64 `json:"queries_per_sec"`
	MRR      float64 `json:"mrr"`
	Hits1    float64 `json:"hits_at_1"`
	Hits10   float64 `json:"hits_at_10"`
}

// ScorePt is one decoder's fused candidate-scoring rate.
type ScorePt struct {
	Decoder      string  `json:"decoder"`
	ScoresPerSec float64 `json:"scores_per_sec"`
}

// Summary is what -check gates on.
type Summary struct {
	// BitReproducible is true when MRR/Hits@k agree bitwise across
	// worker counts, batch sizes and chunk widths, for every decoder.
	BitReproducible bool `json:"bit_reproducible"`
	// FusedMatchesRef is true when the fused ScoreAll path reproduces the
	// scalar RefScore reference bit for bit on a triple sample.
	FusedMatchesRef bool `json:"fused_matches_ref"`
	// FilteredGeRaw is true when filtered MRR >= raw MRR for every decoder.
	FilteredGeRaw bool    `json:"filtered_mrr_ge_raw"`
	PeakRankQPS   float64 `json:"peak_rank_qps"`
	PeakScoresPS  float64 `json:"peak_scores_per_sec"`
	MinRankQPS    float64 `json:"min_rank_qps"`
	MinScoresPS   float64 `json:"min_scores_per_sec"`
}

var kinds = []string{decoder.KindDistMult, decoder.KindComplEx, decoder.KindTransE}

// Conservative floors for -check: an order of magnitude under what a cold
// CI runner sustains on the -short workload, so regressions that serialize
// the evaluator or break the fused kernel fail loudly while noise does not.
const (
	rankFloorQPS = 300 // ranked queries/sec, full entity set per query
	scoreFloorPS = 2e6 // fused candidate scores/sec, single thread
)

func main() {
	out := flag.String("o", "BENCH_eval.json", "output JSON path")
	short := flag.Bool("short", false, "small graph for CI")
	check := flag.Bool("check", false, "enforce gates (bit-reproducibility, fused-vs-reference equality, throughput floors)")
	flag.Parse()

	cfg := Config{Entities: 10000, Relations: 16, Edges: 120000, Dim: 32, Seed: 7}
	if *short {
		cfg.Entities, cfg.Edges, cfg.Dim = 2000, 20000, 16
	}
	rep := Report{Schema: 1, Go: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), Short: *short, Config: cfg}
	sum := &rep.Summary
	sum.BitReproducible, sum.FusedMatchesRef, sum.FilteredGeRaw = true, true, true
	sum.MinRankQPS, sum.MinScoresPS = 1e18, 1e18

	g := gen.KG(gen.KGConfig{
		NumEntities: cfg.Entities, NumRelations: cfg.Relations, NumEdges: cfg.Edges,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: cfg.Seed,
	})
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	filter := eval.NewFilter(adj, g.ValidEdges, g.TestEdges)

	// A shared random entity table: evaluation cost does not depend on
	// training quality, and a deterministic table keeps the reproducibility
	// gates meaningful across runs.
	rng := rand.New(rand.NewSource(cfg.Seed))
	table := tensor.New(g.NumNodes, cfg.Dim)
	for i := range table.Data {
		table.Data[i] = float32(rng.NormFloat64()) * 0.1
	}

	workerSweep := []int{1, 4}
	for _, kind := range kinds {
		dec, err := decoder.New(kind, nn.NewParamSet(), g.NumRels, cfg.Dim, rand.New(rand.NewSource(cfg.Seed+1)))
		must(err)
		rel := dec.RelParam().Value

		base := eval.RankingConfig{Dec: dec, Rel: rel, Table: table, Ks: []int{1, 10}, Filter: filter}

		// Throughput sweep: filtered protocol at each worker count, plus a
		// raw point at the top worker count for the filtering-cost contrast.
		var ref *RankPt
		for _, w := range workerSweep {
			c := base
			c.Workers = w
			pt := timeRanking(kind, c, g.ValidEdges, true)
			rep.Ranking = append(rep.Ranking, pt)
			sum.PeakRankQPS = max(sum.PeakRankQPS, pt.QPS)
			sum.MinRankQPS = min(sum.MinRankQPS, pt.QPS)
			if ref == nil {
				r := pt
				ref = &r
			} else if pt.MRR != ref.MRR || pt.Hits1 != ref.Hits1 || pt.Hits10 != ref.Hits10 {
				fmt.Fprintf(os.Stderr, "bencheval: %s workers=%d diverges from workers=%d\n", kind, w, workerSweep[0])
				sum.BitReproducible = false
			}
		}
		raw := base
		raw.Filter = nil
		raw.Workers = workerSweep[len(workerSweep)-1]
		rawPt := timeRanking(kind, raw, g.ValidEdges, false)
		rep.Ranking = append(rep.Ranking, rawPt)
		if ref.MRR < rawPt.MRR {
			fmt.Fprintf(os.Stderr, "bencheval: %s filtered MRR %.6f under raw %.6f\n", kind, ref.MRR, rawPt.MRR)
			sum.FilteredGeRaw = false
		}

		// Bit-reproducibility across batch and chunk geometry, off the
		// clock: adversarial batch/chunk sizes must not move a single bit.
		odd := base
		odd.Workers, odd.BatchSize, odd.Chunk = 3, 17, 511
		or := eval.Ranking(odd, g.ValidEdges)
		if or.MRR != ref.MRR || or.Hits[1] != ref.Hits1 || or.Hits[10] != ref.Hits10 {
			fmt.Fprintf(os.Stderr, "bencheval: %s batch=17 chunk=511 diverges\n", kind)
			sum.BitReproducible = false
		}

		// Fused-vs-reference equality on a triple sample: the streamed
		// evaluator and the serving path both reduce to ScoreAll, which must
		// reproduce the scalar textbook scorer bit for bit.
		srng := rand.New(rand.NewSource(cfg.Seed + 2))
		for t := 0; t < 200; t++ {
			e := g.ValidEdges[srng.Intn(len(g.ValidEdges))]
			scores := decoder.ScoreAll(dec, table.Row(int(e.Src)), rel.Row(int(e.Rel)), table)
			want := decoder.RefScore(kind, table.Row(int(e.Src)), rel.Row(int(e.Rel)), table.Row(int(e.Dst)))
			if scores[e.Dst] != want {
				fmt.Fprintf(os.Stderr, "bencheval: %s fused score %g != reference %g\n", kind, scores[e.Dst], want)
				sum.FusedMatchesRef = false
				break
			}
		}

		// Kernel-only scoring rate: full-table ScoreAll per source, the
		// serving top-k hot path.
		iters := 200
		if *short {
			iters = 100
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			e := g.Edges[i%len(g.Edges)]
			_ = decoder.ScoreAll(dec, table.Row(int(e.Src)), rel.Row(int(e.Rel)), table)
		}
		ps := float64(iters) * float64(g.NumNodes) / time.Since(start).Seconds()
		rep.Scoring = append(rep.Scoring, ScorePt{Decoder: kind, ScoresPerSec: ps})
		sum.PeakScoresPS = max(sum.PeakScoresPS, ps)
		sum.MinScoresPS = min(sum.MinScoresPS, ps)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile(*out, append(buf, '\n'), 0o644))
	for _, pt := range rep.Ranking {
		proto := "raw     "
		if pt.Filtered {
			proto = "filtered"
		}
		fmt.Printf("rank  %-8s %s w=%d %8.0f q/s  MRR=%.4f hits@1=%.4f hits@10=%.4f\n",
			pt.Decoder, proto, pt.Workers, pt.QPS, pt.MRR, pt.Hits1, pt.Hits10)
	}
	for _, pt := range rep.Scoring {
		fmt.Printf("score %-8s %14.0f scores/s\n", pt.Decoder, pt.ScoresPerSec)
	}

	if *check {
		if !sum.BitReproducible {
			fail("ranking results vary with worker count, batch size or chunk width")
		}
		if !sum.FusedMatchesRef {
			fail("fused scoring diverges from the scalar reference")
		}
		if !sum.FilteredGeRaw {
			fail("filtered MRR fell below raw MRR")
		}
		if sum.MinRankQPS < rankFloorQPS {
			fail("ranking throughput %.0f q/s under the %d floor", sum.MinRankQPS, rankFloorQPS)
		}
		if sum.MinScoresPS < scoreFloorPS {
			fail("scoring throughput %.0f/s under the %.0f floor", sum.MinScoresPS, scoreFloorPS)
		}
		fmt.Println("check: all evaluation gates passed")
	}
}

func timeRanking(kind string, cfg eval.RankingConfig, edges []graph.Edge, filtered bool) RankPt {
	start := time.Now()
	res := eval.Ranking(cfg, edges)
	dur := time.Since(start).Seconds()
	return RankPt{
		Decoder: kind, Workers: cfg.Workers, Filtered: filtered,
		Queries: res.Ranked, QPS: float64(res.Ranked) / dur,
		MRR: res.MRR, Hits1: res.Hits[1], Hits10: res.Hits[10],
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bencheval: %v\n", err)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bencheval: CHECK FAILED: "+format+"\n", args...)
	os.Exit(1)
}
