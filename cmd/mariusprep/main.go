// Command mariusprep converts raw graph data into the preprocessed
// on-disk dataset layout that marius.FromDataset and mariusgnn -data
// train from directly (paper §4–5: raw edge lists are partitioned into
// p² edge buckets on disk before out-of-core training). Ingestion is
// streaming and memory-bounded: the edge list is never materialized —
// edges flow through an external bucket sort whose working set is capped
// by -mem.
//
// Subcommands:
//
//	mariusprep prep -edges E -task lp -out DIR [flags]   preprocess raw files
//	mariusprep inspect DIR                               summarize a dataset
//	mariusprep validate DIR                              full integrity check
//
// Examples:
//
//	mariusprep prep -task lp -edges train.tsv -valid-edges valid.tsv \
//	    -test-edges test.tsv -out data/fb -partitions 16 -seed 1
//	mariusprep prep -task nc -edges edges.tsv -nodes nodes.tsv \
//	    -features feats.bin -train-nodes train.tsv -out data/sbm \
//	    -partitions 8 -mem 512
//	mariusgnn -data data/fb -storage disk -epochs 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "prep":
		prep(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "validate":
		validate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mariusprep: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  mariusprep prep -edges FILE -task {nc|lp} -out DIR [flags]
  mariusprep inspect DIR
  mariusprep validate DIR

run "mariusprep prep -h" for the full prep flag list
`)
}

func prep(args []string) {
	fs := flag.NewFlagSet("prep", flag.ExitOnError)
	var (
		out        = fs.String("out", "", "output dataset directory (required)")
		edges      = fs.String("edges", "", "raw training edge list: .tsv/.txt (whitespace), .csv, or .bin packed int32 triples (required)")
		validEdges = fs.String("valid-edges", "", "held-out validation edge list (lp)")
		testEdges  = fs.String("test-edges", "", "held-out test edge list (lp)")
		nodes      = fs.String("nodes", "", "node dictionary file: one raw ID per line, optionally 'id label' (defines internal ID order)")
		features   = fs.String("features", "", "float32 binary feature table, rows in nodes-file order (nc)")
		trainNodes = fs.String("train-nodes", "", "training node split, one raw ID per line (required for nc)")
		validNodes = fs.String("valid-nodes", "", "validation node split")
		testNodes  = fs.String("test-nodes", "", "test node split")
		task       = fs.String("task", "", "nc (node classification) or lp (link prediction) (required)")
		seed       = fs.Int64("seed", 1, "relabeling seed; train with the same seed for exact parity")
		parts      = fs.Int("partitions", 8, "physical partition count p baked into the layout")
		rels       = fs.Int("rels", 0, "relation count (0 = infer max+1)")
		classes    = fs.Int("classes", 0, "class count (0 = infer max+1)")
		featDim    = fs.Int("feature-dim", 0, "feature dimensionality; the features file must then be exactly nodes x dim float32s (0 = infer from size)")
		quantize   = fs.String("quantize", "", "feature storage encoding: fp16 or int8 (default float32); quantizes once at prep, readers dequantize deterministically")
		memMB      = fs.Int64("mem", 0, "external-sort working-set cap in MB (0 = 256)")
		tmpDir     = fs.String("tmp", "", "spill directory (default: the output directory)")
		force      = fs.Bool("force", false, "overwrite a partial output left by an interrupted prep (sweeps partial payload files and spill temps first)")
		quiet      = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)
	cfg := dataset.Config{
		Out: *out, Edges: *edges, ValidEdges: *validEdges, TestEdges: *testEdges,
		Nodes: *nodes, Features: *features,
		TrainNodes: *trainNodes, ValidNodes: *validNodes, TestNodes: *testNodes,
		Task: *task, Seed: *seed, Partitions: *parts,
		NumRels: *rels, NumClasses: *classes, FeatureDim: *featDim,
		Quantize: *quantize, MemLimit: *memMB << 20, TmpDir: *tmpDir,
		Force: *force,
	}
	if cfg.MemLimit <= 0 {
		cfg.MemLimit = dataset.DefaultMemLimit
	}
	if !*quiet {
		start := time.Now()
		cfg.Progress = func(stage string, done, total int64) {
			if total < 0 {
				fmt.Printf("[%6.1fs] %s: %d\n", time.Since(start).Seconds(), stage, done)
			} else {
				fmt.Printf("[%6.1fs] %s: %d/%d\n", time.Since(start).Seconds(), stage, done, total)
			}
		}
	}
	st, err := dataset.Ingest(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("prepared %s: %d nodes, %d edges, %d relations", *out, st.NumNodes, st.NumEdges, st.NumRels)
	if st.NumClasses > 0 {
		fmt.Printf(", %d classes", st.NumClasses)
	}
	fmt.Printf("\n  partitions: %d (%d edge buckets), task %s, seed %d\n",
		*parts, *parts**parts, *task, *seed)
	fmt.Printf("  external sort: %d spill runs, peak working set %.1f MB (cap %.1f MB), %.1f MB spilled\n",
		st.SpillRuns, mb(st.MaxBufferedBytes), mb(cfg.MemLimit), mb(st.BytesSpilled))
	fmt.Printf("  %.2fs (%.2fM edges/s)\n",
		st.Duration.Seconds(), float64(st.NumEdges)/1e6/st.Duration.Seconds())
}

func inspect(args []string) {
	dir := oneDir("inspect", args)
	r, err := dataset.Inspect(dir)
	if err != nil {
		fail(err)
	}
	m := r.Man
	fmt.Printf("%s: dataset v%d, task %s, seed %d\n", dir, m.Version, m.Task, m.Seed)
	fmt.Printf("  %d nodes, %d edges, %d relations", m.NumNodes, m.NumEdges, m.NumRels)
	if m.NumClasses > 0 {
		fmt.Printf(", %d classes", m.NumClasses)
	}
	if m.FeatureDim > 0 {
		fmt.Printf(", %d-dim features", m.FeatureDim)
		if m.Quant != "" {
			fmt.Printf(" (%s)", m.Quant)
		}
	}
	fmt.Println()
	fmt.Printf("  %d partitions, %d edge buckets (%d non-empty), bucket edges min/mean/max %d/%.1f/%d\n",
		m.Partitions, len(m.BucketCounts), r.NonEmptyBuckets, r.MinBucket, r.MeanBucket, r.MaxBucket)
	show := func(name string, f *storage.DatasetFile) {
		if f != nil {
			fmt.Printf("  %-16s %10.1f MB  crc %08x\n", name, mb(f.Bytes), f.CRC32)
		}
	}
	fmt.Printf("  %-16s %10.1f MB  (per-bucket checksums)\n", m.Edges.Name, mb(m.Edges.Bytes))
	show("features", m.Features)
	show("labels", m.Labels)
	show("train nodes", m.TrainNodes)
	show("valid nodes", m.ValidNodes)
	show("test nodes", m.TestNodes)
	show("valid edges", m.ValidEdges)
	show("test edges", m.TestEdges)
	show("dict", m.Dict)
	show("quant scales", m.QuantScales)
	if m.SpillRuns > 0 {
		fmt.Printf("  prepared with %d spill runs under a %.1f MB cap\n", m.SpillRuns, mb(m.MemLimit))
	}
	fmt.Printf("  total payload %.1f MB\n", mb(r.PayloadBytes))
}

func validate(args []string) {
	dir := oneDir("validate", args)
	start := time.Now()
	ds, err := dataset.Validate(dir)
	if err != nil {
		var ce *storage.CorruptError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "mariusprep: validation FAILED: %v\n", ce)
			os.Exit(1)
		}
		fail(err)
	}
	fmt.Printf("%s: OK — %d edges in %d buckets, every checksum verified (%.2fs)\n",
		dir, ds.Man.NumEdges, len(ds.Man.BucketCounts), time.Since(start).Seconds())
	// Leftover prep scratch files mean an ingest was interrupted here at
	// some point; the committed dataset is intact, but flag them.
	if orphans, err := dataset.OrphanedTemps(dir); err == nil && len(orphans) > 0 {
		fmt.Printf("  WARNING: %d orphaned prep temp file(s) from an interrupted ingest: %s\n",
			len(orphans), strings.Join(orphans, ", "))
		fmt.Printf("  they are harmless to readers; remove them to reclaim space\n")
	}
}

func oneDir(sub string, args []string) string {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "usage: mariusprep %s DIR\n", sub)
		os.Exit(2)
	}
	return args[0]
}

func mb(n int64) float64 { return float64(n) / 1e6 }

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mariusprep: %v\n", err)
	os.Exit(1)
}
