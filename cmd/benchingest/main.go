// Command benchingest exercises the full ingest → train path end to end
// and emits BENCH_ingest.json, the repo's ingestion baseline: a seeded
// knowledge graph is exported to a raw TSV edge list, preprocessed by
// the streaming ingester (internal/dataset, the engine behind mariusprep
// prep) under a memory cap small enough to force a multi-run external
// sort, integrity-validated, and then trained with the pipelined COMET
// out-of-core configuration straight from the prepared directory.
//
//	go run ./cmd/benchingest                  # full size
//	go run ./cmd/benchingest -short -check    # CI: small size, enforce gates
//
// -check enforces the ingestion contract: the external sort must spill
// (>= 2 runs) while its peak working set stays under the cap, validation
// must pass, and the pipelined dataset run's per-epoch losses and final
// checkpoint must be byte-identical to a serial session trained on the
// equivalent in-memory graph at the same seed — ingestion is exact, not
// approximate.
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/storage"
	"repro/marius"
)

// Report is the schema of BENCH_ingest.json.
type Report struct {
	Schema     int     `json:"schema"`
	Go         string  `json:"go"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Config     Config  `json:"config"`
	Ingest     Ingest  `json:"ingest"`
	Reference  RunStat `json:"reference_inmemory_serial"`
	Dataset    RunStat `json:"dataset_pipelined"`
	Summary    Summary `json:"summary"`
	Quant      Quant   `json:"quantized_nc"`
}

// Quant is the quantized-ingest differential: the same raw NC export
// prepared float32 and fp16, trained and served from both. Quantization
// rounds the stored features once at ingest, so the fp16 trajectory must
// be bit-identical across worker counts (like any other run) and its
// loss must land within a small tolerance of the float32 run — storage
// rounding perturbs the inputs, not the learning dynamics.
type Quant struct {
	Nodes            int       `json:"nodes"`
	FeatureDim       int       `json:"feature_dim"`
	Float32FeatureMB float64   `json:"float32_feature_mb"`
	FP16FeatureMB    float64   `json:"fp16_feature_mb"`
	LossFloat32      []float64 `json:"loss_float32"`
	LossFP16         []float64 `json:"loss_fp16"`
	// RelLossDiff is |fp16 - float32| / float32 at the final epoch.
	RelLossDiff float64 `json:"rel_loss_diff"`
	// WorkersMatch: fp16 losses and checkpoints are byte-identical at
	// workers=1 and workers=4.
	WorkersMatch bool `json:"workers_match"`
	// ServeMatch: predictions from the fp16 checkpoint are byte-identical
	// whether features are served from the paged disk store or fully
	// in-memory (both dequantize the same stored bytes).
	ServeMatch bool `json:"serve_match"`
}

// Config records the benchmark workload.
type Config struct {
	Entities   int     `json:"entities"`
	Edges      int     `json:"edges"`
	Relations  int     `json:"relations"`
	Dim        int     `json:"dim"`
	Partitions int     `json:"partitions"`
	Capacity   int     `json:"capacity"`
	Logical    int     `json:"logical_partitions"`
	BatchSize  int     `json:"batch_size"`
	Negatives  int     `json:"negatives"`
	Epochs     int     `json:"epochs"`
	Depth      int     `json:"pipeline_depth"`
	Workers    int     `json:"workers"`
	Seed       int64   `json:"seed"`
	MemCapMB   float64 `json:"mem_cap_mb"`
}

// Ingest records the preprocessing measurements.
type Ingest struct {
	Seconds          float64 `json:"seconds"`
	EdgesPerSec      float64 `json:"edges_per_sec"`
	SpillRuns        int     `json:"spill_runs"`
	PeakWorkingSetMB float64 `json:"peak_working_set_mb"`
	SpilledMB        float64 `json:"spilled_mb"`
	ValidateSeconds  float64 `json:"validate_seconds"`
}

// RunStat records one training configuration.
type RunStat struct {
	EpochSec []float64 `json:"epoch_sec"`
	Loss     []float64 `json:"loss"`
	Visits   int       `json:"visits"`
}

// Summary is what -check gates on.
type Summary struct {
	Spilled          bool `json:"external_sort_spilled"`
	UnderCap         bool `json:"peak_under_cap"`
	Validated        bool `json:"validated"`
	LossesMatch      bool `json:"losses_match_reference"`
	CheckpointsMatch bool `json:"checkpoints_match_reference"`
}

func main() {
	out := flag.String("o", "BENCH_ingest.json", "output JSON path")
	short := flag.Bool("short", false, "small dataset for CI")
	check := flag.Bool("check", false, "enforce gates (>=2 spill runs under the cap, exact loss and checkpoint equivalence)")
	epochs := flag.Int("epochs", 2, "training epochs per configuration")
	flag.Parse()

	cfg := Config{
		Entities: 12000, Edges: 200000, Relations: 32, Dim: 16,
		Partitions: 8, Capacity: 4, Logical: 4,
		BatchSize: 1024, Negatives: 250,
		Epochs: *epochs, Depth: 2, Workers: 4, Seed: 42,
	}
	if *short {
		cfg.Entities, cfg.Edges, cfg.Relations = 2500, 30000, 12
		cfg.Negatives = 64
	}
	// A cap around a fifth of the total sort working set (24 B/edge)
	// forces a genuinely multi-run external sort.
	memCap := int64(cfg.Edges) * 24 / 5
	cfg.MemCapMB = float64(memCap) / 1e6

	kg := gen.KGConfig{
		NumEntities: cfg.Entities, NumRelations: cfg.Relations, NumEdges: cfg.Edges,
		ZipfS: 1.2, ValidFrac: 0.02, TestFrac: 0.02, Seed: cfg.Seed,
	}
	rep := Report{Schema: 1, Go: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), Short: *short, Config: cfg}

	work, err := os.MkdirTemp("", "benchingest-")
	must(err)
	defer os.RemoveAll(work)

	// Export a fresh graph to raw TSV (before any session relabels it).
	exp, err := dataset.Export(gen.KG(kg), filepath.Join(work, "raw"), "tsv")
	must(err)

	// Ingest under the cap — the same engine mariusprep prep drives.
	dsDir := filepath.Join(work, "prep")
	icfg := exp.Config(dsDir, "lp", cfg.Seed, cfg.Partitions)
	icfg.MemLimit = memCap
	t0 := time.Now()
	st, err := dataset.Ingest(icfg)
	must(err)
	rep.Ingest = Ingest{
		Seconds:          time.Since(t0).Seconds(),
		EdgesPerSec:      float64(st.NumEdges) / time.Since(t0).Seconds(),
		SpillRuns:        st.SpillRuns,
		PeakWorkingSetMB: float64(st.MaxBufferedBytes) / 1e6,
		SpilledMB:        float64(st.BytesSpilled) / 1e6,
	}
	rep.Summary.Spilled = st.SpillRuns >= 2
	rep.Summary.UnderCap = st.MaxBufferedBytes <= memCap

	t0 = time.Now()
	_, verr := dataset.Validate(dsDir)
	rep.Ingest.ValidateSeconds = time.Since(t0).Seconds()
	rep.Summary.Validated = verr == nil
	if verr != nil {
		fmt.Fprintf(os.Stderr, "benchingest: validate: %v\n", verr)
	}

	common := []marius.Option{
		marius.WithSeed(cfg.Seed), marius.WithModel(marius.DistMultOnly),
		marius.WithDim(cfg.Dim), marius.WithBatchSize(cfg.BatchSize),
		marius.WithNegatives(cfg.Negatives), marius.WithWorkers(cfg.Workers),
	}

	// Reference: serial disk COMET training over the equivalent
	// in-memory-generated graph.
	refCkpt := filepath.Join(work, "ref.ckpt")
	must(os.Mkdir(filepath.Join(work, "ref"), 0o755))
	ref, err := marius.New(marius.LinkPrediction(), gen.KG(kg), append(common,
		marius.WithDisk(filepath.Join(work, "ref"),
			marius.Partitions(cfg.Partitions), marius.Capacity(cfg.Capacity),
			marius.LogicalPartitions(cfg.Logical)))...)
	must(err)
	rep.Reference = trainRun(ref, cfg.Epochs)
	must(ref.Save(refCkpt))
	must(ref.Close())

	// Candidate: pipelined COMET training straight from the prepared
	// directory.
	dsCkpt := filepath.Join(work, "ds.ckpt")
	must(os.Mkdir(filepath.Join(work, "scratch"), 0o755))
	ds, err := marius.FromDataset(dsDir, append(common,
		marius.WithDisk(filepath.Join(work, "scratch"),
			marius.Capacity(cfg.Capacity), marius.LogicalPartitions(cfg.Logical)),
		marius.WithPipeline(cfg.Depth))...)
	must(err)
	rep.Dataset = trainRun(ds, cfg.Epochs)
	must(ds.Save(dsCkpt))
	must(ds.Close())

	rep.Summary.LossesMatch = len(rep.Reference.Loss) == len(rep.Dataset.Loss)
	for i := range rep.Reference.Loss {
		if rep.Reference.Loss[i] != rep.Dataset.Loss[i] {
			rep.Summary.LossesMatch = false
		}
	}
	// Compare training state, not provenance: the dataset session embeds
	// the manifest UUID in its checkpoint while the in-memory reference
	// has none, so the byte-identity contract is checked with the UUID
	// cleared (the same normalization the round-trip tests use).
	refBytes, err := ckptStateBytes(refCkpt)
	must(err)
	dsBytes, err := ckptStateBytes(dsCkpt)
	must(err)
	rep.Summary.CheckpointsMatch = bytes.Equal(refBytes, dsBytes)

	rep.Quant, err = quantDifferential(*short, cfg.Epochs)
	must(err)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	must(err)
	must(os.WriteFile(*out, append(buf, '\n'), 0o644))
	fmt.Printf("ingest: %d edges in %.2fs (%.2fM edges/s), %d spill runs, peak %.2f MB under %.2f MB cap\n",
		cfg.Edges, rep.Ingest.Seconds, rep.Ingest.EdgesPerSec/1e6,
		rep.Ingest.SpillRuns, rep.Ingest.PeakWorkingSetMB, cfg.MemCapMB)
	fmt.Printf("train: reference %.2fs, dataset(pipelined) %.2fs; losses match=%v checkpoints match=%v\n",
		sum(rep.Reference.EpochSec), sum(rep.Dataset.EpochSec),
		rep.Summary.LossesMatch, rep.Summary.CheckpointsMatch)
	fmt.Printf("quantized-nc: features %.2f MB -> %.2f MB fp16; workers match=%v serve match=%v rel loss diff=%.4f\n",
		rep.Quant.Float32FeatureMB, rep.Quant.FP16FeatureMB,
		rep.Quant.WorkersMatch, rep.Quant.ServeMatch, rep.Quant.RelLossDiff)

	if *check {
		s := rep.Summary
		if !s.Spilled {
			fail("external sort completed in %d run(s); the cap did not force spilling", rep.Ingest.SpillRuns)
		}
		if !s.UnderCap {
			fail("peak working set %.2f MB exceeds the %.2f MB cap", rep.Ingest.PeakWorkingSetMB, cfg.MemCapMB)
		}
		if !s.Validated {
			fail("dataset validation failed: %v", verr)
		}
		if !s.LossesMatch {
			fail("pipelined dataset losses diverge from the in-memory reference")
		}
		if !s.CheckpointsMatch {
			fail("pipelined dataset checkpoint differs from the in-memory reference")
		}
		if !rep.Quant.WorkersMatch {
			fail("fp16 dataset training diverges across worker counts")
		}
		if !rep.Quant.ServeMatch {
			fail("fp16 predictions differ between disk-paged and in-memory feature stores")
		}
		// Documented tolerance: fp16 storage rounding may move the final
		// loss by at most 5% relative to the float32 preparation.
		if rep.Quant.RelLossDiff > 0.05 {
			fail("fp16 final loss strays %.2f%% from float32, tolerance 5%%", rep.Quant.RelLossDiff*100)
		}
		fmt.Println("check: all ingestion gates passed")
	}
}

// quantDifferential runs the quantized-ingest differential described on
// the Quant type.
func quantDifferential(short bool, epochs int) (Quant, error) {
	q := Quant{Nodes: 6000, FeatureDim: 32}
	if short {
		q.Nodes = 2000
	}
	g := gen.SBM(gen.SBMConfig{
		NumNodes: q.Nodes, NumClasses: 8, AvgDegree: 10, FeatureDim: q.FeatureDim,
		Homophily: 0.8, FeatNoise: 1.0,
		TrainFrac: 0.3, ValidFrac: 0.1, TestFrac: 0.1, Seed: 21,
	})
	work, err := os.MkdirTemp("", "benchingest-quant")
	if err != nil {
		return q, err
	}
	defer os.RemoveAll(work)
	exp, err := dataset.Export(g, filepath.Join(work, "raw"), "bin")
	if err != nil {
		return q, err
	}
	dirs := map[string]string{"": filepath.Join(work, "f32"), "fp16": filepath.Join(work, "fp16")}
	for mode, dir := range dirs {
		icfg := exp.Config(dir, "nc", 21, 4)
		icfg.Quantize = mode
		if _, err := dataset.Ingest(icfg); err != nil {
			return q, fmt.Errorf("quant ingest(%q): %w", mode, err)
		}
		man, err := storage.ReadManifest(dir)
		if err != nil {
			return q, err
		}
		mb := float64(man.Features.Bytes) / 1e6
		if mode == "" {
			q.Float32FeatureMB = mb
		} else {
			q.FP16FeatureMB = mb
		}
	}

	train := func(dir string, workers int) ([]float64, []byte, string, error) {
		sess, err := marius.FromDataset(dir,
			marius.WithSeed(21), marius.WithDim(16), marius.WithFanouts(6, 6),
			marius.WithBatchSize(512), marius.WithWorkers(workers))
		if err != nil {
			return nil, nil, "", err
		}
		defer sess.Close()
		var losses []float64
		for i := 0; i < epochs; i++ {
			st, err := sess.TrainEpoch(context.Background())
			if err != nil {
				return nil, nil, "", err
			}
			losses = append(losses, st.Loss)
		}
		ckpt := filepath.Join(work, fmt.Sprintf("q-w%d-%s.ckpt", workers, filepath.Base(dir)))
		if err := sess.Save(ckpt); err != nil {
			return nil, nil, "", err
		}
		raw, err := os.ReadFile(ckpt)
		return losses, raw, ckpt, err
	}

	lossF32, _, _, err := train(dirs[""], 4)
	if err != nil {
		return q, err
	}
	lossW1, ckptW1, _, err := train(dirs["fp16"], 1)
	if err != nil {
		return q, err
	}
	lossW4, ckptW4, ckptPath, err := train(dirs["fp16"], 4)
	if err != nil {
		return q, err
	}
	q.LossFloat32, q.LossFP16 = lossF32, lossW4
	q.WorkersMatch = bytes.Equal(ckptW1, ckptW4)
	for i := range lossW1 {
		if lossW1[i] != lossW4[i] {
			q.WorkersMatch = false
		}
	}
	last, ref := lossW4[len(lossW4)-1], lossF32[len(lossF32)-1]
	if ref != 0 {
		d := (last - ref) / ref
		if d < 0 {
			d = -d
		}
		q.RelLossDiff = d
	}

	// Serving differential: disk-paged vs in-memory feature stores both
	// dequantize the same stored bytes, so predictions must be identical.
	nodes := make([]int32, 16)
	for i := range nodes {
		nodes[i] = int32(i * (q.Nodes / 16))
	}
	predict := func(inMem bool) (*marius.PredictResponse, error) {
		srv, err := marius.LoadForInference(dirs["fp16"], ckptPath,
			marius.ServeConfig{InMemory: inMem, Workers: 2})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		return srv.Predict(context.Background(), &marius.PredictRequest{Nodes: nodes, Seed: 9})
	}
	pDisk, err := predict(false)
	if err != nil {
		return q, err
	}
	pMem, err := predict(true)
	if err != nil {
		return q, err
	}
	q.ServeMatch = len(pDisk.Logits) == len(pMem.Logits)
	for i := range pDisk.Logits {
		if !q.ServeMatch {
			break
		}
		for j := range pDisk.Logits[i] {
			if pDisk.Logits[i][j] != pMem.Logits[i][j] || pDisk.Classes[i] != pMem.Classes[i] {
				q.ServeMatch = false
				break
			}
		}
	}
	return q, nil
}

// ckptStateBytes serializes the checkpoint at path with its dataset
// provenance UUID cleared, for training-state byte comparison.
func ckptStateBytes(path string) ([]byte, error) {
	cp, err := ckpt.Read(path)
	if err != nil {
		return nil, err
	}
	cp.DatasetUUID = ""
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// trainRun trains epochs epochs and collects exact losses.
func trainRun(sess *marius.Session, epochs int) RunStat {
	var rs RunStat
	for i := 0; i < epochs; i++ {
		t0 := time.Now()
		st, err := sess.TrainEpoch(context.Background())
		must(err)
		rs.EpochSec = append(rs.EpochSec, time.Since(t0).Seconds())
		rs.Loss = append(rs.Loss, st.Loss)
		rs.Visits = st.Visits
	}
	return rs
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchingest: %v\n", err)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchingest: CHECK FAILED: "+format+"\n", args...)
	os.Exit(1)
}
