package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildAdjacencyMatchesEdgeList(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0},
		{Src: 3, Dst: 0}, {Src: 2, Dst: 3}, {Src: 0, Dst: 1}, // duplicate edge kept
	}
	a := BuildAdjacency(4, edges)
	if a.NumEdges() != 6 {
		t.Fatalf("edges = %d", a.NumEdges())
	}
	if got := a.OutNeighbors(0); len(got) != 3 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := a.InNeighbors(0); len(got) != 2 {
		t.Fatalf("in(0) = %v", got)
	}
	if a.OutDegree(3) != 1 || a.InDegree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	if a.OutDegree(1) != 1 || a.InDegree(1) != 2 {
		t.Fatal("node 1 degrees wrong")
	}
}

func TestAdjacencyPreservesMultiplicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		m := rng.Intn(300)
		edges := make([]Edge, m)
		outDeg := make([]int, n)
		inDeg := make([]int, n)
		for i := range edges {
			e := Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
			edges[i] = e
			outDeg[e.Src]++
			inDeg[e.Dst]++
		}
		a := BuildAdjacency(n, edges)
		for v := 0; v < n; v++ {
			if a.OutDegree(int32(v)) != outDeg[v] || a.InDegree(int32(v)) != inDeg[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleNeighborsRespectsFanoutAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, 500)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(20)), Dst: int32(rng.Intn(20))}
	}
	a := BuildAdjacency(20, edges)
	for v := int32(0); v < 20; v++ {
		for _, fanout := range []int{1, 3, 10, 1000} {
			got := a.SampleNeighbors(nil, v, fanout, Outgoing, rng, nil)
			wantLen := min(fanout, a.OutDegree(v))
			if len(got) != wantLen {
				t.Fatalf("node %d fanout %d: got %d, want %d", v, fanout, len(got), wantLen)
			}
			pool := map[int32]int{}
			for _, u := range a.OutNeighbors(v) {
				pool[u]++
			}
			for _, u := range got {
				if pool[u] == 0 {
					t.Fatalf("sampled non-neighbor %d (or exceeded multiplicity)", u)
				}
				pool[u]--
			}
		}
	}
}

func TestSampleNeighborsBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := BuildAdjacency(3, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 0}})
	got := a.SampleNeighbors(nil, 0, 5, Both, rng, nil)
	if len(got) != 2 {
		t.Fatalf("both dirs = %v", got)
	}
}

func TestSampleIsApproximatelyUniform(t *testing.T) {
	// Floyd sampling over 10 neighbors choosing 2: each neighbor should be
	// chosen ~20% of the time.
	edges := make([]Edge, 10)
	for i := range edges {
		edges[i] = Edge{Src: 0, Dst: int32(i + 1)}
	}
	a := BuildAdjacency(11, edges)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 11)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, u := range a.SampleNeighbors(nil, 0, 2, Outgoing, rng, nil) {
			counts[u]++
		}
	}
	for u := 1; u <= 10; u++ {
		frac := float64(counts[u]) / float64(2*trials)
		if frac < 0.07 || frac > 0.13 {
			t.Fatalf("neighbor %d sampled with frequency %.3f, want ≈0.10", u, frac)
		}
	}
}

func TestGraphValidate(t *testing.T) {
	g := &Graph{NumNodes: 3, NumRels: 1, Edges: []Edge{{Src: 0, Dst: 2}}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Edges = append(g.Edges, Edge{Src: 0, Dst: 5})
	if g.Validate() == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g.Edges = g.Edges[:1]
	g.TrainNodes = []int32{7}
	if g.Validate() == nil {
		t.Fatal("out-of-range train node accepted")
	}
}

func TestOutDegreeStats(t *testing.T) {
	a := BuildAdjacency(3, []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0}})
	s := a.OutDegreeStats()
	if s.Min != 0 || s.Max != 2 || s.Mean != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
