// Package graph defines the edge-list graph representation, the CSR
// adjacency index used for neighborhood sampling, and task metadata
// (features/labels for node classification, edge splits for link
// prediction).
//
// Following MariusGNN §4.1, the sampling index keeps two sorted views of the
// in-memory edge list — one sorted by source node and one by destination
// node — with per-node offset arrays, so incoming and outgoing neighbors of
// any node can be sampled in O(fanout).
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Edge is a (source, relation, destination) triple. Rel is 0 for graphs
// without relation types.
type Edge struct {
	Src, Rel, Dst int32
}

// Graph is an in-memory graph with optional task metadata.
type Graph struct {
	NumNodes int
	NumRels  int // number of relation types; 1 for untyped graphs
	Edges    []Edge

	// Node classification metadata (nil/empty when unused).
	Features   *tensor.Tensor // [NumNodes x FeatureDim] fixed base representations
	Labels     []int32        // class per node, -1 if unlabeled
	NumClasses int
	TrainNodes []int32
	ValidNodes []int32
	TestNodes  []int32

	// Link prediction held-out splits (training edges are Edges).
	ValidEdges []Edge
	TestEdges  []Edge
}

// FeatureDim returns the base representation dimensionality, or 0.
func (g *Graph) FeatureDim() int {
	if g.Features == nil {
		return 0
	}
	return g.Features.Cols
}

// Validate checks internal consistency and returns a descriptive error.
func (g *Graph) Validate() error {
	check := func(edges []Edge, what string) error {
		for i, e := range edges {
			if e.Src < 0 || int(e.Src) >= g.NumNodes || e.Dst < 0 || int(e.Dst) >= g.NumNodes {
				return fmt.Errorf("graph: %s edge %d endpoints (%d,%d) out of range [0,%d)", what, i, e.Src, e.Dst, g.NumNodes)
			}
			if e.Rel < 0 || int(e.Rel) >= max(g.NumRels, 1) {
				return fmt.Errorf("graph: %s edge %d relation %d out of range [0,%d)", what, i, e.Rel, g.NumRels)
			}
		}
		return nil
	}
	if err := check(g.Edges, "train"); err != nil {
		return err
	}
	if err := check(g.ValidEdges, "valid"); err != nil {
		return err
	}
	if err := check(g.TestEdges, "test"); err != nil {
		return err
	}
	if g.Features != nil && g.Features.Rows != g.NumNodes {
		return fmt.Errorf("graph: features rows %d != nodes %d", g.Features.Rows, g.NumNodes)
	}
	if g.Labels != nil && len(g.Labels) != g.NumNodes {
		return fmt.Errorf("graph: labels len %d != nodes %d", len(g.Labels), g.NumNodes)
	}
	for _, v := range g.TrainNodes {
		if v < 0 || int(v) >= g.NumNodes {
			return fmt.Errorf("graph: train node %d out of range", v)
		}
	}
	return nil
}

// Adjacency is the CSR sampling index of §4.1: the edge list sorted by
// source with per-node outgoing offsets, and sorted by destination with
// per-node incoming offsets. It may index a subgraph (only the in-memory
// edges) while node IDs remain global.
type Adjacency struct {
	numNodes int
	outOff   []int32 // len numNodes+1; outgoing edge range of node v
	outDst   []int32 // destination of each outgoing edge, grouped by src
	outRel   []int32 // relation of each outgoing edge, parallel to outDst
	inOff    []int32 // len numNodes+1; incoming edge range of node v
	inSrc    []int32 // source of each incoming edge, grouped by dst
	inRel    []int32 // relation of each incoming edge, parallel to inSrc
}

// BuildAdjacency builds the two sorted edge-list views over edges via
// counting sort; numNodes bounds the global node ID space. Edge relations
// ride along in parallel arrays: the same stable sort places OutRels(v)[i]
// next to OutNeighbors(v)[i], so relation-aware consumers (the filtered
// ranking evaluator, the serving filter) read typed neighbor lists with
// no extra index.
func BuildAdjacency(numNodes int, edges []Edge) *Adjacency {
	a := &Adjacency{
		numNodes: numNodes,
		outOff:   make([]int32, numNodes+1),
		inOff:    make([]int32, numNodes+1),
		outDst:   make([]int32, len(edges)),
		outRel:   make([]int32, len(edges)),
		inSrc:    make([]int32, len(edges)),
		inRel:    make([]int32, len(edges)),
	}
	for _, e := range edges {
		a.outOff[e.Src+1]++
		a.inOff[e.Dst+1]++
	}
	for v := 0; v < numNodes; v++ {
		a.outOff[v+1] += a.outOff[v]
		a.inOff[v+1] += a.inOff[v]
	}
	outCur := make([]int32, numNodes)
	inCur := make([]int32, numNodes)
	for _, e := range edges {
		o := a.outOff[e.Src] + outCur[e.Src]
		a.outDst[o] = e.Dst
		a.outRel[o] = e.Rel
		outCur[e.Src]++
		i := a.inOff[e.Dst] + inCur[e.Dst]
		a.inSrc[i] = e.Src
		a.inRel[i] = e.Rel
		inCur[e.Dst]++
	}
	return a
}

// NumNodes returns the node ID space size the index was built over.
func (a *Adjacency) NumNodes() int { return a.numNodes }

// NumEdges returns the number of indexed edges.
func (a *Adjacency) NumEdges() int { return len(a.outDst) }

// OutNeighbors returns the outgoing neighbor list of v (a view).
func (a *Adjacency) OutNeighbors(v int32) []int32 {
	return a.outDst[a.outOff[v]:a.outOff[v+1]]
}

// InNeighbors returns the incoming neighbor list of v (a view).
func (a *Adjacency) InNeighbors(v int32) []int32 {
	return a.inSrc[a.inOff[v]:a.inOff[v+1]]
}

// OutRels returns the relations of v's outgoing edges (a view), parallel
// to OutNeighbors.
func (a *Adjacency) OutRels(v int32) []int32 {
	return a.outRel[a.outOff[v]:a.outOff[v+1]]
}

// InRels returns the relations of v's incoming edges (a view), parallel
// to InNeighbors.
func (a *Adjacency) InRels(v int32) []int32 {
	return a.inRel[a.inOff[v]:a.inOff[v+1]]
}

// OutDegree returns the outgoing degree of v.
func (a *Adjacency) OutDegree(v int32) int { return int(a.outOff[v+1] - a.outOff[v]) }

// InDegree returns the incoming degree of v.
func (a *Adjacency) InDegree(v int32) int { return int(a.inOff[v+1] - a.inOff[v]) }

// AppendOutNeighbors appends the outgoing neighbor list of v to dst.
func (a *Adjacency) AppendOutNeighbors(dst []int32, v int32) []int32 {
	return append(dst, a.OutNeighbors(v)...)
}

// AppendInNeighbors appends the incoming neighbor list of v to dst.
func (a *Adjacency) AppendInNeighbors(dst []int32, v int32) []int32 {
	return append(dst, a.InNeighbors(v)...)
}

// Directions selects which edge directions a sampler follows.
type Directions int

const (
	// Outgoing samples destination nodes of edges leaving v.
	Outgoing Directions = 1 << iota
	// Incoming samples source nodes of edges entering v.
	Incoming
	// Both samples incoming and outgoing neighbors.
	Both = Outgoing | Incoming
)

// Index is the neighborhood-sampling interface shared by the from-scratch
// CSR (*Adjacency) and the incremental bucket-segmented view (*Segmented).
// Both expose identical neighbor ordering for the same in-memory edge set,
// so samplers driven through this interface produce identical samples for
// a given RNG state regardless of which index backs them.
type Index interface {
	NumNodes() int
	NumEdges() int
	OutDegree(v int32) int
	InDegree(v int32) int
	AppendOutNeighbors(dst []int32, v int32) []int32
	AppendInNeighbors(dst []int32, v int32) []int32
	SampleNeighbors(dst []int32, v int32, fanout int, dirs Directions, rng *rand.Rand, sc *SampleScratch) []int32
}

// SampleScratch is the caller-owned workspace of Floyd sampling: a
// generation-stamped membership test over candidate indices (replacing
// the per-call map allocation) plus the segment-gather buffer of the
// bucket-segmented index. The zero value is ready to use; a scratch is
// not safe for concurrent use (each sampler owns one).
type SampleScratch struct {
	stamp []uint32
	gen   uint32
	segs  [][]int32 // non-empty per-bucket segments of the current node
	flat  []int32   // small segmented pools flattened for direct indexing
}

// begin starts a fresh selection over a pool of n candidates.
func (sc *SampleScratch) begin(n int) {
	if len(sc.stamp) < n {
		grown := make([]uint32, n+n/2+8)
		copy(grown, sc.stamp)
		sc.stamp = grown
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: invalidate every stamp
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.gen = 1
	}
}

// taken reports whether candidate t was already chosen, marking it chosen.
func (sc *SampleScratch) taken(t int32) bool {
	if sc.stamp[t] == sc.gen {
		return true
	}
	sc.stamp[t] = sc.gen
	return false
}

// SampleNeighbors appends up to fanout uniformly-sampled distinct neighbors
// of v per enabled direction to dst and returns the extended slice. When a
// direction has no more than fanout neighbors, all of them are returned
// (paper §4.1 semantics). sc is the caller's reusable scratch; nil is
// allowed and allocates a temporary.
func (a *Adjacency) SampleNeighbors(dst []int32, v int32, fanout int, dirs Directions, rng *rand.Rand, sc *SampleScratch) []int32 {
	if sc == nil {
		sc = &SampleScratch{}
	}
	if dirs&Outgoing != 0 {
		dst = sampleFrom(dst, a.OutNeighbors(v), fanout, rng, sc)
	}
	if dirs&Incoming != 0 {
		dst = sampleFrom(dst, a.InNeighbors(v), fanout, rng, sc)
	}
	return dst
}

// sampleFrom appends min(fanout, len(pool)) distinct elements of pool to
// dst using Floyd's sampling algorithm for the subsampled case.
func sampleFrom(dst []int32, pool []int32, fanout int, rng *rand.Rand, sc *SampleScratch) []int32 {
	if len(pool) <= fanout {
		return append(dst, pool...)
	}
	return floydSample(dst, flatPool(pool), len(pool), fanout, rng, sc)
}

// neighborPool is random access into a (possibly segmented) neighbor list.
type neighborPool interface {
	at(t int32) int32
}

// flatPool adapts a contiguous neighbor slice to neighborPool.
type flatPool []int32

func (p flatPool) at(t int32) int32 { return p[t] }

// floydSample appends a uniform fanout-subset of the n-element pool to dst
// via Floyd's algorithm: for j in [n-fanout, n), pick t in [0, j]; take t
// unless already taken, else take j. The generic pool keeps the hot path
// free of interface boxing; the pick sequence for a given rng state is
// identical for every pool backing the same element order.
func floydSample[P neighborPool](dst []int32, pool P, n, fanout int, rng *rand.Rand, sc *SampleScratch) []int32 {
	sc.begin(n)
	for j := n - fanout; j < n; j++ {
		t := int32(rng.Intn(j + 1))
		if sc.taken(t) {
			t = int32(j)
			sc.taken(t)
		}
		dst = append(dst, pool.at(t))
	}
	return dst
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats computes out-degree statistics over all nodes.
func (a *Adjacency) OutDegreeStats() DegreeStats {
	s := DegreeStats{Min: int(^uint(0) >> 1)}
	for v := 0; v < a.numNodes; v++ {
		d := a.OutDegree(int32(v))
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		s.Mean += float64(d)
	}
	if a.numNodes > 0 {
		s.Mean /= float64(a.numNodes)
	} else {
		s.Min = 0
	}
	return s
}
