package graph

import (
	"fmt"
	"math/rand"
)

// This file implements the incremental, bucket-segmented adjacency index.
//
// The trainer's partition buffer holds c resident partitions; the
// in-memory edge set is the c² edge buckets among them. The from-scratch
// path (BuildAdjacency over the flattened buckets) redoes O(c²) buckets of
// counting-sort work on every visit even though a BETA/COMET swap replaces
// only one or two partitions. Here each bucket is counting-sorted into a
// small immutable CSR fragment (BucketFrag) exactly once — fragments are
// built per bucket read and cached by the storage layer — and a visit's
// index is a Segmented view composing the resident c² fragment pointers.
// Swap reconciles the view against the next visit's partition set, reusing
// every fragment whose row and column partitions stay resident, so a
// one-partition swap touches only the O(c) affected row and column.
//
// Ordering contract: a node's neighbor list is the concatenation of its
// per-bucket segments in ascending resident-partition order, which is
// byte-for-byte the order BuildAdjacency produces over edges read
// bucket-by-bucket in ascending (i, j) order (counting sort is stable).
// Samplers therefore draw identical neighbor sequences from either index
// for the same RNG state.

// BucketFrag is the immutable CSR fragment of one edge bucket (i, j): the
// bucket's edges sorted by source over partition i's node range (out view)
// and by destination over partition j's node range (in view). Fragments
// are safe for concurrent readers and are shared across Segmented views.
type BucketFrag struct {
	srcLo, srcHi int32 // node range [srcLo, srcHi) of the source partition
	dstLo, dstHi int32 // node range [dstLo, dstHi) of the destination partition
	outOff       []int32
	outDst       []int32
	outRel       []int32 // relation of each outgoing edge, parallel to outDst
	inOff        []int32
	inSrc        []int32
	inRel        []int32 // relation of each incoming edge, parallel to inSrc
}

// BuildBucketFrag counting-sorts a bucket's edges into a fragment. Every
// edge must have Src in [srcLo, srcHi) and Dst in [dstLo, dstHi) — the
// edge-bucket contract of partition.Buckets. The sort is stable, so
// within-bucket neighbor order matches BuildAdjacency's; edge relations
// ride the same sort into parallel arrays, extending the ordering
// contract to typed edges.
func BuildBucketFrag(srcLo, srcHi, dstLo, dstHi int32, edges []Edge) *BucketFrag {
	f := &BucketFrag{
		srcLo: srcLo, srcHi: srcHi, dstLo: dstLo, dstHi: dstHi,
		outOff: make([]int32, srcHi-srcLo+1),
		inOff:  make([]int32, dstHi-dstLo+1),
		outDst: make([]int32, len(edges)),
		outRel: make([]int32, len(edges)),
		inSrc:  make([]int32, len(edges)),
		inRel:  make([]int32, len(edges)),
	}
	for _, e := range edges {
		f.outOff[e.Src-srcLo+1]++
		f.inOff[e.Dst-dstLo+1]++
	}
	for i := 1; i < len(f.outOff); i++ {
		f.outOff[i] += f.outOff[i-1]
	}
	for i := 1; i < len(f.inOff); i++ {
		f.inOff[i] += f.inOff[i-1]
	}
	outCur := make([]int32, srcHi-srcLo)
	inCur := make([]int32, dstHi-dstLo)
	for _, e := range edges {
		s, d := e.Src-srcLo, e.Dst-dstLo
		o := f.outOff[s] + outCur[s]
		f.outDst[o] = e.Dst
		f.outRel[o] = e.Rel
		outCur[s]++
		i := f.inOff[d] + inCur[d]
		f.inSrc[i] = e.Src
		f.inRel[i] = e.Rel
		inCur[d]++
	}
	return f
}

// NumEdges returns the number of edges in the fragment.
func (f *BucketFrag) NumEdges() int { return len(f.outDst) }

// outNbrs returns v's outgoing-neighbor segment (empty outside the range).
func (f *BucketFrag) outNbrs(v int32) []int32 {
	if v < f.srcLo || v >= f.srcHi {
		return nil
	}
	return f.outNbrsIn(v)
}

// outNbrsIn is outNbrs without the range check, for fragments reached
// through the node's own partition row (v ∈ [srcLo, srcHi) by
// construction).
func (f *BucketFrag) outNbrsIn(v int32) []int32 {
	i := v - f.srcLo
	return f.outDst[f.outOff[i]:f.outOff[i+1]]
}

// inNbrs returns v's incoming-neighbor segment (empty outside the range).
func (f *BucketFrag) inNbrs(v int32) []int32 {
	if v < f.dstLo || v >= f.dstHi {
		return nil
	}
	return f.inNbrsIn(v)
}

// inNbrsIn is inNbrs without the range check, for fragments reached
// through the node's own partition column.
func (f *BucketFrag) inNbrsIn(v int32) []int32 {
	i := v - f.dstLo
	return f.inSrc[f.inOff[i]:f.inOff[i+1]]
}

// outRels returns the relations parallel to outNbrs (empty outside the
// range).
func (f *BucketFrag) outRels(v int32) []int32 {
	if v < f.srcLo || v >= f.srcHi {
		return nil
	}
	i := v - f.srcLo
	return f.outRel[f.outOff[i]:f.outOff[i+1]]
}

// inRels returns the relations parallel to inNbrs (empty outside the
// range).
func (f *BucketFrag) inRels(v int32) []int32 {
	if v < f.dstLo || v >= f.dstHi {
		return nil
	}
	i := v - f.dstLo
	return f.inRel[f.inOff[i]:f.inOff[i+1]]
}

// FragSource provides bucket fragments on demand (the storage layer's
// fragment cache). Frag must return an immutable fragment for bucket
// (i, j); repeated calls for the same bucket should be cheap.
type FragSource interface {
	// NumNodes is the global node-ID space size.
	NumNodes() int
	// NumPartitions is p, the physical partition count.
	NumPartitions() int
	// PartSize is the contiguous per-partition node count.
	PartSize() int
	// Frag returns the fragment of edge bucket (i, j).
	Frag(i, j int) (*BucketFrag, error)
}

// Segmented is a visit-level adjacency view over the resident partitions'
// bucket fragments. A view is immutable once built (safe for concurrent
// samplers); Swap derives the next visit's view from it, sharing every
// fragment both visits have resident. It implements Index with the same
// neighbor ordering as BuildAdjacency over the equivalent edge set.
type Segmented struct {
	src      FragSource
	numNodes int
	partSize int
	mem      []int   // sorted resident partitions
	memIdx   []int32 // partition -> index into mem, -1 when absent
	// rows[a] lists frag(mem[a], mem[b]) for b ascending — node v in
	// partition mem[a] draws its outgoing segments from rows[a] in order.
	// cols[a] lists frag(mem[b], mem[a]) for b ascending — the incoming
	// segments of nodes in partition mem[a]. Both share frag pointers.
	rows     [][]*BucketFrag
	cols     [][]*BucketFrag
	numEdges int
}

// NewSegmented returns an empty view (no resident partitions) over src;
// Swap builds the first visit's view from it.
func NewSegmented(src FragSource) *Segmented {
	return &Segmented{
		src:      src,
		numNodes: src.NumNodes(),
		partSize: src.PartSize(),
		memIdx:   newMemIdx(src.NumPartitions(), nil),
	}
}

func newMemIdx(p int, mem []int) []int32 {
	idx := make([]int32, p)
	for i := range idx {
		idx[i] = -1
	}
	for a, m := range mem {
		idx[m] = int32(a)
	}
	return idx
}

// Swap returns the view for the given resident partition set, reusing
// every fragment of s whose bucket stays resident and fetching only the
// fragments of admitted rows and columns from the source. mem must be
// sorted ascending (as policy visits are); s is left untouched, so views
// of in-flight pipelined visits remain valid.
func (s *Segmented) Swap(mem []int) (*Segmented, error) {
	p := len(s.memIdx)
	ns := &Segmented{
		src:      s.src,
		numNodes: s.numNodes,
		partSize: s.partSize,
		mem:      append([]int(nil), mem...),
		rows:     make([][]*BucketFrag, len(mem)),
		cols:     make([][]*BucketFrag, len(mem)),
	}
	for a, m := range mem {
		if m < 0 || m >= p {
			return nil, fmt.Errorf("graph: partition %d out of range [0,%d)", m, p)
		}
		if a > 0 && mem[a-1] >= m {
			return nil, fmt.Errorf("graph: resident set %v not sorted unique", mem)
		}
	}
	ns.memIdx = newMemIdx(p, ns.mem)
	for a := range ns.mem {
		ns.rows[a] = make([]*BucketFrag, len(mem))
		ns.cols[a] = make([]*BucketFrag, len(mem))
	}
	for a, i := range ns.mem {
		oi := int32(-1)
		if i < len(s.memIdx) {
			oi = s.memIdx[i]
		}
		for b, j := range ns.mem {
			var f *BucketFrag
			if oi >= 0 {
				if oj := s.memIdx[j]; oj >= 0 {
					f = s.rows[oi][oj]
				}
			}
			if f == nil {
				var err error
				f, err = s.src.Frag(i, j)
				if err != nil {
					return nil, fmt.Errorf("graph: fragment (%d,%d): %w", i, j, err)
				}
			}
			ns.rows[a][b] = f
			ns.cols[b][a] = f
			ns.numEdges += f.NumEdges()
		}
	}
	return ns, nil
}

// Mem returns the sorted resident partition set (a view; do not mutate).
func (s *Segmented) Mem() []int { return s.mem }

// NumNodes implements Index: the global node-ID space size.
func (s *Segmented) NumNodes() int { return s.numNodes }

// NumEdges implements Index: edges across all resident buckets.
func (s *Segmented) NumEdges() int { return s.numEdges }

// segsOf returns the ordered fragment list serving v for the given
// direction, or nil when v's partition is not resident.
func (s *Segmented) segsOf(v int32, out bool) []*BucketFrag {
	a := s.memIdx[int(v)/s.partSize]
	if a < 0 {
		return nil
	}
	if out {
		return s.rows[a]
	}
	return s.cols[a]
}

// OutDegree implements Index.
func (s *Segmented) OutDegree(v int32) int {
	n := 0
	for _, f := range s.segsOf(v, true) {
		n += len(f.outNbrs(v))
	}
	return n
}

// InDegree implements Index.
func (s *Segmented) InDegree(v int32) int {
	n := 0
	for _, f := range s.segsOf(v, false) {
		n += len(f.inNbrs(v))
	}
	return n
}

// AppendOutNeighbors implements Index: segments concatenate in ascending
// resident-partition order, matching BuildAdjacency's neighbor order.
func (s *Segmented) AppendOutNeighbors(dst []int32, v int32) []int32 {
	for _, f := range s.segsOf(v, true) {
		dst = append(dst, f.outNbrs(v)...)
	}
	return dst
}

// AppendInNeighbors implements Index.
func (s *Segmented) AppendInNeighbors(dst []int32, v int32) []int32 {
	for _, f := range s.segsOf(v, false) {
		dst = append(dst, f.inNbrs(v)...)
	}
	return dst
}

// AppendOutRels appends the relations of v's outgoing edges, parallel to
// AppendOutNeighbors (same segment order, same stable sort).
func (s *Segmented) AppendOutRels(dst []int32, v int32) []int32 {
	for _, f := range s.segsOf(v, true) {
		dst = append(dst, f.outRels(v)...)
	}
	return dst
}

// AppendInRels appends the relations of v's incoming edges, parallel to
// AppendInNeighbors.
func (s *Segmented) AppendInRels(dst []int32, v int32) []int32 {
	for _, f := range s.segsOf(v, false) {
		dst = append(dst, f.inRels(v)...)
	}
	return dst
}

// segPool is random access into a node's concatenated non-empty
// neighbor segments (gathered once per node by sampleDir).
type segPool [][]int32

func (p segPool) at(t int32) int32 {
	for _, seg := range p {
		if int(t) < len(seg) {
			return seg[t]
		}
		t -= int32(len(seg))
	}
	panic("graph: segmented pool index out of range")
}

// SampleNeighbors implements Index with the same semantics and — for a
// given rng state — the same pick sequence as (*Adjacency).SampleNeighbors
// over the equivalent edge set.
func (s *Segmented) SampleNeighbors(dst []int32, v int32, fanout int, dirs Directions, rng *rand.Rand, sc *SampleScratch) []int32 {
	if sc == nil {
		sc = &SampleScratch{}
	}
	if dirs&Outgoing != 0 {
		dst = s.sampleDir(dst, v, fanout, true, rng, sc)
	}
	if dirs&Incoming != 0 {
		dst = s.sampleDir(dst, v, fanout, false, rng, sc)
	}
	return dst
}

func (s *Segmented) sampleDir(dst []int32, v int32, fanout int, out bool, rng *rand.Rand, sc *SampleScratch) []int32 {
	// Gather the node's non-empty segments once; most nodes touch far
	// fewer than c buckets, and single-segment nodes sample at flat-CSR
	// speed below.
	segs := sc.segs[:0]
	n := 0
	for _, f := range s.segsOf(v, out) {
		var seg []int32
		if out {
			seg = f.outNbrsIn(v)
		} else {
			seg = f.inNbrsIn(v)
		}
		if len(seg) > 0 {
			segs = append(segs, seg)
			n += len(seg)
		}
	}
	sc.segs = segs
	if n <= fanout {
		for _, seg := range segs {
			dst = append(dst, seg...)
		}
		return dst
	}
	if len(segs) == 1 {
		return floydSample(dst, flatPool(segs[0]), n, fanout, rng, sc)
	}
	if n <= flattenThreshold {
		// Small multi-segment pools (the common case under power-law
		// degrees) are cheaper to copy once than to scan per draw.
		flat := sc.flat[:0]
		for _, seg := range segs {
			flat = append(flat, seg...)
		}
		sc.flat = flat
		return floydSample(dst, flatPool(flat), n, fanout, rng, sc)
	}
	return floydSample(dst, segPool(segs), n, fanout, rng, sc)
}

// flattenThreshold is the pool size below which a multi-segment neighbor
// list is copied contiguous before Floyd sampling instead of scanned
// per draw.
const flattenThreshold = 256
