package graph

import (
	"math/rand"
	"testing"
)

// memFrags is an in-memory FragSource over a contiguous partitioning,
// counting Frag calls so tests can assert swap incrementality.
type memFrags struct {
	numNodes, numParts, partSize int
	buckets                      [][]Edge
	calls                        int
}

func newMemFrags(numNodes, numParts int, edges []Edge) *memFrags {
	m := &memFrags{
		numNodes: numNodes,
		numParts: numParts,
		partSize: (numNodes + numParts - 1) / numParts,
		buckets:  make([][]Edge, numParts*numParts),
	}
	for _, e := range edges {
		b := int(e.Src)/m.partSize*numParts + int(e.Dst)/m.partSize
		m.buckets[b] = append(m.buckets[b], e)
	}
	return m
}

func (m *memFrags) NumNodes() int      { return m.numNodes }
func (m *memFrags) NumPartitions() int { return m.numParts }
func (m *memFrags) PartSize() int      { return m.partSize }

func (m *memFrags) partRange(i int) (int32, int32) {
	lo := min(i*m.partSize, m.numNodes)
	hi := min(lo+m.partSize, m.numNodes)
	return int32(lo), int32(hi)
}

func (m *memFrags) Frag(i, j int) (*BucketFrag, error) {
	m.calls++
	srcLo, srcHi := m.partRange(i)
	dstLo, dstHi := m.partRange(j)
	return BuildBucketFrag(srcLo, srcHi, dstLo, dstHi, m.buckets[i*m.numParts+j]), nil
}

// memEdgesOf flattens the pairwise buckets of mem in ascending (i, j)
// order — exactly the edge order the trainers' from-scratch path fed to
// BuildAdjacency (readMemEdges iterated the sorted resident set twice).
func (m *memFrags) memEdgesOf(mem []int) []Edge {
	var edges []Edge
	for _, i := range mem {
		for _, j := range mem {
			edges = append(edges, m.buckets[i*m.numParts+j]...)
		}
	}
	return edges
}

// randomMemSet returns a sorted random subset of [0, p) of size c.
func randomMemSet(rng *rand.Rand, p, c int) []int {
	mem := append([]int(nil), rng.Perm(p)[:c]...)
	sortInts(mem)
	return mem
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// swapOne replaces one random resident partition with a random absent one.
func swapOne(rng *rand.Rand, mem []int, p int) []int {
	in := make(map[int]bool, len(mem))
	for _, m := range mem {
		in[m] = true
	}
	var out []int
	for i := 0; i < p; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	next := append([]int(nil), mem...)
	if len(out) > 0 {
		next[rng.Intn(len(next))] = out[rng.Intn(len(out))]
	}
	sortInts(next)
	return next
}

// TestSegmentedMatchesBuildAdjacency is the differential test of the
// ordering contract: across a randomized swap sequence, the incremental
// view must expose the same neighbors in the same order — and therefore
// draw the same samples for the same RNG state — as a from-scratch
// BuildAdjacency over the flattened resident buckets.
func TestSegmentedMatchesBuildAdjacency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		n := 150 + rng.Intn(200)
		p := 4 + rng.Intn(5)
		nEdges := 500 + rng.Intn(2000)
		edges := make([]Edge, nEdges)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(6)), Dst: int32(rng.Intn(n))}
		}
		src := newMemFrags(n, p, edges)
		c := 2 + rng.Intn(p-1)
		if c > p {
			c = p
		}

		seg := NewSegmented(src)
		mem := randomMemSet(rng, p, c)
		for step := 0; step < 8; step++ {
			var err error
			seg, err = seg.Swap(mem)
			if err != nil {
				t.Fatal(err)
			}
			ref := BuildAdjacency(n, src.memEdgesOf(mem))
			if seg.NumEdges() != ref.NumEdges() {
				t.Fatalf("seed %d step %d: NumEdges %d != %d", seed, step, seg.NumEdges(), ref.NumEdges())
			}
			var scA, scB SampleScratch
			rngA := rand.New(rand.NewSource(seed*1000 + int64(step)))
			rngB := rand.New(rand.NewSource(seed*1000 + int64(step)))
			for v := int32(0); v < int32(n); v++ {
				gotOut := seg.AppendOutNeighbors(nil, v)
				wantOut := ref.OutNeighbors(v)
				if !equalInt32(gotOut, wantOut) {
					t.Fatalf("seed %d step %d mem %v: out(%d) = %v, want %v", seed, step, mem, v, gotOut, wantOut)
				}
				gotIn := seg.AppendInNeighbors(nil, v)
				if !equalInt32(gotIn, ref.InNeighbors(v)) {
					t.Fatalf("seed %d step %d: in(%d) = %v, want %v", seed, step, v, gotIn, ref.InNeighbors(v))
				}
				// Relations ride the same stable sort: the parallel rel
				// arrays must concatenate in the same order as the
				// neighbor lists.
				if !equalInt32(seg.AppendOutRels(nil, v), ref.OutRels(v)) {
					t.Fatalf("seed %d step %d: outRels(%d) mismatch", seed, step, v)
				}
				if !equalInt32(seg.AppendInRels(nil, v), ref.InRels(v)) {
					t.Fatalf("seed %d step %d: inRels(%d) mismatch", seed, step, v)
				}
				if seg.OutDegree(v) != ref.OutDegree(v) || seg.InDegree(v) != ref.InDegree(v) {
					t.Fatalf("seed %d step %d: degree mismatch at %d", seed, step, v)
				}
				fanout := 1 + rngA.Intn(4) // consumes the same rngB draw below
				_ = rngB.Intn(4)
				gotS := seg.SampleNeighbors(nil, v, fanout, Both, rngA, &scA)
				wantS := ref.SampleNeighbors(nil, v, fanout, Both, rngB, &scB)
				if !equalInt32(gotS, wantS) {
					t.Fatalf("seed %d step %d: sample(%d, fanout %d) = %v, want %v (identical rng state)",
						seed, step, v, fanout, gotS, wantS)
				}
			}
			mem = swapOne(rng, mem, p)
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegmentedSwapIsIncremental: a one-partition swap must fetch only
// the admitted partition's row and column fragments (2c-1 buckets), not
// the full c².
func TestSegmentedSwapIsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([]Edge, 3000)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(400)), Dst: int32(rng.Intn(400))}
	}
	const p, c = 8, 4
	src := newMemFrags(400, p, edges)
	seg, err := NewSegmented(src).Swap([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if src.calls != c*c {
		t.Fatalf("initial fill fetched %d fragments, want %d", src.calls, c*c)
	}
	src.calls = 0
	seg, err = seg.Swap([]int{0, 1, 2, 5}) // evict 3, admit 5
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*c - 1; src.calls != want {
		t.Fatalf("one-partition swap fetched %d fragments, want %d", src.calls, want)
	}
	src.calls = 0
	if _, err := seg.Swap([]int{0, 1, 2, 5}); err != nil { // no-op swap
		t.Fatal(err)
	}
	if src.calls != 0 {
		t.Fatalf("identical swap fetched %d fragments, want 0", src.calls)
	}
}

// TestSegmentedNonResident: nodes of non-resident partitions have no
// neighbors in the view.
func TestSegmentedNonResident(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 9}, {Src: 9, Dst: 0}}
	src := newMemFrags(10, 5, edges)
	seg, err := NewSegmented(src).Swap([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if seg.OutDegree(9) != 0 || seg.InDegree(9) != 0 {
		t.Fatal("non-resident node must have zero degree")
	}
	if got := seg.AppendOutNeighbors(nil, 9); len(got) != 0 {
		t.Fatalf("non-resident neighbors = %v", got)
	}
	// Edges crossing into non-resident partitions are absent too.
	if seg.OutDegree(0) != 0 || seg.InDegree(0) != 0 {
		t.Fatal("cross-partition edge leaked into the view")
	}
}

func TestSegmentedSwapRejectsBadSets(t *testing.T) {
	src := newMemFrags(10, 5, nil)
	seg := NewSegmented(src)
	if _, err := seg.Swap([]int{1, 0}); err == nil {
		t.Fatal("unsorted set accepted")
	}
	if _, err := seg.Swap([]int{0, 0}); err == nil {
		t.Fatal("duplicate set accepted")
	}
	if _, err := seg.Swap([]int{0, 7}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

// TestSampleNeighborsZeroAlloc: with a caller-owned scratch and a
// preallocated destination, Floyd sampling allocates nothing — on both
// the flat and the segmented index.
func TestSampleNeighborsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := make([]Edge, 4000)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(100)), Dst: int32(rng.Intn(100))}
	}
	adj := BuildAdjacency(100, edges)
	src := newMemFrags(100, 4, edges)
	seg, err := NewSegmented(src).Swap([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var sc SampleScratch
	dst := make([]int32, 0, 64)
	for _, idx := range []Index{adj, seg} {
		idx := idx
		// Warm the scratch, then demand zero steady-state allocations.
		dst = idx.SampleNeighbors(dst[:0], 5, 8, Both, rng, &sc)
		allocs := testing.AllocsPerRun(200, func() {
			dst = idx.SampleNeighbors(dst[:0], 5, 8, Both, rng, &sc)
		})
		if allocs != 0 {
			t.Fatalf("%T.SampleNeighbors allocates %.1f/op, want 0", idx, allocs)
		}
	}
}
