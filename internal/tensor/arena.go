package tensor

// Arena is a bump allocator for the tensors of one training step. A trainer
// owns one Arena per compute stage: every activation and gradient buffer of
// a mini batch is carved out of the arena's slabs, and Reset at the end of
// the batch recycles all of them at once. After warm-up (the first few
// batches grow the slab list to the steady-state footprint) an
// Alloc/Reset cycle performs zero heap allocations.
//
// Ownership rules:
//
//   - Every *Tensor returned by Alloc — and, transitively, every tensor a
//     Tape backed by this arena produces (op outputs, gradients) — is owned
//     by the arena and is invalidated by Reset. Consume values and
//     gradients (optimizer steps, metrics, write-back) before resetting.
//   - To keep data beyond Reset, Clone it: Clone always heap-allocates.
//   - An Arena is not safe for concurrent use. It belongs to exactly one
//     goroutine at a time — in training, the compute stage; the sampling
//     workers heap-allocate their own batch buffers.
//
// Alloc zeroes the returned buffer, matching New's semantics, so kernels
// that accumulate into fresh outputs behave identically on both paths.
type Arena struct {
	slabs [][]float32
	slab  int // index of the slab currently carved
	off   int // floats consumed from slabs[slab]

	// Tensor headers are pooled in fixed-size chunks so previously returned
	// pointers stay valid while the pool grows.
	hdrs   [][]Tensor
	hchunk int
	hoff   int

	resets int64
}

const (
	// arenaSlabFloats is the default slab size (1 MiB of float32s).
	arenaSlabFloats = 1 << 18
	// arenaHdrChunk is the number of Tensor headers per pool chunk.
	arenaHdrChunk = 256
)

// NewArena returns an empty arena; slabs are allocated on demand.
func NewArena() *Arena { return &Arena{} }

// Alloc returns a zeroed rows x cols tensor owned by the arena.
func (a *Arena) Alloc(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic("tensor: Arena.Alloc negative shape")
	}
	t := a.hdr()
	t.Rows, t.Cols = rows, cols
	t.Data = a.take(rows * cols)
	return t
}

// Reset recycles every tensor handed out since the previous Reset. The
// slabs and header chunks are retained, so a steady-state Alloc/Reset cycle
// does not touch the heap.
func (a *Arena) Reset() {
	a.slab, a.off = 0, 0
	a.hchunk, a.hoff = 0, 0
	a.resets++
}

// Footprint returns the total bytes held by the arena's slabs.
func (a *Arena) Footprint() int {
	n := 0
	for _, s := range a.slabs {
		n += len(s) * 4
	}
	return n
}

// Resets returns the number of completed Reset cycles (one per batch in
// steady-state training), for tests and diagnostics.
func (a *Arena) Resets() int64 { return a.resets }

// take carves n zeroed floats out of the slab list, growing it if needed.
func (a *Arena) take(n int) []float32 {
	if n == 0 {
		return nil
	}
	for a.slab < len(a.slabs) && len(a.slabs[a.slab])-a.off < n {
		a.slab++
		a.off = 0
	}
	if a.slab == len(a.slabs) {
		size := arenaSlabFloats
		if n > size {
			size = n
		}
		a.slabs = append(a.slabs, make([]float32, size))
		a.off = 0
	}
	buf := a.slabs[a.slab][a.off : a.off+n : a.off+n]
	a.off += n
	clear(buf)
	return buf
}

// hdr returns a pooled Tensor header.
func (a *Arena) hdr() *Tensor {
	if a.hchunk == len(a.hdrs) {
		a.hdrs = append(a.hdrs, make([]Tensor, arenaHdrChunk))
	}
	t := &a.hdrs[a.hchunk][a.hoff]
	a.hoff++
	if a.hoff == arenaHdrChunk {
		a.hchunk++
		a.hoff = 0
	}
	return t
}
