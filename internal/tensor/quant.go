package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Quantized tables. A QTable holds a read-only [Rows x Cols] matrix whose
// elements are stored compressed — IEEE 754 binary16 ("fp16") or per-row
// affine uint8 ("int8") — alongside the per-row dequantization parameters.
//
// Quantization happens exactly once, when a dataset is ingested; every
// consumer dequantizes the same stored bytes through the same pure
// element function. The fused kernels below (GatherDequant,
// GatherMatMulTBDequant) therefore satisfy the package's bitwise
// determinism contract: their results are exactly equal to dequantizing
// the whole table to float32 and running the plain kernels, at every
// worker count — parallelism only splits output rows, never a sum.

// QuantKind names a storage encoding for table elements.
type QuantKind uint8

const (
	// QuantNone is plain float32 storage (4 bytes/element).
	QuantNone QuantKind = iota
	// QuantF16 is IEEE 754 binary16 storage (2 bytes/element,
	// little-endian), quantized with round-to-nearest-even.
	QuantF16
	// QuantI8 is per-row affine uint8 storage (1 byte/element) with a
	// float32 (scale, zero) pair per row: v ≈ zero + scale*q.
	QuantI8
)

// ParseQuant maps the user-facing mode names ("", "fp16", "int8") to a
// QuantKind.
func ParseQuant(s string) (QuantKind, error) {
	switch s {
	case "":
		return QuantNone, nil
	case "fp16":
		return QuantF16, nil
	case "int8":
		return QuantI8, nil
	}
	return QuantNone, fmt.Errorf("tensor: unknown quantization mode %q (want fp16 or int8)", s)
}

// String returns the mode name ParseQuant accepts.
func (k QuantKind) String() string {
	switch k {
	case QuantF16:
		return "fp16"
	case QuantI8:
		return "int8"
	}
	return ""
}

// ElemBytes returns the stored size of one element.
func (k QuantKind) ElemBytes() int {
	switch k {
	case QuantF16:
		return 2
	case QuantI8:
		return 1
	}
	return 4
}

// F16FromF32 converts f to IEEE 754 binary16 with round-to-nearest-even,
// the quantization step. NaN maps to a quiet NaN, overflow to ±Inf.
func F16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff
	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp > 142: // 2^16 and above overflow binary16's max exponent
		return sign | 0x7c00
	case exp < 103: // below half the smallest subnormal: rounds to zero
		return sign
	case exp <= 112: // subnormal halves: shift the implicit 1 into the mantissa
		man |= 0x800000
		shift := uint32(126 - exp)
		q := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return sign | uint16(q) // carry into exponent 1 is correct encoding
	default: // normal: round 23-bit mantissa to 10 bits
		q := man >> 13
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && q&1 == 1) {
			q++
		}
		// A mantissa carry (q == 0x400) bumps the exponent by one, which
		// the addition below encodes naturally (and can reach Inf).
		return sign | uint16(uint32(exp-112)<<10+q)
	}
}

// F16ToF32 widens a binary16 bit pattern to float32 exactly (every
// binary16 value is representable in float32).
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	case man == 0: // zero
		return math.Float32frombits(sign)
	default: // subnormal: normalize by shifting the leading 1 into place
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	}
}

// deqF16 dequantizes one little-endian binary16 element. Shared by the
// fused kernels and the Ref* references so both walk the identical
// element function.
func deqF16(raw []byte) float32 {
	return F16ToF32(binary.LittleEndian.Uint16(raw))
}

// deqI8 dequantizes one affine uint8 element.
func deqI8(q byte, scale, zero float32) float32 {
	return zero + scale*float32(q)
}

// QTable is a quantized read-only table: Raw holds Rows*Cols elements of
// Kind.ElemBytes() each in row-major order; for QuantI8, Scale and Zero
// hold the per-row affine parameters.
type QTable struct {
	Kind       QuantKind
	Rows, Cols int
	Raw        []byte
	Scale      []float32 // per row; QuantI8 only
	Zero       []float32 // per row; QuantI8 only
}

// NewQTable returns an empty quantized table of the given shape. Kind
// must be QuantF16 or QuantI8.
func NewQTable(kind QuantKind, rows, cols int) *QTable {
	if kind != QuantF16 && kind != QuantI8 {
		panic(fmt.Sprintf("tensor: NewQTable kind %d is not quantized", kind))
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	q := &QTable{Kind: kind, Rows: rows, Cols: cols, Raw: make([]byte, rows*cols*kind.ElemBytes())}
	if kind == QuantI8 {
		q.Scale = make([]float32, rows)
		q.Zero = make([]float32, rows)
	}
	return q
}

// Quantize compresses t into a fresh QTable.
func Quantize(t *Tensor, kind QuantKind) *QTable {
	q := NewQTable(kind, t.Rows, t.Cols)
	for i := 0; i < t.Rows; i++ {
		q.QuantizeRow(i, t.Row(i))
	}
	return q
}

// QuantizeRow compresses row into row i of q. For QuantI8 the affine
// parameters are chosen from the row's min/max so that both endpoints are
// representable; a constant row gets scale 0 and dequantizes exactly.
func (q *QTable) QuantizeRow(i int, row []float32) {
	if len(row) != q.Cols {
		panic(fmt.Sprintf("tensor: QuantizeRow width %d, table width %d", len(row), q.Cols))
	}
	switch q.Kind {
	case QuantF16:
		raw := q.Raw[i*q.Cols*2:]
		for j, v := range row {
			binary.LittleEndian.PutUint16(raw[j*2:], F16FromF32(v))
		}
	case QuantI8:
		if len(row) == 0 {
			return
		}
		lo, hi := row[0], row[0]
		for _, v := range row[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale := (hi - lo) / 255
		q.Scale[i], q.Zero[i] = scale, lo
		raw := q.Raw[i*q.Cols:]
		for j, v := range row {
			var u float64
			if scale != 0 {
				u = math.Round(float64((v - lo) / scale))
			}
			if u < 0 {
				u = 0
			} else if u > 255 {
				u = 255
			}
			raw[j] = byte(u)
		}
	}
}

// DequantRowInto decompresses row i of q into dst (length Cols).
func (q *QTable) DequantRowInto(i int, dst []float32) {
	if len(dst) != q.Cols {
		panic(fmt.Sprintf("tensor: DequantRowInto width %d, table width %d", len(dst), q.Cols))
	}
	switch q.Kind {
	case QuantF16:
		raw := q.Raw[i*q.Cols*2:]
		for j := range dst {
			dst[j] = deqF16(raw[j*2:])
		}
	case QuantI8:
		raw := q.Raw[i*q.Cols : i*q.Cols+q.Cols]
		scale, zero := q.Scale[i], q.Zero[i]
		for j, u := range raw {
			dst[j] = deqI8(u, scale, zero)
		}
	}
}

// Dequant decompresses the whole table to float32.
func (q *QTable) Dequant() *Tensor {
	t := New(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		q.DequantRowInto(i, t.Row(i))
	}
	return t
}

// GatherDequant returns the dequantized rows of q selected by idx, in
// order — Gather(q.Dequant(), idx) without materializing the float32
// table.
func GatherDequant(q *QTable, idx []int32) *Tensor {
	return (*Compute)(nil).GatherDequant(q, idx)
}

func gatherDequantRange(out *Tensor, q *QTable, idx []int32, start, end int) {
	for i := start; i < end; i++ {
		q.DequantRowInto(int(idx[i]), out.Data[i*q.Cols:(i+1)*q.Cols])
	}
}

// GatherDequant returns the dequantized rows of q selected by idx.
func (c *Compute) GatherDequant(q *QTable, idx []int32) *Tensor {
	out := c.alloc(len(idx), q.Cols)
	if c.serialFor(len(idx), len(idx)*q.Cols) {
		gatherDequantRange(out, q, idx, 0, len(idx))
		return out
	}
	c.fanOut(len(idx), func(s, e int) { gatherDequantRange(out, q, idx, s, e) })
	return out
}

// GatherMatMulTBDequant is GatherMatMulTB against a quantized table:
// out[i][j] = ⟨a[i], dequant(q[idx[j]])⟩, fused so neither the gathered
// matrix nor the dequantized table is materialized. Exactly equal to
// GatherMatMulTB(a, q.Dequant(), idx).
func GatherMatMulTBDequant(a *Tensor, q *QTable, idx []int32) *Tensor {
	return (*Compute)(nil).GatherMatMulTBDequant(a, q, idx)
}

// gatherMatMulTBDequantRange computes the output columns [jstart, jend):
// each looked-up row is dequantized exactly once into a scratch buffer
// (paired, like gatherMatMulTBRange's looked-up-rows-outer loop), then
// dotted against every query row. Parallelism splits the looked-up axis,
// so the whole op dequantizes each candidate row once no matter the
// worker count — and each output element is still one zero-seeded
// ascending-p dot product, so results are bitwise identical to
// GatherMatMulTB over the materialized table at any fan-out.
func gatherMatMulTBDequantRange(out, a *Tensor, q *QTable, idx []int32, jstart, jend int) {
	n, k, m := a.Rows, a.Cols, len(idx)
	buf := make([]float32, 2*k)
	r0, r1 := buf[:k:k], buf[k:]
	j := jstart
	for ; j+1 < jend; j += 2 {
		q.DequantRowInto(int(idx[j]), r0)
		q.DequantRowInto(int(idx[j+1]), r1)
		i := 0
		// 2x2 register tile: the dequantized pair is reused across two
		// query rows per pass. Each accumulator remains one zero-seeded
		// ascending-p sum, so tiling does not perturb a single bit.
		for ; i+1 < n; i += 2 {
			a0 := a.Data[i*k : (i+1)*k : (i+1)*k]
			a1 := a.Data[(i+1)*k : (i+2)*k : (i+2)*k]
			var s00, s01, s10, s11 float32
			for p, av := range a0 {
				bv0, bv1 := r0[p], r1[p]
				s00 += av * bv0
				s01 += av * bv1
				s10 += a1[p] * bv0
				s11 += a1[p] * bv1
			}
			out.Data[i*m+j] = s00
			out.Data[i*m+j+1] = s01
			out.Data[(i+1)*m+j] = s10
			out.Data[(i+1)*m+j+1] = s11
		}
		for ; i < n; i++ {
			arow := a.Data[i*k : (i+1)*k]
			var s0, s1 float32
			for p, av := range arow {
				s0 += av * r0[p]
				s1 += av * r1[p]
			}
			out.Data[i*m+j] = s0
			out.Data[i*m+j+1] = s1
		}
	}
	if j < jend {
		q.DequantRowInto(int(idx[j]), r0)
		for i := 0; i < n; i++ {
			arow := a.Data[i*k : (i+1)*k]
			var s float32
			for p, av := range arow {
				s += av * r0[p]
			}
			out.Data[i*m+j] = s
		}
	}
}

// GatherMatMulTBDequant computes out[i][j] = ⟨a[i], dequant(q[idx[j]])⟩.
func (c *Compute) GatherMatMulTBDequant(a *Tensor, q *QTable, idx []int32) *Tensor {
	if a.Cols != q.Cols {
		panic(fmt.Sprintf("tensor: GatherMatMulTBDequant width mismatch %d vs %d", a.Cols, q.Cols))
	}
	n, k, m := a.Rows, a.Cols, len(idx)
	out := c.alloc(n, m)
	if c.serialFor(m, n*k*m) {
		gatherMatMulTBDequantRange(out, a, q, idx, 0, m)
		return out
	}
	c.fanOut(m, func(s, e int) { gatherMatMulTBDequantRange(out, a, q, idx, s, e) })
	return out
}
