package tensor

// Naive reference kernels, retained on purpose: the conformance tests check
// every parallel, blocked, and fused kernel against these on randomized
// shapes, and cmd/benchkernels reports optimized-vs-naive throughput so the
// speedup of the real kernels stays measured rather than assumed.
//
// Each reference accumulates in the same element order as its optimized
// counterpart (ascending reduction index), so conformance can demand exact
// equality, not epsilon closeness.

// RefMatMul is the textbook ijp triple loop with strided element access.
func RefMatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("tensor: RefMatMul shape mismatch")
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// RefMatMulTransposeA computes aᵀ @ b naively.
func RefMatMulTransposeA(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic("tensor: RefMatMulTransposeA shape mismatch")
	}
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for p := 0; p < a.Rows; p++ {
				s += a.At(p, i) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// RefMatMulTransposeB computes a @ bᵀ naively.
func RefMatMulTransposeB(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic("tensor: RefMatMulTransposeB shape mismatch")
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(j, p)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// RefGather selects rows one element at a time.
func RefGather(a *Tensor, idx []int32) *Tensor {
	out := New(len(idx), a.Cols)
	for i, id := range idx {
		for j := 0; j < a.Cols; j++ {
			out.Set(i, j, a.At(int(id), j))
		}
	}
	return out
}

// RefSegmentSum sums segments row by row.
func RefSegmentSum(a *Tensor, offsets []int32) *Tensor {
	ns := checkOffsets(offsets, a.Rows)
	out := New(ns, a.Cols)
	for s := 0; s < ns; s++ {
		end := segmentEnd(offsets, s, a.Rows)
		for r := int(offsets[s]); r < end; r++ {
			for j := 0; j < a.Cols; j++ {
				out.Set(s, j, out.At(s, j)+a.At(r, j))
			}
		}
	}
	return out
}

// RefSegmentMean averages segments via RefSegmentSum.
func RefSegmentMean(a *Tensor, offsets []int32) *Tensor {
	out := RefSegmentSum(a, offsets)
	scaleSegmentMean(out, offsets, a.Rows)
	return out
}

// RefGatherSegmentSum is the unfused composition the fused kernel replaces.
func RefGatherSegmentSum(a *Tensor, idx []int32, offsets []int32) *Tensor {
	return RefSegmentSum(RefGather(a, idx), offsets)
}

// RefGatherSegmentMean is the unfused composition the fused kernel replaces.
func RefGatherSegmentMean(a *Tensor, idx []int32, offsets []int32) *Tensor {
	return RefSegmentMean(RefGather(a, idx), offsets)
}

// RefGatherMatMulTB is the unfused composition the fused kernel replaces.
func RefGatherMatMulTB(a, table *Tensor, idx []int32) *Tensor {
	return RefMatMulTransposeB(a, RefGather(table, idx))
}

// RefDequant is the unfused full-table dequantization: every element
// through the same pure element function the fused kernels use.
func RefDequant(q *QTable) *Tensor {
	out := New(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		q.DequantRowInto(i, out.Row(i))
	}
	return out
}

// RefGatherDequant is the unfused composition the fused kernel replaces.
func RefGatherDequant(q *QTable, idx []int32) *Tensor {
	return RefGather(RefDequant(q), idx)
}

// RefGatherMatMulTBDequant is the unfused composition the fused kernel
// replaces.
func RefGatherMatMulTBDequant(a *Tensor, q *QTable, idx []int32) *Tensor {
	return RefMatMulTransposeB(a, RefGather(RefDequant(q), idx))
}
