package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// The conformance suite checks every parallel, blocked, and fused kernel
// against the retained naive references in reference.go on randomized
// shapes — including empty and 1-row tensors — across worker counts and
// with and without an arena. Because no kernel reorders floating-point
// sums, the comparison is exact equality, not epsilon closeness: any
// blocking or partitioning change that altered summation order would fail
// here immediately.

// contexts returns the compute configurations conformance runs under.
// Worker counts above 1 spawn real goroutines even on a single-CPU
// machine, so `go test -race` exercises the concurrent kernels.
func contexts() map[string]*Compute {
	return map[string]*Compute{
		"serial":        NewCompute(1, nil),
		"workers2":      NewCompute(2, nil),
		"workers4":      NewCompute(4, nil),
		"workers4arena": NewCompute(4, NewArena()),
	}
}

// exactEqual demands identical shape and element-wise == (which treats
// -0 and +0 as equal; inputs are finite).
func exactEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (exact)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// randDim draws a dimension biased toward the edge cases 0 and 1, with an
// occasional large value so the kernels actually fan out (serialFor sees
// work above the parallel threshold and dispatches goroutines).
func randDim(rng *rand.Rand) int {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 40 + rng.Intn(90) // large enough for multi-goroutine tiles
	default:
		return rng.Intn(12) + 1
	}
}

// randOffsets builds a valid non-decreasing offsets array over n rows with
// empty segments sprinkled in. It always returns at least one segment for
// n > 0 and an empty array for n == 0 (sometimes; callers handle both).
func randOffsets(rng *rand.Rand, n int) []int32 {
	if n == 0 && rng.Intn(2) == 0 {
		return nil
	}
	ns := rng.Intn(6) + 1
	offs := make([]int32, ns)
	for s := 1; s < ns; s++ {
		offs[s] = int32(rng.Intn(n + 1))
	}
	// Sort into non-decreasing order (tiny n, insertion sort).
	for i := 1; i < ns; i++ {
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	offs[0] = 0
	return offs
}

func randIdx(rng *rand.Rand, n, rows int) []int32 {
	if rows == 0 {
		return make([]int32, 0)
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	return idx
}

func TestConformanceMatMulFamily(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for trial := 0; trial < 60; trial++ {
				n, k, m := randDim(rng), randDim(rng), randDim(rng)
				a, b := randn(rng, n, k), randn(rng, k, m)
				exactEqual(t, fmt.Sprintf("MatMul %dx%dx%d", n, k, m),
					c.MatMul(a, b), RefMatMul(a, b))
			}
		})
	}
}

func TestConformanceMatMulTransposes(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(102))
			for trial := 0; trial < 60; trial++ {
				k := randDim(rng)
				a := randn(rng, randDim(rng), k)
				b := randn(rng, randDim(rng), k)
				exactEqual(t, "MatMulTransposeB", c.MatMulTransposeB(a, b), RefMatMulTransposeB(a, b))

				ta := randn(rng, k, randDim(rng))
				tb := randn(rng, k, randDim(rng))
				exactEqual(t, "MatMulTransposeA", c.MatMulTransposeA(ta, tb), RefMatMulTransposeA(ta, tb))
			}
		})
	}
}

// refMatMulSeeded folds a@b terms onto out's existing values in
// ascending-p order — the documented accumulate semantics of MatMulInto
// and MatMulTransposeAInto (axpy-style kernels).
func refMatMulSeeded(out, a, b *Tensor) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := out.At(i, j)
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
}

func refMatMulTASeeded(out, a, b *Tensor) {
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			s := out.At(i, j)
			for p := 0; p < a.Rows; p++ {
				s += a.At(p, i) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
}

func TestConformanceInPlaceAccumulate(t *testing.T) {
	// The in-place accumulate variants feed autograd's gradient
	// accumulation. Each kernel documents its fold order — axpy kernels
	// fold terms onto the seed ascending in p; the dot-product kernel adds
	// its complete zero-seeded dot in one addition — and the references
	// here reproduce those orders so equality is exact.
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(103))
			for trial := 0; trial < 40; trial++ {
				n, k, m := randDim(rng), randDim(rng), randDim(rng)
				a, b := randn(rng, n, k), randn(rng, k, m)
				init := randn(rng, n, m)

				out := init.Clone()
				c.MatMulInto(out, a, b, true)
				want := init.Clone()
				refMatMulSeeded(want, a, b)
				exactEqual(t, "MatMulInto accumulate", out, want)

				// Gradient-shaped accumulations for the transpose variants.
				g := randn(rng, n, m)
				ga := randn(rng, n, k)
				gaWant := ga.Clone()
				c.MatMulTransposeBInto(ga, g, b, true)
				gp := RefMatMulTransposeB(g, b)
				gaWant.AddInPlace(gp)
				exactEqual(t, "MatMulTransposeBInto accumulate", ga, gaWant)

				gb := randn(rng, k, m)
				gbWant := gb.Clone()
				c.MatMulTransposeAInto(gb, a, g, true)
				refMatMulTASeeded(gbWant, a, g)
				exactEqual(t, "MatMulTransposeAInto accumulate", gb, gbWant)
			}
		})
	}
}

func TestConformanceGatherAndSegments(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(104))
			for trial := 0; trial < 60; trial++ {
				rows, cols := randDim(rng)+1, randDim(rng)
				a := randn(rng, rows, cols)
				idx := randIdx(rng, randDim(rng), rows)
				exactEqual(t, "Gather", c.Gather(a, idx), RefGather(a, idx))

				offs := randOffsets(rng, a.Rows)
				if offs == nil && a.Rows != 0 {
					offs = []int32{0}
				}
				exactEqual(t, "SegmentSum", c.SegmentSum(a, offs), RefSegmentSum(a, offs))
				exactEqual(t, "SegmentMean", c.SegmentMean(a, offs), RefSegmentMean(a, offs))

				gOffs := randOffsets(rng, len(idx))
				if gOffs == nil && len(idx) != 0 {
					gOffs = []int32{0}
				}
				exactEqual(t, "GatherSegmentSum",
					c.GatherSegmentSum(a, idx, gOffs), RefGatherSegmentSum(a, idx, gOffs))
				exactEqual(t, "GatherSegmentMean",
					c.GatherSegmentMean(a, idx, gOffs), RefGatherSegmentMean(a, idx, gOffs))
			}
		})
	}
}

func TestConformanceGatherMatMulTB(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(105))
			for trial := 0; trial < 60; trial++ {
				k := randDim(rng)
				table := randn(rng, randDim(rng)+1, k)
				a := randn(rng, randDim(rng), k)
				idx := randIdx(rng, randDim(rng), table.Rows)
				exactEqual(t, "GatherMatMulTB",
					c.GatherMatMulTB(a, table, idx), RefGatherMatMulTB(a, table, idx))
			}
		})
	}
}

func TestConformanceSoftmaxKernels(t *testing.T) {
	// Softmax kernels parallelize over independent rows/segments with
	// unchanged per-row arithmetic, so they too must match exactly across
	// worker counts (serial context is the reference).
	serial := NewCompute(1, nil)
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(106))
			for trial := 0; trial < 40; trial++ {
				a := randn(rng, randDim(rng), randDim(rng)+1)
				exactEqual(t, "RowSoftmax", c.RowSoftmax(a), serial.RowSoftmax(a))

				v := randn(rng, randDim(rng), 1)
				offs := randOffsets(rng, v.Rows)
				if offs == nil && v.Rows != 0 {
					offs = []int32{0}
				}
				exactEqual(t, "SegmentSoftmax", c.SegmentSoftmax(v, offs), serial.SegmentSoftmax(v, offs))
			}
		})
	}
}

func TestKernelsBitwiseIndependentOfWorkersAndArena(t *testing.T) {
	// The determinism contract: a kernel's result is a pure function of its
	// inputs — worker count, arena, and blocking never change a bit.
	rng := rand.New(rand.NewSource(107))
	a := randn(rng, 96, 64)
	b := randn(rng, 64, 48)
	base := NewCompute(1, nil).MatMul(a, b)
	for w := 2; w <= 8; w *= 2 {
		exactEqual(t, fmt.Sprintf("workers=%d", w), NewCompute(w, nil).MatMul(a, b), base)
		arena := NewArena()
		cw := NewCompute(w, arena)
		for pass := 0; pass < 3; pass++ { // repeated passes reuse recycled arena memory
			exactEqual(t, fmt.Sprintf("workers=%d arena pass=%d", w, pass), cw.MatMul(a, b), base)
			arena.Reset()
		}
	}
}
