package tensor

import (
	"runtime"
	"sync"
)

// Compute is the execution context for the dense kernels: how many
// goroutines a kernel may fan out to, and which Arena (if any) supplies its
// output buffers. It is the CPU stand-in for the paper's GPU execution:
// DENSE's layout lets every kernel split into independent row/segment
// ranges (the property that makes it fast on SIMT hardware), whereas the
// baseline's per-edge scatter-add must serialize its accumulation (the
// property that makes sparse kernels underutilize GPUs). ScatterAdd is
// therefore deliberately left single-threaded.
//
// Determinism: parallelism only ever partitions *output* rows or segments
// across goroutines — no kernel splits a floating-point reduction. Every
// output element is accumulated by exactly one goroutine in the same order
// the serial kernel uses, so kernel results are bitwise identical at every
// worker count. The worker knob trades latency, never numerics; the only
// nondeterminism in multi-worker training is pipeline batch ordering.
//
// A nil *Compute is valid and behaves as the package default: up to
// GOMAXPROCS workers, heap-allocated outputs. The free kernel functions
// (MatMul, Gather, ...) run on this default context.
type Compute struct {
	workers int
	arena   *Arena
}

// NewCompute returns a context that fans kernels out to at most workers
// goroutines (workers <= 0 means GOMAXPROCS) and allocates kernel outputs
// from arena (nil means the heap). The worker cap is authoritative: it is
// not clamped to GOMAXPROCS, so a 4-worker context exercises real
// concurrency — and the race detector — even on a single-CPU machine.
func NewCompute(workers int, arena *Arena) *Compute {
	return &Compute{workers: workers, arena: arena}
}

// Workers reports the configured worker cap (0 = GOMAXPROCS).
func (c *Compute) Workers() int {
	if c == nil {
		return 0
	}
	return c.workers
}

// Arena returns the arena kernel outputs are drawn from, or nil.
func (c *Compute) Arena() *Arena {
	if c == nil {
		return nil
	}
	return c.arena
}

func (c *Compute) maxWorkers() int {
	if c == nil || c.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.workers
}

// alloc returns a zeroed rows x cols output buffer from the arena when one
// is attached, else from the heap.
func (c *Compute) alloc(rows, cols int) *Tensor {
	if c == nil || c.arena == nil {
		return New(rows, cols)
	}
	return c.arena.Alloc(rows, cols)
}

// clone copies t into a context-owned buffer.
func (c *Compute) clone(t *Tensor) *Tensor {
	out := c.alloc(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// parallelThreshold is the minimum amount of work (rows x cols x depth)
// before a kernel fans out to multiple goroutines.
const parallelThreshold = 1 << 14

// serialFor reports whether a kernel over n independent ranges totalling
// `work` element-operations should run inline. Kernels branch on this
// BEFORE constructing the fan-out closure, so the serial path — the
// single-worker deterministic configuration and anything under the work
// threshold — performs zero heap allocations.
func (c *Compute) serialFor(n, work int) bool {
	return n < 2 || work < parallelThreshold || c.maxWorkers() <= 1
}

// fanOut splits [0, n) into contiguous chunks and runs fn on each
// concurrently. fn must only write state owned by its range. Callers have
// already ruled out the serial case via serialFor.
func (c *Compute) fanOut(n int, fn func(start, end int)) {
	workers := c.maxWorkers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
