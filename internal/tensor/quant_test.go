package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestF16RoundTrip checks the binary16 conversions against the format's
// defining properties: exact widening, round-to-nearest-even on narrow,
// and correct special-value handling.
func TestF16RoundTrip(t *testing.T) {
	// Every binary16 bit pattern widens to float32 and narrows back to
	// itself (NaNs excepted: they widen to a NaN and narrow to a NaN).
	for b := 0; b < 1<<16; b++ {
		h := uint16(b)
		f := F16ToF32(h)
		got := F16FromF32(f)
		if exp := h >> 10 & 0x1f; exp == 0x1f && h&0x3ff != 0 {
			if !math.IsNaN(float64(f)) || got>>10&0x1f != 0x1f || got&0x3ff == 0 {
				t.Fatalf("NaN pattern %#04x: widened to %v, narrowed to %#04x", h, f, got)
			}
			continue
		}
		if got != h {
			t.Fatalf("pattern %#04x -> %v -> %#04x", h, f, got)
		}
	}
	cases := []struct {
		f    float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff}, // binary16 max
		{65520, 0x7c00}, // rounds to +Inf
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{2.9802322e-8, 0x0000}, // half the min subnormal: ties to even (zero)
		{5.9604645e-8, 0x0001}, // min subnormal, 2^-24
		{6.097555e-5, 0x03ff},  // max subnormal, 1023*2^-24
		{6.102e-5, 0x0400},     // rounds up into the min normal
		{1.0009766, 0x3c01},    // 1 + 2^-10
		{1.0004883, 0x3c00},    // 1 + 2^-11: ties to even (mantissa 0)
		{1.0014648, 0x3c02},    // 1 + 3*2^-11: ties to even (mantissa 2)
	}
	for _, c := range cases {
		if got := F16FromF32(c.f); got != c.want {
			t.Errorf("F16FromF32(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
	if got := F16FromF32(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("F16FromF32(NaN) = %#04x, not a NaN pattern", got)
	}
}

// TestQuantizeRowI8 checks the affine int8 encoding: endpoints exact,
// constant rows exact, everything else within half a step.
func TestQuantizeRowI8(t *testing.T) {
	q := NewQTable(QuantI8, 2, 4)
	q.QuantizeRow(0, []float32{-1, 0, 0.5, 3})
	got := make([]float32, 4)
	q.DequantRowInto(0, got)
	if got[0] != -1 || got[3] != 3 {
		t.Fatalf("row endpoints %v, want -1 and 3 exact", got)
	}
	step := q.Scale[0]
	for j, want := range []float32{-1, 0, 0.5, 3} {
		if d := got[j] - want; d < -step/2 || d > step/2 {
			t.Fatalf("element %d: %v vs %v, off by more than half a step (%v)", j, got[j], want, step)
		}
	}
	q.QuantizeRow(1, []float32{2.5, 2.5, 2.5, 2.5})
	q.DequantRowInto(1, got)
	for j, v := range got {
		if v != 2.5 {
			t.Fatalf("constant row element %d = %v, want exactly 2.5", j, v)
		}
	}
}

// quantKinds are the quantized encodings the conformance loops cover.
var quantKinds = []QuantKind{QuantF16, QuantI8}

// TestConformanceGatherDequant checks the fused dequantizing gather
// against the unfused reference composition, exactly, across contexts.
func TestConformanceGatherDequant(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			for trial := 0; trial < 60; trial++ {
				rows, cols := randDim(rng), randDim(rng)
				table := New(rows, cols)
				table.RandNormal(rng, 1)
				idx := randIdx(rng, randDim(rng), rows)
				for _, kind := range quantKinds {
					q := Quantize(table, kind)
					got := c.GatherDequant(q, idx)
					exactEqual(t, fmt.Sprintf("GatherDequant/%s", kind), got, RefGatherDequant(q, idx))
				}
			}
		})
	}
}

// TestConformanceGatherMatMulTBDequant checks the fused dequantizing
// score kernel against the unfused reference composition, exactly.
func TestConformanceGatherMatMulTBDequant(t *testing.T) {
	for name, c := range contexts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(72))
			for trial := 0; trial < 60; trial++ {
				n, k := randDim(rng), randDim(rng)
				a := New(n, k)
				a.RandNormal(rng, 1)
				table := New(randDim(rng)+1, k)
				table.RandNormal(rng, 1)
				idx := randIdx(rng, randDim(rng), table.Rows)
				for _, kind := range quantKinds {
					q := Quantize(table, kind)
					got := c.GatherMatMulTBDequant(a, q, idx)
					exactEqual(t, fmt.Sprintf("GatherMatMulTBDequant/%s", kind), got, RefGatherMatMulTBDequant(a, q, idx))
				}
			}
		})
	}
}

// TestQuantDeterministicAcrossWorkers pins the determinism contract the
// storage layer depends on: one quantized table, identical fused results
// at every worker count.
func TestQuantDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	table := New(300, 48)
	table.RandNormal(rng, 1)
	a := New(64, 48)
	a.RandNormal(rng, 1)
	idx := randIdx(rng, 500, table.Rows)
	for _, kind := range quantKinds {
		q := Quantize(table, kind)
		want := NewCompute(1, nil).GatherMatMulTBDequant(a, q, idx)
		for _, w := range []int{2, 3, 8} {
			got := NewCompute(w, nil).GatherMatMulTBDequant(a, q, idx)
			exactEqual(t, fmt.Sprintf("%s/workers%d", kind, w), got, want)
		}
	}
}

func TestParseQuant(t *testing.T) {
	for _, c := range []struct {
		s    string
		kind QuantKind
		eb   int
	}{{"", QuantNone, 4}, {"fp16", QuantF16, 2}, {"int8", QuantI8, 1}} {
		k, err := ParseQuant(c.s)
		if err != nil || k != c.kind || k.ElemBytes() != c.eb || k.String() != c.s {
			t.Fatalf("ParseQuant(%q) = %v, %v (elem %d, string %q)", c.s, k, err, k.ElemBytes(), k.String())
		}
	}
	if _, err := ParseQuant("int4"); err == nil {
		t.Fatal("ParseQuant accepted int4")
	}
}
