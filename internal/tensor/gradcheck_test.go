package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates d(loss)/d(x) by central differences, where
// forward rebuilds the graph from the leaf values each call.
func numericalGrad(t *testing.T, x *Tensor, forward func() float64) *Tensor {
	t.Helper()
	const h = 1e-3
	g := New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := forward()
		x.Data[i] = orig - h
		fm := forward()
		x.Data[i] = orig
		g.Data[i] = float32((fp - fm) / (2 * h))
	}
	return g
}

// checkGrads runs backward through build (which must return the scalar
// loss node) and compares every leaf gradient against central differences.
func checkGrads(t *testing.T, name string, leaves []*Tensor, build func(tp *Tape, nodes []*Node) *Node) {
	t.Helper()
	tp := NewTape()
	nodes := make([]*Node, len(leaves))
	for i, l := range leaves {
		nodes[i] = tp.Leaf(l, true)
	}
	loss := build(tp, nodes)
	tp.Backward(loss)

	forward := func() float64 {
		tp2 := NewTape()
		nodes2 := make([]*Node, len(leaves))
		for i, l := range leaves {
			nodes2[i] = tp2.Leaf(l, true)
		}
		return float64(build(tp2, nodes2).Value.Data[0])
	}
	for li, leaf := range leaves {
		got := nodes[li].Grad()
		if got == nil {
			t.Fatalf("%s: leaf %d received no gradient", name, li)
		}
		want := numericalGrad(t, leaf, forward)
		for i := range want.Data {
			diff := math.Abs(float64(got.Data[i] - want.Data[i]))
			scale := math.Max(1, math.Abs(float64(want.Data[i])))
			if diff/scale > 2e-2 {
				t.Errorf("%s: leaf %d grad[%d] = %g, want %g", name, li, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func randn(rng *rand.Rand, rows, cols int) *Tensor {
	x := New(rows, cols)
	x.RandNormal(rng, 1)
	return x
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randn(rng, 3, 4), randn(rng, 4, 2)
	checkGrads(t, "matmul", []*Tensor{a, b}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.MatMul(n[0], n[1]))
	})
}

func TestGradMatMulTB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randn(rng, 3, 4), randn(rng, 5, 4)
	checkGrads(t, "matmulTB", []*Tensor{a, b}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.MatMulTB(n[0], n[1])))
	})
}

func TestGradAddSubMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randn(rng, 4, 3), randn(rng, 4, 3)
	checkGrads(t, "add-sub-mul", []*Tensor{a, b}, func(tp *Tape, n []*Node) *Node {
		x := tp.Mul(tp.Add(n[0], n[1]), tp.Sub(n[0], n[1]))
		return tp.MeanAll(tp.Scale(x, 0.5))
	})
}

func TestGradAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randn(rng, 5, 3), randn(rng, 1, 3)
	checkGrads(t, "addbias", []*Tensor{a, b}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Sigmoid(tp.AddBias(n[0], n[1])))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randn(rng, 6, 4)
	checkGrads(t, "relu", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.ReLU(n[0]))
	})
	checkGrads(t, "leakyrelu", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.LeakyReLU(n[0], 0.2))
	})
	checkGrads(t, "sigmoid", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Sigmoid(n[0]))
	})
	checkGrads(t, "tanh", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(n[0]))
	})
}

func TestGradGatherSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randn(rng, 5, 3)
	idx := []int32{4, 0, 0, 2, 3, 1}
	checkGrads(t, "gather", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.Gather(n[0], idx)))
	})
	checkGrads(t, "slice", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.SliceRows(n[0], 1, 4))
	})
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randn(rng, 3, 2), randn(rng, 3, 4)
	checkGrads(t, "concatcols", []*Tensor{a, b}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.ConcatCols(n[0], n[1])))
	})
	c, d := randn(rng, 2, 3), randn(rng, 4, 3)
	checkGrads(t, "concatrows", []*Tensor{c, d}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.ConcatRows(n[0], n[1])))
	})
}

func TestGradSegmentOps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randn(rng, 7, 3)
	offsets := []int32{0, 2, 2, 5} // one empty segment
	checkGrads(t, "segmentsum", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.SegmentSum(n[0], offsets)))
	})
	checkGrads(t, "segmentmean", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.SegmentMean(n[0], offsets)))
	})
	v := randn(rng, 7, 1)
	checkGrads(t, "segmentsoftmax", []*Tensor{v}, func(tp *Tape, n []*Node) *Node {
		sm := tp.SegmentSoftmax(n[0], offsets)
		return tp.MeanAll(tp.Mul(sm, sm))
	})
}

func TestGradMulColBroadcastRowSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, w := randn(rng, 5, 3), randn(rng, 5, 1)
	checkGrads(t, "mulcol", []*Tensor{a, w}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.MulColBroadcast(n[0], n[1])))
	})
	checkGrads(t, "rowsum", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.RowSum(n[0])))
	})
}

func TestGradScatterAddRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randn(rng, 6, 3)
	idx := []int32{0, 2, 2, 1, 0, 3}
	checkGrads(t, "scatteradd", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.ScatterAddRows(n[0], idx, 4)))
	})
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := randn(rng, 5, 4)
	labels := []int32{0, 3, 1, 2, 2}
	checkGrads(t, "softmaxce", []*Tensor{logits}, func(tp *Tape, n []*Node) *Node {
		return tp.SoftmaxCrossEntropy(n[0], labels)
	})
}

func TestGradComposite(t *testing.T) {
	// A two-layer MLP with every common op chained, mimicking a real
	// training step's graph shape.
	rng := rand.New(rand.NewSource(12))
	x := randn(rng, 6, 5)
	w1 := randn(rng, 5, 4)
	b1 := randn(rng, 1, 4)
	w2 := randn(rng, 4, 3)
	labels := []int32{0, 1, 2, 0, 1, 2}
	checkGrads(t, "mlp", []*Tensor{x, w1, b1, w2}, func(tp *Tape, n []*Node) *Node {
		h := tp.ReLU(tp.AddBias(tp.MatMul(n[0], n[1]), n[2]))
		return tp.SoftmaxCrossEntropy(tp.MatMul(h, n[3]), labels)
	})
}

func TestGradGatherMatMulTB(t *testing.T) {
	// Gradcheck for the fused gather+matmul op, including a duplicated
	// index (row 4 looked up twice) so the scatter-add accumulation in the
	// table gradient is exercised.
	rng := rand.New(rand.NewSource(13))
	a := randn(rng, 3, 4)
	table := randn(rng, 6, 4)
	idx := []int32{5, 0, 4, 4}
	checkGrads(t, "gathermatmultb", []*Tensor{a, table}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.GatherMatMulTB(n[0], n[1], idx)))
	})
}

func TestGradGatherSegmentOps(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randn(rng, 5, 3)
	idx := []int32{4, 0, 0, 2, 3, 1, 2}
	offsets := []int32{0, 2, 2, 5} // includes an empty segment
	checkGrads(t, "gathersegmentsum", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.GatherSegmentSum(n[0], idx, offsets)))
	})
	checkGrads(t, "gathersegmentmean", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.GatherSegmentMean(n[0], idx, offsets)))
	})
}

func TestFusedOpsMatchUnfusedOnTape(t *testing.T) {
	// The fused tape ops must produce bitwise-identical values AND
	// gradients to their unfused compositions.
	rng := rand.New(rand.NewSource(15))
	h := randn(rng, 6, 4)
	idx := []int32{5, 0, 0, 2, 3, 1, 2, 4}
	offsets := []int32{0, 3, 3, 6}
	q := randn(rng, 3, 4)
	lookup := []int32{1, 4, 4, 0}

	run := func(fused bool) (*Tensor, *Tensor, *Tensor) {
		tp := NewTape()
		hn := tp.Leaf(h.Clone(), true)
		qn := tp.Leaf(q.Clone(), true)
		var agg, scores *Node
		if fused {
			agg = tp.GatherSegmentMean(hn, idx, offsets)
			scores = tp.GatherMatMulTB(qn, hn, lookup)
		} else {
			agg = tp.SegmentMean(tp.Gather(hn, idx), offsets)
			scores = tp.MatMulTB(qn, tp.Gather(hn, lookup))
		}
		loss := tp.Add(tp.MeanAll(tp.Tanh(agg)), tp.MeanAll(tp.Tanh(scores)))
		tp.Backward(loss)
		return loss.Value, hn.Grad(), qn.Grad()
	}
	lf, hf, qf := run(true)
	lu, hu, qu := run(false)
	if lf.Data[0] != lu.Data[0] {
		t.Fatalf("fused loss %v != unfused %v", lf.Data[0], lu.Data[0])
	}
	if !hf.Equal(hu, 0) || !qf.Equal(qu, 0) {
		t.Fatal("fused gradients differ from unfused composition")
	}
}

func TestArenaTapeGradientsMatchHeapTape(t *testing.T) {
	// The same graph built on an arena-backed multi-worker tape must yield
	// bitwise-identical values and gradients to the default heap tape.
	rng := rand.New(rand.NewSource(16))
	x := randn(rng, 12, 6)
	w := randn(rng, 6, 5)
	idx := []int32{0, 3, 3, 7, 11, 5}
	labels := []int32{0, 2, 1, 4, 3, 0}

	build := func(tp *Tape) (*Tensor, *Tensor, *Tensor) {
		xn := tp.Leaf(x, true)
		wn := tp.Leaf(w, true)
		h := tp.ReLU(tp.MatMul(xn, wn))
		logits := tp.Gather(h, idx)
		loss := tp.SoftmaxCrossEntropy(logits, labels)
		tp.Backward(loss)
		return loss.Value, xn.Grad(), wn.Grad()
	}
	lh, xh, wh := build(NewTape())
	arena := NewArena()
	tp := NewTapeWith(NewCompute(4, arena))
	for pass := 0; pass < 3; pass++ {
		tp.Reset()
		arena.Reset()
		la, xa, wa := build(tp)
		if la.Data[0] != lh.Data[0] {
			t.Fatalf("pass %d: arena loss %v != heap %v", pass, la.Data[0], lh.Data[0])
		}
		if !xa.Equal(xh, 0) || !wa.Equal(wh, 0) {
			t.Fatalf("pass %d: arena gradients differ from heap gradients", pass)
		}
	}
}

func TestBackwardAccumulatesFanOut(t *testing.T) {
	// A leaf used twice must receive the sum of both paths' gradients.
	x := FromSlice(1, 1, []float32{3})
	tp := NewTape()
	n := tp.Leaf(x, true)
	y := tp.Add(n, n) // dy/dx = 2
	tp.Backward(y)
	if got := n.Grad().Data[0]; math.Abs(float64(got)-2) > 1e-6 {
		t.Fatalf("fan-out gradient = %v, want 2", got)
	}
}

func TestGradSliceCols(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randn(rng, 4, 6)
	checkGrads(t, "slicecols", []*Tensor{a}, func(tp *Tape, n []*Node) *Node {
		lo := tp.SliceCols(n[0], 0, 3)
		hi := tp.SliceCols(n[0], 3, 6)
		return tp.MeanAll(tp.Mul(lo, hi))
	})
}

func TestGradAddColVec(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a, v := randn(rng, 4, 5), randn(rng, 4, 1)
	checkGrads(t, "addcolvec", []*Tensor{a, v}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.AddColVec(n[0], n[1])))
	})
}

func TestGradAddRowVec(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a, v := randn(rng, 4, 5), randn(rng, 5, 1)
	checkGrads(t, "addrowvec", []*Tensor{a, v}, func(tp *Tape, n []*Node) *Node {
		return tp.MeanAll(tp.Tanh(tp.AddRowVec(n[0], n[1])))
	})
}
