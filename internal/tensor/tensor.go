// Package tensor provides a dense float32 matrix type and a small
// reverse-mode automatic-differentiation tape.
//
// It is the compute substrate for the GNN layers in this repository: the
// role played by PyTorch dense CUDA kernels in the MariusGNN paper is played
// here by the kernels in this package (matmul, gather, segment reductions).
// All kernels operate on row-major [Rows x Cols] float32 buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix of float32.
// A vector is represented as a [n x 1] or [1 x n] matrix.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero-initialized Rows x Cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a Rows x Cols tensor. The slice is used directly,
// not copied, and must have length rows*cols.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Shape returns (rows, cols).
func (t *Tensor) Shape() (int, int) { return t.Rows, t.Cols }

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace accumulates o into t element-wise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %dx%d vs %dx%d", t.Rows, t.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// RandUniform fills t with samples from U(-a, a) drawn from rng.
func (t *Tensor) RandUniform(rng *rand.Rand, a float64) {
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}

// RandNormal fills t with samples from N(0, std^2) drawn from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// GlorotUniform fills t with Glorot/Xavier-uniform values using its own
// shape as (fanIn=Rows, fanOut=Cols).
func (t *Tensor) GlorotUniform(rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	t.RandUniform(rng, a)
}

// Norm2 returns the Euclidean norm of all elements.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Equal reports whether t and o have the same shape and elements within eps.
func (t *Tensor) Equal(o *Tensor, eps float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if t.Rows*t.Cols > 64 {
		return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
	}
	s := fmt.Sprintf("Tensor(%dx%d)[", t.Rows, t.Cols)
	for i := 0; i < t.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < t.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", t.At(i, j))
		}
	}
	return s + "]"
}
