package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n, k, m := rng.Intn(8)+1, rng.Intn(8)+1, rng.Intn(8)+1
		a, b := randn(rng, n, k), randn(rng, k, m)
		got := MatMul(a, b)
		want := New(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				want.Set(i, j, s)
			}
		}
		if !got.Equal(want, 1e-4) {
			t.Fatalf("trial %d: matmul mismatch", trial)
		}
	}
}

func TestMatMulTransposesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randn(rng, 4, 6), randn(rng, 6, 3)
	want := MatMul(a, b)
	// aᵀᵀ @ b via MatMulTransposeA on aᵀ.
	at := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if got := MatMulTransposeA(at, b); !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransposeA mismatch")
	}
	bt := New(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if got := MatMulTransposeB(a, bt); !got.Equal(want, 1e-4) {
		t.Fatal("MatMulTransposeB mismatch")
	}
}

func TestSegmentSumMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randn(rng, 10, 4)
	offsets := []int32{0, 0, 3, 3, 7} // includes empty segments
	got := SegmentSum(a, offsets)
	if got.Rows != 5 {
		t.Fatalf("rows = %d, want 5", got.Rows)
	}
	bounds := [][2]int{{0, 0}, {0, 3}, {3, 3}, {3, 7}, {7, 10}}
	for s, b := range bounds {
		for j := 0; j < 4; j++ {
			var want float32
			for r := b[0]; r < b[1]; r++ {
				want += a.At(r, j)
			}
			if diff := got.At(s, j) - want; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("segment %d col %d: got %v want %v", s, j, got.At(s, j), want)
			}
		}
	}
}

func TestSegmentSoftmaxSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randn(rng, 9, 1)
	offsets := []int32{0, 4, 4, 6}
	sm := SegmentSoftmax(a, offsets)
	bounds := [][2]int{{0, 4}, {4, 4}, {4, 6}, {6, 9}}
	for s, b := range bounds {
		var sum float32
		for r := b[0]; r < b[1]; r++ {
			if sm.Data[r] < 0 {
				t.Fatalf("negative softmax weight at %d", r)
			}
			sum += sm.Data[r]
		}
		if b[0] != b[1] && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("segment %d sums to %v", s, sum)
		}
	}
}

func TestRowSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randn(rng, rng.Intn(6)+1, rng.Intn(6)+1)
		sm := RowSoftmax(a)
		for i := 0; i < sm.Rows; i++ {
			var sum float32
			for _, v := range sm.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(10) + 1
		a := randn(rng, rows, 3)
		idx := make([]int32, rng.Intn(20))
		for i := range idx {
			idx[i] = int32(rng.Intn(rows))
		}
		g := Gather(a, idx)
		// Scatter of gathered rows accumulates each source row exactly
		// count(idx==r) times its value.
		acc := New(rows, 3)
		ScatterAdd(acc, g, idx)
		counts := make([]float32, rows)
		for _, id := range idx {
			counts[id]++
		}
		for r := 0; r < rows; r++ {
			for j := 0; j < 3; j++ {
				want := a.At(r, j) * counts[r]
				d := acc.At(r, j) - want
				if d > 1e-4 || d < -1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTensorBasics(t *testing.T) {
	x := New(2, 3)
	x.Fill(2)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 || x.At(0, 0) != 2 {
		t.Fatal("At/Set broken")
	}
	if x.Sum() != 2*5+7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	c := x.Clone()
	c.Zero()
	if x.At(1, 2) != 7 {
		t.Fatal("Clone aliases data")
	}
	y := New(2, 3)
	y.Fill(1)
	x.AddInPlace(y)
	if x.At(0, 0) != 3 {
		t.Fatal("AddInPlace broken")
	}
	x.ScaleInPlace(2)
	if x.At(0, 0) != 6 {
		t.Fatal("ScaleInPlace broken")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}
