package tensor

// BenchTrainStep runs the kernel sequence of one steady-state training
// batch — fused embedding gather+aggregate, two linear layers with
// in-place ReLU, the backward matmuls with in-place accumulation, and the
// gradient write-back through the fused gather's backward into the
// caller-owned dh0 buffer. It is the canonical body of the arena's
// zero-allocation contract: TestArenaSteadyStateZeroAllocs asserts it
// performs no heap allocations on a warmed-up serial arena context, and
// cmd/benchkernels measures and CI-gates the exact same sequence. Keep the
// two gates honest by changing the sequence only here.
func BenchTrainStep(c *Compute, h0, w1, w2, dh0 *Tensor, idx, offsets []int32) *Tensor {
	agg := c.GatherSegmentSum(h0, idx, offsets) // [nseg x d]
	z1 := c.MatMul(agg, w1)
	for i, v := range z1.Data { // ReLU in place
		if v < 0 {
			z1.Data[i] = 0
		}
	}
	z2 := c.MatMul(z1, w2)
	// Backward: dz1 = dz2 @ w2ᵀ, dw2 += z1ᵀ @ dz2, dw1 += aggᵀ @ dz1
	// (using z2 as its own seed gradient; the shapes and memory traffic
	// match a real loss gradient).
	dz1 := c.MatMulTransposeB(z2, w2)
	dw2 := c.alloc(w2.Rows, w2.Cols)
	c.MatMulTransposeAInto(dw2, z1, z2, true)
	dw1 := c.alloc(w1.Rows, w1.Cols)
	c.MatMulTransposeAInto(dw1, agg, dz1, true)
	// Write-back: dagg scattered into dh0 through the fused gather+segment
	// op's backward, touching every sampled row.
	dagg := c.MatMulTransposeB(dz1, w1)
	dh0.Zero()
	for s := 0; s < dagg.Rows; s++ {
		grow := dagg.Row(s)
		end := segmentEnd(offsets, s, len(idx))
		for r := int(offsets[s]); r < end; r++ {
			row := dh0.Row(int(idx[r]))
			for j, v := range grow {
				row[j] += v
			}
		}
	}
	return z2
}
