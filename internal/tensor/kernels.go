package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a @ b for a [n x k] and b [k x m].
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	matmulInto(out, a, b, false)
	return out
}

// matmulInto computes out += a@b (accumulate=true) or out = a@b using an
// ikj loop order that streams rows of b for cache friendliness.
func matmulInto(out, a, b *Tensor, accumulate bool) {
	n, k, m := a.Rows, a.Cols, b.Cols
	if !accumulate {
		out.Zero()
	}
	parallelFor(n, n*k*m, func(start, end int) {
		for i := start; i < end; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*m : (p+1)*m]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransposeA returns aᵀ @ b for a [k x n] and b [k x m].
func MatMulTransposeA(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransposeA shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	k, n, m := a.Rows, a.Cols, b.Cols
	parallelFor(n, n*k*m, func(start, end int) {
		for p := 0; p < k; p++ {
			arow := a.Data[p*n : (p+1)*n]
			brow := b.Data[p*m : (p+1)*m]
			for i := start; i < end; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*m : (i+1)*m]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTransposeB returns a @ bᵀ for a [n x k] and b [m x k].
func MatMulTransposeB(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransposeB shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	n, k, m := a.Rows, a.Cols, b.Rows
	parallelFor(n, n*k*m, func(start, end int) {
		for i := start; i < end; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// Gather returns the rows of a selected by idx, in order. This is the
// dense index_select kernel used by DENSE's repr_map (paper Algorithm 3,
// line 1).
func Gather(a *Tensor, idx []int32) *Tensor {
	out := New(len(idx), a.Cols)
	c := a.Cols
	parallelFor(len(idx), len(idx)*c, func(start, end int) {
		for i := start; i < end; i++ {
			id := int(idx[i])
			copy(out.Data[i*c:(i+1)*c], a.Data[id*c:id*c+c])
		}
	})
	return out
}

// ScatterAdd accumulates each row of src into row idx[i] of dst.
func ScatterAdd(dst, src *Tensor, idx []int32) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic("tensor: ScatterAdd shape mismatch")
	}
	c := dst.Cols
	for i, id := range idx {
		drow := dst.Data[int(id)*c : int(id)*c+c]
		srow := src.Data[i*c : (i+1)*c]
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// checkOffsets validates a segment offsets array against n total rows and
// returns the number of segments. offsets[s] is the start row of segment s;
// segment s spans [offsets[s], offsets[s+1]) with the final segment ending
// at n. Offsets must be non-decreasing and start at 0.
func checkOffsets(offsets []int32, n int) int {
	if len(offsets) == 0 {
		if n != 0 {
			panic("tensor: empty offsets for non-empty input")
		}
		return 0
	}
	if offsets[0] != 0 {
		panic("tensor: offsets must start at 0")
	}
	for s := 1; s < len(offsets); s++ {
		if offsets[s] < offsets[s-1] {
			panic("tensor: offsets must be non-decreasing")
		}
	}
	if int(offsets[len(offsets)-1]) > n {
		panic(fmt.Sprintf("tensor: offsets end %d exceeds rows %d", offsets[len(offsets)-1], n))
	}
	return len(offsets)
}

// segmentEnd returns the exclusive end row of segment s.
func segmentEnd(offsets []int32, s, n int) int {
	if s+1 < len(offsets) {
		return int(offsets[s+1])
	}
	return n
}

// SegmentSum sums contiguous row segments of a. The result has one row per
// segment. This is the dense segment_sum of paper Algorithm 3, line 2.
func SegmentSum(a *Tensor, offsets []int32) *Tensor {
	ns := checkOffsets(offsets, a.Rows)
	out := New(ns, a.Cols)
	c := a.Cols
	parallelFor(ns, a.Rows*c, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := out.Data[s*c : (s+1)*c]
			end := segmentEnd(offsets, s, a.Rows)
			for r := int(offsets[s]); r < end; r++ {
				arow := a.Data[r*c : (r+1)*c]
				for j, v := range arow {
					orow[j] += v
				}
			}
		}
	})
	return out
}

// SegmentMean averages contiguous row segments of a; empty segments yield a
// zero row.
func SegmentMean(a *Tensor, offsets []int32) *Tensor {
	out := SegmentSum(a, offsets)
	for s := 0; s < out.Rows; s++ {
		cnt := segmentEnd(offsets, s, a.Rows) - int(offsets[s])
		if cnt > 1 {
			inv := 1 / float32(cnt)
			orow := out.Row(s)
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
	return out
}

// SegmentSoftmax applies a numerically-stable softmax within each contiguous
// row segment of a column vector a [n x 1]. Used for GAT attention weights.
func SegmentSoftmax(a *Tensor, offsets []int32) *Tensor {
	if a.Cols != 1 {
		panic("tensor: SegmentSoftmax expects a column vector")
	}
	ns := checkOffsets(offsets, a.Rows)
	out := New(a.Rows, 1)
	for s := 0; s < ns; s++ {
		start, end := int(offsets[s]), segmentEnd(offsets, s, a.Rows)
		if start == end {
			continue
		}
		maxV := a.Data[start]
		for r := start + 1; r < end; r++ {
			if a.Data[r] > maxV {
				maxV = a.Data[r]
			}
		}
		var sum float64
		for r := start; r < end; r++ {
			e := math.Exp(float64(a.Data[r] - maxV))
			out.Data[r] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for r := start; r < end; r++ {
			out.Data[r] *= inv
		}
	}
	return out
}

// RowSoftmax applies a numerically-stable softmax along each row of a.
func RowSoftmax(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow, orow := a.Row(i), out.Row(i)
		maxV := arow[0]
		for _, v := range arow[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range arow {
			e := math.Exp(float64(v - maxV))
			orow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}
