package tensor

import (
	"fmt"
	"math"
)

// The kernels in this file come in two forms: methods on *Compute, which
// honor the context's worker cap and arena, and package-level wrappers that
// run on the default context (GOMAXPROCS workers, heap outputs). All of
// them preserve floating-point summation order exactly — see the Compute
// doc — so a kernel's result is bitwise independent of the worker count,
// the arena, and the blocking, and matches the naive references in
// reference.go.
//
// Each kernel's loop body lives in a named range function; the serial path
// calls it directly so that single-worker execution — the deterministic
// training path and the arena's zero-allocation contract — creates no
// closure and touches the heap not at all. Only a multi-goroutine launch
// pays the small closure allocation for the fan-out.

// blockK is the k-dimension tile of the blocked matmul: blockK rows of b
// are streamed repeatedly across a goroutine's row range so they stay
// cache resident. Tiling over k does not reorder sums — for every output
// element the p-index still ascends monotonically across tiles.
const blockK = 64

// MatMul returns a @ b for a [n x k] and b [k x m].
func MatMul(a, b *Tensor) *Tensor { return (*Compute)(nil).MatMul(a, b) }

// MatMul returns a @ b for a [n x k] and b [k x m].
func (c *Compute) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := c.alloc(a.Rows, b.Cols)
	c.MatMulInto(out, a, b, false)
	return out
}

// matmulRange computes out[start:end] += a[start:end] @ b with k-blocking.
// For every output element the accumulation order over p is strictly
// ascending, whether out starts zeroed or holds a prior value (the
// accumulate case folds new terms onto it in the same ascending order).
func matmulRange(out, a, b *Tensor, start, end int) {
	k, m := a.Cols, b.Cols
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := min(p0+blockK, k)
		for i := start; i < end; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for p := p0; p < p1; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				axpyUnrolled(orow, b.Data[p*m:(p+1)*m], av)
			}
		}
	}
}

// axpyUnrolled computes orow[j] += av*brow[j] with 4-wide unrolling. Each
// element is a single fused term, so unrolling cannot reorder any sum.
func axpyUnrolled(orow, brow []float32, av float32) {
	j := 0
	for ; j+3 < len(brow); j += 4 {
		o := orow[j : j+4 : j+4]
		b4 := brow[j : j+4 : j+4]
		o[0] += av * b4[0]
		o[1] += av * b4[1]
		o[2] += av * b4[2]
		o[3] += av * b4[3]
	}
	for ; j < len(brow); j++ {
		orow[j] += av * brow[j]
	}
}

// MatMulInto computes out = a@b, or out += a@b when accumulate is true
// (new terms fold onto the existing value in ascending-p order). out must
// be [a.Rows x b.Cols] and must not alias a or b.
func (c *Compute) MatMulInto(out, a, b *Tensor, accumulate bool) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %dx%d @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	if !accumulate {
		out.Zero()
	}
	if c.serialFor(n, n*k*m) {
		matmulRange(out, a, b, 0, n)
		return
	}
	c.fanOut(n, func(s, e int) { matmulRange(out, a, b, s, e) })
}

// MatMulTransposeA returns aᵀ @ b for a [k x n] and b [k x m].
func MatMulTransposeA(a, b *Tensor) *Tensor { return (*Compute)(nil).MatMulTransposeA(a, b) }

// MatMulTransposeA returns aᵀ @ b for a [k x n] and b [k x m].
func (c *Compute) MatMulTransposeA(a, b *Tensor) *Tensor {
	out := c.alloc(a.Cols, b.Cols)
	c.MatMulTransposeAInto(out, a, b, false)
	return out
}

// matmulTARange computes out[start:end] += (aᵀ@b)[start:end] over the
// columns of a (rows of out); each range walks all of k ascending.
func matmulTARange(out, a, b *Tensor, start, end int) {
	k, n, m := a.Rows, a.Cols, b.Cols
	for p := 0; p < k; p++ {
		arow := a.Data[p*n : (p+1)*n]
		brow := b.Data[p*m : (p+1)*m]
		for i := start; i < end; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyUnrolled(out.Data[i*m:(i+1)*m], brow, av)
		}
	}
}

// MatMulTransposeAInto computes out = aᵀ@b (or += with accumulate, new
// terms folding onto the existing value in ascending-p order) for
// a [k x n], b [k x m], out [n x m].
func (c *Compute) MatMulTransposeAInto(out, a, b *Tensor, accumulate bool) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransposeAInto shape mismatch %dx%d, %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	k, n, m := a.Rows, a.Cols, b.Cols
	if !accumulate {
		out.Zero()
	}
	if c.serialFor(n, n*k*m) {
		matmulTARange(out, a, b, 0, n)
		return
	}
	c.fanOut(n, func(s, e int) { matmulTARange(out, a, b, s, e) })
}

// MatMulTransposeB returns a @ bᵀ for a [n x k] and b [m x k].
func MatMulTransposeB(a, b *Tensor) *Tensor { return (*Compute)(nil).MatMulTransposeB(a, b) }

// MatMulTransposeB returns a @ bᵀ for a [n x k] and b [m x k].
func (c *Compute) MatMulTransposeB(a, b *Tensor) *Tensor {
	out := c.alloc(a.Rows, b.Rows)
	c.MatMulTransposeBInto(out, a, b, false)
	return out
}

// matmulTBRange computes one zero-seeded dot product per output element
// and either stores it or adds it to the existing value in one addition.
// Output columns are processed in pairs — two independent dot products per
// pass over arow — which doubles ILP without touching any element's own
// ascending-p accumulation order.
func matmulTBRange(out, a, b *Tensor, accumulate bool, start, end int) {
	k, m := a.Cols, b.Rows
	for i := start; i < end; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*m : (i+1)*m]
		j := 0
		for ; j+1 < m; j += 2 {
			b0 := b.Data[j*k : (j+1)*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k : (j+2)*k]
			var s0, s1 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
			}
			if accumulate {
				orow[j] += s0
				orow[j+1] += s1
			} else {
				orow[j] = s0
				orow[j+1] = s1
			}
		}
		if j < m {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			if accumulate {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// MatMulTransposeBInto computes out = a@bᵀ for a [n x k], b [m x k],
// out [n x m]. With accumulate, each element's complete dot product is
// added to the existing value in a single addition.
func (c *Compute) MatMulTransposeBInto(out, a, b *Tensor, accumulate bool) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransposeBInto shape mismatch %dx%d, %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	if c.serialFor(n, n*k*m) {
		matmulTBRange(out, a, b, accumulate, 0, n)
		return
	}
	c.fanOut(n, func(s, e int) { matmulTBRange(out, a, b, accumulate, s, e) })
}

// Gather returns the rows of a selected by idx, in order. This is the
// dense index_select kernel used by DENSE's repr_map (paper Algorithm 3,
// line 1).
func Gather(a *Tensor, idx []int32) *Tensor { return (*Compute)(nil).Gather(a, idx) }

func gatherRange(out, a *Tensor, idx []int32, start, end int) {
	cl := a.Cols
	for i := start; i < end; i++ {
		id := int(idx[i])
		copy(out.Data[i*cl:(i+1)*cl], a.Data[id*cl:id*cl+cl])
	}
}

// Gather returns the rows of a selected by idx, in order.
func (c *Compute) Gather(a *Tensor, idx []int32) *Tensor {
	out := c.alloc(len(idx), a.Cols)
	if c.serialFor(len(idx), len(idx)*a.Cols) {
		gatherRange(out, a, idx, 0, len(idx))
		return out
	}
	c.fanOut(len(idx), func(s, e int) { gatherRange(out, a, idx, s, e) })
	return out
}

// ScatterAdd accumulates each row of src into row idx[i] of dst. It is
// single-threaded by design: duplicate indices make per-edge scatter an
// inherently serialized reduction (the baseline-kernel property the paper
// contrasts DENSE against).
func ScatterAdd(dst, src *Tensor, idx []int32) {
	if src.Rows != len(idx) || src.Cols != dst.Cols {
		panic("tensor: ScatterAdd shape mismatch")
	}
	c := dst.Cols
	for i, id := range idx {
		drow := dst.Data[int(id)*c : int(id)*c+c]
		srow := src.Data[i*c : (i+1)*c]
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// GatherMatMulTB returns the fused gather+matmul used for embedding
// lookups: for a [n x k] and table [N x k], the result [n x len(idx)] has
// out[i][j] = ⟨a[i], table[idx[j]]⟩. It is MatMulTransposeB(a,
// Gather(table, idx)) without materializing the gathered matrix — the
// kernel the DistMult decoder uses to score a batch against shared
// negatives.
func GatherMatMulTB(a, table *Tensor, idx []int32) *Tensor {
	return (*Compute)(nil).GatherMatMulTB(a, table, idx)
}

// gatherMatMulTBRange iterates looked-up rows in the outer loop, in pairs,
// so each scattered table row is fetched once (m row-jumps total instead
// of (end-start)*m) and the rows of a stream sequentially with two
// independent dot products per pass. Each output element remains one
// zero-seeded ascending-p dot product.
func gatherMatMulTBRange(out, a, table *Tensor, idx []int32, start, end int) {
	k, m := a.Cols, len(idx)
	j := 0
	for ; j+1 < m; j += 2 {
		t0 := table.Data[int(idx[j])*k : int(idx[j])*k+k : int(idx[j])*k+k]
		t1 := table.Data[int(idx[j+1])*k : int(idx[j+1])*k+k : int(idx[j+1])*k+k]
		for i := start; i < end; i++ {
			arow := a.Data[i*k : (i+1)*k]
			var s0, s1 float32
			for p, av := range arow {
				s0 += av * t0[p]
				s1 += av * t1[p]
			}
			out.Data[i*m+j] = s0
			out.Data[i*m+j+1] = s1
		}
	}
	if j < m {
		trow := table.Data[int(idx[j])*k : int(idx[j])*k+k]
		for i := start; i < end; i++ {
			arow := a.Data[i*k : (i+1)*k]
			var s float32
			for p, av := range arow {
				s += av * trow[p]
			}
			out.Data[i*m+j] = s
		}
	}
}

// GatherMatMulTB computes out[i][j] = ⟨a[i], table[idx[j]]⟩ fused.
func (c *Compute) GatherMatMulTB(a, table *Tensor, idx []int32) *Tensor {
	if a.Cols != table.Cols {
		panic(fmt.Sprintf("tensor: GatherMatMulTB width mismatch %d vs %d", a.Cols, table.Cols))
	}
	n, k, m := a.Rows, a.Cols, len(idx)
	out := c.alloc(n, m)
	if c.serialFor(n, n*k*m) {
		gatherMatMulTBRange(out, a, table, idx, 0, n)
		return out
	}
	c.fanOut(n, func(s, e int) { gatherMatMulTBRange(out, a, table, idx, s, e) })
	return out
}

func matMulGatherRange(out, g, table *Tensor, idx []int32, start, end int) {
	m, k := len(idx), table.Cols
	for i := start; i < end; i++ {
		grow := g.Data[i*m : (i+1)*m]
		orow := out.Data[i*k : (i+1)*k]
		for j, gv := range grow {
			if gv == 0 {
				continue
			}
			trow := table.Data[int(idx[j])*k : int(idx[j])*k+k]
			for p, tv := range trow {
				orow[p] += gv * tv
			}
		}
	}
}

// matMulGatherInto accumulates out[i] += Σ_j g[i][j] · table[idx[j]] — the
// gradient of GatherMatMulTB with respect to a, again without
// materializing the gathered matrix. out is [n x k], g [n x len(idx)],
// table [N x k].
func (c *Compute) matMulGatherInto(out, g, table *Tensor, idx []int32) {
	n, m, k := g.Rows, len(idx), table.Cols
	if out.Rows != n || out.Cols != k || g.Cols != m {
		panic("tensor: matMulGatherInto shape mismatch")
	}
	if c.serialFor(n, n*k*m) {
		matMulGatherRange(out, g, table, idx, 0, n)
		return
	}
	c.fanOut(n, func(s, e int) { matMulGatherRange(out, g, table, idx, s, e) })
}

// GatherSegmentSum fuses Gather + SegmentSum (paper Algorithm 3, lines
// 1-2): out[s] = Σ_{r in segment s} a[idx[r]], never materializing the
// [len(idx) x cols] gathered matrix — the largest intermediate of a GNN
// forward pass. offsets follow the SegmentSum convention over len(idx)
// rows.
func GatherSegmentSum(a *Tensor, idx []int32, offsets []int32) *Tensor {
	return (*Compute)(nil).GatherSegmentSum(a, idx, offsets)
}

func gatherSegmentSumRange(out, a *Tensor, idx, offsets []int32, lo, hi int) {
	cl := a.Cols
	for s := lo; s < hi; s++ {
		orow := out.Data[s*cl : (s+1)*cl]
		end := segmentEnd(offsets, s, len(idx))
		for r := int(offsets[s]); r < end; r++ {
			arow := a.Data[int(idx[r])*cl : int(idx[r])*cl+cl]
			for j, v := range arow {
				orow[j] += v
			}
		}
	}
}

// GatherSegmentSum fuses Gather + SegmentSum; see the package function.
func (c *Compute) GatherSegmentSum(a *Tensor, idx []int32, offsets []int32) *Tensor {
	ns := checkOffsets(offsets, len(idx))
	out := c.alloc(ns, a.Cols)
	if c.serialFor(ns, len(idx)*a.Cols) {
		gatherSegmentSumRange(out, a, idx, offsets, 0, ns)
		return out
	}
	c.fanOut(ns, func(lo, hi int) { gatherSegmentSumRange(out, a, idx, offsets, lo, hi) })
	return out
}

// GatherSegmentMean fuses Gather + SegmentMean; empty segments yield a
// zero row.
func GatherSegmentMean(a *Tensor, idx []int32, offsets []int32) *Tensor {
	return (*Compute)(nil).GatherSegmentMean(a, idx, offsets)
}

// GatherSegmentMean fuses Gather + SegmentMean; see the package function.
func (c *Compute) GatherSegmentMean(a *Tensor, idx []int32, offsets []int32) *Tensor {
	out := c.GatherSegmentSum(a, idx, offsets)
	scaleSegmentMean(out, offsets, len(idx))
	return out
}

// scaleSegmentMean divides each summed segment row by its row count,
// matching SegmentMean's arithmetic exactly.
func scaleSegmentMean(out *Tensor, offsets []int32, n int) {
	for s := 0; s < out.Rows; s++ {
		cnt := segmentEnd(offsets, s, n) - int(offsets[s])
		if cnt > 1 {
			inv := 1 / float32(cnt)
			orow := out.Row(s)
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
}

// checkOffsets validates a segment offsets array against n total rows and
// returns the number of segments. offsets[s] is the start row of segment s;
// segment s spans [offsets[s], offsets[s+1]) with the final segment ending
// at n. Offsets must be non-decreasing and start at 0.
func checkOffsets(offsets []int32, n int) int {
	if len(offsets) == 0 {
		if n != 0 {
			panic("tensor: empty offsets for non-empty input")
		}
		return 0
	}
	if offsets[0] != 0 {
		panic("tensor: offsets must start at 0")
	}
	for s := 1; s < len(offsets); s++ {
		if offsets[s] < offsets[s-1] {
			panic("tensor: offsets must be non-decreasing")
		}
	}
	if int(offsets[len(offsets)-1]) > n {
		panic(fmt.Sprintf("tensor: offsets end %d exceeds rows %d", offsets[len(offsets)-1], n))
	}
	return len(offsets)
}

// segmentEnd returns the exclusive end row of segment s.
func segmentEnd(offsets []int32, s, n int) int {
	if s+1 < len(offsets) {
		return int(offsets[s+1])
	}
	return n
}

// SegmentSum sums contiguous row segments of a. The result has one row per
// segment. This is the dense segment_sum of paper Algorithm 3, line 2.
func SegmentSum(a *Tensor, offsets []int32) *Tensor { return (*Compute)(nil).SegmentSum(a, offsets) }

func segmentSumRange(out, a *Tensor, offsets []int32, lo, hi int) {
	cl := a.Cols
	for s := lo; s < hi; s++ {
		orow := out.Data[s*cl : (s+1)*cl]
		end := segmentEnd(offsets, s, a.Rows)
		for r := int(offsets[s]); r < end; r++ {
			arow := a.Data[r*cl : (r+1)*cl]
			for j, v := range arow {
				orow[j] += v
			}
		}
	}
}

// SegmentSum sums contiguous row segments of a.
func (c *Compute) SegmentSum(a *Tensor, offsets []int32) *Tensor {
	ns := checkOffsets(offsets, a.Rows)
	out := c.alloc(ns, a.Cols)
	if c.serialFor(ns, a.Rows*a.Cols) {
		segmentSumRange(out, a, offsets, 0, ns)
		return out
	}
	c.fanOut(ns, func(lo, hi int) { segmentSumRange(out, a, offsets, lo, hi) })
	return out
}

// SegmentMean averages contiguous row segments of a; empty segments yield a
// zero row.
func SegmentMean(a *Tensor, offsets []int32) *Tensor { return (*Compute)(nil).SegmentMean(a, offsets) }

// SegmentMean averages contiguous row segments of a.
func (c *Compute) SegmentMean(a *Tensor, offsets []int32) *Tensor {
	out := c.SegmentSum(a, offsets)
	scaleSegmentMean(out, offsets, a.Rows)
	return out
}

// SegmentSoftmax applies a numerically-stable softmax within each contiguous
// row segment of a column vector a [n x 1]. Used for GAT attention weights.
func SegmentSoftmax(a *Tensor, offsets []int32) *Tensor {
	return (*Compute)(nil).SegmentSoftmax(a, offsets)
}

func segmentSoftmaxRange(out, a *Tensor, offsets []int32, lo, hi int) {
	for s := lo; s < hi; s++ {
		start, end := int(offsets[s]), segmentEnd(offsets, s, a.Rows)
		if start == end {
			continue
		}
		maxV := a.Data[start]
		for r := start + 1; r < end; r++ {
			if a.Data[r] > maxV {
				maxV = a.Data[r]
			}
		}
		var sum float64
		for r := start; r < end; r++ {
			e := math.Exp(float64(a.Data[r] - maxV))
			out.Data[r] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for r := start; r < end; r++ {
			out.Data[r] *= inv
		}
	}
}

// SegmentSoftmax applies a per-segment softmax; segments are independent,
// so they split across goroutines.
func (c *Compute) SegmentSoftmax(a *Tensor, offsets []int32) *Tensor {
	if a.Cols != 1 {
		panic("tensor: SegmentSoftmax expects a column vector")
	}
	ns := checkOffsets(offsets, a.Rows)
	out := c.alloc(a.Rows, 1)
	if c.serialFor(ns, a.Rows*8) {
		segmentSoftmaxRange(out, a, offsets, 0, ns)
		return out
	}
	c.fanOut(ns, func(lo, hi int) { segmentSoftmaxRange(out, a, offsets, lo, hi) })
	return out
}

// RowSoftmax applies a numerically-stable softmax along each row of a.
func RowSoftmax(a *Tensor) *Tensor { return (*Compute)(nil).RowSoftmax(a) }

func rowSoftmaxRange(out, a *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow, orow := a.Row(i), out.Row(i)
		maxV := arow[0]
		for _, v := range arow[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range arow {
			e := math.Exp(float64(v - maxV))
			orow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
}

// RowSoftmax applies a softmax along each row; rows split across
// goroutines.
func (c *Compute) RowSoftmax(a *Tensor) *Tensor {
	out := c.alloc(a.Rows, a.Cols)
	if c.serialFor(a.Rows, a.Rows*a.Cols*8) {
		rowSoftmaxRange(out, a, 0, a.Rows)
		return out
	}
	c.fanOut(a.Rows, func(lo, hi int) { rowSoftmaxRange(out, a, lo, hi) })
	return out
}
