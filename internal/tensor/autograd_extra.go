package tensor

import "fmt"

// MatMulTB records a @ bᵀ for a [n x k] and b [m x k], producing [n x m].
// Used by the DistMult decoder to score a batch against shared negatives.
func (tp *Tape) MatMulTB(a, b *Node) *Node {
	out := tp.c.MatMulTransposeB(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			tp.c.MatMulInto(a.ensureGrad(), g, b.Value, true)
		}
		if b.requiresGrad {
			tp.c.MatMulTransposeAInto(b.ensureGrad(), g, a.Value, true)
		}
	})
}

// GatherMatMulTB records a @ table[idx]ᵀ — the fused gather+matmul used
// for embedding lookups: scoring each row of a against looked-up rows of
// an embedding table without materializing the gathered matrix. The
// gradient to a streams the table rows again (fused), and the gradient to
// the table scatter-adds gᵀ@a into the selected rows.
func (tp *Tape) GatherMatMulTB(a, table *Node, idx []int32) *Node {
	out := tp.c.GatherMatMulTB(a.Value, table.Value, idx)
	req := a.requiresGrad || table.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			tp.c.matMulGatherInto(a.ensureGrad(), g, table.Value, idx)
		}
		if table.requiresGrad {
			gt := tp.c.MatMulTransposeA(g, a.Value) // [len(idx) x k]
			ScatterAdd(table.ensureGrad(), gt, idx)
		}
	})
}

// GatherSegmentSum records the fused Gather + SegmentSum over a's rows
// selected by idx (paper Algorithm 3, lines 1-2, fused). The backward pass
// scatter-adds each segment's gradient row into the gathered source rows.
func (tp *Tape) GatherSegmentSum(a *Node, idx []int32, offsets []int32) *Node {
	out := tp.c.GatherSegmentSum(a.Value, idx, offsets)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for s := 0; s < g.Rows; s++ {
			grow := g.Row(s)
			end := segmentEnd(offsets, s, len(idx))
			for r := int(offsets[s]); r < end; r++ {
				garow := ga.Row(int(idx[r]))
				for j, v := range grow {
					garow[j] += v
				}
			}
		}
	})
}

// GatherSegmentMean records the fused Gather + SegmentMean; empty segments
// yield zeros.
func (tp *Tape) GatherSegmentMean(a *Node, idx []int32, offsets []int32) *Node {
	out := tp.c.GatherSegmentMean(a.Value, idx, offsets)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for s := 0; s < g.Rows; s++ {
			start, end := int(offsets[s]), segmentEnd(offsets, s, len(idx))
			cnt := end - start
			if cnt == 0 {
				continue
			}
			inv := 1 / float32(cnt)
			grow := g.Row(s)
			for r := start; r < end; r++ {
				garow := ga.Row(int(idx[r]))
				for j, v := range grow {
					garow[j] += v * inv
				}
			}
		}
	})
}

// SliceCols records the column slice a[:, start:end]. The ComplEx decoder
// uses it to split embeddings into real and imaginary halves; the gradient
// adds into the sliced column block.
func (tp *Tape) SliceCols(a *Node, start, end int) *Node {
	if start < 0 || end > a.Value.Cols || start > end {
		panic(fmt.Sprintf("tensor: SliceCols [%d:%d] of %d cols", start, end, a.Value.Cols))
	}
	out := tp.c.alloc(a.Value.Rows, end-start)
	for i := 0; i < out.Rows; i++ {
		copy(out.Row(i), a.Value.Row(i)[start:end])
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i := 0; i < g.Rows; i++ {
			garow, grow := ga.Row(i)[start:end], g.Row(i)
			for j, v := range grow {
				garow[j] += v
			}
		}
	})
}

// AddColVec records out[i][j] = a[i][j] + v[i][0] for a [n x m] and the
// column vector v [n x 1]: a per-row bias broadcast across columns. The
// TransE decoder uses it to add the per-query −‖q‖² term to a score block.
// grad_v[i] accumulates g's row i in ascending column order.
func (tp *Tape) AddColVec(a, v *Node) *Node {
	if v.Value.Rows != a.Value.Rows || v.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: AddColVec v [%dx%d] for a [%dx%d]",
			v.Value.Rows, v.Value.Cols, a.Value.Rows, a.Value.Cols))
	}
	out := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < out.Rows; i++ {
		orow, arow, b := out.Row(i), a.Value.Row(i), v.Value.Data[i]
		for j, x := range arow {
			orow[j] = x + b
		}
	}
	req := a.requiresGrad || v.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, x := range g.Data {
				ga.Data[i] += x
			}
		}
		if v.requiresGrad {
			gv := v.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				var s float32
				for _, x := range g.Row(i) {
					s += x
				}
				gv.Data[i] += s
			}
		}
	})
}

// AddRowVec records out[i][j] = a[i][j] + v[j][0] for a [n x m] and the
// vector v [m x 1] interpreted as a per-column bias. The TransE decoder
// uses it to add the per-candidate −‖e‖² term (one entry per negative)
// without transposing. grad_v[j] accumulates g's column j in ascending row
// order.
func (tp *Tape) AddRowVec(a, v *Node) *Node {
	if v.Value.Rows != a.Value.Cols || v.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: AddRowVec v [%dx%d] for a [%dx%d]",
			v.Value.Rows, v.Value.Cols, a.Value.Rows, a.Value.Cols))
	}
	out := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	bias := v.Value.Data
	for i := 0; i < out.Rows; i++ {
		orow, arow := out.Row(i), a.Value.Row(i)
		for j, x := range arow {
			orow[j] = x + bias[j]
		}
	}
	req := a.requiresGrad || v.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, x := range g.Data {
				ga.Data[i] += x
			}
		}
		if v.requiresGrad {
			gv := v.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				for j, x := range g.Row(i) {
					gv.Data[j] += x
				}
			}
		}
	})
}

// ScatterAddRows records out[idx[i]] += a[i] for an output with numRows
// rows. It is the COO aggregation kernel used by the DGL/PyG baseline
// execution mode (per-edge scatter instead of DENSE's segment sum).
func (tp *Tape) ScatterAddRows(a *Node, idx []int32, numRows int) *Node {
	if len(idx) != a.Value.Rows {
		panic(fmt.Sprintf("tensor: ScatterAddRows %d indices for %d rows", len(idx), a.Value.Rows))
	}
	out := tp.c.alloc(numRows, a.Value.Cols)
	ScatterAdd(out, a.Value, idx)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		cols := g.Cols
		for i, id := range idx {
			grow := g.Data[int(id)*cols : int(id)*cols+cols]
			garow := ga.Data[i*cols : (i+1)*cols]
			for j, v := range grow {
				garow[j] += v
			}
		}
	})
}
