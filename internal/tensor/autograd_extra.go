package tensor

import "fmt"

// MatMulTB records a @ bᵀ for a [n x k] and b [m x k], producing [n x m].
// Used by the DistMult decoder to score a batch against shared negatives.
func (tp *Tape) MatMulTB(a, b *Node) *Node {
	out := MatMulTransposeB(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(MatMul(g, b.Value))
		}
		if b.requiresGrad {
			b.accumulate(MatMulTransposeA(g, a.Value))
		}
	})
}

// ScatterAddRows records out[idx[i]] += a[i] for an output with numRows
// rows. It is the COO aggregation kernel used by the DGL/PyG baseline
// execution mode (per-edge scatter instead of DENSE's segment sum).
func (tp *Tape) ScatterAddRows(a *Node, idx []int32, numRows int) *Node {
	if len(idx) != a.Value.Rows {
		panic(fmt.Sprintf("tensor: ScatterAddRows %d indices for %d rows", len(idx), a.Value.Rows))
	}
	out := New(numRows, a.Value.Cols)
	ScatterAdd(out, a.Value, idx)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		a.accumulate(Gather(g, idx))
	})
}
