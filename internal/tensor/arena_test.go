package tensor

import (
	"math/rand"
	"testing"
)

func TestArenaAllocZeroedAndStable(t *testing.T) {
	a := NewArena()
	x := a.Alloc(3, 4)
	if x.Rows != 3 || x.Cols != 4 || len(x.Data) != 12 {
		t.Fatalf("bad shape %dx%d len %d", x.Rows, x.Cols, len(x.Data))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Alloc not zeroed")
		}
	}
	x.Fill(7)
	// Headers handed out earlier must survive pool growth.
	var many []*Tensor
	for i := 0; i < 4*arenaHdrChunk; i++ {
		many = append(many, a.Alloc(1, 1))
	}
	if x.At(0, 0) != 7 {
		t.Fatal("early tensor corrupted by pool growth")
	}
	for i, m := range many {
		m.Data[0] = float32(i)
	}
	for i, m := range many {
		if m.Data[0] != float32(i) {
			t.Fatalf("header %d aliased", i)
		}
	}
	// After Reset, recycled buffers come back zeroed.
	a.Reset()
	y := a.Alloc(3, 4)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("recycled buffer not zeroed")
		}
	}
}

func TestArenaOversizedAllocation(t *testing.T) {
	a := NewArena()
	big := a.Alloc(1, arenaSlabFloats+100)
	if len(big.Data) != arenaSlabFloats+100 {
		t.Fatal("oversized alloc truncated")
	}
	a.Reset()
	big2 := a.Alloc(1, arenaSlabFloats+100)
	if len(big2.Data) != arenaSlabFloats+100 {
		t.Fatal("oversized realloc truncated")
	}
}

func TestArenaZeroSizedTensors(t *testing.T) {
	a := NewArena()
	for _, shape := range [][2]int{{0, 0}, {0, 5}, {5, 0}} {
		x := a.Alloc(shape[0], shape[1])
		if x.Rows != shape[0] || x.Cols != shape[1] || len(x.Data) != 0 {
			t.Fatalf("bad empty tensor %dx%d", shape[0], shape[1])
		}
	}
}

// TestArenaSteadyStateZeroAllocs is the allocation contract of the arena:
// once warmed up, a full per-batch kernel cycle (forward + backward +
// write-back + Reset) performs zero heap allocations on the serial
// deterministic path. The step body is BenchTrainStep — the exact
// sequence cmd/benchkernels measures and CI gates. (Multi-worker kernels
// additionally pay a few small allocations per kernel launch for
// goroutine dispatch; that overhead is reported, not hidden, by
// cmd/benchkernels.)
func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arena := NewArena()
	c := NewCompute(1, arena)
	h0 := randn(rng, 300, 32)
	w1 := randn(rng, 32, 32)
	w2 := randn(rng, 32, 32)
	dh0 := New(h0.Rows, h0.Cols)
	idx := randIdx(rng, 900, h0.Rows)
	offsets := make([]int32, 60)
	for s := 1; s < len(offsets); s++ {
		offsets[s] = offsets[s-1] + 15
	}
	step := func() {
		BenchTrainStep(c, h0, w1, w2, dh0, idx, offsets)
		arena.Reset()
	}
	step() // warm up the slabs and header pool
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state batch performed %.0f heap allocations, want 0", allocs)
	}
}

func TestTapeResetRecyclesNodes(t *testing.T) {
	arena := NewArena()
	tp := NewTapeWith(NewCompute(1, arena))
	rng := rand.New(rand.NewSource(2))
	x := randn(rng, 8, 8)
	w := randn(rng, 8, 8)
	run := func() float32 {
		tp.Reset()
		arena.Reset()
		xn := tp.Leaf(x, true)
		wn := tp.Leaf(w, true)
		loss := tp.MeanAll(tp.ReLU(tp.MatMul(xn, wn)))
		tp.Backward(loss)
		if xn.Grad() == nil || wn.Grad() == nil {
			t.Fatal("missing gradients after reuse")
		}
		return loss.Value.Data[0]
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("reused tape diverged: %v vs %v", got, first)
		}
	}
	if tp.Len() == 0 {
		t.Fatal("tape recorded nothing")
	}
}
