package tensor

import (
	"runtime"
	"sync"
)

// The dense kernels in this package parallelize across CPU cores. This is
// the substitution for the paper's GPU execution: DENSE's layout lets
// every kernel split into independent row/segment ranges (the property
// that makes it fast on SIMT hardware), whereas the baseline's per-edge
// scatter-add must serialize its accumulation (the property that makes
// sparse kernels underutilize GPUs). ScatterAdd is therefore deliberately
// left single-threaded.

// parallelThreshold is the minimum amount of work (rows × cols) before a
// kernel fans out to multiple goroutines.
const parallelThreshold = 1 << 14

// parallelFor splits [0, n) into contiguous chunks and runs fn on each
// concurrently. fn must only touch state owned by its range.
func parallelFor(n int, work int, fn func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if n == 0 {
		return
	}
	if workers <= 1 || work < parallelThreshold || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
