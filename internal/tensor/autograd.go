package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Node is a value in an autodiff computation graph recorded on a Tape.
type Node struct {
	// Value holds the forward result.
	Value *Tensor

	grad         *Tensor
	requiresGrad bool
	backward     func(grad *Tensor)
	tape         *Tape
}

// Grad returns the accumulated gradient of the node after Tape.Backward,
// or nil if no gradient flowed to it.
func (n *Node) Grad() *Tensor { return n.grad }

// RequiresGrad reports whether gradients are tracked for this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; each training worker owns its own tape.
//
// A tape built with NewTapeWith runs every kernel on the given Compute
// context: kernels fan out to at most its worker count, and every tensor
// the tape produces — op outputs and gradients — is drawn from its Arena
// when one is attached. Arena-backed tapes follow the arena's ownership
// rules: all values and gradients are invalidated by Arena.Reset, so a
// training step must consume them (optimizer updates, metrics, write-back)
// before resetting. Tape.Reset additionally recycles the tape's node
// bookkeeping, so the steady-state Reset/record cycle reuses memory
// instead of growing it.
type Tape struct {
	c     *Compute
	nodes []*Node
	free  []*Node
}

// NewTape returns an empty tape on the default compute context
// (GOMAXPROCS workers, heap-allocated tensors).
func NewTape() *Tape { return &Tape{} }

// NewTapeWith returns an empty tape that runs kernels on c.
func NewTapeWith(c *Compute) *Tape { return &Tape{c: c} }

// Reset discards all recorded nodes so the tape can be reused. Node
// structs are pooled and reused by subsequent records. Reset does NOT
// reset an attached arena — the caller owns that ordering (reset the tape
// first, then the arena).
func (tp *Tape) Reset() {
	for _, n := range tp.nodes {
		*n = Node{}
	}
	tp.free = append(tp.free, tp.nodes...)
	tp.nodes = tp.nodes[:0]
}

// Len returns the number of recorded nodes.
func (tp *Tape) Len() int { return len(tp.nodes) }

// Alloc returns a zeroed rows x cols tensor on the tape's compute context
// (arena-owned when the context has an arena). Layers use it for
// constant-valued per-batch buffers that should recycle with the batch.
func (tp *Tape) Alloc(rows, cols int) *Tensor { return tp.c.alloc(rows, cols) }

func (tp *Tape) newNode() *Node {
	if k := len(tp.free); k > 0 {
		n := tp.free[k-1]
		tp.free = tp.free[:k-1]
		return n
	}
	return &Node{}
}

// Leaf registers t as an input node. If requiresGrad is true, gradients
// with respect to t accumulate in Grad() during Backward.
func (tp *Tape) Leaf(t *Tensor, requiresGrad bool) *Node {
	n := tp.newNode()
	n.Value, n.requiresGrad, n.tape = t, requiresGrad, tp
	tp.nodes = append(tp.nodes, n)
	return n
}

// Constant registers t as an input that never needs gradients.
func (tp *Tape) Constant(t *Tensor) *Node { return tp.Leaf(t, false) }

func (tp *Tape) record(value *Tensor, requiresGrad bool, backward func(grad *Tensor)) *Node {
	n := tp.newNode()
	n.Value, n.requiresGrad, n.tape = value, requiresGrad, tp
	if requiresGrad {
		n.backward = backward
	}
	tp.nodes = append(tp.nodes, n)
	return n
}

// ensureGrad returns n's gradient buffer, allocating it zeroed on first
// use so backward passes can accumulate into it in place.
func (n *Node) ensureGrad() *Tensor {
	if n.grad == nil {
		n.grad = n.tape.c.alloc(n.Value.Rows, n.Value.Cols)
	}
	return n.grad
}

// accumulate adds g into n's gradient buffer.
func (n *Node) accumulate(g *Tensor) {
	if !n.requiresGrad {
		return
	}
	n.ensureGrad().AddInPlace(g)
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (1x1) node, seeding its gradient with 1.
func (tp *Tape) Backward(root *Node) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward root must be scalar, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	if root.tape != tp {
		panic("tensor: Backward root recorded on a different tape")
	}
	seed := tp.c.alloc(1, 1)
	seed.Data[0] = 1
	root.accumulate(seed)
	// Nodes were appended in topological order, so a reverse sweep visits
	// every node after all of its consumers.
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.backward != nil && n.grad != nil {
			n.backward(n.grad)
		}
	}
}

// MatMul records a @ b. Both backward products accumulate directly into
// the operands' gradient buffers (no temporaries).
func (tp *Tape) MatMul(a, b *Node) *Node {
	out := tp.c.MatMul(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			tp.c.MatMulTransposeBInto(a.ensureGrad(), g, b.Value, true)
		}
		if b.requiresGrad {
			tp.c.MatMulTransposeAInto(b.ensureGrad(), a.Value, g, true)
		}
	})
}

// Add records the element-wise sum a + b (same shape).
func (tp *Tape) Add(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Add shape mismatch")
	}
	out := tp.c.clone(a.Value)
	out.AddInPlace(b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			b.accumulate(g)
		}
	})
}

// Sub records a - b (same shape).
func (tp *Tape) Sub(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Sub shape mismatch")
	}
	out := tp.c.clone(a.Value)
	for i, v := range b.Value.Data {
		out.Data[i] -= v
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			for i, v := range g.Data {
				gb.Data[i] -= v
			}
		}
	})
}

// Mul records the element-wise (Hadamard) product a * b (same shape).
func (tp *Tape) Mul(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Mul shape mismatch")
	}
	out := tp.c.clone(a.Value)
	for i, v := range b.Value.Data {
		out.Data[i] *= v
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i, v := range b.Value.Data {
				ga.Data[i] += g.Data[i] * v
			}
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			for i, v := range a.Value.Data {
				gb.Data[i] += g.Data[i] * v
			}
		}
	})
}

// Scale records a * s for scalar s.
func (tp *Tape) Scale(a *Node, s float32) *Node {
	out := tp.c.clone(a.Value)
	out.ScaleInPlace(s)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, v := range g.Data {
			ga.Data[i] += v * s
		}
	})
}

// AddBias records a + b where b is a [1 x m] row vector broadcast over the
// rows of a [n x m].
func (tp *Tape) AddBias(a, b *Node) *Node {
	if b.Value.Rows != 1 || b.Value.Cols != a.Value.Cols {
		panic("tensor: AddBias expects bias [1 x cols(a)]")
	}
	out := tp.c.clone(a.Value)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, v := range b.Value.Data {
			row[j] += v
		}
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, v := range row {
					gb.Data[j] += v
				}
			}
		}
	})
}

// ReLU records max(a, 0).
func (tp *Tape) ReLU(a *Node) *Node {
	out := tp.c.clone(a.Value)
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, v := range a.Value.Data {
			if v > 0 {
				ga.Data[i] += g.Data[i]
			}
		}
	})
}

// LeakyReLU records max(a, alpha*a) for 0 < alpha < 1.
func (tp *Tape) LeakyReLU(a *Node, alpha float32) *Node {
	out := tp.c.clone(a.Value)
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = v * alpha
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, v := range a.Value.Data {
			if v < 0 {
				ga.Data[i] += g.Data[i] * alpha
			} else {
				ga.Data[i] += g.Data[i]
			}
		}
	})
}

// Sigmoid records 1 / (1 + exp(-a)).
func (tp *Tape) Sigmoid(a *Node) *Node {
	out := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, y := range out.Data {
			ga.Data[i] += g.Data[i] * y * (1 - y)
		}
	})
}

// Tanh records tanh(a).
func (tp *Tape) Tanh(a *Node) *Node {
	out := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, y := range out.Data {
			ga.Data[i] += g.Data[i] * (1 - y*y)
		}
	})
}

// Gather records row selection a[idx]. The backward pass scatter-adds the
// output gradient directly into the source node's gradient buffer, which
// is how gradients reach the base-representation table (paper §3, step 6).
func (tp *Tape) Gather(a *Node, idx []int32) *Node {
	out := tp.c.Gather(a.Value, idx)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ScatterAdd(a.ensureGrad(), g, idx)
	})
}

// SliceRows records the row slice a[start:end].
func (tp *Tape) SliceRows(a *Node, start, end int) *Node {
	if start < 0 || end > a.Value.Rows || start > end {
		panic(fmt.Sprintf("tensor: SliceRows [%d:%d] of %d rows", start, end, a.Value.Rows))
	}
	cols := a.Value.Cols
	out := tp.c.alloc(end-start, cols)
	copy(out.Data, a.Value.Data[start*cols:end*cols])
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		dst := ga.Data[start*cols : end*cols]
		for i, v := range g.Data {
			dst[i] += v
		}
	})
}

// ConcatRows records vertical concatenation [a; b].
func (tp *Tape) ConcatRows(a, b *Node) *Node {
	if a.Value.Cols != b.Value.Cols {
		panic("tensor: ConcatRows column mismatch")
	}
	out := tp.c.alloc(a.Value.Rows+b.Value.Rows, a.Value.Cols)
	copy(out.Data, a.Value.Data)
	copy(out.Data[len(a.Value.Data):], b.Value.Data)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += g.Data[i]
			}
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			off := len(a.Value.Data)
			for i := range gb.Data {
				gb.Data[i] += g.Data[off+i]
			}
		}
	})
}

// ConcatCols records horizontal concatenation [a | b].
func (tp *Tape) ConcatCols(a, b *Node) *Node {
	if a.Value.Rows != b.Value.Rows {
		panic("tensor: ConcatCols row mismatch")
	}
	ac, bc := a.Value.Cols, b.Value.Cols
	out := tp.c.alloc(a.Value.Rows, ac+bc)
	for i := 0; i < out.Rows; i++ {
		copy(out.Row(i)[:ac], a.Value.Row(i))
		copy(out.Row(i)[ac:], b.Value.Row(i))
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				garow, grow := ga.Row(i), g.Row(i)[:ac]
				for j, v := range grow {
					garow[j] += v
				}
			}
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				gbrow, grow := gb.Row(i), g.Row(i)[ac:]
				for j, v := range grow {
					gbrow[j] += v
				}
			}
		}
	})
}

// SegmentSum records per-segment row sums (paper Algorithm 3, line 2).
func (tp *Tape) SegmentSum(a *Node, offsets []int32) *Node {
	out := tp.c.SegmentSum(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for s := 0; s < g.Rows; s++ {
			grow := g.Row(s)
			end := segmentEnd(offsets, s, n)
			for r := int(offsets[s]); r < end; r++ {
				garow := ga.Row(r)
				for j, v := range grow {
					garow[j] += v
				}
			}
		}
	})
}

// SegmentMean records per-segment row means; empty segments yield zeros.
func (tp *Tape) SegmentMean(a *Node, offsets []int32) *Node {
	out := tp.c.SegmentMean(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for s := 0; s < g.Rows; s++ {
			start, end := int(offsets[s]), segmentEnd(offsets, s, n)
			cnt := end - start
			if cnt == 0 {
				continue
			}
			inv := 1 / float32(cnt)
			grow := g.Row(s)
			for r := start; r < end; r++ {
				garow := ga.Row(r)
				for j, v := range grow {
					garow[j] += v * inv
				}
			}
		}
	})
}

// SegmentSoftmax records a softmax within each contiguous segment of the
// column vector a.
func (tp *Tape) SegmentSoftmax(a *Node, offsets []int32) *Node {
	out := tp.c.SegmentSoftmax(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for s := 0; s < len(offsets); s++ {
			start, end := int(offsets[s]), segmentEnd(offsets, s, n)
			var dot float64
			for r := start; r < end; r++ {
				dot += float64(g.Data[r]) * float64(out.Data[r])
			}
			for r := start; r < end; r++ {
				ga.Data[r] += out.Data[r] * (g.Data[r] - float32(dot))
			}
		}
	})
}

// MulColBroadcast records a * w where w is an [n x 1] column vector scaling
// each row of a [n x d]. Used to apply attention weights in GAT.
func (tp *Tape) MulColBroadcast(a, w *Node) *Node {
	if w.Value.Cols != 1 || w.Value.Rows != a.Value.Rows {
		panic("tensor: MulColBroadcast expects w [rows(a) x 1]")
	}
	out := tp.c.clone(a.Value)
	for i := 0; i < out.Rows; i++ {
		wi := w.Value.Data[i]
		row := out.Row(i)
		for j := range row {
			row[j] *= wi
		}
	}
	req := a.requiresGrad || w.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := 0; i < ga.Rows; i++ {
				wi := w.Value.Data[i]
				garow, grow := ga.Row(i), g.Row(i)
				for j, v := range grow {
					garow[j] += v * wi
				}
			}
		}
		if w.requiresGrad {
			gw := w.ensureGrad()
			for i := 0; i < g.Rows; i++ {
				grow, arow := g.Row(i), a.Value.Row(i)
				var s float32
				for j, v := range grow {
					s += v * arow[j]
				}
				gw.Data[i] += s
			}
		}
	})
}

// RowSum records the per-row sum of a as an [n x 1] column vector.
func (tp *Tape) RowSum(a *Node) *Node {
	out := tp.c.alloc(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float32
		for _, v := range a.Value.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i := 0; i < ga.Rows; i++ {
			gi := g.Data[i]
			row := ga.Row(i)
			for j := range row {
				row[j] += gi
			}
		}
	})
}

// MeanAll records the scalar mean of all elements of a.
func (tp *Tape) MeanAll(a *Node) *Node {
	out := tp.c.alloc(1, 1)
	out.Data[0] = float32(a.Value.Sum() / float64(len(a.Value.Data)))
	inv := 1 / float32(len(a.Value.Data))
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		gv := g.Data[0] * inv
		for i := range ga.Data {
			ga.Data[i] += gv
		}
	})
}

// Dropout records inverted dropout with drop probability p using rng.
// With p <= 0 it is the identity.
func (tp *Tape) Dropout(a *Node, p float32, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic("tensor: Dropout probability must be < 1")
	}
	mask := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	scale := 1 / (1 - p)
	out := tp.c.alloc(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if rng.Float32() >= p {
			mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := a.ensureGrad()
		for i, m := range mask.Data {
			ga.Data[i] += g.Data[i] * m
		}
	})
}

// SoftmaxCrossEntropy records mean softmax cross-entropy between logits
// [n x C] and integer class labels. It returns the scalar loss node.
func (tp *Tape) SoftmaxCrossEntropy(logits *Node, labels []int32) *Node {
	n := logits.Value.Rows
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy %d labels for %d rows", len(labels), n))
	}
	probs := tp.c.RowSoftmax(logits.Value)
	out := tp.c.alloc(1, 1)
	var loss float64
	for i, lab := range labels {
		p := probs.At(i, int(lab))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
	}
	out.Data[0] = float32(loss / float64(n))
	return tp.record(out, logits.requiresGrad, func(g *Tensor) {
		gl := logits.ensureGrad()
		scale := g.Data[0] / float32(n)
		for i, lab := range labels {
			grow, prow := gl.Row(i), probs.Row(i)
			for j, pv := range prow {
				if int32(j) == lab {
					grow[j] += (pv - 1) * scale
				} else {
					grow[j] += pv * scale
				}
			}
		}
	})
}
