package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Node is a value in an autodiff computation graph recorded on a Tape.
type Node struct {
	// Value holds the forward result.
	Value *Tensor

	grad         *Tensor
	requiresGrad bool
	backward     func(grad *Tensor)
	tape         *Tape
}

// Grad returns the accumulated gradient of the node after Tape.Backward,
// or nil if no gradient flowed to it.
func (n *Node) Grad() *Tensor { return n.grad }

// RequiresGrad reports whether gradients are tracked for this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; each training worker owns its own tape.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded nodes so the tape can be reused.
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

// Len returns the number of recorded nodes.
func (tp *Tape) Len() int { return len(tp.nodes) }

// Leaf registers t as an input node. If requiresGrad is true, gradients
// with respect to t accumulate in Grad() during Backward.
func (tp *Tape) Leaf(t *Tensor, requiresGrad bool) *Node {
	n := &Node{Value: t, requiresGrad: requiresGrad, tape: tp}
	tp.nodes = append(tp.nodes, n)
	return n
}

// Constant registers t as an input that never needs gradients.
func (tp *Tape) Constant(t *Tensor) *Node { return tp.Leaf(t, false) }

func (tp *Tape) record(value *Tensor, requiresGrad bool, backward func(grad *Tensor)) *Node {
	n := &Node{Value: value, requiresGrad: requiresGrad, tape: tp}
	if requiresGrad {
		n.backward = backward
	}
	tp.nodes = append(tp.nodes, n)
	return n
}

// accumulate adds g into n's gradient buffer.
func (n *Node) accumulate(g *Tensor) {
	if !n.requiresGrad {
		return
	}
	if n.grad == nil {
		n.grad = g.Clone()
		return
	}
	n.grad.AddInPlace(g)
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (1x1) node, seeding its gradient with 1.
func (tp *Tape) Backward(root *Node) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward root must be scalar, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	if root.tape != tp {
		panic("tensor: Backward root recorded on a different tape")
	}
	seed := New(1, 1)
	seed.Data[0] = 1
	root.accumulate(seed)
	// Nodes were appended in topological order, so a reverse sweep visits
	// every node after all of its consumers.
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.backward != nil && n.grad != nil {
			n.backward(n.grad)
		}
	}
}

// MatMul records a @ b.
func (tp *Tape) MatMul(a, b *Node) *Node {
	out := MatMul(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(MatMulTransposeB(g, b.Value))
		}
		if b.requiresGrad {
			b.accumulate(MatMulTransposeA(a.Value, g))
		}
	})
}

// Add records the element-wise sum a + b (same shape).
func (tp *Tape) Add(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Add shape mismatch")
	}
	out := a.Value.Clone()
	out.AddInPlace(b.Value)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			b.accumulate(g)
		}
	})
}

// Sub records a - b (same shape).
func (tp *Tape) Sub(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Sub shape mismatch")
	}
	out := a.Value.Clone()
	for i, v := range b.Value.Data {
		out.Data[i] -= v
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			ng := g.Clone()
			ng.ScaleInPlace(-1)
			b.accumulate(ng)
		}
	})
}

// Mul records the element-wise (Hadamard) product a * b (same shape).
func (tp *Tape) Mul(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic("tensor: Mul shape mismatch")
	}
	out := a.Value.Clone()
	for i, v := range b.Value.Data {
		out.Data[i] *= v
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := g.Clone()
			for i, v := range b.Value.Data {
				ga.Data[i] *= v
			}
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := g.Clone()
			for i, v := range a.Value.Data {
				gb.Data[i] *= v
			}
			b.accumulate(gb)
		}
	})
}

// Scale records a * s for scalar s.
func (tp *Tape) Scale(a *Node, s float32) *Node {
	out := a.Value.Clone()
	out.ScaleInPlace(s)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		ga.ScaleInPlace(s)
		a.accumulate(ga)
	})
}

// AddBias records a + b where b is a [1 x m] row vector broadcast over the
// rows of a [n x m].
func (tp *Tape) AddBias(a, b *Node) *Node {
	if b.Value.Rows != 1 || b.Value.Cols != a.Value.Cols {
		panic("tensor: AddBias expects bias [1 x cols(a)]")
	}
	out := a.Value.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, v := range b.Value.Data {
			row[j] += v
		}
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			a.accumulate(g)
		}
		if b.requiresGrad {
			gb := New(1, g.Cols)
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, v := range row {
					gb.Data[j] += v
				}
			}
			b.accumulate(gb)
		}
	})
}

// ReLU records max(a, 0).
func (tp *Tape) ReLU(a *Node) *Node {
	out := a.Value.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		for i, v := range a.Value.Data {
			if v <= 0 {
				ga.Data[i] = 0
			}
		}
		a.accumulate(ga)
	})
}

// LeakyReLU records max(a, alpha*a) for 0 < alpha < 1.
func (tp *Tape) LeakyReLU(a *Node, alpha float32) *Node {
	out := a.Value.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = v * alpha
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		for i, v := range a.Value.Data {
			if v < 0 {
				ga.Data[i] *= alpha
			}
		}
		a.accumulate(ga)
	})
}

// Sigmoid records 1 / (1 + exp(-a)).
func (tp *Tape) Sigmoid(a *Node) *Node {
	out := New(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		for i, y := range out.Data {
			ga.Data[i] *= y * (1 - y)
		}
		a.accumulate(ga)
	})
}

// Tanh records tanh(a).
func (tp *Tape) Tanh(a *Node) *Node {
	out := New(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		for i, y := range out.Data {
			ga.Data[i] *= 1 - y*y
		}
		a.accumulate(ga)
	})
}

// Gather records row selection a[idx]. The backward pass scatter-adds the
// output gradient into the selected rows, which is how gradients reach the
// base-representation table (paper §3, step 6).
func (tp *Tape) Gather(a *Node, idx []int32) *Node {
	out := Gather(a.Value, idx)
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		ScatterAdd(ga, g, idx)
		a.accumulate(ga)
	})
}

// SliceRows records the row slice a[start:end].
func (tp *Tape) SliceRows(a *Node, start, end int) *Node {
	if start < 0 || end > a.Value.Rows || start > end {
		panic(fmt.Sprintf("tensor: SliceRows [%d:%d] of %d rows", start, end, a.Value.Rows))
	}
	out := New(end-start, a.Value.Cols)
	copy(out.Data, a.Value.Data[start*a.Value.Cols:end*a.Value.Cols])
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		copy(ga.Data[start*a.Value.Cols:end*a.Value.Cols], g.Data)
		a.accumulate(ga)
	})
}

// ConcatRows records vertical concatenation [a; b].
func (tp *Tape) ConcatRows(a, b *Node) *Node {
	if a.Value.Cols != b.Value.Cols {
		panic("tensor: ConcatRows column mismatch")
	}
	out := New(a.Value.Rows+b.Value.Rows, a.Value.Cols)
	copy(out.Data, a.Value.Data)
	copy(out.Data[len(a.Value.Data):], b.Value.Data)
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := New(a.Value.Rows, a.Value.Cols)
			copy(ga.Data, g.Data[:len(ga.Data)])
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := New(b.Value.Rows, b.Value.Cols)
			copy(gb.Data, g.Data[len(a.Value.Data):])
			b.accumulate(gb)
		}
	})
}

// ConcatCols records horizontal concatenation [a | b].
func (tp *Tape) ConcatCols(a, b *Node) *Node {
	if a.Value.Rows != b.Value.Rows {
		panic("tensor: ConcatCols row mismatch")
	}
	ac, bc := a.Value.Cols, b.Value.Cols
	out := New(a.Value.Rows, ac+bc)
	for i := 0; i < out.Rows; i++ {
		copy(out.Row(i)[:ac], a.Value.Row(i))
		copy(out.Row(i)[ac:], b.Value.Row(i))
	}
	req := a.requiresGrad || b.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := New(a.Value.Rows, ac)
			for i := 0; i < g.Rows; i++ {
				copy(ga.Row(i), g.Row(i)[:ac])
			}
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := New(b.Value.Rows, bc)
			for i := 0; i < g.Rows; i++ {
				copy(gb.Row(i), g.Row(i)[ac:])
			}
			b.accumulate(gb)
		}
	})
}

// SegmentSum records per-segment row sums (paper Algorithm 3, line 2).
func (tp *Tape) SegmentSum(a *Node, offsets []int32) *Node {
	out := SegmentSum(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		for s := 0; s < g.Rows; s++ {
			grow := g.Row(s)
			end := segmentEnd(offsets, s, n)
			for r := int(offsets[s]); r < end; r++ {
				copy(ga.Row(r), grow)
			}
		}
		a.accumulate(ga)
	})
}

// SegmentMean records per-segment row means; empty segments yield zeros.
func (tp *Tape) SegmentMean(a *Node, offsets []int32) *Node {
	out := SegmentMean(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		for s := 0; s < g.Rows; s++ {
			start, end := int(offsets[s]), segmentEnd(offsets, s, n)
			cnt := end - start
			if cnt == 0 {
				continue
			}
			inv := 1 / float32(cnt)
			grow := g.Row(s)
			for r := start; r < end; r++ {
				garow := ga.Row(r)
				for j, v := range grow {
					garow[j] = v * inv
				}
			}
		}
		a.accumulate(ga)
	})
}

// SegmentSoftmax records a softmax within each contiguous segment of the
// column vector a.
func (tp *Tape) SegmentSoftmax(a *Node, offsets []int32) *Node {
	out := SegmentSoftmax(a.Value, offsets)
	n := a.Value.Rows
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(n, 1)
		for s := 0; s < len(offsets); s++ {
			start, end := int(offsets[s]), segmentEnd(offsets, s, n)
			var dot float64
			for r := start; r < end; r++ {
				dot += float64(g.Data[r]) * float64(out.Data[r])
			}
			for r := start; r < end; r++ {
				ga.Data[r] = out.Data[r] * (g.Data[r] - float32(dot))
			}
		}
		a.accumulate(ga)
	})
}

// MulColBroadcast records a * w where w is an [n x 1] column vector scaling
// each row of a [n x d]. Used to apply attention weights in GAT.
func (tp *Tape) MulColBroadcast(a, w *Node) *Node {
	if w.Value.Cols != 1 || w.Value.Rows != a.Value.Rows {
		panic("tensor: MulColBroadcast expects w [rows(a) x 1]")
	}
	out := a.Value.Clone()
	for i := 0; i < out.Rows; i++ {
		wi := w.Value.Data[i]
		row := out.Row(i)
		for j := range row {
			row[j] *= wi
		}
	}
	req := a.requiresGrad || w.requiresGrad
	return tp.record(out, req, func(g *Tensor) {
		if a.requiresGrad {
			ga := g.Clone()
			for i := 0; i < ga.Rows; i++ {
				wi := w.Value.Data[i]
				row := ga.Row(i)
				for j := range row {
					row[j] *= wi
				}
			}
			a.accumulate(ga)
		}
		if w.requiresGrad {
			gw := New(w.Value.Rows, 1)
			for i := 0; i < g.Rows; i++ {
				grow, arow := g.Row(i), a.Value.Row(i)
				var s float32
				for j, v := range grow {
					s += v * arow[j]
				}
				gw.Data[i] = s
			}
			w.accumulate(gw)
		}
	})
}

// RowSum records the per-row sum of a as an [n x 1] column vector.
func (tp *Tape) RowSum(a *Node) *Node {
	out := New(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float32
		for _, v := range a.Value.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		for i := 0; i < ga.Rows; i++ {
			gi := g.Data[i]
			row := ga.Row(i)
			for j := range row {
				row[j] = gi
			}
		}
		a.accumulate(ga)
	})
}

// MeanAll records the scalar mean of all elements of a.
func (tp *Tape) MeanAll(a *Node) *Node {
	out := New(1, 1)
	out.Data[0] = float32(a.Value.Sum() / float64(len(a.Value.Data)))
	inv := 1 / float32(len(a.Value.Data))
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := New(a.Value.Rows, a.Value.Cols)
		gv := g.Data[0] * inv
		for i := range ga.Data {
			ga.Data[i] = gv
		}
		a.accumulate(ga)
	})
}

// Dropout records inverted dropout with drop probability p using rng.
// With p <= 0 it is the identity.
func (tp *Tape) Dropout(a *Node, p float32, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic("tensor: Dropout probability must be < 1")
	}
	mask := make([]float32, len(a.Value.Data))
	scale := 1 / (1 - p)
	out := New(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if rng.Float32() >= p {
			mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return tp.record(out, a.requiresGrad, func(g *Tensor) {
		ga := g.Clone()
		for i := range ga.Data {
			ga.Data[i] *= mask[i]
		}
		a.accumulate(ga)
	})
}

// SoftmaxCrossEntropy records mean softmax cross-entropy between logits
// [n x C] and integer class labels. It returns the scalar loss node.
func (tp *Tape) SoftmaxCrossEntropy(logits *Node, labels []int32) *Node {
	n := logits.Value.Rows
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: SoftmaxCrossEntropy %d labels for %d rows", len(labels), n))
	}
	probs := RowSoftmax(logits.Value)
	out := New(1, 1)
	var loss float64
	for i, lab := range labels {
		p := probs.At(i, int(lab))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
	}
	out.Data[0] = float32(loss / float64(n))
	return tp.record(out, logits.requiresGrad, func(g *Tensor) {
		gl := probs.Clone()
		for i, lab := range labels {
			gl.Data[i*gl.Cols+int(lab)] -= 1
		}
		gl.ScaleInPlace(g.Data[0] / float32(n))
		logits.accumulate(gl)
	})
}
