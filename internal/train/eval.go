package train

import (
	"math/rand"

	"repro/internal/decoder"
	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// EvaluateNC computes classification accuracy for the given node set using
// the full-graph adjacency (held-out evaluation is always performed over
// the complete graph, regardless of the training policy).
func EvaluateNC(cfg *NCConfig, src *Source, adj *graph.Adjacency, labels []int32, nodes []int32, seed int64) (float64, error) {
	if len(nodes) == 0 {
		return 0, nil
	}
	acc := eval.MeanAccumulator{}
	smp := sampler.New(adj, cfg.Fanouts, cfg.Dirs, seed)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 1024
	}
	// Evaluation reuses one arena-backed tape across batches, like the
	// training compute stage, with kernel parallelism from cfg.Workers.
	arena := tensor.NewArena()
	tp := tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, arena))
	var binds map[string]*tensor.Node
	for lo := 0; lo < len(nodes); lo += batch {
		hi := min(lo+batch, len(nodes))
		targets := nodes[lo:hi]
		d := smp.Sample(targets)
		tp.Reset()
		arena.Reset()
		h0t := tp.Alloc(len(d.NodeIDs), src.Nodes.Dim())
		if err := src.Nodes.Gather(d.NodeIDs, h0t); err != nil {
			return 0, err
		}
		binds = cfg.Params.BindInto(tp, binds)
		logits := cfg.Encoder.Forward(tp, binds, d, tp.Constant(h0t))
		batchLabels := make([]int32, len(targets))
		for i, v := range targets {
			batchLabels[i] = labels[v]
		}
		acc.Add(eval.Accuracy(logits.Value, batchLabels), float64(len(targets)))
	}
	return acc.Mean(), nil
}

// LPEvalConfig configures link-prediction evaluation.
type LPEvalConfig struct {
	Encoder   *gnn.Encoder // nil for decoder-only models
	Params    *nn.ParamSet
	Decoder   *decoder.DistMult
	Fanouts   []int
	Dirs      graph.Directions
	Negatives int // negatives per batch; 0 ranks against all entities
	BatchSize int
	Workers   int // kernel parallelism; <= 0 means GOMAXPROCS
	Seed      int64
}

// EvaluateLP computes MRR over the given edges. With Negatives == 0 the
// positive is ranked against every entity (feasible for FB15k-237-scale
// graphs, as the paper does in §7.5); otherwise against a shared sampled
// negative set per batch.
//
// emb must be the full base-representation table (use DiskNodeStore.ReadAll
// for disk-backed training) and adj the full-graph adjacency.
func EvaluateLP(cfg LPEvalConfig, emb *tensor.Tensor, adj *graph.Adjacency, edges []graph.Edge) (float64, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numNodes := emb.Rows

	if cfg.Negatives == 0 && cfg.Encoder == nil {
		// Decoder-only full ranking: score (src, rel) against all entities.
		relTable := cfg.Params.Get("distmult.rel").Value
		var sum float64
		for _, e := range edges {
			scores := cfg.Decoder.ScoreAll(emb.Row(int(e.Src)), relTable.Row(int(e.Rel)), emb)
			sum += 1 / decoder.FullRank(scores, e.Dst)
		}
		return sum / float64(len(edges)), nil
	}

	negCount := cfg.Negatives
	fullRank := negCount == 0
	if fullRank {
		negCount = numNodes // encode every entity per batch (small graphs only)
	}
	mrr := eval.MeanAccumulator{}
	var smp *sampler.Sampler
	if cfg.Encoder != nil {
		smp = sampler.New(adj, cfg.Fanouts, cfg.Dirs, cfg.Seed)
	}
	store := tensorStore{emb}
	arena := tensor.NewArena()
	tp := tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, arena))
	var binds map[string]*tensor.Node
	for lo := 0; lo < len(edges); lo += cfg.BatchSize {
		hi := min(lo+cfg.BatchSize, len(edges))
		batch := edges[lo:hi]
		srcs := make([]int32, len(batch))
		dsts := make([]int32, len(batch))
		rels := make([]int32, len(batch))
		for i, e := range batch {
			srcs[i], dsts[i], rels[i] = e.Src, e.Dst, e.Rel
		}
		var negs []int32
		if fullRank {
			negs = make([]int32, numNodes)
			for i := range negs {
				negs[i] = int32(i)
			}
		} else {
			negs = make([]int32, 0, negCount)
			for i := 0; i < negCount; i++ {
				negs = append(negs, int32(rng.Intn(numNodes)))
			}
		}
		unique, idx := uniqueIndex(srcs, dsts, negs)

		tp.Reset()
		arena.Reset()
		binds = cfg.Params.BindInto(tp, binds)
		var ids []int32
		var d *sampler.DENSE
		if cfg.Encoder != nil {
			d = smp.Sample(unique)
			ids = d.NodeIDs
		} else {
			ids = unique
		}
		h0t := tp.Alloc(len(ids), emb.Cols)
		if err := store.Gather(ids, h0t); err != nil {
			return 0, err
		}
		var enc *tensor.Node
		if cfg.Encoder != nil {
			enc = cfg.Encoder.Forward(tp, binds, d, tp.Constant(h0t))
		} else {
			enc = tp.Constant(h0t)
		}
		_, pos, negD, _ := cfg.Decoder.Loss(tp, binds, enc, idx[0], idx[1], idx[2], rels)
		mrr.Add(decoder.BatchMRR(pos.Value, negD.Value), float64(len(batch)))
	}
	return mrr.Mean(), nil
}

// tensorStore adapts a plain tensor to the gather interface for eval.
type tensorStore struct{ t *tensor.Tensor }

func (s tensorStore) Gather(ids []int32, out *tensor.Tensor) error {
	d := s.t.Cols
	for i, id := range ids {
		copy(out.Data[i*d:(i+1)*d], s.t.Row(int(id)))
	}
	return nil
}
