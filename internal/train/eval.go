package train

import (
	"math/rand"

	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EvaluateNC computes classification accuracy for the given node set using
// the full-graph adjacency (held-out evaluation is always performed over
// the complete graph, regardless of the training policy). The forward
// pass runs on the shared encode path — the same substrate online serving
// uses — with one sampler whose RNG stream runs continuously across
// batches.
func EvaluateNC(cfg *NCConfig, src *Source, adj *graph.Adjacency, labels []int32, nodes []int32, seed int64) (float64, error) {
	if len(nodes) == 0 {
		return 0, nil
	}
	acc := eval.MeanAccumulator{}
	fwd := encode.New(encode.Config{
		Encoder: cfg.Encoder, Params: cfg.Params,
		Fanouts: cfg.Fanouts, Dirs: cfg.Dirs, Workers: cfg.Workers,
	}, adj, seed)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 1024
	}
	for lo := 0; lo < len(nodes); lo += batch {
		hi := min(lo+batch, len(nodes))
		targets := nodes[lo:hi]
		logits, err := fwd.Encode(src.Nodes, targets)
		if err != nil {
			return 0, err
		}
		batchLabels := make([]int32, len(targets))
		for i, v := range targets {
			batchLabels[i] = labels[v]
		}
		acc.Add(eval.Accuracy(logits.Value, batchLabels), float64(len(targets)))
	}
	return acc.Mean(), nil
}

// LPEvalConfig configures link-prediction evaluation.
type LPEvalConfig struct {
	Encoder   *gnn.Encoder // nil for decoder-only models
	Params    *nn.ParamSet
	Decoder   *decoder.DistMult
	Fanouts   []int
	Dirs      graph.Directions
	Negatives int // negatives per batch; 0 ranks against all entities
	BatchSize int
	Workers   int // kernel parallelism; <= 0 means GOMAXPROCS
	Seed      int64
}

// EvaluateLP computes MRR over the given edges. With Negatives == 0 the
// positive is ranked against every entity (feasible for FB15k-237-scale
// graphs, as the paper does in §7.5); otherwise against a shared sampled
// negative set per batch.
//
// emb must be the full base-representation table (use DiskNodeStore.ReadAll
// for disk-backed training) and adj the full-graph adjacency.
func EvaluateLP(cfg LPEvalConfig, emb *tensor.Tensor, adj *graph.Adjacency, edges []graph.Edge) (float64, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numNodes := emb.Rows

	if cfg.Negatives == 0 && cfg.Encoder == nil {
		// Decoder-only full ranking: score (src, rel) against all entities.
		relTable := cfg.Params.Get("distmult.rel").Value
		var sum float64
		for _, e := range edges {
			scores := cfg.Decoder.ScoreAll(emb.Row(int(e.Src)), relTable.Row(int(e.Rel)), emb)
			sum += 1 / decoder.FullRank(scores, e.Dst)
		}
		return sum / float64(len(edges)), nil
	}

	negCount := cfg.Negatives
	fullRank := negCount == 0
	if fullRank {
		negCount = numNodes // encode every entity per batch (small graphs only)
	}
	mrr := eval.MeanAccumulator{}
	fwd := encode.New(encode.Config{
		Encoder: cfg.Encoder, Params: cfg.Params,
		Fanouts: cfg.Fanouts, Dirs: cfg.Dirs, Workers: cfg.Workers,
	}, adj, cfg.Seed)
	store := encode.TensorStore{T: emb}
	for lo := 0; lo < len(edges); lo += cfg.BatchSize {
		hi := min(lo+cfg.BatchSize, len(edges))
		batch := edges[lo:hi]
		srcs := make([]int32, len(batch))
		dsts := make([]int32, len(batch))
		rels := make([]int32, len(batch))
		for i, e := range batch {
			srcs[i], dsts[i], rels[i] = e.Src, e.Dst, e.Rel
		}
		var negs []int32
		if fullRank {
			negs = make([]int32, numNodes)
			for i := range negs {
				negs[i] = int32(i)
			}
		} else {
			negs = make([]int32, 0, negCount)
			for i := 0; i < negCount; i++ {
				negs = append(negs, int32(rng.Intn(numNodes)))
			}
		}
		unique, idx := uniqueIndex(srcs, dsts, negs)

		enc, err := fwd.Encode(store, unique)
		if err != nil {
			return 0, err
		}
		_, pos, negD, _ := cfg.Decoder.Loss(fwd.Tape(), fwd.Binds(), enc, idx[0], idx[1], idx[2], rels)
		mrr.Add(decoder.BatchMRR(pos.Value, negD.Value), float64(len(batch)))
	}
	return mrr.Mean(), nil
}
