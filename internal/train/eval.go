package train

import (
	"math/rand"

	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// EvaluateNC computes classification accuracy for the given node set using
// the full-graph adjacency (held-out evaluation is always performed over
// the complete graph, regardless of the training policy). The forward
// pass runs on the shared encode path — the same substrate online serving
// uses — with one sampler whose RNG stream runs continuously across
// batches.
func EvaluateNC(cfg *NCConfig, src *Source, adj *graph.Adjacency, labels []int32, nodes []int32, seed int64) (float64, error) {
	if len(nodes) == 0 {
		return 0, nil
	}
	acc := eval.MeanAccumulator{}
	fwd := encode.New(encode.Config{
		Encoder: cfg.Encoder, Params: cfg.Params,
		Fanouts: cfg.Fanouts, Dirs: cfg.Dirs, Workers: cfg.Workers,
	}, adj, seed)
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 1024
	}
	for lo := 0; lo < len(nodes); lo += batch {
		hi := min(lo+batch, len(nodes))
		targets := nodes[lo:hi]
		logits, err := fwd.Encode(src.Nodes, targets)
		if err != nil {
			return 0, err
		}
		batchLabels := make([]int32, len(targets))
		for i, v := range targets {
			batchLabels[i] = labels[v]
		}
		acc.Add(eval.Accuracy(logits.Value, batchLabels), float64(len(targets)))
	}
	return acc.Mean(), nil
}

// LPEvalConfig configures link-prediction evaluation.
type LPEvalConfig struct {
	Encoder   *gnn.Encoder // nil for decoder-only models
	Params    *nn.ParamSet
	Decoder   decoder.Decoder
	Fanouts   []int
	Dirs      graph.Directions
	Negatives int // negatives per batch; 0 ranks against all entities
	BatchSize int
	Workers   int // kernel parallelism; <= 0 means GOMAXPROCS
	Seed      int64
}

// LPEvalStats aggregates a sampled link-prediction evaluation: the mean
// eval loss (batch path; 0 on the decoder-only full-rank fast path, which
// computes no loss), MRR, and Hits@{1,10}.
type LPEvalStats struct {
	Loss float64
	MRR  float64
	Hits map[int]float64
}

// lpHitsKs are the Hits@k cutoffs the sampled protocol reports.
var lpHitsKs = []int{1, 10}

// EvaluateLP computes MRR and Hits@k over the given edges. With
// Negatives == 0 the positive is ranked against every entity (feasible
// for FB15k-237-scale graphs, as the paper does in §7.5); otherwise
// against a shared sampled negative set per batch.
//
// emb must be the full base-representation table (use DiskNodeStore.ReadAll
// for disk-backed training) and adj the full-graph adjacency.
func EvaluateLP(cfg LPEvalConfig, emb *tensor.Tensor, adj *graph.Adjacency, edges []graph.Edge) (LPEvalStats, error) {
	stats := LPEvalStats{Hits: make(map[int]float64, len(lpHitsKs))}
	if len(edges) == 0 {
		return stats, nil
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numNodes := emb.Rows

	if cfg.Negatives == 0 && cfg.Encoder == nil {
		// Decoder-only full ranking: score (src, rel) against all entities.
		relTable := cfg.Decoder.RelParam().Value
		var sum float64
		hits := make(map[int]int, len(lpHitsKs))
		for _, e := range edges {
			scores := decoder.ScoreAll(cfg.Decoder, emb.Row(int(e.Src)), relTable.Row(int(e.Rel)), emb)
			rank := decoder.FullRank(scores, e.Dst)
			sum += 1 / rank
			for _, k := range lpHitsKs {
				if rank <= float64(k) {
					hits[k]++
				}
			}
		}
		stats.MRR = sum / float64(len(edges))
		for _, k := range lpHitsKs {
			stats.Hits[k] = float64(hits[k]) / float64(len(edges))
		}
		return stats, nil
	}

	negCount := cfg.Negatives
	fullRank := negCount == 0
	if fullRank {
		negCount = numNodes // encode every entity per batch (small graphs only)
	}
	mrr := eval.MeanAccumulator{}
	loss := eval.MeanAccumulator{}
	hits := make(map[int]*eval.MeanAccumulator, len(lpHitsKs))
	for _, k := range lpHitsKs {
		hits[k] = &eval.MeanAccumulator{}
	}
	fwd := encode.New(encode.Config{
		Encoder: cfg.Encoder, Params: cfg.Params,
		Fanouts: cfg.Fanouts, Dirs: cfg.Dirs, Workers: cfg.Workers,
	}, adj, cfg.Seed)
	store := encode.TensorStore{T: emb}
	for lo := 0; lo < len(edges); lo += cfg.BatchSize {
		hi := min(lo+cfg.BatchSize, len(edges))
		batch := edges[lo:hi]
		srcs := make([]int32, len(batch))
		dsts := make([]int32, len(batch))
		rels := make([]int32, len(batch))
		for i, e := range batch {
			srcs[i], dsts[i], rels[i] = e.Src, e.Dst, e.Rel
		}
		var negs []int32
		if fullRank {
			negs = make([]int32, numNodes)
			for i := range negs {
				negs[i] = int32(i)
			}
		} else {
			negs = make([]int32, 0, negCount)
			for i := 0; i < negCount; i++ {
				negs = append(negs, int32(rng.Intn(numNodes)))
			}
		}
		unique, idx := uniqueIndex(srcs, dsts, negs)

		enc, err := fwd.Encode(store, unique)
		if err != nil {
			return stats, err
		}
		l, pos, negD, _ := cfg.Decoder.Loss(fwd.Tape(), fwd.Binds(), enc, idx[0], idx[1], idx[2], rels)
		w := float64(len(batch))
		loss.Add(float64(l.Value.Data[0]), w)
		mrr.Add(decoder.BatchMRR(pos.Value, negD.Value), w)
		for _, k := range lpHitsKs {
			hits[k].Add(decoder.HitsAtK(pos.Value, negD.Value, k), w)
		}
	}
	stats.Loss = loss.Mean()
	stats.MRR = mrr.Mean()
	for _, k := range lpHitsKs {
		stats.Hits[k] = hits[k].Mean()
	}
	return stats, nil
}
