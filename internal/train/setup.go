package train

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// PrepareLP relabels g for link-prediction training: nodes are assigned to
// p contiguous partitions uniformly at random (paper §3). Returns the
// partitioning.
func PrepareLP(g *graph.Graph, p int, seed int64) partition.Partitioning {
	partition.Apply(g, partition.RandomOrder(g.NumNodes, seed))
	return partition.New(g.NumNodes, p)
}

// PrepareNC relabels g for node classification: training nodes first so
// they occupy the leading partitions and can be statically cached
// (paper §5.2). Returns the partitioning and the number of partitions
// holding training nodes.
func PrepareNC(g *graph.Graph, p int, seed int64) (partition.Partitioning, int) {
	partition.Apply(g, partition.TrainFirstOrder(g.NumNodes, g.TrainNodes, seed))
	pt := partition.New(g.NumNodes, p)
	trainParts := (len(g.TrainNodes) + pt.PartSize - 1) / pt.PartSize
	if trainParts == 0 {
		trainParts = 1
	}
	return pt, trainParts
}

// RandomEmbeddings returns a uniformly-initialized base-representation
// table for learnable embeddings (link prediction).
func RandomEmbeddings(numNodes, dim int, seed int64) *tensor.Tensor {
	t := tensor.New(numNodes, dim)
	t.RandUniform(rand.New(rand.NewSource(seed)), 0.1)
	return t
}

// NewMemorySource builds an all-in-memory source over g: the M-GNN_Mem
// configuration. table is the base-representation table (features for NC,
// embeddings for LP).
func NewMemorySource(g *graph.Graph, pt partition.Partitioning, table *tensor.Tensor) *Source {
	src := &Source{
		Part:     pt,
		NumNodes: g.NumNodes,
		NumRels:  g.NumRels,
		Nodes:    storage.NewMemoryNodeStore(table),
		Edges:    storage.NewMemoryEdgeStore(pt, g.Edges),
	}
	src.FragCache()
	return src
}

// DiskSourceConfig configures NewDiskSource.
type DiskSourceConfig struct {
	Dir       string
	Capacity  int
	Learnable bool
	Throttle  *storage.Throttle
	// InitTable provides initial base representations; nil zero-fills.
	InitTable *tensor.Tensor
}

// NewDiskSource builds a disk-backed source (M-GNN_Disk): node
// representations and edge buckets are written to files under cfg.Dir and
// paged through a partition buffer of cfg.Capacity partitions.
func NewDiskSource(g *graph.Graph, pt partition.Partitioning, dim int, cfg DiskSourceConfig) (*Source, error) {
	var initFn func(int32, []float32)
	if cfg.InitTable != nil {
		initFn = func(id int32, row []float32) { copy(row, cfg.InitTable.Row(int(id))) }
	}
	nodes, err := storage.CreateDiskNodeStore(storage.DiskStoreConfig{
		Dir:       cfg.Dir,
		Part:      pt,
		Dim:       dim,
		Capacity:  cfg.Capacity,
		Learnable: cfg.Learnable,
		Throttle:  cfg.Throttle,
		Init:      initFn,
	})
	if err != nil {
		return nil, err
	}
	edges, err := storage.CreateDiskEdgeStore(cfg.Dir, pt, g.Edges, cfg.Throttle)
	if err != nil {
		nodes.Close()
		return nil, err
	}
	src := &Source{
		Part:     pt,
		NumNodes: g.NumNodes,
		NumRels:  g.NumRels,
		Nodes:    nodes,
		Disk:     nodes,
		Edges:    edges,
	}
	src.FragCache()
	return src, nil
}

// Close releases a source's stores.
func (src *Source) Close() error {
	err := src.Nodes.Close()
	if e := src.Edges.Close(); err == nil {
		err = e
	}
	return err
}
