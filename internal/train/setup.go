package train

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// PrepareLP relabels g for link-prediction training: nodes are assigned to
// p contiguous partitions uniformly at random (paper §3). Returns the
// partitioning.
func PrepareLP(g *graph.Graph, p int, seed int64) partition.Partitioning {
	partition.Apply(g, partition.RandomOrder(g.NumNodes, seed))
	return partition.New(g.NumNodes, p)
}

// PrepareNC relabels g for node classification: training nodes first so
// they occupy the leading partitions and can be statically cached
// (paper §5.2). Returns the partitioning and the number of partitions
// holding training nodes.
func PrepareNC(g *graph.Graph, p int, seed int64) (partition.Partitioning, int) {
	partition.Apply(g, partition.TrainFirstOrder(g.NumNodes, g.TrainNodes, seed))
	pt := partition.New(g.NumNodes, p)
	trainParts := (len(g.TrainNodes) + pt.PartSize - 1) / pt.PartSize
	if trainParts == 0 {
		trainParts = 1
	}
	return pt, trainParts
}

// RandomEmbeddings returns a uniformly-initialized base-representation
// table for learnable embeddings (link prediction).
func RandomEmbeddings(numNodes, dim int, seed int64) *tensor.Tensor {
	t := tensor.New(numNodes, dim)
	t.RandUniform(rand.New(rand.NewSource(seed)), 0.1)
	return t
}

// NewMemorySource builds an all-in-memory source over g: the M-GNN_Mem
// configuration. table is the base-representation table (features for NC,
// embeddings for LP).
func NewMemorySource(g *graph.Graph, pt partition.Partitioning, table *tensor.Tensor) *Source {
	src := &Source{
		Part:     pt,
		NumNodes: g.NumNodes,
		NumRels:  g.NumRels,
		Nodes:    storage.NewMemoryNodeStore(table),
		Edges:    storage.NewMemoryEdgeStore(pt, g.Edges),
	}
	src.FragCache()
	return src
}

// DiskSourceConfig configures NewDiskSource.
type DiskSourceConfig struct {
	Dir       string
	Capacity  int
	Learnable bool
	Throttle  *storage.Throttle
	// InitTable provides initial base representations; nil zero-fills.
	InitTable *tensor.Tensor
	// FS, when non-nil, routes the store files through an injectable
	// filesystem (fault injection); nil means the real filesystem.
	FS fault.FS
}

// NewDiskSource builds a disk-backed source (M-GNN_Disk): node
// representations and edge buckets are written to files under cfg.Dir and
// paged through a partition buffer of cfg.Capacity partitions.
func NewDiskSource(g *graph.Graph, pt partition.Partitioning, dim int, cfg DiskSourceConfig) (*Source, error) {
	var initFn func(int32, []float32)
	if cfg.InitTable != nil {
		initFn = func(id int32, row []float32) { copy(row, cfg.InitTable.Row(int(id))) }
	}
	nodes, err := storage.CreateDiskNodeStore(storage.DiskStoreConfig{
		Dir:       cfg.Dir,
		Part:      pt,
		Dim:       dim,
		Capacity:  cfg.Capacity,
		Learnable: cfg.Learnable,
		Throttle:  cfg.Throttle,
		Init:      initFn,
		FS:        cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	edges, err := storage.CreateDiskEdgeStoreFS(cfg.FS, cfg.Dir, pt, g.Edges, cfg.Throttle)
	if err != nil {
		nodes.Close()
		return nil, err
	}
	src := &Source{
		Part:     pt,
		NumNodes: g.NumNodes,
		NumRels:  g.NumRels,
		Nodes:    nodes,
		Disk:     nodes,
		Edges:    edges,
	}
	src.FragCache()
	return src, nil
}

// DatasetSourceConfig configures NewDatasetSource.
type DatasetSourceConfig struct {
	// InMemory loads the node table into CPU memory (edges stay on
	// disk, served straight off the dataset's bucket file); otherwise
	// node representations page through a partition buffer of Capacity
	// partitions.
	InMemory bool
	Capacity int
	// Learnable creates a fresh learnable representation table (link
	// prediction) initialized from InitTable — under WorkDir for disk
	// storage, since the dataset itself stays read-only. Non-learnable
	// sources serve the dataset's feature shard directly.
	Learnable bool
	WorkDir   string
	InitTable *tensor.Tensor
	Throttle  *storage.Throttle
	// FS, when non-nil, routes the learnable table's work files through
	// an injectable filesystem (fault injection). The dataset's own files
	// already go through the FS it was opened with.
	FS fault.FS
}

// NewDatasetSource builds a source over a preprocessed dataset
// directory: edge buckets are served straight off the dataset's
// bucket-sorted file (no ingest-time re-sort — the fragment cache warms
// from disk on demand), and node representations come from the dataset's
// feature shard (node classification) or a freshly initialized learnable
// table (link prediction).
func NewDatasetSource(ds *storage.Dataset, cfg DatasetSourceConfig) (*Source, error) {
	man := ds.Man
	pt := ds.Partitioning()
	edges, err := ds.EdgeStore(cfg.Throttle)
	if err != nil {
		return nil, err
	}
	src := &Source{
		Part:     pt,
		NumNodes: man.NumNodes,
		NumRels:  man.NumRels,
		Edges:    edges,
	}
	switch {
	case cfg.InMemory && cfg.Learnable:
		src.Nodes = storage.NewMemoryNodeStore(cfg.InitTable)
	case cfg.InMemory:
		table, err := ds.ReadFeatures()
		if err != nil {
			edges.Close()
			return nil, err
		}
		src.Nodes = storage.NewMemoryNodeStore(table)
	case cfg.Learnable:
		var initFn func(int32, []float32)
		if cfg.InitTable != nil {
			initFn = func(id int32, row []float32) { copy(row, cfg.InitTable.Row(int(id))) }
		}
		nodes, err := storage.CreateDiskNodeStore(storage.DiskStoreConfig{
			Dir:       cfg.WorkDir,
			Part:      pt,
			Dim:       cfg.InitTable.Cols,
			Capacity:  cfg.Capacity,
			Learnable: true,
			Throttle:  cfg.Throttle,
			Init:      initFn,
			FS:        cfg.FS,
		})
		if err != nil {
			edges.Close()
			return nil, err
		}
		src.Nodes, src.Disk = nodes, nodes
	default:
		nodes, err := ds.NodeStore(cfg.Capacity, cfg.Throttle)
		if err != nil {
			edges.Close()
			return nil, err
		}
		src.Nodes, src.Disk = nodes, nodes
	}
	src.FragCache()
	return src, nil
}

// ReadAllEdges reads every bucket of the source's edge store into one
// slice in bucket order — the flattened order the segmented training
// index exposes. Dataset-backed sessions use it to build the full
// evaluation adjacency without an in-memory edge list at training time.
func (src *Source) ReadAllEdges() ([]graph.Edge, error) {
	var total int64
	p := src.Part.NumPartitions
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			total += int64(src.Edges.BucketLen(i, j))
		}
	}
	edges := make([]graph.Edge, 0, total)
	var err error
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if edges, err = src.Edges.ReadBucket(i, j, edges); err != nil {
				return nil, err
			}
		}
	}
	return edges, nil
}

// Close releases a source's stores.
func (src *Source) Close() error {
	err := src.Nodes.Close()
	if e := src.Edges.Close(); err == nil {
		err = e
	}
	return err
}
