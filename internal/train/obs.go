package train

import (
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Obs carries the training-side observability hooks: epoch-level
// counters/gauges plus the pipeline's per-stage instrumentation. A nil
// *Obs disables everything. Instrumentation is read-only with respect
// to training state — it never touches RNG streams or batch order, so
// trajectories (and checkpoints) are byte-identical with it on or off.
type Obs struct {
	Reg    *obs.Registry
	Tracer *obs.Tracer

	pipe *pipeline.Instr

	epochs     *obs.Counter
	examples   *obs.Counter
	batches    *obs.Counter
	lastLoss   *obs.Gauge
	lastMetric *obs.Gauge
	epochSec   *obs.Histogram
}

// NewObs registers the train metric family on reg (nil for a
// tracing-only setup) and returns hooks wired to it.
func NewObs(reg *obs.Registry, tracer *obs.Tracer) *Obs {
	return &Obs{
		Reg:    reg,
		Tracer: tracer,
		pipe:   pipeline.NewInstr(reg, tracer),
		epochs: reg.Counter("train_epochs_total", "Training epochs completed."),
		examples: reg.Counter("train_examples_total",
			"Training examples (labeled nodes or positive edges) consumed."),
		batches:    reg.Counter("train_batches_total", "Mini-batches computed."),
		lastLoss:   reg.Gauge("train_last_loss", "Mean loss of the most recent epoch."),
		lastMetric: reg.Gauge("train_last_metric", "Train metric (accuracy or MRR) of the most recent epoch."),
		epochSec: reg.Histogram("train_epoch_seconds", "Wall-clock epoch duration.",
			obs.ExpBuckets(0.01, 2, 24)),
	}
}

// instr returns the pipeline hooks (nil when o is nil).
func (o *Obs) instr() *pipeline.Instr {
	if o == nil {
		return nil
	}
	return o.pipe
}

// epochDone folds one completed epoch's stats into the registry.
func (o *Obs) epochDone(st *EpochStats) {
	if o == nil {
		return
	}
	o.epochs.Inc()
	o.examples.Add(uint64(st.Examples))
	o.batches.Add(uint64(st.Batches))
	o.lastLoss.Set(st.Loss)
	o.lastMetric.Set(st.Metric)
	o.epochSec.Observe(st.Duration.Seconds())
}
