package train

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
)

// ncFixture builds a small SBM graph plus an in-memory NC trainer.
func ncFixture(t *testing.T, mode Mode, seed int64) (*NCTrainer, *graph.Graph) {
	t.Helper()
	cfg := gen.SBMConfig{
		NumNodes: 1500, NumClasses: 5, AvgDegree: 12, FeatureDim: 16,
		Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: seed,
	}
	g := gen.SBM(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pt, _ := PrepareNC(g, 4, seed)
	src := NewMemorySource(g, pt, g.Features)

	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	enc := gnn.BuildSage(ps, []int{16, 32, g.NumClasses}, gnn.Mean, rng)
	ncfg := NCConfig{
		Encoder: enc, Params: ps,
		Fanouts: []int{10, 10}, Dirs: graph.Both,
		BatchSize: 256, Opt: nn.NewAdam(0.01), ClipNorm: 5,
		Workers: 2, Mode: mode, Seed: seed,
	}
	return NewNC(ncfg, src, policy.InMemory{P: 4}, g.Labels, g.TrainNodes), g
}

func TestNCInMemoryLearns(t *testing.T) {
	tr, g := ncFixture(t, ModeDense, 1)
	var last EpochStats
	for e := 0; e < 4; e++ {
		st, err := tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Metric < 0.6 {
		t.Fatalf("train accuracy %.3f after 4 epochs; SBM with 5 classes should exceed 0.6", last.Metric)
	}
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	acc, err := EvaluateNC(&tr.Cfg, tr.Src, adj, g.Labels, g.ValidNodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("valid accuracy %.3f; want > 0.5 (chance is 0.2)", acc)
	}
}

func TestNCBaselineModeLearns(t *testing.T) {
	tr, _ := ncFixture(t, ModeBaseline, 2)
	var last EpochStats
	for e := 0; e < 3; e++ {
		st, err := tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Metric < 0.5 {
		t.Fatalf("baseline-mode train accuracy %.3f", last.Metric)
	}
	if last.NodesSampled == 0 || last.EdgesSampled == 0 {
		t.Fatal("sampling counters not populated")
	}
}

func TestNCDiskMatchesMemoryQuality(t *testing.T) {
	seed := int64(3)
	cfg := gen.SBMConfig{
		NumNodes: 1200, NumClasses: 4, AvgDegree: 10, FeatureDim: 12,
		Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.25, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: seed,
	}
	g := gen.SBM(cfg)
	pt, trainParts := PrepareNC(g, 8, seed)
	src, err := NewDiskSource(g, pt, g.Features.Cols, DiskSourceConfig{
		Dir: t.TempDir(), Capacity: 4, InitTable: g.Features,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	enc := gnn.BuildSage(ps, []int{12, 24, g.NumClasses}, gnn.Mean, rng)
	ncfg := NCConfig{
		Encoder: enc, Params: ps,
		Fanouts: []int{8, 8}, Dirs: graph.Both,
		BatchSize: 256, Opt: nn.NewAdam(0.01), ClipNorm: 5,
		Workers: 2, Seed: seed,
	}
	pol := policy.NodeCache{P: 8, C: 4, TrainParts: trainParts}
	tr := NewNC(ncfg, src, pol, g.Labels, g.TrainNodes)
	var last EpochStats
	for e := 0; e < 8; e++ {
		st, err := tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Metric < 0.5 {
		t.Fatalf("disk-based NC train accuracy %.3f", last.Metric)
	}
	if last.Examples != len(g.TrainNodes) {
		t.Fatalf("epoch consumed %d examples, want %d (all training nodes)", last.Examples, len(g.TrainNodes))
	}
}

// lpFixture builds a small KG and an LP trainer over the given source mode.
func lpFixture(t *testing.T, pol policy.Policy, disk bool, p, c int, seed int64) (*LPTrainer, *graph.Graph, func()) {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 800, NumRelations: 12, NumEdges: 12000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: seed,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	const dim = 16
	pt := PrepareLP(g, p, seed)
	emb := RandomEmbeddings(g.NumNodes, dim, seed)

	var src *Source
	cleanup := func() {}
	if disk {
		var err error
		dir := t.TempDir()
		src, err = NewDiskSource(g, pt, dim, DiskSourceConfig{
			Dir: dir, Capacity: c, Learnable: true, InitTable: emb,
		})
		if err != nil {
			t.Fatal(err)
		}
		cleanup = func() { src.Close() }
	} else {
		src = NewMemorySource(g, pt, emb)
	}

	rng := rand.New(rand.NewSource(seed))
	ps := nn.NewParamSet()
	enc := gnn.BuildSage(ps, []int{dim, dim}, gnn.Mean, rng)
	dec := decoder.NewDistMult(ps, g.NumRels, dim, rng)
	cfg := LPConfig{
		Encoder: enc, Params: ps, Decoder: dec,
		Fanouts: []int{10}, Dirs: graph.Both,
		BatchSize: 512, Negatives: 128,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1), ClipNorm: 5,
		Workers: 2, Seed: seed,
	}
	return NewLP(cfg, src, pol), g, cleanup
}

func TestLPInMemoryLearns(t *testing.T) {
	tr, _, done := lpFixture(t, policy.InMemory{P: 4}, false, 4, 4, 11)
	defer done()
	first, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var last EpochStats
	for e := 0; e < 4; e++ {
		last, err = tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Metric <= first.Metric {
		t.Fatalf("train MRR did not improve: %.4f -> %.4f", first.Metric, last.Metric)
	}
	if last.Metric < 0.15 {
		t.Fatalf("train MRR %.4f too low after 5 epochs (random ≈ 0.04)", last.Metric)
	}
}

func TestLPDiskCometRunsAndLearns(t *testing.T) {
	pol := policy.Comet{P: 8, L: 4, C: 4}
	tr, g, done := lpFixture(t, pol, true, 8, 4, 13)
	defer done()
	var last EpochStats
	for e := 0; e < 4; e++ {
		st, err := tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Metric < 0.12 {
		t.Fatalf("disk COMET train MRR %.4f (random ≈ 0.04)", last.Metric)
	}
	if last.Examples != len(g.Edges) {
		t.Fatalf("epoch consumed %d examples, want %d (every training edge exactly once)", last.Examples, len(g.Edges))
	}
	if last.IO.BytesRead == 0 {
		t.Fatal("disk training reported no IO")
	}
	if last.Visits < 2 {
		t.Fatal("COMET should need multiple partition sets")
	}
}

func TestLPDiskBetaRuns(t *testing.T) {
	pol := policy.Beta{P: 8, C: 4}
	tr, g, done := lpFixture(t, pol, true, 8, 4, 17)
	defer done()
	st, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != len(g.Edges) {
		t.Fatalf("BETA epoch consumed %d/%d examples", st.Examples, len(g.Edges))
	}
}

func TestLPDecoderOnlyDistMult(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 500, NumRelations: 8, NumEdges: 6000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 23,
	})
	const dim = 16
	pt := PrepareLP(g, 4, 23)
	emb := RandomEmbeddings(g.NumNodes, dim, 23)
	src := NewMemorySource(g, pt, emb)

	rng := rand.New(rand.NewSource(23))
	ps := nn.NewParamSet()
	dec := decoder.NewDistMult(ps, g.NumRels, dim, rng)
	cfg := LPConfig{
		Params: ps, Decoder: dec, // Encoder nil: knowledge-graph embeddings only
		BatchSize: 512, Negatives: 128,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1),
		Workers: 2, Seed: 23,
	}
	tr := NewLP(cfg, src, policy.InMemory{P: 4})
	var last EpochStats
	for e := 0; e < 5; e++ {
		st, err := tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.Metric < 0.15 {
		t.Fatalf("decoder-only train MRR %.4f (random ≈ 0.04)", last.Metric)
	}

	// Full-ranking evaluation must run and beat random (1/|V| ≈ 0.002).
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	stats, err := EvaluateLP(LPEvalConfig{
		Params: ps, Decoder: dec, Negatives: 0, Seed: 1,
	}, emb, adj, g.ValidEdges)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MRR < 0.02 {
		t.Fatalf("full-ranking valid MRR %.4f too low (random ≈ 0.002)", stats.MRR)
	}
	if stats.Hits[10] < stats.Hits[1] || stats.Hits[10] < stats.MRR/2 {
		t.Fatalf("implausible hits: hits@1 %.4f hits@10 %.4f mrr %.4f", stats.Hits[1], stats.Hits[10], stats.MRR)
	}
}

func TestUniqueIndex(t *testing.T) {
	u, idx := uniqueIndex([]int32{5, 3, 5}, []int32{3, 9})
	if len(u) != 3 || u[0] != 5 || u[1] != 3 || u[2] != 9 {
		t.Fatalf("unique = %v", u)
	}
	if idx[0][0] != 0 || idx[0][1] != 1 || idx[0][2] != 0 || idx[1][0] != 1 || idx[1][1] != 2 {
		t.Fatalf("idx = %v", idx)
	}
	for _, g := range idx {
		for i, ui := range g {
			_ = i
			if int(ui) >= len(u) {
				t.Fatal("index out of range")
			}
		}
	}
}
