package train

import (
	"context"
	"testing"

	"repro/internal/policy"
)

// TestLPBatchConstructionZeroAlloc: after one warm epoch, the LP
// batch-construction hot path (endpoint/negative scratch, stamp-based
// dedup, DENSE sampling, pooled prepared batches) must not allocate.
func TestLPBatchConstructionZeroAlloc(t *testing.T) {
	tr, g, done := lpFixture(t, policy.InMemory{P: 4}, false, 4, 4, 51)
	defer done()
	if _, err := tr.TrainEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	mem := []int{0, 1, 2, 3}
	adj, err := tr.seg.refresh(tr.Src, mem)
	if err != nil {
		t.Fatal(err)
	}
	v := &lpVisit{
		mem: mem, adj: adj,
		pool:       tr.Src.residentNodePool(nil, mem),
		xEdges:     g.Edges[:2*tr.Cfg.BatchSize],
		batchSeeds: []int64{101, 102},
	}
	b := tr.batchers[0]
	if b == nil { // worker 0 may not have built a batch in the warm epoch
		b = tr.newBatcher()
	}
	for i := 0; i < 4; i++ { // warm the batch pools for this visit shape
		tr.putPB(b.prepare(v, i%2))
	}
	allocs := testing.AllocsPerRun(100, func() {
		pb := b.prepare(v, 0)
		tr.putPB(pb)
	})
	if allocs != 0 {
		t.Fatalf("steady-state LP batch construction allocates %.1f/op, want 0", allocs)
	}
}

// TestNCBatchConstructionZeroAlloc: same property for the NC batcher
// (label gather + DENSE sampling over the incremental index).
func TestNCBatchConstructionZeroAlloc(t *testing.T) {
	tr, g := ncFixture(t, ModeDense, 52)
	if _, err := tr.TrainEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	mem := []int{0, 1, 2, 3}
	adj, err := tr.seg.refresh(tr.Src, mem)
	if err != nil {
		t.Fatal(err)
	}
	n := min(2*tr.Cfg.BatchSize, len(g.TrainNodes))
	v := &ncVisit{
		mem: mem, adj: adj,
		targets:    g.TrainNodes[:n],
		batchSeeds: []int64{201, 202},
	}
	b := tr.batchers[0]
	if b == nil { // worker 0 may not have built a batch in the warm epoch
		b = tr.newBatcher()
	}
	for i := 0; i < 4; i++ {
		tr.putPB(b.prepare(v, i%2))
	}
	allocs := testing.AllocsPerRun(100, func() {
		pb := b.prepare(v, 0)
		tr.putPB(pb)
	})
	if allocs != 0 {
		t.Fatalf("steady-state NC batch construction allocates %.1f/op, want 0", allocs)
	}
}

// TestDeduperMatchesUniqueIndex: the stamp-based deduper must assign the
// same first-occurrence indices as the map-based uniqueIndex.
func TestDeduperMatchesUniqueIndex(t *testing.T) {
	groups := [][]int32{{5, 3, 5, 9}, {3, 9, 0}, {0, 5, 7}}
	wantU, wantIdx := uniqueIndex(groups...)

	var dd deduper
	dd.reset(10)
	var uniq []int32
	for gi, group := range groups {
		for ii, id := range group {
			if got := dd.index(id, &uniq); got != wantIdx[gi][ii] {
				t.Fatalf("group %d[%d]: index %d, want %d", gi, ii, got, wantIdx[gi][ii])
			}
		}
	}
	if len(uniq) != len(wantU) {
		t.Fatalf("uniq = %v, want %v", uniq, wantU)
	}
	for i := range uniq {
		if uniq[i] != wantU[i] {
			t.Fatalf("uniq = %v, want %v", uniq, wantU)
		}
	}
}
