// Package train implements MariusGNN's processing layer: the mini-batch
// lifecycle of paper Fig. 2 (steps 1-6) expressed as explicit
// produce/consume stages over the internal/pipeline executor. Each epoch
// walks a policy's partition-visit plan (steps A-D) with a prefetcher
// loading visits (partition staging, edge buckets, adjacency) ahead of
// the trainer, worker goroutines constructing batches from per-batch
// derived seeds, and the compute stage consuming them in plan order —
// serial when PipelineDepth is 0, overlapped otherwise, with an
// identical trajectory either way.
package train

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

// epochRNG derives the RNG driving one epoch from (seed, epoch) alone, so
// an epoch's plan, shuffles and worker seeds are reproducible from the
// checkpointed seed and epoch counter with no serialized generator state.
func epochRNG(seed int64, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(epoch)*0x9E3779B9))
}

// ctxErr reports the context's error; a nil context never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Mode selects the execution strategy.
type Mode int

const (
	// ModeDense is MariusGNN execution: DENSE sampling + dense kernels +
	// pipelined stages.
	ModeDense Mode = iota
	// ModeBaseline models DGL/PyG: per-layer re-sampling + per-edge COO
	// aggregation + synchronous (non-pipelined) execution.
	ModeBaseline
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeBaseline {
		return "baseline"
	}
	return "dense"
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch    int
	Duration time.Duration
	// Sample and Compute are the summed per-batch stage durations; under
	// pipelining their total can exceed Duration.
	Sample  time.Duration
	Compute time.Duration
	Loss    float64 // mean per-batch loss
	Metric  float64 // train accuracy (NC) or train MRR (LP)
	Batches int
	// Examples is the number of training examples consumed.
	Examples int
	// NodesSampled/EdgesSampled count sampled entries across batches.
	NodesSampled int64
	EdgesSampled int64
	// IO is the node-store IO performed during the epoch (disk mode),
	// including prefetch hit/miss counts for the partition buffer.
	IO storage.StatsSnapshot
	// Visits is the number of partition sets |S| walked.
	Visits int
	// Pipeline reports the pipelined execution of the epoch: effective
	// depth and workers, visits prefetched, and how long the compute
	// stage stalled waiting on loads or batch construction.
	Pipeline pipeline.Stats
}

func (s EpochStats) String() string {
	return fmt.Sprintf("epoch %d: %.2fs loss=%.4f metric=%.4f batches=%d visits=%d io=%.1fMB",
		s.Epoch, s.Duration.Seconds(), s.Loss, s.Metric, s.Batches, s.Visits,
		float64(s.IO.BytesRead+s.IO.BytesWritten)/1e6)
}

// Source bundles the storage-layer handles a trainer consumes.
type Source struct {
	Part     partition.Partitioning
	NumNodes int
	NumRels  int

	Nodes storage.NodeStore
	// Disk is non-nil when Nodes is disk-backed; the trainer then drives
	// partition loading and prefetching through it.
	Disk  *storage.DiskNodeStore
	Edges storage.EdgeStore
	// Frags caches per-bucket CSR fragments over Edges; the trainers
	// compose their incremental visit indexes from it. Created by the
	// source constructors (or lazily by FragCache for hand-built sources).
	Frags *storage.FragCache
}

// FragCache returns the source's fragment cache, creating one sized to
// the training window when the source was built without one: (2c)²
// buckets for a disk buffer of capacity c (resident set plus maximal
// prefetch lookahead), everything for in-memory sources.
func (src *Source) FragCache() *storage.FragCache {
	if src.Frags == nil {
		p := src.Part.NumPartitions
		capBuckets := p * p
		if src.Disk != nil {
			c := src.Disk.Capacity()
			if w := (2*c)*(2*c) + 8; w < capBuckets {
				capBuckets = w
			}
		}
		src.Frags = storage.NewFragCache(src.Edges, src.Part, capBuckets)
	}
	return src.Frags
}

// segTracker carries a trainer's incremental visit index across Load
// calls. Load runs in strict plan order on a single goroutine (the
// pipeline contract), so each visit's view derives from the previous
// visit's by swapping only the changed partitions; views are immutable,
// so in-flight pipelined visits keep sampling from theirs.
type segTracker struct {
	seg *graph.Segmented
}

// refresh returns the view for mem, reusing every fragment shared with
// the previous visit.
func (st *segTracker) refresh(src *Source, mem []int) (*graph.Segmented, error) {
	if st.seg == nil {
		st.seg = graph.NewSegmented(src.FragCache())
	}
	seg, err := st.seg.Swap(mem)
	if err != nil {
		return nil, err
	}
	st.seg = seg
	return seg, nil
}

// residentNodePool appends every node ID whose partition is in mem to
// dst, used to restrict negative sampling to in-memory nodes (paper §3).
func (src *Source) residentNodePool(dst []int32, mem []int) []int32 {
	for _, p := range mem {
		start, end := src.Part.Range(p)
		for id := start; id < end; id++ {
			dst = append(dst, id)
		}
	}
	return dst
}

// deduper assigns dense first-occurrence indices to node IDs using a
// generation-stamped table, the allocation-free counterpart of
// uniqueIndex for the batch-construction hot path.
type deduper struct {
	pos   []int32
	stamp []uint32
	gen   uint32
}

// reset starts a fresh index over the ID space [0, n).
func (d *deduper) reset(n int) {
	if len(d.pos) < n {
		d.pos = make([]int32, n)
		d.stamp = make([]uint32, n)
		d.gen = 0
	}
	d.gen++
	if d.gen == 0 { // wrapped: invalidate everything
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.gen = 1
	}
}

// index returns id's dense index, appending id to *uniq on first sight.
func (d *deduper) index(id int32, uniq *[]int32) int32 {
	if d.stamp[id] == d.gen {
		return d.pos[id]
	}
	d.stamp[id] = d.gen
	u := int32(len(*uniq))
	d.pos[id] = u
	*uniq = append(*uniq, id)
	return u
}

// uniqueIndex deduplicates ids preserving first-occurrence order and
// returns the unique list plus the index of each input in it.
func uniqueIndex(ids ...[]int32) (unique []int32, idx [][]int32) {
	seen := make(map[int32]int32, 64)
	idx = make([][]int32, len(ids))
	for g, group := range ids {
		idx[g] = make([]int32, len(group))
		for i, id := range group {
			u, ok := seen[id]
			if !ok {
				u = int32(len(unique))
				seen[id] = u
				unique = append(unique, id)
			}
			idx[g][i] = u
		}
	}
	return unique, idx
}
