package train

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// LPConfig configures link-prediction training.
type LPConfig struct {
	// Encoder is the GNN encoder; nil trains a decoder-only model
	// (knowledge-graph embeddings, as Marius does).
	Encoder *gnn.Encoder
	Params  *nn.ParamSet
	Decoder *decoder.DistMult

	Fanouts []int
	Dirs    graph.Directions

	BatchSize int
	Negatives int

	DenseOpt nn.Optimizer
	EmbOpt   *nn.SparseAdaGrad
	ClipNorm float64

	// Workers is the number of batch-construction goroutines (also the
	// kernel fan-out of the compute stage). PipelineDepth is how many
	// visits the prefetcher loads ahead of the trainer; 0 (the default)
	// is the serial path. Both collapse to the synchronous single-worker
	// loop in ModeBaseline.
	Workers       int
	PipelineDepth int

	Mode Mode
	Seed int64
}

// LPTrainer drives link-prediction epochs over a source and policy.
type LPTrainer struct {
	Cfg LPConfig
	Src *Source
	Pol policy.Policy

	epoch int
	edges edgePool

	// The compute stage owns one arena and one tape, recycled every batch:
	// steady-state forward/backward allocates from the arena, not the heap.
	// Kernel parallelism follows Cfg.Workers (the marius.WithWorkers knob).
	arena *tensor.Arena
	tape  *tensor.Tape
	binds map[string]*tensor.Node
}

// NewLP returns a trainer with defaults applied (workers=4, serial
// pipeline depth 0).
func NewLP(cfg LPConfig, src *Source, pol policy.Policy) *LPTrainer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PipelineDepth < 0 {
		cfg.PipelineDepth = 0
	}
	if cfg.Mode == ModeBaseline {
		cfg.Workers = 1
		cfg.PipelineDepth = 0
	}
	t := &LPTrainer{Cfg: cfg, Src: src, Pol: pol}
	t.arena = tensor.NewArena()
	t.tape = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, t.arena))
	return t
}

// Epoch returns the number of completed epochs.
func (t *LPTrainer) Epoch() int { return t.epoch }

// SetEpoch overrides the epoch counter, so a trainer restored from a
// checkpoint continues the epoch sequence (and its derived RNG stream)
// where the checkpointed run left off.
func (t *LPTrainer) SetEpoch(e int) { t.epoch = e }

// lpVisit is a visit after the prefetch/load stage: adjacency built,
// training edges read and shuffled, negative pool and per-batch seeds
// derived.
type lpVisit struct {
	vi         int
	mem        []int
	adj        *graph.Adjacency
	pool       []int32
	xEdges     []graph.Edge // pooled; recycled by release
	batchSeeds []int64
}

// preparedLP is a mini batch after the construction stage (Fig. 2 steps
// 1-3 minus representation gathering: the compute stage gathers base
// representations at consumption time, so a batch built ahead of its
// turn still sees every earlier batch's embedding update — pipelining
// introduces no staleness).
type preparedLP struct {
	d   *sampler.DENSE
	ls  *sampler.LayeredSample
	ids []int32 // rows of h0: DENSE NodeIDs / layered input nodes / unique targets

	srcIdx, dstIdx, negIdx []int32
	rels                   []int32
	n                      int

	nodesSampled int64
	edgesSampled int64
}

// TrainEpoch runs one epoch through the pipeline executor and returns
// its statistics, checking ctx between visits and batches for clean
// cancellation. The epoch counter only advances when the epoch
// completes: a canceled or failed epoch is retried from the same
// (seed, epoch)-derived RNG stream on the next call.
//
// Batches always compute in plan order with per-batch derived seeds, so
// the epoch's trajectory is identical at every PipelineDepth and Workers
// setting; concurrency only changes wall-clock overlap.
func (t *LPTrainer) TrainEpoch(ctx context.Context) (EpochStats, error) {
	epoch := t.epoch + 1
	stats := EpochStats{Epoch: epoch}
	if err := ctxErr(ctx); err != nil {
		return stats, err
	}
	var ioStart storage.StatsSnapshot
	if t.Src.Disk != nil {
		ioStart = t.Src.Disk.Stats().Snapshot()
	}
	start := time.Now()

	rng := epochRNG(t.Cfg.Seed, epoch)
	plan := t.Pol.NewEpochPlan(rng)
	stats.Visits = len(plan.Visits)
	seeds := visitSeeds(rng, len(plan.Visits))
	var sampleNS, computeNS atomic.Int64
	var lossSum float64
	var mrr, mrrW float64

	depth := clampDepth(t.Cfg.PipelineDepth, plan, t.Src.Disk)
	pipelined := depth > 0
	la := policy.NewLookahead(plan)
	batchers := make([]*lpBatcher, t.Cfg.Workers)

	ep := pipeline.Epoch[*lpVisit, *preparedLP]{
		NumVisits: len(plan.Visits),
		// Load runs in the prefetcher: async node-partition staging, edge
		// bucket reads (adjacency + training examples), shuffling and
		// seed derivation — everything except the buffer swap.
		Load: func(vi int) (*lpVisit, error) {
			visit, _, _ := la.Next()
			if t.Src.Disk != nil && pipelined {
				// Stage this visit's partitions and those of the whole
				// lookahead window, so node IO for upcoming visits runs
				// while earlier visits compute.
				t.Src.Disk.Prefetch(visit.Mem)
				for _, nv := range la.NextK(depth) {
					t.Src.Disk.Prefetch(nv.Mem)
				}
			}
			memEdges, err := t.Src.readMemEdges(visit, &t.edges)
			if err != nil {
				return nil, err
			}
			xEdges, err := t.Src.readVisitEdges(visit, &t.edges)
			if err != nil {
				t.edges.put(memEdges)
				return nil, err
			}
			vrng := rand.New(rand.NewSource(seeds[vi]))
			vrng.Shuffle(len(xEdges), func(i, j int) { xEdges[i], xEdges[j] = xEdges[j], xEdges[i] })

			v := &lpVisit{vi: vi, mem: visit.Mem, xEdges: xEdges}
			v.adj = graph.BuildAdjacency(t.Src.NumNodes, memEdges)
			t.edges.put(memEdges)
			v.pool = t.Src.residentNodePool(visit.Mem)
			nBatches := (len(xEdges) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
			v.batchSeeds = batchSeeds(vrng, nBatches)
			return v, nil
		},
		Admit: func(vi int, v *lpVisit) error {
			if t.Src.Disk == nil {
				return nil
			}
			if err := t.Src.Disk.LoadSet(v.mem); err != nil {
				return err
			}
			if !pipelined && vi+1 < len(plan.Visits) {
				t.Src.Disk.Prefetch(plan.Visits[vi+1].Mem)
			}
			return nil
		},
		NumBatches: func(v *lpVisit) int { return len(v.batchSeeds) },
		Build: func(w int, v *lpVisit, bi int) (*preparedLP, error) {
			b := batchers[w]
			if b == nil {
				b = t.newBatcher()
				batchers[w] = b
			}
			s0 := time.Now()
			pb := b.prepare(v, bi)
			sampleNS.Add(time.Since(s0).Nanoseconds())
			return pb, nil
		},
		Compute: func(v *lpVisit, bi int, pb *preparedLP) error {
			c0 := time.Now()
			loss, batchMRR, err := t.computeBatch(pb)
			computeNS.Add(time.Since(c0).Nanoseconds())
			if err != nil {
				return err
			}
			lossSum += loss
			mrr += batchMRR * float64(pb.n)
			mrrW += float64(pb.n)
			stats.Batches++
			stats.Examples += pb.n
			stats.NodesSampled += pb.nodesSampled
			stats.EdgesSampled += pb.edgesSampled
			return nil
		},
		Release: func(v *lpVisit) {
			t.edges.put(v.xEdges)
			v.xEdges = nil
		},
	}
	err := pipeline.Run(ctx, pipeline.Config{Depth: depth, Workers: t.Cfg.Workers}, ep, &stats.Pipeline)
	if err != nil {
		return stats, err
	}

	stats.Duration = time.Since(start)
	stats.Sample = time.Duration(sampleNS.Load())
	stats.Compute = time.Duration(computeNS.Load())
	if stats.Batches > 0 {
		stats.Loss = lossSum / float64(stats.Batches)
	}
	if mrrW > 0 {
		stats.Metric = mrr / mrrW
	}
	if t.Src.Disk != nil {
		stats.IO = t.Src.Disk.Stats().Snapshot().Sub(ioStart)
	}
	t.epoch = epoch
	return stats, nil
}

// lpBatcher runs the batch-construction stage (Fig. 2 steps 1-3). Each
// pipeline worker owns one; its samplers are re-bound to the visit's
// adjacency/pool and re-seeded per batch, so a batch's sample does not
// depend on which worker builds it.
type lpBatcher struct {
	t    *LPTrainer
	smp  *sampler.Sampler
	lsmp *sampler.LayeredSampler
	neg  *sampler.NegativeSampler
	adj  *graph.Adjacency // adjacency the samplers are currently bound to
}

func (t *LPTrainer) newBatcher() *lpBatcher {
	return &lpBatcher{t: t, neg: sampler.NewNegativePool(nil, 0)}
}

// bind points the batcher's samplers at the visit's adjacency and
// negative pool, creating them on first use.
func (b *lpBatcher) bind(v *lpVisit) {
	if b.adj == v.adj {
		return
	}
	t := b.t
	if t.Cfg.Encoder != nil {
		if t.Cfg.Mode == ModeBaseline {
			if b.lsmp == nil {
				b.lsmp = sampler.NewLayered(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
			}
			b.lsmp.Adj = v.adj
		} else {
			if b.smp == nil {
				b.smp = sampler.New(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
			}
			b.smp.Reset(v.adj)
		}
	}
	b.neg.SetPool(v.pool)
	b.adj = v.adj
}

// prepare samples mini batch bi of visit v: negatives and multi-hop
// sampling (base-representation gathering happens in the compute stage).
func (b *lpBatcher) prepare(v *lpVisit, bi int) *preparedLP {
	t := b.t
	b.bind(v)
	lo := bi * t.Cfg.BatchSize
	hi := min(lo+t.Cfg.BatchSize, len(v.xEdges))
	edges := v.xEdges[lo:hi]

	pb := &preparedLP{n: len(edges)}
	srcs := make([]int32, len(edges))
	dsts := make([]int32, len(edges))
	pb.rels = make([]int32, len(edges))
	for i, e := range edges {
		srcs[i], dsts[i], pb.rels[i] = e.Src, e.Dst, e.Rel
	}
	seed := v.batchSeeds[bi]
	b.neg.Reseed(seed + 1)
	negs := b.neg.Sample(nil, t.Cfg.Negatives)
	unique, idx := uniqueIndex(srcs, dsts, negs)
	pb.srcIdx, pb.dstIdx, pb.negIdx = idx[0], idx[1], idx[2]

	switch {
	case b.smp != nil:
		b.smp.Reseed(seed)
		d := b.smp.Sample(unique)
		pb.d = d
		pb.ids = append([]int32(nil), d.NodeIDs...)
		pb.nodesSampled = int64(len(d.NodeIDs))
		pb.edgesSampled = int64(len(d.Nbrs))
	case b.lsmp != nil:
		b.lsmp.Reseed(seed)
		ls := b.lsmp.Sample(unique)
		pb.ls = ls
		pb.ids = ls.Blocks[0].SrcNodes
		pb.nodesSampled = int64(ls.NumNodesSampled())
		pb.edgesSampled = int64(ls.NumEdgesSampled())
	default:
		pb.ids = unique
		pb.nodesSampled = int64(len(unique))
	}
	return pb
}

// computeBatch is the compute stage (Fig. 2 steps 4-6): gather current
// base representations, forward pass over DENSE, loss/gradients, dense
// parameter update, and write-back of representation updates. Gathering
// here (not at build time) keeps the pipelined trajectory identical to
// the serial one: batch k+1 always sees batch k's write-back.
func (t *LPTrainer) computeBatch(pb *preparedLP) (loss float64, batchMRR float64, err error) {
	// Recycle the previous batch's tape nodes and arena buffers. Everything
	// the tape produces below is arena-owned and fully consumed (optimizer
	// step, representation write-back, loss, MRR) before returning.
	tp := t.tape
	tp.Reset()
	t.arena.Reset()
	t.binds = t.Cfg.Params.BindInto(tp, t.binds)
	params := t.binds

	h0t := tp.Alloc(len(pb.ids), t.Cfg.Decoder.Dim())
	if err := t.Src.Nodes.Gather(pb.ids, h0t); err != nil {
		return 0, 0, err
	}
	h0 := tp.Leaf(h0t, true)

	var enc *tensor.Node
	switch {
	case pb.d != nil:
		enc = t.Cfg.Encoder.Forward(tp, params, pb.d, h0)
	case pb.ls != nil:
		enc = gnn.BaselineForward(tp, params, t.Cfg.Encoder, pb.ls, h0)
	default:
		enc = h0
	}
	lossNode, pos, negD, _ := t.Cfg.Decoder.Loss(tp, params, enc, pb.srcIdx, pb.dstIdx, pb.negIdx, pb.rels)
	tp.Backward(lossNode)

	nn.Apply(t.Cfg.DenseOpt, t.Cfg.Params, params, t.Cfg.ClipNorm)
	if g := h0.Grad(); g != nil && t.Cfg.EmbOpt != nil {
		if err := t.Src.Nodes.ApplyGrads(pb.ids, g, t.Cfg.EmbOpt); err != nil {
			return 0, 0, err
		}
	}
	return float64(lossNode.Value.Data[0]), decoder.BatchMRR(pos.Value, negD.Value), nil
}
