package train

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// LPConfig configures link-prediction training.
type LPConfig struct {
	// Encoder is the GNN encoder; nil trains a decoder-only model
	// (knowledge-graph embeddings, as Marius does).
	Encoder *gnn.Encoder
	Params  *nn.ParamSet
	Decoder decoder.Decoder

	Fanouts []int
	Dirs    graph.Directions

	BatchSize int
	Negatives int

	DenseOpt nn.Optimizer
	EmbOpt   *nn.SparseAdaGrad
	ClipNorm float64

	// Workers is the number of batch-construction goroutines (also the
	// kernel fan-out of the compute stage). PipelineDepth is how many
	// visits the prefetcher loads ahead of the trainer; 0 (the default)
	// is the serial path. Both collapse to the synchronous single-worker
	// loop in ModeBaseline.
	Workers       int
	PipelineDepth int

	Mode Mode
	Seed int64

	// Obs, when non-nil, attaches metrics and trace spans to every
	// epoch. Purely additive: the training trajectory is identical with
	// it on or off.
	Obs *Obs
}

// LPTrainer drives link-prediction epochs over a source and policy.
type LPTrainer struct {
	Cfg LPConfig
	Src *Source
	Pol policy.Policy

	epoch int
	edges slicePool[graph.Edge]

	// seg carries the incremental bucket-segmented visit index across
	// Load calls; each visit's view swaps only the changed partitions
	// instead of rebuilding the full in-memory adjacency. nodePool
	// recycles the per-visit resident negative-sampling pools.
	seg      segTracker
	nodePool slicePool[int32]

	// batchers persist across epochs: worker w always uses batchers[w],
	// keeping its sampler and dedup workspaces warm. pbFree recycles
	// prepared batches after the compute stage consumes them.
	batchers []*lpBatcher
	pbMu     sync.Mutex
	pbFree   []*preparedLP

	// The compute stage owns one arena and one tape, recycled every batch:
	// steady-state forward/backward allocates from the arena, not the heap.
	// Kernel parallelism follows Cfg.Workers (the marius.WithWorkers knob).
	arena *tensor.Arena
	tape  *tensor.Tape
	binds map[string]*tensor.Node
}

// NewLP returns a trainer with defaults applied (workers=4, serial
// pipeline depth 0).
func NewLP(cfg LPConfig, src *Source, pol policy.Policy) *LPTrainer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PipelineDepth < 0 {
		cfg.PipelineDepth = 0
	}
	if cfg.Mode == ModeBaseline {
		cfg.Workers = 1
		cfg.PipelineDepth = 0
	}
	t := &LPTrainer{Cfg: cfg, Src: src, Pol: pol}
	t.batchers = make([]*lpBatcher, cfg.Workers)
	t.arena = tensor.NewArena()
	t.tape = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, t.arena))
	return t
}

// getPB returns a recycled prepared batch (or a fresh one).
func (t *LPTrainer) getPB() *preparedLP {
	t.pbMu.Lock()
	defer t.pbMu.Unlock()
	if n := len(t.pbFree); n > 0 {
		pb := t.pbFree[n-1]
		t.pbFree = t.pbFree[:n-1]
		return pb
	}
	return &preparedLP{}
}

// putPB recycles a consumed batch: the DENSE goes back to the sampler
// that built it and the struct (with its index buffers) to the trainer's
// free list.
func (t *LPTrainer) putPB(pb *preparedLP) {
	if pb.smp != nil {
		pb.smp.Recycle(pb.d)
	}
	pb.d, pb.ls, pb.smp, pb.ids = nil, nil, nil, nil
	t.pbMu.Lock()
	if len(t.pbFree) < freeBatchCap {
		t.pbFree = append(t.pbFree, pb)
	}
	t.pbMu.Unlock()
}

// Epoch returns the number of completed epochs.
func (t *LPTrainer) Epoch() int { return t.epoch }

// SetEpoch overrides the epoch counter, so a trainer restored from a
// checkpoint continues the epoch sequence (and its derived RNG stream)
// where the checkpointed run left off.
func (t *LPTrainer) SetEpoch(e int) { t.epoch = e }

// lpVisit is a visit after the prefetch/load stage: incremental index
// refreshed, training edges read and shuffled, negative pool and
// per-batch seeds derived.
type lpVisit struct {
	vi         int
	mem        []int
	adj        graph.Index
	pool       []int32      // pooled; recycled by Release
	xEdges     []graph.Edge // pooled; recycled by Release
	batchSeeds []int64
}

// preparedLP is a mini batch after the construction stage (Fig. 2 steps
// 1-3 minus representation gathering: the compute stage gathers base
// representations at consumption time, so a batch built ahead of its
// turn still sees every earlier batch's embedding update — pipelining
// introduces no staleness). The struct and its buffers are recycled
// through the trainer's free list; ids aliases the pooled DENSE's
// NodeIDs (or the batch's uniq buffer) until the batch is consumed.
type preparedLP struct {
	d   *sampler.DENSE
	ls  *sampler.LayeredSample
	smp *sampler.Sampler // owner of d, for recycling
	ids []int32          // rows of h0: DENSE NodeIDs / layered input nodes / unique targets

	uniq                   []int32
	srcIdx, dstIdx, negIdx []int32
	rels                   []int32
	n                      int

	nodesSampled int64
	edgesSampled int64
}

// TrainEpoch runs one epoch through the pipeline executor and returns
// its statistics, checking ctx between visits and batches for clean
// cancellation. The epoch counter only advances when the epoch
// completes: a canceled or failed epoch is retried from the same
// (seed, epoch)-derived RNG stream on the next call.
//
// Batches always compute in plan order with per-batch derived seeds, so
// the epoch's trajectory is identical at every PipelineDepth and Workers
// setting; concurrency only changes wall-clock overlap.
func (t *LPTrainer) TrainEpoch(ctx context.Context) (EpochStats, error) {
	epoch := t.epoch + 1
	stats := EpochStats{Epoch: epoch}
	if err := ctxErr(ctx); err != nil {
		return stats, err
	}
	var ioStart storage.StatsSnapshot
	if t.Src.Disk != nil {
		ioStart = t.Src.Disk.Stats().Snapshot()
	}
	start := time.Now()

	rng := epochRNG(t.Cfg.Seed, epoch)
	plan := t.Pol.NewEpochPlan(rng)
	stats.Visits = len(plan.Visits)
	seeds := visitSeeds(rng, len(plan.Visits))
	var sampleNS, computeNS atomic.Int64
	var lossSum float64
	var mrr, mrrW float64

	depth := clampDepth(t.Cfg.PipelineDepth, plan, t.Src.Disk)
	pipelined := depth > 0
	la := policy.NewLookahead(plan)

	ep := pipeline.Epoch[*lpVisit, *preparedLP]{
		NumVisits: len(plan.Visits),
		// Load runs in the prefetcher: async node-partition staging,
		// incremental index refresh (only the swapped partitions' bucket
		// fragments are built), training-example reads, shuffling and
		// seed derivation — everything except the buffer swap.
		Load: func(vi int) (*lpVisit, error) {
			visit, _, _ := la.Next()
			if t.Src.Disk != nil && pipelined {
				// Stage this visit's partitions and those of the whole
				// lookahead window, so node IO for upcoming visits runs
				// while earlier visits compute.
				t.Src.Disk.Prefetch(visit.Mem)
				for _, nv := range la.NextK(depth) {
					t.Src.Disk.Prefetch(nv.Mem)
				}
			}
			adj, err := t.seg.refresh(t.Src, visit.Mem)
			if err != nil {
				return nil, err
			}
			xEdges, err := t.Src.readVisitEdges(visit, &t.edges)
			if err != nil {
				return nil, err
			}
			vrng := rand.New(rand.NewSource(seeds[vi]))
			vrng.Shuffle(len(xEdges), func(i, j int) { xEdges[i], xEdges[j] = xEdges[j], xEdges[i] })

			v := &lpVisit{vi: vi, mem: visit.Mem, adj: adj, xEdges: xEdges}
			v.pool = t.Src.residentNodePool(t.nodePool.get(), visit.Mem)
			nBatches := (len(xEdges) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
			v.batchSeeds = batchSeeds(vrng, nBatches)
			return v, nil
		},
		Admit: func(vi int, v *lpVisit) error {
			if t.Src.Disk == nil {
				return nil
			}
			if err := t.Src.Disk.LoadSet(v.mem); err != nil {
				return err
			}
			if !pipelined && vi+1 < len(plan.Visits) {
				t.Src.Disk.Prefetch(plan.Visits[vi+1].Mem)
			}
			return nil
		},
		NumBatches: func(v *lpVisit) int { return len(v.batchSeeds) },
		Build: func(w int, v *lpVisit, bi int) (*preparedLP, error) {
			b := t.batchers[w]
			if b == nil {
				b = t.newBatcher()
				t.batchers[w] = b
			}
			s0 := time.Now()
			pb := b.prepare(v, bi)
			sampleNS.Add(time.Since(s0).Nanoseconds())
			return pb, nil
		},
		Compute: func(v *lpVisit, bi int, pb *preparedLP) error {
			c0 := time.Now()
			loss, batchMRR, err := t.computeBatch(pb)
			computeNS.Add(time.Since(c0).Nanoseconds())
			if err != nil {
				return err
			}
			lossSum += loss
			mrr += batchMRR * float64(pb.n)
			mrrW += float64(pb.n)
			stats.Batches++
			stats.Examples += pb.n
			stats.NodesSampled += pb.nodesSampled
			stats.EdgesSampled += pb.edgesSampled
			t.putPB(pb)
			return nil
		},
		Release: func(v *lpVisit) {
			t.edges.put(v.xEdges)
			t.nodePool.put(v.pool)
			v.xEdges, v.pool = nil, nil
		},
	}
	err := pipeline.Run(ctx, pipeline.Config{Depth: depth, Workers: t.Cfg.Workers, Instr: t.Cfg.Obs.instr()}, ep, &stats.Pipeline)
	if err != nil {
		return stats, err
	}

	stats.Duration = time.Since(start)
	stats.Sample = time.Duration(sampleNS.Load())
	stats.Compute = time.Duration(computeNS.Load())
	if stats.Batches > 0 {
		stats.Loss = lossSum / float64(stats.Batches)
	}
	if mrrW > 0 {
		stats.Metric = mrr / mrrW
	}
	if t.Src.Disk != nil {
		stats.IO = t.Src.Disk.Stats().Snapshot().Sub(ioStart)
	}
	t.epoch = epoch
	t.Cfg.Obs.epochDone(&stats)
	return stats, nil
}

// lpBatcher runs the batch-construction stage (Fig. 2 steps 1-3). Each
// pipeline worker owns one; its samplers are re-bound to the visit's
// adjacency/pool and re-seeded per batch, so a batch's sample does not
// depend on which worker builds it. The negative scratch and the dedup
// table are reused across batches.
type lpBatcher struct {
	t    *LPTrainer
	smp  *sampler.Sampler
	lsmp *sampler.LayeredSampler
	neg  *sampler.NegativeSampler
	adj  graph.Index // adjacency the samplers are currently bound to

	negs []int32
	ded  deduper
}

func (t *LPTrainer) newBatcher() *lpBatcher {
	return &lpBatcher{t: t, neg: sampler.NewNegativePool(nil, 0)}
}

// bind points the batcher's samplers at the visit's adjacency and
// negative pool, creating them on first use.
func (b *lpBatcher) bind(v *lpVisit) {
	if b.adj == v.adj {
		return
	}
	t := b.t
	if t.Cfg.Encoder != nil {
		if t.Cfg.Mode == ModeBaseline {
			if b.lsmp == nil {
				b.lsmp = sampler.NewLayered(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
			}
			b.lsmp.Adj = v.adj
		} else {
			if b.smp == nil {
				b.smp = sampler.New(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
			}
			b.smp.Reset(v.adj)
		}
	}
	b.neg.SetPool(v.pool)
	b.adj = v.adj
}

// prepare samples mini batch bi of visit v: negatives and multi-hop
// sampling (base-representation gathering happens in the compute stage).
// The returned batch comes from the trainer's recycle pool and allocates
// nothing once capacities are warm.
func (b *lpBatcher) prepare(v *lpVisit, bi int) *preparedLP {
	t := b.t
	b.bind(v)
	lo := bi * t.Cfg.BatchSize
	hi := min(lo+t.Cfg.BatchSize, len(v.xEdges))
	edges := v.xEdges[lo:hi]

	pb := t.getPB()
	pb.n = len(edges)
	pb.rels = pb.rels[:0]
	for _, e := range edges {
		pb.rels = append(pb.rels, e.Rel)
	}
	seed := v.batchSeeds[bi]
	b.neg.Reseed(seed + 1)
	b.negs = b.neg.Sample(b.negs[:0], t.Cfg.Negatives)

	// Dedup endpoints and negatives into the batch's uniq/index buffers,
	// preserving first-occurrence order (as uniqueIndex does: all sources,
	// then all destinations, then the negatives).
	b.ded.reset(t.Src.NumNodes)
	pb.uniq = pb.uniq[:0]
	pb.srcIdx, pb.dstIdx, pb.negIdx = pb.srcIdx[:0], pb.dstIdx[:0], pb.negIdx[:0]
	for _, e := range edges {
		pb.srcIdx = append(pb.srcIdx, b.ded.index(e.Src, &pb.uniq))
	}
	for _, e := range edges {
		pb.dstIdx = append(pb.dstIdx, b.ded.index(e.Dst, &pb.uniq))
	}
	for _, id := range b.negs {
		pb.negIdx = append(pb.negIdx, b.ded.index(id, &pb.uniq))
	}

	switch {
	case b.smp != nil:
		b.smp.Reseed(seed)
		d := b.smp.Sample(pb.uniq)
		pb.d, pb.smp = d, b.smp
		pb.ids = d.NodeIDs
		pb.nodesSampled = int64(len(d.NodeIDs))
		pb.edgesSampled = int64(len(d.Nbrs))
	case b.lsmp != nil:
		b.lsmp.Reseed(seed)
		ls := b.lsmp.Sample(pb.uniq)
		pb.ls = ls
		pb.ids = ls.Blocks[0].SrcNodes
		pb.nodesSampled = int64(ls.NumNodesSampled())
		pb.edgesSampled = int64(ls.NumEdgesSampled())
	default:
		pb.ids = pb.uniq
		pb.nodesSampled = int64(len(pb.uniq))
	}
	return pb
}

// computeBatch is the compute stage (Fig. 2 steps 4-6): gather current
// base representations, forward pass over DENSE, loss/gradients, dense
// parameter update, and write-back of representation updates. Gathering
// here (not at build time) keeps the pipelined trajectory identical to
// the serial one: batch k+1 always sees batch k's write-back.
func (t *LPTrainer) computeBatch(pb *preparedLP) (loss float64, batchMRR float64, err error) {
	// Recycle the previous batch's tape nodes and arena buffers. Everything
	// the tape produces below is arena-owned and fully consumed (optimizer
	// step, representation write-back, loss, MRR) before returning.
	tp := t.tape
	tp.Reset()
	t.arena.Reset()
	t.binds = t.Cfg.Params.BindInto(tp, t.binds)
	params := t.binds

	h0t := tp.Alloc(len(pb.ids), t.Cfg.Decoder.Dim())
	if err := t.Src.Nodes.Gather(pb.ids, h0t); err != nil {
		return 0, 0, err
	}
	h0 := tp.Leaf(h0t, true)

	enc := encode.Apply(tp, params, t.Cfg.Encoder, pb.d, pb.ls, h0)
	lossNode, pos, negD, _ := t.Cfg.Decoder.Loss(tp, params, enc, pb.srcIdx, pb.dstIdx, pb.negIdx, pb.rels)
	tp.Backward(lossNode)

	nn.Apply(t.Cfg.DenseOpt, t.Cfg.Params, params, t.Cfg.ClipNorm)
	if g := h0.Grad(); g != nil && t.Cfg.EmbOpt != nil {
		if err := t.Src.Nodes.ApplyGrads(pb.ids, g, t.Cfg.EmbOpt); err != nil {
			return 0, 0, err
		}
	}
	return float64(lossNode.Value.Data[0]), decoder.BatchMRR(pos.Value, negD.Value), nil
}
