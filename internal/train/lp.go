package train

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// LPConfig configures link-prediction training.
type LPConfig struct {
	// Encoder is the GNN encoder; nil trains a decoder-only model
	// (knowledge-graph embeddings, as Marius does).
	Encoder *gnn.Encoder
	Params  *nn.ParamSet
	Decoder *decoder.DistMult

	Fanouts []int
	Dirs    graph.Directions

	BatchSize int
	Negatives int

	DenseOpt nn.Optimizer
	EmbOpt   *nn.SparseAdaGrad
	ClipNorm float64

	// Workers is the number of sampling workers; PipelineDepth bounds the
	// prepared-batch queue. Both are forced to 1 in ModeBaseline.
	Workers       int
	PipelineDepth int

	Mode Mode
	Seed int64
}

// LPTrainer drives link-prediction epochs over a source and policy.
type LPTrainer struct {
	Cfg LPConfig
	Src *Source
	Pol policy.Policy

	epoch int

	// The compute stage owns one arena and one tape, recycled every batch:
	// steady-state forward/backward allocates from the arena, not the heap.
	// Kernel parallelism follows Cfg.Workers (the marius.WithWorkers knob).
	arena *tensor.Arena
	tape  *tensor.Tape
	binds map[string]*tensor.Node
}

// NewLP returns a trainer; cfg defaults are applied (workers=4, depth=4).
func NewLP(cfg LPConfig, src *Source, pol policy.Policy) *LPTrainer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 4
	}
	if cfg.Mode == ModeBaseline {
		cfg.Workers = 1
		cfg.PipelineDepth = 1
	}
	t := &LPTrainer{Cfg: cfg, Src: src, Pol: pol}
	t.arena = tensor.NewArena()
	t.tape = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, t.arena))
	return t
}

// Epoch returns the number of completed epochs.
func (t *LPTrainer) Epoch() int { return t.epoch }

// SetEpoch overrides the epoch counter, so a trainer restored from a
// checkpoint continues the epoch sequence (and its derived RNG stream)
// where the checkpointed run left off.
func (t *LPTrainer) SetEpoch(e int) { t.epoch = e }

// preparedLP is a mini batch after the sampling stage (Fig. 2 steps 1-3).
type preparedLP struct {
	d   *sampler.DENSE
	ls  *sampler.LayeredSample
	ids []int32 // rows of h0: DENSE NodeIDs / layered input nodes / unique targets
	h0  *tensor.Tensor

	srcIdx, dstIdx, negIdx []int32
	rels                   []int32
	n                      int

	sampleNS     int64
	nodesSampled int64
	edgesSampled int64
	err          error
}

// TrainEpoch runs one epoch and returns its statistics, checking ctx
// between visits and batches for clean cancellation. The epoch counter
// only advances when the epoch completes: a canceled or failed epoch is
// retried from the same (seed, epoch)-derived RNG stream on the next call.
func (t *LPTrainer) TrainEpoch(ctx context.Context) (EpochStats, error) {
	epoch := t.epoch + 1
	stats := EpochStats{Epoch: epoch}
	if err := ctxErr(ctx); err != nil {
		return stats, err
	}
	var ioStart storage.StatsSnapshot
	if t.Src.Disk != nil {
		ioStart = t.Src.Disk.Stats().Snapshot()
	}
	start := time.Now()

	rng := epochRNG(t.Cfg.Seed, epoch)
	plan := t.Pol.NewEpochPlan(rng)
	stats.Visits = len(plan.Visits)
	var sampleNS, computeNS atomic.Int64
	var lossSum float64
	var mrr float64
	var mrrW float64

	for vi := range plan.Visits {
		if err := ctxErr(ctx); err != nil {
			return stats, err
		}
		visit := &plan.Visits[vi]
		memEdges, err := t.Src.loadVisit(visit)
		if err != nil {
			return stats, err
		}
		if t.Src.Disk != nil && vi+1 < len(plan.Visits) {
			t.Src.Disk.Prefetch(plan.Visits[vi+1].Mem)
		}
		adj := graph.BuildAdjacency(t.Src.NumNodes, memEdges)
		xEdges, err := t.Src.visitEdges(visit, rng)
		if err != nil {
			return stats, err
		}
		pool := t.Src.residentNodePool(visit.Mem)

		out := t.runVisit(ctx, rng, adj, pool, xEdges, &sampleNS, &computeNS)
		if out.err != nil {
			return stats, out.err
		}
		lossSum += out.lossSum
		mrr += out.mrrSum
		mrrW += out.mrrWeight
		stats.Batches += out.batches
		stats.Examples += out.examples
		stats.NodesSampled += out.nodes
		stats.EdgesSampled += out.edges
	}

	stats.Duration = time.Since(start)
	stats.Sample = time.Duration(sampleNS.Load())
	stats.Compute = time.Duration(computeNS.Load())
	if stats.Batches > 0 {
		stats.Loss = lossSum / float64(stats.Batches)
	}
	if mrrW > 0 {
		stats.Metric = mrr / mrrW
	}
	if t.Src.Disk != nil {
		stats.IO = t.Src.Disk.Stats().Snapshot().Sub(ioStart)
	}
	t.epoch = epoch
	return stats, nil
}

type visitResult struct {
	lossSum   float64
	mrrSum    float64
	mrrWeight float64
	batches   int
	examples  int
	nodes     int64
	edges     int64
	err       error
}

// runVisit trains on the visit's examples with a sampling worker pool
// feeding a single compute stage through a bounded queue. With a single
// worker the pipeline is skipped entirely: sampling and compute alternate
// synchronously, which removes the bounded-staleness race between batch
// k's representation write-back and batch k+1's gather and makes training
// bit-reproducible (checkpoint resume then continues the exact
// trajectory).
func (t *LPTrainer) runVisit(ctx context.Context, rng *rand.Rand, adj *graph.Adjacency, pool []int32, xEdges []graph.Edge, sampleNS, computeNS *atomic.Int64) visitResult {
	var res visitResult
	nBatches := (len(xEdges) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	if nBatches == 0 {
		return res
	}
	if t.Cfg.Workers <= 1 {
		return t.runVisitSync(ctx, rng, adj, pool, xEdges, sampleNS, computeNS)
	}
	jobs := make(chan []graph.Edge, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * t.Cfg.BatchSize
		hi := min(lo+t.Cfg.BatchSize, len(xEdges))
		jobs <- xEdges[lo:hi]
	}
	close(jobs)

	prepared := make(chan *preparedLP, t.Cfg.PipelineDepth)
	var wg sync.WaitGroup
	for w := 0; w < t.Cfg.Workers; w++ {
		wg.Add(1)
		seed := rng.Int63()
		go func(seed int64) {
			defer wg.Done()
			t.sampleWorker(ctx, adj, pool, seed, jobs, prepared, sampleNS)
		}(seed)
	}
	go func() {
		wg.Wait()
		close(prepared)
	}()

	for pb := range prepared {
		if err := ctxErr(ctx); err != nil {
			if res.err == nil {
				res.err = err
			}
			continue // drain so the workers can exit
		}
		if pb.err != nil {
			if res.err == nil {
				res.err = pb.err
			}
			continue
		}
		c0 := time.Now()
		loss, batchMRR, err := t.computeBatch(pb)
		computeNS.Add(time.Since(c0).Nanoseconds())
		if err != nil {
			if res.err == nil {
				res.err = err
			}
			continue
		}
		res.lossSum += loss
		res.mrrSum += batchMRR * float64(pb.n)
		res.mrrWeight += float64(pb.n)
		res.batches++
		res.examples += pb.n
		res.nodes += pb.nodesSampled
		res.edges += pb.edgesSampled
	}
	return res
}

// runVisitSync is the single-worker path: sampling and compute alternate
// in one goroutine, batch by batch, with no pipeline staleness.
func (t *LPTrainer) runVisitSync(ctx context.Context, rng *rand.Rand, adj *graph.Adjacency, pool []int32, xEdges []graph.Edge, sampleNS, computeNS *atomic.Int64) visitResult {
	var res visitResult
	b := t.newBatcher(adj, pool, rng.Int63())
	for lo := 0; lo < len(xEdges); lo += t.Cfg.BatchSize {
		if err := ctxErr(ctx); err != nil {
			res.err = err
			return res
		}
		hi := min(lo+t.Cfg.BatchSize, len(xEdges))
		pb := b.prepare(xEdges[lo:hi])
		sampleNS.Add(pb.sampleNS)
		if pb.err != nil {
			res.err = pb.err
			return res
		}
		c0 := time.Now()
		loss, batchMRR, err := t.computeBatch(pb)
		computeNS.Add(time.Since(c0).Nanoseconds())
		if err != nil {
			res.err = err
			return res
		}
		res.lossSum += loss
		res.mrrSum += batchMRR * float64(pb.n)
		res.mrrWeight += float64(pb.n)
		res.batches++
		res.examples += pb.n
		res.nodes += pb.nodesSampled
		res.edges += pb.edgesSampled
	}
	return res
}

// lpBatcher runs the CPU sampling stage (Fig. 2 steps 1-3) over one
// visit's adjacency and negative pool.
type lpBatcher struct {
	t    *LPTrainer
	smp  *sampler.Sampler
	lsmp *sampler.LayeredSampler
	neg  *sampler.NegativeSampler
}

func (t *LPTrainer) newBatcher(adj *graph.Adjacency, pool []int32, seed int64) *lpBatcher {
	b := &lpBatcher{t: t}
	if t.Cfg.Encoder != nil {
		if t.Cfg.Mode == ModeBaseline {
			b.lsmp = sampler.NewLayered(adj, t.Cfg.Fanouts, t.Cfg.Dirs, seed)
		} else {
			b.smp = sampler.New(adj, t.Cfg.Fanouts, t.Cfg.Dirs, seed)
		}
	}
	b.neg = sampler.NewNegativePool(pool, seed+1)
	return b
}

// prepare samples one mini batch: negatives, multi-hop sampling, and
// base-representation gathering.
func (b *lpBatcher) prepare(edges []graph.Edge) *preparedLP {
	t := b.t
	s0 := time.Now()
	pb := &preparedLP{n: len(edges)}
	srcs := make([]int32, len(edges))
	dsts := make([]int32, len(edges))
	pb.rels = make([]int32, len(edges))
	for i, e := range edges {
		srcs[i], dsts[i], pb.rels[i] = e.Src, e.Dst, e.Rel
	}
	negs := b.neg.Sample(nil, t.Cfg.Negatives)
	unique, idx := uniqueIndex(srcs, dsts, negs)
	pb.srcIdx, pb.dstIdx, pb.negIdx = idx[0], idx[1], idx[2]

	switch {
	case b.smp != nil:
		d := b.smp.Sample(unique)
		pb.d = d
		pb.ids = append([]int32(nil), d.NodeIDs...)
		pb.nodesSampled = int64(len(d.NodeIDs))
		pb.edgesSampled = int64(len(d.Nbrs))
	case b.lsmp != nil:
		ls := b.lsmp.Sample(unique)
		pb.ls = ls
		pb.ids = ls.Blocks[0].SrcNodes
		pb.nodesSampled = int64(ls.NumNodesSampled())
		pb.edgesSampled = int64(ls.NumEdgesSampled())
	default:
		pb.ids = unique
		pb.nodesSampled = int64(len(unique))
	}
	pb.h0 = tensor.New(len(pb.ids), t.Cfg.Decoder.Dim())
	if err := t.Src.Nodes.Gather(pb.ids, pb.h0); err != nil {
		pb.err = err
	}
	pb.sampleNS = time.Since(s0).Nanoseconds()
	return pb
}

// sampleWorker feeds the pipelined path from the shared job queue.
func (t *LPTrainer) sampleWorker(ctx context.Context, adj *graph.Adjacency, pool []int32, seed int64, jobs <-chan []graph.Edge, out chan<- *preparedLP, sampleNS *atomic.Int64) {
	b := t.newBatcher(adj, pool, seed)
	for edges := range jobs {
		if ctxErr(ctx) != nil {
			continue // canceled: drain the remaining jobs without sampling
		}
		pb := b.prepare(edges)
		sampleNS.Add(pb.sampleNS)
		out <- pb
	}
}

// computeBatch is the compute stage (Fig. 2 steps 4-6): forward pass over
// DENSE, loss/gradients, dense parameter update, and write-back of
// base-representation updates.
func (t *LPTrainer) computeBatch(pb *preparedLP) (loss float64, batchMRR float64, err error) {
	// Recycle the previous batch's tape nodes and arena buffers. Everything
	// the tape produces below is arena-owned and fully consumed (optimizer
	// step, representation write-back, loss, MRR) before returning.
	tp := t.tape
	tp.Reset()
	t.arena.Reset()
	t.binds = t.Cfg.Params.BindInto(tp, t.binds)
	params := t.binds
	h0 := tp.Leaf(pb.h0, true)

	var enc *tensor.Node
	switch {
	case pb.d != nil:
		enc = t.Cfg.Encoder.Forward(tp, params, pb.d, h0)
	case pb.ls != nil:
		enc = gnn.BaselineForward(tp, params, t.Cfg.Encoder, pb.ls, h0)
	default:
		enc = h0
	}
	lossNode, pos, negD, _ := t.Cfg.Decoder.Loss(tp, params, enc, pb.srcIdx, pb.dstIdx, pb.negIdx, pb.rels)
	tp.Backward(lossNode)

	nn.Apply(t.Cfg.DenseOpt, t.Cfg.Params, params, t.Cfg.ClipNorm)
	if g := h0.Grad(); g != nil && t.Cfg.EmbOpt != nil {
		if err := t.Src.Nodes.ApplyGrads(pb.ids, g, t.Cfg.EmbOpt); err != nil {
			return 0, 0, err
		}
	}
	return float64(lossNode.Value.Data[0]), decoder.BatchMRR(pos.Value, negD.Value), nil
}
