package train

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/storage"
)

func TestLPGATTrainsEndToEnd(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 500, NumRelations: 6, NumEdges: 5000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 31,
	})
	const dim = 12
	pt := PrepareLP(g, 4, 31)
	emb := RandomEmbeddings(g.NumNodes, dim, 31)
	src := NewMemorySource(g, pt, emb)

	rng := rand.New(rand.NewSource(31))
	ps := nn.NewParamSet()
	enc := gnn.BuildGAT(ps, []int{dim, dim}, rng)
	dec := decoder.NewDistMult(ps, g.NumRels, dim, rng)
	tr := NewLP(LPConfig{
		Encoder: enc, Params: ps, Decoder: dec,
		Fanouts: []int{6}, Dirs: graph.Both,
		BatchSize: 256, Negatives: 64,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1), ClipNorm: 5,
		Workers: 2, Seed: 31,
	}, src, policy.InMemory{P: 4})

	first, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var last EpochStats
	for e := 0; e < 3; e++ {
		last, err = tr.TrainEpoch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Metric <= first.Metric {
		t.Fatalf("GAT LP did not improve: %.4f -> %.4f", first.Metric, last.Metric)
	}
}

func TestThrottledDiskTrainingStillCorrect(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 300, NumRelations: 4, NumEdges: 2500,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 37,
	})
	const dim = 8
	pt := PrepareLP(g, 4, 37)
	emb := RandomEmbeddings(g.NumNodes, dim, 37)
	src, err := NewDiskSource(g, pt, dim, DiskSourceConfig{
		Dir: t.TempDir(), Capacity: 2, Learnable: true, InitTable: emb,
		Throttle: storage.NewThrottle(64 << 20), // 64 MiB/s simulated disk
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	rng := rand.New(rand.NewSource(37))
	ps := nn.NewParamSet()
	dec := decoder.NewDistMult(ps, g.NumRels, dim, rng)
	tr := NewLP(LPConfig{
		Params: ps, Decoder: dec,
		BatchSize: 256, Negatives: 32,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1),
		Workers: 2, Seed: 37,
	}, src, policy.Comet{P: 4, L: 4, C: 2})

	st, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != len(g.Edges) {
		t.Fatalf("consumed %d/%d edges under throttling", st.Examples, len(g.Edges))
	}
}

func TestNCEmptyVisitTargets(t *testing.T) {
	// A visit whose partitions contain no untrained training nodes must be
	// skipped cleanly (zero batches, no deadlock in the pipeline).
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 400, NumClasses: 3, AvgDegree: 6, FeatureDim: 6,
		Homophily: 0.8, FeatNoise: 1.5, TrainFrac: 0.02, ValidFrac: 0.02, TestFrac: 0.02,
		Seed: 41,
	})
	pt, trainParts := PrepareNC(g, 8, 41)
	src, err := NewDiskSource(g, pt, g.Features.Cols, DiskSourceConfig{
		Dir: t.TempDir(), Capacity: 3, InitTable: g.Features,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	rng := rand.New(rand.NewSource(41))
	ps := nn.NewParamSet()
	enc := gnn.BuildSage(ps, []int{6, 8, g.NumClasses}, gnn.Mean, rng)
	tr := NewNC(NCConfig{
		Encoder: enc, Params: ps,
		Fanouts: []int{4, 4}, Dirs: graph.Both,
		BatchSize: 64, Opt: nn.NewAdam(0.01),
		Workers: 2, Seed: 41,
	}, src, policy.NodeCache{P: 8, C: 3, TrainParts: trainParts}, g.Labels, g.TrainNodes)

	st, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != len(g.TrainNodes) {
		t.Fatalf("consumed %d/%d training nodes", st.Examples, len(g.TrainNodes))
	}
}

func TestLPStatsAccounting(t *testing.T) {
	tr, g, done := lpFixture(t, policy.InMemory{P: 4}, false, 4, 4, 43)
	defer done()
	st, err := tr.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != (len(g.Edges)+511)/512 {
		t.Fatalf("batches = %d", st.Batches)
	}
	if st.Sample <= 0 || st.Compute <= 0 {
		t.Fatal("stage timings missing")
	}
	if st.Visits != 1 {
		t.Fatalf("in-memory training should have one visit, got %d", st.Visits)
	}
}
