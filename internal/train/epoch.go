package train

import (
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/storage"
)

// visitSeeds derives one independent seed per visit from the epoch RNG,
// in plan order, before any stage runs. Each visit's shuffles, batch
// splits and per-batch sampler seeds come from its own seed, so a visit's
// batch sequence is a pure function of (epoch seed, plan, visit index) —
// the property that lets the pipeline build batches ahead of (and
// concurrently with) the compute stage without changing the trajectory.
func visitSeeds(rng *rand.Rand, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// clampDepth bounds the configured pipeline depth for one epoch's plan:
// the prefetcher stages the partitions of up to depth upcoming visits,
// and that demand must fit the disk store's staging pool (one buffer per
// buffer-capacity slot), per Plan.VerifyLookahead. In-memory sources
// stage nothing, so the configured depth stands.
func clampDepth(depth int, plan *policy.Plan, disk *storage.DiskNodeStore) int {
	if depth <= 0 || disk == nil {
		return depth
	}
	if m := plan.MaxLookahead(disk.Capacity()); m < depth {
		return m
	}
	return depth
}

// batchSeeds derives one seed per mini batch from a visit RNG. Workers
// reseed their samplers with batchSeeds[bi] before building batch bi.
func batchSeeds(vrng *rand.Rand, nBatches int) []int64 {
	seeds := make([]int64, nBatches)
	for i := range seeds {
		seeds[i] = vrng.Int63()
	}
	return seeds
}

// slicePool recycles buffers across visits so the prefetcher does not
// allocate a fresh slice per visit. It is shared between the prefetcher
// and compute goroutines (Release may run on either side), so it is
// mutex-guarded; the pool is bounded — overflow buffers fall to GC.
type slicePool[T any] struct {
	mu   sync.Mutex
	bufs [][]T
}

const slicePoolCap = 8

// get returns an empty buffer with whatever capacity a prior visit left
// behind (nil when the pool is empty — append grows it).
func (p *slicePool[T]) get() []T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs = p.bufs[:n-1]
		return b[:0]
	}
	return nil
}

// put returns a buffer to the pool.
func (p *slicePool[T]) put(b []T) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.bufs) < slicePoolCap {
		p.bufs = append(p.bufs, b)
	}
}

// readVisitEdges reads the training-example buckets assigned to the
// visit (X_i) into a pooled buffer, unshuffled.
func (src *Source) readVisitEdges(v *policy.Visit, pool *slicePool[graph.Edge]) ([]graph.Edge, error) {
	edges := pool.get()
	var err error
	for _, b := range v.Buckets {
		edges, err = src.Edges.ReadBucket(int(b[0]), int(b[1]), edges)
		if err != nil {
			pool.put(edges)
			return nil, err
		}
	}
	return edges, nil
}
