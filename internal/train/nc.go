package train

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/encode"
	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// NCConfig configures node-classification training. The encoder's final
// layer must output NumClasses logits.
type NCConfig struct {
	Encoder *gnn.Encoder
	Params  *nn.ParamSet

	Fanouts []int
	Dirs    graph.Directions

	BatchSize int
	Opt       nn.Optimizer
	ClipNorm  float64

	// Workers is the number of batch-construction goroutines (also the
	// kernel fan-out of the compute stage). PipelineDepth is how many
	// visits the prefetcher loads ahead of the trainer; 0 (the default)
	// is the serial path. Both collapse to the synchronous single-worker
	// loop in ModeBaseline.
	Workers       int
	PipelineDepth int

	Mode Mode
	Seed int64

	// Obs, when non-nil, attaches metrics and trace spans to every
	// epoch. Purely additive: the training trajectory is identical with
	// it on or off.
	Obs *Obs
}

// NCTrainer drives node-classification epochs. Labels index all graph
// nodes; TrainNodes lists the labeled training nodes (paper §5.2: often
// only 1-10% of the graph).
type NCTrainer struct {
	Cfg        NCConfig
	Src        *Source
	Pol        policy.Policy
	Labels     []int32
	TrainNodes []int32

	epoch int

	// seg carries the incremental bucket-segmented visit index across
	// Load calls; each visit's view swaps only the changed partitions
	// instead of rebuilding the full in-memory adjacency.
	seg segTracker
	// trainByPart caches TrainNodes grouped by partition (the
	// partitioning is fixed per trainer), so Load collects a visit's
	// targets without scanning all training nodes.
	trainByPart [][]int32
	targetPool  slicePool[int32]

	// batchers persist across epochs: worker w always uses batchers[w],
	// keeping its sampler workspaces warm. pbFree recycles prepared
	// batches after the compute stage consumes them.
	batchers []*ncBatcher
	pbMu     sync.Mutex
	pbFree   []*preparedNC

	// The compute stage owns one arena and one tape, recycled every batch:
	// steady-state forward/backward allocates from the arena, not the heap.
	// Kernel parallelism follows Cfg.Workers (the marius.WithWorkers knob).
	arena *tensor.Arena
	tape  *tensor.Tape
	binds map[string]*tensor.Node
}

// NewNC returns a trainer with defaults applied.
func NewNC(cfg NCConfig, src *Source, pol policy.Policy, labels []int32, trainNodes []int32) *NCTrainer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PipelineDepth < 0 {
		cfg.PipelineDepth = 0
	}
	if cfg.Mode == ModeBaseline {
		cfg.Workers = 1
		cfg.PipelineDepth = 0
	}
	t := &NCTrainer{Cfg: cfg, Src: src, Pol: pol, Labels: labels, TrainNodes: trainNodes}
	t.batchers = make([]*ncBatcher, cfg.Workers)
	t.arena = tensor.NewArena()
	t.tape = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, t.arena))
	return t
}

// getPB returns a recycled prepared batch (or a fresh one).
func (t *NCTrainer) getPB() *preparedNC {
	t.pbMu.Lock()
	defer t.pbMu.Unlock()
	if n := len(t.pbFree); n > 0 {
		pb := t.pbFree[n-1]
		t.pbFree = t.pbFree[:n-1]
		return pb
	}
	return &preparedNC{}
}

// putPB recycles a consumed batch: the DENSE goes back to the sampler
// that built it and the struct (with its label buffer) to the trainer's
// free list.
func (t *NCTrainer) putPB(pb *preparedNC) {
	if pb.smp != nil {
		pb.smp.Recycle(pb.d)
	}
	pb.d, pb.ls, pb.smp, pb.ids = nil, nil, nil, nil
	t.pbMu.Lock()
	if len(t.pbFree) < freeBatchCap {
		t.pbFree = append(t.pbFree, pb)
	}
	t.pbMu.Unlock()
}

// freeBatchCap bounds the prepared-batch free lists; the pipeline keeps
// at most Workers+Depth batches in flight.
const freeBatchCap = 32

// Epoch returns the number of completed epochs.
func (t *NCTrainer) Epoch() int { return t.epoch }

// SetEpoch overrides the epoch counter, so a trainer restored from a
// checkpoint continues the epoch sequence (and its derived RNG stream)
// where the checkpointed run left off.
func (t *NCTrainer) SetEpoch(e int) { t.epoch = e }

// ncVisit is a visit after the prefetch/load stage: incremental index
// refreshed, targets assigned and shuffled, per-batch seeds derived.
type ncVisit struct {
	vi         int
	mem        []int
	adj        graph.Index
	targets    []int32 // pooled; recycled by Release
	batchSeeds []int64
}

// preparedNC is a mini batch after the construction stage. Base
// representations are gathered by the compute stage (not here), so a
// batch built ahead of time never reads stale features. The struct and
// its buffers are recycled through the trainer's free list; ids aliases
// the pooled DENSE's NodeIDs until the batch is consumed.
type preparedNC struct {
	d      *sampler.DENSE
	ls     *sampler.LayeredSample
	smp    *sampler.Sampler // owner of d, for recycling
	ids    []int32
	labels []int32
	n      int

	nodesSampled int64
	edgesSampled int64
}

// TrainEpoch walks the policy plan once through the pipeline executor,
// checking ctx between visits and batches for clean cancellation. The
// epoch counter only advances when the epoch completes: a canceled or
// failed epoch is retried from the same (seed, epoch)-derived RNG stream
// on the next call. Under the §5.2 NodeCache policy training nodes appear
// in the first visit's partitions; under the fallback rotation, each
// training node is consumed at the first visit where its partition is
// resident.
//
// Batches always compute in plan order with per-batch derived seeds, so
// the epoch's trajectory is identical at every PipelineDepth and Workers
// setting; concurrency only changes wall-clock overlap.
func (t *NCTrainer) TrainEpoch(ctx context.Context) (EpochStats, error) {
	epoch := t.epoch + 1
	stats := EpochStats{Epoch: epoch}
	if err := ctxErr(ctx); err != nil {
		return stats, err
	}
	var ioStart storage.StatsSnapshot
	if t.Src.Disk != nil {
		ioStart = t.Src.Disk.Stats().Snapshot()
	}
	start := time.Now()

	rng := epochRNG(t.Cfg.Seed, epoch)
	plan := t.Pol.NewEpochPlan(rng)
	stats.Visits = len(plan.Visits)
	seeds := visitSeeds(rng, len(plan.Visits))
	var sampleNS, computeNS atomic.Int64
	var lossSum float64
	acc := eval.MeanAccumulator{}

	depth := clampDepth(t.Cfg.PipelineDepth, plan, t.Src.Disk)
	pipelined := depth > 0
	la := policy.NewLookahead(plan)
	donePart := make([]bool, t.Src.Part.NumPartitions)
	if t.trainByPart == nil {
		t.trainByPart = make([][]int32, t.Src.Part.NumPartitions)
		for _, v := range t.TrainNodes {
			p := t.Src.Part.Of(v)
			t.trainByPart[p] = append(t.trainByPart[p], v)
		}
	}

	ep := pipeline.Epoch[*ncVisit, *preparedNC]{
		NumVisits: len(plan.Visits),
		// Load runs in the prefetcher: async node-partition staging,
		// incremental index refresh (only the swapped partitions' bucket
		// fragments are built), and target assignment (donePart and the
		// seg tracker carry in-order state across Load calls, which the
		// executor guarantees run sequentially).
		Load: func(vi int) (*ncVisit, error) {
			visit, _, _ := la.Next()
			if t.Src.Disk != nil && pipelined {
				// Stage this visit's partitions and those of the whole
				// lookahead window, so node IO for upcoming visits runs
				// while earlier visits compute.
				t.Src.Disk.Prefetch(visit.Mem)
				for _, nv := range la.NextK(depth) {
					t.Src.Disk.Prefetch(nv.Mem)
				}
			}
			adj, err := t.seg.refresh(t.Src, visit.Mem)
			if err != nil {
				return nil, err
			}
			vrng := rand.New(rand.NewSource(seeds[vi]))

			// Targets: training nodes whose partition became resident and
			// has not been trained on yet this epoch.
			targets := t.targetPool.get()
			for _, p := range visit.Mem {
				if !donePart[p] {
					donePart[p] = true
					targets = append(targets, t.trainByPart[p]...)
				}
			}
			vrng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })

			v := &ncVisit{vi: vi, mem: visit.Mem, targets: targets, adj: adj}
			nBatches := (len(targets) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
			v.batchSeeds = batchSeeds(vrng, nBatches)
			return v, nil
		},
		Admit: func(vi int, v *ncVisit) error {
			if t.Src.Disk == nil {
				return nil
			}
			if err := t.Src.Disk.LoadSet(v.mem); err != nil {
				return err
			}
			if !pipelined && vi+1 < len(plan.Visits) {
				t.Src.Disk.Prefetch(plan.Visits[vi+1].Mem)
			}
			return nil
		},
		NumBatches: func(v *ncVisit) int { return len(v.batchSeeds) },
		Build: func(w int, v *ncVisit, bi int) (*preparedNC, error) {
			b := t.batchers[w]
			if b == nil {
				b = t.newBatcher()
				t.batchers[w] = b
			}
			s0 := time.Now()
			pb := b.prepare(v, bi)
			sampleNS.Add(time.Since(s0).Nanoseconds())
			return pb, nil
		},
		Compute: func(v *ncVisit, bi int, pb *preparedNC) error {
			c0 := time.Now()
			loss, batchAcc, err := t.computeBatch(pb)
			computeNS.Add(time.Since(c0).Nanoseconds())
			if err != nil {
				return err
			}
			lossSum += loss
			acc.Add(batchAcc, float64(pb.n))
			stats.Batches++
			stats.Examples += pb.n
			stats.NodesSampled += pb.nodesSampled
			stats.EdgesSampled += pb.edgesSampled
			t.putPB(pb)
			return nil
		},
		Release: func(v *ncVisit) {
			t.targetPool.put(v.targets)
			v.targets = nil
		},
	}
	err := pipeline.Run(ctx, pipeline.Config{Depth: depth, Workers: t.Cfg.Workers, Instr: t.Cfg.Obs.instr()}, ep, &stats.Pipeline)
	if err != nil {
		return stats, err
	}

	stats.Duration = time.Since(start)
	stats.Sample = time.Duration(sampleNS.Load())
	stats.Compute = time.Duration(computeNS.Load())
	if stats.Batches > 0 {
		stats.Loss = lossSum / float64(stats.Batches)
	}
	stats.Metric = acc.Mean()
	if t.Src.Disk != nil {
		stats.IO = t.Src.Disk.Stats().Snapshot().Sub(ioStart)
	}
	t.epoch = epoch
	t.Cfg.Obs.epochDone(&stats)
	return stats, nil
}

// ncBatcher runs the batch-construction stage. Each pipeline worker owns
// one; its samplers are re-bound to the visit's adjacency and re-seeded
// per batch, so a batch's sample does not depend on which worker builds
// it.
type ncBatcher struct {
	t    *NCTrainer
	smp  *sampler.Sampler
	lsmp *sampler.LayeredSampler
	adj  graph.Index // adjacency the samplers are currently bound to
}

func (t *NCTrainer) newBatcher() *ncBatcher {
	return &ncBatcher{t: t}
}

// bind points the batcher's samplers at the visit's adjacency, creating
// them on first use.
func (b *ncBatcher) bind(v *ncVisit) {
	if b.adj == v.adj {
		return
	}
	t := b.t
	if t.Cfg.Mode == ModeBaseline {
		if b.lsmp == nil {
			b.lsmp = sampler.NewLayered(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
		}
		b.lsmp.Adj = v.adj
	} else {
		if b.smp == nil {
			b.smp = sampler.New(v.adj, t.Cfg.Fanouts, t.Cfg.Dirs, 0)
		}
		b.smp.Reset(v.adj)
	}
	b.adj = v.adj
}

// prepare samples mini batch bi of visit v: multi-hop sampling plus label
// lookup (feature gathering happens in the compute stage). The returned
// batch comes from the trainer's recycle pool and allocates nothing once
// capacities are warm.
func (b *ncBatcher) prepare(v *ncVisit, bi int) *preparedNC {
	t := b.t
	b.bind(v)
	lo := bi * t.Cfg.BatchSize
	hi := min(lo+t.Cfg.BatchSize, len(v.targets))
	targets := v.targets[lo:hi]

	pb := t.getPB()
	pb.n = len(targets)
	pb.labels = pb.labels[:0]
	for _, id := range targets {
		pb.labels = append(pb.labels, t.Labels[id])
	}
	seed := v.batchSeeds[bi]
	if b.smp != nil {
		b.smp.Reseed(seed)
		d := b.smp.Sample(targets)
		pb.d, pb.smp = d, b.smp
		pb.ids = d.NodeIDs
		pb.nodesSampled = int64(len(d.NodeIDs))
		pb.edgesSampled = int64(len(d.Nbrs))
	} else {
		b.lsmp.Reseed(seed)
		ls := b.lsmp.Sample(targets)
		pb.ls = ls
		pb.ids = ls.Blocks[0].SrcNodes
		pb.nodesSampled = int64(ls.NumNodesSampled())
		pb.edgesSampled = int64(ls.NumEdgesSampled())
	}
	return pb
}

// computeBatch is the compute stage: base representations are gathered
// here (the visit is resident by Admit), then forward/backward and the
// parameter update run on the arena-backed tape.
func (t *NCTrainer) computeBatch(pb *preparedNC) (loss, accuracy float64, err error) {
	// Recycle the previous batch's tape nodes and arena buffers. Everything
	// the tape produces below is arena-owned and fully consumed (optimizer
	// step, loss, accuracy) before this function returns.
	tp := t.tape
	tp.Reset()
	t.arena.Reset()
	t.binds = t.Cfg.Params.BindInto(tp, t.binds)
	params := t.binds

	h0t := tp.Alloc(len(pb.ids), t.Src.Nodes.Dim())
	if err := t.Src.Nodes.Gather(pb.ids, h0t); err != nil {
		return 0, 0, err
	}
	h0 := tp.Leaf(h0t, false) // fixed features: no base-representation updates

	logits := encode.Apply(tp, params, t.Cfg.Encoder, pb.d, pb.ls, h0)
	lossNode := tp.SoftmaxCrossEntropy(logits, pb.labels)
	tp.Backward(lossNode)
	nn.Apply(t.Cfg.Opt, t.Cfg.Params, params, t.Cfg.ClipNorm)
	return float64(lossNode.Value.Data[0]), eval.Accuracy(logits.Value, pb.labels), nil
}
