package train

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// NCConfig configures node-classification training. The encoder's final
// layer must output NumClasses logits.
type NCConfig struct {
	Encoder *gnn.Encoder
	Params  *nn.ParamSet

	Fanouts []int
	Dirs    graph.Directions

	BatchSize int
	Opt       nn.Optimizer
	ClipNorm  float64

	Workers       int
	PipelineDepth int

	Mode Mode
	Seed int64
}

// NCTrainer drives node-classification epochs. Labels index all graph
// nodes; TrainNodes lists the labeled training nodes (paper §5.2: often
// only 1-10% of the graph).
type NCTrainer struct {
	Cfg        NCConfig
	Src        *Source
	Pol        policy.Policy
	Labels     []int32
	TrainNodes []int32

	epoch int

	// The compute stage owns one arena and one tape, recycled every batch:
	// steady-state forward/backward allocates from the arena, not the heap.
	// Kernel parallelism follows Cfg.Workers (the marius.WithWorkers knob).
	arena *tensor.Arena
	tape  *tensor.Tape
	binds map[string]*tensor.Node
}

// NewNC returns a trainer with defaults applied.
func NewNC(cfg NCConfig, src *Source, pol policy.Policy, labels []int32, trainNodes []int32) *NCTrainer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 4
	}
	if cfg.Mode == ModeBaseline {
		cfg.Workers = 1
		cfg.PipelineDepth = 1
	}
	t := &NCTrainer{Cfg: cfg, Src: src, Pol: pol, Labels: labels, TrainNodes: trainNodes}
	t.arena = tensor.NewArena()
	t.tape = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, t.arena))
	return t
}

// Epoch returns the number of completed epochs.
func (t *NCTrainer) Epoch() int { return t.epoch }

// SetEpoch overrides the epoch counter, so a trainer restored from a
// checkpoint continues the epoch sequence (and its derived RNG stream)
// where the checkpointed run left off.
func (t *NCTrainer) SetEpoch(e int) { t.epoch = e }

type preparedNC struct {
	d      *sampler.DENSE
	ls     *sampler.LayeredSample
	ids    []int32
	h0     *tensor.Tensor
	labels []int32
	n      int

	sampleNS     int64
	nodesSampled int64
	edgesSampled int64
	err          error
}

// TrainEpoch walks the policy plan once, checking ctx between visits and
// batches for clean cancellation. The epoch counter only advances when
// the epoch completes: a canceled or failed epoch is retried from the
// same (seed, epoch)-derived RNG stream on the next call. Under the §5.2
// NodeCache policy training nodes appear in the first visit's partitions;
// under the fallback rotation, each training node is consumed at the
// first visit where its partition is resident.
func (t *NCTrainer) TrainEpoch(ctx context.Context) (EpochStats, error) {
	epoch := t.epoch + 1
	stats := EpochStats{Epoch: epoch}
	if err := ctxErr(ctx); err != nil {
		return stats, err
	}
	var ioStart storage.StatsSnapshot
	if t.Src.Disk != nil {
		ioStart = t.Src.Disk.Stats().Snapshot()
	}
	start := time.Now()

	rng := epochRNG(t.Cfg.Seed, epoch)
	plan := t.Pol.NewEpochPlan(rng)
	stats.Visits = len(plan.Visits)
	var sampleNS, computeNS atomic.Int64
	var lossSum float64
	acc := eval.MeanAccumulator{}

	donePart := make([]bool, t.Src.Part.NumPartitions)
	for vi := range plan.Visits {
		if err := ctxErr(ctx); err != nil {
			return stats, err
		}
		visit := &plan.Visits[vi]
		memEdges, err := t.Src.loadVisit(visit)
		if err != nil {
			return stats, err
		}
		if t.Src.Disk != nil && vi+1 < len(plan.Visits) {
			t.Src.Disk.Prefetch(plan.Visits[vi+1].Mem)
		}
		adj := graph.BuildAdjacency(t.Src.NumNodes, memEdges)

		// Targets: training nodes whose partition became resident and has
		// not been trained on yet this epoch.
		resident := make(map[int]bool, len(visit.Mem))
		for _, p := range visit.Mem {
			resident[p] = true
		}
		var targets []int32
		for _, v := range t.TrainNodes {
			p := t.Src.Part.Of(v)
			if resident[p] && !donePart[p] {
				targets = append(targets, v)
			}
		}
		for _, p := range visit.Mem {
			donePart[p] = true
		}
		rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })

		out := t.runVisit(ctx, rng, adj, targets, &sampleNS, &computeNS, &acc)
		if out.err != nil {
			return stats, out.err
		}
		lossSum += out.lossSum
		stats.Batches += out.batches
		stats.Examples += out.examples
		stats.NodesSampled += out.nodes
		stats.EdgesSampled += out.edges
	}

	stats.Duration = time.Since(start)
	stats.Sample = time.Duration(sampleNS.Load())
	stats.Compute = time.Duration(computeNS.Load())
	if stats.Batches > 0 {
		stats.Loss = lossSum / float64(stats.Batches)
	}
	stats.Metric = acc.Mean()
	if t.Src.Disk != nil {
		stats.IO = t.Src.Disk.Stats().Snapshot().Sub(ioStart)
	}
	t.epoch = epoch
	return stats, nil
}

// runVisit trains on the visit's targets with a sampling worker pool
// feeding the compute stage. With a single worker the pipeline is skipped:
// sampling and compute alternate synchronously in one goroutine, making
// the epoch bit-reproducible.
func (t *NCTrainer) runVisit(ctx context.Context, rng *rand.Rand, adj *graph.Adjacency, targets []int32, sampleNS, computeNS *atomic.Int64, acc *eval.MeanAccumulator) visitResult {
	var res visitResult
	nBatches := (len(targets) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	if nBatches == 0 {
		return res
	}
	if t.Cfg.Workers <= 1 {
		return t.runVisitSync(ctx, rng, adj, targets, sampleNS, computeNS, acc)
	}
	jobs := make(chan []int32, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * t.Cfg.BatchSize
		hi := min(lo+t.Cfg.BatchSize, len(targets))
		jobs <- targets[lo:hi]
	}
	close(jobs)

	prepared := make(chan *preparedNC, t.Cfg.PipelineDepth)
	var wg sync.WaitGroup
	for w := 0; w < t.Cfg.Workers; w++ {
		wg.Add(1)
		seed := rng.Int63()
		go func(seed int64) {
			defer wg.Done()
			t.sampleWorker(ctx, adj, seed, jobs, prepared, sampleNS)
		}(seed)
	}
	go func() {
		wg.Wait()
		close(prepared)
	}()

	for pb := range prepared {
		if err := ctxErr(ctx); err != nil {
			if res.err == nil {
				res.err = err
			}
			continue // drain so the workers can exit
		}
		if pb.err != nil {
			if res.err == nil {
				res.err = pb.err
			}
			continue
		}
		c0 := time.Now()
		loss, batchAcc, err := t.computeBatch(pb)
		computeNS.Add(time.Since(c0).Nanoseconds())
		if err != nil {
			if res.err == nil {
				res.err = err
			}
			continue
		}
		res.lossSum += loss
		acc.Add(batchAcc, float64(pb.n))
		res.batches++
		res.examples += pb.n
		res.nodes += pb.nodesSampled
		res.edges += pb.edgesSampled
	}
	return res
}

// runVisitSync is the single-worker path: sampling and compute alternate
// in one goroutine, batch by batch.
func (t *NCTrainer) runVisitSync(ctx context.Context, rng *rand.Rand, adj *graph.Adjacency, targets []int32, sampleNS, computeNS *atomic.Int64, acc *eval.MeanAccumulator) visitResult {
	var res visitResult
	b := t.newBatcher(adj, rng.Int63())
	for lo := 0; lo < len(targets); lo += t.Cfg.BatchSize {
		if err := ctxErr(ctx); err != nil {
			res.err = err
			return res
		}
		hi := min(lo+t.Cfg.BatchSize, len(targets))
		pb := b.prepare(targets[lo:hi])
		sampleNS.Add(pb.sampleNS)
		if pb.err != nil {
			res.err = pb.err
			return res
		}
		c0 := time.Now()
		loss, batchAcc, err := t.computeBatch(pb)
		computeNS.Add(time.Since(c0).Nanoseconds())
		if err != nil {
			res.err = err
			return res
		}
		res.lossSum += loss
		acc.Add(batchAcc, float64(pb.n))
		res.batches++
		res.examples += pb.n
		res.nodes += pb.nodesSampled
		res.edges += pb.edgesSampled
	}
	return res
}

// ncBatcher runs the CPU sampling stage over one visit's adjacency.
type ncBatcher struct {
	t    *NCTrainer
	smp  *sampler.Sampler
	lsmp *sampler.LayeredSampler
}

func (t *NCTrainer) newBatcher(adj *graph.Adjacency, seed int64) *ncBatcher {
	b := &ncBatcher{t: t}
	if t.Cfg.Mode == ModeBaseline {
		b.lsmp = sampler.NewLayered(adj, t.Cfg.Fanouts, t.Cfg.Dirs, seed)
	} else {
		b.smp = sampler.New(adj, t.Cfg.Fanouts, t.Cfg.Dirs, seed)
	}
	return b
}

// prepare samples one mini batch: multi-hop sampling plus feature
// gathering.
func (b *ncBatcher) prepare(targets []int32) *preparedNC {
	t := b.t
	s0 := time.Now()
	pb := &preparedNC{n: len(targets)}
	pb.labels = make([]int32, len(targets))
	for i, v := range targets {
		pb.labels[i] = t.Labels[v]
	}
	if b.smp != nil {
		d := b.smp.Sample(targets)
		pb.d = d
		pb.ids = append([]int32(nil), d.NodeIDs...)
		pb.nodesSampled = int64(len(d.NodeIDs))
		pb.edgesSampled = int64(len(d.Nbrs))
	} else {
		ls := b.lsmp.Sample(targets)
		pb.ls = ls
		pb.ids = ls.Blocks[0].SrcNodes
		pb.nodesSampled = int64(ls.NumNodesSampled())
		pb.edgesSampled = int64(ls.NumEdgesSampled())
	}
	pb.h0 = tensor.New(len(pb.ids), t.Src.Nodes.Dim())
	if err := t.Src.Nodes.Gather(pb.ids, pb.h0); err != nil {
		pb.err = err
	}
	pb.sampleNS = time.Since(s0).Nanoseconds()
	return pb
}

// sampleWorker feeds the pipelined path from the shared job queue.
func (t *NCTrainer) sampleWorker(ctx context.Context, adj *graph.Adjacency, seed int64, jobs <-chan []int32, out chan<- *preparedNC, sampleNS *atomic.Int64) {
	b := t.newBatcher(adj, seed)
	for targets := range jobs {
		if ctxErr(ctx) != nil {
			continue // canceled: drain the remaining jobs without sampling
		}
		pb := b.prepare(targets)
		sampleNS.Add(pb.sampleNS)
		out <- pb
	}
}

func (t *NCTrainer) computeBatch(pb *preparedNC) (loss, accuracy float64, err error) {
	// Recycle the previous batch's tape nodes and arena buffers. Everything
	// the tape produces below is arena-owned and fully consumed (optimizer
	// step, loss, accuracy) before this function returns.
	tp := t.tape
	tp.Reset()
	t.arena.Reset()
	t.binds = t.Cfg.Params.BindInto(tp, t.binds)
	params := t.binds
	h0 := tp.Leaf(pb.h0, false) // fixed features: no base-representation updates

	var logits *tensor.Node
	if pb.d != nil {
		logits = t.Cfg.Encoder.Forward(tp, params, pb.d, h0)
	} else {
		logits = gnn.BaselineForward(tp, params, t.Cfg.Encoder, pb.ls, h0)
	}
	lossNode := tp.SoftmaxCrossEntropy(logits, pb.labels)
	tp.Backward(lossNode)
	nn.Apply(t.Cfg.Opt, t.Cfg.Params, params, t.Cfg.ClipNorm)
	return float64(lossNode.Value.Data[0]), eval.Accuracy(logits.Value, pb.labels), nil
}
