package experiments

import (
	"context"
	"math/rand"
	"os"
	"time"

	"repro/internal/autotune"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/train"
	"repro/marius"
)

// BiasPoint is one (configuration, Edge Permutation Bias, MRR) sample for
// paper Fig. 6a.
type BiasPoint struct {
	Policy string
	P, L   int
	Bias   float64
	MRR    float64
}

// Figure6a sweeps disk policies/partitionings on an FB15k-237-like graph,
// recording the bias B of each epoch plan and the model MRR after
// training — the correlation the paper uses to motivate COMET.
func Figure6a(sc Scale, epochs int) ([]BiasPoint, error) {
	type cfg struct {
		name    string
		pol     func() policy.Policy
		p, l, c int
	}
	configs := []cfg{
		{"BETA", func() policy.Policy { return policy.Beta{P: 16, C: 4} }, 16, 0, 4},
		{"BETA", func() policy.Policy { return policy.Beta{P: 32, C: 8} }, 32, 0, 8},
		{"COMET", func() policy.Policy { return policy.Comet{P: 16, L: 8, C: 4} }, 16, 8, 4},
		{"COMET", func() policy.Policy { return policy.Comet{P: 16, L: 16, C: 4} }, 16, 16, 4},
		{"COMET", func() policy.Policy { return policy.Comet{P: 8, L: 8, C: 2} }, 8, 8, 2},
		{"COMET", func() policy.Policy { return policy.Comet{P: 32, L: 16, C: 8} }, 32, 16, 8},
	}
	var points []BiasPoint
	for _, c := range configs {
		g := lpDataset("237", sc, 500)
		pt := train.PrepareLP(g, c.p, 500)
		buckets := pt.Buckets(g.Edges)
		plan := c.pol().NewEpochPlan(rand.New(rand.NewSource(7)))
		bias := eval.EdgePermutationBias(plan, buckets)

		mrr, err := diskLPMRR(g, c.p, c.c, c.pol(), epochs)
		if err != nil {
			return nil, err
		}
		points = append(points, BiasPoint{Policy: c.name, P: c.p, L: c.l, Bias: bias, MRR: mrr})
	}
	return points, nil
}

// diskLPMRR trains a decoder-only DistMult on disk under pol and returns
// validation MRR (full entity ranking).
func diskLPMRR(g *graph.Graph, p, c int, pol policy.Policy, epochs int) (float64, error) {
	dir := tempDir("fig6")
	defer os.RemoveAll(dir)
	sess, err := marius.New(marius.LinkPrediction(), g,
		marius.WithModel(marius.DistMultOnly),
		marius.WithDim(32), marius.WithBatchSize(1024), marius.WithNegatives(256),
		marius.WithDisk(dir, marius.Partitions(p), marius.Capacity(c)),
		marius.WithPolicyImpl(pol), // the exact policy under test
		marius.WithSeed(500),
	)
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	if _, err := sess.Run(context.Background(), marius.Epochs(epochs)); err != nil {
		return 0, err
	}
	ev, err := sess.Evaluate(marius.ValidSplit)
	return ev.Value, err
}

// PartitionEffect is one sweep point for Figures 6b and 6c.
type PartitionEffect struct {
	P, L         int
	Bias         float64
	NumSubgraphs int
	TotalLoads   int
}

// Figure6b sweeps the number of logical partitions at fixed p, measuring
// bias, |S| (number of subgraphs), and total IO in partition loads.
func Figure6b(sc Scale) ([]PartitionEffect, error) {
	const p, c = 32, 8
	g := lpDataset("237", sc, 510)
	pt := train.PrepareLP(g, p, 510)
	buckets := pt.Buckets(g.Edges)
	var out []PartitionEffect
	for _, l := range []int{8, 16, 32} {
		comet := policy.Comet{P: p, L: l, C: c}
		if comet.Validate() != nil {
			continue
		}
		var bias float64
		var subgraphs, loads int
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			plan := comet.NewEpochPlan(rand.New(rand.NewSource(9 + seed)))
			bias += eval.EdgePermutationBias(plan, buckets)
			subgraphs += len(plan.Visits)
			loads += plan.TotalLoads()
		}
		out = append(out, PartitionEffect{
			P: p, L: l,
			Bias:         bias / seeds,
			NumSubgraphs: subgraphs / seeds,
			TotalLoads:   loads / seeds,
		})
	}
	return out, nil
}

// Figure6c sweeps the number of physical partitions at a fixed buffer
// fraction (c = p/4), measuring bias.
func Figure6c(sc Scale) ([]PartitionEffect, error) {
	g := lpDataset("237", sc, 520)
	var out []PartitionEffect
	for _, p := range []int{8, 16, 32, 64} {
		c := p / 4
		l := 2 * p / c // the §6 rule: two logical partitions in the buffer
		comet := policy.Comet{P: p, L: l, C: c}
		if comet.Validate() != nil {
			continue
		}
		gc := *g // re-partitioning mutates the graph: work on a copy
		gc.Edges = append([]graph.Edge(nil), g.Edges...)
		pt := train.PrepareLP(&gc, p, 520)
		buckets := pt.Buckets(gc.Edges)
		var bias float64
		var subgraphs, loads int
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			plan := comet.NewEpochPlan(rand.New(rand.NewSource(11 + seed)))
			bias += eval.EdgePermutationBias(plan, buckets)
			subgraphs += len(plan.Visits)
			loads += plan.TotalLoads()
		}
		out = append(out, PartitionEffect{
			P: p, L: l,
			Bias:         bias / seeds,
			NumSubgraphs: subgraphs / seeds,
			TotalLoads:   loads / seeds,
		})
	}
	return out, nil
}

// TimeToAccuracyPoint is one epoch of a time-to-accuracy trace (Fig. 7).
type TimeToAccuracyPoint struct {
	System  string
	Epoch   int
	Elapsed time.Duration
	Metric  float64
}

// Figure7 produces time-to-accuracy traces for node classification
// (Papers-like) across the three execution configurations, using the run
// loop's per-epoch validation callback.
func Figure7(sc Scale, epochs int) ([]TimeToAccuracyPoint, error) {
	var points []TimeToAccuracyPoint
	for _, system := range []string{"M-GNN Mem", "M-GNN Disk", "DGL/PyG-sim"} {
		g := ncDataset("Papers", sc, 600)
		opts := []marius.Option{
			marius.WithModel(marius.GraphSage), marius.WithFanouts(15, 10, 5),
			marius.WithDim(64), marius.WithBatchSize(512), marius.WithSeed(600),
		}
		switch system {
		case "M-GNN Disk":
			dir := tempDir("fig7")
			defer os.RemoveAll(dir)
			opts = append(opts, marius.WithDisk(dir, marius.Partitions(16), marius.Capacity(4)))
		case "DGL/PyG-sim":
			opts = append(opts, marius.WithBaseline())
		}
		sess, err := marius.New(marius.NodeClassification(), g, opts...)
		if err != nil {
			return nil, err
		}
		var elapsed time.Duration
		_, err = sess.Run(context.Background(),
			marius.Epochs(epochs), marius.EvalEvery(1),
			marius.OnEpoch(func(p marius.Progress) error {
				elapsed += p.Stats.Duration
				points = append(points, TimeToAccuracyPoint{
					System: system, Epoch: p.Epoch, Elapsed: elapsed, Metric: p.Valid.Value,
				})
				return nil
			}))
		sess.Close()
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// TuningPoint is one grid-search configuration's outcome (Fig. 8).
type TuningPoint struct {
	P, C, L   int
	Epoch     time.Duration
	MRR       float64
	AutoTuned bool
}

// Figure8 runs a (p, c, l) grid search for disk-based GraphSage link
// prediction on the FB15k-237-like graph and marks the configuration the
// §6 auto-tuning rules select.
func Figure8(sc Scale, epochs int) ([]TuningPoint, error) {
	base := lpDataset("237", sc, 700)
	const dim = 32

	no := int64(base.NumNodes) * dim * 4
	eo := int64(len(base.Edges)) * 12
	tuned, err := autotune.Tune(autotune.Input{
		NumNodes: base.NumNodes, NumEdges: len(base.Edges), Dim: dim,
		// A CPU budget holding roughly half the representations (so the
		// tuner must page) plus room for the in-memory edge buckets.
		CPUBytes: no/2 + 4*eo, BlockBytes: 4 << 10,
	})
	if err != nil {
		return nil, err
	}

	grid := autotune.Grid([]int{8, 16, 32}, []int{2, 4, 8})
	grid = append(grid, autotune.GridPoint{P: tuned.P, C: tuned.C, L: tuned.L})

	var out []TuningPoint
	seen := map[autotune.GridPoint]bool{}
	for _, gp := range grid {
		if seen[gp] {
			continue
		}
		seen[gp] = true
		comet := policy.Comet{P: gp.P, L: gp.L, C: gp.C}
		if comet.Validate() != nil {
			continue
		}
		g := lpDataset("237", sc, 700)
		dir := tempDir("fig8")
		sess, err := marius.New(marius.LinkPrediction(), g,
			marius.WithModel(marius.GraphSage), marius.WithFanouts(10),
			marius.WithDim(dim), marius.WithBatchSize(1024), marius.WithNegatives(256),
			marius.WithDisk(dir, marius.Partitions(gp.P), marius.Capacity(gp.C), marius.LogicalPartitions(gp.L)),
			marius.WithSeed(700),
		)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		epoch, mrr, _, err := runSession(sess, epochs)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, TuningPoint{
			P: gp.P, C: gp.C, L: gp.L,
			Epoch: epoch, MRR: mrr,
			AutoTuned: gp.P == tuned.P && gp.C == tuned.C && gp.L == tuned.L,
		})
	}
	return out, nil
}
