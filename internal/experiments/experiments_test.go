package experiments

import "testing"

// The experiment drivers are exercised end-to-end at tiny scale; full-size
// runs happen through cmd/benchtables and the root benchmarks.
const testScale = Scale(0.06)

func TestTable1MatchesPaperShape(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "Papers100M" || rows[0].TotalGB < 68 || rows[0].TotalGB > 72 {
		t.Fatalf("Papers100M total %.1f GB, paper says 70", rows[0].TotalGB)
	}
}

func TestTable3Runs(t *testing.T) {
	rows, err := Table3(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Epoch <= 0 || r.Cost <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		// Disk training must be the cheapest configuration per dataset
		// (it runs on the 1-GPU instance), the paper's headline claim.
		if r.System == "M-GNN Disk" && r.Instance != "P3.2xLarge" {
			t.Fatal("disk rows must be costed on the small instance")
		}
	}
}

func TestTable4And5Run(t *testing.T) {
	rows, err := Table4(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("table4 rows = %d", len(rows))
	}
	rows5, err := Table5(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != 6 {
		t.Fatalf("table5 rows = %d", len(rows5))
	}
	seenGAT := false
	for _, r := range rows5 {
		if r.Model == "GAT" {
			seenGAT = true
		}
	}
	if !seenGAT {
		t.Fatal("table 5 must include GAT rows")
	}
}

func TestTable6SamplingAdvantageGrowsWithDepth(t *testing.T) {
	rows, err := Table6(testScale, 3, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.DenseNodes >= last.BaselineNodes {
		t.Fatalf("at depth %d DENSE sampled %d nodes vs baseline %d; reuse should win",
			last.Layers, last.DenseNodes, last.BaselineNodes)
	}
}

func TestTable7OOMShape(t *testing.T) {
	rows, err := Table7(20_000, 12, 4, 64, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[len(rows)-1].KHopOOM {
		t.Fatal("independent k-hop sampling should exceed the budget at depth 4")
	}
	if rows[0].KHopOOM {
		t.Fatal("depth 1 should fit")
	}
}

func TestFigure6bAnd6cTrends(t *testing.T) {
	effB, err := Figure6b(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(effB) < 2 {
		t.Fatal("need at least two l values")
	}
	// Paper Fig. 6b: |S| grows with l. (The bias trend needs full-size
	// graphs to rise above noise; it is asserted at realistic scale in
	// internal/eval's tests and measured by cmd/benchtables.)
	for i := 1; i < len(effB); i++ {
		if effB[i].L > effB[i-1].L && effB[i].NumSubgraphs < effB[i-1].NumSubgraphs {
			t.Fatalf("|S| should grow with l: %+v -> %+v", effB[i-1], effB[i])
		}
		if effB[i].Bias < 0 || effB[i].Bias > 1 {
			t.Fatalf("bias out of range: %+v", effB[i])
		}
	}
	effC, err := Figure6c(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(effC) < 2 {
		t.Fatal("need at least two p values")
	}
}

func TestFigure8MarksAutoTunedPoint(t *testing.T) {
	points, err := Figure8(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range points {
		if p.AutoTuned {
			found = true
		}
	}
	if !found {
		t.Fatal("auto-tuned configuration missing from grid results")
	}
}

func TestExtremeScaleSmall(t *testing.T) {
	res, err := ExtremeScale(40_000, 120_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesPerSec <= 0 || res.IOBytes == 0 {
		t.Fatalf("implausible result %+v", res)
	}
}

func TestFigure6aPolicies(t *testing.T) {
	points, err := Figure6a(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Bias < 0 || p.Bias > 1 {
			t.Fatalf("bias out of range: %+v", p)
		}
	}
}
