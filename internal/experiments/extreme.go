package experiments

import (
	"context"
	"math/rand"
	"os"
	"time"

	"repro/internal/costmodel"
	"repro/internal/decoder"
	"repro/internal/gen"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/train"
)

// ExtremeScaleResult summarizes the §7.3 streaming out-of-core run.
type ExtremeScaleResult struct {
	Nodes         int
	Edges         int64
	Preprocess    time.Duration
	Epoch         time.Duration
	EdgesPerSec   float64
	TrainMRR      float64
	IOBytes       int64
	ExtrapolatedH float64 // hours per epoch for the full 128B-edge graph
	ExtrapolatedC float64 // $/epoch at that rate on the P3.2xLarge
}

// ExtremeScale streams a hyperlink-like graph to disk (never materializing
// it), then trains one disk-based DistMult epoch under COMET with the
// embedding table paged through a buffer holding 1/4 of the partitions —
// the paper's Common Crawl experiment scaled down.
func ExtremeScale(numNodes int, numEdges int64, dim int) (*ExtremeScaleResult, error) {
	const p, c, l = 16, 4, 8
	dir, err := os.MkdirTemp("", "extreme")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	pt := partition.New(numNodes, p)

	res := &ExtremeScaleResult{Nodes: numNodes, Edges: numEdges}
	t0 := time.Now()
	writer, err := storage.NewStreamingEdgeWriter(dir, pt)
	if err != nil {
		return nil, err
	}
	stream := gen.NewEdgeStream(gen.StreamConfig{
		NumNodes: numNodes, NumEdges: numEdges, ZipfS: 1.3, Seed: 1,
	})
	for chunk := stream.Next(); chunk != nil; chunk = stream.Next() {
		if err := writer.Append(chunk); err != nil {
			return nil, err
		}
	}
	edgeStore, err := writer.Finalize(nil)
	if err != nil {
		return nil, err
	}
	res.Preprocess = time.Since(t0)

	rng := rand.New(rand.NewSource(2))
	nodes, err := storage.CreateDiskNodeStore(storage.DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
		Init: func(id int32, row []float32) {
			for j := range row {
				row[j] = (rng.Float32()*2 - 1) * 0.1
			}
		},
	})
	if err != nil {
		return nil, err
	}
	src := &train.Source{
		Part: pt, NumNodes: numNodes, NumRels: 1,
		Nodes: nodes, Disk: nodes, Edges: edgeStore,
	}
	defer src.Close()

	ps := nn.NewParamSet()
	dec := decoder.NewDistMult(ps, 1, dim, rng)
	tr := train.NewLP(train.LPConfig{
		Params: ps, Decoder: dec,
		BatchSize: 4096, Negatives: 128,
		DenseOpt: nn.NewAdam(0.01), EmbOpt: nn.NewSparseAdaGrad(0.1),
		Workers: 4, Seed: 3,
	}, src, policy.Comet{P: p, L: l, C: c})

	st, err := tr.TrainEpoch(context.Background())
	if err != nil {
		return nil, err
	}
	res.Epoch = st.Duration
	res.EdgesPerSec = float64(st.Examples) / st.Duration.Seconds()
	res.TrainMRR = st.Metric
	res.IOBytes = st.IO.BytesRead + st.IO.BytesWritten
	full := time.Duration(128e9 / res.EdgesPerSec * float64(time.Second))
	res.ExtrapolatedH = full.Hours()
	res.ExtrapolatedC = costmodel.CostPerEpoch(costmodel.ByName("P3.2xLarge"), full)
	return res, nil
}
