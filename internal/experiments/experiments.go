// Package experiments implements one driver per table and figure of the
// MariusGNN evaluation (paper §7). Each driver runs the scaled-down
// workload described in DESIGN.md and returns structured rows; the
// cmd/benchtables binary renders them in the paper's format and the
// repository-root benchmarks expose them to `go test -bench`.
//
// Scale disclaimer: datasets are synthetic stand-ins roughly 100-1000x
// smaller than the paper's (see DESIGN.md §2), and the "GPU" is this
// machine's CPU running dense kernels. Absolute numbers therefore differ
// from the paper; the comparisons within each table (which system/policy
// wins, how ratios move with depth or partition counts) are the
// reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/marius"
)

// Scale globally shrinks experiment workloads; 1.0 is the default
// benchmark size (runs in minutes on a laptop).
type Scale float64

// EndToEndRow is one system configuration's end-to-end result
// (Tables 3, 4, 5).
type EndToEndRow struct {
	System   string
	Dataset  string
	Model    string
	Epoch    time.Duration
	Metric   float64 // accuracy or MRR
	Instance string
	Cost     float64 // $/epoch using the paper's instance assignment
	IOBytes  int64
}

func (r EndToEndRow) String() string {
	return fmt.Sprintf("%-14s %-10s %-5s epoch=%8.2fs metric=%.4f cost=$%.4f/epoch",
		r.System, r.Dataset, r.Model, r.Epoch.Seconds(), r.Metric, r.Cost)
}

// ncDataset builds the scaled node-classification datasets.
func ncDataset(name string, sc Scale, seed int64) *graph.Graph {
	switch name {
	case "Papers":
		cfg := gen.SBMConfig{
			NumNodes:   int(60_000 * sc),
			NumClasses: 16, AvgDegree: 15, FeatureDim: 64,
			Homophily: 0.7, FeatNoise: 3.0,
			TrainFrac: 0.05, ValidFrac: 0.02, TestFrac: 0.05, Seed: seed,
		}
		return gen.SBM(cfg)
	case "Mag":
		cfg := gen.SBMConfig{
			NumNodes:   int(80_000 * sc),
			NumClasses: 16, AvgDegree: 11, FeatureDim: 96,
			Homophily: 0.7, FeatNoise: 3.0,
			TrainFrac: 0.03, ValidFrac: 0.02, TestFrac: 0.05, Seed: seed,
		}
		return gen.SBM(cfg)
	default:
		panic("unknown NC dataset " + name)
	}
}

// lpDataset builds the scaled link-prediction datasets.
func lpDataset(name string, sc Scale, seed int64) *graph.Graph {
	switch name {
	case "237":
		return gen.KG(gen.FB15k237Scale(0.3*float64(sc), seed))
	case "FB":
		return gen.KG(gen.KGConfig{
			NumEntities: int(40_000 * sc), NumRelations: 64,
			NumEdges: int(160_000 * sc), ZipfS: 1.3,
			ValidFrac: 0.01, TestFrac: 0.02, Seed: seed,
		})
	case "Wiki":
		return gen.KG(gen.KGConfig{
			NumEntities: int(45_000 * sc), NumRelations: 48,
			NumEdges: int(280_000 * sc), ZipfS: 1.25,
			ValidFrac: 0.005, TestFrac: 0.01, Seed: seed,
		})
	default:
		panic("unknown LP dataset " + name)
	}
}

// runSession trains a session for epochs and returns mean epoch time,
// final validation metric and total IO.
func runSession(sess *marius.Session, epochs int) (time.Duration, float64, int64, error) {
	defer sess.Close()
	res, err := sess.Run(context.Background(), marius.Epochs(epochs))
	if err != nil {
		return 0, 0, 0, err
	}
	var total time.Duration
	var io int64
	for _, st := range res.Epochs {
		total += st.Duration
		io += st.IO.BytesRead + st.IO.BytesWritten
	}
	ev, err := sess.Evaluate(marius.ValidSplit)
	if err != nil {
		return 0, 0, 0, err
	}
	return total / time.Duration(epochs), ev.Value, io, nil
}

func tempDir(prefix string) string {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		panic(err)
	}
	return dir
}

// cost assigns the paper's instances: MariusGNN runs on the 1-GPU
// P3.2xLarge; baselines need the multi-GPU machines for CPU memory.
func cost(system string, epoch time.Duration, dataset string) (string, float64) {
	inst := costmodel.ByName("P3.2xLarge")
	if system == "DGL/PyG-sim" {
		if dataset == "Mag" {
			inst = costmodel.ByName("P3.16xLarge")
		} else {
			inst = costmodel.ByName("P3.8xLarge")
		}
	} else if system == "M-GNN Mem" && (dataset == "Papers" || dataset == "Mag" || dataset == "FB" || dataset == "Wiki") {
		inst = costmodel.ByName("P3.8xLarge")
	}
	return inst.Name, costmodel.CostPerEpoch(inst, epoch)
}

// Table3 reproduces the node-classification end-to-end comparison.
func Table3(sc Scale, epochs int) ([]EndToEndRow, error) {
	var rows []EndToEndRow
	for _, ds := range []string{"Papers", "Mag"} {
		for _, system := range []string{"M-GNN Mem", "M-GNN Disk", "DGL/PyG-sim"} {
			g := ncDataset(ds, sc, 100)
			opts := []marius.Option{
				marius.WithModel(marius.GraphSage), marius.WithFanouts(15, 10, 5),
				marius.WithDim(64), marius.WithBatchSize(512), marius.WithSeed(100),
			}
			switch system {
			case "M-GNN Disk":
				dir := tempDir("t3")
				defer os.RemoveAll(dir)
				opts = append(opts, marius.WithDisk(dir, marius.Partitions(16), marius.Capacity(4)))
			case "DGL/PyG-sim":
				opts = append(opts, marius.WithBaseline())
			}
			sess, err := marius.New(marius.NodeClassification(), g, opts...)
			if err != nil {
				return nil, err
			}
			epoch, metric, io, err := runSession(sess, epochs)
			if err != nil {
				return nil, err
			}
			inst, c := cost(system, epoch, ds)
			rows = append(rows, EndToEndRow{
				System: system, Dataset: ds, Model: "GS",
				Epoch: epoch, Metric: metric, Instance: inst, Cost: c, IOBytes: io,
			})
		}
	}
	return rows, nil
}

// Table4 reproduces the link-prediction end-to-end comparison (GraphSage).
func Table4(sc Scale, epochs int) ([]EndToEndRow, error) {
	return lpEndToEnd(sc, epochs, []string{"FB", "Wiki"}, marius.GraphSage, "GS")
}

// Table5 compares GraphSage and GAT on the Freebase-like graph.
func Table5(sc Scale, epochs int) ([]EndToEndRow, error) {
	gs, err := lpEndToEnd(sc, epochs, []string{"FB"}, marius.GraphSage, "GS")
	if err != nil {
		return nil, err
	}
	gat, err := lpEndToEnd(sc, epochs, []string{"FB"}, marius.GAT, "GAT")
	if err != nil {
		return nil, err
	}
	return append(gs, gat...), nil
}

func lpEndToEnd(sc Scale, epochs int, datasets []string, model marius.ModelKind, modelName string) ([]EndToEndRow, error) {
	var rows []EndToEndRow
	for _, ds := range datasets {
		for _, system := range []string{"M-GNN Mem", "M-GNN Disk", "DGL/PyG-sim"} {
			g := lpDataset(ds, sc, 200)
			opts := []marius.Option{
				marius.WithModel(model), marius.WithFanouts(10),
				marius.WithDim(32), marius.WithBatchSize(1024),
				marius.WithNegatives(256), marius.WithSeed(200),
			}
			switch system {
			case "M-GNN Disk":
				dir := tempDir("t4")
				defer os.RemoveAll(dir)
				opts = append(opts, marius.WithDisk(dir,
					marius.Partitions(8), marius.Capacity(4), marius.LogicalPartitions(4)))
			case "DGL/PyG-sim":
				// DGL trains with 5x fewer negatives to avoid OOM (§7.1);
				// keep negatives equal here so MRR is comparable and let
				// runtime reflect execution strategy only.
				opts = append(opts, marius.WithBaseline())
			}
			sess, err := marius.New(marius.LinkPrediction(), g, opts...)
			if err != nil {
				return nil, err
			}
			epoch, metric, io, err := runSession(sess, epochs)
			if err != nil {
				return nil, err
			}
			inst, c := cost(system, epoch, ds)
			rows = append(rows, EndToEndRow{
				System: system, Dataset: ds, Model: modelName,
				Epoch: epoch, Metric: metric, Instance: inst, Cost: c, IOBytes: io,
			})
		}
	}
	return rows, nil
}

// Table1Row is one dataset's memory overheads.
type Table1Row struct {
	Name                    string
	Nodes, Edges            int64
	FeatDim                 int
	EdgeGB, FeatGB, TotalGB float64
}

// Table1 recomputes the paper's Table 1 from the published graph sizes.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, g := range costmodel.Table1 {
		eb, fb, tb := g.Overheads()
		rows = append(rows, Table1Row{
			Name: g.Name, Nodes: g.Nodes, Edges: g.Edges, FeatDim: g.FeatDim,
			EdgeGB: float64(eb) / 1e9, FeatGB: float64(fb) / 1e9, TotalGB: float64(tb) / 1e9,
		})
	}
	return rows
}
