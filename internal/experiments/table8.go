package experiments

import (
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// Table8Row compares COMET and BETA disk-based training for one
// model/dataset combination, with in-memory MRR as the reference
// (paper Table 8).
type Table8Row struct {
	Model   string
	Dataset string

	MemMRR     float64
	CometMRR   float64
	BetaMRR    float64
	CometEpoch time.Duration
	BetaEpoch  time.Duration
}

// Table8 runs the COMET-vs-BETA comparison for DistMult, GraphSage and
// GAT on the FB15k-237-like graph plus DistMult/GraphSage on the larger
// Freebase- and Wiki-like graphs (the full paper grid, scaled).
func Table8(sc Scale, epochs int) ([]Table8Row, error) {
	type combo struct {
		model   core.ModelKind
		mName   string
		dataset string
	}
	combos := []combo{
		{core.DistMultOnly, "DM", "237"},
		{core.DistMultOnly, "DM", "FB"},
		{core.DistMultOnly, "DM", "Wiki"},
		{core.GraphSage, "GS", "237"},
		{core.GraphSage, "GS", "FB"},
		{core.GraphSage, "GS", "Wiki"},
		{core.GAT, "GAT", "237"},
		{core.GAT, "GAT", "FB"},
	}
	const p, c, l = 16, 4, 8 // buffer holds 1/4 of partitions, as in §7.5
	var rows []Table8Row
	for _, cb := range combos {
		row := Table8Row{Model: cb.mName, Dataset: cb.dataset}

		// In-memory reference.
		memMRR, _, err := runTable8(cb.model, cb.dataset, sc, epochs, core.InMemory, nil, 0, 0, 0)
		if err != nil {
			return nil, err
		}
		row.MemMRR = memMRR

		cometMRR, cometEpoch, err := runTable8(cb.model, cb.dataset, sc, epochs, core.OnDisk,
			policy.Comet{P: p, L: l, C: c}, p, c, l)
		if err != nil {
			return nil, err
		}
		row.CometMRR, row.CometEpoch = cometMRR, cometEpoch

		betaMRR, betaEpoch, err := runTable8(cb.model, cb.dataset, sc, epochs, core.OnDisk,
			policy.Beta{P: p, C: c}, p, c, l)
		if err != nil {
			return nil, err
		}
		row.BetaMRR, row.BetaEpoch = betaMRR, betaEpoch

		rows = append(rows, row)
	}
	return rows, nil
}

func runTable8(model core.ModelKind, dataset string, sc Scale, epochs int, st core.StorageMode, pol policy.Policy, p, c, l int) (float64, time.Duration, error) {
	g := lpDataset(dataset, sc, 800)
	cfg := core.Config{
		Storage: st, Model: model,
		Layers: 1, Fanouts: []int{10}, Dim: 32,
		BatchSize: 1024, Negatives: 256, Seed: 800,
	}
	if st == core.OnDisk {
		cfg.Dir = tempDir("t8")
		defer os.RemoveAll(cfg.Dir)
		cfg.Partitions, cfg.BufferCapacity, cfg.LogicalPartitions = p, c, l
	}
	sys, err := core.NewLinkPrediction(g, cfg)
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()
	if pol != nil {
		sys.SetPolicy(pol)
	}
	var total time.Duration
	for e := 0; e < epochs; e++ {
		stt, err := sys.TrainEpoch()
		if err != nil {
			return 0, 0, err
		}
		total += stt.Duration
	}
	mrr, err := sys.EvaluateValid()
	if err != nil {
		return 0, 0, err
	}
	return mrr, total / time.Duration(epochs), nil
}
