package experiments

import (
	"os"
	"time"

	"repro/internal/policy"
	"repro/marius"
)

// Table8Row compares COMET and BETA disk-based training for one
// model/dataset combination, with in-memory MRR as the reference
// (paper Table 8).
type Table8Row struct {
	Model   string
	Dataset string

	MemMRR     float64
	CometMRR   float64
	BetaMRR    float64
	CometEpoch time.Duration
	BetaEpoch  time.Duration
}

// Table8 runs the COMET-vs-BETA comparison for DistMult, GraphSage and
// GAT on the FB15k-237-like graph plus DistMult/GraphSage on the larger
// Freebase- and Wiki-like graphs (the full paper grid, scaled).
func Table8(sc Scale, epochs int) ([]Table8Row, error) {
	type combo struct {
		model   marius.ModelKind
		mName   string
		dataset string
	}
	combos := []combo{
		{marius.DistMultOnly, "DM", "237"},
		{marius.DistMultOnly, "DM", "FB"},
		{marius.DistMultOnly, "DM", "Wiki"},
		{marius.GraphSage, "GS", "237"},
		{marius.GraphSage, "GS", "FB"},
		{marius.GraphSage, "GS", "Wiki"},
		{marius.GAT, "GAT", "237"},
		{marius.GAT, "GAT", "FB"},
	}
	const p, c, l = 16, 4, 8 // buffer holds 1/4 of partitions, as in §7.5
	var rows []Table8Row
	for _, cb := range combos {
		row := Table8Row{Model: cb.mName, Dataset: cb.dataset}

		// In-memory reference.
		memMRR, _, err := runTable8(cb.model, cb.dataset, sc, epochs, marius.InMemory, nil, 0, 0, 0)
		if err != nil {
			return nil, err
		}
		row.MemMRR = memMRR

		cometMRR, cometEpoch, err := runTable8(cb.model, cb.dataset, sc, epochs, marius.OnDisk,
			policy.Comet{P: p, L: l, C: c}, p, c, l)
		if err != nil {
			return nil, err
		}
		row.CometMRR, row.CometEpoch = cometMRR, cometEpoch

		betaMRR, betaEpoch, err := runTable8(cb.model, cb.dataset, sc, epochs, marius.OnDisk,
			policy.Beta{P: p, C: c}, p, c, l)
		if err != nil {
			return nil, err
		}
		row.BetaMRR, row.BetaEpoch = betaMRR, betaEpoch

		rows = append(rows, row)
	}
	return rows, nil
}

func runTable8(model marius.ModelKind, dataset string, sc Scale, epochs int, st marius.StorageMode, pol policy.Policy, p, c, l int) (float64, time.Duration, error) {
	g := lpDataset(dataset, sc, 800)
	opts := []marius.Option{
		marius.WithModel(model), marius.WithFanouts(10), marius.WithDim(32),
		marius.WithBatchSize(1024), marius.WithNegatives(256), marius.WithSeed(800),
	}
	if st == marius.OnDisk {
		dir := tempDir("t8")
		defer os.RemoveAll(dir)
		opts = append(opts, marius.WithDisk(dir,
			marius.Partitions(p), marius.Capacity(c), marius.LogicalPartitions(l)))
	}
	if pol != nil {
		opts = append(opts, marius.WithPolicyImpl(pol))
	}
	sess, err := marius.New(marius.LinkPrediction(), g, opts...)
	if err != nil {
		return 0, 0, err
	}
	epoch, mrr, _, err := runSession(sess, epochs)
	if err != nil {
		return 0, 0, err
	}
	return mrr, epoch, nil
}
