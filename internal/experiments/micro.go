package experiments

import (
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Table6Row is one GNN depth's sampling/compute comparison between DENSE
// and the per-layer re-sampling baseline (paper Table 6).
type Table6Row struct {
	Layers int

	DenseSample    time.Duration
	BaselineSample time.Duration

	DenseCompute    time.Duration
	BaselineCompute time.Duration

	DenseNodes, DenseEdges       int64
	BaselineNodes, BaselineEdges int64
}

// Table6 measures per-mini-batch CPU sampling time, compute time, and
// sampled nodes/edges for GraphSage of depth 1..maxLayers on a
// Papers100M-shaped graph, requesting 10 incoming + 10 outgoing neighbors
// per node per layer as in §7.4.
func Table6(sc Scale, maxLayers, batch, trials int) ([]Table6Row, error) {
	g := ncDataset("Papers", sc, 300)
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	rng := rand.New(rand.NewSource(300))

	var rows []Table6Row
	for k := 1; k <= maxLayers; k++ {
		fanouts := make([]int, k)
		for i := range fanouts {
			fanouts[i] = 10
		}
		row := Table6Row{Layers: k}

		ps := nn.NewParamSet()
		dims := []int{g.FeatureDim()}
		for i := 0; i < k; i++ {
			dims = append(dims, 32)
		}
		enc := gnn.BuildSage(ps, dims, gnn.Mean, rng)

		dsmp := sampler.New(adj, fanouts, graph.Both, 300)
		lsmp := sampler.NewLayered(adj, fanouts, graph.Both, 300)

		for trial := 0; trial < trials; trial++ {
			targets := uniqueNodes(rng, g.NumNodes, batch)

			t0 := time.Now()
			d := dsmp.Sample(targets)
			row.DenseSample += time.Since(t0)
			row.DenseNodes += int64(d.NumNodes())
			row.DenseEdges += int64(d.NumSampledEdges())

			t0 = time.Now()
			ls := lsmp.Sample(targets)
			row.BaselineSample += time.Since(t0)
			row.BaselineNodes += int64(ls.NumNodesSampled())
			row.BaselineEdges += int64(ls.NumEdgesSampled())

			// Compute with dense segment kernels over DENSE.
			h0d := gatherFeatures(g.Features, d.NodeIDs)
			t0 = time.Now()
			tp := tensor.NewTape()
			params := ps.Bind(tp)
			out := enc.Forward(tp, params, d, tp.Leaf(h0d, false))
			loss := tp.MeanAll(out)
			tp.Backward(loss)
			row.DenseCompute += time.Since(t0)

			// Compute with per-edge COO kernels over the layered sample.
			h0b := gatherFeatures(g.Features, ls.Blocks[0].SrcNodes)
			t0 = time.Now()
			tp2 := tensor.NewTape()
			params2 := ps.Bind(tp2)
			out2 := gnn.BaselineForward(tp2, params2, enc, ls, tp2.Leaf(h0b, false))
			loss2 := tp2.MeanAll(out2)
			tp2.Backward(loss2)
			row.BaselineCompute += time.Since(t0)
		}
		d := time.Duration(trials)
		row.DenseSample /= d
		row.BaselineSample /= d
		row.DenseCompute /= d
		row.BaselineCompute /= d
		row.DenseNodes /= int64(trials)
		row.DenseEdges /= int64(trials)
		row.BaselineNodes /= int64(trials)
		row.BaselineEdges /= int64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

func gatherFeatures(feats *tensor.Tensor, ids []int32) *tensor.Tensor {
	out := tensor.New(len(ids), feats.Cols)
	for i, id := range ids {
		copy(out.Row(i), feats.Row(int(id)))
	}
	return out
}

func uniqueNodes(rng *rand.Rand, n, k int) []int32 {
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		v := int32(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Table7Row compares DENSE sampling against the NextDoor-style
// independent k-hop sampler on a LiveJournal-like graph (paper Table 7).
type Table7Row struct {
	Layers       int
	DenseTime    time.Duration
	KHopTime     time.Duration
	KHopOOM      bool
	DenseEntries int64
	KHopEntries  int64
}

// Table7 measures sampling-only time for depths 1..maxLayers with fanout
// 20 outgoing neighbors, and a device-memory entry budget standing in for
// the V100's 16 GB (NextDoor OOMs at depth 5 in the paper).
func Table7(numNodes, outDeg, maxLayers, batch, budget int) ([]Table7Row, error) {
	g := gen.PowerLaw(numNodes, outDeg, 400)
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	rng := rand.New(rand.NewSource(400))

	var rows []Table7Row
	for k := 1; k <= maxLayers; k++ {
		fanouts := make([]int, k)
		for i := range fanouts {
			fanouts[i] = 20
		}
		row := Table7Row{Layers: k}
		const trials = 5
		dsmp := sampler.New(adj, fanouts, graph.Outgoing, 400)
		ksmp := sampler.NewKHop(adj, fanouts, graph.Outgoing, budget, 400)
		for trial := 0; trial < trials; trial++ {
			targets := uniqueNodes(rng, g.NumNodes, batch)

			t0 := time.Now()
			d := dsmp.Sample(targets)
			row.DenseTime += time.Since(t0)
			row.DenseEntries += int64(d.NumNodes())

			t0 = time.Now()
			ks, err := ksmp.Sample(targets)
			row.KHopTime += time.Since(t0)
			if err == sampler.ErrBudget {
				row.KHopOOM = true
			} else if err != nil {
				return nil, err
			} else {
				row.KHopEntries += int64(ks.TotalEntries())
			}
		}
		row.DenseTime /= trials
		row.KHopTime /= trials
		row.DenseEntries /= trials
		if !row.KHopOOM {
			row.KHopEntries /= trials
		}
		rows = append(rows, row)
	}
	return rows, nil
}
