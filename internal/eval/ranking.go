package eval

import (
	"sort"

	"repro/internal/decoder"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// This file implements the filtered-ranking link-prediction protocol
// (paper §7: filtered MRR and Hits@k on FB15k-237/Freebase86m). Every
// held-out edge (s, r, d) is ranked twice — d against all candidate
// tails of (s, r, ?), s against all candidate heads of (?, r, d) — with
// known true triples removed from the candidate set ("filtered"). The
// evaluator streams: queries are folded into vectors once per batch and
// candidates are scored in ascending contiguous chunks through the fused
// GatherMatMulTB kernel, so the full B×N score matrix never
// materializes. Because each fused output element is a single zero-seeded
// ascending dot product (plus an elementwise norm completion for TransE),
// ranks are bitwise identical at every worker count, chunk size and batch
// size, and match the brute-force reference exactly.
//
// Rank rule (deterministic ties): rank = 1 + #{c ≠ target, c ∉ known :
// s_c > s_t, or s_c == s_t and c < target}. Ties break by ascending
// entity ID, so reruns and differently-parallel runs agree bit for bit.

// Filter indexes the known true triples to exclude from ranking: the
// training edges (through a relation-carrying Adjacency) plus any
// held-out splits (validation and test edges, per the standard filtered
// protocol).
type Filter struct {
	adj   *graph.Adjacency
	tails map[int64][]int32 // (src, rel) -> extra known tails
	heads map[int64][]int32 // (dst, rel) -> extra known heads
}

func pairKey(a, rel int32) int64 { return int64(a)<<32 | int64(uint32(rel)) }

// NewFilter builds a filter over the training adjacency and any number of
// additional edge sets (validation/test splits).
func NewFilter(adj *graph.Adjacency, extra ...[]graph.Edge) *Filter {
	f := &Filter{adj: adj, tails: map[int64][]int32{}, heads: map[int64][]int32{}}
	for _, edges := range extra {
		for _, e := range edges {
			tk := pairKey(e.Src, e.Rel)
			f.tails[tk] = append(f.tails[tk], e.Dst)
			hk := pairKey(e.Dst, e.Rel)
			f.heads[hk] = append(f.heads[hk], e.Src)
		}
	}
	return f
}

// KnownTails appends to buf the known tails of (src, rel) — sorted
// ascending, duplicates kept (harmless for membership scans) — and
// returns the result.
func (f *Filter) KnownTails(buf []int32, src, rel int32) []int32 {
	if f == nil {
		return buf[:0]
	}
	buf = buf[:0]
	if f.adj != nil {
		nbrs, rels := f.adj.OutNeighbors(src), f.adj.OutRels(src)
		for i, d := range nbrs {
			if rels[i] == rel {
				buf = append(buf, d)
			}
		}
	}
	buf = append(buf, f.tails[pairKey(src, rel)]...)
	sortInt32(buf)
	return buf
}

// KnownHeads appends to buf the known heads of (rel, dst), sorted
// ascending.
func (f *Filter) KnownHeads(buf []int32, dst, rel int32) []int32 {
	if f == nil {
		return buf[:0]
	}
	buf = buf[:0]
	if f.adj != nil {
		nbrs, rels := f.adj.InNeighbors(dst), f.adj.InRels(dst)
		for i, s := range nbrs {
			if rels[i] == rel {
				buf = append(buf, s)
			}
		}
	}
	buf = append(buf, f.heads[pairKey(dst, rel)]...)
	sortInt32(buf)
	return buf
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// RankingConfig configures a streamed ranking evaluation.
type RankingConfig struct {
	// Dec is the decoder; Rel its relation table value ([numRels x dim]).
	Dec decoder.Decoder
	Rel *tensor.Tensor
	// Table holds the encoded entity representations ([numNodes x dim]):
	// the embedding table for decoder-only models, or the precomputed
	// encoder outputs for GNN models.
	Table *tensor.Tensor
	// Ks lists the Hits@k cutoffs (default 1, 10).
	Ks []int
	// Filter removes known true triples from the candidate set; nil ranks
	// raw (unfiltered).
	Filter *Filter
	// BatchSize is the number of held-out edges folded per fused launch
	// (default 64; each edge contributes a tail and a head query).
	BatchSize int
	// Chunk is the candidate-chunk width (default 2048): the score matrix
	// materializes at most [2·BatchSize x Chunk] at a time.
	Chunk int
	// Workers is the kernel fan-out (results are identical at any value).
	Workers int
}

// RankingResult aggregates a ranking evaluation.
type RankingResult struct {
	MRR  float64
	Hits map[int]float64
	// Ranked counts ranked queries: 2 per evaluated edge (tail + head).
	Ranked int
}

// Ranking runs the filtered (or raw) both-sides ranking protocol over the
// held-out edges. Results are bitwise independent of Workers, BatchSize
// and Chunk.
func Ranking(cfg RankingConfig, edges []graph.Edge) RankingResult {
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{1, 10}
	}
	res := RankingResult{Hits: make(map[int]float64, len(ks))}
	if len(edges) == 0 || cfg.Table.Rows == 0 {
		return res
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 2048
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	c := tensor.NewCompute(workers, nil)

	dim := cfg.Dec.Dim()
	n := cfg.Table.Rows
	var tn []float32
	if cfg.Dec.Norms() {
		tn = decoder.TableNorms(cfg.Table)
	}

	idx := make([]int32, chunk)
	known := make([][]int32, 2*batch)

	// Per-query ranks, indexed canonically (edge j's tail rank at 2j,
	// head rank at 2j+1) and aggregated once at the end, so MRR/Hits are
	// bitwise independent of batch grouping as well as worker count and
	// chunk size.
	allRanks := make([]int64, 2*len(edges))

	for base := 0; base < len(edges); base += batch {
		b := min(batch, len(edges)-base)
		// Fold each edge into its tail query (row i) and head query
		// (row b+i), record targets and per-query known-candidate lists.
		q := tensor.New(2*b, dim)
		targets := make([]int32, 2*b)
		ranks := make([]int64, 2*b)
		var qn []float32
		if cfg.Dec.Norms() {
			qn = make([]float32, 2*b)
		}
		for i := 0; i < b; i++ {
			e := edges[base+i]
			relRow := cfg.Rel.Row(int(e.Rel))
			cfg.Dec.TailQueryInto(q.Row(i), cfg.Table.Row(int(e.Src)), relRow)
			cfg.Dec.HeadQueryInto(q.Row(b+i), cfg.Table.Row(int(e.Dst)), relRow)
			targets[i], targets[b+i] = e.Dst, e.Src
			known[i] = cfg.Filter.KnownTails(known[i], e.Src, e.Rel)
			known[b+i] = cfg.Filter.KnownHeads(known[b+i], e.Dst, e.Rel)
			if cfg.Dec.Norms() {
				qn[i] = decoder.SqNorm(q.Row(i))
				qn[b+i] = decoder.SqNorm(q.Row(b + i))
			}
			ranks[i], ranks[b+i] = 1, 1
		}

		// Target scores, computed by the same scalar dot the fused kernel
		// uses per element.
		ts := make([]float32, 2*b)
		for i := 0; i < 2*b; i++ {
			t := int(targets[i])
			var qni, cni float32
			if cfg.Dec.Norms() {
				qni, cni = qn[i], tn[t]
			}
			ts[i] = decoder.ScoreOne(cfg.Dec, q.Row(i), cfg.Table.Row(t), qni, cni)
		}

		// Stream candidate chunks in ascending ID order; each query's
		// sorted known list merges against the ascending scan.
		knownPos := make([]int, 2*b)
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			ids := idx[:hi-lo]
			for j := range ids {
				ids[j] = int32(lo + j)
			}
			s := c.GatherMatMulTB(q, cfg.Table, ids)
			decoder.FinishScores(cfg.Dec, s, qn, tn, ids)
			for i := 0; i < 2*b; i++ {
				target, kn := targets[i], known[i]
				kp := knownPos[i]
				row, t := s.Row(i), ts[i]
				for j, sc := range row {
					cand := int32(lo + j)
					for kp < len(kn) && kn[kp] < cand {
						kp++
					}
					if cand == target {
						continue
					}
					if kp < len(kn) && kn[kp] == cand {
						continue // known true triple: filtered out
					}
					if sc > t || (sc == t && cand < target) {
						ranks[i]++
					}
				}
				knownPos[i] = kp
			}
		}

		for i := 0; i < b; i++ {
			allRanks[2*(base+i)] = ranks[i]
			allRanks[2*(base+i)+1] = ranks[b+i]
		}
		res.Ranked += 2 * b
	}

	var sumRR float64
	hitCounts := make(map[int]int64, len(ks))
	for _, r := range allRanks {
		sumRR += 1 / float64(r)
		for _, k := range ks {
			if r <= int64(k) {
				hitCounts[k]++
			}
		}
	}
	res.MRR = sumRR / float64(res.Ranked)
	for _, k := range ks {
		res.Hits[k] = float64(hitCounts[k]) / float64(res.Ranked)
	}
	return res
}
