package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/tensor"
)

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 3, []float32{
		5, 1, 1, // -> 0
		0, 2, 1, // -> 1
		0, 0, 9, // -> 2
	})
	if got := Accuracy(logits, []int32{0, 1, 2}); got != 1 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := Accuracy(logits, []int32{0, 0, 0}); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestMeanAccumulator(t *testing.T) {
	var m MeanAccumulator
	if m.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	m.Add(1, 1)
	m.Add(0, 3)
	if math.Abs(m.Mean()-0.25) > 1e-12 {
		t.Fatalf("mean = %v", m.Mean())
	}
}

// biasFor computes B for a policy on a uniform random graph.
func biasFor(t *testing.T, pol policy.Policy, p, numNodes, numEdges int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, numEdges)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(numNodes)), Dst: int32(rng.Intn(numNodes))}
	}
	pt := partition.New(numNodes, p)
	buckets := pt.Buckets(edges)
	plan := pol.NewEpochPlan(rng)
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	return EdgePermutationBias(plan, buckets)
}

func TestBiasBounds(t *testing.T) {
	b := biasFor(t, policy.Beta{P: 12, C: 4}, 12, 4000, 40000, 1)
	if b < 0 || b > 1 {
		t.Fatalf("bias %v out of [0,1]", b)
	}
}

func TestBiasBetaExceedsComet(t *testing.T) {
	// The paper's core observation (§5.1, Fig. 6): the greedy eager policy
	// produces a more correlated example order than COMET.
	var betaSum, cometSum float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		betaSum += biasFor(t, policy.Beta{P: 16, C: 4}, 16, 4000, 40000, s)
		cometSum += biasFor(t, policy.Comet{P: 16, L: 8, C: 4}, 16, 4000, 40000, s)
	}
	if cometSum >= betaSum {
		t.Fatalf("COMET bias %.4f should be below BETA bias %.4f", cometSum/trials, betaSum/trials)
	}
}

func TestBiasSingleVisitIsZero(t *testing.T) {
	// With the whole graph in one visit, every node finishes at once: the
	// only measurement point has all tallies = 1, so B = 0.
	b := biasFor(t, policy.InMemory{P: 4}, 4, 500, 5000, 2)
	if b != 0 {
		t.Fatalf("in-memory bias = %v, want 0", b)
	}
}

func TestBiasMoreLogicalPartitionsIncreasesBias(t *testing.T) {
	// Paper Fig. 6b: B grows with l (fewer partitions per transfer group
	// means finer, more correlated visits).
	low := biasFor(t, policy.Comet{P: 32, L: 8, C: 8}, 32, 6000, 60000, 3)
	high := biasFor(t, policy.Comet{P: 32, L: 32, C: 8}, 32, 6000, 60000, 3)
	if low >= high {
		t.Fatalf("bias l=8 (%.4f) should be below bias l=32 (%.4f)", low, high)
	}
}
