// Package eval provides model quality metrics (classification accuracy,
// MRR aggregation) and the Edge Permutation Bias proxy metric of paper §6,
// which quantifies how correlated a policy's training-example order is.
package eval

import (
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/tensor"
)

// Accuracy returns the fraction of rows in logits whose argmax equals the
// corresponding label.
func Accuracy(logits *tensor.Tensor, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// MeanAccumulator accumulates a weighted running mean (for aggregating
// per-batch MRR or accuracy into an epoch metric).
type MeanAccumulator struct {
	sum    float64
	weight float64
}

// Add accumulates value with the given weight (e.g., batch size).
func (m *MeanAccumulator) Add(value float64, weight float64) {
	m.sum += value * weight
	m.weight += weight
}

// Mean returns the weighted mean, or 0 if nothing was added.
func (m *MeanAccumulator) Mean() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.sum / m.weight
}

// EdgePermutationBias computes the bias metric B of paper §6 for a plan
// over the given bucketed edges (indexed by BucketID as in partition).
//
// Per the paper, a cumulative tally t_v counts the processed fraction of
// edges containing node v, normalized so t_v = 1 at epoch end, and after
// each X_i the spread d_i = max(t_v1 − t_v2) is taken; B = max_i d_i.
// The paper "assumes a uniform degree distribution", i.e. every node's
// edges are spread over its partition's buckets like the average node's,
// so tallies are computed at partition granularity: all nodes of a
// partition share the processed fraction of the edges incident to that
// partition. (An exact per-node tally saturates at 1 whenever any
// degree-1 node's single edge lands in the first or last visit, which is
// why the proxy uses the uniform-degree assumption.) High B means some
// nodes had nearly all their edges processed before others had any — the
// correlated ordering that harms accuracy (paper Fig. 6a).
func EdgePermutationBias(pl *policy.Plan, buckets [][]graph.Edge) float64 {
	p := pl.NumPartitions
	totals := make([]int64, p)
	for b, bucket := range buckets {
		i, j := b/p, b%p
		totals[i] += int64(len(bucket))
		totals[j] += int64(len(bucket))
	}
	tally := make([]int64, p)
	bias := 0.0
	for _, v := range pl.Visits {
		for _, b := range v.Buckets {
			n := int64(len(buckets[int(b[0])*p+int(b[1])]))
			tally[b[0]] += n
			tally[b[1]] += n
		}
		minT, maxT := 1.0, 0.0
		for q := 0; q < p; q++ {
			if totals[q] == 0 {
				continue
			}
			t := float64(tally[q]) / float64(totals[q])
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
		if d := maxT - minT; d > bias {
			bias = d
		}
	}
	return bias
}
