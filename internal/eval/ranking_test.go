package eval

import (
	"math/rand"
	"testing"

	"repro/internal/decoder"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// bruteRank ranks one side of one edge by scoring every candidate
// individually and applying the rank rule with a hash-set filter — no
// chunking, no sorted-merge, no fused kernel batching. ScoreOne performs
// the same float32 operations as one fused-kernel element, so ranks (and
// hence MRR/Hits) must match the streamed evaluator exactly.
func bruteRank(d decoder.Decoder, rel, table *tensor.Tensor, e graph.Edge, tail bool, known map[int32]bool) int64 {
	q := make([]float32, d.Dim())
	var target int32
	if tail {
		d.TailQueryInto(q, table.Row(int(e.Src)), rel.Row(int(e.Rel)))
		target = e.Dst
	} else {
		d.HeadQueryInto(q, table.Row(int(e.Dst)), rel.Row(int(e.Rel)))
		target = e.Src
	}
	var qn float32
	if d.Norms() {
		qn = decoder.SqNorm(q)
	}
	score := func(cand int32) float32 {
		row := table.Row(int(cand))
		var cn float32
		if d.Norms() {
			cn = decoder.SqNorm(row)
		}
		return decoder.ScoreOne(d, q, row, qn, cn)
	}
	ts := score(target)
	rank := int64(1)
	for cand := int32(0); cand < int32(table.Rows); cand++ {
		if cand == target || known[cand] {
			continue
		}
		if s := score(cand); s > ts || (s == ts && cand < target) {
			rank++
		}
	}
	return rank
}

// bruteRanking is the full brute-force protocol over a held-out split.
func bruteRanking(d decoder.Decoder, rel, table *tensor.Tensor, evalEdges []graph.Edge, filterSets [][]graph.Edge, ks []int) RankingResult {
	tails := map[int64]map[int32]bool{}
	heads := map[int64]map[int32]bool{}
	for _, set := range filterSets {
		for _, e := range set {
			tk, hk := pairKey(e.Src, e.Rel), pairKey(e.Dst, e.Rel)
			if tails[tk] == nil {
				tails[tk] = map[int32]bool{}
			}
			tails[tk][e.Dst] = true
			if heads[hk] == nil {
				heads[hk] = map[int32]bool{}
			}
			heads[hk][e.Src] = true
		}
	}
	res := RankingResult{Hits: map[int]float64{}}
	var sumRR float64
	hits := map[int]int64{}
	for _, e := range evalEdges {
		for _, tail := range []bool{true, false} {
			var known map[int32]bool
			if filterSets != nil {
				if tail {
					known = tails[pairKey(e.Src, e.Rel)]
				} else {
					known = heads[pairKey(e.Dst, e.Rel)]
				}
			}
			r := bruteRank(d, rel, table, e, tail, known)
			sumRR += 1 / float64(r)
			for _, k := range ks {
				if r <= int64(k) {
					hits[k]++
				}
			}
			res.Ranked++
		}
	}
	res.MRR = sumRR / float64(res.Ranked)
	for _, k := range ks {
		res.Hits[k] = float64(hits[k]) / float64(res.Ranked)
	}
	return res
}

func randEdges(rng *rand.Rand, n, rels, count int) []graph.Edge {
	edges := make([]graph.Edge, count)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(rels)), Dst: int32(rng.Intn(n)),
		}
	}
	return edges
}

// TestRankingMatchesBruteForce is the protocol differential: the streamed
// chunked evaluator must produce exactly the brute-force MRR and Hits@k —
// filtered and raw, for every decoder, at every worker count, batch size
// and chunk width (including chunks that straddle the entity count).
func TestRankingMatchesBruteForce(t *testing.T) {
	const (
		n       = 47
		numRels = 4
		dim     = 8
	)
	rng := rand.New(rand.NewSource(42))
	table := tensor.New(n, dim)
	table.RandNormal(rng, 1)
	train := randEdges(rng, n, numRels, 200)
	valid := randEdges(rng, n, numRels, 30)
	test := randEdges(rng, n, numRels, 25)
	adj := graph.BuildAdjacency(n, train)
	ks := []int{1, 3, 10}

	for _, kind := range []string{decoder.KindDistMult, decoder.KindComplEx, decoder.KindTransE} {
		ps := nn.NewParamSet()
		d, err := decoder.New(kind, ps, numRels, dim, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		rel := d.RelParam().Value

		for _, filtered := range []bool{false, true} {
			var filter *Filter
			var filterSets [][]graph.Edge
			if filtered {
				filter = NewFilter(adj, valid, test)
				filterSets = [][]graph.Edge{train, valid, test}
			}
			want := bruteRanking(d, rel, table, test, filterSets, ks)

			for _, workers := range []int{1, 2, 4} {
				for _, batch := range []int{1, 7, 64} {
					for _, chunk := range []int{13, 47, 512} {
						got := Ranking(RankingConfig{
							Dec: d, Rel: rel, Table: table, Ks: ks,
							Filter: filter, BatchSize: batch, Chunk: chunk, Workers: workers,
						}, test)
						if got.Ranked != want.Ranked {
							t.Fatalf("%s filtered=%v: ranked %d != %d", kind, filtered, got.Ranked, want.Ranked)
						}
						if got.MRR != want.MRR {
							t.Fatalf("%s filtered=%v w=%d b=%d c=%d: MRR %v != brute %v",
								kind, filtered, workers, batch, chunk, got.MRR, want.MRR)
						}
						for _, k := range ks {
							if got.Hits[k] != want.Hits[k] {
								t.Fatalf("%s filtered=%v w=%d b=%d c=%d: Hits@%d %v != brute %v",
									kind, filtered, workers, batch, chunk, k, got.Hits[k], want.Hits[k])
							}
						}
					}
				}
			}
		}
	}
}

// TestRankingDeterministicTies forces score ties with duplicate entity
// rows and pins the tie rule: equal-scoring candidates with a smaller ID
// than the target outrank it; larger IDs do not.
func TestRankingDeterministicTies(t *testing.T) {
	// Entities 0..3 identical, so every candidate ties with the target.
	table := tensor.FromSlice(4, 2, []float32{
		1, 2,
		1, 2,
		1, 2,
		1, 2,
	})
	ps := nn.NewParamSet()
	d := decoder.NewDistMult(ps, 1, 2, rand.New(rand.NewSource(1)))
	edges := []graph.Edge{{Src: 0, Rel: 0, Dst: 2}}

	got := Ranking(RankingConfig{Dec: d, Rel: d.Rel.Value, Table: table}, edges)
	// Tail target 2: ties at 0, 1, 3 — IDs 0 and 1 outrank it: rank 3.
	// Head target 0: ties at 1, 2, 3 — no smaller IDs: rank 1.
	wantMRR := (1.0/3 + 1.0) / 2
	if got.MRR != wantMRR {
		t.Fatalf("tie MRR = %v, want %v", got.MRR, wantMRR)
	}
}

// TestFilterExcludesKnownTriples checks the filter changes a rank only by
// removing known positives, never the target itself.
func TestFilterExcludesKnownTriples(t *testing.T) {
	// Entity 3 scores highest but is a known tail of (0, r0); filtered
	// ranking of target 1 must ignore it.
	table := tensor.FromSlice(4, 2, []float32{
		1, 0, // 0
		2, 0, // 1: target
		1, 0, // 2
		9, 0, // 3: known positive, best raw score
	})
	train := []graph.Edge{{Src: 0, Rel: 0, Dst: 3}}
	adj := graph.BuildAdjacency(4, train)
	ps := nn.NewParamSet()
	d := decoder.NewDistMult(ps, 1, 2, rand.New(rand.NewSource(1)))
	d.Rel.Value.Data[0], d.Rel.Value.Data[1] = 1, 1

	edges := []graph.Edge{{Src: 0, Rel: 0, Dst: 1}}
	raw := Ranking(RankingConfig{Dec: d, Rel: d.Rel.Value, Table: table}, edges)
	filt := Ranking(RankingConfig{Dec: d, Rel: d.Rel.Value, Table: table, Filter: NewFilter(adj)}, edges)

	// Tail side: raw rank 2 (entity 3 outranks), filtered rank 1.
	// Head side: target 0 ties with 2 at score 2 (src enc scores:
	// q=dst∘rel=[2,0] -> cand scores 2,4,2,18); raw rank: cand1=4>2 ->
	// +1, cand3=18 -> +1 => 3; filtered removes nothing on the head side
	// (only (0,r0,3) is known, heads of (r0, 1) is empty... cand 3 not a
	// known head) so both are 3.
	if raw.MRR >= filt.MRR {
		t.Fatalf("filtered MRR %v not better than raw %v", filt.MRR, raw.MRR)
	}
	wantRaw := (1/float64(2) + 1/float64(3)) / 2
	wantFilt := (1/float64(1) + 1/float64(3)) / 2
	if raw.MRR != wantRaw || filt.MRR != wantFilt {
		t.Fatalf("raw %v (want %v), filtered %v (want %v)", raw.MRR, wantRaw, filt.MRR, wantFilt)
	}
}
