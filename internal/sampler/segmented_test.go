package sampler

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// segFixture builds a random graph plus a Segmented view over mem (via
// the storage fragment cache) and the equivalent from-scratch Adjacency
// over the same resident buckets in the same read order.
func segFixture(t *testing.T, seed int64, n, p int, nEdges int, mem []int) (*graph.Segmented, *graph.Adjacency) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := randomEdges(rng, n, nEdges)
	pt := partition.New(n, p)
	es := storage.NewMemoryEdgeStore(pt, edges)
	fc := storage.NewFragCache(es, pt, p*p)
	seg, err := graph.NewSegmented(fc).Swap(mem)
	if err != nil {
		t.Fatal(err)
	}
	var resident []graph.Edge
	for _, i := range mem {
		for _, j := range mem {
			resident, err = es.ReadBucket(i, j, resident)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return seg, graph.BuildAdjacency(n, resident)
}

// TestSamplerSegmentedDifferential: DENSE sampling over the incremental
// index must be byte-identical to sampling over the from-scratch index
// for the same seed — the property that keeps trajectories and
// checkpoints unchanged when the trainer swaps index implementations.
func TestSamplerSegmentedDifferential(t *testing.T) {
	seg, adj := segFixture(t, 21, 600, 6, 8000, []int{0, 2, 3, 5})
	rng := rand.New(rand.NewSource(22))
	segSmp := New(seg, []int{4, 3}, graph.Both, 0)
	adjSmp := New(adj, []int{4, 3}, graph.Both, 0)
	for trial := 0; trial < 50; trial++ {
		var targets []int32
		for _, v := range uniqueTargets(rng, 600, 12) {
			if seg.OutDegree(v)+seg.InDegree(v) > 0 || trial%2 == 0 {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			continue
		}
		seed := rng.Int63()
		segSmp.Reseed(seed)
		adjSmp.Reseed(seed)
		dSeg := segSmp.Sample(targets)
		dAdj := adjSmp.Sample(targets)
		if err := dSeg.Validate(); err != nil {
			t.Fatal(err)
		}
		assertDENSEEqual(t, dSeg, dAdj)
	}
}

func assertDENSEEqual(t *testing.T, a, b *DENSE) {
	t.Helper()
	eq := func(name string, x, y []int32) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s length %d != %d", name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s[%d] = %d != %d", name, i, x[i], y[i])
			}
		}
	}
	eq("NodeIDs", a.NodeIDs, b.NodeIDs)
	eq("NodeIDOffsets", a.NodeIDOffsets, b.NodeIDOffsets)
	eq("NbrOffsets", a.NbrOffsets, b.NbrOffsets)
	eq("Nbrs", a.Nbrs, b.Nbrs)
	eq("ReprMap", a.ReprMap, b.ReprMap)
}

// TestSampleRecycleZeroAlloc: a warmed sampler whose results are
// recycled must run Sample without allocating — the steady state of the
// pipelined batch-construction workers.
func TestSampleRecycleZeroAlloc(t *testing.T) {
	seg, adj := segFixture(t, 31, 800, 4, 12000, []int{0, 1, 2, 3})
	rng := rand.New(rand.NewSource(32))
	targets := uniqueTargets(rng, 800, 64)
	for _, idx := range []graph.Index{adj, seg} {
		smp := New(idx, []int{6, 4}, graph.Both, 0)
		for i := 0; i < 5; i++ { // warm workspace and recycle pool
			smp.Reseed(int64(i))
			smp.Recycle(smp.Sample(targets))
		}
		allocs := testing.AllocsPerRun(100, func() {
			smp.Reseed(7)
			d := smp.Sample(targets)
			smp.Recycle(d)
		})
		if allocs != 0 {
			t.Fatalf("steady-state Sample over %T allocates %.1f/op, want 0", idx, allocs)
		}
	}
}

// TestSampleRecycledResultsAreIndependent: reusing a recycled DENSE must
// reproduce exactly the sample a fresh DENSE would hold, including after
// AdvanceLayer mutated the previous occupant's offsets in place.
func TestSampleRecycledResultsAreIndependent(t *testing.T) {
	_, adj := segFixture(t, 41, 400, 4, 6000, []int{0, 1, 2, 3})
	rng := rand.New(rand.NewSource(42))
	targets := uniqueTargets(rng, 400, 32)

	fresh := New(adj, []int{5, 5}, graph.Both, 0)
	pooled := New(adj, []int{5, 5}, graph.Both, 0)
	for round := 0; round < 10; round++ {
		seed := rng.Int63()
		fresh.Reseed(seed)
		pooled.Reseed(seed)
		want := fresh.Sample(targets) // never recycled: always fresh arrays
		got := pooled.Sample(targets)
		assertDENSEEqual(t, got, want)
		// Consume got the way the GNN forward pass does before recycling.
		for got.NumDeltas() > 2 {
			got.AdvanceLayer()
		}
		pooled.Recycle(got)
	}
}
