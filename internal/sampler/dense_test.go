package sampler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// paperGraph builds the six-node example of paper Figures 1 and 3, where
// the two-hop incoming neighborhood of targets {A, B} uses samples
// C,D ← A and the reuse of A's one-hop sample across both layers.
// Nodes: A=0 B=1 C=2 D=3 E=4 F=5. Edges point src→dst; sampling follows
// incoming edges (aggregation gathers from in-neighbors).
func paperGraph() *graph.Adjacency {
	edges := []graph.Edge{
		{Src: 2, Dst: 0}, // C → A
		{Src: 3, Dst: 0}, // D → A
		{Src: 0, Dst: 1}, // A → B
		{Src: 1, Dst: 0}, // B → A  (extra cycle keeps reuse interesting)
		{Src: 4, Dst: 2}, // E → C
		{Src: 2, Dst: 3}, // C → D
		{Src: 5, Dst: 4}, // F → E
	}
	return graph.BuildAdjacency(6, edges)
}

func TestDENSEPaperExample(t *testing.T) {
	adj := paperGraph()
	s := New(adj, []int{10, 10}, graph.Incoming, 1)
	d := s.Sample([]int32{0, 1})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Δ2 (targets) must be {A, B} in order.
	if got := d.Targets(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("targets = %v", got)
	}
	if d.NumDeltas() != 3 {
		t.Fatalf("deltas = %d, want 3", d.NumDeltas())
	}
	// Every neighbor must resolve through ReprMap to itself.
	for i, nbr := range d.Nbrs {
		if d.NodeIDs[d.ReprMap[i]] != nbr {
			t.Fatalf("ReprMap broken at %d", i)
		}
	}
	// One-hop reuse: node A appears in Δ2; its in-neighbors {C, D, B}
	// should be sampled exactly once even though A's representation is
	// needed in both layers.
	countA := 0
	offs := d.NbrOffsets
	withNbrs := d.NodeIDs[d.OutputStart():]
	for i, v := range withNbrs {
		if v == 0 {
			countA++
			end := len(d.Nbrs)
			if i+1 < len(offs) {
				end = int(offs[i+1])
			}
			if got := end - int(offs[i]); got != 3 {
				t.Fatalf("A has %d sampled in-neighbors, want 3", got)
			}
		}
	}
	if countA != 1 {
		t.Fatalf("node A appears %d times in neighbor-bearing groups, want 1 (sample reuse)", countA)
	}
}

func TestDENSEInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		edges := make([]graph.Edge, rng.Intn(1000)+50)
		for i := range edges {
			edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		adj := graph.BuildAdjacency(n, edges)
		layers := rng.Intn(3) + 1
		fanouts := make([]int, layers)
		for i := range fanouts {
			fanouts[i] = rng.Intn(5) + 1
		}
		s := New(adj, fanouts, graph.Both, seed)
		targets := uniqueTargets(rng, n, rng.Intn(20)+1)
		d := s.Sample(targets)
		if d.Validate() != nil {
			return false
		}
		// Fanout cap: each node's neighbor segment holds at most
		// 2*max(fanouts) entries (both directions).
		maxF := 0
		for _, f := range fanouts {
			if f > maxF {
				maxF = f
			}
		}
		for i := range d.NbrOffsets {
			end := len(d.Nbrs)
			if i+1 < len(d.NbrOffsets) {
				end = int(d.NbrOffsets[i+1])
			}
			if end-int(d.NbrOffsets[i]) > 2*maxF {
				return false
			}
		}
		// Advancing through all layers must keep the structure valid and
		// finish with the targets as the only remaining group.
		for l := 0; l < layers-1; l++ {
			d.AdvanceLayer()
			if d.Validate() != nil {
				return false
			}
		}
		last := d.Targets()
		if len(last) != len(targets) {
			return false
		}
		for i := range last {
			if last[i] != targets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func uniqueTargets(rng *rand.Rand, n, k int) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for len(out) < k && len(out) < n {
		v := int32(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func TestDENSEDeltasAreDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj := graph.BuildAdjacency(100, randomEdges(rng, 100, 500))
	s := New(adj, []int{3, 3, 3}, graph.Both, 7)
	d := s.Sample(uniqueTargets(rng, 100, 8))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every sampled neighbor must already be somewhere in NodeIDs — that
	// is the definition of the delta encoding.
	inIDs := map[int32]bool{}
	for _, v := range d.NodeIDs {
		inIDs[v] = true
	}
	for _, u := range d.Nbrs {
		if !inIDs[u] {
			t.Fatalf("neighbor %d missing from NodeIDs", u)
		}
	}
}

func randomEdges(rng *rand.Rand, n, m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return edges
}

func TestDENSESamplesFewerThanLayered(t *testing.T) {
	// The headline Table 6 property: with deep GNNs, DENSE samples fewer
	// node entries than per-layer re-sampling on the same graph.
	rng := rand.New(rand.NewSource(9))
	adj := graph.BuildAdjacency(2000, randomEdges(rng, 2000, 30000))
	fanouts := []int{10, 10, 10}
	targets := uniqueTargets(rng, 2000, 64)

	d := New(adj, fanouts, graph.Both, 1).Sample(targets)
	ls := NewLayered(adj, fanouts, graph.Both, 1).Sample(targets)

	if d.NumNodes() >= ls.NumNodesSampled() {
		t.Fatalf("DENSE sampled %d node entries, layered %d; DENSE should be smaller",
			d.NumNodes(), ls.NumNodesSampled())
	}
	if d.NumSampledEdges() >= ls.NumEdgesSampled() {
		t.Fatalf("DENSE sampled %d edges, layered %d; DENSE should be smaller",
			d.NumSampledEdges(), ls.NumEdgesSampled())
	}
}

func TestLayeredSampleStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj := graph.BuildAdjacency(300, randomEdges(rng, 300, 2000))
	targets := uniqueTargets(rng, 300, 10)
	ls := NewLayered(adj, []int{4, 4}, graph.Both, 3).Sample(targets)
	if len(ls.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(ls.Blocks))
	}
	// Final block's DstNodes are the targets.
	last := ls.Blocks[len(ls.Blocks)-1]
	for i, v := range targets {
		if last.DstNodes[i] != v {
			t.Fatal("targets not preserved")
		}
	}
	for bi, b := range ls.Blocks {
		// SrcNodes start with DstNodes (self rows first).
		for i := range b.DstNodes {
			if b.SrcNodes[i] != b.DstNodes[i] {
				t.Fatalf("block %d: SrcNodes must begin with DstNodes", bi)
			}
		}
		for e := range b.EdgeSrc {
			if int(b.EdgeSrc[e]) >= len(b.SrcNodes) || int(b.EdgeDst[e]) >= len(b.DstNodes) {
				t.Fatalf("block %d: edge index out of range", bi)
			}
		}
		// Chained blocks: this block's SrcNodes are the next-inner block's
		// DstNodes.
		if bi > 0 {
			inner := ls.Blocks[bi-1]
			if len(inner.DstNodes) != len(b.SrcNodes) {
				t.Fatalf("block chain broken at %d", bi)
			}
		}
	}
}

func TestKHopBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	adj := graph.BuildAdjacency(500, randomEdges(rng, 500, 20000))
	targets := uniqueTargets(rng, 500, 32)

	unlimited := NewKHop(adj, []int{10, 10, 10}, graph.Outgoing, 0, 1)
	ks, err := unlimited.Sample(targets)
	if err != nil {
		t.Fatal(err)
	}
	if ks.TotalEntries() <= len(targets) {
		t.Fatal("k-hop sample did not expand")
	}

	limited := NewKHop(adj, []int{10, 10, 10}, graph.Outgoing, len(targets)+1, 1)
	if _, err := limited.Sample(targets); err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestNegativeSampler(t *testing.T) {
	g := NewNegativeGlobal(50, 1)
	ids := g.Sample(nil, 200)
	if len(ids) != 200 {
		t.Fatal("wrong count")
	}
	for _, v := range ids {
		if v < 0 || v >= 50 {
			t.Fatalf("id %d out of range", v)
		}
	}
	pool := []int32{3, 7, 11}
	p := NewNegativePool(pool, 2)
	for _, v := range p.Sample(nil, 100) {
		if v != 3 && v != 7 && v != 11 {
			t.Fatalf("id %d not in pool", v)
		}
	}
}
