package sampler

import "math/rand"

// NegativeSampler draws negative example nodes for link prediction
// training and evaluation. Following Marius/MariusGNN, negatives for a
// batch are a shared set of uniformly-sampled node IDs reused across every
// positive edge in the batch, which keeps the decoder computation dense.
//
// For disk-based training the candidate pool is restricted to the nodes of
// the partitions currently in memory (paper §3: "neighborhood sampling is
// performed only over graph nodes and edges in main memory"); the same
// restriction applies to negatives.
type NegativeSampler struct {
	rng *rand.Rand

	// candidates, when non-nil, restricts sampling to this ID pool;
	// otherwise IDs are drawn from [0, numNodes).
	candidates []int32
	numNodes   int32
}

// NewNegativeGlobal samples negatives uniformly from [0, numNodes).
func NewNegativeGlobal(numNodes int, seed int64) *NegativeSampler {
	return &NegativeSampler{rng: rand.New(rand.NewSource(seed)), numNodes: int32(numNodes)}
}

// NewNegativePool samples negatives uniformly from the given candidate
// pool (e.g., the in-memory nodes during disk-based training).
func NewNegativePool(candidates []int32, seed int64) *NegativeSampler {
	return &NegativeSampler{rng: rand.New(rand.NewSource(seed)), candidates: candidates}
}

// SetPool replaces the candidate pool (used after partition swaps).
func (ns *NegativeSampler) SetPool(candidates []int32) { ns.candidates = candidates }

// Reseed re-seeds the sampler's RNG in place (per-batch determinism, as
// Sampler.Reseed).
func (ns *NegativeSampler) Reseed(seed int64) { ns.rng.Seed(seed) }

// Sample appends n negative node IDs to dst and returns the extended slice.
func (ns *NegativeSampler) Sample(dst []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		if ns.candidates != nil {
			dst = append(dst, ns.candidates[ns.rng.Intn(len(ns.candidates))])
		} else {
			dst = append(dst, ns.rng.Int31n(ns.numNodes))
		}
	}
	return dst
}
