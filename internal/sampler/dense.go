// Package sampler implements multi-hop neighborhood sampling.
//
// Its centerpiece is DENSE (Delta Encoding of Neighborhood SamplEs), the
// data structure from MariusGNN §4: one-hop neighbors are sampled once per
// node and reused across GNN layers, and the resulting flat arrays let the
// forward pass run on dense gather/segment kernels. The package also
// provides the per-layer re-sampling baseline used by DGL/PyG (paper
// Fig. 1) and an independent k-hop sampler standing in for NextDoor's
// accelerated kernels (paper Table 7).
package sampler

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/graph"
)

// DENSE is the delta encoding of a k-hop neighborhood sample (paper Fig. 3).
//
// NodeIDs lays out the deltas in order [Δ0, Δ1, …, Δk]; NodeIDOffsets[d] is
// the start of Δd (k+2 entries, with a trailing sentinel = len(NodeIDs)).
// Nbrs stores the sampled one-hop neighbors for every node in [Δ1 … Δk],
// grouped per node; NbrOffsets[i] is the start of the neighbor list of the
// i-th node of NodeIDs[NodeIDOffsets[1]:]. ReprMap maps every entry of
// Nbrs to its row in NodeIDs (and therefore in the batch representation
// matrix H), added per §4.2.
type DENSE struct {
	NodeIDOffsets []int32
	NodeIDs       []int32
	NbrOffsets    []int32
	Nbrs          []int32
	ReprMap       []int32

	// Layers is k, the number of sampled hops.
	Layers int
	// layer tracks how many AdvanceLayer calls have been applied.
	layer int

	// buf retains the full-capacity backing arrays across reuse:
	// AdvanceLayer re-slices and shifts the public slices in place, so a
	// recycled DENSE restores them from buf and refills without
	// allocating (see Sampler.Recycle).
	buf denseBuf
}

// denseBuf is the private backing storage of a pooled DENSE.
type denseBuf struct {
	nodeIDOffsets, nodeIDs, nbrOffsets, nbrs, reprMap []int32
}

// NumNodes returns the current number of node IDs in the structure.
func (d *DENSE) NumNodes() int { return len(d.NodeIDs) }

// NumSampledEdges returns the current number of sampled neighbor entries.
func (d *DENSE) NumSampledEdges() int { return len(d.Nbrs) }

// Delta returns the node IDs of delta group i (0 = deepest) as a view.
func (d *DENSE) Delta(i int) []int32 {
	return d.NodeIDs[d.NodeIDOffsets[i]:d.NodeIDOffsets[i+1]]
}

// NumDeltas returns the number of remaining delta groups.
func (d *DENSE) NumDeltas() int { return len(d.NodeIDOffsets) - 1 }

// Targets returns the target nodes (the last delta group, Δk).
func (d *DENSE) Targets() []int32 {
	return d.NodeIDs[d.NodeIDOffsets[len(d.NodeIDOffsets)-2]:]
}

// OutputStart returns the row index (into NodeIDs) where the current
// layer's outputs begin: everything after the first delta group has its
// representation recomputed each layer (paper §4.2 Step 1).
func (d *DENSE) OutputStart() int { return int(d.NodeIDOffsets[1]) }

// SegmentOffsets returns the neighbor segment offsets aligned with the
// layer output rows, for use with tensor segment kernels.
func (d *DENSE) SegmentOffsets() []int32 { return d.NbrOffsets }

// AdvanceLayer applies paper Algorithm 2: after computing layer i's
// outputs, the deepest delta (Δ_{i-1}) and the one-hop neighbors belonging
// to Δ_i are no longer needed and are dropped, and ReprMap/NbrOffsets are
// shifted so the same forward-pass code serves the next layer.
func (d *DENSE) AdvanceLayer() {
	if d.layer >= d.Layers-1 {
		panic("sampler: AdvanceLayer called past the final layer")
	}
	d.layer++
	delta0 := d.NodeIDOffsets[1]                      // len(Δ_{i-1})
	delta1 := d.NodeIDOffsets[2] - d.NodeIDOffsets[1] // len(Δ_i)
	nbrCut := d.NbrOffsets[delta1]                    // len(Δ_i_nbrs)

	d.Nbrs = d.Nbrs[nbrCut:]
	d.ReprMap = d.ReprMap[nbrCut:]
	for i := range d.ReprMap {
		d.ReprMap[i] -= delta0
	}
	d.NbrOffsets = d.NbrOffsets[delta1:]
	for i := range d.NbrOffsets {
		d.NbrOffsets[i] -= nbrCut
	}
	d.NodeIDs = d.NodeIDs[delta0:]
	d.NodeIDOffsets = d.NodeIDOffsets[1:]
	for i := range d.NodeIDOffsets {
		d.NodeIDOffsets[i] -= delta0
	}
}

// Validate checks the structural invariants of the encoding; it is used by
// tests and returns a descriptive error on violation.
func (d *DENSE) Validate() error {
	if len(d.NodeIDOffsets) < 2 {
		return fmt.Errorf("dense: need at least one delta group")
	}
	if d.NodeIDOffsets[0] != 0 || int(d.NodeIDOffsets[len(d.NodeIDOffsets)-1]) != len(d.NodeIDs) {
		return fmt.Errorf("dense: NodeIDOffsets must span NodeIDs")
	}
	for i := 1; i < len(d.NodeIDOffsets); i++ {
		if d.NodeIDOffsets[i] < d.NodeIDOffsets[i-1] {
			return fmt.Errorf("dense: NodeIDOffsets not monotone at %d", i)
		}
	}
	seen := make(map[int32]struct{}, len(d.NodeIDs))
	for _, v := range d.NodeIDs {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("dense: duplicate node ID %d", v)
		}
		seen[v] = struct{}{}
	}
	numWithNbrs := len(d.NodeIDs) - int(d.NodeIDOffsets[1])
	if len(d.NbrOffsets) != numWithNbrs {
		return fmt.Errorf("dense: NbrOffsets len %d != nodes with neighbors %d", len(d.NbrOffsets), numWithNbrs)
	}
	if numWithNbrs > 0 && d.NbrOffsets[0] != 0 {
		return fmt.Errorf("dense: NbrOffsets must start at 0")
	}
	for i := 1; i < len(d.NbrOffsets); i++ {
		if d.NbrOffsets[i] < d.NbrOffsets[i-1] {
			return fmt.Errorf("dense: NbrOffsets not monotone at %d", i)
		}
	}
	if len(d.ReprMap) != len(d.Nbrs) {
		return fmt.Errorf("dense: ReprMap len %d != Nbrs len %d", len(d.ReprMap), len(d.Nbrs))
	}
	for i, nbr := range d.Nbrs {
		rm := d.ReprMap[i]
		if rm < 0 || int(rm) >= len(d.NodeIDs) {
			return fmt.Errorf("dense: ReprMap[%d]=%d out of range", i, rm)
		}
		if d.NodeIDs[rm] != nbr {
			return fmt.Errorf("dense: ReprMap[%d] points to node %d, want %d", i, d.NodeIDs[rm], nbr)
		}
	}
	return nil
}

// Sampler builds DENSE structures from an adjacency index (either the
// from-scratch *graph.Adjacency or the incremental *graph.Segmented — both
// expose identical neighbor ordering through graph.Index).
//
// It keeps reusable workspaces — a per-node position/stamp table, per-hop
// frontier and neighbor arenas, and a Floyd sampling scratch — plus a
// free list of recycled DENSE results, so steady-state Sample calls
// allocate nothing once capacities are warm. A Sampler is not safe for
// concurrent Sample calls — each pipeline worker owns one — but Recycle
// may be called from another goroutine (the compute stage returns
// consumed batches there).
type Sampler struct {
	Adj     graph.Index
	Fanouts []int // per layer, ordered away from the targets: Fanouts[0] is the layer closest to the targets (hop 1)
	Dirs    graph.Directions
	rng     *rand.Rand

	pos      []int32  // node ID -> index within its delta, valid when stamp matches
	posDelta []int16  // node ID -> sampling-order delta index, valid when stamp matches
	stamp    []uint32 // generation stamp per node
	curGen   uint32

	floyd   graph.SampleScratch // Floyd sampling workspace
	scratch []int32             // one-hop neighbor scratch

	// Per-hop workspaces, in sampling order (Δk first): deltas holds the
	// k+1 frontier headers (deltas[0] aliases the caller's targets),
	// hopDeltas/hopNbrs/hopCounts own the grown buffers for hops 1..k.
	deltas     [][]int32
	hopDeltas  [][]int32
	hopNbrs    [][]int32
	hopCounts  [][]int32
	deltaStart []int32

	mu   sync.Mutex
	free []*DENSE
}

// freeCap bounds the recycled-DENSE free list; the pipeline keeps at most
// Workers+Depth batches in flight, so a small pool reaches steady state.
const freeCap = 16

// New returns a DENSE sampler over adj. fanouts[i] is the maximum number of
// neighbors per node per direction at hop i+1 from the targets.
func New(adj graph.Index, fanouts []int, dirs graph.Directions, seed int64) *Sampler {
	if len(fanouts) == 0 {
		panic("sampler: need at least one fanout")
	}
	return &Sampler{
		Adj:     adj,
		Fanouts: fanouts,
		Dirs:    dirs,
		rng:     rand.New(rand.NewSource(seed)),
		pos:     make([]int32, adj.NumNodes()),
		stamp:   make([]uint32, adj.NumNodes()),
	}
}

// Reseed re-seeds the sampler's RNG in place. The pipelined trainer
// derives one seed per mini batch and reseeds before sampling it, so a
// batch's sample is a pure function of (adjacency, targets, seed) — the
// same no matter which worker builds it or in what order.
func (s *Sampler) Reseed(seed int64) { s.rng.Seed(seed) }

// Reset swaps in a new adjacency (e.g., after a partition-buffer swap).
func (s *Sampler) Reset(adj graph.Index) {
	s.Adj = adj
	if len(s.pos) < adj.NumNodes() {
		s.pos = make([]int32, adj.NumNodes())
		s.stamp = make([]uint32, adj.NumNodes())
		s.curGen = 0
	}
}

// Recycle returns a consumed DENSE to the sampler's free list so the next
// Sample call reuses its backing arrays. The caller must not touch d (or
// any view into it) afterward. Safe to call from a different goroutine
// than Sample; recycling is optional — unrecycled results fall to GC.
func (s *Sampler) Recycle(d *DENSE) {
	if d == nil {
		return
	}
	s.mu.Lock()
	if len(s.free) < freeCap {
		s.free = append(s.free, d)
	}
	s.mu.Unlock()
}

// take pops a recycled DENSE or makes a fresh one.
func (s *Sampler) take() *DENSE {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		d := s.free[n-1]
		s.free = s.free[:n-1]
		return d
	}
	return &DENSE{}
}

// ensureInt32 returns a slice of length n reusing buf's capacity.
func ensureInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n, n+n/2+8)
	}
	return buf[:n]
}

// Sample implements paper Algorithm 1 for the given unique target node
// IDs: k rounds of one-hop sampling over the shrinking delta frontier,
// reusing previously-sampled neighbors, plus ReprMap construction. The
// result's arrays belong to the sampler's recycle pool: they are valid
// until the DENSE is passed back to Recycle.
func (s *Sampler) Sample(targets []int32) *DENSE {
	k := len(s.Fanouts)
	s.curGen++
	if s.curGen == 0 { // stamp wrapped; invalidate everything
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.curGen = 1
	}

	// deltas[0] corresponds to Δk (targets); deltas[j] to Δ_{k-j}.
	for len(s.hopDeltas) < k {
		s.hopDeltas = append(s.hopDeltas, nil)
		s.hopNbrs = append(s.hopNbrs, nil)
		s.hopCounts = append(s.hopCounts, nil)
	}
	s.deltas = append(s.deltas[:0], targets)

	if len(s.posDelta) < s.Adj.NumNodes() {
		s.posDelta = make([]int16, s.Adj.NumNodes())
	}
	for i, v := range targets {
		s.stamp[v] = s.curGen
		s.pos[v] = int32(i)
		s.posDelta[v] = 0
	}

	for hop := 0; hop < k; hop++ {
		frontier := s.deltas[hop]
		fanout := s.Fanouts[hop]
		nbrs := s.hopNbrs[hop][:0]
		counts := s.hopCounts[hop][:0]
		next := s.hopDeltas[hop][:0]
		for _, v := range frontier {
			s.scratch = s.Adj.SampleNeighbors(s.scratch[:0], v, fanout, s.Dirs, s.rng, &s.floyd)
			counts = append(counts, int32(len(s.scratch)))
			for _, u := range s.scratch {
				nbrs = append(nbrs, u)
				if s.stamp[u] != s.curGen {
					// First time this node appears anywhere in the sample:
					// it joins the next (deeper) delta (paper line 7).
					s.stamp[u] = s.curGen
					s.pos[u] = int32(len(next))
					s.posDelta[u] = int16(hop + 1)
					next = append(next, u)
				}
			}
		}
		s.hopNbrs[hop] = nbrs
		s.hopCounts[hop] = counts
		s.hopDeltas[hop] = next
		s.deltas = append(s.deltas, next)
	}

	// Finalize into a pooled DENSE: lay out NodeIDs as [Δ0, Δ1, …, Δk] =
	// reverse of sampling order, compute absolute positions, then build
	// NbrOffsets/Nbrs for [Δ1 … Δk] and ReprMap.
	d := s.take()
	numDeltas := len(s.deltas) // k+1
	s.deltaStart = ensureInt32(s.deltaStart, numDeltas)
	total := int32(0)
	// deltas[j] holds Δ_{k-j}; final order is deltas[k], deltas[k-1], …, deltas[0].
	for j := numDeltas - 1; j >= 0; j-- {
		s.deltaStart[j] = total
		total += int32(len(s.deltas[j]))
	}
	nodeIDs := ensureInt32(d.buf.nodeIDs, int(total))
	nodeIDOffsets := ensureInt32(d.buf.nodeIDOffsets, numDeltas+1)
	for j := numDeltas - 1; j >= 0; j-- {
		copy(nodeIDs[s.deltaStart[j]:], s.deltas[j])
	}
	for g := 0; g < numDeltas; g++ {
		// Group g in final order is deltas[numDeltas-1-g].
		nodeIDOffsets[g] = s.deltaStart[numDeltas-1-g]
	}
	nodeIDOffsets[numDeltas] = total

	// Neighbor groups in final order: Δ1's nbrs first … Δk's last, i.e.
	// sampling order reversed (hopNbrs[k-1] first).
	var totalNbrs int
	for hop := 0; hop < k; hop++ {
		totalNbrs += len(s.hopNbrs[hop])
	}
	nbrs := ensureInt32(d.buf.nbrs, totalNbrs)[:0]
	nbrOffsets := ensureInt32(d.buf.nbrOffsets, int(total)-len(s.deltas[numDeltas-1]))[:0]
	for j := k - 1; j >= 0; j-- {
		running := int32(len(nbrs))
		for _, c := range s.hopCounts[j] {
			nbrOffsets = append(nbrOffsets, running)
			running += c
		}
		nbrs = append(nbrs, s.hopNbrs[j]...)
	}
	reprMap := ensureInt32(d.buf.reprMap, len(nbrs))
	for i, u := range nbrs {
		reprMap[i] = s.deltaStart[int(s.posDelta[u])] + s.pos[u]
	}

	d.buf = denseBuf{
		nodeIDOffsets: nodeIDOffsets, nodeIDs: nodeIDs,
		nbrOffsets: nbrOffsets, nbrs: nbrs, reprMap: reprMap,
	}
	d.NodeIDOffsets = nodeIDOffsets
	d.NodeIDs = nodeIDs
	d.NbrOffsets = nbrOffsets
	d.Nbrs = nbrs
	d.ReprMap = reprMap
	d.Layers = k
	d.layer = 0
	return d
}
