package sampler

import (
	"math/rand"

	"repro/internal/graph"
)

// Block is one GNN layer's bipartite sampling block in the baseline
// (DGL/PyG-style) representation: a COO edge list between the layer input
// nodes (SrcNodes) and output nodes (DstNodes). Following the DGL
// convention, SrcNodes begins with a copy of DstNodes so that self
// representations are the first len(DstNodes) input rows.
type Block struct {
	SrcNodes []int32
	DstNodes []int32
	// EdgeSrc/EdgeDst index into SrcNodes/DstNodes respectively.
	EdgeSrc []int32
	EdgeDst []int32
}

// LayeredSample is a per-layer re-sampled k-hop neighborhood as built by
// DGL and PyG (paper Fig. 1): when a node appears in several layers, its
// one-hop neighbors are re-sampled for each layer.
type LayeredSample struct {
	// Blocks[0] feeds GNN layer 1 (deepest aggregation); Blocks[k-1] feeds
	// the final layer whose DstNodes are the targets.
	Blocks []Block
}

// NumNodesSampled returns the total node entries across all layers
// (counting re-appearances, as baseline systems must materialize them).
func (ls *LayeredSample) NumNodesSampled() int {
	n := 0
	for i := range ls.Blocks {
		n += len(ls.Blocks[i].SrcNodes)
	}
	if k := len(ls.Blocks); k > 0 {
		n += len(ls.Blocks[k-1].DstNodes)
	}
	return n
}

// NumEdgesSampled returns the total sampled edges across all layers.
func (ls *LayeredSample) NumEdgesSampled() int {
	n := 0
	for i := range ls.Blocks {
		n += len(ls.Blocks[i].EdgeSrc)
	}
	return n
}

// LayeredSampler reproduces the multi-hop sampling semantics of DGL/PyG:
// within one layer each unique node is sampled once, but nodes re-sample
// their neighbors in every layer they appear in.
type LayeredSampler struct {
	Adj     graph.Index
	Fanouts []int // ordered away from the targets, as in Sampler
	Dirs    graph.Directions
	rng     *rand.Rand
	floyd   graph.SampleScratch
}

// NewLayered returns a baseline sampler over adj.
func NewLayered(adj graph.Index, fanouts []int, dirs graph.Directions, seed int64) *LayeredSampler {
	return &LayeredSampler{Adj: adj, Fanouts: fanouts, Dirs: dirs, rng: rand.New(rand.NewSource(seed))}
}

// Reseed re-seeds the sampler's RNG in place (per-batch determinism, as
// Sampler.Reseed).
func (s *LayeredSampler) Reseed(seed int64) { s.rng.Seed(seed) }

// Sample builds the layered blocks for the given unique targets.
func (s *LayeredSampler) Sample(targets []int32) *LayeredSample {
	k := len(s.Fanouts)
	blocks := make([]Block, k)
	dst := targets
	for hop := 0; hop < k; hop++ {
		fanout := s.Fanouts[hop]
		// SrcNodes = DstNodes ++ newly sampled unique neighbors.
		src := make([]int32, len(dst), len(dst)*(fanout+1))
		copy(src, dst)
		index := make(map[int32]int32, len(dst)*2)
		for i, v := range dst {
			index[v] = int32(i)
		}
		var edgeSrc, edgeDst []int32
		scratch := make([]int32, 0, 2*fanout)
		for di, v := range dst {
			scratch = s.Adj.SampleNeighbors(scratch[:0], v, fanout, s.Dirs, s.rng, &s.floyd)
			for _, u := range scratch {
				si, ok := index[u]
				if !ok {
					si = int32(len(src))
					index[u] = si
					src = append(src, u)
				}
				edgeSrc = append(edgeSrc, si)
				edgeDst = append(edgeDst, int32(di))
			}
		}
		// Blocks are filled from the target side inward; block for GNN
		// layer (k-hop) sits at index k-1-hop.
		blocks[k-1-hop] = Block{SrcNodes: src, DstNodes: dst, EdgeSrc: edgeSrc, EdgeDst: edgeDst}
		dst = src
	}
	return &LayeredSample{Blocks: blocks}
}

// KHopSampler stands in for NextDoor's accelerated independent k-hop
// sampling kernels (paper Table 7): each target expands a sample tree with
// no reuse or deduplication at all. Per-entry cost is minimal (flat array
// appends, no hashing) — matching NextDoor's advantage at shallow depth —
// but the sample size grows exponentially with depth, matching its
// disadvantage at four and five layers.
type KHopSampler struct {
	Adj     graph.Index
	Fanouts []int
	Dirs    graph.Directions
	rng     *rand.Rand
	floyd   graph.SampleScratch

	// Budget caps the total number of sampled entries, standing in for
	// accelerator memory; Sample returns ErrBudget when exceeded.
	Budget int
}

// ErrBudget is returned by KHopSampler.Sample when the sample exceeds the
// configured memory budget (the paper reports OOM for NextDoor at depth 5).
var ErrBudget = errBudget{}

type errBudget struct{}

func (errBudget) Error() string { return "sampler: k-hop sample exceeds device memory budget" }

// NewKHop returns an independent k-hop sampler with the given entry budget
// (0 means unlimited).
func NewKHop(adj graph.Index, fanouts []int, dirs graph.Directions, budget int, seed int64) *KHopSampler {
	return &KHopSampler{Adj: adj, Fanouts: fanouts, Dirs: dirs, Budget: budget, rng: rand.New(rand.NewSource(seed))}
}

// KHopSample holds the flat per-hop expansion frontier sizes and entries.
type KHopSample struct {
	// Frontiers[h] is the flat list of node instances at hop h (with
	// duplicates, as NextDoor materializes them).
	Frontiers [][]int32
}

// TotalEntries returns the total sampled node instances.
func (ks *KHopSample) TotalEntries() int {
	n := 0
	for _, f := range ks.Frontiers {
		n += len(f)
	}
	return n
}

// Sample expands targets hop by hop with no reuse.
func (s *KHopSampler) Sample(targets []int32) (*KHopSample, error) {
	frontiers := make([][]int32, 0, len(s.Fanouts)+1)
	cur := targets
	frontiers = append(frontiers, cur)
	total := len(cur)
	for hop := 0; hop < len(s.Fanouts); hop++ {
		fanout := s.Fanouts[hop]
		next := make([]int32, 0, len(cur)*fanout)
		for _, v := range cur {
			next = s.Adj.SampleNeighbors(next, v, fanout, s.Dirs, s.rng, &s.floyd)
		}
		total += len(next)
		if s.Budget > 0 && total > s.Budget {
			return nil, ErrBudget
		}
		frontiers = append(frontiers, next)
		cur = next
	}
	return &KHopSample{Frontiers: frontiers}, nil
}
