package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestPartitioningRanges(t *testing.T) {
	pt := New(10, 3) // partSize 4: [0,4) [4,8) [8,10)
	if pt.PartSize != 4 {
		t.Fatalf("partSize = %d", pt.PartSize)
	}
	cases := []struct{ v, p int32 }{{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {9, 2}}
	for _, c := range cases {
		if got := pt.Of(c.v); got != int(c.p) {
			t.Fatalf("Of(%d) = %d, want %d", c.v, got, c.p)
		}
	}
	if s, e := pt.Range(2); s != 8 || e != 10 {
		t.Fatalf("Range(2) = [%d,%d)", s, e)
	}
	if pt.Rows(2) != 2 {
		t.Fatal("Rows wrong")
	}
}

func TestPartitioningCoversAllNodes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1000) + 1
		p := rng.Intn(16) + 1
		if p > n {
			p = n
		}
		pt := New(n, p)
		total := 0
		for i := 0; i < p; i++ {
			total += pt.Rows(i)
		}
		if total != n {
			return false
		}
		for v := 0; v < n; v++ {
			pi := pt.Of(int32(v))
			if pi < 0 || pi >= p {
				return false
			}
			s, e := pt.Range(pi)
			if int32(v) < s || int32(v) >= e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketsPartitionEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pt := New(100, 4)
	edges := make([]graph.Edge, 300)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(100)), Dst: int32(rng.Intn(100))}
	}
	buckets := pt.Buckets(edges)
	total := 0
	for b, bucket := range buckets {
		i, j := b/4, b%4
		for _, e := range bucket {
			if pt.Of(e.Src) != i || pt.Of(e.Dst) != j {
				t.Fatalf("edge %+v in wrong bucket (%d,%d)", e, i, j)
			}
		}
		total += len(bucket)
	}
	if total != len(edges) {
		t.Fatalf("buckets hold %d edges, want %d", total, len(edges))
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	order := RandomOrder(500, 3)
	seen := make([]bool, 500)
	for _, v := range order {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestTrainFirstOrderPlacesTrainingNodesFirst(t *testing.T) {
	train := []int32{42, 7, 99, 13}
	order := TrainFirstOrder(200, train, 5)
	for i, v := range train {
		if order[v] != int32(i) {
			t.Fatalf("train node %d mapped to %d, want %d", v, order[v], i)
		}
	}
	seen := make([]bool, 200)
	for _, v := range order {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestApplyRelabelsEverything(t *testing.T) {
	feats := tensor.New(4, 2)
	for v := 0; v < 4; v++ {
		feats.Set(v, 0, float32(v))
	}
	g := &graph.Graph{
		NumNodes: 4, NumRels: 1,
		Edges:      []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}},
		ValidEdges: []graph.Edge{{Src: 1, Dst: 2}},
		Features:   feats,
		Labels:     []int32{10, 11, 12, 13},
		TrainNodes: []int32{0, 2},
	}
	// Reverse relabeling: v -> 3-v.
	Apply(g, []int32{3, 2, 1, 0})
	if g.Edges[0].Src != 3 || g.Edges[0].Dst != 2 {
		t.Fatalf("edges not relabeled: %+v", g.Edges[0])
	}
	if g.ValidEdges[0].Src != 2 || g.ValidEdges[0].Dst != 1 {
		t.Fatal("valid edges not relabeled")
	}
	if g.TrainNodes[0] != 3 || g.TrainNodes[1] != 1 {
		t.Fatal("train nodes not relabeled")
	}
	if g.Labels[3] != 10 || g.Labels[0] != 13 {
		t.Fatalf("labels not relabeled: %v", g.Labels)
	}
	if g.Features.At(3, 0) != 0 || g.Features.At(0, 0) != 3 {
		t.Fatal("features not relabeled")
	}
}

func TestGroupLogicalBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lg := GroupLogical(12, 4, rng)
	if len(lg.Groups) != 4 {
		t.Fatalf("groups = %d", len(lg.Groups))
	}
	seen := make([]bool, 12)
	for li, group := range lg.Groups {
		if len(group) != 3 {
			t.Fatalf("group %d has %d members", li, len(group))
		}
		for _, p := range group {
			if seen[p] {
				t.Fatal("partition in two groups")
			}
			seen[p] = true
			if lg.Of[p] != li {
				t.Fatal("Of inconsistent with Groups")
			}
		}
	}
	phys := lg.PhysicalSet([]int{0, 2})
	if len(phys) != 6 {
		t.Fatalf("PhysicalSet = %v", phys)
	}
	for i := 1; i < len(phys); i++ {
		if phys[i] < phys[i-1] {
			t.Fatal("PhysicalSet not sorted")
		}
	}
}
