// Package partition implements the two-level graph partitioning scheme of
// MariusGNN §3 and §5.1: node base representations are split into p
// contiguous *physical* partitions; the edge list is organized into p²
// *edge buckets* — bucket (i,j) holds every edge with source in partition i
// and destination in partition j; and each epoch the physical partitions
// are randomly grouped into l *logical* partitions, the unit of transfer
// between disk and CPU memory under COMET.
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Partitioning describes a split of [0, NumNodes) node IDs into
// NumPartitions contiguous ranges. Node IDs are remapped before training
// so that contiguity encodes the partition assignment (as in Marius).
type Partitioning struct {
	NumNodes      int
	NumPartitions int
	PartSize      int // nodes per partition; the last partition may be smaller
}

// New returns a partitioning of numNodes into p contiguous partitions.
func New(numNodes, p int) Partitioning {
	if p <= 0 || numNodes <= 0 {
		panic(fmt.Sprintf("partition: invalid partitioning %d nodes / %d parts", numNodes, p))
	}
	return Partitioning{NumNodes: numNodes, NumPartitions: p, PartSize: (numNodes + p - 1) / p}
}

// Of returns the partition containing node v.
func (pt Partitioning) Of(v int32) int { return int(v) / pt.PartSize }

// Range returns the [start, end) node ID range of partition i. Trailing
// partitions may be empty when p does not divide NumNodes evenly (e.g.,
// 261 nodes in 32 partitions of 9 leave the last three partitions empty).
func (pt Partitioning) Range(i int) (int32, int32) {
	start := i * pt.PartSize
	if start > pt.NumNodes {
		start = pt.NumNodes
	}
	end := start + pt.PartSize
	if end > pt.NumNodes {
		end = pt.NumNodes
	}
	return int32(start), int32(end)
}

// Rows returns the number of nodes in partition i.
func (pt Partitioning) Rows(i int) int {
	s, e := pt.Range(i)
	return int(e - s)
}

// Bucket returns the edge-bucket coordinates of e.
func (pt Partitioning) Bucket(e graph.Edge) (int, int) {
	return pt.Of(e.Src), pt.Of(e.Dst)
}

// BucketID flattens bucket coordinates to a single index i*p + j.
func (pt Partitioning) BucketID(i, j int) int { return i*pt.NumPartitions + j }

// Buckets groups edges into the p² edge buckets; the result is indexed by
// BucketID. Bucket contents preserve input edge order.
func (pt Partitioning) Buckets(edges []graph.Edge) [][]graph.Edge {
	p := pt.NumPartitions
	counts := make([]int, p*p)
	for _, e := range edges {
		i, j := pt.Bucket(e)
		counts[pt.BucketID(i, j)]++
	}
	buckets := make([][]graph.Edge, p*p)
	for b, c := range counts {
		if c > 0 {
			buckets[b] = make([]graph.Edge, 0, c)
		}
	}
	for _, e := range edges {
		i, j := pt.Bucket(e)
		b := pt.BucketID(i, j)
		buckets[b] = append(buckets[b], e)
	}
	return buckets
}

// RandomOrder returns a node relabeling (newID[old]) that assigns nodes to
// partitions uniformly at random, the default layout for link prediction.
func RandomOrder(numNodes int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(numNodes)
	newID := make([]int32, numNodes)
	for old, nw := range perm {
		newID[old] = int32(nw)
	}
	return newID
}

// TrainFirstOrder returns a relabeling that places the training nodes
// first (so they occupy the first ⌈|train|/partSize⌉ partitions and can be
// statically cached in CPU memory, paper §5.2), followed by all remaining
// nodes in random order.
func TrainFirstOrder(numNodes int, trainNodes []int32, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	newID := make([]int32, numNodes)
	for i := range newID {
		newID[i] = -1
	}
	next := int32(0)
	for _, v := range trainNodes {
		newID[v] = next
		next++
	}
	rest := make([]int32, 0, numNodes-len(trainNodes))
	for v := 0; v < numNodes; v++ {
		if newID[v] < 0 {
			rest = append(rest, int32(v))
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for _, v := range rest {
		newID[v] = next
		next++
	}
	return newID
}

// Apply relabels every node reference in g according to newID, reordering
// features and labels to match. It mutates g in place.
func Apply(g *graph.Graph, newID []int32) {
	if len(newID) != g.NumNodes {
		panic(fmt.Sprintf("partition: relabeling of %d nodes for graph with %d", len(newID), g.NumNodes))
	}
	remapEdges := func(edges []graph.Edge) {
		for i := range edges {
			edges[i].Src = newID[edges[i].Src]
			edges[i].Dst = newID[edges[i].Dst]
		}
	}
	remapEdges(g.Edges)
	remapEdges(g.ValidEdges)
	remapEdges(g.TestEdges)
	remapIDs := func(ids []int32) {
		for i := range ids {
			ids[i] = newID[ids[i]]
		}
	}
	remapIDs(g.TrainNodes)
	remapIDs(g.ValidNodes)
	remapIDs(g.TestNodes)
	if g.Labels != nil {
		labels := make([]int32, len(g.Labels))
		for old, lab := range g.Labels {
			labels[newID[old]] = lab
		}
		g.Labels = labels
	}
	if g.Features != nil {
		feats := tensor.New(g.Features.Rows, g.Features.Cols)
		for old := 0; old < g.Features.Rows; old++ {
			copy(feats.Row(int(newID[old])), g.Features.Row(old))
		}
		g.Features = feats
	}
}

// LogicalGrouping assigns physical partitions to logical partitions.
type LogicalGrouping struct {
	// Groups[l] lists the physical partition IDs of logical partition l.
	Groups [][]int
	// Of maps a physical partition to its logical partition.
	Of []int
}

// GroupLogical randomly groups p physical partitions into l balanced
// logical partitions (paper §5.1: regrouped at the start of every epoch,
// with no data movement). p need not divide l evenly; group sizes differ
// by at most one.
func GroupLogical(p, l int, rng *rand.Rand) LogicalGrouping {
	if l <= 0 || l > p {
		panic(fmt.Sprintf("partition: cannot group %d physical into %d logical partitions", p, l))
	}
	perm := rng.Perm(p)
	g := LogicalGrouping{Groups: make([][]int, l), Of: make([]int, p)}
	for i, phys := range perm {
		lg := i % l
		g.Groups[lg] = append(g.Groups[lg], phys)
		g.Of[phys] = lg
	}
	return g
}

// PhysicalSet expands a set of logical partition IDs to the sorted union
// of their physical partitions.
func (lg LogicalGrouping) PhysicalSet(logical []int) []int {
	var out []int
	for _, l := range logical {
		out = append(out, lg.Groups[l]...)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
