package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ParamState is the serializable snapshot of one parameter: its value plus
// the optimizer moments accumulated so far, so training resumed from a
// checkpoint continues with identical optimizer dynamics.
type ParamState struct {
	Name       string
	Rows, Cols int
	Value      []float32
	M, V       []float32 // first/second moments; nil when never allocated
	Step       int
}

// State snapshots every parameter in registration order. The returned
// slices are copies and stay valid across further training.
func (ps *ParamSet) State() []ParamState {
	out := make([]ParamState, 0, len(ps.params))
	for _, p := range ps.params {
		st := ParamState{
			Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols,
			Value: append([]float32(nil), p.Value.Data...),
			Step:  p.step,
		}
		if p.m != nil {
			st.M = append([]float32(nil), p.m.Data...)
		}
		if p.v != nil {
			st.V = append([]float32(nil), p.v.Data...)
		}
		out = append(out, st)
	}
	return out
}

// LoadState restores a snapshot produced by State into the set's
// registered parameters. Every snapshot entry must match a registered
// parameter in name and shape (the model architecture must be rebuilt
// identically before restoring).
func (ps *ParamSet) LoadState(states []ParamState) error {
	if len(states) != len(ps.params) {
		return fmt.Errorf("nn: snapshot has %d parameters, model has %d", len(states), len(ps.params))
	}
	for _, st := range states {
		p := ps.byName[st.Name]
		if p == nil {
			return fmt.Errorf("nn: snapshot parameter %q not registered", st.Name)
		}
		if p.Value.Rows != st.Rows || p.Value.Cols != st.Cols || len(st.Value) != len(p.Value.Data) {
			return fmt.Errorf("nn: parameter %q shape mismatch: snapshot %dx%d, model %dx%d",
				st.Name, st.Rows, st.Cols, p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, st.Value)
		p.step = st.Step
		p.m = restoreMoment(st.M, st.Rows, st.Cols)
		p.v = restoreMoment(st.V, st.Rows, st.Cols)
	}
	return nil
}

func restoreMoment(data []float32, rows, cols int) *tensor.Tensor {
	if data == nil {
		return nil
	}
	t := tensor.New(rows, cols)
	copy(t.Data, data)
	return t
}
