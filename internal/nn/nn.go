// Package nn provides trainable parameters, layers, and optimizers on top
// of the tensor package. The dense parameters of a GNN (layer weights,
// decoder relation embeddings) live here; the large learnable node
// base-representation tables live in the storage layer and are updated with
// the sparse AdaGrad in this package.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a named trainable tensor together with its optimizer state.
type Param struct {
	Name  string
	Value *tensor.Tensor

	// Adam / AdaGrad state, allocated lazily by the optimizer.
	m, v *tensor.Tensor
	step int
}

// ParamSet holds all dense trainable parameters of a model.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// New registers and returns a new parameter with the given shape. Names
// must be unique within the set.
func (ps *ParamSet) New(name string, rows, cols int) *Param {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	p := &Param{Name: name, Value: tensor.New(rows, cols)}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// NewGlorot registers a Glorot-uniform-initialized parameter.
func (ps *ParamSet) NewGlorot(name string, rows, cols int, rng *rand.Rand) *Param {
	p := ps.New(name, rows, cols)
	p.Value.GlorotUniform(rng)
	return p
}

// Get returns the parameter registered under name, or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// All returns the parameters in registration order.
func (ps *ParamSet) All() []*Param { return ps.params }

// NumParams returns the total scalar parameter count.
func (ps *ParamSet) NumParams() int {
	n := 0
	for _, p := range ps.params {
		n += len(p.Value.Data)
	}
	return n
}

// Bind registers every parameter on the tape as a gradient-tracked leaf and
// returns the nodes keyed by parameter name. Call once per mini batch.
func (ps *ParamSet) Bind(tp *tensor.Tape) map[string]*tensor.Node {
	return ps.BindInto(tp, nil)
}

// BindInto is Bind with a caller-owned destination map: trainers reuse one
// map across batches so steady-state binding allocates nothing. A nil dst
// allocates a fresh map. On an arena-backed tape the bound nodes' gradients
// are arena-owned — run Apply (and any write-back) before the arena resets.
func (ps *ParamSet) BindInto(tp *tensor.Tape, dst map[string]*tensor.Node) map[string]*tensor.Node {
	if dst == nil {
		dst = make(map[string]*tensor.Node, len(ps.params))
	} else {
		clear(dst)
	}
	for _, p := range ps.params {
		dst[p.Name] = tp.Leaf(p.Value, true)
	}
	return dst
}

// Optimizer applies gradients to dense parameters.
type Optimizer interface {
	// Step applies the gradient g to parameter p. g may be nil (no-op).
	Step(p *Param, g *tensor.Tensor)
}

// Apply runs one optimizer step for every parameter using the gradients
// accumulated on the given bound nodes, then clears nothing (tapes are
// discarded by the caller). Gradients are clipped to maxNorm per parameter
// when maxNorm > 0.
func Apply(opt Optimizer, ps *ParamSet, nodes map[string]*tensor.Node, maxNorm float64) {
	for _, p := range ps.params {
		n := nodes[p.Name]
		if n == nil || n.Grad() == nil {
			continue
		}
		g := n.Grad()
		if maxNorm > 0 {
			if nrm := g.Norm2(); nrm > maxNorm {
				g.ScaleInPlace(float32(maxNorm / nrm))
			}
		}
		opt.Step(p, g)
	}
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
}

// Step implements Optimizer.
func (o *SGD) Step(p *Param, g *tensor.Tensor) {
	if g == nil {
		return
	}
	if o.Momentum > 0 {
		if p.m == nil {
			p.m = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		for i, gv := range g.Data {
			p.m.Data[i] = o.Momentum*p.m.Data[i] + gv
			p.Value.Data[i] -= o.LR * p.m.Data[i]
		}
		return
	}
	for i, gv := range g.Data {
		p.Value.Data[i] -= o.LR * gv
	}
}

// Adam is the Adam optimizer (Kingma & Ba) used for dense GNN parameters,
// matching the paper's training setup for GNN weights.
type Adam struct {
	LR    float32
	Beta1 float32
	Beta2 float32
	Eps   float32
}

// NewAdam returns Adam with the conventional defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(p *Param, g *tensor.Tensor) {
	if g == nil {
		return
	}
	if p.m == nil {
		p.m = tensor.New(p.Value.Rows, p.Value.Cols)
		p.v = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	p.step++
	b1c := 1 - float32(math.Pow(float64(o.Beta1), float64(p.step)))
	b2c := 1 - float32(math.Pow(float64(o.Beta2), float64(p.step)))
	for i, gv := range g.Data {
		p.m.Data[i] = o.Beta1*p.m.Data[i] + (1-o.Beta1)*gv
		p.v.Data[i] = o.Beta2*p.v.Data[i] + (1-o.Beta2)*gv*gv
		mHat := p.m.Data[i] / b1c
		vHat := p.v.Data[i] / b2c
		p.Value.Data[i] -= o.LR * mHat / (float32(math.Sqrt(float64(vHat))) + o.Eps)
	}
}

// AdaGrad is the dense AdaGrad optimizer.
type AdaGrad struct {
	LR  float32
	Eps float32
}

// NewAdaGrad returns AdaGrad with eps 1e-10, the Marius default.
func NewAdaGrad(lr float32) *AdaGrad { return &AdaGrad{LR: lr, Eps: 1e-10} }

// Step implements Optimizer.
func (o *AdaGrad) Step(p *Param, g *tensor.Tensor) {
	if g == nil {
		return
	}
	if p.v == nil {
		p.v = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	for i, gv := range g.Data {
		p.v.Data[i] += gv * gv
		p.Value.Data[i] -= o.LR * gv / (float32(math.Sqrt(float64(p.v.Data[i]))) + o.Eps)
	}
}

// SparseAdaGrad updates rows of a large embedding table given per-row
// gradients, maintaining one accumulated squared-gradient scalar per row
// (the "per-embedding" variant used by Marius for base representations).
// The state slice must have one entry per table row and persists across
// batches; for disk-based training it is stored alongside the embeddings.
type SparseAdaGrad struct {
	LR  float32
	Eps float32
}

// NewSparseAdaGrad returns a sparse AdaGrad with eps 1e-10.
func NewSparseAdaGrad(lr float32) *SparseAdaGrad { return &SparseAdaGrad{LR: lr, Eps: 1e-10} }

// StepRow updates one embedding row in place given its gradient and the
// row's accumulated state, returning the new state.
func (o *SparseAdaGrad) StepRow(row, grad []float32, state float32) float32 {
	var sq float64
	for _, gv := range grad {
		sq += float64(gv) * float64(gv)
	}
	state += float32(sq / float64(len(grad)))
	scale := o.LR / (float32(math.Sqrt(float64(state))) + o.Eps)
	for i, gv := range grad {
		row[i] -= scale * gv
	}
	return state
}
