package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully-connected layer y = x @ W + b.
type Linear struct {
	W *Param
	B *Param // nil when bias is disabled
}

// NewLinear registers a Glorot-initialized in x out linear layer in ps.
// The name prefixes the underlying parameter names.
func NewLinear(ps *ParamSet, name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{W: ps.NewGlorot(name+".W", in, out, rng)}
	if bias {
		l.B = ps.New(name+".B", 1, out)
	}
	return l
}

// Apply records the layer's forward pass on the tape. nodes must be the
// map returned by ParamSet.Bind for the same tape.
func (l *Linear) Apply(tp *tensor.Tape, nodes map[string]*tensor.Node, x *tensor.Node) *tensor.Node {
	y := tp.MatMul(x, nodes[l.W.Name])
	if l.B != nil {
		y = tp.AddBias(y, nodes[l.B.Name])
	}
	return y
}
