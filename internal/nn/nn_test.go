package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestParamSetRegistration(t *testing.T) {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(1))
	a := ps.NewGlorot("a", 3, 4, rng)
	b := ps.New("b", 2, 2)
	if ps.Get("a") != a || ps.Get("b") != b {
		t.Fatal("lookup broken")
	}
	if ps.NumParams() != 12+4 {
		t.Fatalf("NumParams = %d", ps.NumParams())
	}
	if len(ps.All()) != 2 {
		t.Fatal("All broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name must panic")
		}
	}()
	ps.New("a", 1, 1)
}

// quadratic loss f(w) = sum(w^2) has gradient 2w; every optimizer must
// reduce it monotonically toward zero.
func optimizeQuadratic(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	ps := NewParamSet()
	p := ps.New("w", 4, 4)
	rng := rand.New(rand.NewSource(2))
	p.Value.RandNormal(rng, 1)
	for s := 0; s < steps; s++ {
		g := p.Value.Clone()
		g.ScaleInPlace(2)
		opt.Step(p, g)
	}
	return p.Value.Norm2()
}

func TestOptimizersConverge(t *testing.T) {
	if n := optimizeQuadratic(t, &SGD{LR: 0.1}, 100); n > 1e-3 {
		t.Fatalf("SGD norm %g", n)
	}
	if n := optimizeQuadratic(t, &SGD{LR: 0.05, Momentum: 0.9}, 200); n > 1e-2 {
		t.Fatalf("SGD+momentum norm %g", n)
	}
	if n := optimizeQuadratic(t, NewAdam(0.05), 300); n > 1e-2 {
		t.Fatalf("Adam norm %g", n)
	}
	if n := optimizeQuadratic(t, NewAdaGrad(0.5), 300); n > 1e-1 {
		t.Fatalf("AdaGrad norm %g", n)
	}
}

func TestSparseAdaGradShrinksSteps(t *testing.T) {
	opt := NewSparseAdaGrad(1.0)
	row := []float32{0, 0}
	grad := []float32{1, 1}
	var state float32
	state = opt.StepRow(row, grad, state)
	first := float64(-row[0])
	before := row[0]
	state = opt.StepRow(row, grad, state)
	second := float64(before - row[0])
	if !(first > 0 && second > 0 && second < first) {
		t.Fatalf("steps %g then %g; AdaGrad must decay", first, second)
	}
}

func TestApplyClipsGradients(t *testing.T) {
	ps := NewParamSet()
	p := ps.New("w", 1, 2)
	tp := tensor.NewTape()
	nodes := ps.Bind(tp)
	// Force a huge gradient through a scaled identity op.
	x := nodes["w"]
	y := tp.Scale(x, 1e6)
	loss := tp.MeanAll(y)
	tp.Backward(loss)
	gradNorm := nodes["w"].Grad().Norm2()
	if gradNorm < 1e5 {
		t.Fatal("setup broken")
	}
	before := p.Value.Clone()
	Apply(&SGD{LR: 1}, ps, nodes, 1.0)
	var moved float64
	for i := range p.Value.Data {
		d := float64(p.Value.Data[i] - before.Data[i])
		moved += d * d
	}
	if math.Sqrt(moved) > 1.01 {
		t.Fatalf("clipping failed: parameter moved norm %g", math.Sqrt(moved))
	}
}

func TestLinearShapes(t *testing.T) {
	ps := NewParamSet()
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(ps, "fc", 5, 3, true, rng)
	tp := tensor.NewTape()
	nodes := ps.Bind(tp)
	x := tensor.New(7, 5)
	x.RandNormal(rng, 1)
	y := l.Apply(tp, nodes, tp.Constant(x))
	if y.Value.Rows != 7 || y.Value.Cols != 3 {
		t.Fatalf("bad shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
	nb := NewLinear(ps, "nobias", 5, 3, false, rng)
	if nb.B != nil {
		t.Fatal("bias should be nil")
	}
}
