// Package policy implements the partition replacement and mini-batch
// assignment policies of MariusGNN §5: the sequence S = {S_1, S_2, …} of
// partition sets to load into the buffer during one epoch, and the
// sequence X = {X_1, X_2, …} of edge buckets whose training examples are
// consumed while each S_i is resident.
//
// Implemented policies:
//
//   - InMemory: the whole graph in one visit (M-GNN_Mem).
//   - BETA: the greedy IO-minimizing policy from Marius (OSDI '21), which
//     assigns every newly-available bucket eagerly to the visit that first
//     covers it — minimizing IO but producing correlated example order
//     (paper §5.1, Fig. 4).
//   - COMET: two-level partitioning (random logical grouping each epoch) +
//     randomized deferred bucket assignment (paper §5.1, Fig. 5).
//   - NodeCache: the node-classification policy of §5.2 (training nodes
//     statically cached, remaining partitions rotated randomly).
package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/partition"
)

// Visit is one step of an epoch: the physical partitions resident in the
// buffer and the edge buckets assigned for training while they are.
type Visit struct {
	Mem     []int      // sorted physical partition IDs in memory (S_i)
	Buckets [][2]int32 // edge buckets (i,j) to train on (X_i)
}

// Plan is the epoch schedule produced by a policy.
type Plan struct {
	NumPartitions int
	Visits        []Visit
}

// TotalLoads counts partition loads across the epoch (the initial fill
// plus every swap), the policy-level IO measure of paper §6.
func (pl *Plan) TotalLoads() int {
	loads := 0
	prev := map[int]bool{}
	for _, v := range pl.Visits {
		cur := make(map[int]bool, len(v.Mem))
		for _, p := range v.Mem {
			cur[p] = true
			if !prev[p] {
				loads++
			}
		}
		prev = cur
	}
	return loads
}

// NumBuckets counts assigned buckets across all visits.
func (pl *Plan) NumBuckets() int {
	n := 0
	for _, v := range pl.Visits {
		n += len(v.Buckets)
	}
	return n
}

// Verify checks the two correctness invariants every link-prediction plan
// must satisfy: (1) each of the p² buckets is assigned to exactly one
// visit, and (2) a bucket is only assigned to a visit whose memory set
// contains both of its partitions.
func (pl *Plan) Verify() error {
	p := pl.NumPartitions
	seen := make([]bool, p*p)
	for vi, v := range pl.Visits {
		mem := make(map[int]bool, len(v.Mem))
		for _, m := range v.Mem {
			mem[m] = true
		}
		for _, b := range v.Buckets {
			id := int(b[0])*p + int(b[1])
			if seen[id] {
				return fmt.Errorf("policy: bucket (%d,%d) assigned twice", b[0], b[1])
			}
			seen[id] = true
			if !mem[int(b[0])] || !mem[int(b[1])] {
				return fmt.Errorf("policy: visit %d assigned bucket (%d,%d) without both partitions in memory", vi, b[0], b[1])
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("policy: bucket (%d,%d) never assigned", id/p, id%p)
		}
	}
	return nil
}

// VerifyLookahead extends Verify's invariants to pipelined execution: it
// checks the plan against a prefetcher that stages partitions up to
// `lookahead` visits ahead of the trainer. For every visit i, the
// partitions appearing in visits i+1..i+lookahead but not resident at
// visit i all need staging memory at once, and that demand must never
// exceed stagingCap staged partitions. A plan passing this check can be
// pipelined at the given depth without the staging pool growing beyond
// stagingCap buffers. Unlike Verify it applies to every plan, including
// bucketless node-classification plans.
func (pl *Plan) VerifyLookahead(lookahead, stagingCap int) error {
	if lookahead < 0 {
		return fmt.Errorf("policy: negative lookahead %d", lookahead)
	}
	for i := range pl.Visits {
		resident := make(map[int]bool, len(pl.Visits[i].Mem))
		for _, p := range pl.Visits[i].Mem {
			resident[p] = true
		}
		staged := make(map[int]bool)
		for j := i + 1; j <= i+lookahead && j < len(pl.Visits); j++ {
			for _, p := range pl.Visits[j].Mem {
				if !resident[p] {
					staged[p] = true
				}
			}
		}
		if len(staged) > stagingCap {
			return fmt.Errorf("policy: visit %d needs %d staged partitions for lookahead %d, exceeding staging capacity %d",
				i, len(staged), lookahead, stagingCap)
		}
	}
	return nil
}

// MaxLookahead returns the largest prefetch depth at which the plan
// passes VerifyLookahead with the given staging capacity (0 when even
// one-visit lookahead does not fit).
func (pl *Plan) MaxLookahead(stagingCap int) int {
	k := 0
	for k < len(pl.Visits) && pl.VerifyLookahead(k+1, stagingCap) == nil {
		k++
	}
	return k
}

// Lookahead walks a plan's visits in order while exposing the upcoming
// window a pipeline prefetcher stages ahead of the trainer. It performs
// no synchronization: one goroutine (the prefetcher) owns it.
type Lookahead struct {
	plan *Plan
	pos  int
}

// NewLookahead returns an iterator positioned before the first visit.
func NewLookahead(p *Plan) *Lookahead { return &Lookahead{plan: p} }

// Pos returns how many visits have been consumed.
func (la *Lookahead) Pos() int { return la.pos }

// Next returns the next visit in plan order and advances the iterator;
// ok is false once the plan is exhausted.
func (la *Lookahead) Next() (v *Visit, vi int, ok bool) {
	if la.pos >= len(la.plan.Visits) {
		return nil, la.pos, false
	}
	v, vi = &la.plan.Visits[la.pos], la.pos
	la.pos++
	return v, vi, true
}

// NextK returns views of up to k upcoming (not yet consumed) visits
// without advancing — the prefetch window. k <= 0 yields nil.
func (la *Lookahead) NextK(k int) []*Visit {
	if k <= 0 {
		return nil
	}
	end := la.pos + k
	if end > len(la.plan.Visits) {
		end = len(la.plan.Visits)
	}
	if end <= la.pos {
		return nil
	}
	out := make([]*Visit, 0, end-la.pos)
	for i := la.pos; i < end; i++ {
		out = append(out, &la.plan.Visits[i])
	}
	return out
}

// Policy generates a fresh epoch plan. Implementations draw all
// randomness from rng so epochs are reproducible.
type Policy interface {
	NewEpochPlan(rng *rand.Rand) *Plan
	// Name identifies the policy in logs and benchmark tables.
	Name() string
}

// coverSequence produces a sequence of size-cap subsets of [0,n) such that
// every unordered pair (including self-pairs) co-resides in at least one
// subset, with consecutive subsets differing by exactly one swap after the
// initial fill. It uses the pivot-block traversal whose total loads are
// within a small factor of the n²/(2(c-1)) lower bound — the same family
// of near-IO-minimal one-swap orderings as Marius' BETA.
//
// order is a permutation of [0,n) controlling randomization.
func coverSequence(n, cap int, order []int) [][]int {
	if cap < 2 {
		panic("policy: buffer capacity must be at least 2")
	}
	if cap >= n {
		set := append([]int(nil), order...)
		return [][]int{set}
	}
	var seq [][]int
	remaining := append([]int(nil), order...)
	cur := make([]int, 0, cap)
	emit := func() {
		s := append([]int(nil), cur...)
		seq = append(seq, s)
	}
	// swapTo transitions cur toward target one swap at a time, emitting a
	// visit per swap; used between levels so the one-swap invariant holds.
	swapTo := func(target []int) {
		tset := make(map[int]bool, len(target))
		for _, t := range target {
			tset[t] = true
		}
		var keep, evict []int
		inCur := make(map[int]bool, len(cur))
		for _, c := range cur {
			inCur[c] = true
			if tset[c] {
				keep = append(keep, c)
			} else {
				evict = append(evict, c)
			}
		}
		var load []int
		for _, t := range target {
			if !inCur[t] {
				load = append(load, t)
			}
		}
		if len(cur) == 0 { // initial fill: one visit once full
			cur = append(cur, target...)
			emit()
			return
		}
		for i, t := range load {
			if i < len(evict) {
				// replace evict[i] with t
				for j, c := range cur {
					if c == evict[i] {
						cur[j] = t
						break
					}
				}
			} else {
				cur = append(cur, t)
			}
			emit()
		}
		_ = keep
	}

	for len(remaining) > cap {
		pivot := remaining[:cap-1]
		rest := remaining[cap-1:]
		// Load pivot + rest[0].
		target := append(append([]int(nil), pivot...), rest[0])
		swapTo(target)
		// Cycle the remaining partitions through the last slot.
		for _, r := range rest[1:] {
			for j := range cur {
				if cur[j] == target[cap-1] {
					cur[j] = r
					target[cap-1] = r
					break
				}
			}
			emit()
		}
		remaining = rest
	}
	swapTo(remaining)
	return seq
}

// InMemory trains with the full graph resident (a single visit containing
// every partition and every bucket).
type InMemory struct{ P int }

// Name implements Policy.
func (m InMemory) Name() string { return "InMemory" }

// NewEpochPlan implements Policy.
func (m InMemory) NewEpochPlan(rng *rand.Rand) *Plan {
	mem := make([]int, m.P)
	buckets := make([][2]int32, 0, m.P*m.P)
	for i := range mem {
		mem[i] = i
	}
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			buckets = append(buckets, [2]int32{int32(i), int32(j)})
		}
	}
	rng.Shuffle(len(buckets), func(i, j int) { buckets[i], buckets[j] = buckets[j], buckets[i] })
	return &Plan{NumPartitions: m.P, Visits: []Visit{{Mem: mem, Buckets: buckets}}}
}

// Beta is the greedy BETA policy from Marius: near-minimal IO with eager
// bucket assignment (each bucket is trained at the first visit where both
// its partitions co-reside).
type Beta struct {
	P int // physical partitions
	C int // buffer capacity in physical partitions
}

// Name implements Policy.
func (b Beta) Name() string { return "BETA" }

// NewEpochPlan implements Policy.
func (b Beta) NewEpochPlan(rng *rand.Rand) *Plan {
	order := rng.Perm(b.P)
	sets := coverSequence(b.P, b.C, order)
	covered := make([]bool, b.P*b.P)
	plan := &Plan{NumPartitions: b.P}
	for _, mem := range sets {
		v := Visit{Mem: append([]int(nil), mem...)}
		sortInts(v.Mem)
		for _, i := range v.Mem {
			for _, j := range v.Mem {
				if !covered[i*b.P+j] {
					covered[i*b.P+j] = true
					v.Buckets = append(v.Buckets, [2]int32{int32(i), int32(j)})
				}
			}
		}
		plan.Visits = append(plan.Visits, v)
	}
	return plan
}

// Comet is the COMET policy (paper §5.1): physical partitions are grouped
// into L random logical partitions each epoch; the cover traversal runs at
// logical granularity; and each bucket is assigned uniformly at random to
// one of the visits where both of its partitions co-reside (randomized
// deferred processing).
type Comet struct {
	P int // physical partitions
	L int // logical partitions; must divide P
	C int // buffer capacity in physical partitions; C*L/P must be an integer ≥ 2
}

// Name implements Policy.
func (c Comet) Name() string { return "COMET" }

// Validate checks the structural constraints on (P, L, C).
func (c Comet) Validate() error {
	if c.P%c.L != 0 {
		return fmt.Errorf("policy: logical partitions %d must divide physical %d", c.L, c.P)
	}
	group := c.P / c.L
	if c.C%group != 0 {
		return fmt.Errorf("policy: buffer capacity %d must be a multiple of the logical group size %d", c.C, group)
	}
	if c.C/group < 2 {
		return fmt.Errorf("policy: buffer must hold at least 2 logical partitions (c_l = %d)", c.C/group)
	}
	return nil
}

// NewEpochPlan implements Policy.
func (c Comet) NewEpochPlan(rng *rand.Rand) *Plan {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	group := c.P / c.L
	capL := c.C / group
	lg := partition.GroupLogical(c.P, c.L, rng)
	sets := coverSequence(c.L, capL, rng.Perm(c.L))

	plan := &Plan{NumPartitions: c.P}
	for _, ls := range sets {
		plan.Visits = append(plan.Visits, Visit{Mem: lg.PhysicalSet(ls)})
	}

	// Deferred randomized assignment: for each bucket, pick one visit
	// uniformly among those where both partitions co-reside.
	visitsOf := make([][]int, c.P) // partition -> visits containing it
	for vi, v := range plan.Visits {
		for _, p := range v.Mem {
			visitsOf[p] = append(visitsOf[p], vi)
		}
	}
	for i := 0; i < c.P; i++ {
		for j := 0; j < c.P; j++ {
			shared := intersectSorted(visitsOf[i], visitsOf[j])
			if len(shared) == 0 {
				panic(fmt.Sprintf("policy: COMET cover misses pair (%d,%d)", i, j))
			}
			vi := shared[rng.Intn(len(shared))]
			plan.Visits[vi].Buckets = append(plan.Visits[vi].Buckets, [2]int32{int32(i), int32(j)})
		}
	}
	return plan
}

// NodeCache is the node-classification policy of §5.2: the first
// TrainParts partitions (which hold every training node after the
// train-first relabeling) stay cached for the whole epoch, and the
// remaining buffer slots hold random disk partitions. When the training
// nodes do not fit (TrainParts ≥ C), it degrades to random rotation until
// every partition has been resident once.
type NodeCache struct {
	P          int
	C          int
	TrainParts int
}

// Name implements Policy.
func (n NodeCache) Name() string { return "NodeCache" }

// NewEpochPlan implements Policy. Buckets are not used by the
// node-classification trainer; visits carry only memory sets.
func (n NodeCache) NewEpochPlan(rng *rand.Rand) *Plan {
	plan := &Plan{NumPartitions: n.P}
	if n.TrainParts < n.C {
		mem := make([]int, 0, n.C)
		for i := 0; i < n.TrainParts; i++ {
			mem = append(mem, i)
		}
		rest := rng.Perm(n.P - n.TrainParts)
		for _, r := range rest {
			if len(mem) == n.C {
				break
			}
			mem = append(mem, n.TrainParts+r)
		}
		sortInts(mem)
		plan.Visits = append(plan.Visits, Visit{Mem: mem})
		return plan
	}
	// Fallback: rotate random partitions until all have appeared.
	order := rng.Perm(n.P)
	cur := append([]int(nil), order[:n.C]...)
	emit := func() {
		v := Visit{Mem: append([]int(nil), cur...)}
		sortInts(v.Mem)
		plan.Visits = append(plan.Visits, v)
	}
	emit()
	for next := n.C; next < n.P; next++ {
		cur[rng.Intn(len(cur))] = order[next]
		emit()
	}
	return plan
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// intersectSorted intersects two ascending int slices.
func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
