package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInMemoryPlan(t *testing.T) {
	pl := InMemory{P: 4}.NewEpochPlan(rand.New(rand.NewSource(1)))
	if err := pl.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(pl.Visits) != 1 || len(pl.Visits[0].Buckets) != 16 {
		t.Fatalf("in-memory plan shape wrong: %d visits", len(pl.Visits))
	}
	if pl.TotalLoads() != 4 {
		t.Fatalf("loads = %d", pl.TotalLoads())
	}
}

func TestBetaPlanCoversAllBuckets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(14) + 2
		c := rng.Intn(p-1) + 2
		if c > p {
			c = p
		}
		pl := Beta{P: p, C: c}.NewEpochPlan(rng)
		return pl.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCometPlanCoversAllBuckets(t *testing.T) {
	cases := []Comet{
		{P: 8, L: 4, C: 4},
		{P: 12, L: 6, C: 4},
		{P: 16, L: 8, C: 4},
		{P: 16, L: 4, C: 8},
		{P: 24, L: 12, C: 6},
		{P: 8, L: 8, C: 2},
	}
	for _, c := range cases {
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		for seed := int64(0); seed < 5; seed++ {
			pl := c.NewEpochPlan(rand.New(rand.NewSource(seed)))
			if err := pl.Verify(); err != nil {
				t.Fatalf("%+v seed %d: %v", c, seed, err)
			}
			for _, v := range pl.Visits {
				if len(v.Mem) > c.C {
					t.Fatalf("%+v: visit exceeds buffer capacity: %d > %d", c, len(v.Mem), c.C)
				}
			}
		}
	}
}

func TestCometValidateRejectsBadShapes(t *testing.T) {
	bad := []Comet{
		{P: 8, L: 3, C: 4}, // l does not divide p
		{P: 8, L: 4, C: 3}, // group size does not divide c
		{P: 8, L: 8, C: 1}, // fewer than 2 logical in buffer
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("%+v should be invalid", c)
		}
	}
}

func TestBetaEagerAssignmentIsCorrelated(t *testing.T) {
	// BETA's defining property (paper Fig. 4): after the first visit,
	// every newly assigned bucket involves the swapped-in partition.
	rng := rand.New(rand.NewSource(3))
	pl := Beta{P: 12, C: 4}.NewEpochPlan(rng)
	prev := map[int]bool{}
	for vi, v := range pl.Visits {
		cur := map[int]bool{}
		var fresh []int
		for _, p := range v.Mem {
			cur[p] = true
			if !prev[p] {
				fresh = append(fresh, p)
			}
		}
		if vi > 0 && len(fresh) == 1 {
			nw := fresh[0]
			for _, b := range v.Buckets {
				if int(b[0]) != nw && int(b[1]) != nw {
					t.Fatalf("visit %d: bucket (%d,%d) does not involve new partition %d", vi, b[0], b[1], nw)
				}
			}
		}
		prev = cur
	}
}

func TestCometDeferredAssignmentSpreadsBuckets(t *testing.T) {
	// COMET must distribute bucket counts far more evenly than BETA: the
	// max/mean ratio of buckets per visit should be bounded.
	rng := rand.New(rand.NewSource(4))
	comet := Comet{P: 16, L: 8, C: 4}
	pl := comet.NewEpochPlan(rng)
	if err := pl.Verify(); err != nil {
		t.Fatal(err)
	}
	total := 0
	maxB := 0
	for _, v := range pl.Visits {
		total += len(v.Buckets)
		if len(v.Buckets) > maxB {
			maxB = len(v.Buckets)
		}
	}
	mean := float64(total) / float64(len(pl.Visits))
	if float64(maxB) > 6*mean {
		t.Fatalf("COMET visit bucket counts unbalanced: max %d vs mean %.1f", maxB, mean)
	}
}

func TestNodeCacheSingleVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pl := NodeCache{P: 16, C: 6, TrainParts: 2}.NewEpochPlan(rng)
	if len(pl.Visits) != 1 {
		t.Fatalf("visits = %d, want 1 (zero swaps per epoch)", len(pl.Visits))
	}
	mem := pl.Visits[0].Mem
	if len(mem) != 6 {
		t.Fatalf("buffer size %d", len(mem))
	}
	if mem[0] != 0 || mem[1] != 1 {
		t.Fatalf("training partitions not cached: %v", mem)
	}
}

func TestNodeCacheFallbackRotatesThroughAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pl := NodeCache{P: 10, C: 3, TrainParts: 5}.NewEpochPlan(rng)
	seen := map[int]bool{}
	for _, v := range pl.Visits {
		if len(v.Mem) > 3 {
			t.Fatalf("visit exceeds capacity")
		}
		for _, p := range v.Mem {
			seen[p] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("rotation visited %d/10 partitions", len(seen))
	}
}

func TestLookaheadIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pl := Beta{P: 8, C: 3}.NewEpochPlan(rng)
	la := NewLookahead(pl)

	// Before consuming anything, NextK(2) previews visits 0 and 1.
	win := la.NextK(2)
	if len(win) != 2 || win[0] != &pl.Visits[0] || win[1] != &pl.Visits[1] {
		t.Fatalf("initial window wrong: %v", win)
	}
	if la.NextK(0) != nil || la.NextK(-1) != nil {
		t.Fatal("non-positive window must be empty")
	}

	for i := range pl.Visits {
		// The window never includes consumed visits and shrinks at the end.
		win := la.NextK(3)
		wantLen := min(3, len(pl.Visits)-i)
		if len(win) != wantLen {
			t.Fatalf("pos %d: window %d, want %d", i, len(win), wantLen)
		}
		for j, v := range win {
			if v != &pl.Visits[i+j] {
				t.Fatalf("pos %d: window[%d] is not visit %d", i, j, i+j)
			}
		}
		v, vi, ok := la.Next()
		if !ok || vi != i || v != &pl.Visits[i] {
			t.Fatalf("Next at %d returned (%v,%d,%v)", i, v, vi, ok)
		}
		if la.Pos() != i+1 {
			t.Fatalf("Pos = %d, want %d", la.Pos(), i+1)
		}
	}
	if _, _, ok := la.Next(); ok {
		t.Fatal("iterator must be exhausted")
	}
	if la.NextK(5) != nil {
		t.Fatal("window past the end must be empty")
	}
}

func TestVerifyLookahead(t *testing.T) {
	// One-swap cover plans stage exactly one partition per future visit:
	// lookahead k needs at most k staged partitions.
	rng := rand.New(rand.NewSource(10))
	pl := Beta{P: 10, C: 4}.NewEpochPlan(rng)
	for k := 1; k <= 3; k++ {
		if err := pl.VerifyLookahead(k, k); err != nil {
			t.Fatalf("lookahead %d with %d staging buffers: %v", k, k, err)
		}
	}
	if err := pl.VerifyLookahead(0, 0); err != nil {
		t.Fatalf("zero lookahead needs no staging: %v", err)
	}
	if err := pl.VerifyLookahead(-1, 4); err == nil {
		t.Fatal("negative lookahead must be rejected")
	}

	// A hand-built plan that swaps the entire buffer each visit: one
	// visit of lookahead already demands a full buffer of staging.
	full := &Plan{NumPartitions: 4, Visits: []Visit{
		{Mem: []int{0, 1}},
		{Mem: []int{2, 3}},
	}}
	if err := full.VerifyLookahead(1, 1); err == nil {
		t.Fatal("full-buffer swap with 1 staging buffer must fail")
	}
	if err := full.VerifyLookahead(1, 2); err != nil {
		t.Fatal(err)
	}

	// NodeCache plans carry no buckets but must still verify lookahead.
	ncPl := NodeCache{P: 10, C: 3, TrainParts: 5}.NewEpochPlan(rand.New(rand.NewSource(11)))
	if err := ncPl.VerifyLookahead(1, 1); err != nil {
		t.Fatalf("rotation plan swaps one partition per visit: %v", err)
	}
}

func TestMaxLookahead(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pl := Beta{P: 8, C: 3}.NewEpochPlan(rng)
	if got := pl.MaxLookahead(2); got < 2 {
		t.Fatalf("one-swap plan with 2 staging buffers should allow lookahead >= 2, got %d", got)
	}
	full := &Plan{NumPartitions: 4, Visits: []Visit{
		{Mem: []int{0, 1}},
		{Mem: []int{2, 3}},
	}}
	if got := full.MaxLookahead(1); got != 0 {
		t.Fatalf("full swap with 1 buffer: MaxLookahead = %d, want 0", got)
	}
}

func TestTotalLoadsNearLowerBound(t *testing.T) {
	// The cover traversal's IO should be within a modest factor of the
	// p²/(2(c-1)) pairwise lower bound (paper cites near-minimal IO).
	rng := rand.New(rand.NewSource(7))
	p, c := 32, 8
	pl := Beta{P: p, C: c}.NewEpochPlan(rng)
	loads := pl.TotalLoads()
	lower := float64(p*p) / float64(2*(c-1))
	if float64(loads) > 3*lower+float64(c) {
		t.Fatalf("loads %d too far above lower bound %.0f", loads, lower)
	}
}

func TestCometOneSwapTransitions(t *testing.T) {
	// After the initial fill, consecutive COMET visits differ by exactly
	// one logical partition (p/l physical partitions).
	rng := rand.New(rand.NewSource(8))
	comet := Comet{P: 16, L: 8, C: 4}
	pl := comet.NewEpochPlan(rng)
	group := comet.P / comet.L
	for vi := 1; vi < len(pl.Visits); vi++ {
		prev := map[int]bool{}
		for _, p := range pl.Visits[vi-1].Mem {
			prev[p] = true
		}
		fresh := 0
		for _, p := range pl.Visits[vi].Mem {
			if !prev[p] {
				fresh++
			}
		}
		if fresh > group {
			t.Fatalf("visit %d loads %d physical partitions (> one logical = %d)", vi, fresh, group)
		}
	}
}
