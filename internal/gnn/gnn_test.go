package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"

	"repro/internal/graph"
)

// naiveSage computes the exact k-layer GraphSage representation of node v
// over the full neighborhood (both directions), the ground truth DENSE
// must match when fanouts exceed the maximum degree.
func naiveSage(adj *graph.Adjacency, feats *tensor.Tensor, layers []*SageLayer, v int32, k int) []float32 {
	if k == 0 {
		return feats.Row(int(v))
	}
	l := layers[k-1]
	var nbrs []int32
	nbrs = append(nbrs, adj.OutNeighbors(v)...)
	nbrs = append(nbrs, adj.InNeighbors(v)...)
	dimIn := l.Self.W.Value.Rows
	agg := make([]float32, dimIn)
	for _, u := range nbrs {
		hu := naiveSage(adj, feats, layers, u, k-1)
		for j := range agg {
			agg[j] += hu[j]
		}
	}
	if l.Agg == Mean && len(nbrs) > 0 {
		for j := range agg {
			agg[j] /= float32(len(nbrs))
		}
	}
	hv := naiveSage(adj, feats, layers, v, k-1)
	out := make([]float32, l.OutDim())
	wSelf, wNbr := l.Self.W.Value, l.Nbr.W.Value
	for o := range out {
		var s float32
		for j := 0; j < dimIn; j++ {
			s += hv[j]*wSelf.At(j, o) + agg[j]*wNbr.At(j, o)
		}
		s += l.Self.B.Value.At(0, o)
		if l.Act && s < 0 {
			s = 0
		}
		out[o] = s
	}
	return out
}

func smallGraph(rng *rand.Rand, n, m int) *graph.Adjacency {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	return graph.BuildAdjacency(n, edges)
}

func TestDENSESageMatchesNaiveFullNeighborhood(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, dim = 30, 5
	adj := smallGraph(rng, n, 80)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	for _, k := range []int{1, 2, 3} {
		ps := nn.NewParamSet()
		dims := make([]int, k+1)
		for i := range dims {
			dims[i] = dim
		}
		enc := BuildSage(ps, dims, Mean, rng)
		fanouts := make([]int, k)
		for i := range fanouts {
			fanouts[i] = 1000 // exceed every degree: sample = full neighborhood
		}
		targets := []int32{0, 7, 13}
		smp := sampler.New(adj, fanouts, graph.Both, 1)
		d := smp.Sample(targets)

		h0 := tensor.New(len(d.NodeIDs), dim)
		for i, id := range d.NodeIDs {
			copy(h0.Row(i), feats.Row(int(id)))
		}
		tp := tensor.NewTape()
		params := ps.Bind(tp)
		out := enc.Forward(tp, params, d, tp.Constant(h0))

		layers := make([]*SageLayer, k)
		for i, l := range enc.Layers {
			layers[i] = l.(*SageLayer)
		}
		for ti, v := range targets {
			want := naiveSage(adj, feats, layers, v, k)
			got := out.Value.Row(ti)
			for j := range want {
				if math.Abs(float64(got[j]-want[j])) > 1e-3 {
					t.Fatalf("k=%d target %d dim %d: got %v want %v", k, v, j, got[j], want[j])
				}
			}
		}
	}
}

func TestDENSEAndBaselineForwardAgreeAtFullFanout(t *testing.T) {
	// With fanouts exceeding every degree, DENSE and the layered baseline
	// both see the full neighborhood, so the two execution paths (dense
	// segment kernels vs COO scatter) must produce identical outputs.
	rng := rand.New(rand.NewSource(7))
	const n, dim = 25, 4
	adj := smallGraph(rng, n, 70)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	ps := nn.NewParamSet()
	enc := BuildSage(ps, []int{dim, dim, dim}, Mean, rng)
	fanouts := []int{1000, 1000}
	targets := []int32{2, 9, 17, 21}

	d := sampler.New(adj, fanouts, graph.Both, 1).Sample(targets)
	h0d := tensor.New(len(d.NodeIDs), dim)
	for i, id := range d.NodeIDs {
		copy(h0d.Row(i), feats.Row(int(id)))
	}
	tp1 := tensor.NewTape()
	out1 := enc.Forward(tp1, ps.Bind(tp1), d, tp1.Constant(h0d))

	ls := sampler.NewLayered(adj, fanouts, graph.Both, 1).Sample(targets)
	h0b := tensor.New(len(ls.Blocks[0].SrcNodes), dim)
	for i, id := range ls.Blocks[0].SrcNodes {
		copy(h0b.Row(i), feats.Row(int(id)))
	}
	tp2 := tensor.NewTape()
	out2 := BaselineForward(tp2, ps.Bind(tp2), enc, ls, tp2.Constant(h0b))

	if !out1.Value.Equal(out2.Value, 1e-3) {
		t.Fatalf("DENSE and baseline disagree:\n%v\nvs\n%v", out1.Value, out2.Value)
	}
}

func TestGATLayerShapesAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, dim = 20, 4
	adj := smallGraph(rng, n, 60)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	ps := nn.NewParamSet()
	enc := BuildGAT(ps, []int{dim, 6, 3}, rng)
	targets := []int32{1, 5, 9}
	d := sampler.New(adj, []int{5, 5}, graph.Both, 2).Sample(targets)

	h0 := tensor.New(len(d.NodeIDs), dim)
	for i, id := range d.NodeIDs {
		copy(h0.Row(i), feats.Row(int(id)))
	}
	tp := tensor.NewTape()
	params := ps.Bind(tp)
	out := enc.Forward(tp, params, d, tp.Constant(h0))
	if out.Value.Rows != len(targets) || out.Value.Cols != 3 {
		t.Fatalf("output shape %dx%d, want %dx3", out.Value.Rows, out.Value.Cols, len(targets))
	}
	loss := tp.MeanAll(out)
	tp.Backward(loss)
	// All GAT parameters must receive gradients.
	for _, p := range ps.All() {
		if params[p.Name].Grad() == nil {
			t.Errorf("parameter %s received no gradient", p.Name)
		}
	}
}

func TestGCNLayerRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, dim = 15, 3
	adj := smallGraph(rng, n, 40)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	ps := nn.NewParamSet()
	enc := BuildGCN(ps, []int{dim, 4}, rng)
	targets := []int32{0, 3}
	d := sampler.New(adj, []int{4}, graph.Both, 5).Sample(targets)
	h0 := tensor.New(len(d.NodeIDs), dim)
	for i, id := range d.NodeIDs {
		copy(h0.Row(i), feats.Row(int(id)))
	}
	tp := tensor.NewTape()
	out := enc.Forward(tp, ps.Bind(tp), d, tp.Constant(h0))
	if out.Value.Rows != 2 || out.Value.Cols != 4 {
		t.Fatalf("bad shape %dx%d", out.Value.Rows, out.Value.Cols)
	}
}

func TestEncoderDepthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	adj := smallGraph(rng, 10, 20)
	ps := nn.NewParamSet()
	enc := BuildSage(ps, []int{3, 3}, Mean, rng)                         // 1 layer
	d := sampler.New(adj, []int{2, 2}, graph.Both, 1).Sample([]int32{0}) // 2 hops
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on depth mismatch")
		}
	}()
	h0 := tensor.New(len(d.NodeIDs), 3)
	tp := tensor.NewTape()
	enc.Forward(tp, ps.Bind(tp), d, tp.Constant(h0))
}

func TestGATBaselineAgreesWithDENSEAtFullFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, dim = 18, 4
	adj := smallGraph(rng, n, 50)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	ps := nn.NewParamSet()
	enc := BuildGAT(ps, []int{dim, 5, 3}, rng)
	fanouts := []int{1000, 1000}
	targets := []int32{0, 4, 11}

	d := sampler.New(adj, fanouts, graph.Both, 1).Sample(targets)
	h0d := tensor.New(len(d.NodeIDs), dim)
	for i, id := range d.NodeIDs {
		copy(h0d.Row(i), feats.Row(int(id)))
	}
	tp1 := tensor.NewTape()
	out1 := enc.Forward(tp1, ps.Bind(tp1), d, tp1.Constant(h0d))

	ls := sampler.NewLayered(adj, fanouts, graph.Both, 1).Sample(targets)
	h0b := tensor.New(len(ls.Blocks[0].SrcNodes), dim)
	for i, id := range ls.Blocks[0].SrcNodes {
		copy(h0b.Row(i), feats.Row(int(id)))
	}
	tp2 := tensor.NewTape()
	out2 := BaselineForward(tp2, ps.Bind(tp2), enc, ls, tp2.Constant(h0b))

	if !out1.Value.Equal(out2.Value, 1e-3) {
		t.Fatalf("GAT DENSE and baseline disagree:\n%v\nvs\n%v", out1.Value, out2.Value)
	}
}

func TestGCNBaselineAgreesWithDENSEAtFullFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, dim = 16, 3
	adj := smallGraph(rng, n, 45)
	feats := tensor.New(n, dim)
	feats.RandNormal(rng, 1)

	ps := nn.NewParamSet()
	enc := BuildGCN(ps, []int{dim, 4, 4}, rng)
	fanouts := []int{1000, 1000}
	targets := []int32{1, 6, 12}

	d := sampler.New(adj, fanouts, graph.Both, 1).Sample(targets)
	h0d := tensor.New(len(d.NodeIDs), dim)
	for i, id := range d.NodeIDs {
		copy(h0d.Row(i), feats.Row(int(id)))
	}
	tp1 := tensor.NewTape()
	out1 := enc.Forward(tp1, ps.Bind(tp1), d, tp1.Constant(h0d))

	ls := sampler.NewLayered(adj, fanouts, graph.Both, 1).Sample(targets)
	h0b := tensor.New(len(ls.Blocks[0].SrcNodes), dim)
	for i, id := range ls.Blocks[0].SrcNodes {
		copy(h0b.Row(i), feats.Row(int(id)))
	}
	tp2 := tensor.NewTape()
	out2 := BaselineForward(tp2, ps.Bind(tp2), enc, ls, tp2.Constant(h0b))

	if !out1.Value.Equal(out2.Value, 1e-3) {
		t.Fatalf("GCN DENSE and baseline disagree:\n%v\nvs\n%v", out1.Value, out2.Value)
	}
}
