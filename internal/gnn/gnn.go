// Package gnn implements GNN encoder layers that compute directly on the
// DENSE data structure with dense kernels (paper §4.2, Algorithm 3), plus
// the per-edge COO execution used to model the DGL/PyG baselines.
//
// Layers implemented: GraphSage (mean or sum aggregation), GAT (segment
// softmax attention), and GCN. All layers share one calling convention so
// encoders of any depth reuse the same code, exactly as DENSE's
// Algorithm 2 update enables in the paper.
package gnn

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Aggregation selects a neighborhood reduction.
type Aggregation int

const (
	// Mean averages neighbor representations (GraphSage default).
	Mean Aggregation = iota
	// Sum adds neighbor representations (paper Algorithm 3's example).
	Sum
)

// Layer is one GNN layer operating on DENSE. Apply consumes the
// representations h aligned with d.NodeIDs and returns representations for
// d.NodeIDs[d.OutputStart():]. The caller advances d between layers.
type Layer interface {
	Apply(tp *tensor.Tape, params map[string]*tensor.Node, d *sampler.DENSE, h *tensor.Node) *tensor.Node
	// OutDim reports the layer output dimensionality.
	OutDim() int
}

// SageLayer is a GraphSage layer:
//
//	h'_v = act(W_self·h_v + W_nbr·AGG({h_u : u ∈ sampled nbrs(v)}))
type SageLayer struct {
	Self, Nbr *nn.Linear
	Agg       Aggregation
	Act       bool // apply ReLU (disabled on the final layer)
	outDim    int
}

// NewSage registers a GraphSage layer's parameters in ps.
func NewSage(ps *nn.ParamSet, name string, in, out int, agg Aggregation, act bool, rng *rand.Rand) *SageLayer {
	return &SageLayer{
		Self:   nn.NewLinear(ps, name+".self", in, out, true, rng),
		Nbr:    nn.NewLinear(ps, name+".nbr", in, out, false, rng),
		Agg:    agg,
		Act:    act,
		outDim: out,
	}
}

// OutDim implements Layer.
func (l *SageLayer) OutDim() int { return l.outDim }

// Apply implements Layer using Algorithm 3: gather neighbor rows through
// ReprMap and reduce them per segment in one fused kernel (the gathered
// [|Nbrs| x d] matrix — the largest intermediate of the forward pass — is
// never materialized), then combine with self rows.
func (l *SageLayer) Apply(tp *tensor.Tape, params map[string]*tensor.Node, d *sampler.DENSE, h *tensor.Node) *tensor.Node {
	var nbrAgg *tensor.Node
	if l.Agg == Mean {
		nbrAgg = tp.GatherSegmentMean(h, d.ReprMap, d.SegmentOffsets())
	} else {
		nbrAgg = tp.GatherSegmentSum(h, d.ReprMap, d.SegmentOffsets())
	}
	selfRepr := tp.SliceRows(h, d.OutputStart(), h.Value.Rows)
	out := tp.Add(l.Self.Apply(tp, params, selfRepr), l.Nbr.Apply(tp, params, nbrAgg))
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

// GATLayer is a graph attention layer. Attention logits use the standard
// GATv1 decomposition e_vu = LeakyReLU(aₗ·Wh_v + aᵣ·Wh_u); weights are a
// softmax per neighborhood segment. The self representation enters through
// a separate linear term rather than a synthetic self-loop edge, which
// keeps the segment layout identical to GraphSage.
type GATLayer struct {
	W      *nn.Linear
	Self   *nn.Linear
	ASrc   *nn.Param // [out x 1]
	ADst   *nn.Param // [out x 1]
	Slope  float32   // LeakyReLU negative slope
	Act    bool
	outDim int
}

// NewGAT registers a GAT layer's parameters in ps.
func NewGAT(ps *nn.ParamSet, name string, in, out int, act bool, rng *rand.Rand) *GATLayer {
	return &GATLayer{
		W:      nn.NewLinear(ps, name+".W", in, out, false, rng),
		Self:   nn.NewLinear(ps, name+".self", in, out, true, rng),
		ASrc:   ps.NewGlorot(name+".aSrc", out, 1, rng),
		ADst:   ps.NewGlorot(name+".aDst", out, 1, rng),
		Slope:  0.2,
		Act:    act,
		outDim: out,
	}
}

// OutDim implements Layer.
func (l *GATLayer) OutDim() int { return l.outDim }

// segmentIndex expands segment offsets into a per-row segment ID array:
// row r of the neighbor list belongs to output node segIdx[r].
func segmentIndex(offsets []int32, total int) []int32 {
	idx := make([]int32, total)
	for s := 0; s < len(offsets); s++ {
		end := total
		if s+1 < len(offsets) {
			end = int(offsets[s+1])
		}
		for r := int(offsets[s]); r < end; r++ {
			idx[r] = int32(s)
		}
	}
	return idx
}

// Apply implements Layer.
func (l *GATLayer) Apply(tp *tensor.Tape, params map[string]*tensor.Node, d *sampler.DENSE, h *tensor.Node) *tensor.Node {
	wh := l.W.Apply(tp, params, h) // [L x out] for all current nodes
	// Attention contributions: per-destination aₗ·Wh_v over output nodes,
	// per-source aᵣ·Wh_u over all nodes.
	alAll := tp.MatMul(wh, params[l.ASrc.Name]) // [L x 1]
	arAll := tp.MatMul(wh, params[l.ADst.Name]) // [L x 1]
	alOut := tp.SliceRows(alAll, d.OutputStart(), h.Value.Rows)

	segIdx := segmentIndex(d.SegmentOffsets(), len(d.Nbrs))
	eDst := tp.Gather(alOut, segIdx)    // one logit term per neighbor entry
	eSrc := tp.Gather(arAll, d.ReprMap) // aligned with Nbrs
	logits := tp.LeakyReLU(tp.Add(eDst, eSrc), l.Slope)
	alpha := tp.SegmentSoftmax(logits, d.SegmentOffsets())

	msg := tp.MulColBroadcast(tp.Gather(wh, d.ReprMap), alpha)
	agg := tp.SegmentSum(msg, d.SegmentOffsets())

	selfRepr := tp.SliceRows(h, d.OutputStart(), h.Value.Rows)
	out := tp.Add(agg, l.Self.Apply(tp, params, selfRepr))
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

// GCNLayer applies a shared-weight convolution over the closed
// neighborhood: h'_v = act(W · mean(h_v ∪ {h_u})).
type GCNLayer struct {
	W      *nn.Linear
	Act    bool
	outDim int
}

// NewGCN registers a GCN layer's parameters in ps.
func NewGCN(ps *nn.ParamSet, name string, in, out int, act bool, rng *rand.Rand) *GCNLayer {
	return &GCNLayer{W: nn.NewLinear(ps, name+".W", in, out, true, rng), Act: act, outDim: out}
}

// OutDim implements Layer.
func (l *GCNLayer) OutDim() int { return l.outDim }

// Apply implements Layer.
func (l *GCNLayer) Apply(tp *tensor.Tape, params map[string]*tensor.Node, d *sampler.DENSE, h *tensor.Node) *tensor.Node {
	nbrSum := tp.GatherSegmentSum(h, d.ReprMap, d.SegmentOffsets())
	selfRepr := tp.SliceRows(h, d.OutputStart(), h.Value.Rows)
	total := tp.Add(nbrSum, selfRepr)
	// Normalize by closed-neighborhood size.
	offs := d.SegmentOffsets()
	inv := tp.Alloc(total.Value.Rows, 1)
	for s := 0; s < total.Value.Rows; s++ {
		end := len(d.Nbrs)
		if s+1 < len(offs) {
			end = int(offs[s+1])
		}
		inv.Data[s] = 1 / float32(end-int(offs[s])+1)
	}
	norm := tp.MulColBroadcast(total, tp.Constant(inv))
	out := l.W.Apply(tp, params, norm)
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

// Encoder stacks layers over one DENSE sample, applying the Algorithm 2
// update between layers. The returned representations correspond exactly
// to the sample's target nodes.
type Encoder struct {
	Layers []Layer
}

// Forward runs the encoder. d is consumed (advanced in place).
func (e *Encoder) Forward(tp *tensor.Tape, params map[string]*tensor.Node, d *sampler.DENSE, h0 *tensor.Node) *tensor.Node {
	if d.Layers != len(e.Layers) {
		panic(fmt.Sprintf("gnn: DENSE sampled for %d layers, encoder has %d", d.Layers, len(e.Layers)))
	}
	h := h0
	for i, l := range e.Layers {
		h = l.Apply(tp, params, d, h)
		if i < len(e.Layers)-1 {
			d.AdvanceLayer()
		}
	}
	return h
}

// OutDim returns the final layer's output dimensionality.
func (e *Encoder) OutDim() int { return e.Layers[len(e.Layers)-1].OutDim() }

// BuildSage constructs a GraphSage encoder with the given hidden sizes.
// dims has length layers+1: input dim followed by each layer's output dim.
func BuildSage(ps *nn.ParamSet, dims []int, agg Aggregation, rng *rand.Rand) *Encoder {
	enc := &Encoder{}
	for i := 0; i+1 < len(dims); i++ {
		act := i+2 < len(dims)
		enc.Layers = append(enc.Layers, NewSage(ps, fmt.Sprintf("sage%d", i), dims[i], dims[i+1], agg, act, rng))
	}
	return enc
}

// BuildGAT constructs a GAT encoder with the given dims.
func BuildGAT(ps *nn.ParamSet, dims []int, rng *rand.Rand) *Encoder {
	enc := &Encoder{}
	for i := 0; i+1 < len(dims); i++ {
		act := i+2 < len(dims)
		enc.Layers = append(enc.Layers, NewGAT(ps, fmt.Sprintf("gat%d", i), dims[i], dims[i+1], act, rng))
	}
	return enc
}

// BuildGCN constructs a GCN encoder with the given dims.
func BuildGCN(ps *nn.ParamSet, dims []int, rng *rand.Rand) *Encoder {
	enc := &Encoder{}
	for i := 0; i+1 < len(dims); i++ {
		act := i+2 < len(dims)
		enc.Layers = append(enc.Layers, NewGCN(ps, fmt.Sprintf("gcn%d", i), dims[i], dims[i+1], act, rng))
	}
	return enc
}
