package gnn

import (
	"fmt"

	"repro/internal/sampler"
	"repro/internal/tensor"
)

// blockOffsets returns per-destination-node segment offsets into the
// block's edge arrays. LayeredSampler emits edges grouped by destination
// in DstNodes order, so EdgeDst is non-decreasing and segments are
// contiguous.
func blockOffsets(b *sampler.Block) []int32 {
	offsets := make([]int32, len(b.DstNodes))
	counts := make([]int32, len(b.DstNodes))
	for _, d := range b.EdgeDst {
		counts[d]++
	}
	var run int32
	for v := range offsets {
		offsets[v] = run
		run += counts[v]
	}
	return offsets
}

// BaselineForward runs an encoder over a per-layer re-sampled
// LayeredSample using per-edge COO gather/scatter aggregation — the
// execution strategy of the DGL/PyG baselines the paper compares against
// (§7.4). The same layer parameters are used as in DENSE execution, so
// the two paths are numerically comparable; only sampling semantics and
// kernels differ.
func BaselineForward(tp *tensor.Tape, params map[string]*tensor.Node, enc *Encoder, ls *sampler.LayeredSample, h0 *tensor.Node) *tensor.Node {
	if len(ls.Blocks) != len(enc.Layers) {
		panic(fmt.Sprintf("gnn: sample has %d blocks, encoder %d layers", len(ls.Blocks), len(enc.Layers)))
	}
	h := h0 // representations of Blocks[0].SrcNodes
	for i, layer := range enc.Layers {
		b := &ls.Blocks[i]
		switch l := layer.(type) {
		case *SageLayer:
			h = baselineSage(tp, params, l, b, h)
		case *GATLayer:
			h = baselineGAT(tp, params, l, b, h)
		case *GCNLayer:
			h = baselineGCN(tp, params, l, b, h)
		default:
			panic(fmt.Sprintf("gnn: BaselineForward does not support %T", layer))
		}
	}
	return h
}

func baselineSage(tp *tensor.Tape, params map[string]*tensor.Node, l *SageLayer, b *sampler.Block, h *tensor.Node) *tensor.Node {
	// Per-edge gather + scatter-add (the sparse kernels baselines use).
	msg := tp.Gather(h, b.EdgeSrc)
	agg := tp.ScatterAddRows(msg, b.EdgeDst, len(b.DstNodes))
	if l.Agg == Mean {
		agg = tp.MulColBroadcast(agg, tp.Constant(inverseCounts(tp, b, 0)))
	}
	// SrcNodes begin with DstNodes, so self rows are the prefix.
	selfRepr := tp.SliceRows(h, 0, len(b.DstNodes))
	out := tp.Add(l.Self.Apply(tp, params, selfRepr), l.Nbr.Apply(tp, params, agg))
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

func baselineGAT(tp *tensor.Tape, params map[string]*tensor.Node, l *GATLayer, b *sampler.Block, h *tensor.Node) *tensor.Node {
	offsets := blockOffsets(b)
	wh := l.W.Apply(tp, params, h)
	alAll := tp.MatMul(wh, params[l.ASrc.Name])
	arAll := tp.MatMul(wh, params[l.ADst.Name])
	alDst := tp.SliceRows(alAll, 0, len(b.DstNodes))

	eDst := tp.Gather(alDst, b.EdgeDst)
	eSrc := tp.Gather(arAll, b.EdgeSrc)
	logits := tp.LeakyReLU(tp.Add(eDst, eSrc), l.Slope)
	alpha := tp.SegmentSoftmax(logits, offsets)

	msg := tp.MulColBroadcast(tp.Gather(wh, b.EdgeSrc), alpha)
	agg := tp.SegmentSum(msg, offsets)

	selfRepr := tp.SliceRows(h, 0, len(b.DstNodes))
	out := tp.Add(agg, l.Self.Apply(tp, params, selfRepr))
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

func baselineGCN(tp *tensor.Tape, params map[string]*tensor.Node, l *GCNLayer, b *sampler.Block, h *tensor.Node) *tensor.Node {
	msg := tp.Gather(h, b.EdgeSrc)
	agg := tp.ScatterAddRows(msg, b.EdgeDst, len(b.DstNodes))
	selfRepr := tp.SliceRows(h, 0, len(b.DstNodes))
	total := tp.Add(agg, selfRepr)
	norm := tp.MulColBroadcast(total, tp.Constant(inverseCounts(tp, b, 1)))
	out := l.W.Apply(tp, params, norm)
	if l.Act {
		out = tp.ReLU(out)
	}
	return out
}

// inverseCounts returns 1/(deg+bias) per destination node (0 for isolated
// nodes when bias is 0). The buffer is tape-owned so it recycles with the
// batch on arena-backed tapes.
func inverseCounts(tp *tensor.Tape, b *sampler.Block, bias int32) *tensor.Tensor {
	counts := make([]int32, len(b.DstNodes))
	for _, d := range b.EdgeDst {
		counts[d]++
	}
	inv := tp.Alloc(len(b.DstNodes), 1)
	for v, c := range counts {
		if c+bias > 0 {
			inv.Data[v] = 1 / float32(c+bias)
		}
	}
	return inv
}
