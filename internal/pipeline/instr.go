package pipeline

import (
	"time"

	"repro/internal/obs"
)

// Instr carries the pipeline's observability hooks: per-stage duration
// histograms, stall histograms (the registry view of Stats.LoadWait /
// Stats.BatchWait), throughput counters, a prefetch-queue depth gauge,
// and an optional span tracer. A nil *Instr disables everything; all
// hooks are lock-free, so instrumentation never perturbs stage
// ordering (the determinism contract).
type Instr struct {
	// Tracer, when non-nil, receives one span per stage execution:
	// ("pipeline", "prefetch") on the prefetch row, ("pipeline",
	// "batch_build") on per-worker rows, ("pipeline", "compute") on the
	// compute row.
	Tracer *obs.Tracer

	LoadSec      *obs.Histogram
	BuildSec     *obs.Histogram
	ComputeSec   *obs.Histogram
	LoadWaitSec  *obs.Histogram
	BatchWaitSec *obs.Histogram

	VisitsLoaded *obs.Counter
	Batches      *obs.Counter

	// QueueDepth tracks how many loaded visits sit ready in the
	// prefetch channel when the compute stage comes to take one — the
	// live "is the prefetcher ahead or behind" signal.
	QueueDepth *obs.Gauge
}

// secBuckets spans 100µs .. ~52s exponentially — wide enough for both
// per-batch kernels and whole-partition IO.
var secBuckets = obs.ExpBuckets(0.0001, 2, 20)

// NewInstr registers the pipeline metric family on r (which may be nil
// for tracing-only instrumentation) and returns hooks wired to it.
func NewInstr(r *obs.Registry, tracer *obs.Tracer) *Instr {
	return &Instr{
		Tracer:       tracer,
		LoadSec:      r.Histogram("pipeline_load_seconds", "Prefetch (visit load) stage duration.", secBuckets),
		BuildSec:     r.Histogram("pipeline_build_seconds", "Batch construction stage duration.", secBuckets),
		ComputeSec:   r.Histogram("pipeline_compute_seconds", "Compute stage duration per batch.", secBuckets),
		LoadWaitSec:  r.Histogram("pipeline_load_wait_seconds", "Compute-stage stalls waiting for a loaded visit.", secBuckets),
		BatchWaitSec: r.Histogram("pipeline_batch_wait_seconds", "Compute-stage stalls waiting for a built batch.", secBuckets),
		VisitsLoaded: r.Counter("pipeline_visits_loaded_total", "Visits completed by the prefetcher."),
		Batches:      r.Counter("pipeline_batches_total", "Batches consumed by the compute stage."),
		QueueDepth:   r.Gauge("pipeline_queue_depth", "Loaded visits queued ahead of the compute stage."),
	}
}

// instrumentEpoch wraps an epoch's stage callbacks with timing,
// counters, and spans. Applied before Run branches, so the serial
// depth-0 path is observed identically to the pipelined one.
func instrumentEpoch[V, B any](in *Instr, ep Epoch[V, B]) Epoch[V, B] {
	if in == nil {
		return ep
	}
	load, build, compute := ep.Load, ep.Build, ep.Compute
	ep.Load = func(vi int) (V, error) {
		t0 := time.Now()
		v, err := load(vi)
		d := time.Since(t0)
		in.LoadSec.Observe(d.Seconds())
		in.Tracer.Span("pipeline", "prefetch", obs.TIDPrefetch, t0, d)
		return v, err
	}
	ep.Build = func(w int, v V, bi int) (B, error) {
		t0 := time.Now()
		b, err := build(w, v, bi)
		d := time.Since(t0)
		in.BuildSec.Observe(d.Seconds())
		in.Tracer.Span("pipeline", "batch_build", obs.TIDBuilderBase+w, t0, d)
		return b, err
	}
	ep.Compute = func(v V, bi int, b B) error {
		t0 := time.Now()
		err := compute(v, bi, b)
		d := time.Since(t0)
		in.ComputeSec.Observe(d.Seconds())
		in.Batches.Inc()
		in.Tracer.Span("pipeline", "compute", obs.TIDCompute, t0, d)
		return err
	}
	return ep
}

func (in *Instr) visitLoaded() {
	if in != nil {
		in.VisitsLoaded.Inc()
	}
}

func (in *Instr) loadWait(d time.Duration) {
	if in != nil {
		in.LoadWaitSec.Observe(d.Seconds())
	}
}

func (in *Instr) batchWait(d time.Duration) {
	if in != nil {
		in.BatchWaitSec.Observe(d.Seconds())
	}
}

func (in *Instr) queueDepth(n int) {
	if in != nil {
		in.QueueDepth.Set(float64(n))
	}
}
