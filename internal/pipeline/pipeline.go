// Package pipeline implements MariusGNN's pipelined epoch execution
// (paper Fig. 2, steps A-D): a bounded-queue, multi-stage executor that
// overlaps partition IO, mini-batch construction, and model compute so
// the compute stage never stalls on the disk.
//
// An epoch is described as three produce/consume stages over an ordered
// visit plan:
//
//  1. Load — the prefetcher. A single goroutine walks the plan in order,
//     up to Depth visits ahead of the compute stage, performing the
//     visit-level IO (edge-bucket reads, async node-partition staging)
//     and CPU preparation (adjacency construction, shuffling, batch-seed
//     derivation). Because one goroutine runs every Load in plan order,
//     Load callbacks may carry sequential state across visits.
//  2. Build — batch construction. A pool of Workers goroutines samples
//     mini batches (DENSE multi-hop sampling, negative sampling) from
//     loaded visits, at most Workers+Depth batches in flight beyond the
//     one being computed.
//  3. Compute — the trainer. The caller's goroutine admits each visit
//     (partition-buffer swap) and consumes its batches in strict
//     (visit, batch) order.
//
// Determinism contract: Compute runs in the caller's goroutine in exact
// plan order, and Build implementations are required to be functions of
// (visit, batch index) only — so a pipelined epoch computes the same
// batch sequence as the serial depth-0 path, and (given deterministic
// kernels) the same losses, at every Depth and Workers setting. The only
// thing concurrency changes is wall-clock overlap.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Config sizes the pipeline.
type Config struct {
	// Depth is how many visits the prefetcher may load ahead of the one
	// being computed. 0 disables cross-visit prefetch: visits are loaded
	// inline by the compute goroutine (the serial path).
	Depth int
	// Workers is the number of batch-construction goroutines (minimum 1).
	// With Depth == 0 and Workers == 1 the whole epoch runs inline in the
	// caller's goroutine with no channels at all.
	Workers int
	// Instr, when non-nil, attaches lock-free metrics and trace spans
	// to every stage. It never changes stage ordering or results.
	Instr *Instr
}

// Stats reports how a pipelined epoch behaved. All durations are
// measured from the compute stage's point of view: time it spent blocked
// waiting on an upstream stage.
type Stats struct {
	// Depth and Workers echo the effective configuration.
	Depth   int
	Workers int
	// VisitsLoaded counts visits the prefetcher completed.
	VisitsLoaded int
	// LoadWait is time the compute stage waited for a visit to finish
	// loading (prefetcher behind).
	LoadWait time.Duration
	// BatchWait is time the compute stage waited for a prepared batch
	// (builders behind).
	BatchWait time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("pipeline depth=%d workers=%d loaded=%d load-wait=%s batch-wait=%s",
		s.Depth, s.Workers, s.VisitsLoaded, s.LoadWait.Round(time.Millisecond), s.BatchWait.Round(time.Millisecond))
}

// Epoch describes one epoch's stages over NumVisits ordered visits, each
// producing some number of batches. V is the loaded-visit type, B the
// prepared-batch type.
type Epoch[V, B any] struct {
	NumVisits int
	// Load performs visit vi's IO and preparation. Called in strict plan
	// order from a single goroutine (the prefetcher when Depth > 0, the
	// caller otherwise), so it may carry sequential state across visits.
	Load func(vi int) (V, error)
	// Admit makes visit vi resident (e.g. the partition-buffer swap).
	// Called from the compute goroutine, in order, before any of the
	// visit's batches compute.
	Admit func(vi int, v V) error
	// NumBatches reports how many batches visit vi produces.
	NumBatches func(v V) int
	// Build constructs batch bi of a loaded visit. Called from worker
	// goroutine w in [0, Workers), possibly out of order and concurrently
	// with Compute; it must depend only on (v, bi), never on w or timing.
	Build func(w int, v V, bi int) (B, error)
	// Compute consumes batch bi of visit vi. Called from the compute
	// goroutine in strict (visit, batch) order.
	Compute func(v V, bi int, b B) error
	// Release, when non-nil, recycles a visit's buffers after its last
	// batch has computed (or the epoch aborted). It may be called from
	// the prefetcher goroutine for visits abandoned during an abort, so
	// implementations must be safe for concurrent use.
	Release func(v V)
}

// loaded pairs a prefetched visit with its load error.
type loaded[V any] struct {
	v   V
	err error
}

// Run executes one epoch. It returns the first error from any stage (or
// ctx.Err() on cancellation), after all pipeline goroutines have exited;
// no stage callback is ever invoked again once Run returns.
func Run[V, B any](ctx context.Context, cfg Config, ep Epoch[V, B], st *Stats) error {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.Depth
	if depth < 0 {
		depth = 0
	}
	if st != nil {
		st.Depth, st.Workers = depth, workers
	}
	if ep.NumVisits == 0 {
		return nil
	}
	ep = instrumentEpoch(cfg.Instr, ep)

	if depth == 0 && workers == 1 {
		return runSerial(ctx, ep, st, cfg.Instr)
	}

	r := &run[V, B]{
		ep:   ep,
		cfg:  Config{Depth: depth, Workers: workers},
		st:   st,
		in:   cfg.Instr,
		stop: make(chan struct{}),
	}

	if depth == 0 {
		// Visits load inline; only batch construction is concurrent.
		defer r.abort()
		for vi := 0; vi < ep.NumVisits; vi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := ep.Load(vi)
			if err != nil {
				return err
			}
			r.addLoaded()
			if err := r.runVisit(ctx, vi, v); err != nil {
				return err
			}
		}
		return nil
	}

	// Prefetcher: loads visits in order, up to `depth` ahead. With buffer
	// depth-1, the channel holds depth-1 loaded visits, the prefetcher
	// blocks holding one more, and the compute stage holds the one in
	// progress — exactly depth visits loaded ahead of the trainer.
	ch := make(chan loaded[V], depth-1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		for vi := 0; vi < ep.NumVisits; vi++ {
			select {
			case <-r.stop:
				return
			default:
			}
			v, err := ep.Load(vi)
			if err == nil {
				r.addLoaded()
			}
			select {
			case ch <- loaded[V]{v, err}:
			case <-r.stop:
				if ep.Release != nil && err == nil {
					ep.Release(v)
				}
				return
			}
			if err != nil {
				return
			}
		}
	}()

	err := r.consumeVisits(ctx, ch)
	r.abort()
	<-done // never return while the prefetcher may still touch trainer state
	// Recycle visits the prefetcher had queued before the abort.
	for lv := range ch {
		if ep.Release != nil && lv.err == nil {
			ep.Release(lv.v)
		}
	}
	return err
}

// runSerial is the fully-inline path: no goroutines, no channels, and
// therefore bit-reproducible scheduling.
func runSerial[V, B any](ctx context.Context, ep Epoch[V, B], st *Stats, in *Instr) error {
	for vi := 0; vi < ep.NumVisits; vi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := ep.Load(vi)
		if err != nil {
			return err
		}
		if st != nil {
			st.VisitsLoaded++
		}
		in.visitLoaded()
		err = func() error {
			if ep.Release != nil {
				defer ep.Release(v)
			}
			if err := ep.Admit(vi, v); err != nil {
				return err
			}
			n := ep.NumBatches(v)
			for bi := 0; bi < n; bi++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				b, err := ep.Build(0, v, bi)
				if err != nil {
					return err
				}
				if err := ep.Compute(v, bi, b); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// run carries the shared state of one concurrent Run.
type run[V, B any] struct {
	ep       Epoch[V, B]
	cfg      Config
	st       *Stats
	in       *Instr
	stop     chan struct{}
	stopOnce sync.Once
	mu       sync.Mutex // guards st
}

// abort releases every stage blocked on the pipeline. Safe to call from
// any goroutine, any number of times.
func (r *run[V, B]) abort() { r.stopOnce.Do(func() { close(r.stop) }) }

func (r *run[V, B]) addLoaded() {
	r.in.visitLoaded()
	if r.st == nil {
		return
	}
	r.mu.Lock()
	r.st.VisitsLoaded++
	r.mu.Unlock()
}

func (r *run[V, B]) addLoadWait(d time.Duration) {
	r.in.loadWait(d)
	if r.st == nil {
		return
	}
	r.mu.Lock()
	r.st.LoadWait += d
	r.mu.Unlock()
}

func (r *run[V, B]) addBatchWait(d time.Duration) {
	r.in.batchWait(d)
	if r.st == nil {
		return
	}
	r.mu.Lock()
	r.st.BatchWait += d
	r.mu.Unlock()
}

// consumeVisits is the compute stage over a prefetched visit stream.
func (r *run[V, B]) consumeVisits(ctx context.Context, ch <-chan loaded[V]) error {
	for vi := 0; vi < r.ep.NumVisits; vi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.in.queueDepth(len(ch))
		t0 := time.Now()
		lv, ok := <-ch
		r.addLoadWait(time.Since(t0))
		if !ok {
			// The prefetcher stopped early without delivering an error;
			// only possible after an abort (e.g. cancellation).
			if err := ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("pipeline: prefetcher stopped after %d/%d visits", vi, r.ep.NumVisits)
		}
		if lv.err != nil {
			return lv.err
		}
		if err := r.runVisit(ctx, vi, lv.v); err != nil {
			return err
		}
	}
	return nil
}

// slot is one batch's build result; done is closed when it is filled.
type slot[B any] struct {
	b    B
	err  error
	done chan struct{}
}

// runVisit admits one loaded visit and runs its batches through the
// build worker pool, consuming results in order. The number of batches
// building or built-but-unconsumed is bounded by Workers+Depth.
func (r *run[V, B]) runVisit(ctx context.Context, vi int, v V) (err error) {
	if r.ep.Release != nil {
		defer r.ep.Release(v)
	}
	if err := r.ep.Admit(vi, v); err != nil {
		return err
	}
	n := r.ep.NumBatches(v)
	if n == 0 {
		return nil
	}

	slots := make([]slot[B], n)
	for i := range slots {
		slots[i].done = make(chan struct{})
	}
	// Work queue: pre-filled and closed, so workers need no feeder and
	// simply drain it. Tokens bound in-flight batches: a worker acquires
	// one before taking an index and the compute loop releases it after
	// consuming the batch, so indices are only assigned to token holders
	// — the batch the compute stage needs next is always being built and
	// the pipeline can never deadlock on the window.
	window := r.cfg.Workers + r.cfg.Depth
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	tokens := make(chan struct{}, window)

	// Per-visit worker pool: visits are admitted serially, so at most one
	// pool exists at a time. Workers must fully exit before runVisit
	// returns (they touch trainer-owned batcher state that Release may
	// recycle), so on error abort the whole run before waiting for them.
	var wg sync.WaitGroup
	defer func() {
		if err != nil {
			r.abort()
		}
		wg.Wait()
	}()
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case tokens <- struct{}{}:
				case <-r.stop:
					return
				}
				i, ok := <-idx
				if !ok {
					return
				}
				b, err := r.ep.Build(w, v, i)
				slots[i].b, slots[i].err = b, err
				close(slots[i].done)
			}
		}(w)
	}

	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		<-slots[i].done
		r.addBatchWait(time.Since(t0))
		if slots[i].err != nil {
			return slots[i].err
		}
		if err := r.ep.Compute(v, i, slots[i].b); err != nil {
			return err
		}
		<-tokens
	}
	return nil
}
