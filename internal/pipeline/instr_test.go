package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// instrEpoch builds a deterministic epoch whose compute stage appends
// to out.
func instrEpoch(out *[]string) Epoch[int, string] {
	var mu sync.Mutex
	return Epoch[int, string]{
		NumVisits:  4,
		Load:       func(vi int) (int, error) { return vi * 10, nil },
		Admit:      func(int, int) error { return nil },
		NumBatches: func(int) int { return 3 },
		Build:      func(w, v, bi int) (string, error) { return fmt.Sprintf("%d/%d", v, bi), nil },
		Compute: func(v, bi int, b string) error {
			mu.Lock()
			*out = append(*out, b)
			mu.Unlock()
			return nil
		},
	}
}

// Instrumentation must not change the computed sequence, and must
// count what actually ran.
func TestInstrumentedRunMatchesPlain(t *testing.T) {
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 2, Workers: 2}} {
		var plain, instr []string
		if err := Run(context.Background(), cfg, instrEpoch(&plain), nil); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		in := NewInstr(reg, nil)
		cfg.Instr = in
		if err := Run(context.Background(), cfg, instrEpoch(&instr), nil); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(plain) != fmt.Sprint(instr) {
			t.Fatalf("cfg %+v: instrumented sequence differs:\n%v\n%v", cfg, plain, instr)
		}
		if got := in.VisitsLoaded.Value(); got != 4 {
			t.Errorf("visits loaded = %d, want 4", got)
		}
		if got := in.Batches.Value(); got != 12 {
			t.Errorf("batches = %d, want 12", got)
		}
		if got := in.ComputeSec.Snapshot().Count; got != 12 {
			t.Errorf("compute observations = %d, want 12", got)
		}
	}
}

// A traced run emits spans for all three pipeline stages, and the file
// is valid Chrome Trace JSON.
func TestInstrumentedRunSpans(t *testing.T) {
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 2, Workers: 2}} {
		var b strings.Builder
		tr := obs.NewTracer(nopCloser{&b})
		cfg.Instr = NewInstr(nil, tr)
		var out []string
		if err := Run(context.Background(), cfg, instrEpoch(&out), nil); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		var events []struct {
			Cat  string `json:"cat"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
			t.Fatalf("cfg %+v: invalid trace JSON: %v", cfg, err)
		}
		names := map[string]int{}
		for _, e := range events {
			if e.Cat == "pipeline" {
				names[e.Name]++
			}
		}
		if names["prefetch"] != 4 || names["batch_build"] != 12 || names["compute"] != 12 {
			t.Errorf("cfg %+v: span counts = %v, want prefetch=4 batch_build=12 compute=12", cfg, names)
		}
	}
}

type nopCloser struct{ *strings.Builder }

func (nopCloser) Close() error { return nil }
