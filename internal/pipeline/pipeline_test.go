package pipeline

import (
	"context"
	"errors"
	"fmt"

	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// traceEpoch builds an Epoch over nVisits × batchesPer that records the
// exact callback sequence seen by the compute side and counts everything.
type traceEpoch struct {
	mu       sync.Mutex
	events   []string // in compute order: admit/compute entries
	loads    []int    // visit order seen by Load
	released atomic.Int64
	inFlight atomic.Int64 // batches built but not yet consumed
	maxIn    atomic.Int64
}

func (te *traceEpoch) epoch(nVisits, batchesPer int, buildDelay func(vi, bi int) time.Duration) Epoch[int, string] {
	return Epoch[int, string]{
		NumVisits: nVisits,
		Load: func(vi int) (int, error) {
			te.mu.Lock()
			te.loads = append(te.loads, vi)
			te.mu.Unlock()
			return vi, nil
		},
		Admit: func(vi int, v int) error {
			te.mu.Lock()
			te.events = append(te.events, fmt.Sprintf("admit %d", v))
			te.mu.Unlock()
			return nil
		},
		NumBatches: func(v int) int { return batchesPer },
		Build: func(w int, v int, bi int) (string, error) {
			if buildDelay != nil {
				time.Sleep(buildDelay(v, bi))
			}
			in := te.inFlight.Add(1)
			for {
				max := te.maxIn.Load()
				if in <= max || te.maxIn.CompareAndSwap(max, in) {
					break
				}
			}
			return fmt.Sprintf("b%d.%d", v, bi), nil
		},
		Compute: func(v int, bi int, b string) error {
			te.inFlight.Add(-1)
			te.mu.Lock()
			te.events = append(te.events, b)
			te.mu.Unlock()
			return nil
		},
		Release: func(v int) { te.released.Add(1) },
	}
}

func wantEvents(nVisits, batchesPer int) []string {
	var want []string
	for v := 0; v < nVisits; v++ {
		want = append(want, fmt.Sprintf("admit %d", v))
		for b := 0; b < batchesPer; b++ {
			want = append(want, fmt.Sprintf("b%d.%d", v, b))
		}
	}
	return want
}

// Every (depth, workers) combination must deliver the identical ordered
// event sequence: admit visits in plan order, compute batches in batch
// order — the determinism contract the trainers rely on.
func TestOrderingInvariantAcrossConfigs(t *testing.T) {
	const nVisits, batchesPer = 5, 7
	want := wantEvents(nVisits, batchesPer)
	for _, cfg := range []Config{
		{Depth: 0, Workers: 1},
		{Depth: 0, Workers: 4},
		{Depth: 1, Workers: 1},
		{Depth: 2, Workers: 3},
		{Depth: 4, Workers: 8},
	} {
		te := &traceEpoch{}
		// Scrambled build latencies try hard to reorder the pipeline
		// (goroutine-safe: pure function of the batch coordinates).
		delay := func(vi, bi int) time.Duration {
			return time.Duration((vi*37+bi*101)%7) * 50 * time.Microsecond
		}
		var st Stats
		if err := Run(context.Background(), cfg, te.epoch(nVisits, batchesPer, delay), &st); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if len(te.events) != len(want) {
			t.Fatalf("cfg %+v: %d events, want %d", cfg, len(te.events), len(want))
		}
		for i := range want {
			if te.events[i] != want[i] {
				t.Fatalf("cfg %+v: event[%d] = %q, want %q\nfull: %v", cfg, i, te.events[i], want[i], te.events)
			}
		}
		for i, v := range te.loads {
			if v != i {
				t.Fatalf("cfg %+v: loads out of order: %v", cfg, te.loads)
			}
		}
		if got := te.released.Load(); got != nVisits {
			t.Fatalf("cfg %+v: released %d visits, want %d", cfg, got, nVisits)
		}
		if st.VisitsLoaded != nVisits {
			t.Fatalf("cfg %+v: stats loaded %d, want %d", cfg, st.VisitsLoaded, nVisits)
		}
	}
}

// The queue is bounded: no more than Workers+Depth batches may be built
// but unconsumed, even when builders are much faster than compute.
func TestBoundedQueue(t *testing.T) {
	cfg := Config{Depth: 2, Workers: 3}
	te := &traceEpoch{}
	ep := te.epoch(3, 40, nil)
	inner := ep.Compute
	ep.Compute = func(v int, bi int, b string) error {
		time.Sleep(500 * time.Microsecond) // slow consumer
		return inner(v, bi, b)
	}
	if err := Run(context.Background(), cfg, ep, nil); err != nil {
		t.Fatal(err)
	}
	limit := int64(cfg.Workers + cfg.Depth)
	if got := te.maxIn.Load(); got > limit {
		t.Fatalf("max %d batches in flight, want <= %d", got, limit)
	}
}

func TestLoadErrorAborts(t *testing.T) {
	boom := errors.New("load failed")
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 0, Workers: 3}, {Depth: 2, Workers: 2}} {
		te := &traceEpoch{}
		ep := te.epoch(6, 2, nil)
		inner := ep.Load
		ep.Load = func(vi int) (int, error) {
			if vi == 3 {
				return 0, boom
			}
			return inner(vi)
		}
		if err := Run(context.Background(), cfg, ep, nil); !errors.Is(err, boom) {
			t.Fatalf("cfg %+v: err = %v, want %v", cfg, err, boom)
		}
	}
}

func TestBuildErrorAborts(t *testing.T) {
	boom := errors.New("build failed")
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 0, Workers: 4}, {Depth: 3, Workers: 2}} {
		te := &traceEpoch{}
		ep := te.epoch(4, 6, nil)
		inner := ep.Build
		ep.Build = func(w int, v int, bi int) (string, error) {
			if v == 1 && bi == 3 {
				return "", boom
			}
			return inner(w, v, bi)
		}
		if err := Run(context.Background(), cfg, ep, nil); !errors.Is(err, boom) {
			t.Fatalf("cfg %+v: err = %v, want %v", cfg, err, boom)
		}
	}
}

func TestComputeErrorAborts(t *testing.T) {
	boom := errors.New("compute failed")
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 0, Workers: 4}, {Depth: 2, Workers: 3}} {
		te := &traceEpoch{}
		ep := te.epoch(5, 4, nil)
		inner := ep.Compute
		ep.Compute = func(v int, bi int, b string) error {
			if v == 2 && bi == 1 {
				return boom
			}
			return inner(v, bi, b)
		}
		if err := Run(context.Background(), cfg, ep, nil); !errors.Is(err, boom) {
			t.Fatalf("cfg %+v: err = %v, want %v", cfg, err, boom)
		}
		// Everything computed before the failure is still in order.
		want := wantEvents(5, 4)
		for i, e := range te.events {
			if e != want[i] {
				t.Fatalf("cfg %+v: prefix diverged at %d: %q != %q", cfg, i, e, want[i])
			}
		}
	}
}

func TestContextCancellationMidEpoch(t *testing.T) {
	for _, cfg := range []Config{{Depth: 0, Workers: 1}, {Depth: 2, Workers: 3}} {
		ctx, cancel := context.WithCancel(context.Background())
		te := &traceEpoch{}
		ep := te.epoch(8, 4, nil)
		inner := ep.Compute
		ep.Compute = func(v int, bi int, b string) error {
			if v == 1 && bi == 0 {
				cancel()
			}
			return inner(v, bi, b)
		}
		err := Run(ctx, cfg, ep, nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cfg %+v: err = %v, want context.Canceled", cfg, err)
		}
	}
}

func TestEmptyEpochAndEmptyVisits(t *testing.T) {
	if err := Run(context.Background(), Config{Depth: 2, Workers: 2}, Epoch[int, string]{NumVisits: 0}, nil); err != nil {
		t.Fatal(err)
	}
	// Visits with zero batches must still be admitted and released.
	te := &traceEpoch{}
	ep := te.epoch(4, 0, nil)
	var st Stats
	if err := Run(context.Background(), Config{Depth: 2, Workers: 2}, ep, &st); err != nil {
		t.Fatal(err)
	}
	if len(te.events) != 4 || te.released.Load() != 4 {
		t.Fatalf("events %v released %d", te.events, te.released.Load())
	}
}

// The prefetcher genuinely runs ahead: with Depth=2 and a slow consumer,
// Load(vi+1) must complete before Compute of visit vi finishes.
func TestPrefetcherRunsAhead(t *testing.T) {
	const nVisits = 4
	loadDone := make([]atomic.Bool, nVisits)
	overlapped := atomic.Bool{}
	ep := Epoch[int, int]{
		NumVisits: nVisits,
		Load: func(vi int) (int, error) {
			loadDone[vi].Store(true)
			return vi, nil
		},
		Admit:      func(vi int, v int) error { return nil },
		NumBatches: func(v int) int { return 1 },
		Build:      func(w, v, bi int) (int, error) { return v, nil },
		Compute: func(v int, bi int, b int) error {
			// Give the prefetcher time, then check it got ahead.
			time.Sleep(5 * time.Millisecond)
			if v+1 < nVisits && loadDone[v+1].Load() {
				overlapped.Store(true)
			}
			return nil
		},
	}
	if err := Run(context.Background(), Config{Depth: 2, Workers: 1}, ep, nil); err != nil {
		t.Fatal(err)
	}
	if !overlapped.Load() {
		t.Fatal("prefetcher never loaded visit vi+1 while visit vi was computing")
	}
}
