package storage

import (
	"repro/internal/obs"
)

// RegisterStats bridges a store's atomic IO counters into r as
// counter/gauge functions, labeled store=<store> so node and edge
// stores coexist in one registry. Values are read live at exposition
// time; nothing is added to the store's hot path.
func RegisterStats(r *obs.Registry, store string, st *Stats) {
	if r == nil || st == nil {
		return
	}
	l := obs.L("store", store)
	r.CounterFunc("storage_bytes_read_total", "Bytes read from backing files.",
		func() float64 { return float64(st.BytesRead.Load()) }, l)
	r.CounterFunc("storage_bytes_written_total", "Bytes written to backing files.",
		func() float64 { return float64(st.BytesWritten.Load()) }, l)
	r.CounterFunc("storage_reads_total", "Read operations issued.",
		func() float64 { return float64(st.Reads.Load()) }, l)
	r.CounterFunc("storage_writes_total", "Write operations issued.",
		func() float64 { return float64(st.Writes.Load()) }, l)
	r.CounterFunc("storage_swaps_total", "Partition buffer swaps.",
		func() float64 { return float64(st.Swaps.Load()) }, l)
	r.CounterFunc("storage_prefetch_hits_total", "Partition loads served from prefetch staging.",
		func() float64 { return float64(st.PrefetchHits.Load()) }, l)
	r.CounterFunc("storage_prefetch_misses_total", "Partition loads that had to read synchronously.",
		func() float64 { return float64(st.PrefetchMisses.Load()) }, l)
	r.CounterFunc("storage_io_retries_total", "Transient IO errors absorbed by the bounded-backoff retry loop.",
		func() float64 { return float64(st.Retries.Load()) }, l)
	r.CounterFunc("storage_io_gaveup_total", "IO operations that exhausted the retry budget and surfaced the error.",
		func() float64 { return float64(st.Gaveup.Load()) }, l)
	r.GaugeFunc("storage_prefetch_hit_rate", "Prefetch hits / (hits + misses); 0 before any load.",
		func() float64 {
			h, m := st.PrefetchHits.Load(), st.PrefetchMisses.Load()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		}, l)
}

// Register bridges the fragment cache's hit/miss counters into r.
func (c *FragCache) Register(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	r.CounterFunc("storage_fragcache_hits_total", "CSR fragment cache hits.",
		func() float64 { return float64(c.hits.Load()) })
	r.CounterFunc("storage_fragcache_misses_total", "CSR fragment builds (cache misses).",
		func() float64 { return float64(c.misses.Load()) })
	r.GaugeFunc("storage_fragcache_hit_rate", "Fragment cache hits / lookups; 0 before any lookup.",
		func() float64 {
			h, m := c.hits.Load(), c.misses.Load()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	r.GaugeFunc("storage_fragcache_entries", "Fragments currently cached.",
		func() float64 {
			c.mu.Lock()
			n := len(c.frags)
			c.mu.Unlock()
			return float64(n)
		})
}

// SetTracer attaches a span recorder to the store: each asynchronous
// evict write-back emits a ("storage", "evict_writeback") span. Call
// before training starts; passing nil disables spans.
func (s *DiskNodeStore) SetTracer(t *obs.Tracer) {
	s.tracer.Store(t)
}
