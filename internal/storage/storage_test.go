package storage

import (
	"math/rand"
	"testing"

	"time"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func TestDiskNodeStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 100, 8, 10, 4
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
		Init: func(id int32, row []float32) {
			for j := range row {
				row[j] = float32(id)*100 + float32(j)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.LoadSet([]int{0, 3, 7, 9}); err != nil {
		t.Fatal(err)
	}
	ids := []int32{0, 35, 74, 99, 5}
	out := tensor.New(len(ids), dim)
	if err := store.Gather(ids, out); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		for j := 0; j < dim; j++ {
			if want := float32(id)*100 + float32(j); out.At(i, j) != want {
				t.Fatalf("node %d dim %d: got %v want %v", id, j, out.At(i, j), want)
			}
		}
	}
	// Gathering a non-resident node must fail.
	if err := store.Gather([]int32{15}, tensor.New(1, dim)); err == nil {
		t.Fatal("expected error for non-resident node")
	}
}

func TestDiskNodeStoreUpdatePersistsAcrossSwaps(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 60, 4, 6, 2
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	opt := nn.NewSparseAdaGrad(1.0)
	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	grads := tensor.New(1, dim)
	grads.Fill(1)
	if err := store.ApplyGrads([]int32{5}, grads, opt); err != nil {
		t.Fatal(err)
	}
	before := tensor.New(1, dim)
	if err := store.Gather([]int32{5}, before); err != nil {
		t.Fatal(err)
	}
	// Swap partition 0 out and back in: the update must survive.
	if err := store.LoadSet([]int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := store.LoadSet([]int{0, 4}); err != nil {
		t.Fatal(err)
	}
	after := tensor.New(1, dim)
	if err := store.Gather([]int32{5}, after); err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after, 0) {
		t.Fatalf("update lost across swap: %v vs %v", before, after)
	}
	// AdaGrad state must persist too: a second identical gradient must
	// move the row less than the first did.
	if err := store.ApplyGrads([]int32{5}, grads, opt); err != nil {
		t.Fatal(err)
	}
	second := tensor.New(1, dim)
	if err := store.Gather([]int32{5}, second); err != nil {
		t.Fatal(err)
	}
	step1 := float64(before.At(0, 0)) // from 0
	step2 := float64(second.At(0, 0) - after.At(0, 0))
	if !(step2 < 0 && step1 < 0 && step2 > step1) {
		t.Fatalf("AdaGrad state not persisted: step1=%v step2=%v", step1, step2)
	}
}

func TestDiskNodeStorePrefetchMatchesDirectLoad(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 80, 6, 8, 3
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c,
		Init: func(id int32, row []float32) { row[0] = float32(id) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.LoadSet([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	store.Prefetch([]int{5, 6})
	if err := store.LoadSet([]int{5, 6, 2}); err != nil {
		t.Fatal(err)
	}
	out := tensor.New(1, dim)
	if err := store.Gather([]int32{55}, out); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 55 {
		t.Fatalf("prefetched data wrong: %v", out.At(0, 0))
	}
	res := store.Resident()
	if len(res) != 3 || res[0] != 2 || res[1] != 5 || res[2] != 6 {
		t.Fatalf("resident = %v", res)
	}
}

func TestDiskMatchesMemoryStoreUnderRandomOps(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 50, 4, 5, 5 // capacity = all partitions
	pt := partition.New(n, p)
	table := tensor.New(n, dim)
	rng := rand.New(rand.NewSource(1))
	table.RandNormal(rng, 1)
	memStore := NewMemoryNodeStore(table.Clone())
	diskStore, err := CreateDiskNodeStore(DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
		Init: func(id int32, row []float32) { copy(row, table.Row(int(id))) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer diskStore.Close()
	if err := diskStore.LoadSet([]int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	optM := nn.NewSparseAdaGrad(0.1)
	optD := nn.NewSparseAdaGrad(0.1)
	for step := 0; step < 50; step++ {
		ids := make([]int32, rng.Intn(8)+1)
		for i := range ids {
			ids[i] = int32(rng.Intn(n))
		}
		grads := tensor.New(len(ids), dim)
		grads.RandNormal(rng, 1)
		if err := memStore.ApplyGrads(ids, grads, optM); err != nil {
			t.Fatal(err)
		}
		if err := diskStore.ApplyGrads(ids, grads, optD); err != nil {
			t.Fatal(err)
		}
	}
	all, err := diskStore.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !all.Equal(memStore.Table(), 1e-5) {
		t.Fatal("disk and memory stores diverged")
	}
}

func TestDiskNodeStoreIOCounters(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 40, 4, 4, 2
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{Dir: dir, Part: pt, Dim: dim, Capacity: c})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	snap := store.Stats().Snapshot()
	perPart := int64(pt.PartSize * dim * 4)
	if snap.BytesRead != 2*perPart {
		t.Fatalf("bytes read = %d, want %d", snap.BytesRead, 2*perPart)
	}
	if err := store.LoadSet([]int{1, 3}); err != nil {
		t.Fatal(err)
	}
	snap2 := store.Stats().Snapshot().Sub(snap)
	if snap2.BytesRead != perPart || snap2.Swaps != 1 {
		t.Fatalf("after swap: %+v", snap2)
	}
}

func TestEdgeStoreDiskMatchesMemory(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	const n, p = 100, 5
	pt := partition.New(n, p)
	edges := make([]graph.Edge, 500)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(3)), Dst: int32(rng.Intn(n))}
	}
	mem := NewMemoryEdgeStore(pt, edges)
	disk, err := CreateDiskEdgeStore(dir, pt, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			a, _ := mem.ReadBucket(i, j, nil)
			b, err := disk.ReadBucket(i, j, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("bucket (%d,%d): %d vs %d edges", i, j, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("bucket (%d,%d) edge %d differs", i, j, k)
				}
			}
			if mem.BucketLen(i, j) != disk.BucketLen(i, j) {
				t.Fatal("BucketLen mismatch")
			}
		}
	}
}

func TestEdgeStoreStatsUnified(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	const n, p = 60, 3
	pt := partition.New(n, p)
	edges := make([]graph.Edge, 200)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	disk, err := CreateDiskEdgeStore(dir, pt, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	// Both backends satisfy the interface and expose identical counters
	// for identical access patterns: one non-empty ReadBucket accounts
	// one read of len(bucket)*12 bytes on either store (empty buckets
	// are skipped by both).
	var snaps []StatsSnapshot
	for _, store := range []EdgeStore{NewMemoryEdgeStore(pt, edges), disk} {
		var buf []graph.Edge
		var want int64
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				buf = buf[:0] // documented reuse pattern
				buf, err = store.ReadBucket(i, j, buf)
				if err != nil {
					t.Fatal(err)
				}
				if store.BucketLen(i, j) > 0 {
					want += int64(store.BucketLen(i, j)) * edgeBytes
				}
			}
		}
		snap := store.Stats().Snapshot()
		if snap.BytesRead != want {
			t.Fatalf("%T: bytes read %d, want %d", store, snap.BytesRead, want)
		}
		if snap.Reads == 0 {
			t.Fatalf("%T: no reads counted", store)
		}
		snaps = append(snaps, snap)
	}
	if snaps[0].Reads != snaps[1].Reads || snaps[0].BytesRead != snaps[1].BytesRead {
		t.Fatalf("backends diverge: memory %+v vs disk %+v", snaps[0], snaps[1])
	}
}

func TestPrefetchHitMissCountersAndStagingPool(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 80, 6, 8, 3
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{Dir: dir, Part: pt, Dim: dim, Capacity: c})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Initial fill with nothing staged: all misses.
	if err := store.LoadSet([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	snap := store.Stats().Snapshot()
	if snap.PrefetchMisses != 3 || snap.PrefetchHits != 0 {
		t.Fatalf("initial fill: hits=%d misses=%d, want 0/3", snap.PrefetchHits, snap.PrefetchMisses)
	}

	// Completed prefetches count as hits when consumed (a load that
	// blocks on a still-in-flight staged read would count as a miss, so
	// wait for the staging reads to land first).
	store.Prefetch([]int{4, 5})
	store.pending.Wait()
	if err := store.LoadSet([]int{2, 4, 5}); err != nil {
		t.Fatal(err)
	}
	d := store.Stats().Snapshot().Sub(snap)
	if d.PrefetchHits != 2 || d.PrefetchMisses != 0 {
		t.Fatalf("after prefetch: hits=%d misses=%d, want 2/0", d.PrefetchHits, d.PrefetchMisses)
	}

	// The staging buffers were recycled: further prefetch cycles must not
	// grow the pool beyond capacity.
	for round := 0; round < 5; round++ {
		a, b := (round*2)%p, (round*2+1)%p
		store.Prefetch([]int{a, b})
		store.pending.Wait()
		if err := store.LoadSet([]int{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	store.stagedMu.Lock()
	poolLen := len(store.stagePool)
	store.stagedMu.Unlock()
	if poolLen == 0 {
		t.Fatal("staging pool never recycled a buffer")
	}
	if poolLen > c {
		t.Fatalf("staging pool grew to %d buffers, capacity is %d", poolLen, c)
	}
}

// A partition staged while resident must never be consumed after a dirty
// eviction wrote newer bytes: the eviction drops the stale entry.
func TestStaleStagedEntryDroppedOnEvict(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 40, 4, 4, 2
	pt := partition.New(n, p)
	store, err := CreateDiskNodeStore(DiskStoreConfig{Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opt := nn.NewSparseAdaGrad(1.0)

	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Stage partition 0 while it is resident (simulates a prefetcher
	// racing LoadSet), then dirty it and evict it.
	store.stagedMu.Lock()
	delete(store.staged, 0)
	store.stagedMu.Unlock()
	store.mu.Lock()
	delete(store.resident, 0) // make Prefetch believe 0 is not resident
	store.mu.Unlock()
	store.Prefetch([]int{0})
	store.pending.Wait()
	store.mu.Lock()
	store.resident[0] = store.slotPart[0] // restore residency (slot 0 holds partition 0)
	for slot, part := range store.slotPart {
		if part == 0 {
			store.resident[0] = slot
		}
	}
	store.mu.Unlock()

	grads := tensor.New(1, dim)
	grads.Fill(1)
	if err := store.ApplyGrads([]int32{0}, grads, opt); err != nil {
		t.Fatal(err)
	}
	updated := tensor.New(1, dim)
	if err := store.Gather([]int32{0}, updated); err != nil {
		t.Fatal(err)
	}
	// Evict 0 (write-back) and bring it back: the stale staged bytes
	// (pre-update zeros) must not resurface.
	if err := store.LoadSet([]int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	back := tensor.New(1, dim)
	if err := store.Gather([]int32{0}, back); err != nil {
		t.Fatal(err)
	}
	if !updated.Equal(back, 0) {
		t.Fatalf("stale staged data resurfaced: %v vs %v", updated, back)
	}
}

func TestThrottleEnforcesBandwidth(t *testing.T) {
	th := NewThrottle(1 << 20) // 1 MiB/s
	start := time.Now()
	th.Wait(1 << 18) // 256 KiB => 250ms
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		t.Fatalf("throttle too fast: %v", elapsed)
	}
}
