package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/partition"
)

// StreamingEdgeWriter bucket-sorts an edge stream that is too large to
// materialize in memory, the preprocessing path used for the hyperlink-
// scale experiment (paper §7.3). Edges are appended in chunks; each bucket
// accumulates in its own spill file; Finalize concatenates the spill files
// into the single bucket-sorted layout DiskEdgeStore serves.
type StreamingEdgeWriter struct {
	dir     string
	pt      partition.Partitioning
	files   []*os.File
	writers []*bufio.Writer
	counts  []int64
}

// NewStreamingEdgeWriter creates spill files under dir.
func NewStreamingEdgeWriter(dir string, pt partition.Partitioning) (*StreamingEdgeWriter, error) {
	p := pt.NumPartitions
	w := &StreamingEdgeWriter{
		dir:     dir,
		pt:      pt,
		files:   make([]*os.File, p*p),
		writers: make([]*bufio.Writer, p*p),
		counts:  make([]int64, p*p),
	}
	for b := range w.files {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("bucket-%d.spill", b)))
		if err != nil {
			w.Close()
			return nil, err
		}
		w.files[b] = f
		w.writers[b] = bufio.NewWriterSize(f, 1<<16)
	}
	return w, nil
}

// Append routes a chunk of edges to their bucket spill files.
func (w *StreamingEdgeWriter) Append(edges []graph.Edge) error {
	var rec [edgeBytes]byte
	for _, e := range edges {
		i, j := w.pt.Bucket(e)
		b := w.pt.BucketID(i, j)
		encodeEdge(e, rec[:])
		if _, err := w.writers[b].Write(rec[:]); err != nil {
			return err
		}
		w.counts[b]++
	}
	return nil
}

// Finalize concatenates the spill files into edges.bin and returns a
// DiskEdgeStore serving it. The writer is closed and its spill files
// removed.
func (w *StreamingEdgeWriter) Finalize(throttle *Throttle) (*DiskEdgeStore, error) {
	out, err := os.Create(filepath.Join(w.dir, "edges.bin"))
	if err != nil {
		return nil, err
	}
	p := w.pt.NumPartitions
	offsets := make([]int64, p*p+1)
	var pos int64
	for b := 0; b < p*p; b++ {
		offsets[b] = pos
		if err := w.writers[b].Flush(); err != nil {
			out.Close()
			return nil, err
		}
		if _, err := w.files[b].Seek(0, io.SeekStart); err != nil {
			out.Close()
			return nil, err
		}
		if _, err := io.Copy(out, w.files[b]); err != nil {
			out.Close()
			return nil, err
		}
		pos += w.counts[b]
	}
	offsets[p*p] = pos
	w.Close()
	return &DiskEdgeStore{pt: w.pt, f: out, offsets: offsets, throttle: throttle}, nil
}

// Close releases and deletes the spill files.
func (w *StreamingEdgeWriter) Close() {
	for b, f := range w.files {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
			w.files[b] = nil
		}
	}
}
