package storage_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// prepNC exports a small labeled/featured graph and ingests it, returning
// the prepared directory. External test package: internal/dataset imports
// storage, so these dataset-backed storage tests live outside it.
func prepNC(t *testing.T, parts int) string {
	t.Helper()
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 300, NumClasses: 4, AvgDegree: 5, FeatureDim: 6,
		Homophily: 0.8, FeatNoise: 1, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: 9,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "nc", 2, parts)); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDatasetNodeStoreRestoreAfterSnapshot exercises Snapshot → Restore
// on a DiskNodeStore opened over a dataset's feature shard (not one
// created by a training run): a snapshot round-trips exactly, a restore
// of modified data is visible through resident partitions immediately,
// and restoring the original snapshot leaves the dataset byte-identical
// (its manifest checksums still verify).
func TestDatasetNodeStoreRestoreAfterSnapshot(t *testing.T) {
	dir := prepNC(t, 4)
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := ds.NodeStore(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	if err := ns.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	gather := func(ids []int32) *tensor.Tensor {
		t.Helper()
		out := tensor.New(len(ids), ns.Dim())
		if err := ns.Gather(ids, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	probe := []int32{0, 1, 2}
	orig := gather(probe)

	table, state, err := ns.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if state != nil {
		t.Fatalf("non-learnable dataset store returned optimizer state (%d rows)", len(state))
	}
	if table.Rows != ds.Man.NumNodes || table.Cols != ds.Man.FeatureDim {
		t.Fatalf("snapshot shape %dx%d, want %dx%d", table.Rows, table.Cols, ds.Man.NumNodes, ds.Man.FeatureDim)
	}
	for j := 0; j < table.Cols; j++ {
		if table.Row(0)[j] != orig.Row(0)[j] {
			t.Fatal("snapshot disagrees with Gather for node 0")
		}
	}

	// Restore modified data: resident partitions must serve the new
	// values immediately (the buffer is re-read, not left stale).
	mod := table.Clone()
	for i := range mod.Data {
		mod.Data[i] += 1
	}
	if err := ns.Restore(mod, nil); err != nil {
		t.Fatal(err)
	}
	got := gather(probe)
	for i := range probe {
		for j := 0; j < ns.Dim(); j++ {
			if want := orig.Row(i)[j] + 1; got.Row(i)[j] != want {
				t.Fatalf("after restore, node %d dim %d = %v, want %v", probe[i], j, got.Row(i)[j], want)
			}
		}
	}

	// Restoring the original snapshot must leave the dataset files
	// byte-identical: the manifest checksums still verify.
	if err := ns.Restore(table, nil); err != nil {
		t.Fatal(err)
	}
	got = gather(probe)
	for i := range probe {
		for j := 0; j < ns.Dim(); j++ {
			if got.Row(i)[j] != orig.Row(i)[j] {
				t.Fatalf("restore of original snapshot did not round-trip node %d", probe[i])
			}
		}
	}
	if err := ds.Verify(); err != nil {
		t.Fatalf("dataset no longer verifies after snapshot/restore round trip: %v", err)
	}

	// Shape mismatches are rejected.
	if err := ns.Restore(tensor.New(ds.Man.NumNodes, ds.Man.FeatureDim+1), nil); err == nil {
		t.Fatal("restore of wrong-shaped table succeeded")
	}
}

// TestDatasetEdgeStoreServesBuckets checks the open-existing edge store
// against the manifest: per-bucket lengths match, and ReadBucket appends
// by value per the buffer-reuse contract.
func TestDatasetEdgeStoreServesBuckets(t *testing.T) {
	dir := prepNC(t, 4)
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	es, err := ds.EdgeStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	pt := ds.Partitioning()
	var total int64
	for i := 0; i < pt.NumPartitions; i++ {
		for j := 0; j < pt.NumPartitions; j++ {
			want := ds.Man.BucketCounts[pt.BucketID(i, j)]
			if got := es.BucketLen(i, j); int64(got) != want {
				t.Fatalf("bucket (%d,%d) length %d, manifest says %d", i, j, got, want)
			}
			bucket, err := es.ReadBucket(i, j, nil)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(bucket)) != want {
				t.Fatalf("bucket (%d,%d) read %d edges, manifest says %d", i, j, len(bucket), want)
			}
			for _, e := range bucket {
				if pt.Of(e.Src) != i || pt.Of(e.Dst) != j {
					t.Fatalf("bucket (%d,%d) holds stray edge (%d,%d)", i, j, e.Src, e.Dst)
				}
			}
			total += want
		}
	}
	if total != ds.Man.NumEdges {
		t.Fatalf("buckets hold %d edges, manifest says %d", total, ds.Man.NumEdges)
	}
}
