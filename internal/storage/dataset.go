package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// This file is the read side of the preprocessed on-disk dataset layout
// produced by internal/dataset (cmd/mariusprep). A dataset directory is
// self-describing:
//
//	manifest.json    versioned metadata: task, seed, partitioning, per-
//	                 bucket edge counts and CRC32 checksums, and an entry
//	                 (name, byte size, CRC32) for every payload file
//	edges.bin        train edges bucket-sorted by (src partition, dst
//	                 partition), 12-byte little-endian (src, rel, dst)
//	                 triples — byte-compatible with DiskEdgeStore
//	features.bin     float32 node base representations, row-major in
//	                 final node-ID order — byte-compatible with
//	                 DiskNodeStore's table file (NC only)
//	labels.bin       int32 class per node in final node-ID order (NC only)
//	{train,valid,test}_nodes.bin   int32 node-ID lists, split order
//	                               preserved (NC only)
//	{valid,test}_edges.bin         held-out edge triples, order preserved
//	                               (LP only)
//	dict.tsv         raw source ID of each final node ID, one per line
//
// Node IDs in every file are *final* IDs: the ingest step already applied
// the same seeded partition relabeling (partition.RandomOrder or
// TrainFirstOrder) that marius.New applies to an in-memory graph, so
// training from a dataset follows the identical trajectory.
//
// Versioning: Manifest.Version is DatasetVersion; OpenDataset rejects any
// other value with ErrDatasetVersion — layout changes bump the version
// (there is no in-place migration; re-run mariusprep prep).

// Dataset layout versions. Ingest writes the lowest version that can
// describe the dataset, so UUIDs of already-expressible datasets — which
// hash the version — stay stable across builds:
//
//	1 (DatasetVersionPlain)      the original layout, still written for
//	                             unquantized single-relation datasets
//	2 (DatasetVersion)           adds quantized feature storage
//	                             (Manifest.Quant + the int8 scale sidecar)
//	3 (DatasetVersionRelations)  declares a multi-relation edge set
//	                             (NumRels > 1); the 12-byte edge triples
//	                             always carried a relation slot, but
//	                             relation-blind readers ignored it, so
//	                             multi-relation data must fail typed on
//	                             them instead of silently training every
//	                             edge as relation 0
//
// ReadManifest accepts versions 1 through DatasetVersionRelations and
// rejects anything else with ErrDatasetVersion — there is no in-place
// migration; re-run mariusprep prep.
const (
	DatasetVersionPlain     = 1
	DatasetVersion          = 2
	DatasetVersionRelations = 3
)

// ManifestName is the manifest file name inside a dataset directory.
const ManifestName = "manifest.json"

// Typed dataset errors, matchable with errors.Is.
var (
	// ErrNoDataset is returned when dir holds no dataset manifest.
	ErrNoDataset = errors.New("no dataset manifest")
	// ErrDatasetVersion is returned for a manifest with an unsupported
	// layout version.
	ErrDatasetVersion = errors.New("unsupported dataset version")
	// ErrCorruptDataset is returned (wrapped in *CorruptError) when a
	// payload file is missing, truncated, or fails its checksum.
	ErrCorruptDataset = errors.New("corrupt dataset")
)

// CorruptError pinpoints a corrupt dataset payload: which file, and for
// edge storage which bucket, failed validation. It unwraps to
// ErrCorruptDataset.
type CorruptError struct {
	Path   string
	Bucket [2]int // bucket coordinates, or {-1,-1} for whole-file failures
	Detail string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Bucket[0] >= 0 {
		return fmt.Sprintf("storage: %v: %s bucket (%d,%d): %s",
			ErrCorruptDataset, e.Path, e.Bucket[0], e.Bucket[1], e.Detail)
	}
	return fmt.Sprintf("storage: %v: %s: %s", ErrCorruptDataset, e.Path, e.Detail)
}

// Unwrap implements errors.Unwrap.
func (e *CorruptError) Unwrap() error { return ErrCorruptDataset }

func corrupt(path string, detail string, args ...any) *CorruptError {
	return &CorruptError{Path: path, Bucket: [2]int{-1, -1}, Detail: fmt.Sprintf(detail, args...)}
}

// DatasetFile records one payload file: its name inside the dataset
// directory, exact byte size, and IEEE CRC32 of its contents.
type DatasetFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest is the dataset's metadata, serialized as manifest.json.
type Manifest struct {
	Version    int    `json:"version"`
	Task       string `json:"task"` // "nc" or "lp"
	Seed       int64  `json:"seed"`
	Partitions int    `json:"partitions"`

	// UUID is a deterministic fingerprint of the dataset's identity
	// (task, seed, partitioning and per-bucket contents), computed at
	// ingest by ComputeUUID. Checkpoints saved from a dataset session
	// embed it, so serving can warn when a checkpoint is loaded against
	// a different dataset than it was trained on. Empty for datasets
	// prepped before the field existed.
	UUID string `json:"uuid,omitempty"`

	NumNodes   int   `json:"num_nodes"`
	NumRels    int   `json:"num_rels"`
	NumEdges   int64 `json:"num_edges"`
	FeatureDim int   `json:"feature_dim,omitempty"`
	NumClasses int   `json:"num_classes,omitempty"`

	// Quant names the feature table's storage encoding: "" (float32),
	// "fp16" (IEEE binary16), or "int8" (per-row affine uint8 with a
	// float32 (scale, zero) pair per row in the QuantScales sidecar).
	// Quantization happens exactly once at ingest; every reader
	// dequantizes the same stored bytes, so a quantized dataset trains
	// and serves bit-identically at any worker count. Non-empty Quant
	// requires Version >= 2.
	Quant string `json:"quant,omitempty"`

	// BucketCounts[i*p+j] is the edge count of bucket (i,j);
	// BucketCRCs[i*p+j] the IEEE CRC32 of that bucket's encoded bytes in
	// edges.bin. Per-bucket checksums let validation (and mariusprep
	// validate) localize corruption to a bucket instead of surfacing a
	// raw io.ErrUnexpectedEOF mid-epoch.
	BucketCounts []int64  `json:"bucket_counts"`
	BucketCRCs   []uint32 `json:"bucket_crc32s"`

	Edges      DatasetFile  `json:"edges"` // CRC32 0: integrity is per bucket
	Features   *DatasetFile `json:"features,omitempty"`
	Labels     *DatasetFile `json:"labels,omitempty"`
	TrainNodes *DatasetFile `json:"train_nodes,omitempty"`
	ValidNodes *DatasetFile `json:"valid_nodes,omitempty"`
	TestNodes  *DatasetFile `json:"test_nodes,omitempty"`
	ValidEdges *DatasetFile `json:"valid_edges,omitempty"`
	TestEdges  *DatasetFile `json:"test_edges,omitempty"`
	Dict       *DatasetFile `json:"dict,omitempty"`

	// QuantScales is the int8 dequantization sidecar: one little-endian
	// float32 (scale, zero) pair per node, in final node-ID order.
	QuantScales *DatasetFile `json:"quant_scales,omitempty"`

	// Ingest provenance: spill runs of the external sort and the
	// configured memory cap, for inspect output.
	SpillRuns int   `json:"spill_runs,omitempty"`
	MemLimit  int64 `json:"mem_limit_bytes,omitempty"`
}

// Partitioning returns the node partitioning the dataset was prepared
// with.
func (m *Manifest) Partitioning() partition.Partitioning {
	return partition.New(m.NumNodes, m.Partitions)
}

// QuantKind returns the feature table's storage encoding. The manifest
// was validated at read time, so an unknown mode cannot reach here.
func (m *Manifest) QuantKind() tensor.QuantKind {
	k, _ := tensor.ParseQuant(m.Quant)
	return k
}

// FeatureElemBytes returns the on-disk size of one feature element
// (4 for float32, 2 for fp16, 1 for int8).
func (m *Manifest) FeatureElemBytes() int { return m.QuantKind().ElemBytes() }

// ComputeUUID derives the dataset's deterministic identity fingerprint
// from the fields that pin its contents: task, seed, partition count,
// node/relation/edge counts, and the per-bucket edge counts and CRCs.
// Re-ingesting the same raw data with the same configuration reproduces
// the same UUID; any change to the prepared edges changes it.
func (m *Manifest) ComputeUUID() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d|%d|%d|%d", m.Version, m.Task, m.Seed, m.Partitions, m.NumNodes, m.NumRels, m.NumEdges)
	// Quantization changes the stored feature bytes, so it is part of the
	// identity. Appended only when set, keeping version-1 UUIDs unchanged.
	if m.Quant != "" {
		fmt.Fprintf(h, "|q=%s", m.Quant)
	}
	var buf [12]byte
	for i, n := range m.BucketCounts {
		binary.LittleEndian.PutUint64(buf[:8], uint64(n))
		binary.LittleEndian.PutUint32(buf[8:], m.BucketCRCs[i])
		h.Write(buf[:])
	}
	return fmt.Sprintf("ds1-%016x", h.Sum64())
}

// WriteManifest atomically and durably writes m as dir/manifest.json: the
// temp file is fsynced before the rename (and the directory after), so a
// crash right after the rename cannot leave an empty or truncated
// manifest where a complete one was promised.
func WriteManifest(dir string, m *Manifest) error {
	return WriteManifestFS(nil, dir, m)
}

// WriteManifestFS is WriteManifest writing through fsys (nil means the
// real filesystem).
func WriteManifestFS(fsys fault.FS, dir string, m *Manifest) error {
	fs := fault.Or(fsys)
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := fs.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name())
	if err := writeFull(tmp, append(buf, '\n'), 0, nil); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp's 0600 would make the dataset unreadable to other users,
	// unlike every payload file written with os.Create under the umask.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadManifest reads and structurally validates dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("storage: %w in %s", ErrNoDataset, dir)
		}
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("storage: %w: malformed manifest: %v", ErrCorruptDataset, err)
	}
	if m.Version < DatasetVersionPlain || m.Version > DatasetVersionRelations {
		return nil, fmt.Errorf("storage: %w: dataset version %d, this build reads %d-%d",
			ErrDatasetVersion, m.Version, DatasetVersionPlain, DatasetVersionRelations)
	}
	if m.NumRels > 1 && m.Version < DatasetVersionRelations {
		return nil, fmt.Errorf("storage: %w: %d relation types require dataset version %d, manifest declares %d",
			ErrDatasetVersion, m.NumRels, DatasetVersionRelations, m.Version)
	}
	if _, err := tensor.ParseQuant(m.Quant); err != nil {
		return nil, corrupt(ManifestName, "unknown quantization mode %q", m.Quant)
	}
	if m.Quant != "" && m.Version < DatasetVersion {
		return nil, fmt.Errorf("storage: %w: quantized features (%s) require dataset version %d, manifest declares %d",
			ErrDatasetVersion, m.Quant, DatasetVersion, m.Version)
	}
	if m.Quant == "int8" && m.Features != nil && m.QuantScales == nil {
		return nil, corrupt(ManifestName, "int8 features declared without a quant_scales sidecar")
	}
	if m.NumNodes <= 0 || m.Partitions <= 0 {
		return nil, corrupt(ManifestName, "non-positive nodes (%d) or partitions (%d)", m.NumNodes, m.Partitions)
	}
	p := m.Partitions
	if len(m.BucketCounts) != p*p || len(m.BucketCRCs) != p*p {
		return nil, corrupt(ManifestName, "bucket tables hold %d/%d entries, want %d",
			len(m.BucketCounts), len(m.BucketCRCs), p*p)
	}
	var total int64
	for b, c := range m.BucketCounts {
		if c < 0 {
			return nil, corrupt(ManifestName, "negative count for bucket %d", b)
		}
		total += c
	}
	if total != m.NumEdges {
		return nil, corrupt(ManifestName, "bucket counts sum to %d edges, manifest says %d", total, m.NumEdges)
	}
	if m.Edges.Bytes != m.NumEdges*edgeBytes {
		return nil, corrupt(ManifestName, "edges file declared %d bytes, %d edges need %d",
			m.Edges.Bytes, m.NumEdges, m.NumEdges*edgeBytes)
	}
	return &m, nil
}

// Dataset is an opened (structurally validated) preprocessed dataset
// directory.
type Dataset struct {
	Dir string
	Man *Manifest
	pt  partition.Partitioning
	fs  fault.FS
}

// OpenDataset reads dir's manifest and verifies that every declared
// payload file exists with its exact declared size, so truncated files
// are rejected here with a typed *CorruptError instead of surfacing as a
// raw io.ErrUnexpectedEOF mid-epoch. Contents are not checksummed — run
// Verify (mariusprep validate) for the full integrity pass.
func OpenDataset(dir string) (*Dataset, error) {
	return OpenDatasetFS(nil, dir)
}

// OpenDatasetFS is OpenDataset reading through fsys (nil means the real
// filesystem); every store and payload read derived from the returned
// Dataset goes through the same FS.
func OpenDatasetFS(fsys fault.FS, dir string) (*Dataset, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Dir: dir, Man: m, pt: m.Partitioning(), fs: fault.Or(fsys)}
	files := append([]*DatasetFile{&m.Edges},
		m.Features, m.Labels, m.TrainNodes, m.ValidNodes, m.TestNodes,
		m.ValidEdges, m.TestEdges, m.Dict, m.QuantScales)
	for _, f := range files {
		if f == nil {
			continue
		}
		st, err := d.fs.Stat(filepath.Join(dir, f.Name))
		if err != nil {
			return nil, corrupt(f.Name, "missing payload file: %v", err)
		}
		if st.Size() != f.Bytes {
			return nil, corrupt(f.Name, "%d bytes on disk, manifest declares %d (truncated or overwritten)",
				st.Size(), f.Bytes)
		}
	}
	if m.Features != nil {
		want := int64(m.NumNodes) * int64(m.FeatureDim) * int64(m.FeatureElemBytes())
		if m.Features.Bytes != want {
			return nil, corrupt(m.Features.Name, "declared %d bytes, %d nodes x %d dims at %d bytes/elem need %d",
				m.Features.Bytes, m.NumNodes, m.FeatureDim, m.FeatureElemBytes(), want)
		}
		if m.QuantScales != nil {
			if wantSc := int64(m.NumNodes) * 8; m.QuantScales.Bytes != wantSc {
				return nil, corrupt(m.QuantScales.Name, "declared %d bytes, %d (scale, zero) pairs need %d",
					m.QuantScales.Bytes, m.NumNodes, wantSc)
			}
		}
	}
	if m.Labels != nil && m.Labels.Bytes != int64(m.NumNodes)*4 {
		return nil, corrupt(m.Labels.Name, "declared %d bytes for %d int32 labels", m.Labels.Bytes, m.NumNodes)
	}
	return d, nil
}

// Partitioning returns the dataset's node partitioning.
func (d *Dataset) Partitioning() partition.Partitioning { return d.pt }

// path resolves a payload file name inside the dataset directory.
func (d *Dataset) path(name string) string { return filepath.Join(d.Dir, name) }

// EdgeStore opens the bucket-sorted edge file as a DiskEdgeStore, served
// straight off the preprocessed bytes: bucket offsets come from the
// manifest counts, so no ingest-time re-sort (or even a full read)
// happens at open.
func (d *Dataset) EdgeStore(throttle *Throttle) (*DiskEdgeStore, error) {
	return OpenDiskEdgeStoreFS(d.fs, d.path(d.Man.Edges.Name), d.pt, d.Man.BucketCounts, throttle)
}

// NodeStore pages the dataset's feature table through a partition buffer
// of the given capacity — the disk-storage training path for node
// classification. The store is read-only (features are fixed); the
// dataset file itself backs the pages.
func (d *Dataset) NodeStore(capacity int, throttle *Throttle) (*DiskNodeStore, error) {
	if d.Man.Features == nil {
		return nil, fmt.Errorf("storage: dataset %s carries no feature table", d.Dir)
	}
	cfg := DiskStoreConfig{
		Part:     d.pt,
		Dim:      d.Man.FeatureDim,
		Capacity: capacity,
		Throttle: throttle,
		Quant:    d.Man.QuantKind(),
		FS:       d.fs,
	}
	if d.Man.QuantScales != nil {
		cfg.ScalePath = d.path(d.Man.QuantScales.Name)
	}
	return OpenDiskNodeStore(cfg, d.path(d.Man.Features.Name))
}

// ReadFeatures loads the full feature table into memory as float32 (the
// in-memory training path), dequantizing quantized storage.
func (d *Dataset) ReadFeatures() (*tensor.Tensor, error) {
	if d.Man.QuantKind() != tensor.QuantNone {
		q, err := d.ReadQuantFeatures()
		if err != nil {
			return nil, err
		}
		return q.Dequant(), nil
	}
	if d.Man.Features == nil {
		return nil, fmt.Errorf("storage: dataset %s carries no feature table", d.Dir)
	}
	f, err := d.fs.Open(d.path(d.Man.Features.Name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t := tensor.New(d.Man.NumNodes, d.Man.FeatureDim)
	if err := readFloats(f, 0, t.Data, nil, nil); err != nil {
		return nil, corrupt(d.Man.Features.Name, "short read: %v", err)
	}
	return t, nil
}

// readAllPayload reads one payload file fully through the dataset's FS,
// with the storage layer's loop-to-fill and transient-retry discipline.
func (d *Dataset) readAllPayload(name string, size int64) ([]byte, error) {
	f, err := d.fs.Open(d.path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	if err := readFull(f, buf, 0, nil); err != nil {
		return nil, corrupt(name, "short read: %v", err)
	}
	return buf, nil
}

// ReadQuantFeatures loads a quantized feature table into memory in its
// compressed form — half (fp16) or a quarter (int8) of the float32
// footprint — for consumers that can score against a tensor.QTable
// directly (the serving path).
func (d *Dataset) ReadQuantFeatures() (*tensor.QTable, error) {
	kind := d.Man.QuantKind()
	if kind == tensor.QuantNone {
		return nil, fmt.Errorf("storage: dataset %s is not quantized", d.Dir)
	}
	if d.Man.Features == nil {
		return nil, fmt.Errorf("storage: dataset %s carries no feature table", d.Dir)
	}
	q := tensor.NewQTable(kind, d.Man.NumNodes, d.Man.FeatureDim)
	raw, err := d.readAllPayload(d.Man.Features.Name, d.Man.Features.Bytes)
	if err != nil {
		return nil, err
	}
	q.Raw = raw
	if kind == tensor.QuantI8 {
		f, err := d.fs.Open(d.path(d.Man.QuantScales.Name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pairs := make([]float32, 2*d.Man.NumNodes)
		if err := readFloats(f, 0, pairs, nil, nil); err != nil {
			return nil, corrupt(d.Man.QuantScales.Name, "short read: %v", err)
		}
		for i := 0; i < d.Man.NumNodes; i++ {
			q.Scale[i], q.Zero[i] = pairs[2*i], pairs[2*i+1]
		}
	}
	return q, nil
}

// readInt32File loads a little-endian int32 array payload.
func (d *Dataset) readInt32File(f *DatasetFile) ([]int32, error) {
	if f == nil {
		return nil, nil
	}
	if f.Bytes%4 != 0 {
		return nil, corrupt(f.Name, "%d bytes is not a whole number of int32s", f.Bytes)
	}
	buf, err := d.readAllPayload(f.Name, f.Bytes)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

// ReadLabels loads the per-node class labels (nil when absent).
func (d *Dataset) ReadLabels() ([]int32, error) { return d.readInt32File(d.Man.Labels) }

// ReadSplits loads the train/valid/test node-ID lists (nil when absent),
// preserving the split order the dataset was prepared with.
func (d *Dataset) ReadSplits() (train, valid, test []int32, err error) {
	if train, err = d.readInt32File(d.Man.TrainNodes); err != nil {
		return nil, nil, nil, err
	}
	if valid, err = d.readInt32File(d.Man.ValidNodes); err != nil {
		return nil, nil, nil, err
	}
	if test, err = d.readInt32File(d.Man.TestNodes); err != nil {
		return nil, nil, nil, err
	}
	return train, valid, test, nil
}

// readEdgeFile loads a held-out edge payload (order preserved).
func (d *Dataset) readEdgeFile(f *DatasetFile) ([]graph.Edge, error) {
	if f == nil {
		return nil, nil
	}
	if f.Bytes%edgeBytes != 0 {
		return nil, corrupt(f.Name, "%d bytes is not a whole number of %d-byte edges", f.Bytes, edgeBytes)
	}
	buf, err := d.readAllPayload(f.Name, f.Bytes)
	if err != nil {
		return nil, err
	}
	return decodeEdges(buf, make([]graph.Edge, 0, len(buf)/edgeBytes)), nil
}

// ReadHeldOut loads the valid and test edge splits (nil when absent).
func (d *Dataset) ReadHeldOut() (valid, test []graph.Edge, err error) {
	if valid, err = d.readEdgeFile(d.Man.ValidEdges); err != nil {
		return nil, nil, err
	}
	if test, err = d.readEdgeFile(d.Man.TestEdges); err != nil {
		return nil, nil, err
	}
	return valid, test, nil
}

// verifyFileCRC checksums one payload file against its manifest entry.
func (d *Dataset) verifyFileCRC(f *DatasetFile) error {
	if f == nil {
		return nil
	}
	fh, err := d.fs.Open(d.path(f.Name))
	if err != nil {
		return corrupt(f.Name, "missing payload file: %v", err)
	}
	defer fh.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, fh)
	if err != nil {
		return corrupt(f.Name, "read failed: %v", err)
	}
	if n != f.Bytes {
		return corrupt(f.Name, "%d bytes on disk, manifest declares %d (truncated)", n, f.Bytes)
	}
	if h.Sum32() != f.CRC32 {
		return corrupt(f.Name, "checksum %08x, manifest declares %08x", h.Sum32(), f.CRC32)
	}
	return nil
}

// Verify runs the full integrity pass: every payload file is checksummed
// against the manifest, and every edge bucket is checksummed individually
// so corruption is reported as a typed *CorruptError naming the bucket.
func (d *Dataset) Verify() error {
	// Per-bucket edge checksums.
	f, err := d.fs.Open(d.path(d.Man.Edges.Name))
	if err != nil {
		return corrupt(d.Man.Edges.Name, "missing payload file: %v", err)
	}
	defer f.Close()
	p := d.Man.Partitions
	buf := make([]byte, 1<<20)
	var off int64
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			b := d.pt.BucketID(i, j)
			want := d.Man.BucketCounts[b] * edgeBytes
			crc := uint32(0)
			for rem := want; rem > 0; {
				n := int64(len(buf))
				if rem < n {
					n = rem
				}
				if err := readFull(f, buf[:n], off, nil); err != nil {
					return &CorruptError{Path: d.Man.Edges.Name, Bucket: [2]int{i, j},
						Detail: fmt.Sprintf("truncated at byte %d: %v", off, err)}
				}
				crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
				off += n
				rem -= n
			}
			if crc != d.Man.BucketCRCs[b] {
				return &CorruptError{Path: d.Man.Edges.Name, Bucket: [2]int{i, j},
					Detail: fmt.Sprintf("checksum %08x, manifest declares %08x", crc, d.Man.BucketCRCs[b])}
			}
		}
	}
	for _, df := range []*DatasetFile{
		d.Man.Features, d.Man.Labels, d.Man.TrainNodes, d.Man.ValidNodes,
		d.Man.TestNodes, d.Man.ValidEdges, d.Man.TestEdges, d.Man.Dict,
		d.Man.QuantScales,
	} {
		if err := d.verifyFileCRC(df); err != nil {
			return err
		}
	}
	return nil
}

// OpenDiskEdgeStore serves edge buckets from an existing bucket-sorted
// file laid out exactly as CreateDiskEdgeStore writes it; counts gives
// the p² bucket edge counts in BucketID order (the manifest's
// BucketCounts). The file is opened read-only.
func OpenDiskEdgeStore(path string, pt partition.Partitioning, counts []int64, throttle *Throttle) (*DiskEdgeStore, error) {
	return OpenDiskEdgeStoreFS(nil, path, pt, counts, throttle)
}

// OpenDiskEdgeStoreFS is OpenDiskEdgeStore opening through fsys (nil
// means the real filesystem).
func OpenDiskEdgeStoreFS(fsys fault.FS, path string, pt partition.Partitioning, counts []int64, throttle *Throttle) (*DiskEdgeStore, error) {
	p := pt.NumPartitions
	if len(counts) != p*p {
		return nil, fmt.Errorf("storage: %d bucket counts for %d partitions", len(counts), p)
	}
	offsets := make([]int64, p*p+1)
	for b, c := range counts {
		offsets[b+1] = offsets[b] + c
	}
	f, err := fault.Or(fsys).Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < offsets[p*p]*edgeBytes {
		f.Close()
		return nil, corrupt(filepath.Base(path), "%d bytes on disk, %d edges need %d (truncated)",
			st.Size(), offsets[p*p], offsets[p*p]*edgeBytes)
	}
	return &DiskEdgeStore{pt: pt, f: f, offsets: offsets, throttle: throttle}, nil
}
