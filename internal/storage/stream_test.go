package storage

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestStreamingEdgeWriterMatchesBatchSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, p = 200, 4
	pt := partition.New(n, p)
	edges := make([]graph.Edge, 3000)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(5)), Dst: int32(rng.Intn(n))}
	}

	// Reference: batch bucket sort.
	ref := NewMemoryEdgeStore(pt, edges)

	// Streaming path in uneven chunks.
	dir := t.TempDir()
	w, err := NewStreamingEdgeWriter(dir, pt)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(edges); {
		hi := lo + rng.Intn(500) + 1
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := w.Append(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	store, err := w.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			a, _ := ref.ReadBucket(i, j, nil)
			b, err := store.ReadBucket(i, j, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("bucket (%d,%d): %d vs %d edges", i, j, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("bucket (%d,%d) edge %d: %+v vs %+v", i, j, k, a[k], b[k])
				}
			}
		}
	}
}

func TestStreamingEdgeWriterRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	pt := partition.New(10, 2)
	w, err := NewStreamingEdgeWriter(dir, pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]graph.Edge{{Src: 1, Dst: 7}}); err != nil {
		t.Fatal(err)
	}
	store, err := w.Finalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	got, err := store.ReadBucket(0, 1, nil)
	if err != nil || len(got) != 1 || got[0].Dst != 7 {
		t.Fatalf("bucket content wrong: %v %v", got, err)
	}
}
