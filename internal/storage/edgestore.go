package storage

import (
	"fmt"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
)

// EdgeStore serves edge buckets. Bucket (i,j) holds all edges with source
// in partition i and destination in partition j; each bucket's edges are
// stored contiguously (paper §3).
//
// Buffer-reuse contract for ReadBucket, identical across backends: the
// bucket's edges are appended to dst (by value — never views of store
// internals) and the possibly-reallocated slice is returned; the store
// retains no reference to dst, so callers may recycle one buffer across
// calls with dst[:0]. ReadBucket is safe for concurrent use with other
// reads (the pipeline prefetcher reads buckets while the trainer
// computes).
type EdgeStore interface {
	// ReadBucket appends the edges of bucket (i,j) to dst and returns the
	// extended slice, per the buffer-reuse contract above.
	ReadBucket(i, j int, dst []graph.Edge) ([]graph.Edge, error)
	// BucketLen returns the number of edges in bucket (i,j).
	BucketLen(i, j int) int
	// NumPartitions returns p.
	NumPartitions() int
	// Stats returns the store's cumulative read counters. For disk
	// stores these are real IO; for memory stores, logical bytes served
	// (len(bucket) * 12 bytes/edge), so callers can reason about edge
	// traffic uniformly across backends.
	Stats() *Stats
	Close() error
}

// MemoryEdgeStore keeps all buckets in memory.
type MemoryEdgeStore struct {
	pt      partition.Partitioning
	buckets [][]graph.Edge
	stats   Stats
}

// NewMemoryEdgeStore buckets edges in memory.
func NewMemoryEdgeStore(pt partition.Partitioning, edges []graph.Edge) *MemoryEdgeStore {
	return &MemoryEdgeStore{pt: pt, buckets: pt.Buckets(edges)}
}

// ReadBucket implements EdgeStore. Empty buckets are not counted, so the
// Reads/BytesRead counters match DiskEdgeStore's (which early-returns
// before performing IO) for identical access patterns.
func (m *MemoryEdgeStore) ReadBucket(i, j int, dst []graph.Edge) ([]graph.Edge, error) {
	b := m.buckets[m.pt.BucketID(i, j)]
	if len(b) == 0 {
		return dst, nil
	}
	m.stats.Reads.Add(1)
	m.stats.BytesRead.Add(int64(len(b)) * edgeBytes)
	return append(dst, b...), nil
}

// BucketLen implements EdgeStore.
func (m *MemoryEdgeStore) BucketLen(i, j int) int { return len(m.buckets[m.pt.BucketID(i, j)]) }

// NumPartitions implements EdgeStore.
func (m *MemoryEdgeStore) NumPartitions() int { return m.pt.NumPartitions }

// Stats implements EdgeStore: logical read counters (no real IO happens).
func (m *MemoryEdgeStore) Stats() *Stats { return &m.stats }

// Close implements EdgeStore.
func (m *MemoryEdgeStore) Close() error { return nil }

// DiskEdgeStore serves edge buckets from a single bucket-sorted file.
type DiskEdgeStore struct {
	pt       partition.Partitioning
	f        fault.File
	offsets  []int64 // p²+1 prefix edge counts; bucket b spans [offsets[b], offsets[b+1])
	stats    Stats
	throttle *Throttle
}

// CreateDiskEdgeStore bucket-sorts edges into a file under dir.
func CreateDiskEdgeStore(dir string, pt partition.Partitioning, edges []graph.Edge, throttle *Throttle) (*DiskEdgeStore, error) {
	return CreateDiskEdgeStoreFS(nil, dir, pt, edges, throttle)
}

// CreateDiskEdgeStoreFS is CreateDiskEdgeStore opening through fsys
// (nil means the real filesystem).
func CreateDiskEdgeStoreFS(fsys fault.FS, dir string, pt partition.Partitioning, edges []graph.Edge, throttle *Throttle) (*DiskEdgeStore, error) {
	s := &DiskEdgeStore{pt: pt, throttle: throttle}
	f, err := fault.Or(fsys).Create(filepath.Join(dir, "edges.bin"))
	if err != nil {
		return nil, err
	}
	buckets := pt.Buckets(edges)
	offsets := make([]int64, len(buckets)+1)
	var pos int64
	for b, bucket := range buckets {
		offsets[b] = pos
		buf := encodeEdges(bucket)
		if len(buf) > 0 {
			if err := writeFull(f, buf, pos*edgeBytes, &s.stats); err != nil {
				f.Close()
				return nil, err
			}
		}
		pos += int64(len(bucket))
	}
	offsets[len(buckets)] = pos
	s.f, s.offsets = f, offsets
	return s, nil
}

// ReadBucket implements EdgeStore.
func (s *DiskEdgeStore) ReadBucket(i, j int, dst []graph.Edge) ([]graph.Edge, error) {
	b := s.pt.BucketID(i, j)
	start, end := s.offsets[b], s.offsets[b+1]
	if start == end {
		return dst, nil
	}
	buf := make([]byte, (end-start)*edgeBytes)
	if err := readFull(s.f, buf, start*edgeBytes, &s.stats); err != nil {
		return dst, fmt.Errorf("storage: read bucket (%d,%d): %w", i, j, err)
	}
	s.stats.BytesRead.Add(int64(len(buf)))
	s.stats.Reads.Add(1)
	s.throttle.Wait(len(buf))
	return decodeEdges(buf, dst), nil
}

// BucketLen implements EdgeStore.
func (s *DiskEdgeStore) BucketLen(i, j int) int {
	b := s.pt.BucketID(i, j)
	return int(s.offsets[b+1] - s.offsets[b])
}

// NumPartitions implements EdgeStore.
func (s *DiskEdgeStore) NumPartitions() int { return s.pt.NumPartitions }

// Stats returns the store's IO counters.
func (s *DiskEdgeStore) Stats() *Stats { return &s.stats }

// Close implements EdgeStore.
func (s *DiskEdgeStore) Close() error { return s.f.Close() }
