package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/partition"
)

// FragCache builds and caches per-bucket CSR fragments over an EdgeStore,
// implementing graph.FragSource. Each bucket is read and counting-sorted
// at most once while it stays cached, so a partition-buffer swap costs
// only the admitted rows' and columns' fragments instead of re-reading
// and re-sorting all c² resident buckets; the pipeline prefetcher builds
// fragments for upcoming visits ahead of the trainer simply by composing
// their views on the prefetch goroutine.
//
// Fragments are immutable once built, so cached pointers may be shared by
// concurrent samplers and remain valid after eviction (eviction only
// drops the cache's reference). The cache itself is safe for concurrent
// use.
type FragCache struct {
	es  EdgeStore
	pt  partition.Partitioning
	cap int

	mu      sync.Mutex
	frags   map[int]*fragEntry
	tick    int64
	scratch []graph.Edge

	hits, misses atomic.Int64
}

type fragEntry struct {
	f    *graph.BucketFrag
	last int64
}

// NewFragCache returns a cache over es holding at most capBuckets
// fragments (minimum 1). Size it to cover the training window: the
// resident set plus the prefetch lookahead, i.e. (2c)² buckets for a
// buffer of capacity c, or p² to pin the whole graph.
func NewFragCache(es EdgeStore, pt partition.Partitioning, capBuckets int) *FragCache {
	if capBuckets < 1 {
		capBuckets = 1
	}
	return &FragCache{es: es, pt: pt, cap: capBuckets, frags: make(map[int]*fragEntry)}
}

// NumNodes implements graph.FragSource.
func (c *FragCache) NumNodes() int { return c.pt.NumNodes }

// NumPartitions implements graph.FragSource.
func (c *FragCache) NumPartitions() int { return c.pt.NumPartitions }

// PartSize implements graph.FragSource.
func (c *FragCache) PartSize() int { return c.pt.PartSize }

// Frag implements graph.FragSource: it returns bucket (i, j)'s fragment,
// building it from an EdgeStore read on a cache miss and evicting the
// least-recently-used fragment when over capacity.
func (c *FragCache) Frag(i, j int) (*graph.BucketFrag, error) {
	key := c.pt.BucketID(i, j)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.frags[key]; ok {
		e.last = c.tick
		c.hits.Add(1)
		return e.f, nil
	}
	c.misses.Add(1)
	edges, err := c.es.ReadBucket(i, j, c.scratch[:0])
	if err != nil {
		return nil, err
	}
	c.scratch = edges[:0]
	srcLo, srcHi := c.pt.Range(i)
	dstLo, dstHi := c.pt.Range(j)
	f := graph.BuildBucketFrag(srcLo, srcHi, dstLo, dstHi, edges)
	for len(c.frags) >= c.cap {
		lruKey, lruLast := -1, c.tick+1
		for k, e := range c.frags {
			if e.last < lruLast {
				lruKey, lruLast = k, e.last
			}
		}
		delete(c.frags, lruKey)
	}
	c.frags[key] = &fragEntry{f: f, last: c.tick}
	return f, nil
}

// Stats returns the cumulative hit and miss counts (a hit serves a
// fragment without touching the edge store).
func (c *FragCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached fragments.
func (c *FragCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frags)
}
