package storage

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func fragTestEdges(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(3)), Dst: int32(rng.Intn(n))}
	}
	return edges
}

func TestFragCacheServesHitsWithoutRereads(t *testing.T) {
	edges := fragTestEdges(100, 2000, 1)
	pt := partition.New(100, 4)
	es := NewMemoryEdgeStore(pt, edges)
	fc := NewFragCache(es, pt, 16)

	f1, err := fc.Frag(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	reads := es.Stats().Snapshot().Reads
	f2, err := fc.Frag(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f1 {
		t.Fatal("cache hit returned a different fragment")
	}
	if got := es.Stats().Snapshot().Reads; got != reads {
		t.Fatalf("cache hit re-read the store (%d -> %d reads)", reads, got)
	}
	hits, misses := fc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestFragCacheEvictsLRU(t *testing.T) {
	edges := fragTestEdges(100, 2000, 2)
	pt := partition.New(100, 4)
	fc := NewFragCache(NewMemoryEdgeStore(pt, edges), pt, 2)

	mustFrag := func(i, j int) *graph.BucketFrag {
		t.Helper()
		f, err := fc.Frag(i, j)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f00 := mustFrag(0, 0)
	mustFrag(1, 1)
	mustFrag(0, 0) // refresh (0,0): (1,1) is now LRU
	mustFrag(2, 2) // evicts (1,1)
	if fc.Len() != 2 {
		t.Fatalf("cache holds %d fragments, want 2", fc.Len())
	}
	if got := mustFrag(0, 0); got != f00 {
		t.Fatal("recently-used fragment was evicted")
	}
	_, missesBefore := fc.Stats()
	mustFrag(1, 1) // must rebuild
	if _, misses := fc.Stats(); misses != missesBefore+1 {
		t.Fatal("evicted fragment served without a rebuild")
	}
}

// TestFragCacheConcurrentEviction hammers a small cache from concurrent
// goroutines — the pipelined access pattern, where the prefetcher builds
// fragments for upcoming visits while trainer-side samplers pull them —
// and checks the two contracts that make that safe: hit+miss counters
// exactly account for every request, and fragments stay immutable (and
// correct) after the cache evicts them.
func TestFragCacheConcurrentEviction(t *testing.T) {
	const (
		numNodes   = 120
		parts      = 6
		goroutines = 8
		iters      = 500
	)
	edges := fragTestEdges(numNodes, 4000, 7)
	pt := partition.New(numNodes, parts)
	es := NewMemoryEdgeStore(pt, edges)
	fc := NewFragCache(es, pt, 4) // far below p², so eviction is constant

	// A view over partitions {0,1} holds fragment pointers that the storm
	// below will certainly evict from the cache.
	view, err := graph.NewSegmented(fc).Swap([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	neighbors := func(ix graph.Index) [][]int32 {
		var out [][]int32
		for p := 0; p < 2; p++ {
			lo, hi := pt.Range(p)
			for v := lo; v < hi; v++ {
				out = append(out, ix.AppendOutNeighbors(nil, v), ix.AppendInNeighbors(nil, v))
			}
		}
		return out
	}
	before := neighbors(view)

	hits0, misses0 := fc.Stats()
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < iters; k++ {
				if _, err := fc.Frag(rng.Intn(parts), rng.Intn(parts)); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g) + 100)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	hits, misses := fc.Stats()
	if got := (hits - hits0) + (misses - misses0); got != goroutines*iters {
		t.Fatalf("hit+miss counters account for %d requests, want %d", got, goroutines*iters)
	}
	if fc.Len() > 4 {
		t.Fatalf("cache holds %d fragments, capacity 4", fc.Len())
	}

	// The pre-storm view must still enumerate exactly what a fresh build
	// does: eviction only drops the cache's reference, never the
	// fragment's contents.
	fresh, err := graph.NewSegmented(NewFragCache(es, pt, parts*parts)).Swap([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	after, want := neighbors(view), neighbors(fresh)
	for i := range want {
		if len(after[i]) != len(want[i]) || len(before[i]) != len(want[i]) {
			t.Fatalf("neighbor list %d changed length after eviction: before %d, after %d, fresh %d",
				i, len(before[i]), len(after[i]), len(want[i]))
		}
		for k := range want[i] {
			if after[i][k] != want[i][k] || before[i][k] != want[i][k] {
				t.Fatalf("neighbor list %d mutated after eviction", i)
			}
		}
	}
}

func TestFragCacheMatchesBucketsOnDisk(t *testing.T) {
	edges := fragTestEdges(120, 3000, 3)
	pt := partition.New(120, 5)
	es, err := CreateDiskEdgeStore(t.TempDir(), pt, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	fc := NewFragCache(es, pt, pt.NumPartitions*pt.NumPartitions)

	for i := 0; i < pt.NumPartitions; i++ {
		for j := 0; j < pt.NumPartitions; j++ {
			f, err := fc.Frag(i, j)
			if err != nil {
				t.Fatal(err)
			}
			bucket, err := es.ReadBucket(i, j, nil)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumEdges() != len(bucket) {
				t.Fatalf("frag (%d,%d) has %d edges, bucket %d", i, j, f.NumEdges(), len(bucket))
			}
		}
	}
}
