package storage

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func fragTestEdges(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Rel: int32(rng.Intn(3)), Dst: int32(rng.Intn(n))}
	}
	return edges
}

func TestFragCacheServesHitsWithoutRereads(t *testing.T) {
	edges := fragTestEdges(100, 2000, 1)
	pt := partition.New(100, 4)
	es := NewMemoryEdgeStore(pt, edges)
	fc := NewFragCache(es, pt, 16)

	f1, err := fc.Frag(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	reads := es.Stats().Snapshot().Reads
	f2, err := fc.Frag(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f1 {
		t.Fatal("cache hit returned a different fragment")
	}
	if got := es.Stats().Snapshot().Reads; got != reads {
		t.Fatalf("cache hit re-read the store (%d -> %d reads)", reads, got)
	}
	hits, misses := fc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestFragCacheEvictsLRU(t *testing.T) {
	edges := fragTestEdges(100, 2000, 2)
	pt := partition.New(100, 4)
	fc := NewFragCache(NewMemoryEdgeStore(pt, edges), pt, 2)

	mustFrag := func(i, j int) *graph.BucketFrag {
		t.Helper()
		f, err := fc.Frag(i, j)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f00 := mustFrag(0, 0)
	mustFrag(1, 1)
	mustFrag(0, 0) // refresh (0,0): (1,1) is now LRU
	mustFrag(2, 2) // evicts (1,1)
	if fc.Len() != 2 {
		t.Fatalf("cache holds %d fragments, want 2", fc.Len())
	}
	if got := mustFrag(0, 0); got != f00 {
		t.Fatal("recently-used fragment was evicted")
	}
	_, missesBefore := fc.Stats()
	mustFrag(1, 1) // must rebuild
	if _, misses := fc.Stats(); misses != missesBefore+1 {
		t.Fatal("evicted fragment served without a rebuild")
	}
}

func TestFragCacheMatchesBucketsOnDisk(t *testing.T) {
	edges := fragTestEdges(120, 3000, 3)
	pt := partition.New(120, 5)
	es, err := CreateDiskEdgeStore(t.TempDir(), pt, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	fc := NewFragCache(es, pt, pt.NumPartitions*pt.NumPartitions)

	for i := 0; i < pt.NumPartitions; i++ {
		for j := 0; j < pt.NumPartitions; j++ {
			f, err := fc.Frag(i, j)
			if err != nil {
				t.Fatal(err)
			}
			bucket, err := es.ReadBucket(i, j, nil)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumEdges() != len(bucket) {
				t.Fatalf("frag (%d,%d) has %d edges, bucket %d", i, j, f.NumEdges(), len(bucket))
			}
		}
	}
}
