package storage

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRegisterStats(t *testing.T) {
	r := obs.NewRegistry()
	var st Stats
	st.BytesRead.Store(4096)
	st.PrefetchHits.Store(3)
	st.PrefetchMisses.Store(1)
	RegisterStats(r, "node", &st)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`storage_bytes_read_total{store="node"} 4096`,
		`storage_prefetch_hits_total{store="node"} 3`,
		`storage_prefetch_hit_rate{store="node"} 0.75`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Live bridge: counter advances without re-registration.
	st.BytesRead.Add(4096)
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `storage_bytes_read_total{store="node"} 8192`) {
		t.Errorf("counter func not live:\n%s", b.String())
	}

	// Registering a second store under another label must not collide.
	RegisterStats(r, "edge", &Stats{})
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `storage_bytes_read_total{store="edge"} 0`) {
		t.Errorf("second store missing:\n%s", b.String())
	}

	// Nil registry / nil stats are no-ops.
	RegisterStats(nil, "x", &st)
	RegisterStats(r, "x", nil)
	var fc *FragCache
	fc.Register(r)
}
