// Package storage implements the MariusGNN storage layer (paper §3,
// Fig. 2): node base representations live in a single file split into p
// contiguous physical partitions, edges live in a bucket-sorted file, and
// a partition buffer with capacity c pages partitions between disk and CPU
// memory, with asynchronous prefetch of the next partition set and
// write-back of updated (learnable) representations.
//
// The paper runs against an EBS volume with ~1 GB/s bandwidth; a Throttle
// can simulate that regime on fast local disks so the IO/compute overlap
// behaves as in the paper's benchmarks.
package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Stats counts IO performed by a store. All fields are updated atomically
// and may be read concurrently.
type Stats struct {
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	Reads        atomic.Int64
	Writes       atomic.Int64
	Swaps        atomic.Int64
	// PrefetchHits counts partition loads served from already-completed
	// prefetch staging (or an in-flight write-back buffer) — the IO
	// genuinely overlapped compute. PrefetchMisses counts loads whose
	// read time landed on the critical path: synchronous reads and
	// blocked waits on still-in-flight staged reads.
	PrefetchHits   atomic.Int64
	PrefetchMisses atomic.Int64
	// Retries counts transient IO errors absorbed by the bounded-backoff
	// retry loop; Gaveup counts operations that exhausted the retry
	// budget and surfaced the error. Retries are never silent: both are
	// exported as storage_io_retries_total / storage_io_gaveup_total.
	Retries atomic.Int64
	Gaveup  atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		BytesRead:      s.BytesRead.Load(),
		BytesWritten:   s.BytesWritten.Load(),
		Reads:          s.Reads.Load(),
		Writes:         s.Writes.Load(),
		Swaps:          s.Swaps.Load(),
		PrefetchHits:   s.PrefetchHits.Load(),
		PrefetchMisses: s.PrefetchMisses.Load(),
		Retries:        s.Retries.Load(),
		Gaveup:         s.Gaveup.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	BytesRead      int64
	BytesWritten   int64
	Reads          int64
	Writes         int64
	Swaps          int64
	PrefetchHits   int64
	PrefetchMisses int64
	Retries        int64
	Gaveup         int64
}

// Sub returns s - o component-wise.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		BytesRead:      s.BytesRead - o.BytesRead,
		BytesWritten:   s.BytesWritten - o.BytesWritten,
		Reads:          s.Reads - o.Reads,
		Writes:         s.Writes - o.Writes,
		Swaps:          s.Swaps - o.Swaps,
		PrefetchHits:   s.PrefetchHits - o.PrefetchHits,
		PrefetchMisses: s.PrefetchMisses - o.PrefetchMisses,
		Retries:        s.Retries - o.Retries,
		Gaveup:         s.Gaveup - o.Gaveup,
	}
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("read %.1f MB (%d ops), wrote %.1f MB (%d ops), %d swaps",
		float64(s.BytesRead)/1e6, s.Reads, float64(s.BytesWritten)/1e6, s.Writes, s.Swaps)
}

// Throttle models a bandwidth-limited block device. A nil *Throttle means
// unlimited. Wait blocks for the transfer time of n bytes beyond what has
// already elapsed, shared across goroutines like a single device queue.
type Throttle struct {
	bytesPerSec float64
	mu          sync.Mutex
	nextFree    time.Time
}

// NewThrottle returns a throttle simulating the given bandwidth.
func NewThrottle(bytesPerSec float64) *Throttle {
	return &Throttle{bytesPerSec: bytesPerSec}
}

// Wait accounts for an n-byte transfer and sleeps if the simulated device
// is saturated.
func (t *Throttle) Wait(n int) {
	if t == nil || t.bytesPerSec <= 0 || n <= 0 {
		return
	}
	dur := time.Duration(float64(n) / t.bytesPerSec * float64(time.Second))
	t.mu.Lock()
	now := time.Now()
	if t.nextFree.Before(now) {
		t.nextFree = now
	}
	t.nextFree = t.nextFree.Add(dur)
	wait := t.nextFree.Sub(now)
	t.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// readerAt is the subset of *os.File the stores need, allowing tests to
// substitute failing or in-memory implementations.
type readerAt interface {
	io.ReaderAt
	io.WriterAt
}

// Bounded exponential backoff for transient IO errors (fault.IsTransient:
// injected transients and EINTR-class errnos). retryMax attempts at
// retryBase doubling gives ≈7.5ms of cumulative sleep in the worst case —
// long enough to ride out an interrupted syscall or a throttling blip,
// short enough that a genuinely dead disk surfaces within one partition
// load. Deliberately package-level, not per-store: the policy is part of
// the storage layer's contract, and every caller shares it.
const (
	retryMax  = 4
	retryBase = 500 * time.Microsecond
)

// readFull reads len(p) bytes at off, looping to fill on short reads
// (POSIX permits n < len(p) with nil error — EINTR-style partial IO)
// and retrying transient errors with bounded exponential backoff. Any
// forward progress resets the retry budget: only a *stalled* transient
// gives up. Fatal errors surface immediately.
func readFull(f io.ReaderAt, p []byte, off int64, st *Stats) error {
	attempt := 0
	for len(p) > 0 {
		n, err := f.ReadAt(p, off)
		p = p[n:]
		off += int64(n)
		if len(p) == 0 {
			// Full fill; a ReaderAt at exact EOF may still report io.EOF.
			return nil
		}
		if err == nil {
			if n == 0 {
				return io.ErrNoProgress
			}
			attempt = 0 // short read: loop to fill
			continue
		}
		if n > 0 {
			attempt = 0
		}
		if !fault.IsTransient(err) {
			return err
		}
		if attempt >= retryMax {
			if st != nil {
				st.Gaveup.Add(1)
			}
			return err
		}
		if st != nil {
			st.Retries.Add(1)
		}
		time.Sleep(retryBase << attempt)
		attempt++
	}
	return nil
}

// writeFull writes all of p at off with the same loop-to-fill and
// transient-retry discipline as readFull. Torn writes re-issue only the
// unwritten tail, so a retried write never double-applies a prefix.
func writeFull(f io.WriterAt, p []byte, off int64, st *Stats) error {
	attempt := 0
	for len(p) > 0 {
		n, err := f.WriteAt(p, off)
		p = p[n:]
		off += int64(n)
		if len(p) == 0 {
			return nil
		}
		if err == nil {
			if n == 0 {
				return io.ErrNoProgress
			}
			attempt = 0
			continue
		}
		if n > 0 {
			attempt = 0
		}
		if !fault.IsTransient(err) {
			return err
		}
		if attempt >= retryMax {
			if st != nil {
				st.Gaveup.Add(1)
			}
			return err
		}
		if st != nil {
			st.Retries.Add(1)
		}
		time.Sleep(retryBase << attempt)
		attempt++
	}
	return nil
}

// readFloats reads count float32 values at byte offset off into dst.
func readFloats(f io.ReaderAt, off int64, dst []float32, st *Stats, th *Throttle) error {
	buf := make([]byte, len(dst)*4)
	if err := readFull(f, buf, off, st); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	if st != nil {
		st.BytesRead.Add(int64(len(buf)))
		st.Reads.Add(1)
	}
	th.Wait(len(buf))
	return nil
}

// readBytes reads len(dst) raw bytes at byte offset off — the compressed
// analog of readFloats for quantized tables, so stats and the throttle
// account the bytes that actually cross the (simulated) device.
func readBytes(f io.ReaderAt, off int64, dst []byte, st *Stats, th *Throttle) error {
	if err := readFull(f, dst, off, st); err != nil {
		return err
	}
	if st != nil {
		st.BytesRead.Add(int64(len(dst)))
		st.Reads.Add(1)
	}
	th.Wait(len(dst))
	return nil
}

// writeFloats writes src as float32 values at byte offset off.
func writeFloats(f io.WriterAt, off int64, src []float32, st *Stats, th *Throttle) error {
	buf := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	if err := writeFull(f, buf, off, st); err != nil {
		return err
	}
	if st != nil {
		st.BytesWritten.Add(int64(len(buf)))
		st.Writes.Add(1)
	}
	th.Wait(len(buf))
	return nil
}

// EdgeBytes is the on-disk size of one encoded edge: src, rel, dst as
// little-endian int32. It is the single source of truth for the edge
// layout, shared with the dataset preprocessor (internal/dataset) whose
// bucket files must stay byte-compatible with DiskEdgeStore.
const EdgeBytes = 12

const edgeBytes = EdgeBytes

// EncodeEdge writes e's EdgeBytes-byte on-disk image into buf.
func EncodeEdge(e graph.Edge, buf []byte) {
	binary.LittleEndian.PutUint32(buf, uint32(e.Src))
	binary.LittleEndian.PutUint32(buf[4:], uint32(e.Rel))
	binary.LittleEndian.PutUint32(buf[8:], uint32(e.Dst))
}

func encodeEdge(e graph.Edge, buf []byte) { EncodeEdge(e, buf) }

func encodeEdges(edges []graph.Edge) []byte {
	buf := make([]byte, len(edges)*edgeBytes)
	for i, e := range edges {
		encodeEdge(e, buf[i*edgeBytes:])
	}
	return buf
}

func decodeEdges(buf []byte, dst []graph.Edge) []graph.Edge {
	n := len(buf) / edgeBytes
	for i := 0; i < n; i++ {
		dst = append(dst, graph.Edge{
			Src: int32(binary.LittleEndian.Uint32(buf[i*edgeBytes:])),
			Rel: int32(binary.LittleEndian.Uint32(buf[i*edgeBytes+4:])),
			Dst: int32(binary.LittleEndian.Uint32(buf[i*edgeBytes+8:])),
		})
	}
	return dst
}
