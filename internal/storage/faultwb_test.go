package storage

import (
	"errors"
	"os"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// toggleFS fails every data write with ENOSPC while fail is set —
// a switchable full-disk, unlike the probabilistic injector, so the
// test controls exactly which evict write-backs fail and when the disk
// "recovers".
type toggleFS struct {
	inner fault.FS
	fail  *atomic.Bool
}

func (t toggleFS) wrap(f fault.File, err error) (fault.File, error) {
	if err != nil {
		return nil, err
	}
	return toggleFile{File: f, fail: t.fail}, nil
}

func (t toggleFS) Create(name string) (fault.File, error) { return t.wrap(t.inner.Create(name)) }
func (t toggleFS) Open(name string) (fault.File, error)   { return t.wrap(t.inner.Open(name)) }
func (t toggleFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	return t.wrap(t.inner.OpenFile(name, flag, perm))
}
func (t toggleFS) CreateTemp(dir, pattern string) (fault.File, error) {
	return t.wrap(t.inner.CreateTemp(dir, pattern))
}
func (t toggleFS) Rename(oldpath, newpath string) error  { return t.inner.Rename(oldpath, newpath) }
func (t toggleFS) Remove(name string) error              { return t.inner.Remove(name) }
func (t toggleFS) Stat(name string) (os.FileInfo, error) { return t.inner.Stat(name) }

type toggleFile struct {
	fault.File
	fail *atomic.Bool
}

func (f toggleFile) Write(p []byte) (int, error) {
	if f.fail.Load() {
		return 0, syscall.ENOSPC
	}
	return f.File.Write(p)
}

func (f toggleFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fail.Load() {
		return 0, syscall.ENOSPC
	}
	return f.File.WriteAt(p, off)
}

// TestEvictWritebackFailureSurfacesAndRetries is the evict-side fault
// contract: when an asynchronous dirty-partition write-back fails, (1)
// the error surfaces on the training path (the next LoadSet — i.e. the
// epoch fails rather than silently losing updates), (2) the store
// retains the unwritten data, and (3) once the disk recovers, Flush
// retries the retained buffers, clears the sticky error, and the store
// reads back every update — nothing was lost.
func TestEvictWritebackFailureSurfacesAndRetries(t *testing.T) {
	dir := t.TempDir()
	const n, dim, p, c = 40, 4, 4, 2
	pt := partition.New(n, p)
	var failing atomic.Bool
	store, err := CreateDiskNodeStore(DiskStoreConfig{
		Dir: dir, Part: pt, Dim: dim, Capacity: c, Learnable: true,
		FS: toggleFS{inner: fault.OS, fail: &failing},
		Init: func(id int32, row []float32) {
			for j := range row {
				row[j] = float32(id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opt := nn.NewSparseAdaGrad(1.0)

	// Dirty partitions 0 and 1 (nodes 0 and 10 with PartSize 10).
	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	grads := tensor.New(2, dim)
	grads.Fill(1)
	if err := store.ApplyGrads([]int32{0, 10}, grads, opt); err != nil {
		t.Fatal(err)
	}
	want := tensor.New(2, dim)
	if err := store.Gather([]int32{0, 10}, want); err != nil {
		t.Fatal(err)
	}

	// Disk "fills up"; the evictions of 0 and 1 fail in the background.
	failing.Store(true)
	if err := store.LoadSet([]int{2, 3}); err != nil {
		t.Fatalf("LoadSet scheduling failing evictions: %v", err)
	}
	store.wbPending.Wait()

	// The failure surfaces on the training path instead of vanishing.
	if err := store.LoadSet([]int{0, 1}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("LoadSet after failed write-back: got %v, want ENOSPC", err)
	}
	// The unwritten partitions are retained for retry.
	store.wbMu.Lock()
	retained := len(store.failed)
	store.wbMu.Unlock()
	if retained != 2 {
		t.Fatalf("store retains %d failed write-backs, want 2", retained)
	}
	// While the disk is still full, Flush keeps failing (no false
	// success), and the error stays sticky.
	if err := store.Flush(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Flush on full disk: got %v, want ENOSPC", err)
	}

	// Disk recovers: Flush retries the retained buffers and clears the
	// sticky error; the store is consistent again.
	failing.Store(false)
	if err := store.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	store.wbMu.Lock()
	retained = len(store.failed)
	wbErr := store.wbErr
	store.wbMu.Unlock()
	if retained != 0 || wbErr != nil {
		t.Fatalf("after successful retry: %d retained, err %v", retained, wbErr)
	}

	// Reads see every pre-failure update — nothing was lost or rolled
	// back across the failure window.
	if err := store.LoadSet([]int{0, 1}); err != nil {
		t.Fatalf("LoadSet after recovery: %v", err)
	}
	got := tensor.New(2, dim)
	if err := store.Gather([]int32{0, 10}, got); err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("row data diverged after failed-write recovery: got %v, want %v", got.Data, want.Data)
		}
	}
}
