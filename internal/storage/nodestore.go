package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// NodeStore provides read (and for learnable representations, update)
// access to node base representations by global node ID.
type NodeStore interface {
	// Dim returns the representation dimensionality.
	Dim() int
	// NumNodes returns the table height.
	NumNodes() int
	// Gather copies the representations of ids into out ([len(ids) x Dim]).
	Gather(ids []int32, out *tensor.Tensor) error
	// ApplyGrads applies sparse AdaGrad updates to the given rows
	// (paper Fig. 2 step 6). ids may repeat.
	ApplyGrads(ids []int32, grads *tensor.Tensor, opt *nn.SparseAdaGrad) error
	// Snapshot returns a copy of the full representation table and the
	// per-row sparse-AdaGrad accumulators (nil when the store maintains
	// no per-row optimizer state), for checkpointing and full-table
	// evaluation.
	Snapshot() (*tensor.Tensor, []float32, error)
	// Restore overwrites the table (and accumulators, when state is
	// non-nil) from a snapshot taken on an identically-shaped store.
	Restore(table *tensor.Tensor, state []float32) error
	// Close releases resources, flushing any dirty state.
	Close() error
}

// MemoryNodeStore keeps the whole representation table in CPU memory
// (the M-GNN_Mem configuration).
type MemoryNodeStore struct {
	mu    sync.RWMutex
	table *tensor.Tensor
	state []float32
}

// NewMemoryNodeStore wraps table (used directly, not copied).
func NewMemoryNodeStore(table *tensor.Tensor) *MemoryNodeStore {
	return &MemoryNodeStore{table: table, state: make([]float32, table.Rows)}
}

// Dim implements NodeStore.
func (m *MemoryNodeStore) Dim() int { return m.table.Cols }

// NumNodes implements NodeStore.
func (m *MemoryNodeStore) NumNodes() int { return m.table.Rows }

// Table returns the underlying tensor (for full-ranking evaluation).
func (m *MemoryNodeStore) Table() *tensor.Tensor { return m.table }

// Gather implements NodeStore.
func (m *MemoryNodeStore) Gather(ids []int32, out *tensor.Tensor) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d := m.table.Cols
	for i, id := range ids {
		copy(out.Data[i*d:(i+1)*d], m.table.Row(int(id)))
	}
	return nil
}

// ApplyGrads implements NodeStore.
func (m *MemoryNodeStore) ApplyGrads(ids []int32, grads *tensor.Tensor, opt *nn.SparseAdaGrad) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, id := range ids {
		m.state[id] = opt.StepRow(m.table.Row(int(id)), grads.Row(i), m.state[id])
	}
	return nil
}

// Snapshot implements NodeStore.
func (m *MemoryNodeStore) Snapshot() (*tensor.Tensor, []float32, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.table.Clone(), append([]float32(nil), m.state...), nil
}

// Restore implements NodeStore.
func (m *MemoryNodeStore) Restore(table *tensor.Tensor, state []float32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.table.SameShape(table) {
		return fmt.Errorf("storage: restore shape %dx%d into %dx%d table",
			table.Rows, table.Cols, m.table.Rows, m.table.Cols)
	}
	copy(m.table.Data, table.Data)
	if state != nil {
		if len(state) != len(m.state) {
			return fmt.Errorf("storage: restore %d optimizer rows into %d", len(state), len(m.state))
		}
		copy(m.state, state)
	}
	return nil
}

// Close implements NodeStore.
func (m *MemoryNodeStore) Close() error { return nil }

// DiskNodeStore pages node representations between a file and a partition
// buffer of capacity c physical partitions (the M-GNN_Disk configuration,
// paper Fig. 2 storage layer). Optimizer state for learnable
// representations is persisted in a sibling file.
type DiskNodeStore struct {
	pt        partition.Partitioning
	dim       int
	learnable bool

	f  fault.File
	sf fault.File // per-node AdaGrad accumulators; nil when not learnable

	mu       sync.RWMutex
	capacity int
	slotData []float32 // capacity × partSize × dim
	slotOpt  []float32 // capacity × partSize
	resident map[int]int
	slotPart []int
	dirty    []bool
	free     []int

	stagedMu sync.Mutex
	staged   map[int]*stagedPartition
	pending  sync.WaitGroup
	// Reusable staging buffers (data sized PartSize*dim, opt sized
	// PartSize): Prefetch pops, LoadSet pushes back after consuming the
	// staged bytes, bounded to capacity buffers so the pool stays small
	// even when a pipeline prefetches aggressively. The async write-back
	// path borrows from the same pool.
	stagePool    [][]float32
	stageOptPool [][]float32

	// Evict-side double buffering: dirty evicted partitions are copied
	// into a staging buffer and written back by a background goroutine,
	// so the write leaves the trainer's critical path. A load of a
	// partition with an in-flight write is served from the write buffer
	// (it is the newest data). wbErr latches the first async write
	// failure and is surfaced by the next LoadSet/Flush/Close.
	wbMu      sync.Mutex
	writeback map[int]*pendingWrite
	wbPending sync.WaitGroup
	wbErr     error
	// failed retains the staging buffers of async write-backs that
	// errored: they hold the only current copy of those partitions, so
	// recycling them would lose updates. Flush retries them (clearing
	// wbErr when every retry lands), keeping the store consistent for
	// another attempt after the epoch surfaces the error.
	failed map[int]*failedWrite

	// Quantized (read-only) tables: the file holds quant-encoded
	// elements; readPartition moves only the compressed bytes across the
	// (simulated) device and dequantizes into the float32 buffer. For
	// int8, qscale/qzero hold the per-node affine parameters from the
	// sidecar, loaded fully at open (8 bytes per node).
	quant  tensor.QuantKind
	qscale []float32
	qzero  []float32

	stats    Stats
	throttle *Throttle
	tracer   atomic.Pointer[obs.Tracer] // evict write-back spans; nil = off
}

// pendingWrite is one in-flight asynchronous partition write-back.
type pendingWrite struct {
	done chan struct{}
	data []float32
	opt  []float32
}

// failedWrite holds the buffers of a write-back that errored, pending a
// Flush retry.
type failedWrite struct {
	data []float32
	opt  []float32
}

type stagedPartition struct {
	done chan struct{}
	data []float32
	opt  []float32
	err  error
}

// DiskStoreConfig configures CreateDiskNodeStore.
type DiskStoreConfig struct {
	Dir       string
	Part      partition.Partitioning
	Dim       int
	Capacity  int  // buffer capacity c in physical partitions
	Learnable bool // track AdaGrad state and write updates back
	Throttle  *Throttle
	// Init fills the initial representation of node id into row; nil
	// leaves representations zero.
	Init func(id int32, row []float32)

	// Quant is the on-disk element encoding of an opened (read-only)
	// table file; QuantNone means plain float32. ScalePath names the
	// int8 (scale, zero) sidecar, required when Quant is QuantI8.
	Quant     tensor.QuantKind
	ScalePath string

	// FS is the file-opening seam; nil means the real filesystem. Tests
	// and the chaos harness pass a fault.Injector.
	FS fault.FS
}

// newDiskNodeStore builds the in-memory store state (empty buffer, full
// free list) over an already-open table file.
func newDiskNodeStore(cfg DiskStoreConfig, f fault.File) *DiskNodeStore {
	s := &DiskNodeStore{
		pt:        cfg.Part,
		dim:       cfg.Dim,
		learnable: cfg.Learnable,
		f:         f,
		capacity:  cfg.Capacity,
		slotData:  make([]float32, cfg.Capacity*cfg.Part.PartSize*cfg.Dim),
		resident:  make(map[int]int, cfg.Capacity),
		slotPart:  make([]int, cfg.Capacity),
		dirty:     make([]bool, cfg.Capacity),
		staged:    make(map[int]*stagedPartition),
		writeback: make(map[int]*pendingWrite),
		failed:    make(map[int]*failedWrite),
		quant:     cfg.Quant,
		throttle:  cfg.Throttle,
	}
	for i := range s.slotPart {
		s.slotPart[i] = -1
		s.free = append(s.free, i)
	}
	if cfg.Learnable {
		s.slotOpt = make([]float32, cfg.Capacity*cfg.Part.PartSize)
	}
	return s
}

// CreateDiskNodeStore writes the initial table to disk and opens a store
// with an empty buffer.
func CreateDiskNodeStore(cfg DiskStoreConfig) (*DiskNodeStore, error) {
	if cfg.Capacity <= 0 || cfg.Capacity > cfg.Part.NumPartitions {
		return nil, fmt.Errorf("storage: capacity %d out of range (1..%d)", cfg.Capacity, cfg.Part.NumPartitions)
	}
	if cfg.Quant != tensor.QuantNone {
		return nil, fmt.Errorf("storage: quantized tables are written by ingest and opened read-only, not created")
	}
	fsys := fault.Or(cfg.FS)
	f, err := fsys.Create(filepath.Join(cfg.Dir, "nodes.bin"))
	if err != nil {
		return nil, err
	}
	s := newDiskNodeStore(cfg, f)
	if cfg.Learnable {
		sf, err := fsys.Create(filepath.Join(cfg.Dir, "nodes.opt.bin"))
		if err != nil {
			f.Close()
			return nil, err
		}
		s.sf = sf
	}
	// Write the initial table partition by partition (sequential IO).
	row := make([]float32, cfg.Dim)
	buf := make([]float32, 0, cfg.Part.PartSize*cfg.Dim)
	for p := 0; p < cfg.Part.NumPartitions; p++ {
		start, end := cfg.Part.Range(p)
		buf = buf[:0]
		for id := start; id < end; id++ {
			for i := range row {
				row[i] = 0
			}
			if cfg.Init != nil {
				cfg.Init(id, row)
			}
			buf = append(buf, row...)
		}
		if err := writeFloats(f, int64(start)*int64(cfg.Dim)*4, buf, nil, nil); err != nil {
			s.Close()
			return nil, err
		}
	}
	if cfg.Learnable {
		zeros := make([]float32, cfg.Part.NumNodes)
		if err := writeFloats(s.sf, 0, zeros, nil, nil); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// OpenDiskNodeStore pages an existing representation table file — e.g. a
// preprocessed dataset's feature shard — without rewriting it; the file
// must hold NumNodes x Dim float32 rows in node-ID order, exactly the
// layout CreateDiskNodeStore (and mariusprep) write. Only read-only
// stores can be opened this way: learnable tables are created fresh per
// training run (their optimizer state starts at zero). cfg.Dir and
// cfg.Init are ignored.
func OpenDiskNodeStore(cfg DiskStoreConfig, path string) (*DiskNodeStore, error) {
	if cfg.Learnable {
		return nil, fmt.Errorf("storage: open of %s: learnable stores must be created, not opened", path)
	}
	if cfg.Capacity <= 0 || cfg.Capacity > cfg.Part.NumPartitions {
		return nil, fmt.Errorf("storage: capacity %d out of range (1..%d)", cfg.Capacity, cfg.Part.NumPartitions)
	}
	// Training never writes a non-learnable store, but Restore (the
	// checkpoint path) may overwrite the table, so prefer read-write and
	// fall back to read-only on write-protected datasets — there
	// training still works, and Restore surfaces the write failure.
	fsys := fault.Or(cfg.FS)
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if os.IsPermission(err) {
		f, err = fsys.Open(path)
	}
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	eb := int64(cfg.Quant.ElemBytes())
	if want := int64(cfg.Part.NumNodes) * int64(cfg.Dim) * eb; st.Size() < want {
		f.Close()
		return nil, corrupt(filepath.Base(path), "%d bytes on disk, %d nodes x %d dims at %d bytes/elem need %d (truncated)",
			st.Size(), cfg.Part.NumNodes, cfg.Dim, eb, want)
	}
	s := newDiskNodeStore(cfg, f)
	if cfg.Quant == tensor.QuantI8 {
		if cfg.ScalePath == "" {
			f.Close()
			return nil, fmt.Errorf("storage: open of %s: int8 table needs a scale sidecar", path)
		}
		sf, err := fsys.Open(cfg.ScalePath)
		if err != nil {
			f.Close()
			return nil, err
		}
		pairs := make([]float32, 2*cfg.Part.NumNodes)
		err = readFloats(sf, 0, pairs, nil, nil)
		sf.Close()
		if err != nil {
			f.Close()
			return nil, corrupt(filepath.Base(cfg.ScalePath), "short read: %v", err)
		}
		s.qscale = make([]float32, cfg.Part.NumNodes)
		s.qzero = make([]float32, cfg.Part.NumNodes)
		for i := range s.qscale {
			s.qscale[i], s.qzero[i] = pairs[2*i], pairs[2*i+1]
		}
	}
	return s, nil
}

// Dim implements NodeStore.
func (s *DiskNodeStore) Dim() int { return s.dim }

// NumNodes implements NodeStore.
func (s *DiskNodeStore) NumNodes() int { return s.pt.NumNodes }

// Stats returns the store's IO counters.
func (s *DiskNodeStore) Stats() *Stats { return &s.stats }

// Capacity returns the buffer capacity c in physical partitions, which
// also bounds the reusable staging pool (the pipeline clamps its
// lookahead so staging demand fits — policy.Plan.MaxLookahead).
func (s *DiskNodeStore) Capacity() int { return s.capacity }

// Resident returns the sorted list of partitions currently buffered.
func (s *DiskNodeStore) Resident() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.resident))
	for p := range s.resident {
		out = append(out, p)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (s *DiskNodeStore) partFloatRange(p int) (off int64, count int) {
	start, end := s.pt.Range(p)
	return int64(start) * int64(s.dim) * 4, int(end-start) * s.dim
}

// readPartition loads partition p's floats (and optimizer state) from disk.
func (s *DiskNodeStore) readPartition(p int, data, opt []float32) error {
	if s.quant != tensor.QuantNone {
		return s.readQuantPartition(p, data)
	}
	off, _ := s.partFloatRange(p)
	if err := readFloats(s.f, off, data, &s.stats, s.throttle); err != nil {
		return fmt.Errorf("storage: read partition %d: %w", p, err)
	}
	if s.learnable {
		start, _ := s.pt.Range(p)
		if err := readFloats(s.sf, int64(start)*4, opt, &s.stats, s.throttle); err != nil {
			return fmt.Errorf("storage: read opt state %d: %w", p, err)
		}
	}
	return nil
}

// readQuantPartition reads partition p's compressed bytes — only the
// compressed size crosses the device (and counts toward Stats and the
// Throttle; that is the partition-swap IO the quantization saves) — and
// dequantizes row by row into the store's float32 buffer. Dequantization
// is a pure element-wise function of bytes fixed at ingest, so the
// buffer contents are identical on every load, worker count, and run.
func (s *DiskNodeStore) readQuantPartition(p int, data []float32) error {
	start, end := s.pt.Range(p)
	eb := s.quant.ElemBytes()
	raw := make([]byte, int(end-start)*s.dim*eb)
	off := int64(start) * int64(s.dim) * int64(eb)
	if err := readBytes(s.f, off, raw, &s.stats, s.throttle); err != nil {
		return fmt.Errorf("storage: read partition %d: %w", p, err)
	}
	q := &tensor.QTable{Kind: s.quant, Rows: int(end - start), Cols: s.dim, Raw: raw}
	if s.quant == tensor.QuantI8 {
		q.Scale = s.qscale[start:end]
		q.Zero = s.qzero[start:end]
	}
	for r := 0; r < q.Rows; r++ {
		q.DequantRowInto(r, data[r*s.dim:(r+1)*s.dim])
	}
	return nil
}

// writePartition flushes slot contents for partition p back to disk.
func (s *DiskNodeStore) writePartition(p, slot int) error {
	base := slot * s.pt.PartSize * s.dim
	count := s.pt.Rows(p) * s.dim
	var opt []float32
	if s.learnable {
		ob := slot * s.pt.PartSize
		opt = s.slotOpt[ob : ob+s.pt.Rows(p)]
	}
	return s.writePartitionFrom(p, s.slotData[base:base+count], opt)
}

// writePartitionFrom writes partition p's representation rows (and, for
// learnable stores, optimizer state) from the given buffers.
func (s *DiskNodeStore) writePartitionFrom(p int, data, opt []float32) error {
	if s.quant != tensor.QuantNone {
		// Quantized tables are fixed at ingest; nothing marks them dirty.
		return fmt.Errorf("storage: write partition %d: quantized table is read-only", p)
	}
	off, _ := s.partFloatRange(p)
	if err := writeFloats(s.f, off, data, &s.stats, s.throttle); err != nil {
		return fmt.Errorf("storage: write partition %d: %w", p, err)
	}
	if s.learnable {
		start, _ := s.pt.Range(p)
		if err := writeFloats(s.sf, int64(start)*4, opt, &s.stats, s.throttle); err != nil {
			return fmt.Errorf("storage: write opt state %d: %w", p, err)
		}
	}
	return nil
}

// waitWriteback blocks until no write-back for p is in flight. Safe to
// call while holding s.mu: the writer goroutines never take it.
func (s *DiskNodeStore) waitWriteback(p int) {
	for {
		s.wbMu.Lock()
		wb := s.writeback[p]
		s.wbMu.Unlock()
		if wb == nil {
			return
		}
		<-wb.done
	}
}

// takeWbErr reports the sticky first async write-back failure.
func (s *DiskNodeStore) takeWbErr() error {
	s.wbMu.Lock()
	defer s.wbMu.Unlock()
	return s.wbErr
}

// evictAsync double-buffers the evict side of a swap: partition p's slot
// contents are copied into staging buffers and written back by a
// background goroutine, so the (throttled) write happens off the
// trainer's critical path, overlapped with the next visit's compute. The
// caller must hold s.mu.
func (s *DiskNodeStore) evictAsync(p, slot int) {
	s.waitWriteback(p) // an earlier evict of p must land first (write order)
	rows := s.pt.Rows(p)
	s.stagedMu.Lock()
	data, opt := s.getStageBufs(p)
	s.stagedMu.Unlock()
	base := slot * s.pt.PartSize * s.dim
	copy(data, s.slotData[base:base+rows*s.dim])
	if s.learnable {
		ob := slot * s.pt.PartSize
		copy(opt, s.slotOpt[ob:ob+rows])
	}
	wb := &pendingWrite{done: make(chan struct{}), data: data, opt: opt}
	s.wbMu.Lock()
	s.writeback[p] = wb
	s.wbMu.Unlock()
	s.wbPending.Add(1)
	go func() {
		defer s.wbPending.Done()
		t0 := time.Now()
		err := s.writePartitionFrom(p, data, opt)
		s.tracer.Load().Span("storage", "evict_writeback", obs.TIDEvict, t0, time.Since(t0))
		// Delete the entry and signal completion in one critical section:
		// a LoadSet serving a load from wb.data copies under wbMu, so the
		// buffers cannot be recycled mid-copy.
		var superseded *failedWrite
		s.wbMu.Lock()
		if err != nil {
			if s.wbErr == nil {
				s.wbErr = err
			}
			// Keep the buffers: they hold the only current copy of the
			// partition (the disk write did not land). Flush retries
			// them; meanwhile the sticky error surfaces on the next
			// LoadSet, failing the epoch rather than being swallowed
			// here.
			superseded = s.failed[p]
			s.failed[p] = &failedWrite{data: data, opt: opt}
		} else if old := s.failed[p]; old != nil {
			// This successful write carries newer data than the earlier
			// failed one; the stale retry entry is obsolete.
			superseded = old
			delete(s.failed, p)
		}
		delete(s.writeback, p)
		close(wb.done)
		s.wbMu.Unlock()
		s.stagedMu.Lock()
		if err == nil {
			s.putStageBufs(data, opt)
		}
		if superseded != nil {
			s.putStageBufs(superseded.data, superseded.opt)
		}
		s.stagedMu.Unlock()
	}()
}

// getStageBufs pops (or allocates) staging buffers for partition p; the
// caller must hold stagedMu.
func (s *DiskNodeStore) getStageBufs(p int) (data, opt []float32) {
	rows := s.pt.Rows(p)
	if k := len(s.stagePool); k > 0 {
		data = s.stagePool[k-1][:rows*s.dim]
		s.stagePool = s.stagePool[:k-1]
	} else {
		data = make([]float32, rows*s.dim, s.pt.PartSize*s.dim)
	}
	if s.learnable {
		if k := len(s.stageOptPool); k > 0 {
			opt = s.stageOptPool[k-1][:rows]
			s.stageOptPool = s.stageOptPool[:k-1]
		} else {
			opt = make([]float32, rows, s.pt.PartSize)
		}
	}
	return data, opt
}

// putStageBufs returns consumed staging buffers to the pool, keeping at
// most capacity of each; the caller must hold stagedMu.
func (s *DiskNodeStore) putStageBufs(data, opt []float32) {
	if data != nil && len(s.stagePool) < s.capacity {
		s.stagePool = append(s.stagePool, data[:cap(data)])
	}
	if opt != nil && len(s.stageOptPool) < s.capacity {
		s.stageOptPool = append(s.stageOptPool, opt[:cap(opt)])
	}
}

// Prefetch begins loading the given partitions into staging memory in the
// background (paper Fig. 2 step A: the buffer and IO manager prefetch the
// next partition set while training proceeds on the current one). Staging
// memory comes from a small reusable buffer pool; a later LoadSet of the
// same partitions consumes the staged bytes off the critical path and
// recycles the buffers. Safe to call concurrently with reads and with
// LoadSet (the pipeline prefetcher runs it ahead of the trainer).
func (s *DiskNodeStore) Prefetch(parts []int) {
	s.mu.RLock()
	need := make([]int, 0, len(parts))
	for _, p := range parts {
		if _, ok := s.resident[p]; !ok {
			need = append(need, p)
		}
	}
	s.mu.RUnlock()

	s.stagedMu.Lock()
	defer s.stagedMu.Unlock()
	for _, p := range need {
		if _, ok := s.staged[p]; ok {
			continue
		}
		// Partitions with an in-flight write-back are not staged: the
		// disk bytes are mid-rewrite, and a later LoadSet serves them
		// straight from the write buffer anyway. The check lives inside
		// the stagedMu section that inserts the entry so it cannot race
		// an eviction: a write-back registered after this check implies
		// the eviction's staged-entry invalidation (which needs stagedMu)
		// runs after our insert and removes it.
		s.wbMu.Lock()
		_, busy := s.writeback[p]
		s.wbMu.Unlock()
		if busy {
			continue
		}
		sp := &stagedPartition{done: make(chan struct{})}
		sp.data, sp.opt = s.getStageBufs(p)
		s.staged[p] = sp
		s.pending.Add(1)
		go func(p int, sp *stagedPartition) {
			defer s.pending.Done()
			sp.err = s.readPartition(p, sp.data, sp.opt)
			close(sp.done)
		}(p, sp)
	}
}

// LoadSet swaps the buffer so that exactly the partitions in parts are
// resident, writing back dirty evicted partitions and consuming any
// prefetched data. len(parts) must not exceed the buffer capacity.
func (s *DiskNodeStore) LoadSet(parts []int) error {
	if len(parts) > s.capacity {
		return fmt.Errorf("storage: set of %d partitions exceeds capacity %d", len(parts), s.capacity)
	}
	want := make(map[int]bool, len(parts))
	for _, p := range parts {
		want[p] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.takeWbErr(); err != nil {
		return err
	}
	// Evict partitions not wanted; dirty ones are written back
	// asynchronously (the evict side of the double buffer).
	for p, slot := range s.resident {
		if want[p] {
			continue
		}
		if s.dirty[slot] {
			s.evictAsync(p, slot)
		}
		s.dirty[slot] = false
		s.slotPart[slot] = -1
		s.free = append(s.free, slot)
		delete(s.resident, p)
		s.stats.Swaps.Add(1)
		// A prefetch raced with this partition's residency (staged while
		// it was in the buffer): its bytes predate the write-back above,
		// so the entry must never be consumed. Drop it; the in-flight
		// read goroutine still owns the buffer, which is simply not
		// returned to the pool.
		s.stagedMu.Lock()
		delete(s.staged, p)
		s.stagedMu.Unlock()
	}
	// Load missing partitions: an in-flight write-back buffer is the
	// freshest copy, then staged (prefetched) data, then a synchronous
	// read.
	for _, p := range parts {
		if _, ok := s.resident[p]; ok {
			continue
		}
		slot := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		base := slot * s.pt.PartSize * s.dim
		count := s.pt.Rows(p) * s.dim

		s.wbMu.Lock()
		if wb := s.writeback[p]; wb != nil {
			// Copy under wbMu: the writer only recycles wb's buffers
			// after deleting the entry in its own wbMu section.
			copy(s.slotData[base:base+count], wb.data)
			if s.learnable {
				copy(s.slotOpt[slot*s.pt.PartSize:], wb.opt)
			}
			s.wbMu.Unlock()
			s.stats.PrefetchHits.Add(1)
			s.resident[p] = slot
			s.slotPart[slot] = p
			continue
		}
		s.wbMu.Unlock()

		s.stagedMu.Lock()
		sp := s.staged[p]
		if sp != nil {
			delete(s.staged, p)
		}
		s.stagedMu.Unlock()

		if sp != nil {
			// A hit means the staged read genuinely overlapped compute:
			// it had already finished when the swap consumed it. A load
			// that must block on an in-flight staged read spent the IO on
			// the critical path and counts as a miss.
			finished := false
			select {
			case <-sp.done:
				finished = true
			default:
				<-sp.done
			}
			if sp.err != nil {
				return sp.err
			}
			copy(s.slotData[base:base+count], sp.data)
			if s.learnable {
				copy(s.slotOpt[slot*s.pt.PartSize:], sp.opt)
			}
			s.stagedMu.Lock()
			s.putStageBufs(sp.data, sp.opt)
			s.stagedMu.Unlock()
			if finished {
				s.stats.PrefetchHits.Add(1)
			} else {
				s.stats.PrefetchMisses.Add(1)
			}
		} else {
			var opt []float32
			if s.learnable {
				opt = s.slotOpt[slot*s.pt.PartSize : slot*s.pt.PartSize+s.pt.Rows(p)]
			}
			if err := s.readPartition(p, s.slotData[base:base+count], opt); err != nil {
				return err
			}
			s.stats.PrefetchMisses.Add(1)
		}
		s.resident[p] = slot
		s.slotPart[slot] = p
	}
	return nil
}

// rowSlice returns the in-buffer representation row for node id; the
// caller must hold mu.
func (s *DiskNodeStore) rowSlice(id int32) ([]float32, int, error) {
	p := s.pt.Of(id)
	slot, ok := s.resident[p]
	if !ok {
		return nil, 0, fmt.Errorf("storage: node %d in partition %d is not resident", id, p)
	}
	start, _ := s.pt.Range(p)
	idx := slot*s.pt.PartSize + int(id-start)
	return s.slotData[idx*s.dim : (idx+1)*s.dim], idx, nil
}

// Gather implements NodeStore.
func (s *DiskNodeStore) Gather(ids []int32, out *tensor.Tensor) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, id := range ids {
		row, _, err := s.rowSlice(id)
		if err != nil {
			return err
		}
		copy(out.Data[i*s.dim:(i+1)*s.dim], row)
	}
	return nil
}

// ApplyGrads implements NodeStore.
func (s *DiskNodeStore) ApplyGrads(ids []int32, grads *tensor.Tensor, opt *nn.SparseAdaGrad) error {
	if !s.learnable {
		return fmt.Errorf("storage: ApplyGrads on a read-only store")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		row, idx, err := s.rowSlice(id)
		if err != nil {
			return err
		}
		s.slotOpt[idx] = opt.StepRow(row, grads.Row(i), s.slotOpt[idx])
		s.dirty[s.resident[s.pt.Of(id)]] = true
	}
	return nil
}

// retryFailed re-issues failed asynchronous write-backs synchronously,
// recycling their buffers and clearing the sticky error once every
// retained partition lands. Callers must have drained wbPending first.
func (s *DiskNodeStore) retryFailed() error {
	s.wbMu.Lock()
	parts := make([]int, 0, len(s.failed))
	for p := range s.failed {
		parts = append(parts, p)
	}
	s.wbMu.Unlock()
	sortInts(parts)
	for _, p := range parts {
		s.wbMu.Lock()
		fw := s.failed[p]
		s.wbMu.Unlock()
		if fw == nil {
			continue
		}
		if err := s.writePartitionFrom(p, fw.data, fw.opt); err != nil {
			s.wbMu.Lock()
			s.wbErr = err
			s.wbMu.Unlock()
			return err
		}
		s.wbMu.Lock()
		delete(s.failed, p)
		s.wbMu.Unlock()
		s.stagedMu.Lock()
		s.putStageBufs(fw.data, fw.opt)
		s.stagedMu.Unlock()
	}
	s.wbMu.Lock()
	defer s.wbMu.Unlock()
	if len(s.failed) == 0 {
		s.wbErr = nil
	}
	return s.wbErr
}

// Flush writes all dirty resident partitions back to disk and waits for
// in-flight asynchronous write-backs, so on return every update is
// durable. Write-backs that failed asynchronously are retried here from
// their retained buffers; if they now land, the sticky error clears and
// the store is fully consistent again.
func (s *DiskNodeStore) Flush() error {
	s.wbPending.Wait()
	if err := s.retryFailed(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, slot := range s.resident {
		if s.dirty[slot] {
			if err := s.writePartition(p, slot); err != nil {
				return err
			}
			s.dirty[slot] = false
		}
	}
	return nil
}

// ReadAll loads the entire table from disk into a tensor (for evaluation
// of small graphs). The buffer state is unaffected but dirty resident
// partitions are flushed first so the snapshot is current.
func (s *DiskNodeStore) ReadAll() (*tensor.Tensor, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	t := tensor.New(s.pt.NumNodes, s.dim)
	if s.quant != tensor.QuantNone {
		for p := 0; p < s.pt.NumPartitions; p++ {
			start, end := s.pt.Range(p)
			if err := s.readQuantPartition(p, t.Data[int(start)*s.dim:int(end)*s.dim]); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	if err := readFloats(s.f, 0, t.Data, &s.stats, s.throttle); err != nil {
		return nil, err
	}
	return t, nil
}

// Snapshot implements NodeStore: dirty resident partitions are flushed,
// then the full table and (for learnable stores) the per-row AdaGrad
// accumulators are read back from disk.
func (s *DiskNodeStore) Snapshot() (*tensor.Tensor, []float32, error) {
	t, err := s.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	var state []float32
	if s.learnable {
		state = make([]float32, s.pt.NumNodes)
		if err := readFloats(s.sf, 0, state, &s.stats, s.throttle); err != nil {
			return nil, nil, err
		}
	}
	return t, state, nil
}

// Restore implements NodeStore: the on-disk table (and accumulators) are
// overwritten and any resident partitions re-read so the buffer reflects
// the restored state.
func (s *DiskNodeStore) Restore(table *tensor.Tensor, state []float32) error {
	if s.quant != tensor.QuantNone {
		// Never reached in practice: only learnable tables are
		// checkpointed with contents, and quantized stores are read-only.
		return fmt.Errorf("storage: restore into a quantized (read-only) table")
	}
	s.pending.Wait()
	s.wbPending.Wait()
	s.stagedMu.Lock()
	s.staged = make(map[int]*stagedPartition)
	s.stagedMu.Unlock()
	// The checkpoint overwrites the whole table below, superseding any
	// retained failed write-backs; drop them and clear the sticky error.
	s.wbMu.Lock()
	for _, fw := range s.failed {
		s.stagedMu.Lock()
		s.putStageBufs(fw.data, fw.opt)
		s.stagedMu.Unlock()
	}
	s.failed = make(map[int]*failedWrite)
	s.wbErr = nil
	s.wbMu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if table.Rows != s.pt.NumNodes || table.Cols != s.dim {
		return fmt.Errorf("storage: restore shape %dx%d into %dx%d store",
			table.Rows, table.Cols, s.pt.NumNodes, s.dim)
	}
	if err := writeFloats(s.f, 0, table.Data, &s.stats, s.throttle); err != nil {
		return err
	}
	if s.learnable && state != nil {
		if len(state) != s.pt.NumNodes {
			return fmt.Errorf("storage: restore %d optimizer rows into %d", len(state), s.pt.NumNodes)
		}
		if err := writeFloats(s.sf, 0, state, &s.stats, s.throttle); err != nil {
			return err
		}
	}
	for p, slot := range s.resident {
		base := slot * s.pt.PartSize * s.dim
		count := s.pt.Rows(p) * s.dim
		var opt []float32
		if s.learnable {
			opt = s.slotOpt[slot*s.pt.PartSize : slot*s.pt.PartSize+s.pt.Rows(p)]
		}
		if err := s.readPartition(p, s.slotData[base:base+count], opt); err != nil {
			return err
		}
		s.dirty[slot] = false
	}
	return nil
}

// Close flushes (including pending asynchronous write-backs) and closes
// the underlying files.
func (s *DiskNodeStore) Close() error {
	s.pending.Wait()
	err := s.Flush()
	if e := s.f.Close(); err == nil {
		err = e
	}
	if s.sf != nil {
		if e := s.sf.Close(); err == nil {
			err = e
		}
	}
	return err
}
