package costmodel

import (
	"math"
	"testing"
	"time"
)

func TestTable2Catalog(t *testing.T) {
	if len(Table2) != 3 {
		t.Fatalf("catalog size %d", len(Table2))
	}
	inst := ByName("P3.2xLarge")
	if inst.GPUs != 1 || inst.CPUMemGB != 61 || inst.DollarsHr != 3.06 {
		t.Fatalf("P3.2xLarge = %+v", inst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown instance must panic")
		}
	}()
	ByName("nope")
}

func TestCostPerEpoch(t *testing.T) {
	inst := ByName("P3.2xLarge")
	got := CostPerEpoch(inst, 2*time.Hour)
	if math.Abs(got-6.12) > 1e-9 {
		t.Fatalf("cost = %v", got)
	}
}

func TestTable1OverheadsMatchPaperMagnitudes(t *testing.T) {
	// The paper reports Papers100M at 13 GB edges / 57 GB features / 70 GB
	// total; our formulae must land within rounding of those.
	for _, g := range Table1 {
		eb, fb, tb := g.Overheads()
		if tb != eb+fb {
			t.Fatal("total must be edges+features")
		}
		if g.Name == "Papers100M" {
			if math.Abs(float64(eb)/1e9-13) > 1 || math.Abs(float64(fb)/1e9-57) > 1 {
				t.Fatalf("Papers100M overheads %d/%d do not match the paper", eb, fb)
			}
		}
		if g.Name == "Hyperlink 2012" {
			if math.Abs(float64(eb)/1e9-1024) > 30 {
				t.Fatalf("Hyperlink edges %d GB off", eb/1e9)
			}
		}
	}
}
