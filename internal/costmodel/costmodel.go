// Package costmodel reproduces the monetary cost accounting of the paper:
// the AWS P3 instance catalog (Table 2), $/epoch conversion of measured
// runtimes, and the graph memory-overhead calculator behind Table 1.
package costmodel

import "time"

// Instance describes a cloud GPU machine (paper Table 2).
type Instance struct {
	Name      string
	DollarsHr float64
	GPUs      int
	CPUs      int
	CPUMemGB  int
}

// Table2 is the AWS P3 catalog used throughout the paper's evaluation.
var Table2 = []Instance{
	{Name: "P3.2xLarge", DollarsHr: 3.06, GPUs: 1, CPUs: 8, CPUMemGB: 61},
	{Name: "P3.8xLarge", DollarsHr: 12.24, GPUs: 4, CPUs: 32, CPUMemGB: 244},
	{Name: "P3.16xLarge", DollarsHr: 24.48, GPUs: 8, CPUs: 64, CPUMemGB: 488},
}

// ByName returns the catalog instance with the given name.
func ByName(name string) Instance {
	for _, inst := range Table2 {
		if inst.Name == name {
			return inst
		}
	}
	panic("costmodel: unknown instance " + name)
}

// CostPerEpoch converts an epoch runtime to dollars on the instance.
func CostPerEpoch(inst Instance, epoch time.Duration) float64 {
	return inst.DollarsHr * epoch.Hours()
}

// GraphSpec describes a dataset's published dimensions (Table 1 inputs).
type GraphSpec struct {
	Name    string
	Nodes   int64
	Edges   int64
	FeatDim int
	HasRel  bool // knowledge graphs store a relation per edge
}

// Table1 lists the six graphs of paper Table 1.
var Table1 = []GraphSpec{
	{Name: "Papers100M", Nodes: 111_000_000, Edges: 1_620_000_000, FeatDim: 128},
	{Name: "Mag240M-Cites", Nodes: 122_000_000, Edges: 1_300_000_000, FeatDim: 768},
	{Name: "Freebase86M", Nodes: 86_000_000, Edges: 338_000_000, FeatDim: 100, HasRel: true},
	{Name: "WikiKG90Mv2", Nodes: 91_000_000, Edges: 601_000_000, FeatDim: 100, HasRel: true},
	{Name: "Hyperlink 2012", Nodes: 3_500_000_000, Edges: 128_000_000_000, FeatDim: 50},
	{Name: "Facebook15", Nodes: 1_400_000_000, Edges: 1_000_000_000_000, FeatDim: 100},
}

// Overheads returns the edge, feature, and total storage requirement in
// bytes, matching Table 1's accounting (4-byte IDs and float32 features).
func (g GraphSpec) Overheads() (edgeBytes, featBytes, totalBytes int64) {
	per := int64(8)
	if g.HasRel {
		per = 12
	}
	edgeBytes = g.Edges * per
	featBytes = g.Nodes * int64(g.FeatDim) * 4
	return edgeBytes, featBytes, edgeBytes + featBytes
}
