package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// JournalVersion guards the run-journal format.
const JournalVersion = 1

// JournalSuffix is appended to the checkpoint path to name its run
// journal (run.ckpt -> run.ckpt.journal).
const JournalSuffix = ".journal"

// ErrNoJournal is returned by FindJournal when the directory holds no
// run journal — either no journaled run ever started there, or the
// process died before the journal's first atomic write landed. In the
// latter case no training state exists either (the journal is written
// before the first epoch), so the caller's recovery is simply to start
// the run fresh.
var ErrNoJournal = errors.New("ckpt: no run journal")

// EpochRecord is one completed epoch in a run journal: enough to
// reconstruct the per-epoch loss trajectory of the finished prefix
// without retraining it. Float64 values round-trip bit-exactly through
// JSON (Go emits the shortest representation that re-parses to the same
// bits), which the crash-resume byte-identity contract relies on.
type EpochRecord struct {
	Epoch  int     `json:"epoch"` // 1-based, matching train.EpochStats.Epoch
	Loss   float64 `json:"loss"`
	Metric float64 `json:"metric,omitempty"`
}

// Journal is the durable record of a checkpointed training run,
// written atomically (fsync-temp-rename, like the checkpoint itself)
// next to the checkpoint after every completed epoch. After a crash,
// marius.Resume replays it: restore the newest checkpoint, skip the
// recorded epochs, retrain the rest — landing on losses and a final
// checkpoint byte-identical to an uninterrupted run.
type Journal struct {
	Version int `json:"version"`

	// Task, Seed, and DataDir pin the run's identity; Resume rebuilds
	// the session from DataDir and refuses a journal whose task or seed
	// disagrees with the restored checkpoint.
	Task    string `json:"task"`
	Seed    int64  `json:"seed"`
	DataDir string `json:"data_dir"`

	// Epochs is the run's target epoch count; Ckpt the checkpoint's
	// basename next to the journal; CkptEvery the interval-checkpoint
	// cadence (0: only the final checkpoint).
	Epochs    int    `json:"epochs"`
	Ckpt      string `json:"ckpt"`
	CkptEvery int    `json:"ckpt_every,omitempty"`

	// Opts carries the caller-layer options needed to rebuild the
	// session identically (dimensions, batch size, learning rates, ...),
	// opaque to this package.
	Opts json.RawMessage `json:"opts,omitempty"`

	// Done lists the completed epochs in order.
	Done []EpochRecord `json:"done"`
}

// JournalPath names the run journal for a checkpoint path.
func JournalPath(ckptPath string) string { return ckptPath + JournalSuffix }

// WriteJournal atomically and durably writes j to path through fsys
// (nil means the real filesystem), with the same temp-fsync-rename
// discipline as checkpoints: a crash leaves either the previous journal
// or the complete new one.
func WriteJournal(fsys fault.FS, path string, j *Journal) error {
	return atomicWrite(fsys, path, ".journal-*", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("ckpt: encode journal: %w", err)
		}
		return nil
	})
}

// ReadJournal loads and validates a run journal.
func ReadJournal(path string) (*Journal, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Journal
	if err := json.Unmarshal(buf, &j); err != nil {
		return nil, fmt.Errorf("ckpt: malformed journal %s: %w", path, err)
	}
	if j.Version != JournalVersion {
		return nil, fmt.Errorf("ckpt: journal %s has version %d, this build reads %d", path, j.Version, JournalVersion)
	}
	if j.Ckpt == "" || j.Epochs <= 0 {
		return nil, fmt.Errorf("ckpt: journal %s missing checkpoint name or epoch target", path)
	}
	for i, r := range j.Done {
		if r.Epoch != i+1 {
			return nil, fmt.Errorf("ckpt: journal %s records epoch %d at position %d", path, r.Epoch, i)
		}
	}
	return &j, nil
}

// FindJournal locates the single run journal in dir, returning its path
// and contents. No journal at all returns ErrNoJournal; more than one
// is an error (the directory hosted multiple checkpointed runs, and the
// caller must name one explicitly).
func FindJournal(dir string) (string, *Journal, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+JournalSuffix))
	if err != nil {
		return "", nil, err
	}
	switch len(matches) {
	case 0:
		return "", nil, fmt.Errorf("%w in %s", ErrNoJournal, dir)
	case 1:
	default:
		return "", nil, fmt.Errorf("ckpt: %d run journals in %s; resume from an explicit checkpoint path", len(matches), dir)
	}
	j, err := ReadJournal(matches[0])
	if err != nil {
		return "", nil, err
	}
	return matches[0], j, nil
}

// SweepTemps removes stale atomic-write temp files (".ckpt-*",
// ".journal-*") left in dir by a crashed process. The atomic-write
// protocol never promotes a temp file that was not fully synced, so any
// survivor is garbage by construction. Returns the removed paths.
func SweepTemps(dir string) ([]string, error) {
	var removed []string
	for _, pat := range []string{".ckpt-*", ".journal-*"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return removed, err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return removed, err
			}
			removed = append(removed, m)
		}
	}
	return removed, nil
}
