package ckpt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

func sampleFile() *File {
	return &File{
		Version: Version,
		Task:    "lp",
		Epoch:   3,
		Seed:    42,
		Params: []nn.ParamState{
			{Name: "w", Rows: 2, Cols: 2, Value: []float32{1, 2, 3, 4}, M: []float32{0, 0, 0, 0}, V: []float32{0, 0, 0, 0}},
		},
		TableRows: 2, TableCols: 2,
		Table:    []float32{5, 6, 7, 8},
		OptState: []float32{0.1, 0.2, 0.3, 0.4},
		Model: ModelMeta{
			Kind: KindDistMult, Dim: 2, NumRels: 1, FeatureDim: 2,
		},
		DatasetUUID: "test-uuid",
	}
}

// leftoverTemps lists .ckpt-* temp files in dir; atomic writes must never
// leave one behind, whether they succeed or fail.
func leftoverTemps(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return matches
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	want := sampleFile()
	if err := Write(path, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Task != want.Task || got.Epoch != want.Epoch || got.Seed != want.Seed {
		t.Errorf("header mismatch: got %+v", got)
	}
	if len(got.Table) != len(want.Table) {
		t.Fatalf("table length: got %d want %d", len(got.Table), len(want.Table))
	}
	for i := range want.Table {
		if got.Table[i] != want.Table[i] {
			t.Errorf("table[%d]: got %v want %v", i, got.Table[i], want.Table[i])
		}
	}
	if got.Model.Kind != KindDistMult || got.Model.Dim != 2 || got.Model.NumRels != 1 || got.Model.FeatureDim != 2 {
		t.Errorf("model meta mismatch: got %+v", got.Model)
	}
	if left := leftoverTemps(t, dir); len(left) != 0 {
		t.Errorf("temp files left behind after successful Write: %v", left)
	}
}

// os.CreateTemp creates files 0600; a checkpoint that keeps that mode is
// invisible to any other user (e.g. a serving process) after rename.
// Write must publish it world-readable like every other artifact.
func TestWriteFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Write(path, sampleFile()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("checkpoint mode = %o, want 644", perm)
	}
}

// A failed write (simulating a short write / encode error) must leave no
// temp file behind and must not disturb an existing checkpoint at the
// destination.
func TestAtomicWriteFailureLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := Write(path, sampleFile()); err != nil {
		t.Fatalf("seed Write: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read seed checkpoint: %v", err)
	}

	boom := errors.New("short write")
	err = atomicWrite(nil, path, ".ckpt-*", func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("atomicWrite error = %v, want %v", err, boom)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination gone after failed write: %v", err)
	}
	if string(after) != string(before) {
		t.Errorf("failed write corrupted the existing checkpoint")
	}
	if left := leftoverTemps(t, dir); len(left) != 0 {
		t.Errorf("temp files left behind after failed write: %v", left)
	}
	if got, err := Read(path); err != nil || got.Epoch != 3 {
		t.Errorf("existing checkpoint unreadable after failed write: %v", err)
	}
}

func TestWriteOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	first := sampleFile()
	if err := Write(path, first); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	second := sampleFile()
	second.Epoch = 9
	if err := Write(path, second); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Epoch != 9 {
		t.Errorf("epoch = %d, want 9 (overwrite not visible)", got.Epoch)
	}
	if left := leftoverTemps(t, dir); len(left) != 0 {
		t.Errorf("temp files left behind: %v", left)
	}
}
