// Package ckpt defines the on-disk checkpoint format shared by training
// (marius.Session.Save/Restore) and forward-only serving (internal/serve).
// A checkpoint captures everything needed to resume training — dense
// parameters with optimizer moments, the learnable node representation
// table with its sparse-AdaGrad accumulators, the RNG seed and the epoch
// counter — plus the model-shape metadata and dataset provenance that let
// an inference loader rebuild the model without a training session and
// reject a mismatched dataset by name instead of panicking mid-forward.
//
// The format is gob with name-matched fields: version-1 checkpoints
// written before ModelMeta/DatasetUUID existed still decode (the new
// fields read back zero), and new checkpoints decode under old readers
// (unknown fields are skipped).
package ckpt

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
)

// Version guards the on-disk format.
const Version = 1

// ErrMismatch is wrapped by load-time validation errors: the checkpoint
// does not fit the session or dataset it is being loaded against. The
// message names the offending field (task, dim, layers, nodes, ...).
var ErrMismatch = errors.New("checkpoint/dataset mismatch")

// Mismatch returns a validation error wrapping ErrMismatch that names the
// offending checkpoint field.
func Mismatch(field, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrMismatch, field, fmt.Sprintf(format, args...))
}

// Model kind names recorded in ModelMeta.Kind.
const (
	KindSage     = "sage"
	KindGAT      = "gat"
	KindGCN      = "gcn"
	KindDistMult = "distmult"
)

// ModelMeta records the model shape a checkpoint's parameters were
// trained with, so a forward-only loader can rebuild the encoder/decoder
// and validate the target dataset before touching any kernel.
type ModelMeta struct {
	// Kind is one of the Kind... constants ("sage", "gat", "gcn",
	// "distmult"). Empty in checkpoints written before metadata existed.
	Kind string
	// Dim is the hidden (and, for link prediction, embedding) width.
	Dim int
	// Layers is the encoder depth (0 for decoder-only models).
	Layers int
	// Fanouts are the per-layer sampling fanouts, innermost first.
	Fanouts []int
	// Decoder is the link-prediction decoder kind ("distmult", "complex",
	// "transe"). Empty in checkpoints written before multiple decoders
	// existed, which loaders treat as "distmult" (the only kind then).
	Decoder string
	// NumRels is the relation count the decoder was built with (link
	// prediction; at least 1).
	NumRels int
	// NumClasses is the classifier output width (node classification).
	NumClasses int
	// FeatureDim is the base representation width: the feature dimension
	// for node classification, Dim for link prediction.
	FeatureDim int
}

// File is the serialized session state.
type File struct {
	Version int
	Task    string
	Epoch   int
	Seed    int64

	Params []nn.ParamState

	// TableRows/TableCols always record the store shape for validation;
	// Table/OptState carry the data only for learnable representations
	// (fixed feature tables are reproducible from the graph).
	TableRows, TableCols int
	Table                []float32
	OptState             []float32

	// Model describes how to rebuild the network from Params alone.
	Model ModelMeta
	// DatasetUUID is the manifest UUID of the dataset the session trained
	// on (empty for in-memory graphs or pre-UUID datasets); serving warns
	// when it differs from the dataset being served.
	DatasetUUID string
}

// Write saves f to path atomically and durably (write-to-temp, fsync,
// rename, fsync the directory): a crash at any point leaves either the
// previous checkpoint or the complete new one, never a truncated file.
func Write(path string, f *File) error {
	return WriteFS(nil, path, f)
}

// WriteFS is Write writing through fsys (nil means the real
// filesystem), so crash-injection tests can kill a run mid-checkpoint.
func WriteFS(fsys fault.FS, path string, f *File) error {
	return atomicWrite(fsys, path, ".ckpt-*", func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(f); err != nil {
			return fmt.Errorf("ckpt: encode checkpoint: %w", err)
		}
		return nil
	})
}

// atomicWrite streams fn's output into a temp file in path's directory,
// fsyncs it, makes it world-readable (CreateTemp's 0600 would hide the
// checkpoint from e.g. a serving process running as another user — every
// other artifact the tools write is 0644 under the umask), renames it
// over path, and fsyncs the directory so the rename itself survives a
// crash. On any error the temp file is removed and path is untouched.
func atomicWrite(fsys fault.FS, path, pattern string, fn func(io.Writer) error) error {
	fs := fault.Or(fsys)
	tmp, err := fs.CreateTemp(filepath.Dir(path), pattern)
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name())
	if err := fn(retryWriter{tmp}); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// retryWriter adapts a fault-injectable file to the strict io.Writer
// contract: short writes (n < len(p) with nil error — POSIX-permitted
// partial IO) are continued, and transient errors are retried with the
// same bounded exponential backoff as the storage layer, so a gob or
// JSON encoder streaming through it never sees a retryable blip.
type retryWriter struct{ f fault.File }

func (w retryWriter) Write(p []byte) (int, error) {
	total, attempt := 0, 0
	for len(p) > 0 {
		n, err := w.f.Write(p)
		total += n
		p = p[n:]
		if len(p) == 0 {
			return total, nil
		}
		if err == nil {
			if n == 0 {
				return total, io.ErrNoProgress
			}
			attempt = 0
			continue
		}
		if n > 0 {
			attempt = 0
		}
		if !fault.IsTransient(err) || attempt >= 4 {
			return total, err
		}
		time.Sleep(500 * time.Microsecond << attempt)
		attempt++
	}
	return total, nil
}

// Read loads a checkpoint from path. It performs no validation beyond
// decoding; callers check Version and their own shape constraints.
func Read(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cp File
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("ckpt: decode checkpoint: %w", err)
	}
	return &cp, nil
}
