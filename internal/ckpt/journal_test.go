package ckpt

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleJournal() *Journal {
	return &Journal{
		Version: JournalVersion,
		Task:    "lp",
		Seed:    7,
		DataDir: "/data/fb",
		Epochs:  5,
		Ckpt:    "run.ckpt",
		Done: []EpochRecord{
			{Epoch: 1, Loss: 0.6931471805599453, Metric: 0.1},
			{Epoch: 2, Loss: 1.0 / 3.0, Metric: math.Pi},
		},
	}
}

// Losses must survive the JSON round trip bit-exactly: the crash-resume
// byte-identity contract merges journaled losses into the resumed run's
// result.
func TestJournalRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt"+JournalSuffix)
	j := sampleJournal()
	if err := WriteJournal(nil, path, j); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if got.Task != j.Task || got.Seed != j.Seed || got.Epochs != j.Epochs || got.Ckpt != j.Ckpt {
		t.Fatalf("identity fields: %+v", got)
	}
	if len(got.Done) != len(j.Done) {
		t.Fatalf("%d done records, want %d", len(got.Done), len(j.Done))
	}
	for i := range j.Done {
		if math.Float64bits(got.Done[i].Loss) != math.Float64bits(j.Done[i].Loss) {
			t.Errorf("epoch %d loss %x != %x", i+1, math.Float64bits(got.Done[i].Loss), math.Float64bits(j.Done[i].Loss))
		}
		if math.Float64bits(got.Done[i].Metric) != math.Float64bits(j.Done[i].Metric) {
			t.Errorf("epoch %d metric not bit-exact", i+1)
		}
	}
}

func TestFindJournal(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := FindJournal(dir); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("empty dir: err = %v, want ErrNoJournal", err)
	}
	path := JournalPath(filepath.Join(dir, "run.ckpt"))
	if err := WriteJournal(nil, path, sampleJournal()); err != nil {
		t.Fatal(err)
	}
	p, j, err := FindJournal(dir)
	if err != nil || p != path || j.Task != "lp" {
		t.Fatalf("FindJournal: %s %+v %v", p, j, err)
	}
	// Two journals: ambiguous, refuse.
	if err := WriteJournal(nil, JournalPath(filepath.Join(dir, "other.ckpt")), sampleJournal()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FindJournal(dir); err == nil || errors.Is(err, ErrNoJournal) {
		t.Fatalf("two journals: err = %v, want ambiguity error", err)
	}
}

func TestReadJournalRejectsGaps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x"+JournalSuffix)
	j := sampleJournal()
	j.Done = []EpochRecord{{Epoch: 1, Loss: 1}, {Epoch: 3, Loss: 2}}
	if err := WriteJournal(nil, path, j); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("journal with an epoch gap accepted")
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "run.ckpt")
	for _, name := range []string{".ckpt-123", ".journal-456", "run.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := SweepTemps(dir)
	if err != nil {
		t.Fatalf("SweepTemps: %v", err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two temp files", removed)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("checkpoint swept: %v", err)
	}
	for _, name := range []string{".ckpt-123", ".journal-456"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the sweep", name)
		}
	}
}
