// Package core is the high-level MariusGNN API: it wires together the
// storage layer (partitioned node representations, edge buckets, partition
// buffer), the processing layer (DENSE sampling, pipelined mini-batch
// training) and the replacement policies (COMET, BETA, NodeCache) behind a
// small configuration surface.
//
// Typical use:
//
//	g := gen.SBM(gen.DefaultSBM(100_000, 1))
//	sys, _ := core.NewNodeClassification(g, core.Config{Storage: core.InMemory})
//	for epoch := 0; epoch < 10; epoch++ {
//		stats, _ := sys.TrainEpoch()
//		fmt.Println(stats)
//	}
//	acc, _ := sys.EvaluateTest()
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/autotune"
	"repro/internal/decoder"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/train"
)

// StorageMode selects where base representations live.
type StorageMode int

const (
	// InMemory keeps the whole graph in CPU memory (M-GNN_Mem).
	InMemory StorageMode = iota
	// OnDisk pages partitions through a buffer (M-GNN_Disk).
	OnDisk
)

// ModelKind selects the encoder architecture.
type ModelKind int

const (
	// GraphSage is the mean-aggregation GraphSage GNN (paper default).
	GraphSage ModelKind = iota
	// GAT is the graph attention network.
	GAT
	// GCN is a shared-weight graph convolution.
	GCN
	// DistMultOnly trains decoder-only knowledge-graph embeddings with no
	// GNN encoder (the model class supported by Marius).
	DistMultOnly
)

// PolicyKind selects the disk replacement policy for link prediction.
type PolicyKind int

const (
	// COMET is MariusGNN's two-level randomized policy (paper §5.1).
	COMET PolicyKind = iota
	// BETA is the greedy Marius policy reimplemented for comparison.
	BETA
)

// Config configures a System. Zero values select paper defaults.
type Config struct {
	Storage StorageMode
	Model   ModelKind
	Policy  PolicyKind

	// Dir is the directory for disk-based storage (required for OnDisk).
	Dir string

	// Dim is the hidden/embedding dimensionality (default 32).
	Dim int
	// Layers is the number of GNN layers (default 1 for LP, 3 for NC).
	Layers int
	// Fanouts per layer, ordered away from the targets; defaults to
	// 30/20/10 for NC (the paper's Papers100M setting) and 20 for LP.
	Fanouts []int

	BatchSize int // default 1024
	Negatives int // LP negatives per batch (default 500, as in §7.3)

	LR    float32 // dense-parameter Adam LR (default 0.01)
	EmbLR float32 // embedding AdaGrad LR (default 0.1)

	// Partitions (p), BufferCapacity (c) and LogicalPartitions (l);
	// 0 lets the §6 auto-tuner pick them from CPUBytes/BlockBytes.
	Partitions        int
	BufferCapacity    int
	LogicalPartitions int
	// CPUBytes and BlockBytes feed the auto-tuner (defaults 1 GiB, 512 KiB).
	CPUBytes   int64
	BlockBytes int64

	// Throttle simulates a bandwidth-limited disk (nil = full speed).
	Throttle *storage.Throttle

	// Mode selects MariusGNN execution (default) or the DGL/PyG-like
	// baseline execution for comparisons.
	Mode train.Mode

	Workers int
	Seed    int64
}

func (c *Config) fill(task string) {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Layers == 0 {
		if task == "nc" {
			c.Layers = 3
		} else {
			c.Layers = 1
		}
	}
	if len(c.Fanouts) == 0 {
		if task == "nc" {
			all := []int{30, 20, 10}
			c.Fanouts = all[:min(c.Layers, 3)]
			for len(c.Fanouts) < c.Layers {
				c.Fanouts = append(c.Fanouts, 10)
			}
		} else {
			c.Fanouts = make([]int, c.Layers)
			for i := range c.Fanouts {
				c.Fanouts[i] = 20
			}
		}
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1024
	}
	if c.Negatives == 0 {
		c.Negatives = 500
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.EmbLR == 0 {
		c.EmbLR = 0.1
	}
	if c.CPUBytes == 0 {
		c.CPUBytes = 1 << 30
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 512 << 10
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
}

// System is a configured training task.
type System struct {
	Graph  *graph.Graph
	Params *nn.ParamSet
	Source *train.Source

	task string
	cfg  Config

	nc  *train.NCTrainer
	lp  *train.LPTrainer
	dec *decoder.DistMult
	enc *gnn.Encoder

	fullAdj *graph.Adjacency // lazily built for evaluation
}

// NewNodeClassification builds a node-classification system over g, which
// must carry Features, Labels and TrainNodes. The graph is relabeled in
// place (training nodes first) for the §5.2 caching policy.
func NewNodeClassification(g *graph.Graph, cfg Config) (*System, error) {
	cfg.fill("nc")
	if g.Features == nil || g.Labels == nil || len(g.TrainNodes) == 0 {
		return nil, fmt.Errorf("core: node classification needs features, labels and training nodes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	p, c := cfg.Partitions, cfg.BufferCapacity
	if cfg.Storage == InMemory {
		if p == 0 {
			p = 4
		}
		c = p
	} else if p == 0 || c == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: g.NumNodes, NumEdges: len(g.Edges), Dim: g.FeatureDim(),
			CPUBytes: cfg.CPUBytes, BlockBytes: cfg.BlockBytes,
		})
		if err != nil {
			return nil, err
		}
		if p == 0 {
			p = tuned.P
		}
		if c == 0 {
			c = tuned.C
		}
	}

	pt, trainParts := train.PrepareNC(g, p, cfg.Seed)
	var src *train.Source
	var err error
	if cfg.Storage == OnDisk {
		src, err = train.NewDiskSource(g, pt, g.FeatureDim(), train.DiskSourceConfig{
			Dir: cfg.Dir, Capacity: c, InitTable: g.Features, Throttle: cfg.Throttle,
		})
		if err != nil {
			return nil, err
		}
	} else {
		src = train.NewMemorySource(g, pt, g.Features)
	}

	ps := nn.NewParamSet()
	dims := encoderDims(g.FeatureDim(), cfg.Dim, g.NumClasses, cfg.Layers)
	enc, err := buildEncoder(cfg.Model, ps, dims, rng)
	if err != nil {
		return nil, err
	}

	var pol policy.Policy
	if cfg.Storage == OnDisk {
		pol = policy.NodeCache{P: p, C: c, TrainParts: trainParts}
	} else {
		pol = policy.InMemory{P: p}
	}
	ncfg := train.NCConfig{
		Encoder: enc, Params: ps,
		Fanouts: cfg.Fanouts, Dirs: graph.Both,
		BatchSize: cfg.BatchSize, Opt: nn.NewAdam(cfg.LR), ClipNorm: 5,
		Workers: cfg.Workers, Mode: cfg.Mode, Seed: cfg.Seed,
	}
	sys := &System{Graph: g, Params: ps, Source: src, task: "nc", cfg: cfg, enc: enc}
	sys.nc = train.NewNC(ncfg, src, pol, g.Labels, g.TrainNodes)
	return sys, nil
}

// NewLinkPrediction builds a link-prediction system over g. The graph is
// relabeled in place (random partition assignment).
func NewLinkPrediction(g *graph.Graph, cfg Config) (*System, error) {
	cfg.fill("lp")
	rng := rand.New(rand.NewSource(cfg.Seed))

	p, c, l := cfg.Partitions, cfg.BufferCapacity, cfg.LogicalPartitions
	if cfg.Storage == InMemory {
		if p == 0 {
			p = 4
		}
		c, l = p, p
	} else if p == 0 || c == 0 || l == 0 {
		tuned, err := autotune.Tune(autotune.Input{
			NumNodes: g.NumNodes, NumEdges: len(g.Edges), Dim: cfg.Dim,
			CPUBytes: cfg.CPUBytes, BlockBytes: cfg.BlockBytes,
		})
		if err != nil {
			return nil, err
		}
		if p == 0 {
			p = tuned.P
		}
		if c == 0 {
			c = tuned.C
		}
		if l == 0 {
			l = tuned.L
		}
	}

	pt := train.PrepareLP(g, p, cfg.Seed)
	emb := train.RandomEmbeddings(g.NumNodes, cfg.Dim, cfg.Seed)
	var src *train.Source
	var err error
	if cfg.Storage == OnDisk {
		src, err = train.NewDiskSource(g, pt, cfg.Dim, train.DiskSourceConfig{
			Dir: cfg.Dir, Capacity: c, Learnable: true, InitTable: emb, Throttle: cfg.Throttle,
		})
		if err != nil {
			return nil, err
		}
	} else {
		src = train.NewMemorySource(g, pt, emb)
	}

	ps := nn.NewParamSet()
	var enc *gnn.Encoder
	if cfg.Model != DistMultOnly {
		dims := encoderDims(cfg.Dim, cfg.Dim, cfg.Dim, cfg.Layers)
		enc, err = buildEncoder(cfg.Model, ps, dims, rng)
		if err != nil {
			return nil, err
		}
	}
	dec := decoder.NewDistMult(ps, max(g.NumRels, 1), cfg.Dim, rng)

	var pol policy.Policy
	if cfg.Storage == OnDisk {
		if cfg.Policy == BETA {
			pol = policy.Beta{P: p, C: c}
		} else {
			comet := policy.Comet{P: p, L: l, C: c}
			if err := comet.Validate(); err != nil {
				return nil, err
			}
			pol = comet
		}
	} else {
		pol = policy.InMemory{P: p}
	}

	lcfg := train.LPConfig{
		Encoder: enc, Params: ps, Decoder: dec,
		Fanouts: cfg.Fanouts, Dirs: graph.Both,
		BatchSize: cfg.BatchSize, Negatives: cfg.Negatives,
		DenseOpt: nn.NewAdam(cfg.LR), EmbOpt: nn.NewSparseAdaGrad(cfg.EmbLR), ClipNorm: 5,
		Workers: cfg.Workers, Mode: cfg.Mode, Seed: cfg.Seed,
	}
	sys := &System{Graph: g, Params: ps, Source: src, task: "lp", cfg: cfg, enc: enc, dec: dec}
	sys.lp = train.NewLP(lcfg, src, pol)
	return sys, nil
}

func encoderDims(in, hidden, out, layers int) []int {
	dims := []int{in}
	for i := 0; i < layers-1; i++ {
		dims = append(dims, hidden)
	}
	return append(dims, out)
}

func buildEncoder(kind ModelKind, ps *nn.ParamSet, dims []int, rng *rand.Rand) (*gnn.Encoder, error) {
	switch kind {
	case GraphSage:
		return gnn.BuildSage(ps, dims, gnn.Mean, rng), nil
	case GAT:
		return gnn.BuildGAT(ps, dims, rng), nil
	case GCN:
		return gnn.BuildGCN(ps, dims, rng), nil
	default:
		return nil, fmt.Errorf("core: model kind %d has no encoder", kind)
	}
}

// SetPolicy overrides the replacement policy (used by policy-comparison
// experiments to swap COMET/BETA on an otherwise identical system).
func (s *System) SetPolicy(pol policy.Policy) {
	if s.nc != nil {
		s.nc.Pol = pol
	}
	if s.lp != nil {
		s.lp.Pol = pol
	}
}

// TrainEpoch runs one epoch.
func (s *System) TrainEpoch() (train.EpochStats, error) {
	if s.nc != nil {
		return s.nc.TrainEpoch()
	}
	return s.lp.TrainEpoch()
}

func (s *System) adj() *graph.Adjacency {
	if s.fullAdj == nil {
		s.fullAdj = graph.BuildAdjacency(s.Graph.NumNodes, s.Graph.Edges)
	}
	return s.fullAdj
}

// EvaluateValid evaluates on the validation split: accuracy for node
// classification, sampled-negative MRR (or full ranking for small graphs)
// for link prediction.
func (s *System) EvaluateValid() (float64, error) {
	if s.task == "nc" {
		return s.evalNC(s.Graph.ValidNodes, s.cfg.Seed+1)
	}
	return s.evalLP(s.Graph.ValidEdges)
}

// EvaluateTest evaluates on the test split.
func (s *System) EvaluateTest() (float64, error) {
	if s.task == "nc" {
		return s.evalNC(s.Graph.TestNodes, s.cfg.Seed+2)
	}
	return s.evalLP(s.Graph.TestEdges)
}

// evalNC evaluates over the full graph; with disk storage the feature
// table is first read back into memory (evaluation nodes may live in
// partitions that are not resident).
func (s *System) evalNC(nodes []int32, seed int64) (float64, error) {
	src := s.Source
	if s.Source.Disk != nil {
		table, err := s.Source.Disk.ReadAll()
		if err != nil {
			return 0, err
		}
		src = &train.Source{
			Part: s.Source.Part, NumNodes: s.Source.NumNodes, NumRels: s.Source.NumRels,
			Nodes: storage.NewMemoryNodeStore(table), Edges: s.Source.Edges,
		}
	}
	return train.EvaluateNC(&s.nc.Cfg, src, s.adj(), s.Graph.Labels, nodes, seed)
}

func (s *System) evalLP(edges []graph.Edge) (float64, error) {
	emb, err := s.embeddings()
	if err != nil {
		return 0, err
	}
	negatives := 1000
	if s.Graph.NumNodes <= 20000 {
		negatives = 0 // rank against all entities, as the paper does on FB15k-237
	}
	return train.EvaluateLP(train.LPEvalConfig{
		Encoder: s.enc, Params: s.Params, Decoder: s.dec,
		Fanouts: s.cfg.Fanouts, Dirs: graph.Both,
		Negatives: negatives, BatchSize: s.cfg.BatchSize, Seed: s.cfg.Seed + 3,
	}, emb, s.adj(), edges)
}

// embeddings returns the full base-representation table.
func (s *System) embeddings() (*tensor.Tensor, error) {
	if s.Source.Disk != nil {
		return s.Source.Disk.ReadAll()
	}
	return s.Source.Nodes.(*storage.MemoryNodeStore).Table(), nil
}

// Close releases the system's storage.
func (s *System) Close() error { return s.Source.Close() }
