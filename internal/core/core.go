// Package core is the deprecated predecessor of the public marius
// package. It kept a flat 17-field Config and two task-specific
// constructors; the marius package replaces that surface with a
// task-polymorphic Session built from functional options, a context-aware
// run loop, structured evaluation results and checkpointing.
//
// This shim maps the old surface 1:1 onto marius so stragglers keep
// compiling; new code should use marius directly:
//
//	core.NewNodeClassification(g, cfg)  ->  marius.New(marius.NodeClassification(), g, opts...)
//	core.NewLinkPrediction(g, cfg)      ->  marius.New(marius.LinkPrediction(), g, opts...)
//	sys.TrainEpoch()                    ->  sess.Run(ctx, marius.Epochs(n), ...) or sess.TrainEpoch(ctx)
//	sys.EvaluateValid() / EvaluateTest() -> sess.Evaluate(marius.ValidSplit / marius.TestSplit)
//
// Deprecated: use package repro/marius.
package core

import (
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/train"
	"repro/marius"
)

// StorageMode selects where base representations live.
//
// Deprecated: use marius.StorageMode.
type StorageMode = marius.StorageMode

const (
	// InMemory keeps the whole graph in CPU memory (M-GNN_Mem).
	InMemory = marius.InMemory
	// OnDisk pages partitions through a buffer (M-GNN_Disk).
	OnDisk = marius.OnDisk
)

// ModelKind selects the encoder architecture.
//
// Deprecated: use marius.ModelKind.
type ModelKind = marius.ModelKind

const (
	GraphSage    = marius.GraphSage
	GAT          = marius.GAT
	GCN          = marius.GCN
	DistMultOnly = marius.DistMultOnly
)

// PolicyKind selects the disk replacement policy for link prediction.
//
// Deprecated: use marius.PolicyKind.
type PolicyKind = marius.PolicyKind

const (
	COMET = marius.COMET
	BETA  = marius.BETA
)

// System is the old name for a configured training task.
//
// Deprecated: use marius.Session.
type System = marius.Session

// Config configures a System. Zero values select paper defaults.
//
// Deprecated: use marius functional options.
type Config struct {
	Storage StorageMode
	Model   ModelKind
	Policy  PolicyKind

	Dir string

	Dim     int
	Layers  int
	Fanouts []int

	BatchSize int
	Negatives int

	LR    float32
	EmbLR float32

	Partitions        int
	BufferCapacity    int
	LogicalPartitions int
	CPUBytes          int64
	BlockBytes        int64

	Throttle *storage.Throttle

	Mode train.Mode

	Workers int
	Seed    int64
}

// options translates the flat config into the marius options it predates;
// zero-valued fields fall through to the marius defaults.
func (c Config) options() []marius.Option {
	var opts []marius.Option
	opts = append(opts, marius.WithModel(c.Model), marius.WithPolicy(c.Policy), marius.WithSeed(c.Seed))
	if c.Dim > 0 {
		opts = append(opts, marius.WithDim(c.Dim))
	}
	if c.Layers > 0 {
		opts = append(opts, marius.WithLayers(c.Layers))
	}
	if len(c.Fanouts) > 0 {
		opts = append(opts, marius.WithFanouts(c.Fanouts...))
	}
	if c.BatchSize > 0 {
		opts = append(opts, marius.WithBatchSize(c.BatchSize))
	}
	if c.Negatives > 0 {
		opts = append(opts, marius.WithNegatives(c.Negatives))
	}
	if c.LR > 0 || c.EmbLR > 0 {
		lr, emb := c.LR, c.EmbLR
		if lr <= 0 {
			lr = marius.DefaultLR
		}
		if emb <= 0 {
			emb = marius.DefaultEmbLR
		}
		opts = append(opts, marius.WithLearningRates(lr, emb))
	}
	if c.CPUBytes > 0 || c.BlockBytes > 0 {
		cpu, blk := c.CPUBytes, c.BlockBytes
		if cpu <= 0 {
			cpu = marius.DefaultCPUBytes
		}
		if blk <= 0 {
			blk = marius.DefaultBlockBytes
		}
		opts = append(opts, marius.WithAutotune(cpu, blk))
	}
	if c.Workers > 0 {
		opts = append(opts, marius.WithWorkers(c.Workers))
	}
	if c.Mode == train.ModeBaseline {
		opts = append(opts, marius.WithBaseline())
	}
	if c.Storage == OnDisk {
		var disk []marius.DiskOption
		if c.Partitions > 0 {
			disk = append(disk, marius.Partitions(c.Partitions))
		}
		if c.BufferCapacity > 0 {
			disk = append(disk, marius.Capacity(c.BufferCapacity))
		}
		if c.LogicalPartitions > 0 {
			disk = append(disk, marius.LogicalPartitions(c.LogicalPartitions))
		}
		if c.Throttle != nil {
			disk = append(disk, marius.Throttled(c.Throttle))
		}
		opts = append(opts, marius.WithDisk(c.Dir, disk...))
	} else if c.Partitions > 0 {
		opts = append(opts, marius.WithPartitions(c.Partitions))
	}
	return opts
}

// NewNodeClassification builds a node-classification system over g.
//
// Deprecated: use marius.New(marius.NodeClassification(), g, opts...).
func NewNodeClassification(g *graph.Graph, cfg Config) (*System, error) {
	return marius.New(marius.NodeClassification(), g, cfg.options()...)
}

// NewLinkPrediction builds a link-prediction system over g.
//
// Deprecated: use marius.New(marius.LinkPrediction(), g, opts...).
func NewLinkPrediction(g *graph.Graph, cfg Config) (*System, error) {
	return marius.New(marius.LinkPrediction(), g, cfg.options()...)
}
