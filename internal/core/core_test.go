package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/policy"
	"repro/internal/train"
)

func TestNodeClassificationFacadeMemAndDisk(t *testing.T) {
	for _, storage := range []StorageMode{InMemory, OnDisk} {
		g := gen.SBM(gen.SBMConfig{
			NumNodes: 1200, NumClasses: 4, AvgDegree: 10, FeatureDim: 12,
			Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1,
			Seed: 1,
		})
		cfg := Config{
			Storage: storage, Model: GraphSage, Layers: 2, Fanouts: []int{8, 8},
			Dim: 16, BatchSize: 256, Seed: 1,
		}
		if storage == OnDisk {
			cfg.Dir = t.TempDir()
			cfg.Partitions, cfg.BufferCapacity = 8, 4
		}
		sys, err := NewNodeClassification(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 5; e++ {
			if _, err := sys.TrainEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		acc, err := sys.EvaluateTest()
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.4 {
			t.Fatalf("storage=%d: test accuracy %.3f (chance 0.25)", storage, acc)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLinkPredictionFacadeModels(t *testing.T) {
	for _, model := range []ModelKind{GraphSage, DistMultOnly, GAT, GCN} {
		g := gen.KG(gen.KGConfig{
			NumEntities: 600, NumRelations: 8, NumEdges: 8000,
			ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 2,
		})
		sys, err := NewLinkPrediction(g, Config{
			Storage: InMemory, Model: model,
			Layers: 1, Fanouts: []int{8}, Dim: 16,
			BatchSize: 512, Negatives: 64, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.TrainEpoch()
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		if st.Examples != len(g.Edges) {
			t.Fatalf("model %d consumed %d/%d edges", model, st.Examples, len(g.Edges))
		}
		if _, err := sys.EvaluateValid(); err != nil {
			t.Fatal(err)
		}
		sys.Close()
	}
}

func TestLinkPredictionDiskPolicies(t *testing.T) {
	for _, pk := range []PolicyKind{COMET, BETA} {
		g := gen.KG(gen.KGConfig{
			NumEntities: 600, NumRelations: 8, NumEdges: 8000,
			ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 3,
		})
		sys, err := NewLinkPrediction(g, Config{
			Storage: OnDisk, Dir: t.TempDir(), Model: DistMultOnly, Policy: pk,
			Dim: 16, BatchSize: 512, Negatives: 64,
			Partitions: 8, BufferCapacity: 4, LogicalPartitions: 4, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if st.IO.BytesRead == 0 {
			t.Fatal("no disk IO recorded")
		}
		sys.Close()
	}
}

func TestFacadeAutoTunesWhenUnspecified(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 2000, NumRelations: 8, NumEdges: 16000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 4,
	})
	sys, err := NewLinkPrediction(g, Config{
		Storage: OnDisk, Dir: t.TempDir(), Model: DistMultOnly,
		Dim: 16, BatchSize: 512, Negatives: 64,
		CPUBytes: 80 << 10, BlockBytes: 4 << 10, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Visits < 2 {
		t.Fatal("auto-tuned disk training should need multiple partition sets")
	}
}

func TestSetPolicy(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 400, NumRelations: 4, NumEdges: 4000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 5,
	})
	sys, err := NewLinkPrediction(g, Config{
		Storage: OnDisk, Dir: t.TempDir(), Model: DistMultOnly,
		Dim: 8, BatchSize: 256, Negatives: 32,
		Partitions: 8, BufferCapacity: 4, LogicalPartitions: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.SetPolicy(policy.Beta{P: 8, C: 4})
	if _, err := sys.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineModeThroughFacade(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 800, NumClasses: 4, AvgDegree: 8, FeatureDim: 8,
		Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: 6,
	})
	sys, err := NewNodeClassification(g, Config{
		Storage: InMemory, Model: GraphSage, Layers: 2, Fanouts: []int{6, 6},
		Dim: 12, BatchSize: 128, Mode: train.ModeBaseline, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != len(g.TrainNodes) {
		t.Fatal("baseline mode must consume every training node")
	}
}
