package core

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/train"
)

// The deprecated Config/constructor surface must keep working by mapping
// onto the marius Session API (the substantive behavior tests live in the
// marius package).

func TestShimNodeClassification(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 800, NumClasses: 4, AvgDegree: 8, FeatureDim: 8,
		Homophily: 0.85, FeatNoise: 2.0, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1,
		Seed: 6,
	})
	sys, err := NewNodeClassification(g, Config{
		Storage: InMemory, Model: GraphSage, Layers: 2, Fanouts: []int{6, 6},
		Dim: 12, BatchSize: 128, Mode: train.ModeBaseline, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Examples != len(g.TrainNodes) {
		t.Fatal("baseline mode must consume every training node")
	}
	if _, err := sys.Evaluate(0); err != nil {
		t.Fatal(err)
	}
}

func TestShimLinkPredictionDisk(t *testing.T) {
	g := gen.KG(gen.KGConfig{
		NumEntities: 600, NumRelations: 8, NumEdges: 8000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 3,
	})
	sys, err := NewLinkPrediction(g, Config{
		Storage: OnDisk, Dir: t.TempDir(), Model: DistMultOnly, Policy: BETA,
		Dim: 16, BatchSize: 512, Negatives: 64,
		Partitions: 8, BufferCapacity: 4, LogicalPartitions: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.TrainEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.IO.BytesRead == 0 {
		t.Fatal("no disk IO recorded")
	}
}
