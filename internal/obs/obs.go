// Package obs is the observability core: a zero-alloc, atomics-based
// metrics registry (counters, gauges, fixed-bucket histograms) plus a
// Chrome Trace Event Format span recorder. It has no dependencies
// beyond the standard library and is safe for concurrent use: all
// hot-path operations (Inc, Add, Set, Observe, Span) are lock-free or
// take at most one short buffered write under a mutex (tracing only).
//
// Every metric method and every Tracer method is nil-receiver safe, so
// instrumented code can hold a possibly-nil *Counter or *Tracer and
// call it unconditionally; the disabled path costs one predictable
// branch.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Trace thread IDs: spans from each logical actor land on a stable
// chrome://tracing row. Builder workers use TIDBuilderBase+w.
const (
	TIDCompute     = 0
	TIDPrefetch    = 1
	TIDEvict       = 2
	TIDServe       = 3
	TIDBuilderBase = 8
)

// Label is one key=value pair attached to a metric at registration.
// Values may contain arbitrary bytes; Prometheus exposition escapes
// them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. On overflow it wraps
// modulo 2^64, matching Prometheus client conventions (scrapers detect
// the reset from the decrease).
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d via a CAS loop. Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with lock-free Observe.
// Bucket i counts observations v with v <= bounds[i] (and, for i > 0,
// v > bounds[i-1]); one extra overflow bucket counts v > bounds[last].
// A value landing exactly on an upper bound is counted in that bucket
// (Prometheus `le` semantics).
type Histogram struct {
	bounds  []float64 // sorted ascending, finite
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records v. Lock-free; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts
// has len(Bounds)+1 entries; the last is the overflow bucket. Count is
// the sum of Counts, so a snapshot is always internally consistent
// even when taken concurrently with Observe.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state. Nil-safe (returns a
// zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing the target rank, treating
// observations as uniformly distributed inside each bucket. The first
// bucket interpolates from 0; ranks landing in the overflow bucket
// return the last finite bound. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: the upper edge is unbounded; report
			// the last finite bound rather than inventing a value.
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		if float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds
// start, start*factor, start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// metricKind discriminates registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered time series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// Registry holds named metrics for Prometheus exposition. Registration
// takes a mutex; reads of registered metrics are lock-free. A nil
// *Registry is usable: its constructors return live but unexported
// metrics, so code wired for metrics works identically when the caller
// never asked for a registry (e.g. tracing-only runs).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds an existing series with the same name and label set.
// Caller holds r.mu.
func (r *Registry) lookup(name string, labels []Label) *metric {
	for _, m := range r.metrics {
		if m.name == name && labelsEqual(m.labels, labels) {
			return m
		}
	}
	return nil
}

// Counter registers (or returns the existing) counter under name with
// the given labels. Panics if the name+labels pair is already
// registered as a different kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, labels); m != nil {
		if m.kind != kindCounter {
			panic(fmt.Sprintf("obs: %s registered as non-counter", name))
		}
		return m.c
	}
	c := &Counter{}
	r.metrics = append(r.metrics, &metric{name: name, help: help, labels: labels, kind: kindCounter, c: c})
	return c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, labels); m != nil {
		if m.kind != kindGauge {
			panic(fmt.Sprintf("obs: %s registered as non-gauge", name))
		}
		return m.g
	}
	g := &Gauge{}
	r.metrics = append(r.metrics, &metric{name: name, help: help, labels: labels, kind: kindGauge, g: g})
	return g
}

// Histogram registers (or returns the existing) histogram under name
// with the given finite, ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, labels); m != nil {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: %s registered as non-histogram", name))
		}
		return m.h
	}
	h := newHistogram(bounds)
	r.metrics = append(r.metrics, &metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h})
	return h
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for pre-existing atomic counters (e.g.
// storage.Stats). Re-registering the same name+labels replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, labels); m != nil {
		if m.kind != kindCounterFunc {
			panic(fmt.Sprintf("obs: %s registered as non-counterfunc", name))
		}
		m.fn = fn
		return
	}
	r.metrics = append(r.metrics, &metric{name: name, help: help, labels: labels, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time. Re-registering the same name+labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, labels); m != nil {
		if m.kind != kindGaugeFunc {
			panic(fmt.Sprintf("obs: %s registered as non-gaugefunc", name))
		}
		m.fn = fn
		return
	}
	r.metrics = append(r.metrics, &metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, fn: fn})
}

// snapshotMetrics copies the registration list so exposition can walk
// it without holding the registry lock while formatting.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}
