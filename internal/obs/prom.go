package obs

import (
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families are grouped by metric
// name in first-registration order, with one # HELP / # TYPE header
// per family; histograms expand to cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	metrics := r.snapshotMetrics()
	var b strings.Builder
	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if seen[m.name] {
			continue
		}
		seen[m.name] = true
		writeHeader(&b, m)
		for _, s := range metrics {
			if s.name != m.name {
				continue
			}
			writeSeries(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, m *metric) {
	if m.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(m.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(m.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(m.name)
	b.WriteByte(' ')
	switch m.kind {
	case kindCounter, kindCounterFunc:
		b.WriteString("counter")
	case kindGauge, kindGaugeFunc:
		b.WriteString("gauge")
	case kindHistogram:
		b.WriteString("histogram")
	}
	b.WriteByte('\n')
}

func writeSeries(b *strings.Builder, m *metric) {
	switch m.kind {
	case kindCounter:
		writeName(b, m.name, m.labels, "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(m.c.Value(), 10))
		b.WriteByte('\n')
	case kindGauge:
		writeName(b, m.name, m.labels, "")
		b.WriteByte(' ')
		writeFloat(b, m.g.Value())
		b.WriteByte('\n')
	case kindCounterFunc, kindGaugeFunc:
		writeName(b, m.name, m.labels, "")
		b.WriteByte(' ')
		writeFloat(b, m.fn())
		b.WriteByte('\n')
	case kindHistogram:
		s := m.h.Snapshot()
		var cum uint64
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
			}
			writeName(b, m.name+"_bucket", m.labels, le)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteByte('\n')
		}
		writeName(b, m.name+"_sum", m.labels, "")
		b.WriteByte(' ')
		writeFloat(b, s.Sum)
		b.WriteByte('\n')
		writeName(b, m.name+"_count", m.labels, "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(s.Count, 10))
		b.WriteByte('\n')
	}
}

// writeName emits name{k="v",...} with the optional le label appended
// (histogram buckets).
func writeName(b *strings.Builder, name string, labels []Label, le string) {
	b.WriteString(name)
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func writeFloat(b *strings.Builder, v float64) {
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (the
// format leaves quotes alone in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
