package obs

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Tracer records completed spans ("X" events) in Chrome Trace Event
// Format: a JSON array with one event object per line, loadable in
// chrome://tracing or Perfetto. Timestamps are microseconds relative
// to the tracer's creation. A nil *Tracer is a no-op, so callers emit
// spans unconditionally.
//
// Span takes a short mutex around one buffered write; the formatting
// itself allocates nothing beyond the tracer's reusable scratch
// buffer. Close flushes and terminates the JSON array (viewers accept
// unterminated files too, so a crash mid-run still yields a loadable
// trace).
type Tracer struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	c       io.Closer
	start   time.Time
	scratch []byte
	first   bool
	closed  bool
}

// NewTracer writes trace events to w. If w is an io.Closer, Close
// closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriterSize(w, 1<<16), start: time.Now(), first: true}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	t.bw.WriteString("[\n")
	return t
}

// CreateTrace creates (truncating) a trace file at path.
func CreateTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Span records a completed span of duration dur that began at start,
// on trace row tid, in category cat. Nil-safe; no-op after Close.
func (t *Tracer) Span(cat, name string, tid int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	b := t.scratch[:0]
	if t.first {
		t.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"ph":"X","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendFloat(b, float64(start.Sub(t.start).Nanoseconds())/1e3, 'f', 3, 64)
	b = append(b, `,"dur":`...)
	b = strconv.AppendFloat(b, float64(dur.Nanoseconds())/1e3, 'f', 3, 64)
	b = append(b, `,"cat":"`...)
	b = appendJSONString(b, cat)
	b = append(b, `","name":"`...)
	b = appendJSONString(b, name)
	b = append(b, `"}`...)
	t.scratch = b
	t.bw.Write(b)
}

// appendJSONString appends s with the minimal JSON string escaping
// (backslash, quote, control characters).
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' || c == '"':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return b
}

// Flush writes buffered events through to the underlying writer
// without closing. Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	return t.bw.Flush()
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer if it is a Closer. Nil-safe; idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	t.bw.WriteString("\n]\n")
	err := t.bw.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
