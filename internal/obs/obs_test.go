package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// A value exactly on a bucket's upper bound must land in that bucket
// (le semantics), not the next one.
func TestHistogramBucketBoundary(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(2) // exactly on bounds[1]
	s := h.Snapshot()
	want := []uint64{0, 1, 0, 0}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}

	h.Observe(1)         // exactly on bounds[0] -> bucket 0
	h.Observe(4)         // exactly on bounds[2] -> bucket 2
	h.Observe(4.0000001) // just above last bound -> overflow
	h.Observe(0)         // below everything -> bucket 0
	h.Observe(-1)        // negative -> bucket 0
	s = h.Snapshot()
	want = []uint64{3, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
}

// Counters wrap modulo 2^64 on overflow rather than saturating or
// panicking; scrapers treat the decrease as a reset.
func TestCounterOverflowWraps(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64)
	if c.Value() != math.MaxUint64 {
		t.Fatalf("value = %d, want MaxUint64", c.Value())
	}
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("value after overflow = %d, want 0 (wrap)", c.Value())
	}
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("weird_total", `help with \ backslash
and newline`, L("path", "a\\b\"c\nd"))
	c.Add(7)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP weird_total help with \\ backslash\nand newline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{path="a\\b\"c\nd"} 7`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("stage", "sample")).Add(3)
	r.Counter("reqs_total", "requests", L("stage", "encode")).Add(5)
	r.Gauge("depth", "queue depth").Set(2.5)
	h := r.Histogram("lat_ms", "latency", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(10) // on the bound -> le="10"
	h.Observe(99)
	r.GaugeFunc("hit_rate", "hit rate", func() float64 { return 0.75 })
	r.CounterFunc("bytes_total", "bytes", func() float64 { return 4096 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\n",
		`reqs_total{stage="sample"} 3`,
		`reqs_total{stage="encode"} 5`,
		"# TYPE depth gauge\ndepth 2.5",
		"# TYPE lat_ms histogram\n",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="10"} 2`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_sum 109.5",
		"lat_ms_count 3",
		"hit_rate 0.75",
		"bytes_total 4096",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family even with two label sets.
	if n := strings.Count(out, "# TYPE reqs_total"); n != 1 {
		t.Errorf("reqs_total TYPE header appears %d times, want 1", n)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10, 20]
	}
	s := h.Snapshot()
	// Median interpolates to the middle of the (10, 20] bucket.
	if got := s.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %v, want 15", got)
	}
	// Everything beyond the last finite bound reports that bound.
	h2 := newHistogram([]float64{10})
	h2.Observe(1e9)
	if got := h2.Snapshot().Quantile(0.99); got != 10 {
		t.Errorf("overflow p99 = %v, want 10 (last finite bound)", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c")
	b := r.Counter("c_total", "c")
	if a != b {
		t.Error("same name+labels should return the same counter")
	}
	c := r.Counter("c_total", "c", L("k", "v"))
	if a == c {
		t.Error("different labels should return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch should panic")
		}
	}()
	r.Gauge("c_total", "now a gauge?")
}

// Nil registry and nil metrics are fully usable no-ops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", []float64{1}).Observe(1)
	r.GaugeFunc("d", "", func() float64 { return 0 })
	r.CounterFunc("e", "", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	c.Inc()
	c.Add(2)
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	h.Snapshot()
	var tr *Tracer
	tr.Span("x", "y", 0, time.Now(), time.Second)
	tr.Flush()
	tr.Close()
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 700))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

// The trace file is a valid JSON array of Chrome "X" events with
// microsecond timestamps and the expected rows.
func TestTracerOutput(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(writerCloser{&b})
	start := tr.start
	tr.Span("pipeline", "prefetch", TIDPrefetch, start.Add(time.Millisecond), 2*time.Millisecond)
	tr.Span("pipeline", `batch "quoted" \ build`, TIDBuilderBase, start.Add(3*time.Millisecond), time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Ph   string  `json:"ph"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Cat  string  `json:"cat"`
		Name string  `json:"name"`
	}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	e := events[0]
	if e.Ph != "X" || e.Tid != TIDPrefetch || e.Cat != "pipeline" || e.Name != "prefetch" {
		t.Errorf("event 0 = %+v", e)
	}
	if e.Ts != 1000 || e.Dur != 2000 {
		t.Errorf("ts/dur = %v/%v µs, want 1000/2000", e.Ts, e.Dur)
	}
	if events[1].Name != `batch "quoted" \ build` {
		t.Errorf("escaped name round-trip = %q", events[1].Name)
	}
	// Spans after Close are dropped, not a panic or corrupt tail.
	tr.Span("x", "late", 0, start, time.Millisecond)
}

type writerCloser struct{ *strings.Builder }

func (writerCloser) Close() error { return nil }

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}
