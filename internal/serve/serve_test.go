// Full-stack serving tests: differential against the training-side
// forward pass, micro-batching vs sequential equality, hot reload
// snapshot isolation, and load-time mismatch rejection. External test
// package: the tests drive training through marius, which itself imports
// internal/serve.
package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/gen"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/marius"
)

// prepNC ingests a small SBM node-classification dataset.
func prepNC(t *testing.T, seed int64) string {
	t.Helper()
	g := gen.SBM(gen.SBMConfig{
		NumNodes: 300, NumClasses: 4, AvgDegree: 5, FeatureDim: 6,
		Homophily: 0.8, FeatNoise: 1, TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: seed,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "nc", seed, 2)); err != nil {
		t.Fatal(err)
	}
	return out
}

// prepLP ingests a small knowledge-graph link-prediction dataset.
func prepLP(t *testing.T) string {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 300, NumRelations: 4, NumEdges: 3000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 11,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "lp", 11, 2)); err != nil {
		t.Fatal(err)
	}
	return out
}

// prepLP1 ingests a single-relation link-prediction dataset — the shape
// every dataset had before relations were threaded through, used to pin
// the legacy request contract.
func prepLP1(t *testing.T) string {
	t.Helper()
	g := gen.KG(gen.KGConfig{
		NumEntities: 200, NumRelations: 1, NumEdges: 2000,
		ZipfS: 1.2, ValidFrac: 0.05, TestFrac: 0.05, Seed: 7,
	})
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "lp", 7, 2)); err != nil {
		t.Fatal(err)
	}
	return out
}

// train runs a short dataset session and saves checkpoints after each of
// the requested epoch counts, returning the checkpoint paths.
func train(t *testing.T, dir string, opts []marius.Option, epochs ...int) []string {
	t.Helper()
	sess, err := marius.FromDataset(dir, append([]marius.Option{marius.WithWorkers(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	paths := make([]string, len(epochs))
	done := 0
	for i, target := range epochs {
		if _, err := sess.Run(context.Background(), marius.Epochs(target-done)); err != nil {
			t.Fatal(err)
		}
		done = target
		paths[i] = filepath.Join(t.TempDir(), "ckpt")
		if err := sess.Save(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

var ncOpts = []marius.Option{
	marius.WithModel(marius.GraphSage), marius.WithFanouts(5, 5),
	marius.WithDim(8), marius.WithBatchSize(128),
}

var lpOpts = []marius.Option{
	marius.WithModel(marius.DistMultOnly), marius.WithDim(8),
	marius.WithNegatives(16), marius.WithBatchSize(256),
}

func startServer(t *testing.T, dir, ckptPath string, cfg serve.Config) *serve.Server {
	t.Helper()
	sctx, err := serve.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sctx.Close() })
	snap, err := serve.Load(sctx, ckptPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sctx, snap, cfg)
	t.Cleanup(srv.Close)
	return srv
}

// relp names a relation in a TopKRequest (the fields are pointers so the
// server can tell "relation 0" from "no relation named").
func relp(r int32) *int32 { return &r }

func eqF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqPredict(a, b *serve.PredictResponse) bool {
	if len(a.Logits) != len(b.Logits) {
		return false
	}
	for i := range a.Logits {
		if a.Classes[i] != b.Classes[i] || !eqF32(a.Logits[i], b.Logits[i]) {
			return false
		}
	}
	return true
}

// TestServePredictMatchesEval is the serve-vs-train differential: logits
// served for an explicit sampling seed must equal, byte for byte, the
// forward pass the training-side evaluation substrate (internal/encode,
// the code path of train/eval.go) produces from the same checkpoint,
// targets and seed — with the server on its defaults (disk feature
// store, multi-worker kernels) and the reference on in-memory features
// with one worker.
func TestServePredictMatchesEval(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})

	const seed = 12345
	nodes := []int32{3, 5, 3, 7, 120, 5} // duplicates exercise per-request dedup
	resp, err := srv.Predict(context.Background(), &serve.PredictRequest{Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: rebuild the model exactly as training holds it and run
	// the evaluation forward over the deduplicated targets.
	cp, err := ckpt.Read(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ps := nn.NewParamSet()
	rng := rand.New(rand.NewSource(cp.Seed))
	dims := []int{cp.Model.FeatureDim}
	for i := 0; i < cp.Model.Layers-1; i++ {
		dims = append(dims, cp.Model.Dim)
	}
	dims = append(dims, cp.Model.NumClasses)
	enc := gnn.BuildSage(ps, dims, gnn.Mean, rng)
	if err := ps.LoadState(cp.Params); err != nil {
		t.Fatal(err)
	}
	sctx, err := serve.Open(dir, serve.Config{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sctx.Close()
	fwd := encode.New(encode.Config{
		Encoder: enc, Params: ps, Fanouts: cp.Model.Fanouts, Dirs: graph.Both, Workers: 1,
	}, sctx.Adj, seed)
	uniq := []int32{3, 5, 7, 120}
	out, err := fwd.Encode(sctx.Features, uniq)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]float32{}
	for i, id := range uniq {
		want[id] = out.Value.Row(i)
	}
	for i, id := range nodes {
		if !eqF32(resp.Logits[i], want[id]) {
			t.Fatalf("served logits for node %d differ from eval forward:\n  serve %v\n  eval  %v",
				id, resp.Logits[i], want[id])
		}
	}
}

// TestServeTopKMatchesScoreAll is the link-prediction differential: the
// fused batched scoring launch must reproduce the training-side
// full-ranking ScoreAll (train/eval.go's kernel) bitwise, ids and
// scores.
func TestServeTopKMatchesScoreAll(t *testing.T) {
	dir := prepLP(t)
	ckptPath := train(t, dir, lpOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})
	snap := srv.Snapshot()

	const k = 10
	for _, q := range []struct{ src, rel int32 }{{12, 3}, {0, 0}, {299, 1}} {
		resp, err := srv.TopK(context.Background(), &serve.TopKRequest{Src: q.src, Rel: relp(q.rel), K: k})
		if err != nil {
			t.Fatal(err)
		}
		scores := decoder.ScoreAll(snap.Decoder, snap.Table.Row(int(q.src)), snap.RelTable.Row(int(q.rel)), snap.Table)
		ids := decoder.TopK(scores, k)
		if len(resp.Nodes) != k {
			t.Fatalf("(%d,%d): got %d results, want %d", q.src, q.rel, len(resp.Nodes), k)
		}
		for i := range ids {
			if resp.Nodes[i] != ids[i] || resp.Scores[i] != scores[ids[i]] {
				t.Fatalf("(%d,%d) rank %d: serve (%d, %v), eval (%d, %v)",
					q.src, q.rel, i, resp.Nodes[i], resp.Scores[i], ids[i], scores[ids[i]])
			}
		}
	}
}

// TestServeTopKGNNDeterministic covers the encoder top-k branch (source
// encoded through the GNN, scored against the load-time precomputed
// entity table): repeated identical requests — alone or co-batched with
// other traffic — return identical results.
func TestServeTopKGNNDeterministic(t *testing.T) {
	dir := prepLP(t)
	opts := []marius.Option{
		marius.WithModel(marius.GraphSage), marius.WithFanouts(5),
		marius.WithDim(8), marius.WithNegatives(16), marius.WithBatchSize(256),
	}
	ckptPath := train(t, dir, opts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{MaxBatch: 4, MaxWait: 20 * time.Millisecond})

	req := &serve.TopKRequest{Src: 42, Rel: relp(2), K: 5, Seed: 99}
	first, err := srv.TopK(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Fire the same request concurrently with different traffic so some
	// instances co-batch with other sources.
	var wg sync.WaitGroup
	results := make([]*serve.TopKResponse, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				results[i], err = srv.TopK(context.Background(), req)
			} else {
				_, err = srv.TopK(context.Background(), &serve.TopKRequest{Src: int32(i), Rel: relp(1), K: 3, Seed: int64(i + 1)})
			}
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < len(results); i += 2 {
		r := results[i]
		for j := range first.Nodes {
			if r.Nodes[j] != first.Nodes[j] || r.Scores[j] != first.Scores[j] {
				t.Fatalf("co-batched topk diverged from solo run at rank %d", j)
			}
		}
	}
}

// TestMicroBatchedEqualsSequential issues the same explicitly-seeded
// requests once sequentially (each alone in its micro-batch) and once
// all concurrently (co-batched), and requires bitwise-equal responses —
// the user-facing face of the merge determinism property. Run under
// -race this is also the serving concurrency test.
func TestMicroBatchedEqualsSequential(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{MaxBatch: 8, MaxWait: 20 * time.Millisecond})

	reqs := make([]*serve.PredictRequest, 16)
	rng := rand.New(rand.NewSource(4))
	for i := range reqs {
		nodes := make([]int32, 1+rng.Intn(5))
		for j := range nodes {
			nodes[j] = int32(rng.Intn(300))
		}
		reqs[i] = &serve.PredictRequest{Nodes: nodes, Seed: int64(1000 + i)}
	}

	sequential := make([]*serve.PredictResponse, len(reqs))
	for i, r := range reqs {
		var err error
		if sequential[i], err = srv.Predict(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}

	concurrent := make([]*serve.PredictResponse, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r *serve.PredictRequest) {
			defer wg.Done()
			var err error
			if concurrent[i], err = srv.Predict(context.Background(), r); err != nil {
				t.Error(err)
			}
		}(i, r)
	}
	wg.Wait()
	for i := range reqs {
		if !eqPredict(sequential[i], concurrent[i]) {
			t.Fatalf("request %d: micro-batched response differs from sequential", i)
		}
	}
	// The histogram must show at least one true micro-batch formed.
	statz := srv.Statz()
	if statz.Requests < uint64(2*len(reqs)) {
		t.Fatalf("statz lost requests: %d", statz.Requests)
	}
}

// TestHotReloadSnapshotIsolation reloads a second checkpoint while
// requests are in flight: every response must come entirely from one
// snapshot (old or new, never a mix), and responses settle on the new
// one after the swap.
func TestHotReloadSnapshotIsolation(t *testing.T) {
	dir := prepNC(t, 2)
	paths := train(t, dir, ncOpts, 1, 2)
	srv := startServer(t, dir, paths[0], serve.Config{MaxBatch: 4, MaxWait: time.Millisecond})

	req := &serve.PredictRequest{Nodes: []int32{3, 5, 7, 11, 13}, Seed: 42}
	expA, err := srv.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var observed []*serve.PredictResponse
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := srv.Predict(context.Background(), req)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				observed = append(observed, r)
				mu.Unlock()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := srv.Reload(paths[1]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	expB, err := srv.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if eqPredict(expA, expB) {
		t.Fatal("epoch-1 and epoch-2 checkpoints produced identical logits; A/B test is vacuous")
	}
	var nA, nB int
	for i, r := range observed {
		switch {
		case eqPredict(r, expA):
			nA++
		case eqPredict(r, expB):
			nB++
		default:
			t.Fatalf("response %d matches neither snapshot: old/new state mixed within one response", i)
		}
	}
	if nB == 0 {
		t.Fatal("no response came from the reloaded snapshot")
	}
	t.Logf("observed %d responses from old snapshot, %d from new", nA, nB)
}

// TestLoadRejectsMismatch: checkpoint/dataset disagreements must surface
// as typed, field-naming errors at load time — not as shape panics deep
// in the forward pass.
func TestLoadRejectsMismatch(t *testing.T) {
	dir := prepNC(t, 2)
	good, err := ckpt.Read(train(t, dir, ncOpts, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	sctx, err := serve.Open(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sctx.Close()

	cases := []struct {
		field  string
		mutate func(*ckpt.File)
	}{
		{"task", func(f *ckpt.File) { f.Task = "lp" }},
		{"nodes", func(f *ckpt.File) { f.TableRows = 999 }},
		{"classes", func(f *ckpt.File) { f.Model.NumClasses = 7 }},
		{"feature_dim", func(f *ckpt.File) { f.TableCols = 99; f.Model.FeatureDim = 99 }},
		{"version", func(f *ckpt.File) { f.Version = 42 }},
		{"model", func(f *ckpt.File) { f.Model.Kind = "" }},
	}
	for _, tc := range cases {
		bad := *good
		bad.Model.Fanouts = append([]int(nil), good.Model.Fanouts...)
		tc.mutate(&bad)
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := ckpt.Write(path, &bad); err != nil {
			t.Fatal(err)
		}
		_, err := serve.Load(sctx, path, serve.Config{})
		if !errors.Is(err, marius.ErrCheckpointMismatch) {
			t.Fatalf("%s: got %v, want ErrCheckpointMismatch", tc.field, err)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s: error %q does not name the offending field", tc.field, err)
		}
	}
}

// TestLoadWarnsOnProvenanceMismatch: serving a checkpoint against a
// shape-compatible but different dataset is allowed (the operator may
// know better) but must carry the UUID warning.
func TestLoadWarnsOnProvenanceMismatch(t *testing.T) {
	dirA := prepNC(t, 2)
	dirB := prepNC(t, 3) // same shape, different contents -> different UUID
	ckptPath := train(t, dirA, ncOpts, 1)[0]

	sctx, err := serve.Open(dirB, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sctx.Close()
	snap, err := serve.Load(sctx, ckptPath, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Warning == "" {
		t.Fatal("cross-dataset load carried no provenance warning")
	}
	// And the matched pairing stays clean.
	sctxA, err := serve.Open(dirA, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sctxA.Close()
	snapA, err := serve.Load(sctxA, ckptPath, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if snapA.Warning != "" {
		t.Fatalf("matched dataset/checkpoint pairing warned: %s", snapA.Warning)
	}
}

// TestTopKRelationContract pins the request-side relation rules on a
// multi-relation dataset: the relation must be named (by either field),
// the two field names must agree when both appear, and out-of-range
// relations are client errors — all typed ErrBadRequest, never a panic
// or a silently-defaulted relation. Statz must also name the decoder.
func TestTopKRelationContract(t *testing.T) {
	dir := prepLP(t)
	ckptPath := train(t, dir, lpOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})

	if got := srv.Statz().Decoder; got != decoder.KindDistMult {
		t.Fatalf("statz decoder = %q, want %q", got, decoder.KindDistMult)
	}

	bad := []struct {
		name string
		req  *serve.TopKRequest
	}{
		{"missing relation", &serve.TopKRequest{Src: 1, K: 5}},
		{"conflicting fields", &serve.TopKRequest{Src: 1, Relation: relp(1), Rel: relp(2), K: 5}},
		{"out of range", &serve.TopKRequest{Src: 1, Relation: relp(4), K: 5}},
		{"negative", &serve.TopKRequest{Src: 1, Relation: relp(-1), K: 5}},
	}
	for _, tc := range bad {
		if _, err := srv.TopK(context.Background(), tc.req); !errors.Is(err, serve.ErrBadRequest) {
			t.Fatalf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}

	// Both fields naming the same relation is fine, and matches the
	// single-field spelling bit for bit.
	both, err := srv.TopK(context.Background(), &serve.TopKRequest{Src: 1, Relation: relp(2), Rel: relp(2), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	one, err := srv.TopK(context.Background(), &serve.TopKRequest{Src: 1, Relation: relp(2), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if both.Relation != 2 || one.Relation != 2 {
		t.Fatalf("responses echo relations %d and %d, want 2", both.Relation, one.Relation)
	}
	for i := range one.Nodes {
		if both.Nodes[i] != one.Nodes[i] || both.Scores[i] != one.Scores[i] {
			t.Fatal("agreeing relation/rel pair diverged from the single-field request")
		}
	}
}

// TestTopKLegacyJSONCompat replays request bodies exactly as the
// single-relation-era HTTP clients wrote them — {"src","rel","k"} and
// the relation omitted entirely — against a single-relation dataset,
// and requires both to serve identical results. The old wire format
// must keep working unchanged.
func TestTopKLegacyJSONCompat(t *testing.T) {
	dir := prepLP1(t)
	ckptPath := train(t, dir, lpOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(body string) *serve.TopKResponse {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/topk", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", body, resp.StatusCode)
		}
		var tr serve.TopKResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return &tr
	}

	legacy := post(`{"src":12,"rel":0,"k":5,"seed":7}`)
	absent := post(`{"src":12,"k":5,"seed":7}`)
	modern := post(`{"src":12,"relation":0,"k":5,"seed":7}`)
	for _, tr := range []*serve.TopKResponse{legacy, absent, modern} {
		if tr.Relation != 0 || tr.Filtered {
			t.Fatalf("response header fields: relation %d filtered %v", tr.Relation, tr.Filtered)
		}
		if len(tr.Nodes) != 5 {
			t.Fatalf("got %d results, want 5", len(tr.Nodes))
		}
		for i := range tr.Nodes {
			if tr.Nodes[i] != legacy.Nodes[i] || tr.Scores[i] != legacy.Scores[i] {
				t.Fatal("legacy, relation-absent, and modern spellings disagree")
			}
		}
	}
}

// TestTopKFilteredMatchesReference checks the filtered protocol: with
// "filter": true the served top-k must equal a reference that scores
// every entity and skips the known true tails of (src, relation) from
// the full graph — and filtered requests must stay byte-identical
// whether served solo or co-batched with other traffic.
func TestTopKFilteredMatchesReference(t *testing.T) {
	dir := prepLP(t)
	ckptPath := train(t, dir, lpOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	snap := srv.Snapshot()

	sctx, err := serve.Open(dir, serve.Config{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sctx.Close()
	knownTails := func(src, rel int32) map[int32]bool {
		known := map[int32]bool{}
		nbrs, rels := sctx.Adj.OutNeighbors(src), sctx.Adj.OutRels(src)
		for i, d := range nbrs {
			if rels[i] == rel {
				known[d] = true
			}
		}
		return known
	}

	// Find a query whose unfiltered top-k actually contains known tails,
	// so filtering demonstrably changes the answer.
	const k = 10
	var qsrc, qrel int32 = -1, -1
	for src := int32(0); src < 300 && qsrc < 0; src++ {
		for rel := int32(0); rel < 4; rel++ {
			known := knownTails(src, rel)
			if len(known) == 0 {
				continue
			}
			scores := decoder.ScoreAll(snap.Decoder, snap.Table.Row(int(src)), snap.RelTable.Row(int(rel)), snap.Table)
			for _, id := range decoder.TopK(scores, k) {
				if known[id] {
					qsrc, qrel = src, rel
					break
				}
			}
			if qsrc >= 0 {
				break
			}
		}
	}
	if qsrc < 0 {
		t.Fatal("no (src, rel) ranks a known tail in its top-10; filtering test would be vacuous")
	}

	solo, err := srv.TopK(context.Background(), &serve.TopKRequest{Src: qsrc, Relation: relp(qrel), K: k, Filter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !solo.Filtered {
		t.Fatal("response does not acknowledge filtering")
	}
	known := knownTails(qsrc, qrel)
	scores := decoder.ScoreAll(snap.Decoder, snap.Table.Row(int(qsrc)), snap.RelTable.Row(int(qrel)), snap.Table)
	want := decoder.TopKSkip(scores, k, func(id int32) bool { return known[id] })
	if len(solo.Nodes) != len(want) {
		t.Fatalf("filtered top-k returned %d results, reference %d", len(solo.Nodes), len(want))
	}
	for i := range want {
		if solo.Nodes[i] != want[i] || solo.Scores[i] != scores[want[i]] {
			t.Fatalf("rank %d: serve (%d, %v), reference (%d, %v)",
				i, solo.Nodes[i], solo.Scores[i], want[i], scores[want[i]])
		}
		if known[solo.Nodes[i]] {
			t.Fatalf("rank %d: filtered response contains known tail %d", i, solo.Nodes[i])
		}
	}

	// Co-batched with unfiltered traffic for other relations, the
	// filtered answer must not move.
	var wg sync.WaitGroup
	results := make([]*serve.TopKResponse, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				results[i], err = srv.TopK(context.Background(), &serve.TopKRequest{Src: qsrc, Relation: relp(qrel), K: k, Filter: true})
			} else {
				_, err = srv.TopK(context.Background(), &serve.TopKRequest{Src: int32(i), Relation: relp(int32(i % 4)), K: 3})
			}
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < len(results); i += 2 {
		r := results[i]
		for j := range solo.Nodes {
			if r.Nodes[j] != solo.Nodes[j] || r.Scores[j] != solo.Scores[j] {
				t.Fatalf("co-batched filtered topk diverged from solo run at rank %d", j)
			}
		}
	}
}

// TestServeAllDecoders trains and serves each decoder kind through the
// one interface and pins the served top-k against the naive textbook
// scorer (RefScore) over every entity — exact float32 equality, so the
// fused serving path provably computes each decoder's definition.
func TestServeAllDecoders(t *testing.T) {
	kinds := []struct {
		kind string
		opt  marius.DecoderKind
	}{
		{decoder.KindDistMult, marius.DistMult},
		{decoder.KindComplEx, marius.ComplEx},
		{decoder.KindTransE, marius.TransE},
	}
	for _, tc := range kinds {
		t.Run(tc.kind, func(t *testing.T) {
			dir := prepLP(t)
			opts := append(append([]marius.Option(nil), lpOpts...), marius.WithDecoder(tc.opt))
			ckptPath := train(t, dir, opts, 1)[0]
			srv := startServer(t, dir, ckptPath, serve.Config{})
			snap := srv.Snapshot()

			if got := srv.Statz().Decoder; got != tc.kind {
				t.Fatalf("statz decoder = %q, want %q", got, tc.kind)
			}
			const k = 10
			for _, q := range []struct{ src, rel int32 }{{12, 3}, {0, 0}, {299, 1}} {
				resp, err := srv.TopK(context.Background(), &serve.TopKRequest{Src: q.src, Relation: relp(q.rel), K: k})
				if err != nil {
					t.Fatal(err)
				}
				scores := make([]float32, snap.Table.Rows)
				srcRow, relRow := snap.Table.Row(int(q.src)), snap.RelTable.Row(int(q.rel))
				for v := range scores {
					scores[v] = decoder.RefScore(tc.kind, srcRow, relRow, snap.Table.Row(v))
				}
				ids := decoder.TopK(scores, k)
				for i := range ids {
					if resp.Nodes[i] != ids[i] || resp.Scores[i] != scores[ids[i]] {
						t.Fatalf("(%d,%d) rank %d: serve (%d, %v), reference (%d, %v)",
							q.src, q.rel, i, resp.Nodes[i], resp.Scores[i], ids[i], scores[ids[i]])
					}
				}
			}
		})
	}
}

// TestLoadRejectsDecoderMismatch: a checkpoint recording an unknown
// decoder kind must fail at load time with a typed error naming the
// "decoder" field.
func TestLoadRejectsDecoderMismatch(t *testing.T) {
	dir := prepLP(t)
	good, err := ckpt.Read(train(t, dir, lpOpts, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	sctx, err := serve.Open(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sctx.Close()

	bad := *good
	bad.Model.Fanouts = append([]int(nil), good.Model.Fanouts...)
	bad.Model.Decoder = "rotate"
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := ckpt.Write(path, &bad); err != nil {
		t.Fatal(err)
	}
	_, err = serve.Load(sctx, path, serve.Config{})
	if !errors.Is(err, marius.ErrCheckpointMismatch) {
		t.Fatalf("got %v, want ErrCheckpointMismatch", err)
	}
	if !strings.Contains(err.Error(), "decoder") {
		t.Fatalf("error %q does not name the decoder field", err)
	}
}
